GO ?= go

.PHONY: all build test race vet bench

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel experiment engine and the sweeps it drives must be
# race-clean: runs share task templates read-only and merge by index.
race:
	$(GO) test -race ./internal/runner/... ./internal/experiment/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run NONE -bench . -benchmem .
