GO ?= go

.PHONY: all build test race vet lint bench

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel experiment engine and the sweeps it drives must be
# race-clean: runs share task templates read-only and merge by index.
race:
	$(GO) test -race ./internal/runner/... ./internal/experiment/...

vet:
	$(GO) vet ./...

# rtlint (cmd/rtlint, analyzers in internal/lint) mechanically enforces
# the determinism/atomics/aliasing invariants the paper's event-sequence
# claims rest on. Any finding fails the build; deliberate exceptions
# carry a justified //rtlint:ignore directive.
lint: vet
	$(GO) run ./cmd/rtlint ./...

bench:
	$(GO) test -run NONE -bench . -benchmem .
