GO ?= go

.PHONY: all build test race race-all stress vet lint bench trace-demo \
	check-bounds report metrics bench-baseline bench-diff profile \
	fuzz-smoke scale-smoke stoch-smoke obs-smoke serve-smoke

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel experiment engine and the sweeps it drives must be
# race-clean: runs share task templates read-only and merge by index.
race:
	$(GO) test -race ./internal/runner/... ./internal/experiment/...

# Full race sweep, twice: -count=2 defeats test caching and shakes out
# order-dependent interleavings; the lockfree stress tests (N writers ×
# M readers per structure) are the main customers.
race-all:
	$(GO) test -race -count=2 ./...

# Just the lock-free structure stress tests, full-size, under -race.
stress:
	$(GO) test -race -run TestStress -count=2 ./internal/lockfree/

vet:
	$(GO) vet ./...

# rtlint (cmd/rtlint, analyzers in internal/lint) mechanically enforces
# the determinism/atomics/aliasing/allocation invariants the paper's
# event-sequence and zero-alloc claims rest on. Any finding fails the
# build; deliberate exceptions carry a justified //rtlint:ignore
# directive. RTLINT_FORMAT selects the output format:
# `make lint RTLINT_FORMAT=sarif` is what CI archives.
RTLINT_FORMAT ?= text
lint: vet
	$(GO) run ./cmd/rtlint -format $(RTLINT_FORMAT) ./...

bench:
	$(GO) test -run NONE -bench . -benchmem .

# One n=10⁴ uniprocessor run on the clustered scale workload (single
# seed, phased arrivals): proves the 10⁴-task configuration completes
# quickly and stays at CMR ≥ 0.9 without paying for the full sweep.
scale-smoke:
	$(GO) test -short -run TestScaleSmoke -v ./internal/experiment/

# Stochastic-scheduler smoke: the seeded stoch sweep (scheduler
# distribution × synchronization discipline × seeds) must be
# byte-identical for any -jobs value, and the throughput predictor must
# fit (the digest carries the per-run alpha/beta/rel_err line). The e2e
# twin is cmd/rtsim's TestStochDeterminismAcrossJobs.
stoch-smoke:
	$(GO) run ./cmd/rtsim -profile quick -jobs 1 -stoch geo -stoch-seed 7 -metrics > stoch-j1.txt
	$(GO) run ./cmd/rtsim -profile quick -jobs 4 -stoch geo -stoch-seed 7 -metrics > stoch-j4.txt
	$(GO) run ./cmd/rtsim -profile quick -jobs 1 stoch >> stoch-j1.txt
	$(GO) run ./cmd/rtsim -profile quick -jobs 4 stoch >> stoch-j4.txt
	cmp stoch-j1.txt stoch-j4.txt
	grep -q "predictor" stoch-j1.txt
	grep -q "pred_rel_err" stoch-j1.txt
	@echo "stoch smoke OK: cross-jobs identical, predictor fitted"

# Streaming-observability smoke: (1) a long-horizon n=10⁴ run with the
# full online pipeline attached — flight recorder, deterministic
# progress stream, online span/series folds, no event buffering; (2) the
# streaming -metrics digest must be byte-identical to the batch one
# across -jobs values; (3) the steady-state sink path must report
# 0 B/op. The unit twins live in internal/obs and internal/experiment.
obs-smoke:
	$(GO) test -run TestObsSmoke -v ./internal/experiment/
	$(GO) run ./cmd/rtsim -profile quick -jobs 1 -metrics > obs-batch.txt
	$(GO) run ./cmd/rtsim -profile quick -jobs 4 -stream -metrics > obs-stream.txt
	cmp obs-batch.txt obs-stream.txt
	$(GO) test -run NONE -bench BenchmarkPipelineObserve -benchmem ./internal/obs/ | tee obs-bench.txt
	grep -q "0 B/op" obs-bench.txt
	@echo "obs smoke OK: streaming digest byte-identical to batch, sink path 0 B/op"

# Trace the canonical workload on the uniprocessor engine and export it
# in the Chrome trace-event format: drag trace.json onto ui.perfetto.dev
# to browse per-task, per-CPU, and scheduler tracks. Try
# -trace-sim global / -trace-mode lockbased for the other engines, or
# -trace-format spans for a per-job text digest.
trace-demo:
	$(GO) run ./cmd/rtsim -profile quick -trace trace.json -trace-format perfetto
	@echo "wrote trace.json — open it at https://ui.perfetto.dev"

# Overlay the Theorem 2 retry bound and Theorem 3 sojourn composition on
# traced runs of the whole suite; any violation exits non-zero.
check-bounds:
	$(GO) run ./cmd/rtsim -profile quick -check-bounds

# Fold the canonical workload on every simulator × mode and print the
# distribution digest (p50/p95/p99/max next to each mean, Theorem 2/3
# bounds alongside).
metrics:
	$(GO) run ./cmd/rtsim -profile quick -metrics

# Full report: per-distribution and per-window CSVs plus a
# self-contained report/report.html with inline SVG charts. The listed
# experiments become the report's figure sections.
report:
	$(GO) run ./cmd/rtsim -profile quick -report report fig9 fig10 fig11 fig12 fig13 fig14 faults
	@echo "wrote report/report.html — open it in any browser"

# Refresh the committed wall-clock baseline cmd/benchdiff compares CI
# runs against. Absolute seconds are machine-specific; benchdiff
# -normalize compares per-experiment shares, so a baseline from any
# reasonably fast machine works.
bench-baseline:
	$(GO) run ./cmd/rtsim -profile quick -bench-json BENCH_PR8.json all > /dev/null

# Compare a fresh timing run against the committed baseline; exits
# non-zero past a 2x relative regression.
bench-diff:
	$(GO) run ./cmd/rtsim -profile quick -bench-json bench-current.json all > /dev/null
	$(GO) run ./cmd/benchdiff -normalize -min 0.05 -fail 2.0 BENCH_PR8.json bench-current.json

# Short coverage-guided fuzz of every native fuzz target (committed
# corpora under */testdata/fuzz seed each run). Go allows one -fuzz
# target per invocation, so each gets its own line; FUZZTIME scales the
# smoke to budget.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run NONE -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./cmd/benchdiff
	$(GO) test -run NONE -fuzz '^FuzzBuild$$' -fuzztime $(FUZZTIME) ./internal/trace/span
	$(GO) test -run NONE -fuzz '^FuzzStepConservation$$' -fuzztime $(FUZZTIME) ./internal/task
	$(GO) test -run NONE -fuzz '^FuzzValidateNoPanic$$' -fuzztime $(FUZZTIME) ./internal/task
	$(GO) test -run NONE -fuzz '^FuzzGenerateSatisfiesSpec$$' -fuzztime $(FUZZTIME) ./internal/uam
	$(GO) test -run NONE -fuzz '^FuzzCheckTraceNoPanic$$' -fuzztime $(FUZZTIME) ./internal/uam
	$(GO) test -run NONE -fuzz '^FuzzIgnoreDirective$$' -fuzztime $(FUZZTIME) ./internal/lint
	$(GO) test -run NONE -fuzz '^FuzzSpecDecode$$' -fuzztime $(FUZZTIME) ./internal/serve

# Serving-mode smoke: boot rtsimd, submit a fault-injected trace spec
# twice over real HTTP (the second must be an exact cache hit), stream
# the NDJSON feed to completion, download the served artifacts, and
# diff every byte against the batch rtsim invocation of the same
# scenario — the daemon/CLI conformance contract end to end.
serve-smoke:
	$(GO) build -o rtsimd.smoke ./cmd/rtsimd
	$(GO) build -o rtsim.smoke ./cmd/rtsim
	rm -rf serve-smoke-out && mkdir -p serve-smoke-out/served serve-smoke-out/batch
	sh -ec '\
	  ./rtsimd.smoke -addr 127.0.0.1:18089 -workers 1 -drain-timeout 10s > serve-smoke-out/rtsimd.log 2>&1 & pid=$$!; \
	  trap "kill $$pid 2>/dev/null || true" EXIT; \
	  for i in $$(seq 1 50); do curl -fs http://127.0.0.1:18089/healthz >/dev/null 2>&1 && break; sleep 0.2; done; \
	  spec="{\"faults\":\"light\",\"fault_seed\":7,\"trace\":{\"format\":\"perfetto\",\"flight\":256}}"; \
	  curl -fs -X POST -d "$$spec" http://127.0.0.1:18089/api/v1/runs > serve-smoke-out/submit1.json; \
	  curl -fs http://127.0.0.1:18089/api/v1/runs/r00000001/events > serve-smoke-out/events.ndjson; \
	  grep -q "\"kind\":\"done\"" serve-smoke-out/events.ndjson; \
	  curl -fs -X POST -d "$$spec" http://127.0.0.1:18089/api/v1/runs > serve-smoke-out/submit2.json; \
	  grep -q "\"cache\":\"hit\"" serve-smoke-out/submit2.json; \
	  for a in trace.perfetto.json trace.perfetto.json.flight.json trace.summary.txt; do \
	    curl -fs http://127.0.0.1:18089/api/v1/runs/r00000001/artifacts/$$a > serve-smoke-out/served/$$a; \
	  done; \
	  curl -fs http://127.0.0.1:18089/api/v1/statz > serve-smoke-out/statz.json; \
	  grep -q "\"hits\":1" serve-smoke-out/statz.json; \
	  grep -q "\"misses\":1" serve-smoke-out/statz.json'
	cd serve-smoke-out/batch && ../../rtsim.smoke -profile quick -faults light -fault-seed 7 \
	  -flight 256 -trace trace.perfetto.json -trace-format perfetto > trace.summary.txt
	cmp serve-smoke-out/served/trace.perfetto.json serve-smoke-out/batch/trace.perfetto.json
	cmp serve-smoke-out/served/trace.perfetto.json.flight.json serve-smoke-out/batch/trace.perfetto.json.flight.json
	cmp serve-smoke-out/served/trace.summary.txt serve-smoke-out/batch/trace.summary.txt
	@echo "serve smoke OK: served bytes byte-identical to batch, cache counters exact"

# CPU + heap profiles of the canonical metrics fold; inspect with
# `go tool pprof cpu.pprof`.
profile:
	$(GO) run ./cmd/rtsim -profile quick -cpuprofile cpu.pprof -memprofile mem.pprof -metrics > /dev/null
	@echo "wrote cpu.pprof and mem.pprof — inspect with: go tool pprof cpu.pprof"
