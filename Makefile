GO ?= go

.PHONY: all build test race vet lint bench trace-demo check-bounds

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel experiment engine and the sweeps it drives must be
# race-clean: runs share task templates read-only and merge by index.
race:
	$(GO) test -race ./internal/runner/... ./internal/experiment/...

vet:
	$(GO) vet ./...

# rtlint (cmd/rtlint, analyzers in internal/lint) mechanically enforces
# the determinism/atomics/aliasing invariants the paper's event-sequence
# claims rest on. Any finding fails the build; deliberate exceptions
# carry a justified //rtlint:ignore directive.
lint: vet
	$(GO) run ./cmd/rtlint ./...

bench:
	$(GO) test -run NONE -bench . -benchmem .

# Trace the canonical workload on the uniprocessor engine and export it
# in the Chrome trace-event format: drag trace.json onto ui.perfetto.dev
# to browse per-task, per-CPU, and scheduler tracks. Try
# -trace-sim global / -trace-mode lockbased for the other engines, or
# -trace-format spans for a per-job text digest.
trace-demo:
	$(GO) run ./cmd/rtsim -profile quick -trace trace.json -trace-format perfetto
	@echo "wrote trace.json — open it at https://ui.perfetto.dev"

# Overlay the Theorem 2 retry bound and Theorem 3 sojourn composition on
# traced runs of the whole suite; any violation exits non-zero.
check-bounds:
	$(GO) run ./cmd/rtsim -profile quick -check-bounds
