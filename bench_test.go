// Root benchmarks: one per paper table/figure, as testing.B targets.
//
//	Fig 8  → BenchmarkFig8ObjectAccess (real atomics vs mutex: measured s, r)
//	Fig 9  → BenchmarkFig9CMLPoint (one CML probe per scheduler variant)
//	Figs 10–13 → BenchmarkAURCMRPoint (one AUR/CMR cell per mode/load/class)
//	Fig 14 → BenchmarkFig14LoadPoint
//	Thm 2  → BenchmarkRetryBound (analytic) + BenchmarkThm2Validation (sim)
//	Thm 3  → BenchmarkSojournAnalysis
//	§3.6/§5 costs table → BenchmarkRUASchedulePass
//
// Run: go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/experiment"
	"repro/internal/gsim"
	"repro/internal/lockfree"
	"repro/internal/lockobj"
	"repro/internal/metrics"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/sim"
	"repro/internal/uam"
	"repro/internal/waitfree"
)

// BenchmarkFig8ObjectAccess measures the real lock-free (s) and
// lock-based (r) object access times on this machine's atomics — the
// hardware ground truth behind Fig 8. Sub-benchmarks cover the queue
// (the paper's object), stack, and register, sequential and contended.
func BenchmarkFig8ObjectAccess(b *testing.B) {
	b.Run("queue/lockfree/sequential", func(b *testing.B) {
		q := lockfree.NewQueue[int]()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.Enqueue(i)
			q.Dequeue()
		}
	})
	b.Run("queue/mutex/sequential", func(b *testing.B) {
		q := lockobj.NewQueue[int]()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.Enqueue(i)
			q.Dequeue()
		}
	})
	b.Run("queue/lockfree/contended", func(b *testing.B) {
		q := lockfree.NewQueue[int]()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				q.Enqueue(i)
				q.Dequeue()
				i++
			}
		})
	})
	b.Run("queue/mutex/contended", func(b *testing.B) {
		q := lockobj.NewQueue[int]()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				q.Enqueue(i)
				q.Dequeue()
				i++
			}
		})
	})
	b.Run("stack/lockfree/contended", func(b *testing.B) {
		var s lockfree.Stack[int]
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				s.Push(i)
				s.Pop()
				i++
			}
		})
	})
	b.Run("stack/mutex/contended", func(b *testing.B) {
		var s lockobj.Stack[int]
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				s.Push(i)
				s.Pop()
				i++
			}
		})
	})
	b.Run("register/lockfree/contended", func(b *testing.B) {
		r := lockfree.NewRegister(0)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				r.Update(func(v int) int { return v + 1 })
			}
		})
	})
	b.Run("register/mutex/contended", func(b *testing.B) {
		r := lockobj.NewRegister(0)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				r.Update(func(v int) int { return v + 1 })
			}
		})
	})
	b.Run("list/lockfree/contended", func(b *testing.B) {
		l := lockfree.NewList()
		var mu sync.Mutex
		next := int64(0)
		b.RunParallel(func(pb *testing.PB) {
			mu.Lock()
			base := next
			next += 1 << 32
			mu.Unlock()
			k := base
			for pb.Next() {
				l.Insert(k % 1024)
				l.Delete(k % 1024)
				k++
			}
		})
	})
	b.Run("list/mutex/contended", func(b *testing.B) {
		l := lockobj.NewList()
		b.RunParallel(func(pb *testing.PB) {
			k := int64(0)
			for pb.Next() {
				l.Insert(k % 1024)
				l.Delete(k % 1024)
				k++
			}
		})
	})
}

// simPoint builds and runs one canonical-workload simulation.
func simPoint(b *testing.B, mode sim.Mode, al float64, objs int, class experiment.TUFClass) sim.Result {
	b.Helper()
	w := experiment.WorkloadSpec{
		NumTasks: 10, NumObjects: objs, AccessesPerJob: objs,
		MeanExec: 500 * rtime.Microsecond, TargetAL: al,
		Class: class, MaxArrivals: 2,
	}
	tasks, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Tasks: tasks, Mode: mode,
		R: experiment.DefaultR, S: experiment.DefaultS,
		OpCost:      experiment.DefaultOpCost,
		Horizon:     rtime.Time(300 * rtime.Millisecond),
		ArrivalKind: uam.KindJittered, Seed: 1, ConservativeRetry: true,
	}
	if mode == sim.LockBased {
		cfg.Scheduler = rua.NewLockBased()
	} else {
		cfg.Scheduler = rua.NewLockFree()
	}
	res, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAURCMRPoint regenerates one cell of Figs 10–13 per iteration
// and reports AUR as a custom metric.
func BenchmarkAURCMRPoint(b *testing.B) {
	cases := []struct {
		name  string
		mode  sim.Mode
		al    float64
		class experiment.TUFClass
	}{
		{"underload/step/lockfree", sim.LockFree, 0.4, experiment.StepTUFs},
		{"underload/step/lockbased", sim.LockBased, 0.4, experiment.StepTUFs},
		{"overload/step/lockfree", sim.LockFree, 1.1, experiment.StepTUFs},
		{"overload/step/lockbased", sim.LockBased, 1.1, experiment.StepTUFs},
		{"overload/hetero/lockfree", sim.LockFree, 1.1, experiment.HeterogeneousTUFs},
		{"overload/hetero/lockbased", sim.LockBased, 1.1, experiment.HeterogeneousTUFs},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var aur, cmr float64
			for i := 0; i < b.N; i++ {
				st := metrics.Analyze(simPoint(b, c.mode, c.al, 10, c.class))
				aur, cmr = st.AUR, st.CMR
			}
			b.ReportMetric(aur, "AUR")
			b.ReportMetric(cmr, "CMR")
		})
	}
}

// BenchmarkFig9CMLPoint probes one load point of the Fig 9 CML search
// for each scheduler variant at 300 µs mean execution time.
func BenchmarkFig9CMLPoint(b *testing.B) {
	for _, mode := range []sim.Mode{sim.LockFree, sim.LockBased} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			var cmr float64
			for i := 0; i < b.N; i++ {
				w := experiment.WorkloadSpec{
					NumTasks: 10, NumObjects: 10, AccessesPerJob: 4,
					MeanExec: 300 * rtime.Microsecond, TargetAL: 0.8,
					Class: experiment.StepTUFs, MaxArrivals: 1,
				}
				tasks, err := w.Build()
				if err != nil {
					b.Fatal(err)
				}
				cfg := sim.Config{
					Tasks: tasks, Mode: mode,
					R: experiment.DefaultR, S: experiment.DefaultS,
					OpCost:      experiment.DefaultOpCost,
					Horizon:     rtime.Time(200 * rtime.Millisecond),
					ArrivalKind: uam.KindJittered, Seed: 1, ConservativeRetry: true,
				}
				if mode == sim.LockBased {
					cfg.Scheduler = rua.NewLockBased()
				} else {
					cfg.Scheduler = rua.NewLockFree()
				}
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cmr = metrics.Analyze(res).CMR
			}
			b.ReportMetric(cmr, "CMR@0.8")
		})
	}
}

// BenchmarkFig14LoadPoint regenerates one load point of Fig 14.
func BenchmarkFig14LoadPoint(b *testing.B) {
	for _, mode := range []sim.Mode{sim.LockFree, sim.LockBased} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			var aur float64
			for i := 0; i < b.N; i++ {
				st := metrics.Analyze(simPoint(b, mode, 0.9, 5, experiment.HeterogeneousTUFs))
				aur = st.AUR
			}
			b.ReportMetric(aur, "AUR@0.9")
		})
	}
}

// BenchmarkRUASchedulePass measures one Select pass over n jobs with
// O(n)-deep dependency chains — the wall-clock side of the §3.6 / §5
// cost comparison (charged-op counts are in `rtsim costs`).
func BenchmarkRUASchedulePass(b *testing.B) {
	for _, n := range []int{8, 32, 128, 512} {
		wLB, wLF := experiment.CostWorld(n)
		b.Run(fmt.Sprintf("lockbased/n=%d", n), func(b *testing.B) {
			s := rua.NewLockBased()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Select(wLB)
			}
		})
		b.Run(fmt.Sprintf("lockfree/n=%d", n), func(b *testing.B) {
			s := rua.NewLockFree()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Select(wLF)
			}
		})
	}
}

// BenchmarkRetryBound measures the Theorem 2 closed-form evaluation.
func BenchmarkRetryBound(b *testing.B) {
	w := experiment.WorkloadSpec{
		NumTasks: 50, NumObjects: 10, AccessesPerJob: 4,
		MeanExec: 500 * rtime.Microsecond, TargetAL: 0.8,
		Class: experiment.StepTUFs, MaxArrivals: 3,
	}
	tasks, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.RetryBound(i%len(tasks), tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThm2Validation runs the full empirical Theorem 2 check.
func BenchmarkThm2Validation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Thm2(experiment.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSojournAnalysis measures the Theorem 3 input assembly and
// threshold evaluation across a task set.
func BenchmarkSojournAnalysis(b *testing.B) {
	w := experiment.WorkloadSpec{
		NumTasks: 20, NumObjects: 5, AccessesPerJob: 6,
		MeanExec: 400 * rtime.Microsecond, TargetAL: 0.5,
		Class: experiment.StepTUFs, MaxArrivals: 2,
	}
	tasks, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in, err := analysis.InputsFor(i%len(tasks), tasks, experiment.DefaultR, experiment.DefaultS)
		if err != nil {
			b.Fatal(err)
		}
		_ = in.ExactConditionHolds()
		_ = in.SojournAdvantage()
	}
}

// BenchmarkUAMGenerate measures arrival-trace generation and validation.
func BenchmarkUAMGenerate(b *testing.B) {
	spec := uam.Spec{L: 1, A: 3, W: 500}
	for i := 0; i < b.N; i++ {
		g, err := uam.NewGenerator(spec, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		tr := g.Generate(uam.KindJittered, 100_000)
		if err := uam.CheckTrace(spec, tr, 100_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughput measures raw simulator speed (events are the
// unit of work: arrivals + completions + context switches).
func BenchmarkEngineThroughput(b *testing.B) {
	for _, mode := range []sim.Mode{sim.LockFree, sim.LockBased} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			var events int64
			for i := 0; i < b.N; i++ {
				res := simPoint(b, mode, 0.7, 5, experiment.StepTUFs)
				events = res.SchedInvocations + res.CtxSwitches
			}
			b.ReportMetric(float64(events), "events/run")
		})
	}
}

// BenchmarkWaitFreeVsLockFree quantifies the §1.1 discussion on real
// hardware: wait-free reads (NBW with a quiet writer; multi-buffer) vs
// lock-free register reads vs mutex reads.
func BenchmarkWaitFreeVsLockFree(b *testing.B) {
	b.Run("nbw/read", func(b *testing.B) {
		var n waitfree.NBW[int]
		n.Write(42)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n.Read()
		}
	})
	b.Run("multibuffer/read", func(b *testing.B) {
		m, err := waitfree.NewMultiBuffer(1, 42)
		if err != nil {
			b.Fatal(err)
		}
		r, err := m.NewReader()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Read()
		}
	})
	b.Run("lockfree-register/read", func(b *testing.B) {
		r := lockfree.NewRegister(42)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Read()
		}
	})
	b.Run("mutex-register/read", func(b *testing.B) {
		r := lockobj.NewRegister(42)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Read()
		}
	})
	b.Run("nbw/write", func(b *testing.B) {
		var n waitfree.NBW[int]
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n.Write(i)
		}
	})
	b.Run("multibuffer/write", func(b *testing.B) {
		m, err := waitfree.NewMultiBuffer(1, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Write(i)
		}
	})
}

// BenchmarkSnapshotScan measures the §7 snapshot abstraction: scan cost
// grows with component count; updates stay O(1).
func BenchmarkSnapshotScan(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			s := lockfree.NewSnapshot(n, 0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Scan()
			}
		})
	}
	b.Run("update", func(b *testing.B) {
		s := lockfree.NewSnapshot(8, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Update(i%8, i)
		}
	})
}

// BenchmarkGlobalMultiprocessor measures gsim throughput per CPU count —
// the wall-clock cost of the §7 global-scheduling extension.
func BenchmarkGlobalMultiprocessor(b *testing.B) {
	for _, cpus := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cpus=%d", cpus), func(b *testing.B) {
			w := experiment.WorkloadSpec{
				NumTasks: 12, NumObjects: 6, AccessesPerJob: 2,
				MeanExec: 500 * rtime.Microsecond, TargetAL: 2.0,
				Class: experiment.StepTUFs, MaxArrivals: 2,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tasks, err := w.Build()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := gsim.Run(gsim.Config{
					CPUs: cpus, Tasks: tasks, Scheduler: rua.NewLockFree(),
					Mode: sim.LockFree, R: experiment.DefaultR, S: experiment.DefaultS,
					Horizon:     rtime.Time(100 * rtime.Millisecond),
					ArrivalKind: uam.KindJittered, Seed: 1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSweep measures the parallel experiment engine: the
// same multi-seed AUR/CMR sweep (one cell of Figs 10–13 at paper-scale
// horizons) on 1, 2, and NumCPU workers. Tables are byte-identical for
// every worker count (see TestParallelDeterminism); only wall clock may
// change. Compare ns/op across the sub-benchmarks for the speedup.
func BenchmarkParallelSweep(b *testing.B) {
	jobCounts := []int{1, 2, runtime.NumCPU()}
	if runtime.NumCPU() <= 2 {
		jobCounts = jobCounts[:2]
	}
	for _, jobs := range jobCounts {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			p := experiment.Profile{
				Name:        "bench",
				HorizonMult: 120,
				Seeds:       []int64{1, 2, 3, 4, 5, 6, 7, 8},
				Jobs:        jobs,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiment.AURCMR(p, "bench-sweep", experiment.StepTUFs, 1.1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBoundedQueue measures the array-based MPMC queue against the
// linked Michael–Scott queue (allocation-free vs allocating).
func BenchmarkBoundedQueue(b *testing.B) {
	b.Run("bounded/sequential", func(b *testing.B) {
		q, err := lockfree.NewBoundedQueue[int](1024)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.Enqueue(i)
			q.Dequeue()
		}
	})
	b.Run("msqueue/sequential", func(b *testing.B) {
		q := lockfree.NewQueue[int]()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.Enqueue(i)
			q.Dequeue()
		}
	})
}
