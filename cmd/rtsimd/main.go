// Command rtsimd is the serving mode of the simulator: a long-running
// HTTP daemon that accepts scenario specs, executes them on the bounded
// runner pool, streams NDJSON progress, and serves final artifacts that
// are byte-identical to the batch rtsim invocation of the same spec.
//
//	rtsimd -addr 127.0.0.1:8089 -queue 16 -workers 2 -cache 64
//
// On SIGTERM/SIGINT the daemon drains: new submissions get 503, queued
// and running work finishes (or is explicitly shed past -drain-timeout),
// then the HTTP listener shuts down.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "rtsimd: %v\n", err)
		os.Exit(1)
	}
}

// run is main's injectable body. The e2e suite calls it with its own
// context (cancel = SIGTERM) and a ready channel that receives the
// bound address once the listener is up; main passes nil.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("rtsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8089", "listen address")
	queue := fs.Int("queue", 16, "admission queue bound (full queue => 429 + Retry-After)")
	workers := fs.Int("workers", 2, "concurrent run executors")
	jobs := fs.Int("jobs", 0, "per-run worker parallelism, 0 = all CPUs (never changes output bytes)")
	cacheSize := fs.Int("cache", 64, "result cache entries, negative disables")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second,
		"graceful drain deadline; queued runs still waiting past it are shed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := serve.New(serve.Config{Queue: *queue, Workers: *workers, Jobs: *jobs, Cache: *cacheSize})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	fmt.Fprintf(stdout, "rtsimd: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain before shutting the listener down: in-flight clients can
	// still poll run state and download artifacts while work finishes;
	// only new submissions are refused (503 via Server.Submit).
	fmt.Fprintln(stdout, "rtsimd: draining")
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(stderr, "rtsimd: drain: %v (queued runs shed)\n", err)
	}
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	<-errc // http.ErrServerClosed after Shutdown
	fmt.Fprintln(stdout, "rtsimd: drained, exiting")
	return nil
}
