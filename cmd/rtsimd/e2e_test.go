package main

// End-to-end test of the daemon binary path: boot run() on a real TCP
// socket, drive the full submit → stream → download cycle over the
// wire, verify the served bytes against the batch builders, then
// SIGTERM (ctx cancel) and assert a clean drain.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/serve"
)

func TestDaemonEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx,
			[]string{"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "4", "-jobs", "2", "-drain-timeout", "30s"},
			&stdout, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v\nstderr: %s", err, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	health, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(health) != "ok\n" {
		t.Fatalf("healthz = %d %q, want 200 ok", resp.StatusCode, health)
	}

	// Submit a fault-injected trace spec and follow its NDJSON feed to
	// the terminal event.
	specSrc := `{"faults":"light","fault_seed":11,"trace":{"format":"perfetto","flight":256}}`
	resp, err = http.Post(base+"/api/v1/runs", "application/json", strings.NewReader(specSrc))
	if err != nil {
		t.Fatalf("POST spec: %v", err)
	}
	var doc struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d err %v", resp.StatusCode, err)
	}

	resp, err = http.Get(base + "/api/v1/runs/" + doc.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	var lastKind string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		lastKind = e.Kind
	}
	resp.Body.Close()
	if lastKind != "done" {
		t.Fatalf("run ended with %q, want done", lastKind)
	}

	// The served artifact bytes must match the batch build of the same
	// canonical spec (run with a different jobs value on purpose).
	spec, specErr := serve.DecodeSpec([]byte(specSrc))
	if specErr != nil {
		t.Fatalf("DecodeSpec: %v", specErr)
	}
	p, err := spec.BuildProfile(1)
	if err != nil {
		t.Fatalf("BuildProfile: %v", err)
	}
	tr, err := artifact.BuildTrace(p, artifact.TraceOptions{
		Sim: spec.Trace.Sim, Mode: spec.Trace.Mode, Format: spec.Trace.Format,
		Limit: spec.Trace.Limit, Flight: spec.Trace.Flight,
	})
	if err != nil {
		t.Fatalf("BuildTrace: %v", err)
	}
	for name, want := range map[string][]byte{
		"trace.perfetto.json": tr.Data,
		"trace.summary.txt":   []byte(tr.Summary("trace.perfetto.json", "trace.perfetto.json.flight.json")),
	} {
		resp, err := http.Get(base + "/api/v1/runs/" + doc.ID + "/artifacts/" + name)
		if err != nil {
			t.Fatalf("GET artifact %s: %v", name, err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("artifact %s: status %d", name, resp.StatusCode)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("artifact %s: served bytes differ from batch (%d vs %d)", name, len(got), len(want))
		}
	}

	// Resubmitting the identical spec is a cache hit served as done.
	resp, err = http.Post(base+"/api/v1/runs", "application/json", strings.NewReader(specSrc))
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	var hit struct {
		Cache string `json:"cache"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&hit)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || hit.Cache != "hit" || hit.State != "done" {
		t.Fatalf("resubmit: status %d cache %q state %q, want 200/hit/done", resp.StatusCode, hit.Cache, hit.State)
	}

	// SIGTERM: cancel the context, expect a clean drain and exit.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain and exit")
	}
	out := stdout.String()
	for _, want := range []string{"rtsimd: listening on ", "rtsimd: draining", "rtsimd: drained, exiting"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

// TestDaemonBadFlag: flag errors surface as run() errors, not exits.
func TestDaemonBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr, nil); err == nil {
		t.Fatalf("run with bad flag: nil error")
	}
}
