// Command benchdiff compares two rtsim -bench-json timing documents
// and renders a per-experiment verdict table, in the spirit of
// benchstat: a baseline committed to the repo against a fresh run.
//
//	rtsim -profile quick -bench-json base.json all
//	...change something...
//	rtsim -profile quick -bench-json cur.json all
//	benchdiff base.json cur.json
//
// Absolute wall-clock seconds are machine-dependent, so CI compares
// *shares*: -normalize divides each experiment's time by the document
// total, making the ratio columns scale-invariant across hosts — a
// regression then means "this experiment got slower relative to the
// rest of the suite".
//
// Exit status: 0 when no experiment crosses -fail, 1 when any does,
// 2 on usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
)

// benchEntry mirrors cmd/rtsim's -bench-json entry.
type benchEntry struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// benchReport mirrors cmd/rtsim's -bench-json document.
type benchReport struct {
	Profile     string       `json:"profile"`
	Jobs        int          `json:"jobs"`
	Experiments []benchEntry `json:"experiments"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// parse validates one bench-json document from its raw bytes. Every
// invariant the diff below relies on is enforced here: at least one
// experiment, non-empty ids, and finite non-negative seconds (ratios
// of negative or non-finite timings would render nonsense verdicts).
func parse(name string, b []byte) (*benchReport, error) {
	var r benchReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if len(r.Experiments) == 0 {
		return nil, fmt.Errorf("%s: no experiments", name)
	}
	for _, e := range r.Experiments {
		if e.ID == "" {
			return nil, fmt.Errorf("%s: experiment with empty id", name)
		}
		if e.Seconds < 0 || math.IsNaN(e.Seconds) || math.IsInf(e.Seconds, 0) {
			return nil, fmt.Errorf("%s: experiment %s: invalid seconds %v", name, e.ID, e.Seconds)
		}
	}
	return &r, nil
}

// load reads and validates one bench-json document.
func load(path string) (*benchReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parse(path, b)
}

// total sums a document's seconds.
func total(r *benchReport) float64 {
	var t float64
	for _, e := range r.Experiments {
		t += e.Seconds
	}
	return t
}

// run is main with dependencies injected for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	warn := fs.Float64("warn", 1.25, "ratio above which an experiment is flagged WARN")
	fail := fs.Float64("fail", 2.0, "ratio above which an experiment is flagged FAIL (exit 1)")
	normalize := fs.Bool("normalize", false, "compare each experiment's share of total time instead of absolute seconds (use across machines)")
	minSeconds := fs.Float64("min", 0, "ignore experiments whose baseline or current run took under `seconds` (timer noise dominates tiny runs)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: benchdiff [flags] BASELINE.json CURRENT.json

Compares two rtsim -bench-json documents experiment by experiment.

flags:
  -warn R       flag WARN when current/baseline exceeds R (default 1.25)
  -fail R       flag FAIL and exit 1 when the ratio exceeds R (default 2.0)
  -normalize    compare shares of total suite time, not absolute seconds;
                robust when baseline and current ran on different hosts
  -min S        never flag experiments under S seconds in either document;
                sub-millisecond runs are timer noise, not signal
`)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *warn <= 0 || *fail <= 0 || *fail < *warn {
		fmt.Fprintf(stderr, "benchdiff: need 0 < -warn <= -fail (got warn=%v fail=%v)\n", *warn, *fail)
		return 2
	}
	base, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	cur, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	if base.Profile != cur.Profile {
		fmt.Fprintf(stderr, "benchdiff: profile mismatch: baseline %q vs current %q — ratios are not comparable\n",
			base.Profile, cur.Profile)
		return 2
	}

	baseTotal, curTotal := total(base), total(cur)
	metric := func(e benchEntry, docTotal float64) float64 {
		if *normalize && docTotal > 0 {
			return e.Seconds / docTotal
		}
		return e.Seconds
	}
	unit := "seconds"
	if *normalize {
		unit = "share of suite"
	}
	curByID := make(map[string]benchEntry, len(cur.Experiments))
	for _, e := range cur.Experiments {
		curByID[e.ID] = e
	}

	fmt.Fprintf(stdout, "benchdiff: profile=%s metric=%s warn=%.2fx fail=%.2fx\n", base.Profile, unit, *warn, *fail)
	fmt.Fprintf(stdout, "%-18s %10s %10s %7s  %s\n", "experiment", "baseline", "current", "ratio", "verdict")
	failed := 0
	// Baseline array order keeps the table deterministic (no map walk).
	for _, be := range base.Experiments {
		ce, ok := curByID[be.ID]
		if !ok {
			fmt.Fprintf(stdout, "%-18s %10.4f %10s %7s  %s\n", be.ID, metric(be, baseTotal), "-", "-", "MISSING")
			continue
		}
		delete(curByID, be.ID)
		b, c := metric(be, baseTotal), metric(ce, curTotal)
		verdict := "ok"
		ratio := 0.0
		switch {
		case be.Seconds < *minSeconds || ce.Seconds < *minSeconds:
			// A sub-threshold timing on either side makes the ratio
			// noise; a real regression pushes BOTH runs' big experiments
			// over any sensible floor.
			verdict = "tiny"
		case b <= 0:
			verdict = "no-baseline"
		default:
			ratio = c / b
			switch {
			case ratio > *fail:
				verdict = "FAIL"
				failed++
			case ratio > *warn:
				verdict = "WARN"
			case ratio < 1/(*warn):
				verdict = "faster"
			}
		}
		rs := "-"
		if ratio > 0 {
			rs = fmt.Sprintf("%.2fx", ratio)
		}
		fmt.Fprintf(stdout, "%-18s %10.4f %10.4f %7s  %s\n", be.ID, b, c, rs, verdict)
	}
	// Experiments only the current run has, in its array order.
	for _, ce := range cur.Experiments {
		if _, ok := curByID[ce.ID]; !ok {
			continue
		}
		fmt.Fprintf(stdout, "%-18s %10s %10.4f %7s  %s\n", ce.ID, "-", metric(ce, curTotal), "-", "NEW")
	}
	if failed > 0 {
		fmt.Fprintf(stdout, "%d experiment(s) regressed past %.2fx\n", failed, *fail)
		return 1
	}
	fmt.Fprintln(stdout, "no regressions past the fail threshold")
	return 0
}
