package main

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// FuzzParse throws arbitrary bytes at the bench-json parser. A document
// either parses into a report every downstream consumer can trust —
// non-empty, finite non-negative timings, a finite total — or is
// rejected with an error; it must never panic, and the outcome must be
// deterministic.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"profile":"quick","jobs":4,"experiments":[{"id":"fig9","seconds":1.5},{"id":"thm2","seconds":0.25}]}`))
	f.Add([]byte(`{"profile":"full","jobs":1,"experiments":[]}`))
	f.Add([]byte(`{"experiments":[{"id":"","seconds":1}]}`))
	f.Add([]byte(`{"experiments":[{"id":"x","seconds":-3}]}`))
	f.Add([]byte(`{"experiments":[{"id":"x","seconds":1e999}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r1, err1 := parse("fuzz", data)
		r2, err2 := parse("fuzz", data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("parse not deterministic: err1=%v err2=%v", err1, err2)
		}
		if err1 != nil {
			return
		}
		b1, _ := json.Marshal(r1)
		b2, _ := json.Marshal(r2)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("parse not deterministic:\n%s\n%s", b1, b2)
		}
		if len(r1.Experiments) == 0 {
			t.Fatal("parse accepted a document with no experiments")
		}
		for _, e := range r1.Experiments {
			if e.ID == "" {
				t.Fatal("parse accepted an empty experiment id")
			}
			if e.Seconds < 0 || math.IsNaN(e.Seconds) || math.IsInf(e.Seconds, 0) {
				t.Fatalf("parse accepted invalid seconds %v for %s", e.Seconds, e.ID)
			}
		}
		if tot := total(r1); tot < 0 || math.IsNaN(tot) || math.IsInf(tot, 0) {
			t.Fatalf("accepted document has invalid total %v", tot)
		}
	})
}
