package main

import (
	"bytes"
	"strings"
	"testing"
)

// exec runs the CLI and returns (exit code, stdout, stderr).
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestIdenticalInputs: comparing a document against itself exits 0
// with every verdict ok.
func TestIdenticalInputs(t *testing.T) {
	code, out, errOut := exec(t, "testdata/base.json", "testdata/base.json")
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, errOut)
	}
	if strings.Contains(out, "WARN") || strings.Contains(out, "FAIL") {
		t.Fatalf("identical inputs flagged:\n%s", out)
	}
	if !strings.Contains(out, "no regressions past the fail threshold") {
		t.Fatalf("missing pass line:\n%s", out)
	}
	if got := strings.Count(out, "1.00x"); got != 3 {
		t.Fatalf("want 3 unity ratios, got %d:\n%s", got, out)
	}
}

// TestRegressionFails: a 2.6x regression on fig9 crosses the default
// 2.0x fail threshold and exits 1.
func TestRegressionFails(t *testing.T) {
	code, out, _ := exec(t, "testdata/base.json", "testdata/regressed.json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "fig9") || !strings.Contains(out, "FAIL") {
		t.Fatalf("fig9 regression not flagged:\n%s", out)
	}
	if !strings.Contains(out, "2.60x") {
		t.Fatalf("ratio missing:\n%s", out)
	}
	if got := strings.Count(out, "FAIL"); got != 1 {
		t.Fatalf("want exactly one FAIL row, got %d:\n%s", got, out)
	}
}

// TestRegressionWithinWarn: raising -fail past the regression demotes
// it to WARN and exits 0 (the CI soft-fail mode).
func TestRegressionWithinWarn(t *testing.T) {
	code, out, _ := exec(t, "-fail", "3.0", "testdata/base.json", "testdata/regressed.json")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "WARN") {
		t.Fatalf("regression not warned:\n%s", out)
	}
}

// TestNormalize: a uniformly 3x slower machine shows no regression
// under -normalize (shares are unchanged), but fails absolute mode.
func TestNormalize(t *testing.T) {
	code, out, _ := exec(t, "-normalize", "testdata/base.json", "testdata/scaled.json")
	if code != 0 {
		t.Fatalf("normalized uniform scaling exit = %d\n%s", code, out)
	}
	if strings.Contains(out, "FAIL") || strings.Contains(out, "WARN") {
		t.Fatalf("normalized uniform scaling flagged:\n%s", out)
	}
	code, out, _ = exec(t, "testdata/base.json", "testdata/scaled.json")
	if code != 1 {
		t.Fatalf("absolute 3x scaling exit = %d, want 1\n%s", code, out)
	}
}

// TestMinFloor: -min exempts sub-threshold experiments from flagging.
func TestMinFloor(t *testing.T) {
	// fig9 regresses 2.6x but both runs sit under -min 5.
	code, out, _ := exec(t, "-min", "5", "testdata/base.json", "testdata/regressed.json")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "tiny") || strings.Contains(out, "FAIL") {
		t.Fatalf("sub-threshold rows not exempted:\n%s", out)
	}
}

// TestUsageErrors: bad invocations exit 2.
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"testdata/base.json"},
		{"testdata/base.json", "testdata/nonexistent.json"},
		{"-warn", "2.0", "-fail", "1.5", "testdata/base.json", "testdata/base.json"},
	} {
		if code, _, _ := exec(t, args...); code != 2 {
			t.Fatalf("args %v: exit = %d, want 2", args, code)
		}
	}
}

// TestDeterministicOutput: two renders are byte-identical.
func TestDeterministicOutput(t *testing.T) {
	_, a, _ := exec(t, "testdata/base.json", "testdata/regressed.json")
	_, b, _ := exec(t, "testdata/base.json", "testdata/regressed.json")
	if a != b {
		t.Fatalf("output not deterministic:\n%s\n---\n%s", a, b)
	}
}
