// Command rtlint runs the repo's determinism/atomics/aliasing analyzer
// suite (internal/lint) over the module:
//
//	rtlint ./...                  # what make lint and CI run
//	rtlint ./internal/sim         # one package
//	rtlint -list                  # describe the analyzers
//	rtlint -format sarif ./...    # machine-readable output (json|sarif)
//
// Exit status: 0 no findings, 1 findings, 2 usage or load/type errors.
// Findings are suppressed per statement with a justified directive:
//
//	//rtlint:ignore <analyzer> <reason>
//
// The json and sarif formats render root-relative slash paths and sort
// findings by (file, line, column, analyzer, message), so output is
// byte-identical across machines and runs on the same tree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "describe the analyzers and exit")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: rtlint [-list] [-format text|json|sarif] [package pattern ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "rtlint: unknown format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "rtlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(loader.Config{Dir: root, Mode: loader.Module}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "rtlint: %v\n", err)
		return 2
	}

	results, err := lint.RunAll(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "rtlint: %v\n", err)
		return 2
	}

	var findings []finding
	for _, pr := range results {
		for _, d := range pr.Diags {
			p := pr.Pkg.Fset.Position(d.Pos)
			file := p.Filename
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
			findings = append(findings, finding{
				File: file, Line: p.Line, Col: p.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	switch *format {
	case "json":
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "rtlint: %v\n", err)
			return 2
		}
	case "sarif":
		if err := writeSARIF(stdout, analyzers, findings); err != nil {
			fmt.Fprintf(stderr, "rtlint: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "rtlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// finding is one diagnostic with its position resolved to a
// root-relative slash path, the unit of every output format.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, findings []finding) error {
	if findings == nil {
		findings = []finding{} // render [] rather than null
	}
	out, err := json.MarshalIndent(findings, "", "\t")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", out)
	return err
}

// SARIF 2.1.0, minimal static-analysis profile: one run, one rule per
// analyzer, one result per finding. Everything that could vary between
// machines (absolute paths, timestamps) is deliberately absent.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(w io.Writer, analyzers []*analysis.Analyzer, findings []finding) error {
	ruleIndex := map[string]int{}
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		ruleIndex[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	// Malformed //rtlint:ignore directives are attributed to "rtlint"
	// itself, which is not a listed analyzer; give it a rule too.
	ruleIndex["rtlint"] = len(rules)
	rules = append(rules, sarifRule{ID: "rtlint", ShortDescription: sarifText{
		Text: "malformed //rtlint:ignore directive (unknown analyzer or missing reason)"}})

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: ruleIndex[f.Analyzer],
			Level:     "warning",
			Message:   sarifText{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.File},
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rtlint", Rules: rules}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(log, "", "\t")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", out)
	return err
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", strings.TrimSpace(dir))
		}
		dir = parent
	}
}
