// Command rtlint runs the repo's determinism/atomics/aliasing analyzer
// suite (internal/lint) over the module:
//
//	rtlint ./...            # what make lint and CI run
//	rtlint ./internal/sim   # one package
//	rtlint -list            # describe the analyzers
//
// Exit status: 0 no findings, 1 findings, 2 usage or load/type errors.
// Findings are suppressed per statement with a justified directive:
//
//	//rtlint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "describe the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: rtlint [-list] [package pattern ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "rtlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(loader.Config{Dir: root, Mode: loader.Module}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "rtlint: %v\n", err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "rtlint: %s: %v\n", pkg.Path, err)
			return 2
		}
		for _, d := range diags {
			findings++
			fmt.Fprintln(stdout, d.String(pkg.Fset))
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "rtlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", strings.TrimSpace(dir))
		}
		dir = parent
	}
}
