package main

import (
	"strings"
	"testing"
)

// TestList prints one line per analyzer.
func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("rtlint -list exited %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"maporder", "simclock", "atomicmix", "sharedtask", "floatcmp"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("rtlint -list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

// TestCleanPackage runs the real loader and analyzers over a small repo
// package that must stay finding-free.
func TestCleanPackage(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"./internal/rtime"}, &out, &errb); code != 0 {
		t.Fatalf("rtlint ./internal/rtime exited %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

// TestBadPattern exits 2 on load errors.
func TestBadPattern(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"./no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("rtlint on bogus pattern exited %d, want 2", code)
	}
}
