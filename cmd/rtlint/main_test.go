package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestList prints one line per analyzer.
func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("rtlint -list exited %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"maporder", "simclock", "atomicmix", "sharedtask", "floatcmp",
		"noalloc", "casloop", "atomicalign"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("rtlint -list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

// TestCleanPackage runs the real loader and analyzers over a small repo
// package that must stay finding-free.
func TestCleanPackage(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"./internal/rtime"}, &out, &errb); code != 0 {
		t.Fatalf("rtlint ./internal/rtime exited %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

// TestBadPattern exits 2 on load errors.
func TestBadPattern(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"./no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("rtlint on bogus pattern exited %d, want 2", code)
	}
}

// writeFormatFixture materializes a tiny module with two stable
// findings (one maporder, one simclock) for the output-format tests.
func writeFormatFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module sarifmod\n\ngo 1.22\n",
		"internal/sim/sim.go": `// Package sim is the rtlint output-format fixture: two stable findings.
package sim

import "time"

// Tally walks a map in randomized order: maporder fires.
func Tally(counts map[string]int, emit func(string, int)) {
	for k, n := range counts {
		emit(k, n)
	}
}

// Stamp reads the wall clock: simclock fires.
func Stamp() int64 {
	return time.Now().UnixNano()
}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestSARIFGolden pins the sarif output byte for byte: root-relative
// slash URIs and (file, line, col, analyzer, message) ordering make it
// machine-independent, and two runs must produce identical bytes.
// Regenerate testdata/golden.sarif with
// `rtlint -format sarif ./...` from inside the fixture module after a
// deliberate format or analyzer-doc change.
func TestSARIFGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "golden.sarif"))
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(writeFormatFixture(t))

	var first []byte
	for i := 0; i < 2; i++ {
		var out, errb strings.Builder
		if code := run([]string{"-format", "sarif", "./..."}, &out, &errb); code != 1 {
			t.Fatalf("run %d: exited %d, want 1 (findings)\nstderr: %s", i, code, errb.String())
		}
		got := []byte(out.String())
		if i == 0 {
			first = got
			continue
		}
		if !bytes.Equal(first, got) {
			t.Fatalf("sarif output differs between identical runs:\nfirst:\n%s\nsecond:\n%s", first, got)
		}
	}
	if !bytes.Equal(first, golden) {
		t.Errorf("sarif output does not match testdata/golden.sarif\ngot:\n%s\nwant:\n%s", first, golden)
	}
}

// TestJSONFormat checks the json rendering: a sorted array of findings
// with root-relative paths.
func TestJSONFormat(t *testing.T) {
	t.Chdir(writeFormatFixture(t))
	var out, errb strings.Builder
	if code := run([]string{"-format", "json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exited %d, want 1 (findings)\nstderr: %s", code, errb.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, out.String())
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(findings), out.String())
	}
	if findings[0].File != "internal/sim/sim.go" || findings[0].Analyzer != "maporder" {
		t.Errorf("first finding = %+v, want maporder in internal/sim/sim.go", findings[0])
	}
	if findings[1].Analyzer != "simclock" || findings[1].Line <= findings[0].Line {
		t.Errorf("second finding = %+v, want simclock after the maporder line", findings[1])
	}
}

// TestBadFormat exits 2 on an unknown -format value.
func TestBadFormat(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-format", "yaml"}, &out, &errb); code != 2 {
		t.Fatalf("rtlint -format yaml exited %d, want 2", code)
	}
}
