// Command rtsim regenerates the paper's tables and figures. Each
// experiment id corresponds to one figure/theorem of the evaluation (see
// DESIGN.md's per-experiment index):
//
//	rtsim -list
//	rtsim fig9
//	rtsim -profile quick fig8 fig12
//	rtsim all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiment"
)

func main() {
	profile := flag.String("profile", "full", "experiment profile: full or quick")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text or csv")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rtsim [-profile full|quick] <experiment>... | all\n\nexperiments:\n")
		for _, n := range experiment.Names() {
			fmt.Fprintf(os.Stderr, "  %s\n", n)
		}
	}
	flag.Parse()

	if *list {
		for _, n := range experiment.Names() {
			fmt.Println(n)
		}
		return
	}
	var p experiment.Profile
	switch *profile {
	case "full":
		p = experiment.Full
	case "quick":
		p = experiment.Quick
	default:
		fmt.Fprintf(os.Stderr, "rtsim: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = experiment.Names()
	}

	exitCode := 0
	for _, id := range ids {
		run, ok := experiment.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "rtsim: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables, err := run(p)
		for _, t := range tables {
			if *format == "csv" {
				fmt.Println(t.RenderCSV())
			} else {
				fmt.Println(t.Render())
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtsim: %s: %v\n", id, err)
			exitCode = 1
			continue
		}
		fmt.Printf("(%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exitCode)
}
