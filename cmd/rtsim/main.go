// Command rtsim regenerates the paper's tables and figures. Each
// experiment id corresponds to one figure/theorem of the evaluation (see
// DESIGN.md's per-experiment index):
//
//	rtsim -list
//	rtsim fig9
//	rtsim -profile quick fig8 fig12
//	rtsim -jobs 4 all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiment"
	"repro/internal/runner"
)

// benchEntry is one experiment's wall-clock timing for -bench-json.
type benchEntry struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// benchReport is the -bench-json document.
type benchReport struct {
	Profile     string       `json:"profile"`
	Jobs        int          `json:"jobs"`
	Experiments []benchEntry `json:"experiments"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the end-to-end
// determinism test can execute the full CLI twice and diff stdout.
// Everything written to stdout is a pure function of the flags and
// experiment ids; wall-clock timing goes only to stderr and the
// -bench-json file.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	profile := fs.String("profile", "full", "experiment profile: full or quick")
	list := fs.Bool("list", false, "list experiment ids and exit")
	format := fs.String("format", "text", "output format: text or csv")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "simulation runs to execute in parallel (output is identical for any value)")
	benchJSON := fs.String("bench-json", "", "write per-experiment wall-clock timings to `file` as JSON")
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: rtsim [flags] <experiment>... | all

flags:
  -profile full|quick  experiment scale: full (paper-scale horizons, 5
                       seeds) or quick (short horizons, 1 seed)
  -jobs N              run up to N independent simulations in parallel
                       (default: one per CPU); rendered tables are
                       byte-identical for any N
  -format text|csv     table output format
  -bench-json FILE     also write per-experiment wall-clock seconds to
                       FILE as JSON
  -list                list experiment ids and exit

experiments:
`)
		for _, n := range experiment.Names() {
			fmt.Fprintf(stderr, "  %s\n", n)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, n := range experiment.Names() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}
	var p experiment.Profile
	switch *profile {
	case "full":
		p = experiment.Full
	case "quick":
		p = experiment.Quick
	default:
		fmt.Fprintf(stderr, "rtsim: unknown profile %q\n", *profile)
		return 2
	}
	p.Jobs = *jobs

	args = fs.Args()
	if len(args) == 0 {
		fs.Usage()
		return 2
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = experiment.Names()
	}

	report := benchReport{Profile: p.Name, Jobs: runner.Jobs(p.Jobs)}
	exitCode := 0
	for _, id := range ids {
		runExp, ok := experiment.Registry[id]
		if !ok {
			fmt.Fprintf(stderr, "rtsim: unknown experiment %q (try -list)\n", id)
			return 2
		}
		start := time.Now() //rtlint:ignore simclock -bench-json reports harness wall-clock, not simulation time
		tables, err := runExp(p)
		elapsed := time.Since(start) //rtlint:ignore simclock -bench-json reports harness wall-clock, not simulation time
		report.Experiments = append(report.Experiments, benchEntry{ID: id, Seconds: elapsed.Seconds()})
		for _, t := range tables {
			if *format == "csv" {
				fmt.Fprintln(stdout, t.RenderCSV())
			} else {
				fmt.Fprintln(stdout, t.Render())
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: %s: %v\n", id, err)
			exitCode = 1
			continue
		}
		fmt.Fprintf(stderr, "(%s finished in %v)\n\n", id, elapsed.Round(time.Millisecond))
	}
	if *benchJSON != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchJSON, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: bench-json: %v\n", err)
			exitCode = 1
		}
	}
	return exitCode
}
