// Command rtsim regenerates the paper's tables and figures. Each
// experiment id corresponds to one figure/theorem of the evaluation (see
// DESIGN.md's per-experiment index):
//
//	rtsim -list
//	rtsim fig9
//	rtsim -profile quick fig8 fig12
//	rtsim -jobs 4 all
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/rtime"
	"repro/internal/runner"
	"repro/internal/stoch"
	"repro/internal/trace"
	"repro/internal/trace/span"
)

// benchEntry is one experiment's wall-clock timing for -bench-json.
type benchEntry struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// benchReport is the -bench-json document.
type benchReport struct {
	Profile     string       `json:"profile"`
	Jobs        int          `json:"jobs"`
	Experiments []benchEntry `json:"experiments"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the end-to-end
// determinism test can execute the full CLI twice and diff stdout.
// Everything written to stdout is a pure function of the flags and
// experiment ids; wall-clock timing goes only to stderr and the
// -bench-json file.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	profile := fs.String("profile", "full", "experiment profile: full or quick")
	list := fs.Bool("list", false, "list experiment ids and exit")
	format := fs.String("format", "text", "output format: text or csv")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "simulation runs to execute in parallel (output is identical for any value)")
	benchJSON := fs.String("bench-json", "", "write per-experiment wall-clock timings to `file` as JSON")
	traceFile := fs.String("trace", "", "run the canonical trace workload and write its trace to `file`")
	traceFormat := fs.String("trace-format", "perfetto", "trace file format: json, perfetto, or spans")
	traceSim := fs.String("trace-sim", experiment.TraceSimUni, "traced simulator: uni, multi, or global")
	traceMode := fs.String("trace-mode", "lockfree", "traced synchronization mode: lockfree or lockbased")
	traceLimit := fs.Int("trace-limit", 0, "keep at most `n` trace events (0 = unbounded); drops are counted, never silent")
	flight := fs.Int("flight", 0, "attach a flight recorder retaining the last `n` events to the traced run; dumps FILE.flight.json on the first anomaly")
	progress := fs.Bool("progress", false, "print deterministic virtual-time progress lines to stderr during the traced run")
	stream := fs.Bool("stream", false, "fold -metrics/-report online (bounded memory) instead of recording full event streams; output is byte-identical")
	checkBounds := fs.Bool("check-bounds", false, "run the Theorem 2/3 bound-check suite; exit 1 on any violation")
	faults := fs.String("faults", "", "inject a deterministic fault plan into traced runs: off, light, heavy, or key=value pairs (see internal/fault)")
	faultSeed := fs.Int64("fault-seed", 0, "override the fault plan's seed (0 keeps the plan's own)")
	stochPlan := fs.String("stoch", "", "overlay the seeded stochastic scheduler on traced runs: off, uni, geo, or key=value pairs (see internal/stoch)")
	stochSeed := fs.Int64("stoch-seed", 0, "override the stochastic plan's seed (0 keeps the plan's own)")
	reportDir := fs.String("report", "", "write the canonical-workload CSV+HTML report into `dir` (experiment args become its figure sections)")
	metrics := fs.Bool("metrics", false, "print the canonical-workload metrics digest")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to `file`")
	memProfile := fs.String("memprofile", "", "write a heap profile to `file` on exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: rtsim [flags] <experiment>... | all
       rtsim [flags] -trace FILE [-trace-format json|perfetto|spans]
       rtsim [flags] -check-bounds
       rtsim [flags] -metrics
       rtsim [flags] -report DIR [<experiment>...]

flags:
  -profile full|quick  experiment scale: full (paper-scale horizons, 5
                       seeds) or quick (short horizons, 1 seed)
  -jobs N              run up to N independent simulations in parallel
                       (default: one per CPU); rendered tables are
                       byte-identical for any N
  -format text|csv     table output format
  -bench-json FILE     also write per-experiment wall-clock seconds to
                       FILE as JSON
  -list                list experiment ids and exit

observability:
  -trace FILE          run the canonical trace workload fully observed
                       and write the trace to FILE
  -trace-format FMT    json (raw events), perfetto (open the file at
                       ui.perfetto.dev), or spans (per-job text)
  -trace-sim SIM       uni (default), multi (partitioned), or global
  -trace-mode MODE     lockfree (default) or lockbased
  -trace-limit N       keep at most N trace events (0 = unbounded); the
                       drop count is reported on stdout, never silent
  -flight N            bounded flight recorder: retain the last N events
                       of the traced run and dump them to FILE.flight.json
                       the moment the first anomaly (shed or fault-induced
                       abort) occurs
  -progress            stream deterministic progress lines (virtual time,
                       commits, retries, attempt p99, live jobs, flight
                       occupancy) to stderr while the traced run executes
  -stream              fold -metrics and -report online through the
                       internal/obs pipeline — O(windows + live jobs)
                       memory instead of O(events) — with byte-identical
                       output
  -check-bounds        check observed retries and sojourns against the
                       Theorem 2/3 bounds across the trace suite; any
                       violation exits 1
  -faults PLAN         inject a seeded, deterministic fault plan (arrival
                       bursts/jitter, execution overruns, phantom CAS
                       failures, scheduler stalls) into every traced run:
                       off, light, heavy, or comma-separated key=value
                       pairs (seed, burstp, burstn, jitterp, jitterus,
                       overrunp, overrunfrac, casp, casmax, stallp,
                       stallus, intensity); bound checks re-run against
                       the plan's inflated arrival curves and flag
                       model-exceeding violations as expected
  -fault-seed N        override the fault plan's seed (0 keeps it)
  -stoch PLAN          overlay the seeded stochastic scheduler on every
                       traced run: quanta drawn from a uniform or
                       geometric distribution force preemptions, and
                       random picks (or ranked-list shuffles on the
                       global engine) perturb dispatch; off, uni, geo,
                       or comma-separated key=value pairs (seed,
                       quantumus, pickp); every decision is a pure hash
                       of (seed, cpu, tick), so output stays
                       byte-identical for any -jobs value
  -stoch-seed N        override the stochastic plan's seed (0 keeps it)
  -metrics             fold the canonical workload on every simulator ×
                       mode into distribution digests (p50/p95/p99/max
                       vs the Theorem 2/3 bounds) and print them
  -report DIR          write the full report into DIR: per-distribution
                       and per-window CSVs plus a self-contained
                       report.html; experiment args listed after the
                       flags become the report's figure sections
  -cpuprofile FILE     write a CPU profile of the whole invocation
  -memprofile FILE     write a heap profile on exit

experiments:
`)
		for _, n := range experiment.Names() {
			fmt.Fprintf(stderr, "  %s\n", n)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, n := range experiment.Names() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}
	var p experiment.Profile
	switch *profile {
	case "full":
		p = experiment.Full
	case "quick":
		p = experiment.Quick
	default:
		fmt.Fprintf(stderr, "rtsim: unknown profile %q\n", *profile)
		return 2
	}
	p.Jobs = *jobs
	if *faults != "" {
		plan, err := fault.ParsePlan(*faults)
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: %v\n", err)
			return 2
		}
		if *faultSeed != 0 && plan != nil {
			plan.Seed = *faultSeed
		}
		p.Fault = plan
	}
	if *stochPlan != "" {
		plan, err := stoch.ParsePlan(*stochPlan)
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: %v\n", err)
			return 2
		}
		if *stochSeed != 0 && plan != nil {
			plan.Seed = *stochSeed
		}
		p.Stoch = plan
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "rtsim: cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "rtsim: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "rtsim: memprofile: %v\n", err)
			}
		}()
	}

	exitCode := 0
	if *traceFile != "" {
		if err := writeTrace(p, *traceFile, *traceFormat, *traceSim, *traceMode, *traceLimit, *flight, *progress, stdout, stderr); err != nil {
			fmt.Fprintf(stderr, "rtsim: trace: %v\n", err)
			return 1
		}
	}
	if *checkBounds {
		report, ok, err := experiment.CheckBounds(p)
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: check-bounds: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, report)
		if !ok {
			exitCode = 1
		}
	}

	args = fs.Args()
	if *metrics || *reportDir != "" {
		// Positional args are the report's figure sections, not a
		// separate experiment run; "all" means every registered one.
		figIDs := args
		if len(args) == 1 && args[0] == "all" {
			figIDs = experiment.Names()
		}
		// -stream swaps the post-hoc builder for the online pipeline;
		// both render byte-identically (pinned by the experiment tests).
		build := experiment.BuildReport
		if *stream {
			build = experiment.BuildReportStream
		}
		if *metrics {
			// The digest skips the figure sweeps: it is the fast look.
			rep, err := build(p, nil)
			if err != nil {
				fmt.Fprintf(stderr, "rtsim: metrics: %v\n", err)
				return 1
			}
			if err := rep.WriteText(stdout); err != nil {
				fmt.Fprintf(stderr, "rtsim: metrics: %v\n", err)
				return 1
			}
		}
		if *reportDir != "" {
			if err := writeReport(p, build, *reportDir, figIDs, stdout); err != nil {
				fmt.Fprintf(stderr, "rtsim: report: %v\n", err)
				return 1
			}
		}
		return exitCode
	}
	if len(args) == 0 {
		if *traceFile != "" || *checkBounds {
			return exitCode
		}
		fs.Usage()
		return 2
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = experiment.Names()
	}

	report := benchReport{Profile: p.Name, Jobs: runner.Jobs(p.Jobs)}
	for _, id := range ids {
		runExp, ok := experiment.Registry[id]
		if !ok {
			fmt.Fprintf(stderr, "rtsim: unknown experiment %q (try -list)\n", id)
			return 2
		}
		start := time.Now() //rtlint:ignore simclock -bench-json reports harness wall-clock, not simulation time
		tables, err := runExp(p)
		elapsed := time.Since(start) //rtlint:ignore simclock -bench-json reports harness wall-clock, not simulation time
		report.Experiments = append(report.Experiments, benchEntry{ID: id, Seconds: elapsed.Seconds()})
		for _, t := range tables {
			if *format == "csv" {
				fmt.Fprintln(stdout, t.RenderCSV())
			} else {
				fmt.Fprintln(stdout, t.Render())
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: %s: %v\n", id, err)
			exitCode = 1
			continue
		}
		fmt.Fprintf(stderr, "(%s finished in %v)\n\n", id, elapsed.Round(time.Millisecond))
	}
	if *benchJSON != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchJSON, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: bench-json: %v\n", err)
			exitCode = 1
		}
	}
	return exitCode
}

// writeReport builds the canonical-workload report (with the batch or
// streaming builder) and writes its CSV artifacts plus the
// self-contained HTML page into dir. The stdout listing and every file
// are byte-identical for any -jobs value and either builder.
func writeReport(p experiment.Profile, build func(experiment.Profile, []string) (*report.Report, error), dir string, figIDs []string, stdout io.Writer) error {
	rep, err := build(p, figIDs)
	if err != nil {
		return err
	}
	names, err := rep.WriteCSVDir(dir)
	if err != nil {
		return err
	}
	var html bytes.Buffer
	if err := rep.WriteHTML(&html); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "report.html"), html.Bytes(), 0o644); err != nil {
		return err
	}
	names = append(names, "report.html")
	fmt.Fprintf(stdout, "report: profile=%s runs=%d figs=%d files=%d dir=%s\n",
		p.Name, len(rep.Runs), len(rep.Figs), len(names), dir)
	for _, n := range names {
		fmt.Fprintf(stdout, "  %s\n", n)
	}
	return nil
}

// writeTrace runs one fully-observed canonical-workload simulation and
// writes its trace to file in the requested format. An obs.Pipeline
// rides along when -flight or -progress ask for it: the engine's single
// observer stream is Tee'd between the recorder and the online sinks.
// The stdout summary, the trace file, and the flight dump are pure
// functions of (profile, sim, mode, limit, flight): byte-identical for
// any -jobs value. Only -progress touches stderr.
func writeTrace(p experiment.Profile, file, format, simName, mode string, limit, flight int, progress bool, stdout, stderr io.Writer) error {
	var lockBased bool
	switch mode {
	case "lockfree":
	case "lockbased":
		lockBased = true
	default:
		return fmt.Errorf("unknown -trace-mode %q (want lockfree or lockbased)", mode)
	}
	seed := p.Seeds[0]
	tasks, horizon, err := experiment.TraceSetup(p)
	if err != nil {
		return err
	}

	rec := trace.NewRecorder(limit)
	observer := rec.Record
	var pipe *obs.Pipeline
	var dumpFile string
	var dumpErr error
	dumpLen, dumpDropped := 0, int64(0)
	if flight > 0 || progress {
		cpus := 1
		if simName != experiment.TraceSimUni {
			cpus = experiment.TraceCPUs
		}
		cfg := obs.Config{Horizon: horizon, CPUs: cpus, Flight: flight}
		if progress {
			// Ten lines per run, paced by virtual time — a pure function
			// of the horizon, so progress output is deterministic too.
			every := rtime.Duration(horizon / 10)
			if every < 1 {
				every = 1
			}
			cfg.Progress = stderr
			cfg.ProgressEvery = every
		}
		if flight > 0 {
			dumpFile = file + ".flight.json"
			cfg.OnTrigger = func(reason string, at rtime.Time) {
				// Dump the ring the moment the anomaly happens: the
				// window ends at the event that tripped it.
				dumpLen, dumpDropped = pipe.Flight().Len(), pipe.Flight().Dropped()
				var b bytes.Buffer
				if dumpErr = pipe.Flight().WritePerfetto(&b); dumpErr == nil {
					dumpErr = os.WriteFile(dumpFile, b.Bytes(), 0o644)
				}
			}
		}
		if pipe, err = obs.NewPipeline(cfg); err != nil {
			return err
		}
		observer = obs.Tee(obs.Func(rec.Record), pipe)
	}

	if err := experiment.StreamTrace(p, simName, lockBased, seed, tasks, horizon, observer); err != nil {
		return err
	}
	var res *obs.Results
	if pipe != nil {
		if res, err = pipe.Finish(); err != nil {
			return err
		}
		if dumpErr != nil {
			return fmt.Errorf("flight dump: %w", dumpErr)
		}
	}

	events := rec.Events()
	var buf bytes.Buffer
	switch format {
	case "json":
		err = trace.WriteJSON(&buf, events)
	case "perfetto":
		err = trace.WritePerfetto(&buf, events)
	case "spans":
		var spans []span.JobSpan
		if spans, err = span.Build(events, horizon); err == nil {
			err = span.WriteText(&buf, spans)
		}
	default:
		return fmt.Errorf("unknown -trace-format %q (want json, perfetto, or spans)", format)
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(file, buf.Bytes(), 0o644); err != nil {
		return err
	}
	dropped := ""
	if rec.Dropped() > 0 {
		dropped = fmt.Sprintf(" dropped=%d", rec.Dropped())
	}
	fmt.Fprintf(stdout, "trace: sim=%s mode=%s seed=%d profile=%s events=%d%s horizon=%v format=%s\n",
		simName, mode, seed, p.Name, len(events), dropped, horizon, format)
	fmt.Fprintf(stdout, "counts: %s\n", trace.Summary(events))
	if res != nil && res.Trigger != "" && flight > 0 {
		fmt.Fprintf(stdout, "flight: trigger=%s at=%dus events=%d dropped=%d file=%s\n",
			res.Trigger, res.TriggerAt.Micros(), dumpLen, dumpDropped, dumpFile)
	}
	return nil
}
