// Command rtsim regenerates the paper's tables and figures. Each
// experiment id corresponds to one figure/theorem of the evaluation (see
// DESIGN.md's per-experiment index):
//
//	rtsim -list
//	rtsim fig9
//	rtsim -profile quick fig8 fig12
//	rtsim -jobs 4 all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/artifact"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/stoch"
)

// benchEntry is one experiment's wall-clock timing for -bench-json.
type benchEntry struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// benchReport is the -bench-json document.
type benchReport struct {
	Profile     string       `json:"profile"`
	Jobs        int          `json:"jobs"`
	Experiments []benchEntry `json:"experiments"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the end-to-end
// determinism test can execute the full CLI twice and diff stdout.
// Everything written to stdout is a pure function of the flags and
// experiment ids; wall-clock timing goes only to stderr and the
// -bench-json file.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	profile := fs.String("profile", "full", "experiment profile: full or quick")
	list := fs.Bool("list", false, "list experiment ids and exit")
	format := fs.String("format", "text", "output format: text or csv")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "simulation runs to execute in parallel (output is identical for any value)")
	benchJSON := fs.String("bench-json", "", "write per-experiment wall-clock timings to `file` as JSON")
	traceFile := fs.String("trace", "", "run the canonical trace workload and write its trace to `file`")
	traceFormat := fs.String("trace-format", "perfetto", "trace file format: json, perfetto, or spans")
	traceSim := fs.String("trace-sim", experiment.TraceSimUni, "traced simulator: uni, multi, or global")
	traceMode := fs.String("trace-mode", "lockfree", "traced synchronization mode: lockfree or lockbased")
	traceLimit := fs.Int("trace-limit", 0, "keep at most `n` trace events (0 = unbounded); drops are counted, never silent")
	flight := fs.Int("flight", 0, "attach a flight recorder retaining the last `n` events to the traced run; dumps FILE.flight.json on the first anomaly")
	progress := fs.Bool("progress", false, "print deterministic virtual-time progress lines to stderr during the traced run")
	stream := fs.Bool("stream", false, "fold -metrics/-report online (bounded memory) instead of recording full event streams; output is byte-identical")
	checkBounds := fs.Bool("check-bounds", false, "run the Theorem 2/3 bound-check suite; exit 1 on any violation")
	faults := fs.String("faults", "", "inject a deterministic fault plan into traced runs: off, light, heavy, or key=value pairs (see internal/fault)")
	faultSeed := fs.Int64("fault-seed", 0, "override the fault plan's seed (0 keeps the plan's own)")
	stochPlan := fs.String("stoch", "", "overlay the seeded stochastic scheduler on traced runs: off, uni, geo, or key=value pairs (see internal/stoch)")
	stochSeed := fs.Int64("stoch-seed", 0, "override the stochastic plan's seed (0 keeps the plan's own)")
	reportDir := fs.String("report", "", "write the canonical-workload CSV+HTML report into `dir` (experiment args become its figure sections)")
	metrics := fs.Bool("metrics", false, "print the canonical-workload metrics digest")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to `file`")
	memProfile := fs.String("memprofile", "", "write a heap profile to `file` on exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: rtsim [flags] <experiment>... | all
       rtsim [flags] -trace FILE [-trace-format json|perfetto|spans]
       rtsim [flags] -check-bounds
       rtsim [flags] -metrics
       rtsim [flags] -report DIR [<experiment>...]

flags:
  -profile full|quick  experiment scale: full (paper-scale horizons, 5
                       seeds) or quick (short horizons, 1 seed)
  -jobs N              run up to N independent simulations in parallel
                       (default: one per CPU); rendered tables are
                       byte-identical for any N
  -format text|csv     table output format
  -bench-json FILE     also write per-experiment wall-clock seconds to
                       FILE as JSON
  -list                list experiment ids and exit

observability:
  -trace FILE          run the canonical trace workload fully observed
                       and write the trace to FILE
  -trace-format FMT    json (raw events), perfetto (open the file at
                       ui.perfetto.dev), or spans (per-job text)
  -trace-sim SIM       uni (default), multi (partitioned), or global
  -trace-mode MODE     lockfree (default) or lockbased
  -trace-limit N       keep at most N trace events (0 = unbounded); the
                       drop count is reported on stdout, never silent
  -flight N            bounded flight recorder: retain the last N events
                       of the traced run and dump them to FILE.flight.json
                       the moment the first anomaly (shed or fault-induced
                       abort) occurs
  -progress            stream deterministic progress lines (virtual time,
                       commits, retries, attempt p99, live jobs, flight
                       occupancy) to stderr while the traced run executes
  -stream              fold -metrics and -report online through the
                       internal/obs pipeline — O(windows + live jobs)
                       memory instead of O(events) — with byte-identical
                       output
  -check-bounds        check observed retries and sojourns against the
                       Theorem 2/3 bounds across the trace suite; any
                       violation exits 1
  -faults PLAN         inject a seeded, deterministic fault plan (arrival
                       bursts/jitter, execution overruns, phantom CAS
                       failures, scheduler stalls) into every traced run:
                       off, light, heavy, or comma-separated key=value
                       pairs (seed, burstp, burstn, jitterp, jitterus,
                       overrunp, overrunfrac, casp, casmax, stallp,
                       stallus, intensity); bound checks re-run against
                       the plan's inflated arrival curves and flag
                       model-exceeding violations as expected
  -fault-seed N        override the fault plan's seed (0 keeps it)
  -stoch PLAN          overlay the seeded stochastic scheduler on every
                       traced run: quanta drawn from a uniform or
                       geometric distribution force preemptions, and
                       random picks (or ranked-list shuffles on the
                       global engine) perturb dispatch; off, uni, geo,
                       or comma-separated key=value pairs (seed,
                       quantumus, pickp); every decision is a pure hash
                       of (seed, cpu, tick), so output stays
                       byte-identical for any -jobs value
  -stoch-seed N        override the stochastic plan's seed (0 keeps it)
  -metrics             fold the canonical workload on every simulator ×
                       mode into distribution digests (p50/p95/p99/max
                       vs the Theorem 2/3 bounds) and print them
  -report DIR          write the full report into DIR: per-distribution
                       and per-window CSVs plus a self-contained
                       report.html; experiment args listed after the
                       flags become the report's figure sections
  -cpuprofile FILE     write a CPU profile of the whole invocation
  -memprofile FILE     write a heap profile on exit

experiments:
`)
		for _, n := range experiment.Names() {
			fmt.Fprintf(stderr, "  %s\n", n)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, n := range experiment.Names() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}
	var p experiment.Profile
	switch *profile {
	case "full":
		p = experiment.Full
	case "quick":
		p = experiment.Quick
	default:
		fmt.Fprintf(stderr, "rtsim: unknown profile %q\n", *profile)
		return 2
	}
	p.Jobs = *jobs
	if *faults != "" {
		plan, err := fault.ParsePlan(*faults)
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: %v\n", err)
			return 2
		}
		if *faultSeed != 0 && plan != nil {
			plan.Seed = *faultSeed
		}
		p.Fault = plan
	}
	if *stochPlan != "" {
		plan, err := stoch.ParsePlan(*stochPlan)
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: %v\n", err)
			return 2
		}
		if *stochSeed != 0 && plan != nil {
			plan.Seed = *stochSeed
		}
		p.Stoch = plan
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "rtsim: cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "rtsim: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "rtsim: memprofile: %v\n", err)
			}
		}()
	}

	exitCode := 0
	if *traceFile != "" {
		if err := writeTrace(p, *traceFile, *traceFormat, *traceSim, *traceMode, *traceLimit, *flight, *progress, stdout, stderr); err != nil {
			fmt.Fprintf(stderr, "rtsim: trace: %v\n", err)
			return 1
		}
	}
	if *checkBounds {
		report, ok, err := experiment.CheckBounds(p)
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: check-bounds: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, report)
		if !ok {
			exitCode = 1
		}
	}

	args = fs.Args()
	if *metrics || *reportDir != "" {
		// Positional args are the report's figure sections, not a
		// separate experiment run; "all" means every registered one.
		figIDs := args
		if len(args) == 1 && args[0] == "all" {
			figIDs = experiment.Names()
		}
		// -stream swaps the post-hoc builder for the online pipeline;
		// both render byte-identically (pinned by the experiment tests).
		if *metrics {
			// The digest skips the figure sweeps: it is the fast look.
			digest, err := artifact.BuildMetrics(p, *stream)
			if err != nil {
				fmt.Fprintf(stderr, "rtsim: metrics: %v\n", err)
				return 1
			}
			if _, err := stdout.Write(digest); err != nil {
				fmt.Fprintf(stderr, "rtsim: metrics: %v\n", err)
				return 1
			}
		}
		if *reportDir != "" {
			if err := writeReport(p, *stream, *reportDir, figIDs, stdout); err != nil {
				fmt.Fprintf(stderr, "rtsim: report: %v\n", err)
				return 1
			}
		}
		return exitCode
	}
	if len(args) == 0 {
		if *traceFile != "" || *checkBounds {
			return exitCode
		}
		fs.Usage()
		return 2
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = experiment.Names()
	}

	report := benchReport{Profile: p.Name, Jobs: runner.Jobs(p.Jobs)}
	for _, id := range ids {
		runExp, ok := experiment.Registry[id]
		if !ok {
			fmt.Fprintf(stderr, "rtsim: unknown experiment %q (try -list)\n", id)
			return 2
		}
		start := time.Now() //rtlint:ignore simclock -bench-json reports harness wall-clock, not simulation time
		tables, err := runExp(p)
		elapsed := time.Since(start) //rtlint:ignore simclock -bench-json reports harness wall-clock, not simulation time
		report.Experiments = append(report.Experiments, benchEntry{ID: id, Seconds: elapsed.Seconds()})
		for _, t := range tables {
			if *format == "csv" {
				fmt.Fprintln(stdout, t.RenderCSV())
			} else {
				fmt.Fprintln(stdout, t.Render())
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: %s: %v\n", id, err)
			exitCode = 1
			continue
		}
		fmt.Fprintf(stderr, "(%s finished in %v)\n\n", id, elapsed.Round(time.Millisecond))
	}
	if *benchJSON != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchJSON, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: bench-json: %v\n", err)
			exitCode = 1
		}
	}
	return exitCode
}

// writeReport builds the canonical-workload report (with the batch or
// streaming builder) via the shared artifact path — the same bytes the
// rtsimd daemon serves — and writes every file into dir. The stdout
// listing and every file are byte-identical for any -jobs value and
// either builder.
func writeReport(p experiment.Profile, stream bool, dir string, figIDs []string, stdout io.Writer) error {
	set, err := artifact.BuildReportSet(p, figIDs, stream)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range set.Files {
		if err := os.WriteFile(filepath.Join(dir, f.Name), f.Data, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "report: profile=%s runs=%d figs=%d files=%d dir=%s\n",
		p.Name, set.Runs, set.Figs, len(set.Files), dir)
	for _, n := range set.Names() {
		fmt.Fprintf(stdout, "  %s\n", n)
	}
	return nil
}

// writeTrace runs one fully-observed canonical-workload simulation via
// the shared artifact path — the same bytes the rtsimd daemon serves —
// and writes the trace (plus any flight dump) to disk. The stdout
// summary, the trace file, and the flight dump are pure functions of
// (profile, sim, mode, limit, flight): byte-identical for any -jobs
// value. Only -progress touches stderr.
func writeTrace(p experiment.Profile, file, format, simName, mode string, limit, flight int, progress bool, stdout, stderr io.Writer) error {
	o := artifact.TraceOptions{Sim: simName, Mode: mode, Format: format, Limit: limit, Flight: flight}
	if progress {
		o.Progress = stderr
	}
	t, err := artifact.BuildTrace(p, o)
	if err != nil {
		return err
	}
	if err := os.WriteFile(file, t.Data, 0o644); err != nil {
		return err
	}
	dumpFile := file + ".flight.json"
	if t.FlightDump != nil {
		if err := os.WriteFile(dumpFile, t.FlightDump, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprint(stdout, t.Summary(file, dumpFile))
	return nil
}
