// Command rtsim regenerates the paper's tables and figures. Each
// experiment id corresponds to one figure/theorem of the evaluation (see
// DESIGN.md's per-experiment index):
//
//	rtsim -list
//	rtsim fig9
//	rtsim -profile quick fig8 fig12
//	rtsim -jobs 4 all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiment"
	"repro/internal/runner"
)

// benchEntry is one experiment's wall-clock timing for -bench-json.
type benchEntry struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// benchReport is the -bench-json document.
type benchReport struct {
	Profile     string       `json:"profile"`
	Jobs        int          `json:"jobs"`
	Experiments []benchEntry `json:"experiments"`
}

func main() {
	profile := flag.String("profile", "full", "experiment profile: full or quick")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text or csv")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "simulation runs to execute in parallel (output is identical for any value)")
	benchJSON := flag.String("bench-json", "", "write per-experiment wall-clock timings to `file` as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: rtsim [flags] <experiment>... | all

flags:
  -profile full|quick  experiment scale: full (paper-scale horizons, 5
                       seeds) or quick (short horizons, 1 seed)
  -jobs N              run up to N independent simulations in parallel
                       (default: one per CPU); rendered tables are
                       byte-identical for any N
  -format text|csv     table output format
  -bench-json FILE     also write per-experiment wall-clock seconds to
                       FILE as JSON
  -list                list experiment ids and exit

experiments:
`)
		for _, n := range experiment.Names() {
			fmt.Fprintf(os.Stderr, "  %s\n", n)
		}
	}
	flag.Parse()

	if *list {
		for _, n := range experiment.Names() {
			fmt.Println(n)
		}
		return
	}
	var p experiment.Profile
	switch *profile {
	case "full":
		p = experiment.Full
	case "quick":
		p = experiment.Quick
	default:
		fmt.Fprintf(os.Stderr, "rtsim: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	p.Jobs = *jobs

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = experiment.Names()
	}

	report := benchReport{Profile: p.Name, Jobs: runner.Jobs(p.Jobs)}
	exitCode := 0
	for _, id := range ids {
		run, ok := experiment.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "rtsim: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables, err := run(p)
		elapsed := time.Since(start)
		report.Experiments = append(report.Experiments, benchEntry{ID: id, Seconds: elapsed.Seconds()})
		for _, t := range tables {
			if *format == "csv" {
				fmt.Println(t.RenderCSV())
			} else {
				fmt.Println(t.Render())
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtsim: %s: %v\n", id, err)
			exitCode = 1
			continue
		}
		fmt.Printf("(%s finished in %v)\n\n", id, elapsed.Round(time.Millisecond))
	}
	if *benchJSON != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchJSON, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtsim: bench-json: %v\n", err)
			exitCode = 1
		}
	}
	os.Exit(exitCode)
}
