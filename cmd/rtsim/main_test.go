package main

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestGoldenDeterminismAcrossJobs is the end-to-end complement of
// experiment.TestParallelDeterminism: instead of comparing one
// experiment's rendered tables in-process, it drives the full rtsim CLI
// twice — sequential vs one worker per CPU — and requires the complete
// stdout byte stream to be identical. This catches anything the
// per-experiment check cannot see: flag plumbing, table ordering across
// experiments, and stray timing or host-dependent text on stdout.
// lockdisc is included deliberately: it sweeps the PIP scheduler, whose
// urgency propagation once iterated a Go map and silently tied charged
// ops to iteration order.
func TestGoldenDeterminismAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-profile sweeps are still a few seconds; skipped with -short")
	}
	exps := []string{"thm3", "lockdisc"}
	render := func(jobs int) string {
		t.Helper()
		var out, errb strings.Builder
		args := append([]string{"-profile", "quick", "-jobs", strconv.Itoa(jobs)}, exps...)
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("rtsim -jobs %d exited %d\nstderr: %s", jobs, code, errb.String())
		}
		return out.String()
	}
	seq := render(1)
	par := render(runtime.NumCPU())
	if seq != par {
		t.Fatalf("rtsim stdout differs between -jobs 1 and -jobs %d:\n--- jobs=1 ---\n%s\n--- jobs=%d ---\n%s",
			runtime.NumCPU(), seq, runtime.NumCPU(), par)
	}
	if strings.Contains(seq, "finished in") {
		t.Fatalf("wall-clock timing leaked onto stdout:\n%s", seq)
	}
}

// TestFaultDeterminismAcrossJobs drives the fault-injection surface
// end to end: the faults sweep, the bound-check suite, and a traced run
// under the heavy plan must produce byte-identical stdout for -jobs 1
// and one worker per CPU. Injection decisions are pure hashes of
// (plan seed, task, indices), so parallel fan-out must not change a
// single byte.
func TestFaultDeterminismAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-profile sweeps are still a few seconds; skipped with -short")
	}
	render := func(jobs int) string {
		t.Helper()
		var out, errb strings.Builder
		args := []string{"-profile", "quick", "-jobs", strconv.Itoa(jobs),
			"-faults", "heavy", "-fault-seed", "7", "-check-bounds", "faults"}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("rtsim -jobs %d exited %d\nstderr: %s", jobs, code, errb.String())
		}
		return out.String()
	}
	seq := render(1)
	par := render(runtime.NumCPU())
	if seq != par {
		t.Fatalf("fault-run stdout differs between -jobs 1 and -jobs %d:\n--- jobs=1 ---\n%s\n--- jobs=%d ---\n%s",
			runtime.NumCPU(), seq, runtime.NumCPU(), par)
	}
}

// TestFaultsOffBitIdentical pins the zero-intensity guarantee: an
// explicit "-faults off" plan must reproduce the fault-free run
// bit for bit — every injection hook must be a true no-op, not a
// near-miss that perturbs RNG or slice identity.
func TestFaultsOffBitIdentical(t *testing.T) {
	render := func(extra ...string) string {
		t.Helper()
		var out, errb strings.Builder
		args := append([]string{"-profile", "quick", "-check-bounds"}, extra...)
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("rtsim %v exited %d\nstderr: %s", extra, code, errb.String())
		}
		return out.String()
	}
	plain := render()
	off := render("-faults", "off")
	if plain != off {
		t.Fatalf("-faults off diverged from the fault-free run:\n--- plain ---\n%s\n--- off ---\n%s", plain, off)
	}
}

// TestListStdout keeps -list on stdout and stable.
func TestListStdout(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("rtsim -list exited %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "lockdisc") {
		t.Errorf("rtsim -list missing lockdisc:\n%s", out.String())
	}
}
