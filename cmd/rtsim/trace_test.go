package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// runTraceCLI drives the full CLI with -trace/-check-bounds flags and
// returns (stdout, trace file bytes).
func runTraceCLI(t *testing.T, dir string, jobs int, extra ...string) (string, []byte) {
	t.Helper()
	file := filepath.Join(dir, "trace.out")
	var out, errb strings.Builder
	args := append([]string{
		"-profile", "quick", "-jobs", strconv.Itoa(jobs), "-trace", file,
	}, extra...)
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("rtsim %v exited %d\nstderr: %s", args, code, errb.String())
	}
	buf, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	return out.String(), buf
}

// TestTraceDeterminismAcrossJobs requires the -trace file and its stdout
// summary, and the -check-bounds report, to be byte-identical between
// -jobs 1 and one worker per CPU, for every simulator and format.
func TestTraceDeterminismAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("traced quick-profile runs take a few seconds; skipped with -short")
	}
	par := runtime.NumCPU()
	for _, sim := range []string{"uni", "multi", "global"} {
		for _, format := range []string{"perfetto", "spans", "json"} {
			t.Run(sim+"/"+format, func(t *testing.T) {
				extra := []string{"-trace-sim", sim, "-trace-format", format}
				out1, buf1 := runTraceCLI(t, t.TempDir(), 1, extra...)
				out2, buf2 := runTraceCLI(t, t.TempDir(), par, extra...)
				if out1 != out2 {
					t.Fatalf("stdout differs between -jobs 1 and -jobs %d:\n%s\n---\n%s", par, out1, out2)
				}
				if string(buf1) != string(buf2) {
					t.Fatalf("trace file differs between -jobs 1 and -jobs %d", par)
				}
				if format == "perfetto" || format == "json" {
					var v any
					if err := json.Unmarshal(buf1, &v); err != nil {
						t.Fatalf("%s output is not valid JSON: %v", format, err)
					}
				}
			})
		}
	}
}

// TestCheckBoundsCLI runs the quick-profile bound-check suite end to end:
// it must pass (exit 0, "all Theorem 2/3 bounds hold") and render
// byte-identically for any -jobs value.
func TestCheckBoundsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("the bound-check suite runs eight traced simulations; skipped with -short")
	}
	render := func(jobs int) string {
		t.Helper()
		var out, errb strings.Builder
		args := []string{"-profile", "quick", "-jobs", strconv.Itoa(jobs), "-check-bounds"}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("rtsim -check-bounds exited %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
		}
		return out.String()
	}
	seq := render(1)
	par := render(runtime.NumCPU())
	if seq != par {
		t.Fatalf("-check-bounds output differs between -jobs 1 and -jobs %d:\n%s\n---\n%s",
			runtime.NumCPU(), seq, par)
	}
	if !strings.Contains(seq, "all Theorem 2/3 bounds hold") {
		t.Fatalf("bound-check suite did not pass:\n%s", seq)
	}
}

// TestTraceBadFlags covers the CLI's trace flag validation.
func TestTraceBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-profile", "quick", "-trace", filepath.Join(t.TempDir(), "x"), "-trace-format", "bogus"},
		{"-profile", "quick", "-trace", filepath.Join(t.TempDir(), "x"), "-trace-sim", "bogus"},
		{"-profile", "quick", "-trace", filepath.Join(t.TempDir(), "x"), "-trace-mode", "bogus"},
	} {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 1 {
			t.Errorf("rtsim %v exited %d, want 1\nstderr: %s", args, code, errb.String())
		}
	}
}
