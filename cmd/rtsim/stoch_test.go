package main

import (
	"bytes"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// runMetrics executes the -metrics path with extra flags.
func runMetrics(t *testing.T, jobs int, extra ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	args := append([]string{"-profile", "quick", "-jobs", strconv.Itoa(jobs), "-metrics"}, extra...)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("rtsim %v exited %d\nstderr: %s", args, code, stderr.String())
	}
	return stdout.String()
}

// TestStochDeterminismAcrossJobs drives the stochastic-scheduler
// surface end to end: the stoch sweep and the -metrics digest under an
// active geometric plan must produce byte-identical stdout for -jobs 1
// and one worker per CPU — every stochastic decision is a pure hash of
// (seed, cpu, tick), never of worker interleaving.
func TestStochDeterminismAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-profile sweeps are still a few seconds; skipped with -short")
	}
	render := func(jobs int) string {
		t.Helper()
		var out, errb strings.Builder
		args := []string{"-profile", "quick", "-jobs", strconv.Itoa(jobs),
			"-stoch", "geo", "-stoch-seed", "7", "-metrics"}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("rtsim -jobs %d exited %d\nstderr: %s", jobs, code, errb.String())
		}
		out.WriteString(runMetricsTable(t, jobs))
		return out.String()
	}
	seq := render(1)
	par := render(runtime.NumCPU())
	if seq != par {
		t.Fatalf("stoch stdout differs between -jobs 1 and -jobs %d:\n--- jobs=1 ---\n%s\n--- jobs=%d ---\n%s",
			runtime.NumCPU(), seq, runtime.NumCPU(), par)
	}
}

// runMetricsTable renders the stoch sweep table under the same plan.
func runMetricsTable(t *testing.T, jobs int) string {
	t.Helper()
	var out, errb strings.Builder
	args := []string{"-profile", "quick", "-jobs", strconv.Itoa(jobs),
		"-stoch", "uni", "-stoch-seed", "3", "stoch"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("rtsim stoch sweep -jobs %d exited %d\nstderr: %s", jobs, code, errb.String())
	}
	return out.String()
}

// TestStochOffBitIdentical pins the tentpole's zero-cost contract at
// the CLI: "-stoch off" must reproduce the plan-free run bit for bit.
func TestStochOffBitIdentical(t *testing.T) {
	plain := runMetrics(t, 1)
	off := runMetrics(t, 1, "-stoch", "off")
	if plain != off {
		t.Fatalf("-stoch off diverged from the plan-free digest:\n--- plain ---\n%s\n--- off ---\n%s", plain, off)
	}
}

// TestStochReportArtifacts: under an active plan the report carries the
// predicted-vs-observed overlay, the retry-tail panel, and their CSV
// twins, all byte-identical across -jobs (reusing the -report plumbing
// of report_test.go).
func TestStochReportArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the trace grid twice")
	}
	out1, files1 := runReport(t, 1, "-stoch", "geo", "-stoch-seed", "7")
	outN, filesN := runReport(t, runtime.NumCPU(), "-stoch", "geo", "-stoch-seed", "7")
	if out1 != outN {
		t.Fatalf("stdout differs:\n%s\n---\n%s", out1, outN)
	}
	if len(files1) != len(filesN) {
		t.Fatalf("file sets differ: %d vs %d", len(files1), len(filesN))
	}
	for name, body := range files1 {
		if filesN[name] != body {
			t.Fatalf("file %s differs between -jobs 1 and -jobs %d", name, runtime.NumCPU())
		}
	}
	for _, want := range []string{"uni-lockfree_ops.csv", "uni-lockfree_predicted.csv"} {
		if _, ok := files1[want]; !ok {
			t.Fatalf("missing artifact %s (have: %v)", want, names(files1))
		}
	}
	html := files1["report.html"]
	for _, want := range []string{
		"observed vs analytic prediction",
		"per-operation retry tail",
		"p999",
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("report.html missing %q", want)
		}
	}
	if !strings.Contains(files1["uni-lockfree_predicted.csv"], "rel_err=") {
		t.Fatal("predicted CSV missing the fitted model record")
	}
}

// TestMetricsDigestGolden is the satellite-1 golden: the -metrics
// digest reports per-operation retry-tail quantiles (p95/p99/p999)
// and the fitted predictor next to the mean-based summaries.
func TestMetricsDigestGolden(t *testing.T) {
	out := runMetrics(t, 1, "-stoch", "uni", "-stoch-seed", "5")
	for _, want := range []string{
		"run uni-lockfree",
		"p95=", "p99=", "p999=",
		"op all",
		"fail_rate=",
		"predictor",
		"alpha=", "beta=", "rel_err=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("digest missing %q:\n%s", want, out)
		}
	}
	// Lock-based runs appear with their all-ones attempt distributions:
	// the digest must carry op lines for them too (shared axis).
	if !strings.Contains(out, "run uni-lockbased") {
		t.Fatalf("digest missing lock-based run:\n%s", out)
	}
}

// names lists a file map's keys for failure messages.
func names(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
