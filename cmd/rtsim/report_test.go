package main

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// runReport executes the CLI's -report path and returns stdout plus
// every generated file keyed by name.
func runReport(t *testing.T, jobs int, extra ...string) (string, map[string]string) {
	t.Helper()
	dir := t.TempDir()
	args := append([]string{
		"-profile", "quick", "-jobs", strconv.Itoa(jobs), "-report", dir,
	}, extra...)
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("rtsim -report exited %d\nstderr: %s", code, stderr.String())
	}
	files := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = string(b)
	}
	// The stdout listing names the temp dir; normalize it away so
	// serial and parallel invocations compare equal.
	return strings.ReplaceAll(stdout.String(), dir, "DIR"), files
}

// TestReportDeterministicAcrossJobs is the acceptance check: every
// artifact of -report, and the stdout listing, are byte-identical
// between -jobs 1 and -jobs NumCPU.
func TestReportDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the trace grid twice plus a figure sweep")
	}
	out1, files1 := runReport(t, 1, "costs")
	outN, filesN := runReport(t, runtime.NumCPU(), "costs")
	if out1 != outN {
		t.Fatalf("stdout differs:\n-jobs 1:\n%s\n-jobs %d:\n%s", out1, runtime.NumCPU(), outN)
	}
	if len(files1) != len(filesN) {
		t.Fatalf("file sets differ: %d vs %d", len(files1), len(filesN))
	}
	for name, body := range files1 {
		other, ok := filesN[name]
		if !ok {
			t.Fatalf("file %s missing from parallel run", name)
		}
		if body != other {
			t.Fatalf("file %s differs between -jobs 1 and -jobs %d", name, runtime.NumCPU())
		}
	}
	for _, want := range []string{"report.html", "summary.csv", "costs.csv", "uni-lockfree_series.csv"} {
		if _, ok := files1[want]; !ok {
			t.Fatalf("missing artifact %s", want)
		}
	}
	if !strings.Contains(files1["report.html"], "theorem 2 bound") {
		t.Fatal("report.html missing the Theorem 2 bound overlay")
	}
}

// TestMetricsDeterministicAcrossJobs: the -metrics digest is a pure
// function of the flags.
func TestMetricsDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the trace grid twice")
	}
	render := func(jobs int) string {
		var stdout, stderr bytes.Buffer
		args := []string{"-profile", "quick", "-jobs", strconv.Itoa(jobs), "-metrics"}
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("rtsim -metrics exited %d\nstderr: %s", code, stderr.String())
		}
		return stdout.String()
	}
	a, b := render(1), render(runtime.NumCPU())
	if a != b {
		t.Fatalf("-metrics digest differs across -jobs:\n%s\n---\n%s", a, b)
	}
	for _, want := range []string{"run uni-lockfree", "run global-lockbased", "bound="} {
		if !strings.Contains(a, want) {
			t.Fatalf("digest missing %q:\n%s", want, a)
		}
	}
}

// TestReportBadFigure: an unknown figure id fails cleanly.
func TestReportBadFigure(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-profile", "quick", "-report", t.TempDir(), "nosuchfig"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "nosuchfig") {
		t.Fatalf("stderr does not name the bad figure: %s", stderr.String())
	}
}

// TestProfileFlags: -cpuprofile and -memprofile write non-empty pprof
// files without touching stdout.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-profile", "quick", "-cpuprofile", cpu, "-memprofile", mem, "-metrics",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr.String())
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
	if !strings.Contains(stdout.String(), "run uni-lockfree") {
		t.Fatal("profiling flags disturbed the -metrics digest")
	}
}
