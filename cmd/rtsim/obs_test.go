package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestStreamMetricsMatchesBatch is the CLI-level identity check: the
// -stream digest must be byte-equal to the batch one, plain and under
// fault injection, for serial and parallel execution alike.
func TestStreamMetricsMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("folds the quick trace grid four times; skipped with -short")
	}
	for _, faults := range []string{"", "heavy"} {
		name := "plain"
		if faults != "" {
			name = "faults-" + faults
		}
		t.Run(name, func(t *testing.T) {
			digest := func(jobs int, stream bool) string {
				t.Helper()
				args := []string{"-profile", "quick", "-jobs", strconv.Itoa(jobs), "-metrics"}
				if stream {
					args = append(args, "-stream")
				}
				if faults != "" {
					args = append(args, "-faults", faults)
				}
				var out, errb strings.Builder
				if code := run(args, &out, &errb); code != 0 {
					t.Fatalf("rtsim %v exited %d\nstderr: %s", args, code, errb.String())
				}
				return out.String()
			}
			batch := digest(1, false)
			if stream := digest(1, true); stream != batch {
				t.Fatalf("-stream digest differs from batch:\n--- batch\n%s\n--- stream\n%s", batch, stream)
			}
			if stream := digest(4, true); stream != batch {
				t.Fatal("-stream digest differs between -jobs 1 batch and -jobs 4 stream")
			}
		})
	}
}

// TestTraceFlightAndProgress drives the full live-introspection path: a
// fault-injected traced run with a flight recorder and progress
// reporting. The stdout summary (including the flight trigger line), the
// flight dump, and the stderr progress stream must all be deterministic;
// the dump must be valid Perfetto JSON.
func TestTraceFlightAndProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("traced quick-profile runs take a few seconds; skipped with -short")
	}
	runOnce := func(dir string) (stdout, stderr string, dump []byte) {
		t.Helper()
		file := filepath.Join(dir, "trace.out")
		var out, errb strings.Builder
		args := []string{
			"-profile", "quick", "-faults", "heavy",
			"-trace", file, "-flight", "64", "-progress",
		}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("rtsim %v exited %d\nstderr: %s", args, code, errb.String())
		}
		buf, err := os.ReadFile(file + ".flight.json")
		if err != nil {
			t.Fatalf("flight dump missing: %v", err)
		}
		return out.String(), errb.String(), buf
	}
	// Same target path both times: stdout embeds the dump path, so it is
	// a pure function of the flags, not of a fresh temp dir per run.
	dir := t.TempDir()
	out1, err1, dump1 := runOnce(dir)
	out2, err2, dump2 := runOnce(dir)
	if out1 != out2 {
		t.Fatalf("stdout not deterministic:\n%s\n---\n%s", out1, out2)
	}
	if err1 != err2 {
		t.Fatalf("progress stream not deterministic:\n%s\n---\n%s", err1, err2)
	}
	if string(dump1) != string(dump2) {
		t.Fatal("flight dump not deterministic")
	}
	if !strings.Contains(out1, "flight: trigger=") {
		t.Fatalf("no flight trigger line on stdout:\n%s", out1)
	}
	var v any
	if err := json.Unmarshal(dump1, &v); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	var progress int
	for _, ln := range strings.Split(strings.TrimSuffix(err1, "\n"), "\n") {
		if strings.HasPrefix(ln, "progress t=") {
			progress++
		}
	}
	if progress == 0 {
		t.Fatalf("no progress lines on stderr:\n%s", err1)
	}
}

// TestTraceLimitDropped: a capped recorder must report exactly how much
// it dropped on stdout — truncation is never silent.
func TestTraceLimitDropped(t *testing.T) {
	if testing.Short() {
		t.Skip("traced quick-profile runs take a few seconds; skipped with -short")
	}
	file := filepath.Join(t.TempDir(), "trace.out")
	var out, errb strings.Builder
	args := []string{"-profile", "quick", "-trace", file, "-trace-limit", "10"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("rtsim %v exited %d\nstderr: %s", args, code, errb.String())
	}
	if !strings.Contains(out.String(), "events=10 dropped=") {
		t.Fatalf("capped trace did not surface its drop count:\n%s", out.String())
	}
}
