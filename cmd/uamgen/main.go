// Command uamgen generates and validates arrival traces under the
// unimodal arbitrary arrival model:
//
//	uamgen -l 1 -a 3 -w 500 -horizon 10000 -kind bursty -seed 7
//
// It prints one arrival instant (in µs) per line and reports the
// sliding-window validation verdict and density statistics on stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/rtime"
	"repro/internal/uam"
)

func main() {
	l := flag.Int("l", 0, "minimal arrivals per window")
	a := flag.Int("a", 1, "maximal arrivals per window")
	w := flag.Int64("w", 1000, "window length (µs)")
	horizon := flag.Int64("horizon", 100000, "trace horizon (µs)")
	kind := flag.String("kind", "jittered", "generator: jittered, bursty, or periodic")
	seed := flag.Int64("seed", 1, "random seed")
	quiet := flag.Bool("q", false, "suppress the trace, print only the summary")
	flag.Parse()

	spec := uam.Spec{L: *l, A: *a, W: rtime.Duration(*w)}
	var k uam.Kind
	switch *kind {
	case "jittered":
		k = uam.KindJittered
	case "bursty":
		k = uam.KindBursty
	case "periodic":
		k = uam.KindPeriodic
	default:
		fmt.Fprintf(os.Stderr, "uamgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	g, err := uam.NewGenerator(spec, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uamgen: %v\n", err)
		os.Exit(2)
	}
	tr := g.Generate(k, rtime.Time(*horizon))
	if err := uam.CheckTrace(spec, tr, rtime.Time(*horizon)); err != nil {
		fmt.Fprintf(os.Stderr, "uamgen: generated trace INVALID: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		out := bufio.NewWriter(os.Stdout)
		for _, t := range tr {
			fmt.Fprintln(out, t.Micros())
		}
		out.Flush()
	}
	rate := float64(len(tr)) / (float64(*horizon) / 1e6)
	fmt.Fprintf(os.Stderr, "spec %v kind=%s seed=%d: %d arrivals over %v (%.1f/s); analytic max in horizon %d\n",
		spec, *kind, *seed, len(tr), rtime.Duration(*horizon), rate, spec.MaxArrivalsIn(rtime.Duration(*horizon)))
	fmt.Fprintln(os.Stderr, uam.Stats(spec, tr).String())
	fmt.Fprintln(os.Stderr, "trace valid ✓")
}
