// Command retrybound evaluates the paper's analytic results for a task
// set described on the command line: the Theorem 2 retry bound, the
// Theorem 3 sojourn-time thresholds, and the worst-case sojourn times
// under both synchronization disciplines.
//
// Each -task flag adds one task as "a,W,C,u,m" (max arrivals per window,
// window µs, critical time µs, compute µs, object accesses):
//
//	retrybound -r 150 -s 5 \
//	  -task 1,2000,1000,300,4 \
//	  -task 2,500,400,100,2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/rtime"
	"repro/internal/task"
	"repro/internal/tuf"
	"repro/internal/uam"
)

type taskFlags []string

func (t *taskFlags) String() string     { return strings.Join(*t, " ") }
func (t *taskFlags) Set(v string) error { *t = append(*t, v); return nil }

func parseTask(id int, s string) (*task.Task, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 5 {
		return nil, fmt.Errorf("task %q: want a,W,C,u,m", s)
	}
	nums := make([]int64, 5)
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("task %q field %d: %v", s, i, err)
		}
		nums[i] = v
	}
	a, w, c, u, m := int(nums[0]), rtime.Duration(nums[1]), rtime.Duration(nums[2]), rtime.Duration(nums[3]), int(nums[4])
	f, err := tuf.NewStep(1, c)
	if err != nil {
		return nil, err
	}
	objs := make([]int, m)
	for i := range objs {
		objs[i] = i
	}
	tk := &task.Task{
		ID:       id,
		Name:     fmt.Sprintf("T%d", id),
		TUF:      f,
		Arrival:  uam.Spec{L: 0, A: a, W: w},
		Segments: task.InterleavedSegments(u, m, objs),
	}
	return tk, tk.Validate()
}

func main() {
	var specs taskFlags
	r := flag.Int64("r", 150, "lock-based access time r (µs)")
	s := flag.Int64("s", 5, "lock-free access time s (µs)")
	flag.Var(&specs, "task", `task spec "a,W,C,u,m" (repeatable)`)
	flag.Parse()
	if len(specs) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	tasks := make([]*task.Task, len(specs))
	for i, spec := range specs {
		tk, err := parseTask(i, spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "retrybound: %v\n", err)
			os.Exit(2)
		}
		tasks[i] = tk
	}
	fmt.Printf("%-5s %-14s %-8s %-10s %-12s %-12s %-14s %-14s %s\n",
		"task", "uam", "C_us", "f_i_bound", "thresh_2/3", "exact_thr", "sojourn_lb", "sojourn_lf", "lock-free wins (worst case)")
	for i, tk := range tasks {
		bound, err := analysis.RetryBound(i, tasks)
		if err != nil {
			fmt.Fprintf(os.Stderr, "retrybound: %v\n", err)
			os.Exit(1)
		}
		in, err := analysis.InputsFor(i, tasks, rtime.Duration(*r), rtime.Duration(*s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "retrybound: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-5s %-14s %-8d %-10d %-12.4f %-12.4f %-14v %-14v %v\n",
			tk.Name, tk.Arrival.String(), tk.CriticalTime().Micros(), bound,
			in.Theorem3Threshold(), in.ExactThreshold(),
			in.LockBasedSojourn(), in.LockFreeSojourn(),
			in.LockFreeSojourn() < in.LockBasedSojourn())
	}
	fmt.Printf("\ns/r = %.4f (Theorem 3: lock-free is guaranteed shorter when s/r is below the exact threshold)\n",
		float64(*s)/float64(*r))

	// Demand-bound schedulability (sound sufficient test) under both
	// access-cost assumptions.
	var maxC rtime.Duration
	for _, tk := range tasks {
		if c := tk.CriticalTime(); c > maxC {
			maxC = c
		}
	}
	cap := 50 * maxC
	okLF, failLF, err := analysis.Schedulable(tasks, rtime.Duration(*s), cap)
	if err != nil {
		fmt.Fprintf(os.Stderr, "retrybound: %v\n", err)
		os.Exit(1)
	}
	okLB, failLB, err := analysis.Schedulable(tasks, rtime.Duration(*r), cap)
	if err != nil {
		fmt.Fprintf(os.Stderr, "retrybound: %v\n", err)
		os.Exit(1)
	}
	report := func(tag string, ok bool, at rtime.Duration) {
		if ok {
			fmt.Printf("demand-bound test (%s access costs): schedulable ✓\n", tag)
		} else if at > 0 {
			fmt.Printf("demand-bound test (%s access costs): NOT guaranteed (demand exceeds interval at L=%v)\n", tag, at)
		} else {
			fmt.Printf("demand-bound test (%s access costs): NOT guaranteed (long-run rate > 1)\n", tag)
		}
	}
	report("lock-free s", okLF, failLF)
	report("lock-based r", okLB, failLB)
}
