// Scale benchmarks: the PR6 additions measured at task-set sizes
// n ∈ 10²–10⁴ on the clustered scale workload.
//
//	BenchmarkScaleSelect        → one RUA pass over n live jobs (0 allocs/op
//	                              steady state; warmed scratch)
//	BenchmarkScaleSelectTopK    → SelectTopKAbort (gsim's per-event call)
//	BenchmarkScaleEngineRun     → full uniprocessor event loop, 3 windows
//
// The companion before/after pairs live next to the structures they
// compare: internal/rtime/wheel (BenchmarkWheelChurn vs BenchmarkRefChurn)
// and internal/rua (BenchmarkFeasTreePass vs BenchmarkFeasSliceRefPass).
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/uam"
)

var scaleBenchNs = []int{100, 1000, 10_000}

// scaleWorld builds a live set of n ready jobs over the clustered scale
// workload — the world one Select pass sees.
func scaleWorld(b *testing.B, n int, lockBased bool) sched.World {
	tasks, err := experiment.ScaleWorkload(n, 0.4, experiment.StepTUFs)
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]*task.Job, n)
	for i, tk := range tasks {
		jobs[i] = task.NewJob(tk, 0, rtime.Time(i))
	}
	return sched.World{Now: 0, Jobs: jobs, Res: resource.NewMap(), Acc: 10, LockBased: lockBased}
}

// BenchmarkScaleSelect measures one full RUA scheduling pass over n live
// jobs. After the first warm-up pass grows the scratch arenas, every
// iteration must run allocation-free (the rua package enforces the same
// property as a hard test, TestSelectSteadyStateNoAlloc).
func BenchmarkScaleSelect(b *testing.B) {
	for _, n := range scaleBenchNs {
		for _, mode := range []string{"lockfree", "lockbased"} {
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				w := scaleWorld(b, n, mode == "lockbased")
				s := rua.NewLockFree()
				if mode == "lockbased" {
					s = rua.NewLockBased()
				}
				s.Select(w) // warm the scratch to steady state
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Select(w)
				}
			})
		}
	}
}

// BenchmarkScaleSelectTopK measures the global engine's per-event call:
// a full pass plus extraction of the CPUs-deep ranked prefix.
func BenchmarkScaleSelectTopK(b *testing.B) {
	const k = 4
	for _, n := range scaleBenchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			w := scaleWorld(b, n, false)
			s := rua.NewLockFree()
			s.SelectTopKAbort(w, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.SelectTopKAbort(w, k)
			}
		})
	}
}

// BenchmarkScaleEngineRun drives the whole uniprocessor event loop on
// the phased scale workload for three arrival windows per task — the
// timing wheel, live-set bookkeeping, and scheduler passes together.
// Events scale linearly with n; per-event cost must stay flat.
func BenchmarkScaleEngineRun(b *testing.B) {
	for _, n := range scaleBenchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tasks, err := experiment.ScaleWorkload(n, 0.4, experiment.StepTUFs)
			if err != nil {
				b.Fatal(err)
			}
			var maxC rtime.Duration
			for _, tk := range tasks {
				if c := tk.CriticalTime(); c > maxC {
					maxC = c
				}
			}
			horizon := rtime.Time(3 * int64(maxC))
			b.ReportAllocs()
			b.ResetTimer()
			var released int64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					Tasks: task.CloneAll(tasks), Scheduler: rua.NewLockFree(), Mode: sim.LockFree,
					R: experiment.DefaultR, S: experiment.DefaultS,
					Horizon: horizon, ArrivalKind: uam.KindJittered, Seed: 1,
					ConservativeRetry: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				released = metrics.Analyze(res).Released
			}
			b.ReportMetric(float64(released), "jobs/run")
		})
	}
}
