// Package repro reproduces "Lock-Free Synchronization for Dynamic
// Embedded Real-Time Systems" (Cho, Ravindran, Jensen — DATE 2006 and its
// extended 2007 version): lock-free retry bounds under the unimodal
// arbitrary arrival model with utility-accrual (RUA) scheduling, the
// lock-free vs lock-based sojourn/AUR tradeoffs, and the paper's full
// RTOS evaluation re-run on a deterministic discrete-event substrate.
//
// Layout:
//
//	internal/core        high-level builder API (examples' front door)
//	internal/rua         lock-based and lock-free RUA schedulers (§3, §5)
//	internal/analysis    Theorems 2/3, Lemmas 4/5, interference and
//	                     UAM demand-bound schedulability in closed form
//	internal/sim         discrete-event single-CPU RTOS substrate
//	internal/multi       partitioned multiprocessor extension (§7)
//	internal/gsim        global multiprocessor engine (§7)
//	internal/tuf,uam     time/utility functions; UAM arrival model
//	internal/task        jobs, segments, lock boundaries, abort handlers
//	internal/resource    lock ownership / commit tracking
//	internal/sched       scheduler interface; EDF, EDF-PIP, LLF, LBESA
//	internal/lockfree    real atomics-based objects (MS queue, bounded
//	                     MPMC, Treiber, list, register, ring, snapshot)
//	internal/lockobj     mutex twins for the Fig 8 microbenchmarks
//	internal/waitfree    NBW + multi-buffer wait-free registers (§1.1)
//	internal/trace       event log, ASCII timelines, JSON export
//	internal/metrics     AUR, CMR, CML, AL, per-task stats, 95% CIs
//	internal/experiment  per-figure regeneration harness + extensions
//	cmd/rtsim            regenerate any figure: rtsim fig9
//	cmd/uamgen           UAM trace generator/validator/statistics
//	cmd/retrybound       analytic bound calculator + schedulability
//	examples/            quickstart, tracker, rover, retrybound,
//	                     timeline, multicore
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
