package sched

import (
	"repro/internal/rtime"
	"repro/internal/task"
)

// LLF is least-laxity-first — the canonical FULLY-dynamic priority
// scheduler of the Carpenter et al. taxonomy the paper cites in §4.1.
// A job's laxity is (absolute critical time − now) − remaining work; a
// running job's laxity stays constant while a waiting job's shrinks, so
// two jobs with close laxities overtake each other repeatedly at
// successive scheduling events — the mutual preemption of Fig 6 that
// static and job-level-dynamic schedulers (RM, EDF) can never exhibit,
// and the behaviour class that makes Lemma 1's event-counting argument
// (rather than release-counting) necessary for UA schedulers.
type LLF struct{}

// Name implements Scheduler.
func (LLF) Name() string { return "llf" }

// Select implements Scheduler: the runnable job with the least laxity
// wins; ties break by (taskID, seq).
func (LLF) Select(w World) Decision {
	var best *task.Job
	var bestLax rtime.Duration
	ops := int64(0)
	for _, j := range w.Jobs {
		ops++
		if !Runnable(w, j) {
			continue
		}
		lax := j.AbsoluteCriticalTime().Sub(w.Now) - j.Remaining(w.Acc)
		if best == nil || lax < bestLax || (lax == bestLax && jobOrderLess(j, best)) {
			best, bestLax = j, lax
		}
	}
	return Decision{Run: best, Ops: ops}
}

func jobOrderLess(a, b *task.Job) bool {
	if a.Task.ID != b.Task.ID {
		return a.Task.ID < b.Task.ID
	}
	return a.Seq < b.Seq
}
