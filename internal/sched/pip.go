package sched

import (
	"repro/internal/rtime"
	"repro/internal/task"
)

// PIP is EDF with priority inheritance — the classical lock-based
// synchronization discipline of Sha, Rajkumar, and Lehoczky that the
// paper's §1.1 positions lock-free sharing against. A lock holder
// inherits the urgency (earliest effective critical time) of every job
// transitively blocked on it, which bounds priority inversion to one
// critical section per lock without RUA's dependency-chain scheduling.
// Like classic PIP it is urgency-only: during overloads it cannot favor
// important work, which is the gap UA schedulers fill.
type PIP struct{}

// Name implements Scheduler.
func (PIP) Name() string { return "edf-pip" }

// Select implements Scheduler: compute effective critical times by
// propagating waiters' urgencies to holders along the waiting→holder
// edges, then dispatch the runnable job with the earliest effective
// critical time.
func (PIP) Select(w World) Decision {
	var ops int64
	eff := make(map[*task.Job]rtime.Time, len(w.Jobs))
	for _, j := range w.Jobs {
		ops++
		if j.Done() || j.State == task.Aborting {
			continue
		}
		eff[j] = j.AbsoluteCriticalTime()
	}
	// Propagate inheritance. Chains are acyclic without nesting; with
	// nesting a cycle means deadlock, which PIP does not resolve — the
	// bounded iteration below still terminates and the blocked jobs
	// simply starve until their critical times (honest PIP behaviour).
	// Iterate jobs in slice order, not over the eff map: the number of
	// propagation passes until the fixed point (and with it the charged
	// ops count) must not depend on randomized map iteration order.
	for range w.Jobs {
		changed := false
		for _, j := range w.Jobs {
			if _, live := eff[j]; !live {
				continue
			}
			obj, waiting := w.Res.WaitingFor(j)
			if !waiting {
				continue
			}
			holder := w.Res.Owner(obj)
			if holder == nil {
				continue
			}
			ops++
			if h, ok := eff[holder]; ok && eff[j] < h {
				eff[holder] = eff[j]
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	var best *task.Job
	for _, j := range w.Jobs {
		ops++
		if _, ok := eff[j]; !ok || !Runnable(w, j) {
			continue
		}
		if best == nil || eff[j] < eff[best] ||
			(eff[j] == eff[best] && jobOrderLess(j, best)) {
			best = j
		}
	}
	return Decision{Run: best, Ops: ops}
}

// SelectTopK implements TopK for PIP-ranked global dispatch.
func (p PIP) SelectTopK(w World, k int) ([]*task.Job, int64) {
	// Rank by repeatedly extracting the PIP head over a shrinking view.
	// O(k·n) but n is small at scheduling events.
	var ops int64
	remaining := append([]*task.Job(nil), w.Jobs...)
	var out []*task.Job
	for len(out) < k {
		sub := w
		sub.Jobs = remaining
		d := p.Select(sub)
		ops += d.Ops
		if d.Run == nil {
			break
		}
		out = append(out, d.Run)
		for i, j := range remaining {
			if j == d.Run {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
	}
	return out, ops
}
