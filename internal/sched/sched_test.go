package sched

import (
	"testing"

	"repro/internal/resource"
	"repro/internal/rtime"
	"repro/internal/task"
	"repro/internal/tuf"
	"repro/internal/uam"
)

func mkJob(id int, c rtime.Duration, ar rtime.Time, m int, objs []int) *task.Job {
	t := &task.Task{
		ID:       id,
		TUF:      tuf.MustStep(1, c),
		Arrival:  uam.Spec{L: 0, A: 1, W: 2 * c},
		Segments: task.InterleavedSegments(100, m, objs),
	}
	return task.NewJob(t, 0, ar)
}

func TestEDFPicksEarliestCriticalTime(t *testing.T) {
	res := resource.NewMap()
	a := mkJob(0, 1000, 0, 0, nil) // absolute C = 1000
	b := mkJob(1, 500, 0, 0, nil)  // absolute C = 500
	w := World{Now: 0, Jobs: []*task.Job{a, b}, Res: res, Acc: 10}
	d := EDF{}.Select(w)
	if d.Run != b {
		t.Fatalf("picked %s, want the earlier critical time", d.Run.Name())
	}
	if d.Ops != 2 {
		t.Fatalf("ops = %d, want 2", d.Ops)
	}
}

func TestEDFArrivalShiftsOrder(t *testing.T) {
	res := resource.NewMap()
	a := mkJob(0, 500, 600, 0, nil) // absolute C = 1100
	b := mkJob(1, 1000, 0, 0, nil)  // absolute C = 1000
	w := World{Now: 700, Jobs: []*task.Job{a, b}, Res: res, Acc: 10}
	if d := (EDF{}).Select(w); d.Run != b {
		t.Fatalf("picked %s, want b", d.Run.Name())
	}
}

func TestEDFTieBreakDeterministic(t *testing.T) {
	res := resource.NewMap()
	a := mkJob(3, 500, 0, 0, nil)
	b := mkJob(1, 500, 0, 0, nil)
	w := World{Now: 0, Jobs: []*task.Job{a, b}, Res: res, Acc: 10}
	if d := (EDF{}).Select(w); d.Run != b {
		t.Fatal("tie not broken by task id")
	}
}

func TestEDFSkipsBlockedAndDone(t *testing.T) {
	res := resource.NewMap()
	holder := mkJob(0, 5000, 0, 1, []int{0})
	blocked := mkJob(1, 100, 0, 1, []int{0}) // earliest C but blocked
	done := mkJob(2, 50, 0, 0, nil)
	done.State = task.Completed

	holder.Step(1<<40, 10)
	res.TryAcquire(holder, 0)
	holder.Step(1, 10)
	blocked.Step(1<<40, 10)
	res.TryAcquire(blocked, 0)
	blocked.State = task.Blocked

	w := World{Now: 0, Jobs: []*task.Job{holder, blocked, done}, Res: res, Acc: 10, LockBased: true}
	d := EDF{}.Select(w)
	if d.Run != holder {
		t.Fatalf("picked %v, want holder", d.Run)
	}
}

func TestEDFIdlesWhenNothingRunnable(t *testing.T) {
	res := resource.NewMap()
	holder := mkJob(0, 5000, 0, 1, []int{0})
	holder.Step(1<<40, 10)
	res.TryAcquire(holder, 0)
	holder.Step(1, 10)
	holder.State = task.Aborting // rollback pending: not runnable

	blocked := mkJob(1, 100, 0, 1, []int{0})
	blocked.Step(1<<40, 10)
	res.TryAcquire(blocked, 0)
	blocked.State = task.Blocked

	w := World{Now: 0, Jobs: []*task.Job{holder, blocked}, Res: res, Acc: 10, LockBased: true}
	if d := (EDF{}).Select(w); d.Run != nil {
		t.Fatalf("picked %s, want idle", d.Run.Name())
	}
}

func TestRunnableLockFreeIgnoresLocks(t *testing.T) {
	res := resource.NewMap()
	a := mkJob(0, 1000, 0, 1, []int{0})
	b := mkJob(1, 1000, 0, 1, []int{0})
	a.Step(1<<40, 10)
	res.TryAcquire(a, 0)
	b.Step(1<<40, 10) // at access start of a "held" object
	w := World{Now: 0, Jobs: []*task.Job{a, b}, Res: res, Acc: 10, LockBased: false}
	if !Runnable(w, b) {
		t.Fatal("lock-free job considered blocked by lock state")
	}
}

func TestRunnableAfterRelease(t *testing.T) {
	res := resource.NewMap()
	a := mkJob(0, 1000, 0, 1, []int{0})
	b := mkJob(1, 1000, 0, 1, []int{0})
	a.Step(1<<40, 10)
	res.TryAcquire(a, 0)
	b.Step(1<<40, 10)
	res.TryAcquire(b, 0) // waits
	b.State = task.Blocked
	w := World{Now: 0, Jobs: []*task.Job{a, b}, Res: res, Acc: 10, LockBased: true}
	if Runnable(w, b) {
		t.Fatal("blocked job runnable while object held")
	}
	res.Release(a, 0)
	if !Runnable(w, b) {
		t.Fatal("job not runnable after release")
	}
}

func TestEDFTopK(t *testing.T) {
	res := resource.NewMap()
	a := mkJob(0, 1000, 0, 0, nil)
	b := mkJob(1, 500, 0, 0, nil)
	c := mkJob(2, 2000, 0, 0, nil)
	done := mkJob(3, 100, 0, 0, nil)
	done.State = task.Completed
	w := World{Now: 0, Jobs: []*task.Job{a, b, c, done}, Res: res, Acc: 10}
	out, ops := EDF{}.SelectTopK(w, 2)
	if len(out) != 2 || out[0] != b || out[1] != a {
		t.Fatalf("TopK = %v", out)
	}
	if ops <= 0 {
		t.Fatal("no ops charged")
	}
	// k larger than runnable set returns everything runnable.
	out, _ = EDF{}.SelectTopK(w, 10)
	if len(out) != 3 {
		t.Fatalf("TopK(10) = %d jobs", len(out))
	}
}

func TestLLFTopK(t *testing.T) {
	res := resource.NewMap()
	tight := mkJobWithExec(0, 2000, 0, 1950) // laxity 50
	loose := mkJobWithExec(1, 500, 0, 100)   // laxity 400
	w := World{Now: 0, Jobs: []*task.Job{tight, loose}, Res: res, Acc: 10}
	out, _ := LLF{}.SelectTopK(w, 2)
	if len(out) != 2 || out[0] != tight || out[1] != loose {
		t.Fatalf("LLF TopK = %v", out)
	}
}
