// Package sched defines the scheduler interface the simulator drives and
// provides the EDF/ECF baseline. Utility-accrual schedulers (lock-based
// and lock-free RUA) live in internal/rua and implement the same
// interface.
//
// Schedulers are invoked at scheduling events (§3: job arrivals and
// departures, lock and unlock requests, critical-time expirations) with a
// snapshot of the live jobs and resource state, and return the job to
// dispatch. They also report an operation count — the number of
// elementary steps (comparisons, chain hops, insertions) the decision
// took — which the simulator converts into virtual scheduling overhead.
// That conversion is what lets the reproduction charge lock-based RUA's
// O(n² log n) decisions and lock-free RUA's O(n²) decisions their actual
// cost, the mechanism behind the paper's Fig 9 CML experiment.
package sched

import (
	"repro/internal/resource"
	"repro/internal/rtime"
	"repro/internal/task"
)

// World is the scheduler's view of the system at a scheduling event.
type World struct {
	Now       rtime.Time
	Jobs      []*task.Job   // live jobs in deterministic (taskID, seq) order
	Res       *resource.Map // lock/commit state
	Acc       rtime.Duration
	LockBased bool
}

// Decision is a scheduler's answer: the job to run (nil to idle), jobs to
// abort (deadlock victims — only possible with nested critical sections),
// and the operation count charged for making the decision.
type Decision struct {
	Run   *task.Job
	Abort []*task.Job
	Ops   int64
}

// Scheduler selects jobs at scheduling events.
type Scheduler interface {
	Name() string
	Select(w World) Decision
}

// Runnable reports whether j can make progress: it is not waiting on an
// object someone else holds. A job positioned at an access boundary is
// runnable if the object is free (it will acquire on dispatch).
func Runnable(w World, j *task.Job) bool {
	if j.Done() || j.State == task.Aborting {
		return false
	}
	if obj, ok := j.AtAccessStart(); ok && w.LockBased {
		if owner := w.Res.Owner(obj); owner != nil && owner != j {
			return false
		}
	}
	if obj, ok := j.PendingLock(); ok && w.LockBased {
		if owner := w.Res.Owner(obj); owner != nil && owner != j {
			return false
		}
	}
	if obj, ok := w.Res.WaitingFor(j); ok {
		if owner := w.Res.Owner(obj); owner != nil && owner != j {
			return false
		}
	}
	return true
}

// EDF is the earliest-critical-time-first baseline (ECF; classic EDF when
// TUFs are steps). During underloads with no object sharing RUA defaults
// to exactly this order, which is the "ideal" reference of Fig 9. With
// locks it simply skips blocked jobs (no inheritance, no dependency
// chains) — the naive baseline.
type EDF struct{}

// Name implements Scheduler.
func (EDF) Name() string { return "edf" }

// Select implements Scheduler: the runnable job with the earliest
// absolute critical time wins; ties break by (taskID, seq) for
// determinism.
func (EDF) Select(w World) Decision {
	var best *task.Job
	ops := int64(0)
	for _, j := range w.Jobs {
		ops++
		if !Runnable(w, j) {
			continue
		}
		if best == nil || earlier(j, best) {
			best = j
		}
	}
	return Decision{Run: best, Ops: ops}
}

func earlier(a, b *task.Job) bool {
	ca, cb := a.AbsoluteCriticalTime(), b.AbsoluteCriticalTime()
	if ca != cb {
		return ca < cb
	}
	if a.Task.ID != b.Task.ID {
		return a.Task.ID < b.Task.ID
	}
	return a.Seq < b.Seq
}
