package sched

import (
	"testing"

	"repro/internal/resource"
	"repro/internal/task"
)

func TestPIPPlainEDFWithoutLocks(t *testing.T) {
	res := resource.NewMap()
	a := mkJob(0, 1000, 0, 0, nil)
	b := mkJob(1, 500, 0, 0, nil)
	w := World{Now: 0, Jobs: []*task.Job{a, b}, Res: res, Acc: 10, LockBased: true}
	if d := (PIP{}).Select(w); d.Run != b {
		t.Fatalf("picked %s, want plain EDF order", d.Run.Name())
	}
}

func TestPIPHolderInheritsWaiterUrgency(t *testing.T) {
	res := resource.NewMap()
	// holder: late critical time; urgent: early critical time, blocked on
	// holder's object; middle: in between, independent. Plain EDF would
	// run middle (urgent is blocked, middle beats holder); PIP boosts the
	// holder above middle.
	holder := mkJob(0, 5000, 0, 1, []int{0})
	urgent := mkJob(1, 300, 0, 1, []int{0})
	middle := mkJob(2, 1000, 0, 0, nil)

	holder.Step(1<<40, 10)
	res.TryAcquire(holder, 0)
	holder.Step(2, 10)
	urgent.Step(1<<40, 10)
	res.TryAcquire(urgent, 0)
	urgent.State = task.Blocked

	w := World{Now: 0, Jobs: []*task.Job{holder, urgent, middle}, Res: res, Acc: 10, LockBased: true}
	if d := (EDF{}).Select(w); d.Run != middle {
		t.Fatalf("EDF picked %s, want middle (inversion)", d.Run.Name())
	}
	if d := (PIP{}).Select(w); d.Run != holder {
		t.Fatalf("PIP picked %s, want boosted holder", d.Run.Name())
	}
}

func TestPIPTransitiveInheritance(t *testing.T) {
	res := resource.NewMap()
	// urgent waits on mid's object; mid waits on deep's object: deep must
	// inherit urgent's urgency through the chain.
	deep := mkJob(0, 9000, 0, 1, []int{1})
	mid := mkJob(1, 5000, 0, 1, []int{0})
	urgent := mkJob(2, 200, 0, 1, []int{0})
	other := mkJob(3, 1000, 0, 0, nil)

	deep.Step(1<<40, 10)
	res.TryAcquire(deep, 1)
	deep.Step(1, 10)
	mid.Step(1<<40, 10)
	res.TryAcquire(mid, 0) // holds 0
	// mid also waits on 1 — simulate via direct map state (nested wait).
	res.TryAcquire(mid, 1)
	mid.State = task.Blocked
	urgent.Step(1<<40, 10)
	res.TryAcquire(urgent, 0)
	urgent.State = task.Blocked

	w := World{Now: 0, Jobs: []*task.Job{deep, mid, urgent, other}, Res: res, Acc: 10, LockBased: true}
	if d := (PIP{}).Select(w); d.Run != deep {
		t.Fatalf("PIP picked %s, want transitively boosted deep holder", d.Run.Name())
	}
}

func TestPIPTopK(t *testing.T) {
	res := resource.NewMap()
	a := mkJob(0, 1000, 0, 0, nil)
	b := mkJob(1, 500, 0, 0, nil)
	c := mkJob(2, 2000, 0, 0, nil)
	w := World{Now: 0, Jobs: []*task.Job{a, b, c}, Res: res, Acc: 10}
	out, _ := (PIP{}).SelectTopK(w, 2)
	if len(out) != 2 || out[0] != b || out[1] != a {
		t.Fatalf("TopK = %v", out)
	}
	if (PIP{}).Name() != "edf-pip" {
		t.Fatal("name")
	}
}
