package sched

import (
	"testing"

	"repro/internal/resource"
	"repro/internal/rtime"
	"repro/internal/task"
)

func TestLLFPicksLeastLaxity(t *testing.T) {
	res := resource.NewMap()
	// a: C=1000, rem=100 → laxity 900. b: C=500, rem=450 → laxity 50.
	a := mkJob(0, 1000, 0, 0, nil)     // compute 100
	b := mkJobWithExec(1, 500, 0, 450) // compute 450
	w := World{Now: 0, Jobs: []*task.Job{a, b}, Res: res, Acc: 10}
	if d := (LLF{}).Select(w); d.Run != b {
		t.Fatalf("picked %s, want least laxity", d.Run.Name())
	}
	// EDF would pick b too (earlier C); differentiate: make a's laxity
	// smaller while its critical time is later.
	c := mkJobWithExec(2, 2000, 0, 1950) // laxity 50... make 30: exec 1970
	c = mkJobWithExec(2, 2000, 0, 1970)
	w = World{Now: 0, Jobs: []*task.Job{b, c}, Res: res, Acc: 10}
	if d := (LLF{}).Select(w); d.Run != c {
		t.Fatalf("picked %s, want the later-deadline lower-laxity job", d.Run.Name())
	}
	if d := (EDF{}).Select(w); d.Run != b {
		t.Fatalf("EDF picked %s, want the earlier deadline", d.Run.Name())
	}
}

func mkJobWithExec(id int, c rtime.Duration, ar rtime.Time, exec rtime.Duration) *task.Job {
	tk := mkJob(id, c, ar, 0, nil).Task
	tk.Segments = task.InterleavedSegments(exec, 0, nil)
	return task.NewJob(tk, 0, ar)
}

func TestLLFLaxityEvolves(t *testing.T) {
	res := resource.NewMap()
	// Two jobs, nearly equal laxity. As `now` advances without the second
	// job running, its laxity shrinks and it overtakes — the mechanism of
	// mutual preemption (paper Fig 6).
	a := mkJobWithExec(0, 1000, 0, 300) // laxity 700
	b := mkJobWithExec(1, 1100, 0, 390) // laxity 710
	w := World{Now: 0, Jobs: []*task.Job{a, b}, Res: res, Acc: 10}
	if d := (LLF{}).Select(w); d.Run != a {
		t.Fatalf("t=0: picked %s, want a", d.Run.Name())
	}
	// Simulate a running 20 ticks: its laxity stays 700; b's drops to 690.
	a.Step(20, 10)
	w.Now = 20
	if d := (LLF{}).Select(w); d.Run != b {
		t.Fatalf("t=20: picked %s, want b (laxity overtake)", d.Run.Name())
	}
	// And back: b runs 40, laxity pinned at 690; a's drops to 680.
	b.Step(40, 10)
	w.Now = 60
	if d := (LLF{}).Select(w); d.Run != a {
		t.Fatalf("t=60: picked %s, want a again (mutual preemption)", d.Run.Name())
	}
}

func TestLLFSkipsBlocked(t *testing.T) {
	res := resource.NewMap()
	holder := mkJob(0, 5000, 0, 1, []int{0})
	blocked := mkJob(1, 300, 0, 1, []int{0})
	holder.Step(1<<40, 10)
	res.TryAcquire(holder, 0)
	holder.Step(1, 10)
	blocked.Step(1<<40, 10)
	res.TryAcquire(blocked, 0)
	blocked.State = task.Blocked
	w := World{Now: 0, Jobs: []*task.Job{holder, blocked}, Res: res, Acc: 10, LockBased: true}
	if d := (LLF{}).Select(w); d.Run != holder {
		t.Fatalf("picked %v, want holder", d.Run)
	}
}

func TestLLFEmptyAndName(t *testing.T) {
	if (LLF{}).Name() != "llf" {
		t.Fatal("name")
	}
	d := LLF{}.Select(World{Res: resource.NewMap()})
	if d.Run != nil {
		t.Fatal("empty world selected a job")
	}
}
