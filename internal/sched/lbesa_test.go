package sched

import (
	"testing"

	"repro/internal/resource"
	"repro/internal/rtime"
	"repro/internal/task"
	"repro/internal/tuf"
	"repro/internal/uam"
)

func uaJob(id int, util float64, c rtime.Duration, exec rtime.Duration) *task.Job {
	t := &task.Task{
		ID:       id,
		TUF:      tuf.MustStep(util, c),
		Arrival:  uam.Spec{L: 0, A: 1, W: 2 * c},
		Segments: task.InterleavedSegments(exec, 0, nil),
	}
	return task.NewJob(t, 0, 0)
}

func TestLBESAUnderloadIsECF(t *testing.T) {
	res := resource.NewMap()
	a := uaJob(0, 1, 1000, 100)
	b := uaJob(1, 100, 500, 100) // earlier C
	w := World{Now: 0, Jobs: []*task.Job{a, b}, Res: res, Acc: 10}
	if d := (LBESA{}).Select(w); d.Run != b {
		t.Fatalf("picked %s, want ECF head", d.Run.Name())
	}
}

func TestLBESAShedsLowDensityUnderOverload(t *testing.T) {
	res := resource.NewMap()
	// Same shape as the RUA overload test: only one fits.
	low := uaJob(0, 1, 100, 80)
	high := uaJob(1, 100, 120, 80)
	w := World{Now: 0, Jobs: []*task.Job{low, high}, Res: res, Acc: 10}
	if d := (LBESA{}).Select(w); d.Run != high {
		t.Fatalf("picked %s, want the high-density job", d.Run.Name())
	}
}

func TestLBESAShedsRepeatedly(t *testing.T) {
	res := resource.NewMap()
	// Three jobs, only one can fit: the two cheap-utility ones go.
	j1 := uaJob(0, 1, 100, 90)
	j2 := uaJob(1, 2, 110, 90)
	j3 := uaJob(2, 500, 120, 90)
	w := World{Now: 0, Jobs: []*task.Job{j1, j2, j3}, Res: res, Acc: 10}
	if d := (LBESA{}).Select(w); d.Run != j3 {
		t.Fatalf("picked %s, want the only valuable job", d.Run.Name())
	}
}

func TestLBESAEmptyAndDoneFiltering(t *testing.T) {
	res := resource.NewMap()
	if d := (LBESA{}).Select(World{Res: res}); d.Run != nil {
		t.Fatal("empty world selected a job")
	}
	done := uaJob(0, 10, 1000, 100)
	done.State = task.Completed
	live := uaJob(1, 10, 1000, 100)
	w := World{Now: 0, Jobs: []*task.Job{done, live}, Res: res, Acc: 10}
	if d := (LBESA{}).Select(w); d.Run != live {
		t.Fatal("done job not filtered")
	}
}

func TestLBESAAllInfeasibleIdles(t *testing.T) {
	res := resource.NewMap()
	hopeless := uaJob(0, 10, 50, 500)
	w := World{Now: 0, Jobs: []*task.Job{hopeless}, Res: res, Acc: 10}
	if d := (LBESA{}).Select(w); d.Run != nil {
		t.Fatal("hopeless job scheduled")
	}
}

func TestLBESAName(t *testing.T) {
	if (LBESA{}).Name() != "lbesa" {
		t.Fatal("name")
	}
}
