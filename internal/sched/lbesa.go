package sched

import (
	"math"
	"sort"

	"repro/internal/rtime"
	"repro/internal/task"
)

// LBESA is Locke's Best-Effort Scheduling Algorithm, the ancestral
// utility-accrual scheduler in the lineage the paper's [22] surveys (RUA
// descends from it via DASA). Where RUA examines jobs in PUD order and
// inserts each into an ECF schedule, LBESA builds the ECF schedule first
// and, while it is infeasible, SHEDS the lowest utility-density job —
// same objective, opposite construction. It ignores dependencies, so use
// it with lock-free objects or no sharing (like lock-free RUA, it is not
// dependency-aware).
type LBESA struct{}

// Name implements Scheduler.
func (LBESA) Name() string { return "lbesa" }

// Select implements Scheduler.
func (LBESA) Select(w World) Decision {
	var ops int64
	live := make([]*task.Job, 0, len(w.Jobs))
	for _, j := range w.Jobs {
		ops++
		if j.Done() || j.State == task.Aborting || !Runnable(w, j) {
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return Decision{Ops: ops}
	}
	// ECF order.
	sort.Slice(live, func(a, b int) bool {
		ops++
		return earlier(live[a], live[b])
	})
	// Shed lowest-density jobs until the schedule is feasible.
	dens := func(j *task.Job) float64 {
		rem := j.Remaining(w.Acc)
		if rem <= 0 {
			return math.Inf(1)
		}
		est := w.Now.Add(rem)
		return j.Task.TUF.Utility(est.Sub(j.Arrival)) / float64(rem)
	}
	for len(live) > 0 {
		if feasibleECF(w.Now, w.Acc, live, &ops) {
			return Decision{Run: live[0], Ops: ops}
		}
		worst := 0
		for i := 1; i < len(live); i++ {
			ops++
			if dens(live[i]) < dens(live[worst]) {
				worst = i
			}
		}
		live = append(live[:worst], live[worst+1:]...)
	}
	return Decision{Ops: ops}
}

func feasibleECF(now rtime.Time, acc rtime.Duration, jobs []*task.Job, ops *int64) bool {
	t := now
	for _, j := range jobs {
		*ops++
		t = t.Add(j.Remaining(acc))
		if t.After(j.AbsoluteCriticalTime()) {
			return false
		}
	}
	return true
}
