package sched

import (
	"sort"

	"repro/internal/task"
)

// TopK is the scheduler capability global multiprocessor dispatch needs:
// rank the runnable jobs and return the best k. Single-CPU Select is the
// k=1 special case. EDF, LLF, and both RUA variants implement it.
type TopK interface {
	Scheduler
	// SelectTopK returns up to k runnable jobs in dispatch-priority order
	// plus the charged operation count. Jobs to abort (deadlock victims)
	// ride on the Decision of Select; global engines call Select first
	// when they need abort decisions, or use schedulers without them.
	SelectTopK(w World, k int) ([]*task.Job, int64)
}

// TopKAborter extends TopK for schedulers whose ranking pass also
// produces abort decisions — RUA's admission-control shedding under
// overload. Global engines consult this interface when present so shed
// jobs actually leave the system instead of being silently re-ranked
// every pass.
type TopKAborter interface {
	TopK
	// SelectTopKAbort is SelectTopK plus the pass's abort list, in
	// deterministic order.
	SelectTopKAbort(w World, k int) (ranked, abort []*task.Job, ops int64)
}

// SelectTopK implements TopK for EDF: the k earliest critical times.
func (e EDF) SelectTopK(w World, k int) ([]*task.Job, int64) {
	return topKBy(w, k, func(a, b *task.Job) bool { return earlier(a, b) })
}

// SelectTopK implements TopK for LLF: the k least laxities.
func (l LLF) SelectTopK(w World, k int) ([]*task.Job, int64) {
	now := w.Now
	lax := func(j *task.Job) int64 {
		return int64(j.AbsoluteCriticalTime().Sub(now) - j.Remaining(w.Acc))
	}
	return topKBy(w, k, func(a, b *task.Job) bool {
		la, lb := lax(a), lax(b)
		if la != lb {
			return la < lb
		}
		return jobOrderLess(a, b)
	})
}

func topKBy(w World, k int, less func(a, b *task.Job) bool) ([]*task.Job, int64) {
	var ops int64
	runnable := make([]*task.Job, 0, len(w.Jobs))
	for _, j := range w.Jobs {
		ops++
		if Runnable(w, j) {
			runnable = append(runnable, j)
		}
	}
	sort.Slice(runnable, func(a, b int) bool {
		ops++
		return less(runnable[a], runnable[b])
	})
	if len(runnable) > k {
		runnable = runnable[:k]
	}
	return runnable, ops
}
