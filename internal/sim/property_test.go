package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/sched"
	"repro/internal/task"
	"repro/internal/tuf"
	"repro/internal/uam"
)

// randomWorkload builds a small task set from fuzz bytes. Every produced
// set is valid by construction; diversity comes from the bytes.
func randomWorkload(nRaw, aRaw uint8, execRaw, cRaw uint16, mRaw, objRaw, classRaw uint8) []*task.Task {
	n := int(nRaw%5) + 2
	tasks := make([]*task.Task, n)
	for i := range tasks {
		u := rtime.Duration(execRaw%800) + 50 + rtime.Duration(i*37)
		c := rtime.Duration(cRaw%4000) + 4*u + rtime.Duration(i)*100
		a := int(aRaw%3) + 1
		m := int(mRaw % 4)
		objs := []int{int(objRaw % 3), (int(objRaw) + 1) % 3}
		util := float64(10 * (i + 1))
		var f tuf.TUF
		switch (int(classRaw) + i) % 3 {
		case 0:
			f = tuf.MustStep(util, c)
		case 1:
			f = tuf.MustLinear(util, c)
		default:
			f = tuf.MustParabolic(util, c)
		}
		tasks[i] = &task.Task{
			ID:        i,
			TUF:       f,
			Arrival:   uam.Spec{L: 0, A: a, W: 2 * c},
			Segments:  task.InterleavedSegments(u, m, objs),
			AbortCost: rtime.Duration(i % 3 * 5),
		}
	}
	return tasks
}

// TestQuickEngineInvariants drives random workloads through both
// synchronization modes and both RUA variants plus EDF/LLF, checking the
// engine's global invariants:
//
//  1. the run finishes without internal errors,
//  2. conservation: every job is completed, aborted, or still live —
//     and the counters agree,
//  3. completed jobs finish after their arrival and accrue ≤ MaxUtility,
//  4. no job retries in lock-based mode, no job blocks in lock-free mode,
//  5. each job's lock-free retries respect the Theorem 2 bound,
//  6. virtual-time accounting: exec + overhead + handlers ≤ horizon.
func TestQuickEngineInvariants(t *testing.T) {
	f := func(nRaw, aRaw uint8, execRaw, cRaw uint16, mRaw, objRaw, classRaw uint8,
		seed int64, modeRaw, schedRaw, kindRaw uint8) bool {
		tasks := randomWorkload(nRaw, aRaw, execRaw, cRaw, mRaw, objRaw, classRaw)
		mode := Mode(modeRaw % 2)
		// Pair schedulers coherently with the synchronization mode:
		// lock-free RUA assumes dependencies do not exist (§5), so it is
		// only valid with lock-free objects; lock-based RUA, EDF, and LLF
		// handle both.
		var s sched.Scheduler
		switch schedRaw % 4 {
		case 0:
			if mode == LockFree {
				s = rua.NewLockFree()
			} else {
				s = rua.NewLockBased()
			}
		case 1:
			s = rua.NewLockBased()
		case 2:
			s = sched.EDF{}
		default:
			s = sched.LLF{}
		}
		var maxC rtime.Duration
		for _, tk := range tasks {
			if c := tk.CriticalTime(); c > maxC {
				maxC = c
			}
		}
		horizon := rtime.Time(20 * maxC)
		res, err := Run(Config{
			Tasks: tasks, Scheduler: s, Mode: mode,
			R: 40, S: 7, OpCost: 0.01,
			Horizon:     horizon,
			ArrivalKind: uam.Kind(kindRaw % 3), Seed: seed,
			ConservativeRetry: true,
		})
		if err != nil {
			t.Logf("engine error (mode=%v sched=%s): %v", mode, s.Name(), err)
			return false
		}
		var done, live int64
		for _, j := range res.Jobs {
			switch {
			case j.Done():
				done++
			default:
				live++
			}
			if j.State == task.Completed {
				if j.Completion < j.Arrival {
					t.Logf("%s completed before arrival", j.Name())
					return false
				}
				if j.AccruedUtility() > j.Task.TUF.MaxUtility()+1e-9 {
					t.Logf("%s over-accrued", j.Name())
					return false
				}
			}
			if mode == LockBased && j.Retries != 0 {
				t.Logf("%s retried under locks", j.Name())
				return false
			}
			if mode == LockFree && j.Blockings != 0 {
				t.Logf("%s blocked under lock-free", j.Name())
				return false
			}
		}
		if done != res.Completions+res.Aborts {
			t.Logf("conservation: done=%d completions+aborts=%d", done, res.Completions+res.Aborts)
			return false
		}
		if int64(len(res.Jobs)) != res.Arrivals {
			t.Logf("job count %d != arrivals %d", len(res.Jobs), res.Arrivals)
			return false
		}
		if mode == LockFree {
			for i := range tasks {
				bound, err := analysis.RetryBound(i, tasks)
				if err != nil {
					return false
				}
				for _, j := range res.Jobs {
					if j.Task.ID == tasks[i].ID && j.Retries > bound {
						t.Logf("Theorem 2 violated: %s retries=%d bound=%d", j.Name(), j.Retries, bound)
						return false
					}
				}
			}
		}
		busy := res.ExecTime + res.Overhead + res.HandlerTime
		if busy > rtime.Duration(horizon)+rtime.Duration(maxC) {
			t.Logf("CPU accounting overflow: busy=%v horizon=%v", busy, horizon)
			return false
		}
		// Lemma 1: a job cannot be preempted more often than the scheduler
		// was invoked (preemptions only happen at scheduling events).
		var totalPreempts int64
		for _, j := range res.Jobs {
			totalPreempts += j.Preempts
		}
		if totalPreempts > res.SchedInvocations {
			t.Logf("Lemma 1 violated: %d preemptions > %d scheduler invocations", totalPreempts, res.SchedInvocations)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120}
	if testing.Short() {
		cfg.MaxCount = 25
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickModesAgreeWithoutSharing checks that with zero object
// accesses, lock-based and lock-free RUA produce identical schedules —
// the two algorithms differ only in dependency handling, and with m=0
// there are no dependencies.
func TestQuickModesAgreeWithoutSharing(t *testing.T) {
	f := func(nRaw, aRaw uint8, execRaw, cRaw uint16, classRaw uint8, seed int64) bool {
		tasks1 := randomWorkload(nRaw, aRaw, execRaw, cRaw, 0, 0, classRaw)
		tasks2 := randomWorkload(nRaw, aRaw, execRaw, cRaw, 0, 0, classRaw)
		var maxC rtime.Duration
		for _, tk := range tasks1 {
			if c := tk.CriticalTime(); c > maxC {
				maxC = c
			}
		}
		horizon := rtime.Time(15 * maxC)
		run := func(tasks []*task.Task, s sched.Scheduler, m Mode) Result {
			res, err := Run(Config{
				Tasks: tasks, Scheduler: s, Mode: m,
				R: 40, S: 40, OpCost: 0, Horizon: horizon,
				ArrivalKind: uam.KindJittered, Seed: seed, ConservativeRetry: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		rLB := run(tasks1, rua.NewLockBased(), LockBased)
		rLF := run(tasks2, rua.NewLockFree(), LockFree)
		if rLB.Completions != rLF.Completions || rLB.Aborts != rLF.Aborts {
			t.Logf("divergence: lb=(%d,%d) lf=(%d,%d)", rLB.Completions, rLB.Aborts, rLF.Completions, rLF.Aborts)
			return false
		}
		for i := range rLB.Jobs {
			if rLB.Jobs[i].Completion != rLF.Jobs[i].Completion {
				t.Logf("job %d completion differs: %v vs %v", i, rLB.Jobs[i].Completion, rLF.Jobs[i].Completion)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
