package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/sched"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/tuf"
	"repro/internal/uam"
)

// oneShot builds a task whose UAM window is the whole horizon so that
// exactly the arrivals we stage occur (sporadic ⟨0,1,W⟩ yields one job at
// t=0 from the generators). For precise arrival staging most tests below
// use manual engines via stagedRun.
func stepTask(id int, u float64, c, w rtime.Duration, comp rtime.Duration, m int, objs []int) *task.Task {
	return &task.Task{
		ID:        id,
		Name:      "T",
		TUF:       tuf.MustStep(u, c),
		Arrival:   uam.Spec{L: 0, A: 1, W: w},
		Segments:  task.InterleavedSegments(comp, m, objs),
		AbortCost: 0,
	}
}

// stagedRun runs a simulation with explicit per-task arrival instants
// via Config.Arrivals (bypassing the UAM generators for hand-computed
// scenarios).
func stagedRun(t *testing.T, cfg Config, arrivals map[int][]rtime.Time) Result {
	t.Helper()
	traces := make([]uam.Trace, len(cfg.Tasks))
	for ti, times := range arrivals {
		traces[ti] = append(traces[ti], times...)
	}
	cfg.Arrivals = traces
	cfg.ArrivalKind = uam.KindPeriodic
	cfg.Seed = 1
	r, err := Run(cfg)
	if err != nil {
		t.Fatalf("engine error: %v", err)
	}
	return r
}

func jobOf(r Result, taskID, seq int) *task.Job {
	for _, j := range r.Jobs {
		if j.Task.ID == taskID && j.Seq == seq {
			return j
		}
	}
	return nil
}

func TestConfigValidation(t *testing.T) {
	good := Config{
		Tasks:     []*task.Task{stepTask(0, 1, 1000, 2000, 100, 0, nil)},
		Scheduler: sched.EDF{},
		R:         10, S: 3, Horizon: 10000,
	}
	if _, err := New(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	for name, mut := range map[string]func(*Config){
		"no-tasks":   func(c *Config) { c.Tasks = nil },
		"no-sched":   func(c *Config) { c.Scheduler = nil },
		"no-horizon": func(c *Config) { c.Horizon = 0 },
		"zero-r":     func(c *Config) { c.R = 0 },
		"zero-s":     func(c *Config) { c.S = 0 },
		"neg-opcost": func(c *Config) { c.OpCost = -1 },
	} {
		c := good
		mut(&c)
		if _, err := New(c); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: expected ErrConfig, got %v", name, err)
		}
	}
}

func TestSingleJobNoSharing(t *testing.T) {
	tk := stepTask(0, 5, 1000, 5000, 100, 0, nil)
	r := stagedRun(t, Config{
		Tasks: []*task.Task{tk}, Scheduler: sched.EDF{},
		Mode: LockFree, R: 10, S: 3, Horizon: 5000,
	}, map[int][]rtime.Time{0: {0}})
	j := jobOf(r, 0, 0)
	if j == nil || j.State != task.Completed {
		t.Fatalf("job state: %+v", j)
	}
	if j.Completion != 100 {
		t.Fatalf("completion = %v, want 100", j.Completion)
	}
	if got := j.AccruedUtility(); got != 5 {
		t.Fatalf("utility = %v, want 5", got)
	}
	if r.Completions != 1 || r.Aborts != 0 || r.Retries != 0 {
		t.Fatalf("result: %+v", r)
	}
	if r.ExecTime != 100 {
		t.Fatalf("ExecTime = %v, want 100", r.ExecTime)
	}
}

func TestEDFPreemption(t *testing.T) {
	// T1 (long, late critical time) starts; T0 (short, early) arrives at
	// t=20 and preempts; T1 finishes after.
	t0 := stepTask(0, 1, 200, 5000, 50, 0, nil)
	t1 := stepTask(1, 1, 1000, 5000, 300, 0, nil)
	r := stagedRun(t, Config{
		Tasks: []*task.Task{t0, t1}, Scheduler: sched.EDF{},
		Mode: LockFree, R: 10, S: 3, Horizon: 5000,
	}, map[int][]rtime.Time{0: {20}, 1: {0}})
	j0, j1 := jobOf(r, 0, 0), jobOf(r, 1, 0)
	if j0.Completion != 70 { // 20 + 50
		t.Fatalf("j0 completion = %v, want 70", j0.Completion)
	}
	if j1.Completion != 350 { // 300 own + 50 interference
		t.Fatalf("j1 completion = %v, want 350", j1.Completion)
	}
	if j1.Preempts < 0 {
		t.Fatalf("preempts negative")
	}
}

func TestLockBasedBlocking(t *testing.T) {
	// Segments: C(10) A(obj0) C(10), r=20. T1 arrives 0, T0 at 15 (T1 is
	// then 5 ticks into its access and holds the lock).
	t0 := stepTask(0, 1, 200, 5000, 20, 1, []int{0})
	t1 := stepTask(1, 1, 1000, 5000, 20, 1, []int{0})
	r := stagedRun(t, Config{
		Tasks: []*task.Task{t0, t1}, Scheduler: sched.EDF{},
		Mode: LockBased, R: 20, S: 3, Horizon: 5000,
	}, map[int][]rtime.Time{0: {15}, 1: {0}})
	j0, j1 := jobOf(r, 0, 0), jobOf(r, 1, 0)
	// Timeline: T1 compute 0-10, access 10-15 (5/20 in), T0 preempts at
	// 15, computes 15-25, blocks on obj0 (Blockings=1), T1 resumes
	// 25-40 finishing the access (unlock), T0 takes lock 40-60, computes
	// 60-70, completes; T1 computes 70-80.
	if j0.Blockings != 1 {
		t.Fatalf("j0 blockings = %d, want 1", j0.Blockings)
	}
	if j0.Completion != 70 {
		t.Fatalf("j0 completion = %v, want 70", j0.Completion)
	}
	if j1.Completion != 80 {
		t.Fatalf("j1 completion = %v, want 80", j1.Completion)
	}
	if r.Retries != 0 {
		t.Fatalf("lock-based run recorded retries: %d", r.Retries)
	}
	if r.LockEvents == 0 {
		t.Fatal("no lock events recorded")
	}
}

func TestLockFreeRetryConservative(t *testing.T) {
	// Same shape as the blocking test but lock-free with s=20: T0
	// preempts T1 mid-access; on resume T1 retries the access.
	t0 := stepTask(0, 1, 200, 5000, 20, 1, []int{1}) // different object
	t1 := stepTask(1, 1, 1000, 5000, 20, 1, []int{0})
	r := stagedRun(t, Config{
		Tasks: []*task.Task{t0, t1}, Scheduler: sched.EDF{},
		Mode: LockFree, R: 20, S: 20, Horizon: 5000,
		ConservativeRetry: true,
	}, map[int][]rtime.Time{0: {15}, 1: {0}})
	j0, j1 := jobOf(r, 0, 0), jobOf(r, 1, 0)
	// T1: compute 0-10, access 10-15 (preempted), T0 runs 15-55
	// (20+20+20... wait: T0 demand = 20 compute + 20 access = 40), so T0
	// completes at 55. T1 resumes at 55, retries: access 55-75, compute
	// 75-85.
	if j0.Completion != 55 {
		t.Fatalf("j0 completion = %v, want 55", j0.Completion)
	}
	if j1.Retries != 1 {
		t.Fatalf("j1 retries = %d, want 1", j1.Retries)
	}
	if j1.Completion != 85 {
		t.Fatalf("j1 completion = %v, want 85", j1.Completion)
	}
	if j1.Blockings != 0 {
		t.Fatalf("lock-free job blocked: %d", j1.Blockings)
	}
}

func TestLockFreeRetryPreciseNoConflict(t *testing.T) {
	// Conflict-precise mode: T0 touches a DIFFERENT object, so T1's
	// interrupted access needs no retry.
	t0 := stepTask(0, 1, 200, 5000, 20, 1, []int{1})
	t1 := stepTask(1, 1, 1000, 5000, 20, 1, []int{0})
	r := stagedRun(t, Config{
		Tasks: []*task.Task{t0, t1}, Scheduler: sched.EDF{},
		Mode: LockFree, R: 20, S: 20, Horizon: 5000,
		ConservativeRetry: false,
	}, map[int][]rtime.Time{0: {15}, 1: {0}})
	j1 := jobOf(r, 1, 0)
	if j1.Retries != 0 {
		t.Fatalf("j1 retries = %d, want 0", j1.Retries)
	}
	// T1 resumes at 55 with 15 ticks of access left + 10 compute.
	if j1.Completion != 80 {
		t.Fatalf("j1 completion = %v, want 80", j1.Completion)
	}
}

func TestLockFreeRetryPreciseWithConflict(t *testing.T) {
	// Same object: T0's commit invalidates T1's in-flight access.
	t0 := stepTask(0, 1, 200, 5000, 20, 1, []int{0})
	t1 := stepTask(1, 1, 1000, 5000, 20, 1, []int{0})
	r := stagedRun(t, Config{
		Tasks: []*task.Task{t0, t1}, Scheduler: sched.EDF{},
		Mode: LockFree, R: 20, S: 20, Horizon: 5000,
		ConservativeRetry: false,
	}, map[int][]rtime.Time{0: {15}, 1: {0}})
	j1 := jobOf(r, 1, 0)
	if j1.Retries != 1 {
		t.Fatalf("j1 retries = %d, want 1", j1.Retries)
	}
	if j1.Completion != 85 {
		t.Fatalf("j1 completion = %v, want 85", j1.Completion)
	}
}

func TestAbortOnCriticalTime(t *testing.T) {
	// Demand 200 > C=100: aborted at 100; handler takes 10 and delays the
	// next job.
	tk := stepTask(0, 5, 100, 5000, 200, 0, nil)
	tk.AbortCost = 10
	t1 := stepTask(1, 1, 1000, 5000, 30, 0, nil)
	r := stagedRun(t, Config{
		Tasks: []*task.Task{tk, t1}, Scheduler: sched.EDF{},
		Mode: LockFree, R: 10, S: 3, Horizon: 5000,
	}, map[int][]rtime.Time{0: {0}, 1: {105}})
	j0, j1 := jobOf(r, 0, 0), jobOf(r, 1, 0)
	if j0.State != task.Aborted {
		t.Fatalf("j0 state = %v, want aborted", j0.State)
	}
	if j0.AbortedAt != 100 {
		t.Fatalf("j0 abortedAt = %v, want 100", j0.AbortedAt)
	}
	if j0.AccruedUtility() != 0 {
		t.Fatal("aborted job accrued utility")
	}
	// Handler occupies 100-110; j1 arrives at 105, starts at 110.
	if j1.Completion != 140 {
		t.Fatalf("j1 completion = %v, want 140", j1.Completion)
	}
	if r.HandlerTime != 10 {
		t.Fatalf("HandlerTime = %v, want 10", r.HandlerTime)
	}
	if r.Aborts != 1 {
		t.Fatalf("Aborts = %d, want 1", r.Aborts)
	}
}

func TestAbortReleasesLocks(t *testing.T) {
	// T0 grabs obj0 and overruns its critical time mid-access; after its
	// handler, T1 must be able to take the lock and finish.
	t0 := stepTask(0, 1, 50, 5000, 20, 1, []int{0}) // demand 20+30=50 ≥ C... make it overrun: C=40
	t0.TUF = tuf.MustStep(1, 40)
	t0.AbortCost = 5
	t1 := stepTask(1, 1, 1000, 5000, 10, 1, []int{0})
	r := stagedRun(t, Config{
		Tasks: []*task.Task{t0, t1}, Scheduler: sched.EDF{},
		Mode: LockBased, R: 30, S: 3, Horizon: 5000,
	}, map[int][]rtime.Time{0: {0}, 1: {5}})
	j0, j1 := jobOf(r, 0, 0), jobOf(r, 1, 0)
	// T0: compute 0-10 (wait: InterleavedSegments(20,1,·) = C(10) A C(10)),
	// access 10-40 would finish exactly at 40 but critical time 40 fires
	// first (abort wins the tie? both at t=40 — the access-end internal
	// event was pushed earlier so it pops first and T0 completes).
	// To keep the test unambiguous, assert only the invariant: whichever
	// way the tie resolves, T1 must eventually complete with the lock.
	if j1.State != task.Completed {
		t.Fatalf("j1 = %v, want completed", j1.State)
	}
	_ = j0
	if r.Err != nil {
		t.Fatal(r.Err)
	}
}

func TestSchedulerOverheadDelaysCompletion(t *testing.T) {
	tk := stepTask(0, 1, 1000, 5000, 100, 0, nil)
	ideal := stagedRun(t, Config{
		Tasks: []*task.Task{tk}, Scheduler: sched.EDF{},
		Mode: LockFree, R: 10, S: 3, Horizon: 5000, OpCost: 0,
	}, map[int][]rtime.Time{0: {0}})
	costly := stagedRun(t, Config{
		Tasks: []*task.Task{tk}, Scheduler: sched.EDF{},
		Mode: LockFree, R: 10, S: 3, Horizon: 5000, OpCost: 12,
	}, map[int][]rtime.Time{0: {0}})
	ji, jc := jobOf(ideal, 0, 0), jobOf(costly, 0, 0)
	if ji.Completion != 100 {
		t.Fatalf("ideal completion = %v", ji.Completion)
	}
	if jc.Completion <= ji.Completion {
		t.Fatalf("overhead did not delay completion: %v vs %v", jc.Completion, ji.Completion)
	}
	if costly.Overhead <= 0 {
		t.Fatalf("no overhead recorded: %v", costly.Overhead)
	}
}

func TestRUAEqualsEDFUnderloadNoSharing(t *testing.T) {
	// Paper §1/§3.4: with step TUFs, no sharing, underload, RUA's output
	// is an EDF (ECF) schedule — identical completions.
	mk := func() []*task.Task {
		return []*task.Task{
			stepTask(0, 3, 400, 5000, 50, 0, nil),
			stepTask(1, 7, 900, 5000, 120, 0, nil),
			stepTask(2, 2, 1500, 5000, 200, 0, nil),
		}
	}
	arr := map[int][]rtime.Time{0: {0, 500}, 1: {10}, 2: {30}}
	edf := stagedRun(t, Config{
		Tasks: mk(), Scheduler: sched.EDF{},
		Mode: LockFree, R: 10, S: 3, Horizon: 5000,
	}, arr)
	ruaR := stagedRun(t, Config{
		Tasks: mk(), Scheduler: rua.NewLockFree(),
		Mode: LockFree, R: 10, S: 3, Horizon: 5000,
	}, arr)
	if edf.Completions != ruaR.Completions {
		t.Fatalf("completions differ: edf=%d rua=%d", edf.Completions, ruaR.Completions)
	}
	for _, je := range edf.Jobs {
		jr := jobOf(ruaR, je.Task.ID, je.Seq)
		if jr == nil || jr.Completion != je.Completion {
			t.Errorf("completion mismatch for %s: edf=%v rua=%v", je.Name(), je.Completion, jr.Completion)
		}
	}
}

func TestRUAOverloadFavorsHighUtility(t *testing.T) {
	// Two jobs, only one can meet its critical time. EDF picks the
	// earlier deadline (low utility); RUA picks the higher PUD.
	low := stepTask(0, 1, 100, 5000, 80, 0, nil)
	high := stepTask(1, 100, 120, 5000, 80, 0, nil)
	arr := map[int][]rtime.Time{0: {0}, 1: {0}}

	edf := stagedRun(t, Config{
		Tasks: []*task.Task{low, high}, Scheduler: sched.EDF{},
		Mode: LockFree, R: 10, S: 3, Horizon: 5000,
	}, arr)
	var edfU float64
	for _, j := range edf.Jobs {
		edfU += j.AccruedUtility()
	}

	ruaRes := stagedRun(t, Config{
		Tasks:     []*task.Task{stepTask(0, 1, 100, 5000, 80, 0, nil), stepTask(1, 100, 120, 5000, 80, 0, nil)},
		Scheduler: rua.NewLockFree(),
		Mode:      LockFree, R: 10, S: 3, Horizon: 5000,
	}, arr)
	var ruaU float64
	for _, j := range ruaRes.Jobs {
		ruaU += j.AccruedUtility()
	}
	if edfU != 1 {
		t.Fatalf("EDF utility = %v, want 1", edfU)
	}
	if ruaU != 100 {
		t.Fatalf("RUA utility = %v, want 100", ruaU)
	}
}

func TestGeneratedArrivalsEndToEnd(t *testing.T) {
	// Full path through the UAM generators: modest underload, everything
	// completes, deterministic across runs with the same seed.
	mk := func() []*task.Task {
		out := make([]*task.Task, 4)
		for i := range out {
			out[i] = &task.Task{
				ID:       i,
				TUF:      tuf.MustStep(float64(i+1), 4000),
				Arrival:  uam.Spec{L: 0, A: 1, W: 5000},
				Segments: task.InterleavedSegments(300, 2, []int{i % 2}),
			}
		}
		return out
	}
	run := func() Result {
		r, err := Run(Config{
			Tasks: mk(), Scheduler: rua.NewLockFree(),
			Mode: LockFree, R: 10, S: 3, Horizon: 100_000,
			ArrivalKind: uam.KindJittered, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()
	if r1.Arrivals == 0 {
		t.Fatal("no arrivals")
	}
	if r1.Completions != r1.Arrivals {
		t.Fatalf("underload should complete everything: %d/%d (aborts %d)", r1.Completions, r1.Arrivals, r1.Aborts)
	}
	if r1.Arrivals != r2.Arrivals || r1.Completions != r2.Completions || r1.SchedOps != r2.SchedOps {
		t.Fatal("same seed produced different runs")
	}
	for i := range r1.Jobs {
		if r1.Jobs[i].Completion != r2.Jobs[i].Completion {
			t.Fatalf("job %d completion differs across identical runs", i)
		}
	}
}

func TestLockBasedRUAWithSharingEndToEnd(t *testing.T) {
	mk := func() []*task.Task {
		out := make([]*task.Task, 5)
		for i := range out {
			out[i] = &task.Task{
				ID:       i,
				TUF:      tuf.MustStep(float64(i+1), 5000),
				Arrival:  uam.Spec{L: 0, A: 2, W: 8000},
				Segments: task.InterleavedSegments(200, 3, []int{0, 1, 2}),
			}
		}
		return out
	}
	r, err := Run(Config{
		Tasks: mk(), Scheduler: rua.NewLockBased(),
		Mode: LockBased, R: 15, S: 3, Horizon: 200_000,
		ArrivalKind: uam.KindBursty, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Arrivals == 0 || r.Completions == 0 {
		t.Fatalf("nothing happened: %+v", r)
	}
	if r.LockEvents == 0 {
		t.Fatal("no lock traffic despite shared objects")
	}
	if r.Retries != 0 {
		t.Fatal("lock-based run produced lock-free retries")
	}
	// Conservation: every job is completed, aborted, or still in flight.
	var done int64
	for _, j := range r.Jobs {
		if j.Done() {
			done++
		}
	}
	if done != r.Completions+r.Aborts {
		t.Fatalf("conservation: done=%d completions+aborts=%d", done, r.Completions+r.Aborts)
	}
}

func TestHeavySharedContentionBothModes(t *testing.T) {
	// 8 tasks all hammering one object. Both modes must run to the
	// horizon without internal errors and preserve job accounting.
	for _, mode := range []Mode{LockBased, LockFree} {
		mk := func() []*task.Task {
			out := make([]*task.Task, 8)
			for i := range out {
				out[i] = &task.Task{
					ID:       i,
					TUF:      tuf.MustStep(float64(i+1), 3000),
					Arrival:  uam.Spec{L: 0, A: 2, W: 6000},
					Segments: task.InterleavedSegments(150, 4, []int{0}),
				}
			}
			return out
		}
		var s sched.Scheduler
		if mode == LockBased {
			s = rua.NewLockBased()
		} else {
			s = rua.NewLockFree()
		}
		r, err := Run(Config{
			Tasks: mk(), Scheduler: s, Mode: mode,
			R: 25, S: 5, Horizon: 300_000,
			ArrivalKind: uam.KindBursty, Seed: 99, ConservativeRetry: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if r.Arrivals < 10 {
			t.Fatalf("%v: too few arrivals: %d", mode, r.Arrivals)
		}
		var done int64
		for _, j := range r.Jobs {
			if j.Done() {
				done++
			}
		}
		if done != r.Completions+r.Aborts {
			t.Fatalf("%v: conservation broken", mode)
		}
		if mode == LockFree && r.LockEvents != 0 {
			t.Fatalf("lock events in lock-free mode: %d", r.LockEvents)
		}
	}
}

func TestObserverAndPreemptCounting(t *testing.T) {
	// Reuse the lock-free retry scenario: T0 preempts T1 mid-access.
	t0 := stepTask(0, 1, 200, 5000, 20, 1, []int{1})
	t1 := stepTask(1, 1, 1000, 5000, 20, 1, []int{0})
	rec := trace.NewRecorder(0)
	cfg := Config{
		Tasks: []*task.Task{t0, t1}, Scheduler: sched.EDF{},
		Mode: LockFree, R: 20, S: 20, Horizon: 5000,
		ConservativeRetry: true,
		Observer:          rec.Observer(),
	}
	r := stagedRun(t, cfg, map[int][]rtime.Time{0: {15}, 1: {0}})
	j1 := jobOf(r, 1, 0)
	if j1.Preempts != 1 {
		t.Fatalf("j1 preempts = %d, want 1", j1.Preempts)
	}
	counts := rec.CountByKind()
	if counts[trace.Arrival] != 2 {
		t.Fatalf("arrivals traced = %d, want 2", counts[trace.Arrival])
	}
	if counts[trace.Complete] != 2 {
		t.Fatalf("completions traced = %d, want 2", counts[trace.Complete])
	}
	if counts[trace.Retry] != 1 {
		t.Fatalf("retries traced = %d, want 1", counts[trace.Retry])
	}
	if counts[trace.Preempt] != 1 {
		t.Fatalf("preempts traced = %d, want 1", counts[trace.Preempt])
	}
	// Commits: both jobs commit one access each.
	if counts[trace.Commit] != 2 {
		t.Fatalf("commits traced = %d, want 2", counts[trace.Commit])
	}
	// Timeline renders both tasks.
	tl := rec.Timeline(0, 100, 40)
	if !strings.Contains(tl, "T0") || !strings.Contains(tl, "T1") {
		t.Fatalf("timeline:\n%s", tl)
	}
}

func TestObserverLockBasedEvents(t *testing.T) {
	t0 := stepTask(0, 1, 200, 5000, 20, 1, []int{0})
	t1 := stepTask(1, 1, 1000, 5000, 20, 1, []int{0})
	rec := trace.NewRecorder(0)
	cfg := Config{
		Tasks: []*task.Task{t0, t1}, Scheduler: sched.EDF{},
		Mode: LockBased, R: 20, S: 3, Horizon: 5000,
		Observer: rec.Observer(),
	}
	stagedRun(t, cfg, map[int][]rtime.Time{0: {15}, 1: {0}})
	counts := rec.CountByKind()
	if counts[trace.LockAcquire] != 2 {
		t.Fatalf("lock acquires = %d, want 2", counts[trace.LockAcquire])
	}
	if counts[trace.LockRelease] != 2 {
		t.Fatalf("lock releases = %d, want 2", counts[trace.LockRelease])
	}
	if counts[trace.Block] != 1 {
		t.Fatalf("blocks = %d, want 1", counts[trace.Block])
	}
	if counts[trace.Commit] != 0 {
		t.Fatalf("commits in lock-based mode = %d", counts[trace.Commit])
	}
}

func TestExplicitArrivalsValidation(t *testing.T) {
	tk := stepTask(0, 1, 1000, 5000, 100, 0, nil)
	base := Config{
		Tasks: []*task.Task{tk}, Scheduler: sched.EDF{},
		Mode: LockFree, R: 10, S: 3, Horizon: 5000,
	}
	unsorted := base
	unsorted.Arrivals = []uam.Trace{{100, 50}}
	if _, err := New(unsorted); !errors.Is(err, ErrConfig) {
		t.Fatal("unsorted explicit trace accepted")
	}
	tooMany := base
	tooMany.Arrivals = []uam.Trace{{0}, {0}}
	if _, err := New(tooMany); !errors.Is(err, ErrConfig) {
		t.Fatal("too many traces accepted")
	}
	outOfRange := base
	outOfRange.Arrivals = []uam.Trace{{9999999}}
	if _, err := New(outOfRange); !errors.Is(err, ErrConfig) {
		t.Fatal("out-of-horizon trace accepted")
	}
}

// nested builds a task with explicit (possibly nested) critical sections.
func nestedTask(id int, u float64, c rtime.Duration, segs []task.Segment) *task.Task {
	return &task.Task{
		ID:        id,
		Name:      "N",
		TUF:       tuf.MustStep(u, c),
		Arrival:   uam.Spec{L: 0, A: 1, W: 2 * c},
		Segments:  segs,
		AbortCost: 7,
	}
}

func TestNestedSectionsRejectedInLockFreeMode(t *testing.T) {
	tk := nestedTask(0, 1, 1000, []task.Segment{
		{Kind: task.Compute, D: 10},
		{Kind: task.Lock, Object: 0},
		{Kind: task.Compute, D: 10},
		{Kind: task.Unlock, Object: 0},
	})
	_, err := New(Config{
		Tasks: []*task.Task{tk}, Scheduler: sched.EDF{},
		Mode: LockFree, R: 10, S: 3, Horizon: 5000,
	})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("lock-free config with explicit sections accepted: %v", err)
	}
}

func TestNestedSectionsSingleJob(t *testing.T) {
	tk := nestedTask(0, 5, 1000, []task.Segment{
		{Kind: task.Compute, D: 10},
		{Kind: task.Lock, Object: 0},
		{Kind: task.Compute, D: 20},
		{Kind: task.Lock, Object: 1}, // nested
		{Kind: task.Compute, D: 30},
		{Kind: task.Unlock, Object: 1},
		{Kind: task.Unlock, Object: 0},
		{Kind: task.Compute, D: 40},
	})
	r := stagedRun(t, Config{
		Tasks: []*task.Task{tk}, Scheduler: rua.NewLockBased(),
		Mode: LockBased, R: 10, S: 3, Horizon: 5000,
	}, map[int][]rtime.Time{0: {0}})
	j := jobOf(r, 0, 0)
	if j.State != task.Completed {
		t.Fatalf("state = %v", j.State)
	}
	if j.Completion != 100 { // lock boundaries are zero-duration
		t.Fatalf("completion = %v, want 100", j.Completion)
	}
	if r.LockEvents != 4 { // 2 locks + 2 unlocks
		t.Fatalf("lock events = %d, want 4", r.LockEvents)
	}
}

func TestDeadlockDetectedAndResolvedEndToEnd(t *testing.T) {
	// Classic AB/BA deadlock. T1 (high utility) locks A then B; T2 (low
	// utility, earlier critical time so it preempts) locks B then A. RUA
	// must detect the cycle, abort T2 (least PUD), run its handler, and
	// let T1 finish.
	t1 := nestedTask(0, 100, 2000, []task.Segment{
		{Kind: task.Compute, D: 10},
		{Kind: task.Lock, Object: 0}, // A
		{Kind: task.Compute, D: 30},
		{Kind: task.Lock, Object: 1}, // B — deadlock point
		{Kind: task.Compute, D: 10},
		{Kind: task.Unlock, Object: 1},
		{Kind: task.Unlock, Object: 0},
		{Kind: task.Compute, D: 10},
	})
	t2 := nestedTask(1, 1, 1000, []task.Segment{
		{Kind: task.Compute, D: 10},
		{Kind: task.Lock, Object: 1}, // B
		{Kind: task.Compute, D: 10},
		{Kind: task.Lock, Object: 0}, // A — deadlock point
		{Kind: task.Compute, D: 10},
		{Kind: task.Unlock, Object: 0},
		{Kind: task.Unlock, Object: 1},
	})
	rec := trace.NewRecorder(0)
	r := stagedRun(t, Config{
		Tasks: []*task.Task{t1, t2}, Scheduler: rua.NewLockBased(),
		Mode: LockBased, R: 10, S: 3, Horizon: 10_000,
		Observer: rec.Observer(),
	}, map[int][]rtime.Time{0: {0}, 1: {15}})

	j1, j2 := jobOf(r, 0, 0), jobOf(r, 1, 0)
	if j2.State != task.Aborted {
		t.Fatalf("victim state = %v, want aborted (j1=%v)", j2.State, j1.State)
	}
	if j1.State != task.Completed {
		t.Fatalf("survivor state = %v, want completed", j1.State)
	}
	if j1.AccruedUtility() != 100 {
		t.Fatalf("survivor utility = %v", j1.AccruedUtility())
	}
	if r.Aborts != 1 {
		t.Fatalf("aborts = %d, want 1", r.Aborts)
	}
	counts := rec.CountByKind()
	if counts[trace.AbortBegin] != 1 || counts[trace.AbortDone] != 1 {
		t.Fatalf("abort trace events = %v", counts)
	}
	// Both objects must be free at the end (handler rolled back).
	if r.Err != nil {
		t.Fatal(r.Err)
	}
}

func TestNestedContentionNoDeadlock(t *testing.T) {
	// Same lock ORDER in both tasks (A then B): contention but no cycle;
	// both must finish.
	mk := func(id int, u float64, c rtime.Duration) *task.Task {
		return nestedTask(id, u, c, []task.Segment{
			{Kind: task.Compute, D: 10},
			{Kind: task.Lock, Object: 0},
			{Kind: task.Compute, D: 20},
			{Kind: task.Lock, Object: 1},
			{Kind: task.Compute, D: 20},
			{Kind: task.Unlock, Object: 1},
			{Kind: task.Unlock, Object: 0},
			{Kind: task.Compute, D: 10},
		})
	}
	r := stagedRun(t, Config{
		Tasks: []*task.Task{mk(0, 10, 2000), mk(1, 20, 1500)}, Scheduler: rua.NewLockBased(),
		Mode: LockBased, R: 10, S: 3, Horizon: 10_000,
	}, map[int][]rtime.Time{0: {0}, 1: {12}})
	for _, j := range r.Jobs {
		if j.State != task.Completed {
			t.Fatalf("%s state = %v, want completed", j.Name(), j.State)
		}
	}
	if r.Aborts != 0 {
		t.Fatalf("aborts = %d in deadlock-free workload", r.Aborts)
	}
}

func TestLLFMutualPreemptionFig6(t *testing.T) {
	// Paper §4.1 / Fig 6: fully-dynamic priority schedulers (LLF) let two
	// jobs preempt each other repeatedly as scheduling events occur,
	// while job-level dynamic schedulers (EDF) never flip between two
	// jobs whose deadlines don't change. Lock-based accesses create the
	// scheduling events at which LLF re-evaluates laxities.
	mk := func() []*task.Task {
		return []*task.Task{
			stepTask(0, 1, 2000, 8000, 300, 4, []int{0}),
			stepTask(1, 1, 2150, 8000, 340, 4, []int{1}),
		}
	}
	run := func(s sched.Scheduler) int64 {
		r := stagedRun(t, Config{
			Tasks: mk(), Scheduler: s,
			Mode: LockBased, R: 5, S: 5, Horizon: 8000,
		}, map[int][]rtime.Time{0: {0}, 1: {0}})
		var p int64
		for _, j := range r.Jobs {
			if j.State != task.Completed {
				t.Fatalf("%s: job %s = %v", s.Name(), j.Name(), j.State)
			}
			p += j.Preempts
		}
		return p
	}
	edfP := run(sched.EDF{})
	llfP := run(sched.LLF{})
	if llfP <= edfP {
		t.Fatalf("LLF preemptions (%d) not above EDF (%d) — no mutual preemption", llfP, edfP)
	}
	if llfP < 2 {
		t.Fatalf("LLF preemptions = %d, expected repeated flips", llfP)
	}
}

func TestSimultaneousBurstArrivals(t *testing.T) {
	// UAM permits simultaneous arrivals; three jobs of one task landing
	// at the same tick must all be released, scheduled ECF, and finish.
	tk := &task.Task{
		ID: 0, TUF: tuf.MustStep(1, 2000),
		Arrival:  uam.Spec{L: 0, A: 3, W: 4000},
		Segments: task.InterleavedSegments(100, 0, nil),
	}
	r := stagedRun(t, Config{
		Tasks: []*task.Task{tk}, Scheduler: rua.NewLockFree(),
		Mode: LockFree, R: 10, S: 3, Horizon: 4000,
	}, map[int][]rtime.Time{0: {500, 500, 500}})
	if r.Arrivals != 3 || r.Completions != 3 {
		t.Fatalf("arrivals=%d completions=%d", r.Arrivals, r.Completions)
	}
	// Sequential service: completions at 600, 700, 800.
	want := []rtime.Time{600, 700, 800}
	for i, w := range want {
		if j := jobOf(r, 0, i); j.Completion != w {
			t.Fatalf("J[0,%d] completion = %v, want %v", i, j.Completion, w)
		}
	}
}

func TestBusyAndUtilizationAccounting(t *testing.T) {
	tk := stepTask(0, 1, 1000, 5000, 200, 0, nil)
	r := stagedRun(t, Config{
		Tasks: []*task.Task{tk}, Scheduler: sched.EDF{},
		Mode: LockFree, R: 10, S: 3, Horizon: 1000, OpCost: 0,
	}, map[int][]rtime.Time{0: {0}})
	if r.Busy() != 200 {
		t.Fatalf("Busy = %v, want 200", r.Busy())
	}
	if got := r.Utilization(); got != 0.2 {
		t.Fatalf("Utilization = %v, want 0.2", got)
	}
}

func TestCriticalTimeBeyondHorizonIgnored(t *testing.T) {
	// A job arriving near the horizon whose critical time lies beyond it
	// is released but neither aborted nor force-completed by the engine.
	tk := stepTask(0, 1, 900, 5000, 400, 0, nil)
	r := stagedRun(t, Config{
		Tasks: []*task.Task{tk}, Scheduler: sched.EDF{},
		Mode: LockFree, R: 10, S: 3, Horizon: 1000,
	}, map[int][]rtime.Time{0: {800}})
	j := jobOf(r, 0, 0)
	if j == nil {
		t.Fatal("job not released")
	}
	if j.Done() {
		t.Fatalf("job finished impossibly: %v", j.State)
	}
	if r.Aborts != 0 {
		t.Fatal("abort fired beyond horizon")
	}
}

func TestBackToBackJobsOfSameTask(t *testing.T) {
	// The second job arrives while the first still runs; both complete
	// in arrival order under EDF (same relative deadline → FIFO).
	tk := stepTask(0, 1, 1000, 5000, 300, 0, nil)
	r := stagedRun(t, Config{
		Tasks: []*task.Task{tk}, Scheduler: sched.EDF{},
		Mode: LockFree, R: 10, S: 3, Horizon: 5000,
	}, map[int][]rtime.Time{0: {0, 100}})
	j0, j1 := jobOf(r, 0, 0), jobOf(r, 0, 1)
	if j0.Completion != 300 || j1.Completion != 600 {
		t.Fatalf("completions = %v, %v; want 300, 600", j0.Completion, j1.Completion)
	}
	if j0.Preempts != 0 {
		t.Fatalf("FIFO same-deadline job preempted: %d", j0.Preempts)
	}
}
