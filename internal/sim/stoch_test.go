package sim

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/stoch"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/uam"
)

// stochRun executes the canonical random workload under a plan and
// returns the result plus the full recorded event stream.
func stochRun(t *testing.T, plan *stoch.Plan, seed int64) (Result, []trace.Event) {
	t.Helper()
	tasks := randomWorkload(3, 1, 300, 2000, 3, 1, 0)
	rec := trace.NewRecorder(0)
	res, err := Run(Config{
		Tasks: tasks, Scheduler: rua.NewLockFree(), Mode: LockFree,
		R: 150, S: 5, OpCost: 0.02,
		Horizon: 200_000, ArrivalKind: uam.KindJittered, Seed: seed,
		ConservativeRetry: true, Stoch: plan, Observer: rec.Record,
	})
	if err != nil {
		t.Fatalf("stoch run: %v", err)
	}
	return res, rec.Events()
}

// TestStochNilPlanBitIdentical pins the tentpole's zero-cost contract:
// a nil plan, a zero plan, and an explicit "off" plan all reproduce
// the deterministic scheduler's event stream bit for bit.
func TestStochNilPlanBitIdentical(t *testing.T) {
	base, baseEvs := stochRun(t, nil, 1)
	off, err := stoch.ParsePlan("off")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		plan *stoch.Plan
	}{
		{"zero", &stoch.Plan{}},
		{"off", off},
		{"quantum-without-dist", &stoch.Plan{Quantum: 100, PickProb: 1}},
	} {
		res, evs := stochRun(t, tc.plan, 1)
		if !reflect.DeepEqual(res.Jobs == nil, base.Jobs == nil) ||
			res.Completions != base.Completions || res.Retries != base.Retries ||
			res.CtxSwitches != base.CtxSwitches || res.SchedOps != base.SchedOps {
			t.Fatalf("%s plan diverged from plan-free run: %+v", tc.name, res)
		}
		if !reflect.DeepEqual(evs, baseEvs) {
			t.Fatalf("%s plan produced a different event stream", tc.name)
		}
	}
}

// TestStochDeterministic: the same active plan yields byte-identical
// event streams on repeated runs (every decision is a pure hash).
func TestStochDeterministic(t *testing.T) {
	for _, plan := range []*stoch.Plan{
		{Seed: 7, Dist: stoch.Uniform, Quantum: 200, PickProb: 0.25},
		{Seed: 7, Dist: stoch.Geometric, Quantum: 200, PickProb: 0.25},
	} {
		resA, evsA := stochRun(t, plan, 2)
		resB, evsB := stochRun(t, plan, 2)
		if resA.Completions != resB.Completions || resA.Retries != resB.Retries ||
			resA.CtxSwitches != resB.CtxSwitches {
			t.Fatalf("%v plan not deterministic: %+v vs %+v", plan.Dist, resA, resB)
		}
		if !reflect.DeepEqual(evsA, evsB) {
			t.Fatalf("%v plan event streams differ across runs", plan.Dist)
		}
	}
}

// TestStochPerturbs: an active plan must actually change the schedule
// — forced preemptions add scheduling passes over the plan-free run.
func TestStochPerturbs(t *testing.T) {
	base, _ := stochRun(t, nil, 3)
	pert, _ := stochRun(t, &stoch.Plan{Seed: 1, Dist: stoch.Uniform, Quantum: 100, PickProb: 0.25}, 3)
	if pert.SchedInvocations <= base.SchedInvocations {
		t.Fatalf("stochastic plan added no scheduling passes: %d vs %d",
			pert.SchedInvocations, base.SchedInvocations)
	}
	if pert.Completions == 0 {
		t.Fatal("stochastic run completed nothing; quantum starves the workload")
	}
}

// TestStochSeedsIndependent: different plan seeds produce different
// schedules on the same workload.
func TestStochSeedsIndependent(t *testing.T) {
	a, evsA := stochRun(t, &stoch.Plan{Seed: 1, Dist: stoch.Geometric, Quantum: 150, PickProb: 0.3}, 4)
	b, evsB := stochRun(t, &stoch.Plan{Seed: 2, Dist: stoch.Geometric, Quantum: 150, PickProb: 0.3}, 4)
	if a.SchedInvocations == b.SchedInvocations && reflect.DeepEqual(evsA, evsB) {
		t.Fatal("plan seeds 1 and 2 produced identical schedules")
	}
}

// TestStochEngineInvariants drives random workloads under random
// active plans through both modes, checking the engine's conservation
// and accounting invariants survive forced preemptions and random
// picks.
func TestStochEngineInvariants(t *testing.T) {
	f := func(nRaw, aRaw uint8, execRaw, cRaw uint16, mRaw, objRaw uint8,
		seed int64, planSeed int64, distRaw uint8, quantRaw uint16, pickRaw uint8) bool {
		tasks := randomWorkload(nRaw, aRaw, execRaw, cRaw, mRaw, objRaw, 0)
		plan := &stoch.Plan{
			Seed:     planSeed,
			Dist:     stoch.Dist(int(distRaw%2) + 1),
			Quantum:  rtime.Duration(quantRaw%500) + 1,
			PickProb: float64(pickRaw%100) / 100,
		}
		res, err := Run(Config{
			Tasks: tasks, Scheduler: rua.NewLockFree(), Mode: LockFree,
			R: 150, S: 5, OpCost: 0.02,
			Horizon: 100_000, ArrivalKind: uam.KindJittered, Seed: seed,
			ConservativeRetry: true, Stoch: plan,
		})
		if err != nil {
			t.Logf("run failed: %v", err)
			return false
		}
		var done, aborted, live int64
		for _, j := range res.Jobs {
			switch j.State {
			case task.Completed:
				done++
			case task.Aborted:
				aborted++
			default:
				live++
			}
		}
		if done != res.Completions || aborted != res.Aborts {
			t.Logf("conservation: done=%d/%d aborted=%d/%d", done, res.Completions, aborted, res.Aborts)
			return false
		}
		if res.Busy() > rtime.Duration(res.Horizon)+res.Overhead {
			t.Logf("busy %v exceeds horizon %v", res.Busy(), res.Horizon)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
