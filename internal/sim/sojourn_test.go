package sim

// Cross-validation between the analytic plane and the simulator: on
// workloads where the §5 worst-case sojourn composition stays below the
// critical time, measured sojourns must never exceed it. This ties
// analysis.SojournInputs (Theorem 3's building blocks) to the engine's
// actual behaviour.

import (
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/task"
	"repro/internal/tuf"
	"repro/internal/uam"
)

func TestQuickMeasuredSojournWithinAnalyticWorstCase(t *testing.T) {
	f := func(nRaw uint8, uRaw uint16, mRaw uint8, seed int64) bool {
		n := int(nRaw%3) + 2
		m := int(mRaw%3) + 1
		tasks := make([]*task.Task, n)
		for i := range tasks {
			u := rtime.Duration(uRaw%200) + 50
			// Generous critical times so the analytic worst case fits.
			c := 60 * u * rtime.Duration(n)
			tasks[i] = &task.Task{
				ID:       i,
				TUF:      tuf.MustStep(float64(i+1), c),
				Arrival:  uam.Spec{L: 0, A: 1, W: 2 * c},
				Segments: task.InterleavedSegments(u, m, []int{0}),
			}
		}
		const (
			r = rtime.Duration(40)
			s = rtime.Duration(7)
		)
		for _, mode := range []Mode{LockFree, LockBased} {
			cfg := Config{
				Tasks: tasks, Mode: mode,
				R: r, S: s, OpCost: 0,
				Horizon:     rtime.Time(30 * tasks[n-1].CriticalTime()),
				ArrivalKind: uam.KindBursty, Seed: seed,
				ConservativeRetry: true,
			}
			if mode == LockFree {
				cfg.Scheduler = rua.NewLockFree()
			} else {
				cfg.Scheduler = rua.NewLockBased()
			}
			res, err := Run(cfg)
			if err != nil {
				t.Logf("engine: %v", err)
				return false
			}
			for _, j := range res.Jobs {
				if j.State != task.Completed {
					continue
				}
				i := j.Task.ID
				in, err := analysis.InputsFor(i, tasks, r, s)
				if err != nil {
					return false
				}
				interf, err := analysis.Interference(i, tasks, r)
				if err != nil {
					return false
				}
				in.I = interf
				var bound rtime.Duration
				if mode == LockFree {
					bound = in.LockFreeSojourn()
				} else {
					bound = in.LockBasedSojourn()
				}
				if got := j.Sojourn(); got > bound {
					t.Logf("%v %s: sojourn %v > analytic worst case %v",
						mode, j.Name(), got, bound)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
