// Package sim is the deterministic discrete-event substrate that stands
// in for the paper's QNX Neutrino testbed. It models a single preemptive
// processor under virtual time: jobs arrive under UAM, execute compute
// and shared-object access segments, acquire/release locks (lock-based
// mode) or commit/retry (lock-free mode), are aborted when their critical
// times expire (§3.5), and are dispatched by a pluggable scheduler whose
// decision cost — measured in charged operations — is converted into
// virtual scheduling overhead occupying the CPU.
//
// Why a simulator: the paper's claims are statements about scheduling
// event sequences (who preempts whom, how many retries an access suffers,
// how overhead scales with the ready-queue length), not about wall-clock
// physics. A Go process cannot provide RTOS priorities (the runtime
// scheduler and GC preempt arbitrarily), so real time would add noise
// without adding fidelity; virtual time gives exact, reproducible event
// interleavings. Real atomics-based objects are measured separately in
// internal/lockfree benchmarks.
package sim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/resource"
	"repro/internal/rtime"
	"repro/internal/rtime/wheel"
	"repro/internal/sched"
	"repro/internal/stoch"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/uam"
)

// Mode selects the synchronization substrate.
type Mode int

// Synchronization modes.
const (
	// LockBased serializes object accesses with locks; lock and unlock
	// requests are scheduling events (§3).
	LockBased Mode = iota
	// LockFree lets accesses run optimistically; the only scheduling
	// events are job arrivals and departures (§4.1), and a preempted
	// access retries on resume.
	LockFree
)

// String renders the mode.
func (m Mode) String() string {
	if m == LockFree {
		return "lock-free"
	}
	return "lock-based"
}

// ErrConfig reports an invalid simulation configuration.
var ErrConfig = errors.New("sim: invalid config")

// Config describes one simulation run.
type Config struct {
	Tasks     []*task.Task
	Scheduler sched.Scheduler
	Mode      Mode

	// R and S are the lock-based and lock-free per-access costs (the r
	// and s of §5). The mode in force picks which one applies.
	R, S rtime.Duration

	// OpCost is the virtual time (in ticks, i.e. µs) charged per
	// scheduler operation. Zero models the "ideal" scheduler of Fig 9.
	OpCost float64

	Horizon rtime.Time

	// ArrivalKind and Seed drive the per-task UAM generators.
	ArrivalKind uam.Kind
	Seed        int64

	// Arrivals, when non-nil, replaces generated arrivals with explicit
	// per-task traces (index-aligned with Tasks; missing/short entries
	// mean no arrivals for that task). Each trace must be sorted and
	// within the horizon; UAM conformance is the caller's responsibility
	// (validate with uam.CheckTrace when it matters — tests deliberately
	// construct off-model scenarios).
	Arrivals []uam.Trace

	// Observer, when non-nil, receives a trace event for every
	// scheduling-relevant state change (arrivals, dispatches, blocks,
	// commits, retries, completions, aborts) plus one SchedPass per
	// scheduler invocation. If the Scheduler implements
	// SetObserver(func(trace.Event)) — as RUA does for its
	// FeasOK/FeasFail events — the engine wires it to the same observer
	// (and clears it when Observer is nil, so reused scheduler instances
	// never leak events to a previous run's recorder).
	Observer func(trace.Event)

	// ConservativeRetry selects retry accounting: true re-runs a
	// preempted lock-free access whenever any other job was dispatched in
	// between (the adversary Theorem 2 bounds); false retries only when a
	// conflicting commit actually landed on the same object.
	ConservativeRetry bool

	// Fault, when active, injects deterministic faults (internal/fault):
	// arrival jitter/bursts applied to the generated or explicit traces,
	// per-job execution overruns, phantom-writer CAS failures on
	// lock-free commits, and transient CPU stalls at scheduler passes.
	// A nil or inactive plan leaves the run bit-for-bit identical to one
	// without the field.
	Fault *fault.Plan

	// Stoch, when active, overlays the seeded stochastic-scheduler mode
	// (internal/stoch): dispatches are force-preempted after a randomly
	// drawn quantum, and a scheduling pass occasionally replaces the
	// deterministic scheduler's pick with a uniformly random runnable
	// job. Every decision is a pure hash of (plan seed, StochCPU,
	// virtual tick); a nil or inactive plan leaves the run bit-for-bit
	// identical to one without the field.
	Stoch *stoch.Plan

	// StochCPU is the processor coordinate folded into every stochastic
	// decision hash — 0 for standalone uniprocessor runs; the
	// partitioned engine sets it to the partition index so distinct
	// partitions draw independent decisions from one shared plan.
	StochCPU int
}

func (c *Config) validate() error {
	if len(c.Tasks) == 0 {
		return fmt.Errorf("%w: no tasks", ErrConfig)
	}
	if c.Scheduler == nil {
		return fmt.Errorf("%w: no scheduler", ErrConfig)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("%w: horizon %v must be positive", ErrConfig, c.Horizon)
	}
	if c.R <= 0 || c.S <= 0 {
		return fmt.Errorf("%w: access costs R=%v S=%v must be positive", ErrConfig, c.R, c.S)
	}
	if c.OpCost < 0 || math.IsNaN(c.OpCost) || math.IsInf(c.OpCost, 0) {
		return fmt.Errorf("%w: op cost %v", ErrConfig, c.OpCost)
	}
	for _, t := range c.Tasks {
		if err := t.Validate(); err != nil {
			return err
		}
		if c.Mode == LockFree && t.UsesExplicitSections() {
			return fmt.Errorf("%w: task %d uses explicit Lock/Unlock sections, which the lock-free model excludes (§2)", ErrConfig, t.ID)
		}
	}
	if c.Arrivals != nil {
		if len(c.Arrivals) > len(c.Tasks) {
			return fmt.Errorf("%w: %d arrival traces for %d tasks", ErrConfig, len(c.Arrivals), len(c.Tasks))
		}
		for i, tr := range c.Arrivals {
			for k, at := range tr {
				if k > 0 && at < tr[k-1] {
					return fmt.Errorf("%w: arrival trace %d is not sorted", ErrConfig, i)
				}
				if at < 0 || at >= c.Horizon {
					return fmt.Errorf("%w: arrival trace %d: %v outside [0, %v)", ErrConfig, i, at, c.Horizon)
				}
			}
		}
	}
	return nil
}

// Result aggregates a finished run.
type Result struct {
	Jobs []*task.Job // every job released before the horizon

	Arrivals    int64
	Completions int64
	Aborts      int64

	SchedInvocations int64
	SchedOps         int64
	LockEvents       int64
	CtxSwitches      int64
	Retries          int64 // Σ per-job lock-free retries

	ExecTime    rtime.Duration // CPU time spent executing jobs
	Overhead    rtime.Duration // CPU time spent in the scheduler
	HandlerTime rtime.Duration // CPU time spent in abort handlers

	// AccessTime is the summed effective object-access latency: from a
	// job's first arrival at an access boundary to the access's commit,
	// including blocking, preemption, and retries. AccessTime/Accesses is
	// the measured r (lock-based) or s (lock-free) of Fig 8.
	AccessTime rtime.Duration
	Accesses   int64

	// Fault-injection accounting; all zero on fault-free runs.
	FaultArrivals int64 // jobs whose release was jittered or injected
	FaultOverruns int64 // jobs carrying hidden execution demand
	FaultRetries  int64 // lock-free retries forced by phantom writers
	FaultStalls   int64 // scheduler passes hit by a transient stall
	SchedAborts   int64 // jobs aborted by scheduler decision (sheds, deadlock victims)

	StallTime rtime.Duration // CPU time lost to injected stalls

	Horizon rtime.Time
	Err     error
}

// Busy returns the total CPU time consumed: job execution, scheduler
// overhead, abort handlers, and injected stalls.
func (r Result) Busy() rtime.Duration {
	return r.ExecTime + r.Overhead + r.HandlerTime + r.StallTime
}

// Utilization returns Busy divided by the horizon, the processor's
// long-run utilization over the run.
func (r Result) Utilization() float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return float64(r.Busy()) / float64(r.Horizon)
}

type evKind int

const (
	evArrival evKind = iota
	evCritical
	evInternal
	evDispatch
	evAbortDone
	evPreempt // stochastic forced preemption at quantum expiry
)

// event is one scheduled occurrence. Ordering — ascending (at, push
// order) — is the timing wheel's contract (see internal/rtime/wheel),
// identical to the binary heap this engine used before PR 6.
type event struct {
	at   rtime.Time
	kind evKind
	job  *task.Job
	gen  int64
}

// runState is per-job engine bookkeeping.
type runState struct {
	accessStart rtime.Time // when the current lock-free access began consuming
	midAccess   bool       // stopped while inside a lock-free access
	stopSeq     int64      // dispatchSeq at the moment it was stopped

	entrySeg  int        // segment index of the stamped access entry (-1 none)
	entryTime rtime.Time // when the job first reached that access boundary

	casAttempt int // phantom-CAS failures suffered on the current access
}

// Engine executes one configured run.
type Engine struct {
	cfg Config
	acc rtime.Duration

	now     rtime.Time
	events  *wheel.Wheel[event]
	res     *resource.Map
	live    []*task.Job
	allJobs []*task.Job

	running *task.Job
	runPos  rtime.Time

	busyUntil       rtime.Time
	pendingDispatch *task.Job
	dispatchGen     int64
	internalGen     int64
	dispatchSeq     int64

	rstates map[*task.Job]*runState
	rsSlab  []runState  // slab the per-job runStates are carved from
	pickBuf []*task.Job // stochastic-pick candidate scratch (reused)
	lastRun *task.Job

	// Stepping state: the wheel has no Peek, so NextAt pops the next
	// event into a one-slot stash that StepNext consumes.
	stash    event
	stashed  bool
	finished bool

	res1 Result
	fail error
}

// New builds an engine, pre-generating all UAM arrivals over the horizon.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg: cfg,
		res: resource.NewMap(),
	}
	if so, ok := cfg.Scheduler.(interface{ SetObserver(func(trace.Event)) }); ok {
		so.SetObserver(cfg.Observer)
	}
	if cfg.Mode == LockBased {
		e.acc = cfg.R
	} else {
		e.acc = cfg.S
	}
	traces := make([]uam.Trace, len(cfg.Tasks))
	injected := make([][]bool, len(cfg.Tasks))
	arrivals := 0
	for i, t := range cfg.Tasks {
		if cfg.Arrivals != nil {
			if i < len(cfg.Arrivals) {
				traces[i] = cfg.Arrivals[i]
			}
		} else {
			g, err := uam.NewGenerator(t.Arrival, cfg.Seed+int64(i)*7919)
			if err != nil {
				return nil, err
			}
			traces[i] = g.Generate(cfg.ArrivalKind, cfg.Horizon)
		}
		// Fault injection perturbs the releases AFTER generation (or on
		// top of explicit traces), keyed purely by (plan seed, task id,
		// arrival index) so every engine perturbs a task identically.
		traces[i], injected[i] = cfg.Fault.PerturbArrivals(t.ID, traces[i], cfg.Horizon)
		arrivals += len(traces[i])
	}
	// Each arrival contributes at most an arrival plus a critical-time
	// event held concurrently; dispatch/internal events are transient.
	// Pre-sizing the wheel arena and job bookkeeping to the known arrival
	// count avoids repeated growth copies over long horizons, and the
	// full-width runState slab keeps the per-job path allocation-free.
	e.events = wheel.New[event](2*arrivals + 8)
	e.allJobs = make([]*task.Job, 0, arrivals)
	e.rstates = make(map[*task.Job]*runState, arrivals)
	e.rsSlab = make([]runState, arrivals)
	if cfg.Stoch.Active() {
		// Live jobs never exceed total arrivals, so the pick scratch
		// sized here keeps the stochastic path allocation-free too.
		e.pickBuf = make([]*task.Job, 0, arrivals)
	}
	for i, t := range cfg.Tasks {
		u := t.ComputeTime()
		for k, at := range traces[i] {
			j := task.NewJob(t, k, at)
			if injected[i] != nil && injected[i][k] {
				j.Injected = true
			}
			j.SetOverrun(cfg.Fault.Overrun(t.ID, k, u))
			e.push(event{at: at, kind: evArrival, job: j})
		}
	}
	return e, nil
}

func (e *Engine) push(ev event) {
	e.events.Push(ev.at, ev)
}

func (e *Engine) rs(j *task.Job) *runState {
	st := e.rstates[j]
	if st == nil {
		// Carve from the slab New pre-allocated for every arrival; the
		// batch refill is a safety net that never fires on a normal run.
		if len(e.rsSlab) == 0 {
			//rtlint:ignore noalloc batch refill safety net; New pre-sizes the slab for every arrival
			e.rsSlab = make([]runState, 64)
		}
		st = &e.rsSlab[0]
		e.rsSlab = e.rsSlab[1:]
		st.entrySeg = -1
		//rtlint:ignore noalloc map pre-sized in New for every arrival; buckets never grow on a normal run
		e.rstates[j] = st
	}
	return st
}

// stampEntry records the first arrival at the current access boundary.
func (e *Engine) stampEntry(j *task.Job) {
	st := e.rs(j)
	if st.entrySeg != j.SegIdx {
		st.entrySeg = j.SegIdx
		st.entryTime = e.runPos
	}
}

func (e *Engine) pushInternal(at rtime.Time) {
	e.internalGen++
	e.push(event{at: at, kind: evInternal, gen: e.internalGen})
}

func (e *Engine) failWith(err error) {
	if e.fail == nil {
		e.fail = err
	}
}

// emit reports a trace event to the configured observer.
func (e *Engine) emit(at rtime.Time, kind trace.Kind, j *task.Job, obj int) {
	if e.cfg.Observer == nil || j == nil {
		return
	}
	e.cfg.Observer(trace.Event{At: at, Kind: kind, Task: j.Task.ID, Seq: j.Seq, Object: obj})
}

// emitSched reports a scheduler-level event (no job attached).
func (e *Engine) emitSched(at rtime.Time, kind trace.Kind, ops int64) {
	if e.cfg.Observer == nil {
		return
	}
	e.cfg.Observer(trace.Event{At: at, Kind: kind, Task: -1, Seq: -1, Object: -1, Ops: ops})
}

// Run executes the simulation to the horizon and returns the result.
//
//rtlint:noalloc steady state carves from pre-sized slabs and reused scratch (PR-6 contract)
func (e *Engine) Run() Result {
	for e.StepNext() {
	}
	return e.Finish()
}

// next pops the engine's next live event (skipping superseded
// generation-guarded ones) into the stash, or reports none remain.
func (e *Engine) next() (event, bool) {
	for !e.stashed {
		if e.events.Len() == 0 {
			return event{}, false
		}
		_, ev, _ := e.events.Pop()
		if ev.kind == evInternal && ev.gen != e.internalGen {
			continue
		}
		if (ev.kind == evDispatch || ev.kind == evPreempt) && ev.gen != e.dispatchGen {
			continue
		}
		e.stash = ev
		e.stashed = true
	}
	return e.stash, true
}

// NextAt peeks the virtual time of the engine's next event. ok is false
// when the engine has nothing left to process: no events remain, the
// next event lies beyond the horizon, or the engine failed. The
// partitioned driver (internal/multi) uses this to interleave several
// engines' events in global time order.
func (e *Engine) NextAt() (rtime.Time, bool) {
	if e.fail != nil || e.finished {
		return 0, false
	}
	ev, ok := e.next()
	if !ok || ev.at > e.cfg.Horizon {
		return 0, false
	}
	return ev.at, true
}

// Err returns the engine's failure, if any.
func (e *Engine) Err() error { return e.fail }

// StepNext processes exactly one event and reports whether the run can
// continue. Observer emissions of the processed event all carry its
// virtual time, so repeatedly calling StepNext yields an event stream
// nondecreasing in Event.At.
//
//rtlint:noalloc steady state carves from pre-sized slabs and reused scratch (PR-6 contract)
func (e *Engine) StepNext() bool {
	if e.fail != nil || e.finished {
		return false
	}
	ev, ok := e.next()
	if !ok || ev.at > e.cfg.Horizon {
		e.finished = true
		return false
	}
	e.stashed = false
	e.now = ev.at
	needResched := e.settle()
	switch ev.kind {
	case evArrival:
		j := ev.job
		//rtlint:ignore noalloc bounded by total arrivals; reaches steady capacity at warm-up
		e.live = append(e.live, j)
		//rtlint:ignore noalloc pre-sized in New for every arrival
		e.allJobs = append(e.allJobs, j)
		e.res1.Arrivals++
		e.emit(e.now, trace.Arrival, j, -1)
		if j.Injected {
			e.res1.FaultArrivals++
			e.emit(e.now, trace.FaultArrival, j, -1)
		}
		if j.Overrun > 0 {
			e.res1.FaultOverruns++
			e.emit(e.now, trace.FaultOverrun, j, -1)
		}
		e.push(event{at: j.AbsoluteCriticalTime(), kind: evCritical, job: j})
		needResched = true
	case evCritical:
		if !ev.job.Done() && ev.job.State != task.Aborting {
			e.beginAbort(ev.job)
			needResched = true
		}
	case evAbortDone:
		j := ev.job
		if j.State == task.Aborting {
			j.State = task.Aborted
			e.res.ReleaseAll(j)
			e.res1.Aborts++
			e.emit(e.now, trace.AbortDone, j, -1)
			needResched = true // departure is a scheduling event
		}
	case evDispatch:
		e.dispatchNow(e.pendingDispatch)
	case evPreempt:
		// The stochastic quantum expired with the dispatch still
		// current (gen-guarded above): force a scheduling pass.
		// settle() already advanced the runner to e.now.
		if e.running != nil {
			needResched = true
		}
	case evInternal:
		// settle() already processed the boundary.
	}
	if needResched && e.fail == nil {
		e.reschedule()
	}
	return e.fail == nil
}

// Finish seals and returns the result. Idempotent; call it after
// StepNext reports the run is over (Run does).
func (e *Engine) Finish() Result {
	e.res1.Jobs = e.allJobs
	e.res1.Horizon = e.cfg.Horizon
	e.res1.Err = e.fail
	var retries int64
	for _, j := range e.allJobs {
		retries += j.Retries
	}
	e.res1.Retries = retries
	return e.res1
}

// settle advances the running job to e.now, processing any boundary that
// falls exactly there. It reports whether a scheduling event occurred
// (lock request/release, completion, blocking).
func (e *Engine) settle() bool {
	j := e.running
	if j == nil {
		return false
	}
	resched := false
	delta := e.now.Sub(e.runPos)
	for {
		used, stepEv := j.Step(delta, e.acc)
		delta -= used
		e.runPos = e.runPos.Add(used)
		e.res1.ExecTime += used
		switch stepEv {
		case task.StepBudget:
			return resched
		case task.StepAccessStart:
			obj, _ := j.AtAccessStart()
			e.stampEntry(j)
			if e.cfg.Mode == LockFree {
				// Not a scheduling event (§4.1): fall straight into the
				// access; the fresh internal event marks its commit point.
				e.rs(j).accessStart = e.runPos
				e.pushInternal(e.runPos.Add(j.TimeToBoundary(e.acc)))
				continue
			}
			granted, _, err := e.res.TryAcquire(j, obj)
			if err != nil {
				e.failWith(err)
				return false
			}
			e.res1.LockEvents++
			if granted {
				e.emit(e.runPos, trace.LockAcquire, j, obj)
			} else {
				j.State = task.Blocked
				e.emit(e.runPos, trace.Block, j, obj)
			}
			e.stopRunning()
			return true
		case task.StepAccessEnd:
			obj := j.Task.Segments[j.SegIdx-1].Object
			st := e.rs(j)
			if e.cfg.Mode == LockFree && e.cfg.Fault.PhantomCAS(j.Task.ID, j.Seq, j.SegIdx-1, st.casAttempt) {
				// An injected phantom writer wins the commit race: the
				// access retries without any real conflicting commit. The
				// entry stamp survives, so AccessTime keeps accumulating
				// through the retry like it does for real interference.
				st.casAttempt++
				j.SegIdx--
				j.SegDone = 0
				j.Retries++
				e.res1.FaultRetries++
				e.emit(e.runPos, trace.FaultRetry, j, obj)
				st.accessStart = e.runPos
				e.pushInternal(e.runPos.Add(j.TimeToBoundary(e.acc)))
				continue
			}
			if st.entrySeg == j.SegIdx-1 {
				e.res1.AccessTime += e.runPos.Sub(st.entryTime)
				e.res1.Accesses++
				st.entrySeg = -1
			}
			if e.cfg.Mode == LockFree {
				st.casAttempt = 0
				e.res.RecordCommit(obj, e.runPos)
				e.emit(e.runPos, trace.Commit, j, obj)
				e.pushInternal(e.runPos.Add(j.TimeToBoundary(e.acc)))
				continue
			}
			if err := e.res.Release(j, obj); err != nil {
				e.failWith(err)
				return false
			}
			e.res1.LockEvents++
			e.emit(e.runPos, trace.LockRelease, j, obj)
			e.stopRunning()
			return true
		case task.StepLock:
			obj, _ := j.PendingLock()
			granted, _, err := e.res.TryAcquire(j, obj)
			if err != nil {
				e.failWith(err)
				return false
			}
			e.res1.LockEvents++
			if granted {
				j.PassBoundary()
				e.emit(e.runPos, trace.LockAcquire, j, obj)
			} else {
				j.State = task.Blocked
				e.emit(e.runPos, trace.Block, j, obj)
			}
			e.stopRunning()
			return true
		case task.StepUnlock:
			obj := j.Task.Segments[j.SegIdx].Object
			if err := e.res.Release(j, obj); err != nil {
				e.failWith(err)
				return false
			}
			j.PassBoundary()
			e.res1.LockEvents++
			e.emit(e.runPos, trace.LockRelease, j, obj)
			e.stopRunning()
			return true
		case task.StepCompleted:
			j.State = task.Completed
			j.Completion = e.runPos
			e.res.ReleaseAll(j)
			e.res1.Completions++
			e.emit(e.runPos, trace.Complete, j, -1)
			e.removeLive(j)
			e.running = nil
			return true
		}
	}
}

func (e *Engine) stopRunning() {
	j := e.running
	if j == nil {
		return
	}
	if _, in := j.InAccess(); in && e.cfg.Mode == LockFree {
		st := e.rs(j)
		st.midAccess = true
		st.stopSeq = e.dispatchSeq
	}
	if j.State == task.Running {
		j.State = task.Ready
	}
	e.running = nil
}

func (e *Engine) beginAbort(j *task.Job) {
	if j.Done() || j.State == task.Aborting {
		return
	}
	if e.running == j {
		e.stopRunning()
	}
	j.State = task.Aborting
	j.AbortedAt = e.now
	e.emit(e.now, trace.AbortBegin, j, -1)
	e.res.Forget(j)
	start := rtime.MaxTime(e.busyUntil, e.now)
	e.busyUntil = start.Add(j.Task.AbortCost)
	e.res1.HandlerTime += j.Task.AbortCost
	e.push(event{at: e.busyUntil, kind: evAbortDone, job: j})
}

func (e *Engine) removeLive(j *task.Job) {
	for i, x := range e.live {
		if x == j {
			//rtlint:ignore noalloc copy-down within the same backing array; never grows
			e.live = append(e.live[:i], e.live[i+1:]...)
			return
		}
	}
}

func (e *Engine) reschedule() {
	e.stopRunning()
	e.internalGen++
	e.dispatchGen++
	w := sched.World{
		Now:       e.now,
		Jobs:      e.live,
		Res:       e.res,
		Acc:       e.acc,
		LockBased: e.cfg.Mode == LockBased,
	}
	d := e.cfg.Scheduler.Select(w)
	if d.Run != nil && e.cfg.Stoch.Active() {
		// Stochastic pick: with the plan's probability this pass
		// replaces the deterministic choice with a uniformly random
		// runnable job. Candidates are collected from the live set in
		// its deterministic order, so the drawn index is reproducible.
		cand := e.pickBuf[:0]
		for _, j := range e.live {
			if sched.Runnable(w, j) {
				//rtlint:ignore noalloc appends into the reused pick buffer; bounded by live jobs, steady capacity at warm-up
				cand = append(cand, j)
			}
		}
		if idx, ok := e.cfg.Stoch.Pick(e.cfg.StochCPU, e.now, len(cand)); ok {
			d.Run = cand[idx]
		}
		e.pickBuf = cand
	}
	e.res1.SchedInvocations++
	e.res1.SchedOps += d.Ops
	e.emitSched(e.now, trace.SchedPass, d.Ops)
	overhead := rtime.Duration(math.Round(float64(d.Ops) * e.cfg.OpCost))
	e.res1.Overhead += overhead
	if stall := e.cfg.Fault.Stall(e.res1.SchedInvocations); stall > 0 {
		// A transient CPU stall lands on this pass: the processor is
		// occupied for the extra ticks exactly like scheduler overhead,
		// but accounted separately.
		e.res1.FaultStalls++
		e.res1.StallTime += stall
		e.emitSched(e.now, trace.FaultStall, int64(stall))
		overhead += stall
	}
	e.res1.SchedAborts += int64(len(d.Abort))
	for _, v := range d.Abort {
		e.beginAbort(v)
	}
	start := rtime.MaxTime(e.busyUntil, e.now)
	e.busyUntil = start.Add(overhead)
	e.pendingDispatch = d.Run
	if e.busyUntil.After(e.now) {
		e.push(event{at: e.busyUntil, kind: evDispatch, gen: e.dispatchGen})
		return
	}
	e.dispatchNow(d.Run)
}

func (e *Engine) dispatchNow(j *task.Job) {
	if j == nil || j.Done() || j.State == task.Aborting {
		return
	}
	st := e.rs(j)
	if st.midAccess {
		st.midAccess = false
		retry := false
		if e.cfg.ConservativeRetry {
			retry = e.dispatchSeq > st.stopSeq
		} else if obj, in := j.InAccess(); in {
			retry = e.res.CommittedSince(obj, st.accessStart)
		}
		if retry {
			obj := -1
			if o, in := j.InAccess(); in {
				obj = o
			}
			j.RestartAccess()
			e.emit(e.now, trace.Retry, j, obj)
		}
	}
	if e.cfg.Mode == LockBased {
		if obj, ok := j.PendingLock(); ok {
			switch owner := e.res.Owner(obj); {
			case owner == nil:
				if _, _, err := e.res.TryAcquire(j, obj); err != nil {
					e.failWith(err)
					return
				}
				j.PassBoundary()
				e.res1.LockEvents++
				e.emit(e.now, trace.LockAcquire, j, obj)
			case owner == j:
				// Impossible by construction (the boundary is consumed on
				// grant), but harmless to tolerate.
				j.PassBoundary()
			default:
				//rtlint:ignore noalloc failure path: the run is aborting with a diagnostic
				e.failWith(fmt.Errorf("sim: scheduler %s dispatched %s, blocked at Lock(%d) held by %s",
					e.cfg.Scheduler.Name(), j.Name(), obj, owner.Name())) //rtlint:ignore noalloc failure path: the run is aborting with a diagnostic
				return
			}
		}
		if obj, ok := j.AtAccessStart(); ok {
			switch owner := e.res.Owner(obj); {
			case owner == j:
				// Holds it already (granted at the boundary event).
			case owner == nil:
				if _, _, err := e.res.TryAcquire(j, obj); err != nil {
					e.failWith(err)
					return
				}
				e.res1.LockEvents++
				e.emit(e.now, trace.LockAcquire, j, obj)
			default:
				//rtlint:ignore noalloc failure path: the run is aborting with a diagnostic
				e.failWith(fmt.Errorf("sim: scheduler %s dispatched %s, blocked on object %d held by %s",
					e.cfg.Scheduler.Name(), j.Name(), obj, owner.Name())) //rtlint:ignore noalloc failure path: the run is aborting with a diagnostic
				return
			}
		}
	} else if _, ok := j.AtAccessStart(); ok {
		// About to begin a lock-free access: stamp its start.
		st.accessStart = e.now
	}
	if prev := e.lastRun; prev != nil && prev != j && !prev.Done() && prev.State != task.Aborting {
		prev.Preempts++
		e.emit(e.now, trace.Preempt, prev, -1)
	}
	e.lastRun = j
	j.State = task.Running
	j.Disp++
	e.dispatchSeq++
	e.emit(e.now, trace.Dispatch, j, -1)
	e.running = j
	e.runPos = e.now
	if _, ok := j.AtAccessStart(); ok {
		// Covers jobs whose very first segment is an access (they never
		// cross an access boundary inside settle).
		e.stampEntry(j)
	}
	e.res1.CtxSwitches++
	e.pushInternal(e.now.Add(j.TimeToBoundary(e.acc)))
	if q := e.cfg.Stoch.Step(e.cfg.StochCPU, e.now); q > 0 {
		// Arm the stochastic quantum: a forced preemption unless a
		// newer scheduling pass (gen bump) supersedes this dispatch.
		e.push(event{at: e.now.Add(q), kind: evPreempt, gen: e.dispatchGen})
	}
}

// Run is a convenience: build an engine and run it.
func Run(cfg Config) (Result, error) {
	e, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	r := e.Run()
	return r, r.Err
}
