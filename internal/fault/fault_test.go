package fault

import (
	"reflect"
	"testing"

	"repro/internal/rtime"
	"repro/internal/uam"
)

func TestZeroPlanInactive(t *testing.T) {
	var nilPlan *Plan
	plans := []*Plan{nilPlan, {}, {Seed: 99}}
	for _, p := range plans {
		if p.Active() {
			t.Fatalf("plan %+v should be inactive", p)
		}
		tr := uam.Trace{10, 20, 30}
		out, mask := p.PerturbArrivals(1, tr, 1000)
		if len(tr) > 0 && (&out[0] != &tr[0] || mask != nil) {
			t.Fatalf("inactive plan must return the input trace unchanged")
		}
		if d := p.Overrun(1, 2, 100); d != 0 {
			t.Fatalf("inactive plan injected overrun %v", d)
		}
		if p.PhantomCAS(1, 2, 3, 0) {
			t.Fatalf("inactive plan injected phantom CAS")
		}
		if d := p.Stall(5); d != 0 {
			t.Fatalf("inactive plan injected stall %v", d)
		}
		if s := (uam.Spec{L: 1, A: 2, W: 100}); p.EffectiveSpec(s) != s {
			t.Fatalf("inactive plan inflated spec")
		}
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Plan { p := Heavy(); p.Seed = 42; return p }
	a, b := mk(), mk()
	tr := make(uam.Trace, 50)
	for i := range tr {
		tr[i] = rtime.Time(i * 97)
	}
	ta, ma := a.PerturbArrivals(3, tr, 10000)
	tb, mb := b.PerturbArrivals(3, tr, 10000)
	if !reflect.DeepEqual(ta, tb) || !reflect.DeepEqual(ma, mb) {
		t.Fatalf("same plan+seed gave different perturbations")
	}
	for seq := 0; seq < 20; seq++ {
		if a.Overrun(1, seq, 300) != b.Overrun(1, seq, 300) {
			t.Fatalf("overrun decisions diverged at seq %d", seq)
		}
		for att := 0; att < 6; att++ {
			if a.PhantomCAS(1, seq, 2, att) != b.PhantomCAS(1, seq, 2, att) {
				t.Fatalf("CAS decisions diverged")
			}
		}
	}
	for pass := int64(0); pass < 100; pass++ {
		if a.Stall(pass) != b.Stall(pass) {
			t.Fatalf("stall decisions diverged at pass %d", pass)
		}
	}
	// A different seed must change at least one decision over a wide probe.
	c := mk()
	c.Seed = 43
	same := true
	for seq := 0; seq < 100 && same; seq++ {
		if a.Overrun(1, seq, 300) != c.Overrun(1, seq, 300) {
			same = false
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 made identical overrun decisions across 100 jobs")
	}
}

func TestPerturbedTraceSatisfiesEffectiveSpec(t *testing.T) {
	spec := uam.Spec{L: 1, A: 3, W: 500}
	for seed := int64(0); seed < 20; seed++ {
		p := Heavy()
		p.Seed = seed
		horizon := rtime.Time(20000)
		g, err := uam.NewGenerator(spec, seed)
		if err != nil {
			t.Fatalf("NewGenerator: %v", err)
		}
		tr := g.Generate(uam.KindBursty, horizon)
		if err := uam.CheckTrace(spec, tr, horizon); err != nil {
			t.Fatalf("generator broke its own spec: %v", err)
		}
		out, mask := p.PerturbArrivals(7, tr, horizon)
		if len(mask) != len(out) {
			t.Fatalf("mask length %d != trace length %d", len(mask), len(out))
		}
		eff := p.EffectiveSpec(spec)
		if err := uam.CheckTrace(eff, out, horizon); err != nil {
			t.Fatalf("seed %d: perturbed trace violates inflated spec %+v: %v", seed, eff, err)
		}
		for i := 1; i < len(out); i++ {
			if out[i] < out[i-1] {
				t.Fatalf("perturbed trace not sorted at %d", i)
			}
		}
		for _, at := range out {
			if at < 0 || at >= horizon {
				t.Fatalf("perturbed arrival %v outside [0,%v)", at, horizon)
			}
		}
	}
}

func TestOverrunBounds(t *testing.T) {
	p := Heavy()
	p.Seed = 7
	u := rtime.Duration(400)
	hits := 0
	for seq := 0; seq < 200; seq++ {
		d := p.Overrun(2, seq, u)
		if d < 0 {
			t.Fatalf("negative overrun")
		}
		if d > 0 {
			hits++
			if maxd := 1 + rtime.Duration(p.OverrunFrac*float64(u)); d > maxd {
				t.Fatalf("overrun %v exceeds cap %v", d, maxd)
			}
		}
	}
	if hits == 0 {
		t.Fatalf("heavy plan never injected an overrun over 200 jobs")
	}
}

func TestPhantomCASCapped(t *testing.T) {
	p := &Plan{Seed: 1, CASProb: 1, CASMax: 3}
	if !p.Active() {
		t.Fatalf("CAS-only plan should be active")
	}
	for att := 0; att < 3; att++ {
		if !p.PhantomCAS(0, 0, 0, att) {
			t.Fatalf("probability-1 CAS did not fire at attempt %d", att)
		}
	}
	if p.PhantomCAS(0, 0, 0, 3) {
		t.Fatalf("phantom CAS fired past CASMax")
	}
}

func TestScale(t *testing.T) {
	p := Heavy()
	off := p.Scale(0)
	if off.Active() {
		t.Fatalf("Scale(0) should be inactive")
	}
	up := p.Scale(100)
	if up.CASProb != 1 || up.BurstProb != 1 {
		t.Fatalf("Scale must clamp probabilities at 1")
	}
	if up.BurstSize != p.BurstSize || up.StallDur != p.StallDur {
		t.Fatalf("Scale must not touch magnitudes")
	}
	if (*Plan)(nil).Scale(2) != nil {
		t.Fatalf("Scale on nil must return nil")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("off")
	if err != nil || p.Active() {
		t.Fatalf("ParsePlan(off) = %+v, %v", p, err)
	}
	p, err = ParsePlan("heavy,seed=7,intensity=0.5")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Seed != 7 {
		t.Fatalf("seed not applied: %+v", p)
	}
	want := Heavy().Scale(0.5)
	want.Seed = 7
	if *p != *want {
		t.Fatalf("got %+v want %+v", p, want)
	}
	p, err = ParsePlan("casp=0.5,casmax=2")
	if err != nil || !p.Active() || p.CASProb != 0.5 || p.CASMax != 2 {
		t.Fatalf("kv-only plan: %+v, %v", p, err)
	}
	for _, bad := range []string{"nope", "seed=x", "burstp=-1", "light,heavy", "foo=1"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan(%q) should fail", bad)
		}
	}
}

func TestExceedsModel(t *testing.T) {
	if (&Plan{JitterProb: 0.5, JitterMax: 100}).ExceedsRetryModel() {
		t.Fatalf("jitter alone stays inside the (inflated) retry model")
	}
	if !(&Plan{CASProb: 0.1, CASMax: 1}).ExceedsRetryModel() {
		t.Fatalf("phantom CAS must exceed the retry model")
	}
	if !(&Plan{StallProb: 0.1, StallDur: 10}).ExceedsSojournModel() {
		t.Fatalf("stalls must exceed the sojourn model")
	}
	if (&Plan{BurstProb: 0.5, BurstSize: 1}).ExceedsSojournModel() {
		t.Fatalf("bursts alone stay inside the sojourn model (bounds are recomputed)")
	}
}
