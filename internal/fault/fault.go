// Package fault is the simulator's deterministic fault-injection
// engine. A Plan describes an adversarial environment — arrival bursts
// and jitter that violate the declared UAM vector, execution-time
// overruns beyond c_i, phantom-writer CAS interference on lock-free
// objects, and transient CPU stalls — and the engines (sim, multi,
// gsim) consult it at well-defined hook points.
//
// Determinism is the design center: every injection decision is a pure
// splitmix64 hash of (plan seed, injector stream, task id, job seq,
// segment, attempt), never a draw from a shared sequential RNG. Two
// consequences follow. First, a run with a given plan is byte-
// reproducible regardless of worker count or engine interleaving — the
// experiment layer's index-order merge keeps its "identical for any
// -jobs" guarantee. Second, the SAME decisions fire for the same job in
// every engine: the partitioned engine perturbs task 3's arrivals
// exactly as the uniprocessor engine does, because neither the CPU
// assignment nor the engine's own seed enters the hash.
//
// A nil *Plan (or a zero-intensity one) is everywhere a no-op: every
// hook returns "no fault" without emitting events or touching state, so
// fault-free runs reproduce today's output bit for bit.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rtime"
	"repro/internal/uam"
)

// ErrPlan reports an unparsable or invalid plan specification.
var ErrPlan = errors.New("fault: invalid plan")

// Plan is a seeded fault-injection plan. The zero value is inactive.
// Probabilities are per decision point: per natural arrival for jitter
// and bursts, per job for overruns, per commit attempt for phantom CAS,
// per scheduler pass for stalls.
type Plan struct {
	// Seed keys every hash; two plans with different seeds make
	// independent decisions even when their intensities match.
	Seed int64

	// Arrival injectors (violate the declared ⟨l,a,W⟩ vector).
	BurstProb  float64        // chance a natural arrival brings extra copies
	BurstSize  int            // injected copies per burst
	JitterProb float64        // chance a natural arrival is delayed
	JitterMax  rtime.Duration // maximum forward shift

	// Execution-time overrun (violates the declared c_i).
	OverrunProb float64
	OverrunFrac float64 // extra demand as a fraction of u_i

	// Phantom-writer CAS interference: a commit attempt on a lock-free
	// object fails as if an invisible writer won the race, forcing an
	// extra retry beyond what real interference causes.
	CASProb float64
	CASMax  int // cap on consecutive phantom failures per access

	// Transient CPU stalls charged at scheduler passes.
	StallProb float64
	StallDur  rtime.Duration
}

// Active reports whether the plan can inject anything. Nil-safe; every
// hook below short-circuits through it, which is what makes a nil or
// zero-intensity plan reproduce fault-free output bit for bit.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return (p.BurstProb > 0 && p.BurstSize > 0) ||
		(p.JitterProb > 0 && p.JitterMax > 0) ||
		(p.OverrunProb > 0 && p.OverrunFrac > 0) ||
		(p.CASProb > 0 && p.CASMax > 0) ||
		(p.StallProb > 0 && p.StallDur > 0)
}

// Injector hash streams. Each injector draws from its own stream so
// that e.g. enabling jitter never perturbs burst decisions.
const (
	streamJitter uint64 = 1 + iota
	streamJitterAmt
	streamBurst
	streamOverrun
	streamOverrunAmt
	streamCAS
	streamStall
)

// splitmix64 is the finalizer of Vigna's SplitMix64; a single pass is
// a strong enough mixer for decision hashing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash folds the seed, a stream tag, and the decision coordinates.
func (p *Plan) hash(stream uint64, ids ...int64) uint64 {
	h := splitmix64(uint64(p.Seed) ^ stream*0x9e3779b97f4a7c15)
	for _, id := range ids {
		h = splitmix64(h ^ uint64(id))
	}
	return h
}

// unit maps a hash to [0,1) with 53 bits of precision.
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// hit reports whether the decision at the hashed point fires with
// probability prob.
func (p *Plan) hit(prob float64, stream uint64, ids ...int64) bool {
	if prob <= 0 {
		return false
	}
	return unit(p.hash(stream, ids...)) < prob
}

// Scale returns a copy with every probability multiplied by x (clamped
// to [0,1]); magnitudes (burst size, jitter span, overrun fraction,
// stall length) are left alone so an intensity sweep varies only how
// OFTEN faults fire. Scale(0) is inactive; Scale on nil returns nil.
func (p *Plan) Scale(x float64) *Plan {
	if p == nil {
		return nil
	}
	clamp := func(v float64) float64 {
		v *= x
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		return v
	}
	cp := *p
	cp.BurstProb = clamp(p.BurstProb)
	cp.JitterProb = clamp(p.JitterProb)
	cp.OverrunProb = clamp(p.OverrunProb)
	cp.CASProb = clamp(p.CASProb)
	cp.StallProb = clamp(p.StallProb)
	return &cp
}

// PerturbArrivals applies jitter and burst injection to one task's
// arrival trace. Natural arrival k may be delayed by up to JitterMax
// (forward only — the effective release the schedulers see) and may
// spawn BurstSize injected copies at its perturbed instant. The result
// is re-sorted and clamped inside [0, horizon); injected[i] marks the
// i-th returned arrival as perturbed (delayed or injected). When no
// arrival injector is active the input slice is returned unchanged
// (same backing array) with a nil mask.
func (p *Plan) PerturbArrivals(taskID int, tr uam.Trace, horizon rtime.Time) (uam.Trace, []bool) {
	if p == nil ||
		((p.JitterProb <= 0 || p.JitterMax <= 0) && (p.BurstProb <= 0 || p.BurstSize <= 0)) {
		return tr, nil
	}
	type arr struct {
		at  rtime.Time
		inj bool
	}
	out := make([]arr, 0, len(tr))
	for k, at := range tr {
		a := arr{at: at}
		if p.JitterMax > 0 && p.hit(p.JitterProb, streamJitter, int64(taskID), int64(k)) {
			d := 1 + rtime.Duration(p.hash(streamJitterAmt, int64(taskID), int64(k))%uint64(p.JitterMax))
			a.at = a.at.Add(d)
			if last := horizon - 1; a.at > last {
				a.at = last
			}
			a.inj = true
		}
		out = append(out, a)
		if p.BurstSize > 0 && p.hit(p.BurstProb, streamBurst, int64(taskID), int64(k)) {
			for n := 0; n < p.BurstSize; n++ {
				out = append(out, arr{at: a.at, inj: true})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].at < out[j].at })
	res := make(uam.Trace, len(out))
	mask := make([]bool, len(out))
	for i, a := range out {
		res[i], mask[i] = a.at, a.inj
	}
	return res, mask
}

// Overrun returns the extra execution demand injected into job (taskID,
// seq) whose declared compute time is u, or 0. The magnitude is drawn
// from (0, OverrunFrac·u], at least one tick when the job is hit.
func (p *Plan) Overrun(taskID, seq int, u rtime.Duration) rtime.Duration {
	if p == nil || p.OverrunFrac <= 0 || u <= 0 ||
		!p.hit(p.OverrunProb, streamOverrun, int64(taskID), int64(seq)) {
		return 0
	}
	maxd := rtime.Duration(p.OverrunFrac * float64(u))
	if maxd < 1 {
		maxd = 1
	}
	return 1 + rtime.Duration(p.hash(streamOverrunAmt, int64(taskID), int64(seq))%uint64(maxd))
}

// PhantomCAS reports whether the attempt-th commit of job (taskID, seq)
// on segment segIdx is defeated by a phantom writer. attempt counts the
// phantom failures already suffered on this access; it is capped at
// CASMax so an access cannot livelock.
func (p *Plan) PhantomCAS(taskID, seq, segIdx, attempt int) bool {
	if p == nil || p.CASMax <= 0 || attempt >= p.CASMax {
		return false
	}
	return p.hit(p.CASProb, streamCAS, int64(taskID), int64(seq), int64(segIdx), int64(attempt))
}

// Stall returns the transient CPU stall charged at the pass-th
// scheduler invocation, or 0. The engine adds it to the pass's
// overhead, exactly like a burst of cache misses or an SMI would.
func (p *Plan) Stall(pass int64) rtime.Duration {
	if p == nil || p.StallDur <= 0 || !p.hit(p.StallProb, streamStall, pass) {
		return 0
	}
	return p.StallDur
}

// EffectiveSpec returns the loosest UAM vector a task's perturbed
// arrival trace still obeys (uam.Spec.Inflated): the spec Theorem 2 is
// re-checked against when the plan violates the declared model. Without
// arrival injectors the declared spec is returned unchanged.
func (p *Plan) EffectiveSpec(s uam.Spec) uam.Spec {
	if p == nil {
		return s
	}
	var jitter rtime.Duration
	if p.JitterProb > 0 {
		jitter = p.JitterMax
	}
	extra := 0
	if p.BurstProb > 0 {
		extra = p.BurstSize
	}
	return s.Inflated(jitter, extra)
}

// ExceedsRetryModel reports whether the plan injects interference
// outside Theorem 2's model even after arrival-spec inflation: phantom
// CAS failures are not caused by any job's commit, so the retry bound
// does not cover them and its violations are expected.
func (p *Plan) ExceedsRetryModel() bool {
	return p != nil && p.CASProb > 0 && p.CASMax > 0
}

// ExceedsSojournModel reports whether the plan stretches executions
// beyond what Theorem 3's demand terms account for — overruns, stalls,
// and phantom retries all add demand the sojourn bound cannot see.
func (p *Plan) ExceedsSojournModel() bool {
	if p == nil {
		return false
	}
	return (p.OverrunProb > 0 && p.OverrunFrac > 0) ||
		(p.StallProb > 0 && p.StallDur > 0) ||
		p.ExceedsRetryModel()
}

// Presets. Light models a mildly hostile environment; Heavy a saturated
// one where every injector fires often. Both leave Seed 0 — callers
// reseed via ParsePlan's seed key or rtsim's -fault-seed.
func Light() *Plan {
	return &Plan{
		BurstProb: 0.05, BurstSize: 1,
		JitterProb: 0.10, JitterMax: 200 * rtime.Microsecond,
		OverrunProb: 0.05, OverrunFrac: 0.25,
		CASProb: 0.05, CASMax: 2,
		StallProb: 0.02, StallDur: 50 * rtime.Microsecond,
	}
}

func Heavy() *Plan {
	return &Plan{
		BurstProb: 0.20, BurstSize: 2,
		JitterProb: 0.30, JitterMax: 500 * rtime.Microsecond,
		OverrunProb: 0.20, OverrunFrac: 0.50,
		CASProb: 0.25, CASMax: 4,
		StallProb: 0.10, StallDur: 200 * rtime.Microsecond,
	}
}

// ParsePlan builds a plan from a specification string: the presets
// "off", "light", and "heavy", optionally followed by comma-separated
// key=value overrides, or overrides alone (starting from an inactive
// plan). Keys: seed, burstp, burstn, jitterp, jitterus, overrunp,
// overrunfrac, casp, casmax, stallp, stallus, intensity (a final
// Scale factor). Example: "heavy,seed=7,intensity=0.5".
func ParsePlan(s string) (*Plan, error) {
	p := &Plan{}
	intensity := 1.0
	parts := strings.Split(s, ",")
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "=") {
			if i != 0 {
				return nil, fmt.Errorf("%w: preset %q must come first in %q", ErrPlan, part, s)
			}
			switch part {
			case "off":
				p = &Plan{}
			case "light":
				p = Light()
			case "heavy":
				p = Heavy()
			default:
				return nil, fmt.Errorf("%w: unknown preset %q (want off, light, or heavy)", ErrPlan, part)
			}
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		pf := func() (float64, error) {
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("%w: %s=%q is not a non-negative number", ErrPlan, key, val)
			}
			return v, nil
		}
		pi := func() (int64, error) {
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("%w: %s=%q is not a non-negative integer", ErrPlan, key, val)
			}
			return v, nil
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("%w: seed=%q is not an integer", ErrPlan, val)
			}
		case "burstp":
			p.BurstProb, err = pf()
		case "burstn":
			var n int64
			n, err = pi()
			p.BurstSize = int(n)
		case "jitterp":
			p.JitterProb, err = pf()
		case "jitterus":
			var n int64
			n, err = pi()
			p.JitterMax = rtime.Duration(n)
		case "overrunp":
			p.OverrunProb, err = pf()
		case "overrunfrac":
			p.OverrunFrac, err = pf()
		case "casp":
			p.CASProb, err = pf()
		case "casmax":
			var n int64
			n, err = pi()
			p.CASMax = int(n)
		case "stallp":
			p.StallProb, err = pf()
		case "stallus":
			var n int64
			n, err = pi()
			p.StallDur = rtime.Duration(n)
		case "intensity":
			intensity, err = pf()
		default:
			return nil, fmt.Errorf("%w: unknown key %q in %q", ErrPlan, key, s)
		}
		if err != nil {
			return nil, err
		}
	}
	//rtlint:ignore floatcmp intensity is a parsed literal compared to its default; Scale(1.0) is the identity so the branch is a pure fast path
	if intensity != 1.0 {
		seed := p.Seed
		p = p.Scale(intensity)
		p.Seed = seed
	}
	return p, nil
}
