package fault_test

import (
	"testing"

	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/metrics/series"
	"repro/internal/multi"
	"repro/internal/resource"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/trace/span"
	"repro/internal/uam"
)

// planFor derives a distinct, reproducible plan from a test seed by
// spreading the seed's bits over every injector: the property tests
// range over plans that mix arrival faults, overruns, phantom CAS, and
// stalls in different proportions.
func planFor(seed int64) *fault.Plan {
	// Spread the seed over all 64 bits first so seeds with empty low
	// bits still produce live injectors.
	h := uint64(seed) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	f := func(shift uint) float64 { return float64((h>>shift)&7) / 7 }
	return &fault.Plan{
		Seed:        seed,
		BurstProb:   0.1 + 0.3*f(0),
		BurstSize:   1 + int(h&1),
		JitterProb:  0.1 + 0.4*f(3),
		JitterMax:   rtime.Duration(50 + (h>>6)&255),
		OverrunProb: 0.3 * f(9),
		OverrunFrac: 0.25 + 0.5*f(12),
		CASProb:     0.3 * f(15),
		CASMax:      1 + int((h>>18)&3),
		StallProb:   0.2 * f(20),
		StallDur:    rtime.Duration(20 + (h>>23)&127),
	}
}

// TestPropertySpanStreamsWellFormed is the ISSUE's first property: for
// any seeded fault plan, the uniprocessor and partitioned engines —
// running the admission-control RUA so sheds, injected retries, and
// overruns all appear — must emit event streams that fold cleanly:
// span.Build and series.FromEvents never report a malformed trace.
func TestPropertySpanStreamsWellFormed(t *testing.T) {
	tasks, err := experiment.TraceWorkloadSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	horizon := rtime.Time(30 * int64(tasks[len(tasks)-1].CriticalTime()))
	seeds := []int64{1, 2, 3, 0x5bd1e995, 0x9e3779b9, 1 << 40, -7}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		plan := planFor(seed)
		if !plan.Active() {
			t.Fatalf("seed %d produced an inactive plan; property needs live injectors", seed)
		}
		for _, engine := range []string{"uni", "multi"} {
			rec := trace.NewRecorder(0)
			var runErr error
			switch engine {
			case "uni":
				_, runErr = sim.Run(sim.Config{
					Tasks:     task.CloneAll(tasks),
					Scheduler: rua.NewLockFree().WithDegradation(),
					Mode:      sim.LockFree,
					R:         experiment.DefaultR, S: experiment.DefaultS,
					OpCost:  experiment.DefaultOpCost,
					Horizon: horizon, ArrivalKind: uam.KindBursty, Seed: seed,
					ConservativeRetry: true, Fault: plan, Observer: rec.Record,
				})
			case "multi":
				_, runErr = multi.Run(multi.Config{
					CPUs: 2, Tasks: task.CloneAll(tasks),
					NewScheduler: func() sched.Scheduler { return rua.NewLockFree().WithDegradation() },
					Mode:         sim.LockFree,
					R:            experiment.DefaultR, S: experiment.DefaultS,
					OpCost:  experiment.DefaultOpCost,
					Horizon: horizon, ArrivalKind: uam.KindBursty, Seed: seed,
					ConservativeRetry: true, Fault: plan, Observer: rec.Record,
				})
			}
			if runErr != nil {
				t.Fatalf("seed %d %s: run: %v", seed, engine, runErr)
			}
			events := rec.Events()
			if _, err := span.Build(events, horizon); err != nil {
				t.Errorf("seed %d %s: span.Build rejected the stream: %v", seed, engine, err)
			}
			cpus := 1
			if engine == "multi" {
				cpus = 2
			}
			if _, err := series.FromEvents(events, horizon, series.Config{
				Window: series.WindowFor(horizon, 0), CPUs: cpus,
			}); err != nil {
				t.Errorf("seed %d %s: series.FromEvents rejected the stream: %v", seed, engine, err)
			}
		}
	}
}

// TestPropertyShedOnlyDoomed is the ISSUE's second property: across
// randomized worlds, admission-control RUA never sheds a job that could
// still meet its critical time running alone from now on — shedding is
// reserved for jobs that are already doomed.
func TestPropertyShedOnlyDoomed(t *testing.T) {
	tasks, err := experiment.TraceWorkloadSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 40; seed++ {
		jobs := make([]*task.Job, len(tasks))
		for i, tk := range tasks {
			// Stagger releases by seed-derived offsets so, as Now
			// advances below, some jobs are comfortably feasible and
			// others are past saving.
			rel := rtime.Time((seed*31 + int64(i)*97) % int64(tk.CriticalTime()))
			jobs[i] = task.NewJob(tk, 0, rel)
		}
		// Sweep Now across the spread of critical times to hit both
		// regimes in every world.
		maxC := tasks[len(tasks)-1].CriticalTime()
		for _, now := range []rtime.Time{0, rtime.Time(int64(maxC) / 2), rtime.Time(int64(maxC) * 2)} {
			w := sched.World{Now: now, Jobs: jobs, Res: resource.NewMap(), Acc: experiment.DefaultS}
			_, aborts, _ := rua.NewLockFree().WithDegradation().SelectTopKAbort(w, len(jobs))
			shed := map[*task.Job]bool{}
			for _, j := range aborts {
				shed[j] = true
				if !now.Add(j.Remaining(w.Acc)).After(j.AbsoluteCriticalTime()) {
					t.Fatalf("seed %d now %d: shed J[%d,%d] which could still finish by %d (remaining %d)",
						seed, now, j.Task.ID, j.Seq, j.AbsoluteCriticalTime(), j.Remaining(w.Acc))
				}
			}
			for _, j := range jobs {
				feasibleAlone := !now.Add(j.Remaining(w.Acc)).After(j.AbsoluteCriticalTime())
				if feasibleAlone && shed[j] {
					t.Fatalf("seed %d now %d: feasible job J[%d,%d] was shed", seed, now, j.Task.ID, j.Seq)
				}
			}
		}
	}
}
