package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// noallocDirective marks a function whose body — and everything
// statically reachable from it — must be free of allocating constructs.
const noallocDirective = "//rtlint:noalloc"

// Noalloc turns the repo's benchmark-only zero-alloc claims into a
// static gate. A function annotated
//
//	//rtlint:noalloc [note]
//
// in its doc comment is verified transitively: its body, the bodies of
// every same-package function it statically calls, and (via object
// facts exported by this analyzer on dependency packages) every in-root
// function across package boundaries must contain no allocating
// construct — make, new, append (backing-array growth), closure
// literals, method values, go statements, map writes, string
// concatenation, string/[]byte conversions, or interface boxing of
// non-pointer-shaped values. Calls into the standard library must be on
// the known-allocation-free allowlist (math, math/bits, sync/atomic,
// the in-place sort/search entry points); anything else is flagged as
// not provably allocation-free.
//
// Two deliberate soundness trade-offs, both documented in DESIGN.md §5g:
// dynamic calls (func values, interface methods) are trusted — the
// engines' scheduler/observer seams are interface-shaped, and their
// concrete implementations carry their own annotations — and
// allocations whose only consumer is a panic argument are exempt, since
// a panicking path is never the steady state. Justified exceptions
// (one-time lazy init, amortized growth of a reused arena) carry a
// //rtlint:ignore noalloc <reason> on the allocating line, which both
// silences the finding and excludes the site from the facts importers
// see.
const noallocName = "noalloc"

var Noalloc = &analysis.Analyzer{
	Name:     noallocName,
	Doc:      "verifies //rtlint:noalloc functions are transitively free of allocating constructs via the call graph",
	Requires: []*analysis.Analyzer{Callgraph},
}

// Run is attached in init: runNoalloc reaches the analyzer registry
// through the ignore-directive parser, and a direct struct-literal
// reference would be an initialization cycle.
func init() { Noalloc.Run = runNoalloc }

// allocFact is exported on every function object the analyzer visits.
// Why == "" means proven allocation-free; otherwise Why names the root
// cause ("make at sim.go:339"). Absence of the fact on a callee means
// the callee was never analyzed — i.e. it lives outside the load root —
// so importers fall back to the stdlib allowlist.
type allocFact struct {
	Why string
}

func (*allocFact) AFact() {}

// naSite is one reportable violation inside a function body.
type naSite struct {
	pos token.Pos
	msg string
}

type naComputer struct {
	pass    *analysis.Pass
	cg      *CallGraph
	parents map[ast.Node]ast.Node
	ignored map[string]map[int]bool // file → lines covered by //rtlint:ignore noalloc

	state map[*types.Func]int // 0 unvisited, 1 on stack, 2 done
	why   map[*types.Func]string

	// panicCalls holds the Lparen of every call that occurs inside a
	// panic(...) argument; such calls are failure-path-only and exempt
	// from the call-edge walk, like direct sites under panic are.
	panicCalls map[token.Pos]bool

	// direct and badCalls cache, per function, the sites the diagnostic
	// walk over annotated roots reports: direct allocating constructs,
	// and calls leaving the package whose target allocates or cannot be
	// proven clean. In-package allocating callees are deliberately not
	// recorded here — their own direct sites are reported instead, at
	// the true location.
	direct   map[*types.Func][]naSite
	badCalls map[*types.Func][]naSite
}

func runNoalloc(pass *analysis.Pass) (any, error) {
	cg := pass.ResultOf[Callgraph].(*CallGraph)
	c := &naComputer{
		pass:       pass,
		cg:         cg,
		parents:    parentMap(pass.Files),
		ignored:    ignoredLines(pass.Fset, pass.Files, noallocName),
		state:      map[*types.Func]int{},
		why:        map[*types.Func]string{},
		panicCalls: map[token.Pos]bool{},
		direct:     map[*types.Func][]naSite{},
		badCalls:   map[*types.Func][]naSite{},
	}

	// Compute and export the allocation fact for every declared
	// function, whether or not anything is annotated here: importing
	// packages need the facts.
	fns := cg.SortedFuncs()
	for _, fn := range fns {
		c.compute(fn)
	}
	for _, fn := range fns {
		pass.ExportObjectFact(fn, &allocFact{Why: c.why[fn]})
	}

	// Diagnostics: walk the in-package reachable set of every annotated
	// root and report each offending site once, attributed to the
	// lexicographically smallest root that reaches it.
	roots := map[*types.Func]bool{}
	for _, fn := range fns {
		if hasNoallocDirective(cg.Funcs[fn].Decl) {
			roots[fn] = true
		}
	}
	siteRoot := map[naSite]string{} // site → smallest annotated root name
	for _, root := range fns {
		if !roots[root] {
			continue
		}
		seen := map[*types.Func]bool{}
		c.visit(root, seen)
		for fn := range seen {
			for _, s := range append(append([]naSite(nil), c.direct[fn]...), c.badCalls[fn]...) {
				name := root.Name()
				if prev, ok := siteRoot[s]; ok && prev <= name {
					continue
				}
				siteRoot[s] = name
			}
		}
	}
	sites := make([]naSite, 0, len(siteRoot))
	for s := range siteRoot {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	for _, s := range sites {
		pass.Reportf(s.pos, "%s; not allowed in the //rtlint:noalloc path of %s", s.msg, siteRoot[s])
	}
	return nil, nil
}

// visit collects the in-package functions statically reachable from fn.
func (c *naComputer) visit(fn *types.Func, seen map[*types.Func]bool) {
	if seen[fn] {
		return
	}
	seen[fn] = true
	info := c.cg.Funcs[fn]
	if info == nil {
		return
	}
	for _, call := range info.Calls {
		if c.panicCalls[call.Pos] {
			continue
		}
		if _, ok := c.cg.Funcs[call.Callee]; ok {
			c.visit(call.Callee, seen)
		}
	}
}

// compute memoizes the allocation verdict for one declared function:
// why == "" when allocation-free, else the root cause. Mutual recursion
// is resolved optimistically — an on-stack callee contributes nothing,
// which is the least fixed point: any real allocation on the cycle is
// found from that member's own traversal.
func (c *naComputer) compute(fn *types.Func) string {
	switch c.state[fn] {
	case 1:
		return ""
	case 2:
		return c.why[fn]
	}
	c.state[fn] = 1
	info := c.cg.Funcs[fn]
	why := ""
	if info != nil {
		direct := c.allocSites(info.Decl)
		c.direct[fn] = direct
		if len(direct) > 0 {
			why = direct[0].msg
		}
		for _, call := range info.Calls {
			if c.panicCalls[call.Pos] {
				continue
			}
			bad, isCallSite := c.calleeWhy(call)
			if bad == "" {
				continue
			}
			if isCallSite {
				site := naSite{pos: call.Pos, msg: bad}
				if !c.ignoredAt(call.Pos) {
					c.badCalls[fn] = append(c.badCalls[fn], site)
					if why == "" {
						why = bad
					}
				}
			} else if why == "" {
				why = bad
			}
		}
	}
	c.state[fn] = 2
	c.why[fn] = why
	return why
}

// calleeWhy resolves one static call edge: "" when the target is proven
// or trusted allocation-free. isCallSite reports whether the finding
// belongs at this call site (out-of-package targets) rather than at the
// target's own sites (in-package targets, reported at the source).
func (c *naComputer) calleeWhy(call Call) (why string, isCallSite bool) {
	callee := call.Callee
	if _, inPkg := c.cg.Funcs[callee]; inPkg {
		return c.compute(callee), false
	}
	var fact allocFact
	if c.pass.ImportObjectFact(callee, &fact) {
		if fact.Why == "" {
			return "", true
		}
		return fmt.Sprintf("calls %s, which allocates (%s)", calleeName(callee), fact.Why), true
	}
	if stdlibNoalloc(callee) {
		return "", true
	}
	return fmt.Sprintf("calls %s, which cannot be proven allocation-free", calleeName(callee)), true
}

// calleeName renders a callee as pkg.Func or pkg.(Recv).Method.
func calleeName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := types.Unalias(t).(*types.Named); ok {
			return pkg + "(" + n.Obj().Name() + ")." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// stdlibNoalloc is the allowlist of standard-library call targets known
// not to allocate: pure math, atomics, and the in-place sort/search
// entry points. Everything else outside the load root is flagged.
func stdlibNoalloc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return true // error.Error and friends from the universe scope
	}
	switch pkg.Path() {
	case "math", "math/bits", "sync/atomic":
		return true
	case "sort":
		switch fn.Name() {
		case "Sort", "Stable", "Search", "SearchInts", "SearchFloat64s", "SearchStrings", "IsSorted":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc", "IsSorted", "IsSortedFunc",
			"BinarySearch", "BinarySearchFunc", "Index", "IndexFunc",
			"Contains", "ContainsFunc", "Min", "MinFunc", "Max", "MaxFunc", "Reverse":
			return true
		}
	case "errors":
		return fn.Name() == "Is"
	}
	return false
}

// ignoredAt reports whether pos sits on a line covered by a well-formed
// //rtlint:ignore noalloc directive. Such sites are excluded from facts
// and diagnostics alike: the justification silences the finding here
// and keeps it from resurfacing at every annotated caller upstream.
func (c *naComputer) ignoredAt(pos token.Pos) bool {
	p := c.pass.Fset.Position(pos)
	return c.ignored[p.Filename][p.Line]
}

// shortPos renders pos as base-filename:line for fact messages, so
// cross-package diagnostics stay readable and machine-independent.
func (c *naComputer) shortPos(pos token.Pos) string {
	p := c.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// allocSites walks one function body and collects its direct allocating
// constructs, in source order, skipping ignored lines and panic-argument
// subtrees.
func (c *naComputer) allocSites(decl *ast.FuncDecl) []naSite {
	var out []naSite
	add := func(pos token.Pos, format string, args ...any) {
		if c.ignoredAt(pos) {
			return
		}
		msg := fmt.Sprintf(format, args...)
		out = append(out, naSite{pos: pos, msg: fmt.Sprintf("%s at %s", msg, c.shortPos(pos))})
	}
	info := c.pass.TypesInfo
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(info, x) {
				// Allocations feeding a panic are not steady state; mark
				// the nested calls so the call-edge walk skips them too.
				ast.Inspect(x, func(m ast.Node) bool {
					if inner, ok := m.(*ast.CallExpr); ok && inner != x {
						c.panicCalls[inner.Lparen] = true
					}
					return true
				})
				return false
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						add(x.Lparen, "make allocates")
					case "new":
						add(x.Lparen, "new allocates")
					case "append":
						add(x.Lparen, "append may grow its backing array")
					}
					return true
				}
			}
			c.checkConversion(x, add)
			c.checkCallBoxing(x, add)
		case *ast.FuncLit:
			add(x.Pos(), "closure literal allocates")
		case *ast.GoStmt:
			add(x.Pos(), "go statement allocates a goroutine")
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(info, ix) {
					add(ix.Lbrack, "map write may allocate on growth")
				}
				// Pairwise interface boxing: v itf = concrete.
				if len(x.Lhs) == len(x.Rhs) {
					c.checkBoxing(typeOf(info, lhs), x.Rhs[i], add)
				}
			}
		case *ast.ValueSpec:
			// var x Iface = concrete
			if x.Type != nil {
				dst := typeOf(info, x.Type)
				for _, v := range x.Values {
					c.checkBoxing(dst, v, add)
				}
			}
		case *ast.ReturnStmt:
			if sig := c.enclosingSignature(x); sig != nil && len(x.Results) == sig.Results().Len() {
				for i, r := range x.Results {
					c.checkBoxing(sig.Results().At(i).Type(), r, add)
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(x.X).(*ast.IndexExpr); ok && isMapIndex(info, ix) {
				add(ix.Lbrack, "map write may allocate on growth")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(info, x.X) && !isConst(info, x.X) {
				add(x.OpPos, "string concatenation allocates")
			}
		case *ast.SelectorExpr:
			// A method value (x.M not immediately called) allocates a
			// bound-method closure.
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.MethodVal {
				if parent, ok := c.parents[ast.Node(x)].(*ast.CallExpr); !ok || parent.Fun != ast.Expr(x) {
					add(x.Sel.Pos(), "method value allocates a bound-method closure")
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					add(x.Pos(), "address of composite literal allocates")
				}
			}
		case *ast.CompositeLit:
			// Value struct/array literals live wherever the value does,
			// but map and slice literals always allocate backing storage.
			if t := typeOf(info, x); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					add(x.Pos(), "map literal allocates")
				case *types.Slice:
					add(x.Pos(), "slice literal allocates")
				}
			}
		}
		return true
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// checkConversion flags conversions that allocate: string <-> []byte /
// []rune, and conversions of non-pointer-shaped concrete values to an
// interface type.
func (c *naComputer) checkConversion(call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	info := c.pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst := tv.Type
	arg := call.Args[0]
	if types.IsInterface(dst.Underlying()) {
		c.checkBoxing(dst, arg, add)
		return
	}
	src := typeOf(info, arg)
	if src == nil || isConst(info, arg) {
		return
	}
	if (isStringType(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStringType(src)) {
		add(call.Lparen, "string/slice conversion allocates a copy")
	}
}

// checkCallBoxing flags arguments boxed into interface parameters on
// calls whose signature is known (static or dynamic alike).
func (c *naComputer) checkCallBoxing(call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	info := c.pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		c.checkBoxing(pt, arg, add)
	}
}

// checkBoxing flags storing a non-pointer-shaped concrete value into an
// interface-typed slot: the value is copied to the heap. Pointer-shaped
// values (pointers, channels, maps, funcs, unsafe pointers) fit the
// interface data word directly, and constants may be served from the
// runtime's static cells.
func (c *naComputer) checkBoxing(dst types.Type, arg ast.Expr, add func(token.Pos, string, ...any)) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	info := c.pass.TypesInfo
	if tv, ok := info.Types[arg]; ok && tv.IsNil() {
		return
	}
	src := typeOf(info, arg)
	if src == nil || types.IsInterface(src.Underlying()) || isConst(info, arg) {
		return
	}
	if isPointerShaped(src) {
		return
	}
	add(arg.Pos(), "interface boxing of %s allocates", types.TypeString(src, types.RelativeTo(c.pass.Pkg)))
}

// enclosingSignature returns the signature of the innermost function
// (declaration or literal) containing n, for return-value boxing checks.
func (c *naComputer) enclosingSignature(n ast.Node) *types.Signature {
	for cur := c.parents[n]; cur != nil; cur = c.parents[cur] {
		switch f := cur.(type) {
		case *ast.FuncDecl:
			if fn, ok := c.pass.TypesInfo.Defs[f.Name].(*types.Func); ok {
				return fn.Type().(*types.Signature)
			}
			return nil
		case *ast.FuncLit:
			if sig, ok := typeOf(c.pass.TypesInfo, f).(*types.Signature); ok {
				return sig
			}
			return nil
		}
	}
	return nil
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func isMapIndex(info *types.Info, ix *ast.IndexExpr) bool {
	t := typeOf(info, ix.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isString(info *types.Info, e ast.Expr) bool {
	t := typeOf(info, e)
	return t != nil && isStringType(t)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerShaped reports whether values of t occupy exactly one
// pointer word, so storing them in an interface needs no heap copy.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// hasNoallocDirective reports whether the declaration's doc comment
// carries //rtlint:noalloc (optionally followed by a note).
func hasNoallocDirective(decl *ast.FuncDecl) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, noallocDirective)
		if ok && (rest == "" || strings.HasPrefix(rest, " ") || strings.HasPrefix(rest, "\t")) {
			return true
		}
	}
	return false
}
