// Package analysis is a minimal, dependency-free core of the
// golang.org/x/tools/go/analysis API: an Analyzer carries a name, a doc
// string, and a Run function that inspects one type-checked package
// through a Pass and reports Diagnostics.
//
// The shapes (Analyzer, Pass, Diagnostic, Pass.Reportf, object facts,
// Requires/ResultOf) deliberately mirror x/tools so the rtlint
// analyzers can be ported to the real multichecker by swapping this
// import — the build environment for this repo is fully offline, so the
// upstream module cannot be fetched and vendoring its full driver
// (serialized facts, SSA) would be far more code than the suite needs.
//
// Two whole-program features are supported beyond the per-package core:
//
//   - Requires: an analyzer may depend on another analyzer's per-package
//     result (e.g. noalloc requires the shared callgraph pass). The
//     driver runs requirements first and threads each result through
//     Pass.ResultOf.
//   - Object facts: an analyzer may attach a Fact to a types.Object
//     (typically a function) while analyzing the defining package and
//     read it back while analyzing an importing package. The driver
//     analyzes dependencies before importers, so facts flow forward
//     along the import graph. Facts are held in-process (every package
//     of a run shares one FileSet and one type-checker universe), so no
//     serialization is involved.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rtlint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces
	// and why; the first line is used as a summary by rtlint -list.
	Doc string

	// Requires lists analyzers that must run on the same package first;
	// their results are available through Pass.ResultOf. The graph must
	// be acyclic.
	Requires []*Analyzer

	// Run inspects the package presented by pass and reports findings
	// via pass.Report/Reportf. The first return value is the analyzer's
	// per-package result, delivered to dependents via Pass.ResultOf
	// (nil when the analyzer computes none). A non-nil error aborts the
	// whole rtlint run (reserved for internal failures, not findings).
	Run func(pass *Pass) (any, error)
}

// Fact is a marker interface for analyzer-attached object metadata.
// Implementations must be pointer types so ImportObjectFact can copy
// into caller storage; AFact is a no-op that keeps arbitrary types from
// flowing through the fact store by accident.
type Fact interface{ AFact() }

// Pass presents one type-checked package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ResultOf holds the results of the analyzers named in
	// Analyzer.Requires, computed on this same package.
	ResultOf map[*Analyzer]any

	// Report delivers one finding. The driver installs it; Run must not
	// replace it.
	Report func(Diagnostic)

	// facts is the run-wide object-fact store, shared across packages
	// and installed by the driver. Nil when the analyzer runs without a
	// fact-aware driver; Export/Import degrade to no-ops then.
	facts map[types.Object][]Fact
}

// SetFactStore installs the run-wide fact store. Drivers call this once
// per pass before Run; analyzers must not.
func (p *Pass) SetFactStore(store map[types.Object][]Fact) { p.facts = store }

// ExportObjectFact attaches fact to obj for importing packages to read.
// A fact of the same concrete type replaces any previously exported one
// on the same object.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil {
		return
	}
	t := reflect.TypeOf(fact)
	for i, f := range p.facts[obj] {
		if reflect.TypeOf(f) == t {
			p.facts[obj][i] = fact
			return
		}
	}
	p.facts[obj] = append(p.facts[obj], fact)
}

// ImportObjectFact copies the fact of fact's concrete type attached to
// obj into fact (which must be a pointer) and reports whether one was
// found. Facts are visible once the exporting package's pass has run —
// the driver orders dependencies before importers, so a fact exported
// on an object is readable wherever that object can be referenced.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil {
		return false
	}
	t := reflect.TypeOf(fact)
	for _, f := range p.facts[obj] {
		if reflect.TypeOf(f) == t {
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// Reportf reports a formatted diagnostic at pos, attributed to the
// pass's analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// String renders the diagnostic with a resolved position.
func (d Diagnostic) String(fset *token.FileSet) string {
	return fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
}
