// Package analysis is a minimal, dependency-free core of the
// golang.org/x/tools/go/analysis API: an Analyzer carries a name, a doc
// string, and a Run function that inspects one type-checked package
// through a Pass and reports Diagnostics.
//
// The shapes (Analyzer, Pass, Diagnostic, Pass.Reportf) deliberately
// mirror x/tools so the rtlint analyzers can be ported to the real
// multichecker by swapping this import — the build environment for this
// repo is fully offline, so the upstream module cannot be fetched and
// vendoring its full driver (facts, result propagation, SSA) would be
// far more code than the five analyzers need. Features the rtlint suite
// does not use — analyzer requirements, facts, suggested fixes — are
// intentionally absent.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rtlint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces
	// and why; the first line is used as a summary by rtlint -list.
	Doc string

	// Run inspects the package presented by pass and reports findings
	// via pass.Report/Reportf. A non-nil error aborts the whole rtlint
	// run (reserved for internal failures, not findings).
	Run func(pass *Pass) error
}

// Pass presents one type-checked package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver installs it; Run must not
	// replace it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos, attributed to the
// pass's analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// String renders the diagnostic with a resolved position.
func (d Diagnostic) String(fset *token.FileSet) string {
	return fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
}
