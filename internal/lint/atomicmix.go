package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// atomicmixScope is the code that implements or drives the lock-free /
// wait-free protocols, where a single plain access to a CAS-managed
// word is a data race the race detector only catches if a test happens
// to interleave it.
var atomicmixScope = []string{
	"internal/lockfree", "internal/lockobj", "internal/waitfree", "internal/runner",
}

// Atomicmix flags struct fields that mix access disciplines: a field
// passed to the legacy sync/atomic functions (atomic.AddInt64(&s.f, ..))
// must never also be read or written plainly, and a typed atomic field
// (atomic.Int64, atomic.Pointer[T], ...) must only be touched through
// its methods — copying or reassigning it as a value tears the
// synchronization.
var Atomicmix = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flags struct fields accessed both via sync/atomic and via plain read/write, " +
		"and typed atomic values copied or reassigned instead of used through methods",
	Run: runAtomicmix,
}

func runAtomicmix(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path(), atomicmixScope) {
		return nil, nil
	}
	parents := parentMap(pass.Files)

	// Pass 1: fields whose address is taken for a legacy sync/atomic
	// call. atomicSels records the exact selector nodes so pass 2 does
	// not double-count them as plain accesses.
	atomicAt := map[*types.Var]token.Pos{}
	atomicSels := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, _, ok := calleePkgFunc(pass.TypesInfo, call)
			if !ok || path != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld := selectedField(pass.TypesInfo, sel); fld != nil {
					atomicSels[sel] = true
					if _, seen := atomicAt[fld]; !seen {
						atomicAt[fld] = sel.Pos()
					}
				}
			}
			return true
		})
	}

	// Pass 2: plain accesses to those same fields, and value copies of
	// typed atomics.
	reportedMix := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if atomicSels[e] {
					return true
				}
				fld := selectedField(pass.TypesInfo, e)
				if fld == nil {
					return true
				}
				if isAtomicType(fld.Type()) {
					checkTypedAtomicUse(pass, parents, e)
					return true
				}
				if pos, ok := atomicAt[fld]; ok && !reportedMix[fld] {
					reportedMix[fld] = true
					pass.Reportf(e.Pos(), "field %s is accessed via sync/atomic at %s but read/written plainly here; "+
						"every access to an atomic word must go through sync/atomic",
						fld.Name(), pass.Fset.Position(pos))
				}
			case *ast.IndexExpr:
				// Element of a []atomic.T / [N]atomic.T field: same
				// methods-only rule as a direct typed atomic field.
				if tv, ok := pass.TypesInfo.Types[e]; ok && tv.IsValue() && isAtomicType(tv.Type) {
					if _, isSel := e.X.(*ast.SelectorExpr); isSel {
						checkTypedAtomicUse(pass, parents, e)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// isAtomicType reports whether t is one of sync/atomic's typed values
// (Int64, Uint64, Bool, Value, Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// checkTypedAtomicUse flags e (an expression of typed-atomic type
// rooted at a struct field) unless it is used as a method receiver or
// has its address taken.
func checkTypedAtomicUse(pass *analysis.Pass, parents map[ast.Node]ast.Node, e ast.Expr) {
	parent := parents[e]
	for {
		p, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		parent = parents[p]
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X == e {
			return // method call: s.f.Load(), s.cells[i].Store(..)
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return // &s.f passed as *atomic.T
		}
	case *ast.IndexExpr:
		if p.X == e {
			return // indexing a slice/array field; element checked separately
		}
	}
	pass.Reportf(e.Pos(), "atomic value %s used as a plain value; "+
		"typed atomics must only be touched through their methods (Load/Store/CAS) or by address",
		types.ExprString(e))
}
