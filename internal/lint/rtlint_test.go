package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

// Each analyzer gets a positive fixture (violations carrying // want
// expectations) and a negative one (same shapes outside the analyzer's
// scope, or compliant idioms) loaded GOPATH-style from testdata/src.

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.Maporder,
		"maporder/internal/sim", "maporder/internal/trace", "maporder/notscoped",
		"maporder/internal/report", "maporder/internal/metrics/hist",
		"maporder/internal/rtime/wheel", "maporder/internal/fault",
		"maporder/internal/waitfree", "maporder/internal/stoch",
		"maporder/internal/obs", "maporder/internal/serve")
}

func TestSimclock(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.Simclock,
		"simclock/app", "simclock/internal/uam", "simclock/internal/rtime/wheel",
		"simclock/internal/fault", "simclock/internal/stoch")
}

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.Atomicmix,
		"atomicmix/internal/lockfree", "atomicmix/notscoped")
}

func TestSharedtask(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.Sharedtask,
		"sharedtask/app")
}

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.Floatcmp,
		"floatcmp/internal/metrics", "floatcmp/internal/report",
		"floatcmp/internal/rua", "floatcmp/internal/fault",
		"floatcmp/internal/waitfree", "floatcmp/internal/stoch",
		"floatcmp/internal/obs", "floatcmp/internal/serve")
}

// TestIgnoreDirective proves the suppression contract: a justified
// directive on the flagged line or the line above silences exactly that
// finding; naming an unknown analyzer or omitting the reason turns the
// directive itself into a finding and suppresses nothing.
func TestIgnoreDirective(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.Maporder,
		"ignoredir/internal/sim")
}

// TestNoalloc drives the whole fact pipeline: alloclib is listed first
// so its exported facts exist, then hot's annotated roots turn a
// dependency's allocation fact, in-package transitive sites, boxing,
// and unproven stdlib calls into diagnostics — while panic arguments
// and justified ignores stay silent.
func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.Noalloc,
		"noalloc/internal/alloclib", "noalloc/internal/hot")
}

func TestCasloop(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.Casloop,
		"casloop/internal/lockfree", "casloop/notscoped")
}

func TestAtomicalign(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.Atomicalign,
		"atomicalign/internal/stats", "atomicalign/notscoped")
}
