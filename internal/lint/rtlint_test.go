package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

// Each analyzer gets a positive fixture (violations carrying // want
// expectations) and a negative one (same shapes outside the analyzer's
// scope, or compliant idioms) loaded GOPATH-style from testdata/src.

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.Maporder,
		"maporder/internal/sim", "maporder/internal/trace", "maporder/notscoped",
		"maporder/internal/report", "maporder/internal/metrics/hist",
		"maporder/internal/rtime/wheel")
}

func TestSimclock(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.Simclock,
		"simclock/app", "simclock/internal/uam", "simclock/internal/rtime/wheel")
}

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.Atomicmix,
		"atomicmix/internal/lockfree", "atomicmix/notscoped")
}

func TestSharedtask(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.Sharedtask,
		"sharedtask/app")
}

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.Floatcmp,
		"floatcmp/internal/metrics", "floatcmp/internal/report",
		"floatcmp/internal/rua")
}

// TestIgnoreDirective proves the suppression contract: a justified
// directive on the flagged line or the line above silences exactly that
// finding; naming an unknown analyzer or omitting the reason turns the
// directive itself into a finding and suppresses nothing.
func TestIgnoreDirective(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.Maporder,
		"ignoredir/internal/sim")
}
