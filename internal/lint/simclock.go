package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// uamScope is the one package allowed to construct math/rand generators:
// every stream of randomness in the system must be a seeded uam.Generator
// so runs replay bit-identically.
var uamScope = []string{"internal/uam"}

// Simclock flags wall-clock reads and stray randomness in the
// virtual-time world. The simulator's clock is rtime.Time and every
// random stream must be a per-run seeded generator owned by
// internal/uam; time.Now/Since/Until and the global math/rand functions
// make event sequences depend on the host, and an ad-hoc rand.New
// outside uam is a second, unaudited seed channel.
var Simclock = &analysis.Analyzer{
	Name: "simclock",
	Doc: "flags time.Now/Since/Until, global math/rand functions, and rand.New " +
		"outside internal/uam; virtual-time code must use rtime and seeded uam generators",
	Run: runSimclock,
}

// wallClockFuncs are the time package reads that tie behaviour to the
// host clock. (time.Duration arithmetic and constants are fine.)
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runSimclock(pass *analysis.Pass) (any, error) {
	inUAM := inScope(pass.Pkg.Path(), uamScope)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := calleePkgFunc(pass.TypesInfo, call)
			if !ok {
				return true
			}
			switch path {
			case "time":
				if wallClockFuncs[name] {
					pass.Reportf(call.Pos(), "wall-clock time.%s in virtual-time code; "+
						"simulation time must come from rtime", name)
				}
			case "math/rand", "math/rand/v2":
				switch name {
				case "New", "NewSource", "NewPCG", "NewChaCha8":
					// Constructing a generator is the uam package's job;
					// elsewhere it is an unaudited seed channel.
					if !inUAM && name == "New" {
						pass.Reportf(call.Pos(), "rand.New outside internal/uam; "+
							"route randomness through seeded uam generators")
					}
				default:
					// Top-level funcs (Intn, Float64, Perm, Shuffle, ...)
					// share one process-global, effectively unseeded RNG.
					pass.Reportf(call.Pos(), "global %s.%s() uses the shared process RNG; "+
						"use a seeded uam generator", path, name)
				}
			}
			return true
		})
	}
	return nil, nil
}
