package lint

import (
	"strings"
	"testing"
)

// FuzzIgnoreDirective fuzzes the pure //rtlint:ignore parser under its
// contract: it never panics, it is deterministic, and a directive with
// no reported problems always yields at least one non-empty analyzer
// name plus a non-empty reason (a problem-free parse that suppressed
// findings without a justification would defeat the directive's whole
// point). Conversely a parse with problems must suppress nothing:
// names and reason come back empty.
func FuzzIgnoreDirective(f *testing.F) {
	seeds := []string{
		" noalloc steady state reuses freed arena nodes",
		" maporder,floatcmp collected then sorted in the caller",
		"",
		" noalloc",
		" , missing names",
		" noalloc\treason\twith\ttabs",
		" noalloc justified // want `make allocates`",
		" simclock,, double comma",
		"   ",
		" noalloc // want `x`",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		names, reason, problems := parseIgnoreText(text)

		names2, reason2, problems2 := parseIgnoreText(text)
		if len(names) != len(names2) || reason != reason2 || len(problems) != len(problems2) {
			t.Fatalf("parseIgnoreText is non-deterministic on %q", text)
		}

		if len(problems) > 0 {
			if len(names) != 0 || reason != "" {
				t.Fatalf("problem parse of %q still returned names=%q reason=%q", text, names, reason)
			}
			return
		}
		if len(names) == 0 {
			t.Fatalf("problem-free parse of %q returned no analyzer names", text)
		}
		for _, n := range names {
			if n == "" {
				t.Fatalf("problem-free parse of %q returned an empty analyzer name", text)
			}
			if strings.ContainsAny(n, " \t,") {
				t.Fatalf("analyzer name %q from %q contains separator characters", n, text)
			}
		}
		if reason == "" {
			t.Fatalf("problem-free parse of %q returned an empty reason", text)
		}
	})
}
