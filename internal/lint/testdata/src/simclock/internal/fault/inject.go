// Package fault is a simclock fixture for the fault-injection layer:
// injection decisions must come from virtual time and seeded uam
// generators, never the host clock or the shared process RNG.
package fault

import (
	"math/rand"
	"time"
)

// BadDeadline arms an injection off the wall clock: flagged.
func BadDeadline() int64 {
	return time.Now().UnixNano() // want `wall-clock time\.Now`
}

// BadDraw draws from the shared process RNG: flagged.
func BadDraw(p float64) bool {
	return rand.Float64() < p // want `global math/rand\.Float64\(\) uses the shared process RNG`
}

// BadLocalSource builds an ad-hoc generator outside uam: flagged.
func BadLocalSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `rand\.New outside internal/uam`
}

// GoodVirtual takes its trigger time as a virtual tick: fine.
func GoodVirtual(now, at int64) bool {
	return now >= at
}
