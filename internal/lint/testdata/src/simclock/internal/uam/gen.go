// Package uam is a simclock fixture standing in for the repo's seeded
// generator home: rand.New is allowed here, but the global top-level
// funcs and the wall clock still are not.
package uam

import (
	"math/rand"
	"time"
)

// Generator owns a seeded stream: allowed.
type Generator struct{ rng *rand.Rand }

// New constructs the sanctioned seeded generator: not flagged.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Sloppy still reaches for the process-global RNG: flagged even in uam.
func Sloppy() float64 {
	return rand.Float64() // want `global math/rand\.Float64\(\)`
}

// Clocky reads the wall clock: flagged even in uam.
func Clocky() time.Time {
	return time.Now() // want `wall-clock time\.Now`
}
