// Package stoch is a simclock fixture for the stochastic-scheduler
// layer: every preemption draw must be a pure hash of (seed, cpu,
// tick), never the host clock or the shared process RNG.
package stoch

import (
	"math/rand"
	"time"
)

// BadQuantum jitters the quantum off the wall clock: flagged.
func BadQuantum() int64 {
	return time.Now().UnixNano() % 512 // want `wall-clock time\.Now`
}

// BadDraw draws the pick decision from the shared process RNG: flagged.
func BadDraw(pickp float64) bool {
	return rand.Float64() < pickp // want `global math/rand\.Float64\(\) uses the shared process RNG`
}

// BadLocalSource builds an ad-hoc generator outside uam: flagged.
func BadLocalSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `rand\.New outside internal/uam`
}

// GoodHash derives the decision from hashed coordinates: fine.
func GoodHash(seed, cpu, tick uint64) uint64 {
	z := seed ^ cpu*0x9e3779b97f4a7c15 ^ tick
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	return z ^ z>>27
}
