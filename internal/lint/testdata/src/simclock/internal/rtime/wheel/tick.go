// Package wheel is a simclock fixture for wheel tick arithmetic: the
// timing wheel advances on virtual rtime ticks, so any wall-clock read
// or process-global randomness in tick maths ties expiry cascades to
// the host and breaks replay.
package wheel

import (
	"math/rand"
	"time"
)

// BadNow derives the current tick from the host clock: flagged.
func BadNow() int64 {
	return time.Now().UnixNano() >> 10 // want `wall-clock time.Now`
}

// BadJitter staggers slot scans with the process-global RNG: flagged.
func BadJitter(slots int) int {
	return rand.Intn(slots) // want `global math/rand.Intn\(\) uses the shared process RNG`
}

// BadSince measures cascade cost on the wall clock: flagged.
func BadSince(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock time.Since`
}

// GoodTickMath is pure virtual-tick arithmetic: level index and slot
// offset from a due tick, no host state anywhere.
func GoodTickMath(due, now int64) (level, slot int) {
	delta := due - now
	for delta >= 64 {
		delta >>= 6
		level++
	}
	return level, int(due >> (6 * level) & 63)
}

// GoodDurationConst uses time only for duration constants: accepted.
func GoodDurationConst() time.Duration {
	return 500 * time.Microsecond
}
