// Package app is a simclock fixture outside internal/uam: wall-clock
// reads and every math/rand entry point are flagged.
package app

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock: flagged twice.
func Stamp() (int64, time.Duration) {
	now := time.Now()          // want `wall-clock time\.Now`
	d := time.Since(time.Time{}) // want `wall-clock time\.Since`
	return now.Unix(), d
}

// Jitter uses the global shared RNG: flagged.
func Jitter() float64 {
	return rand.Float64() // want `global math/rand\.Float64\(\) uses the shared process RNG`
}

// Pick uses another global top-level func: flagged.
func Pick(n int) int {
	return rand.Intn(n) // want `global math/rand\.Intn\(\) uses the shared process RNG`
}

// Local constructs an ad-hoc generator outside uam: flagged even though
// it is seeded, because it bypasses the audited uam seed channel.
func Local(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `rand\.New outside internal/uam`
}

// Durations is pure virtual-time arithmetic: fine.
func Durations(d time.Duration) time.Duration {
	return 2*d + time.Millisecond
}
