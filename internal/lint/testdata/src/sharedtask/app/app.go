// Package app is the sharedtask fixture exercising captures of task
// values by closures handed to the parallel engine.
package app

import (
	"sharedtask/internal/runner"
	"sharedtask/internal/task"
)

// BadSlice captures the live template slice with no clone anywhere:
// flagged at the first use inside the closure.
func BadSlice(tasks []*task.Task) error {
	return runner.ForEach(0, 4, func(i int) error {
		tasks[0].State = i // want `\[\]\*sharedtask/internal/task\.Task "tasks" captured by closure passed to runner\.ForEach without Clone/CloneAll`
		return nil
	})
}

// BadSingle captures one live task: flagged.
func BadSingle(t *task.Task) ([]int, error) {
	return runner.Map(0, 4, func(i int) (int, error) {
		t.State = i // want `\*sharedtask/internal/task\.Task "t" captured by closure passed to runner\.Map without Clone/CloneAll`
		return t.ID, nil
	})
}

// GoodCloneInside clones inside the closure before touching anything:
// each worker gets its own copy, not flagged.
func GoodCloneInside(tasks []*task.Task) ([]int, error) {
	return runner.Map(0, 4, func(i int) (int, error) {
		mine := task.CloneAll(tasks)
		mine[0].State = i
		return mine[0].ID, nil
	})
}

// GoodCloneBefore captures a clone made in the enclosing function: the
// closure never sees the caller's live tasks, not flagged.
func GoodCloneBefore(tasks []*task.Task) ([]int, error) {
	snapshot := task.CloneAll(tasks)
	return runner.Map(0, 4, func(i int) (int, error) {
		snapshot[0].State = i
		return snapshot[0].ID, nil
	})
}

// GoodMethodClone clones a single task via its method inside the
// closure: not flagged.
func GoodMethodClone(t *task.Task) ([]int, error) {
	return runner.Map(0, 4, func(i int) (int, error) {
		mine := t.Clone()
		mine.State = i
		return mine.ID, nil
	})
}

// GoodUnrelated captures no task values at all: not flagged.
func GoodUnrelated(weights []float64) ([]int, error) {
	return runner.Map(0, len(weights), func(i int) (int, error) {
		return int(weights[i] * 10), nil
	})
}
