// Package task is a sharedtask fixture stub: the analyzer keys on the
// named type Task under an import path suffixed internal/task.
package task

// Task stands in for the repo's mutable task value.
type Task struct {
	ID    int
	State int
}

// Clone deep-copies one task.
func (t *Task) Clone() *Task {
	c := *t
	return &c
}

// CloneAll deep-copies a template slice.
func CloneAll(ts []*Task) []*Task {
	out := make([]*Task, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}
