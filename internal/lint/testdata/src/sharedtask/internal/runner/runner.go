// Package runner is a sharedtask fixture stub: its import path suffix
// internal/runner is what the analyzer keys on.
package runner

// Map mimics the parallel engine's fan-out entry point.
func Map(jobs, n int, fn func(i int) (int, error)) ([]int, error) {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		v, err := fn(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ForEach mimics the result-free fan-out entry point.
func ForEach(jobs, n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}
