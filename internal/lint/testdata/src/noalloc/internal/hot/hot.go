// Package hot exercises the noalloc analyzer end to end: annotated
// roots, transitive in-package reachability, cross-package facts from
// alloclib, and the panic-path and ignore-directive exemptions.
package hot

import (
	"fmt"

	"noalloc/internal/alloclib"
)

var scratch []int

//rtlint:noalloc steady-state fixture root
func Hot(xs []int, m map[int]int) int {
	xs = alloclib.Grow(xs, 1) // want `calls alloclib\.Grow, which allocates \(append may grow its backing array at alloclib\.go:\d+\); not allowed in the //rtlint:noalloc path of Hot`
	m[1] = 2                  // want `map write may allocate on growth at hot\.go:\d+; not allowed in the //rtlint:noalloc path of Hot`
	return alloclib.Sum(xs) + helper()
}

// helper is unannotated but reachable from Hot, so its direct site is
// reported at the true location, attributed to the annotated root.
func helper() int {
	buf := make([]byte, 4) // want `make allocates at hot\.go:\d+; not allowed in the //rtlint:noalloc path of Hot`
	return len(buf)
}

//rtlint:noalloc exemption fixture root
func Guarded(n int) []int {
	if n < 0 {
		panic(fmt.Sprintf("hot: negative size %d", n)) // failure path: exempt
	}
	//rtlint:ignore noalloc warm-up growth is amortized
	scratch = append(scratch, n)
	return alloclib.Reserve(n) // Reserve's fact is clean: its site is justified at the source
}

//rtlint:noalloc boxing fixture root
func Box(i int) any {
	return i // want `interface boxing of int allocates at hot\.go:\d+; not allowed in the //rtlint:noalloc path of Box`
}

//rtlint:noalloc unproven-callee fixture root
func Format(x int) string {
	return fmt.Sprintf("%d", x) // want `calls fmt\.Sprintf, which cannot be proven allocation-free; not allowed in the //rtlint:noalloc path of Format` `interface boxing of int allocates at hot\.go:\d+; not allowed in the //rtlint:noalloc path of Format`
}

// Cold is unannotated: its allocation becomes a fact, not a finding.
func Cold() []int {
	return make([]int, 8)
}
