// Package alloclib is the dependency side of the cross-package noalloc
// fixture: it carries no //rtlint:noalloc annotation itself, so nothing
// is reported here — its exported allocation facts drive diagnostics in
// the importing package instead.
package alloclib

// Grow allocates whenever the append outgrows the backing array; the
// exported fact for Grow carries this site.
func Grow(xs []int, v int) []int {
	return append(xs, v)
}

// Sum is allocation-free and exports a clean fact.
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Reserve allocates but justifies it in place; the ignore keeps the
// site out of the exported fact, so importers may call Reserve from
// protected paths without re-litigating the justification.
func Reserve(n int) []int {
	//rtlint:ignore noalloc one-time warm-up capacity
	return make([]int, 0, n)
}
