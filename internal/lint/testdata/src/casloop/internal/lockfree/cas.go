// Package lockfree exercises the casloop analyzer: stale-expected
// retry loops and racy plain reads in both CAS spellings.
package lockfree

import "sync/atomic"

// Counter uses the typed-atomic CAS form.
type Counter struct{ v atomic.Int64 }

// BadAdd loads its expectation once, outside the loop: after the first
// lost race every retry re-runs the CAS with the same stale value.
func (c *Counter) BadAdd(delta int64) {
	old := c.v.Load()
	for {
		if c.v.CompareAndSwap(old, old+delta) { // want `CAS retry loop never re-loads c\.v`
			return
		}
	}
}

// GoodAdd re-loads inside the loop: the canonical retry shape.
func (c *Counter) GoodAdd(delta int64) {
	for {
		old := c.v.Load()
		if c.v.CompareAndSwap(old, old+delta) {
			return
		}
	}
}

// GoodInlineLoad derives the expectation from an atomic read right in
// the argument position.
func (c *Counter) GoodInlineLoad() {
	for !c.v.CompareAndSwap(c.v.Load(), 42) {
	}
}

// GoodConst re-expects a constant deliberately (claim a free slot).
func (c *Counter) GoodConst() {
	for !c.v.CompareAndSwap(0, 1) {
	}
}

// OneShot is not a retry loop; failing once and giving up is a valid
// protocol.
func (c *Counter) OneShot(delta int64) bool {
	old := c.v.Load()
	return c.v.CompareAndSwap(old, old+delta)
}

// GoodOuterReload hoists the re-load one loop up — the labeled
// continue-retry shape; the load is still on the repeated path.
func (c *Counter) GoodOuterReload(delta int64) {
	for {
		old := c.v.Load()
		for i := 0; i < 2; i++ {
			if c.v.CompareAndSwap(old, old+delta) {
				return
			}
		}
	}
}

// Legacy uses the function-form CAS on a plain field.
type Legacy struct{ n int64 }

// Bad breaks both rules: the expectation is stale, and the loop
// branches on a plain, racy read of the CAS'd word.
func (l *Legacy) Bad(delta int64) {
	old := atomic.LoadInt64(&l.n)
	for {
		if l.n > 100 { // want `non-atomic read of l\.n inside its CAS retry loop`
			return
		}
		if atomic.CompareAndSwapInt64(&l.n, old, old+delta) { // want `CAS retry loop never re-loads l\.n`
			return
		}
	}
}

// Good re-loads atomically each iteration and never touches the word
// outside sync/atomic.
func (l *Legacy) Good(delta int64) {
	for {
		old := atomic.LoadInt64(&l.n)
		if atomic.CompareAndSwapInt64(&l.n, old, old+delta) {
			return
		}
	}
}
