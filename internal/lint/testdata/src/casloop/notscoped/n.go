// Package notscoped carries the stale-expected shape outside
// internal/lockfree, internal/waitfree, and internal/lockobj: the
// casloop analyzer must stay silent here.
package notscoped

import "sync/atomic"

type counter struct{ v atomic.Int64 }

func (c *counter) badButOutOfScope(delta int64) {
	old := c.v.Load()
	for {
		if c.v.CompareAndSwap(old, old+delta) {
			return
		}
	}
}
