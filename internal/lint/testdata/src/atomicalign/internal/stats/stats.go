// Package stats exercises the atomicalign analyzer: legacy 64-bit
// sync/atomic calls on struct fields that 32-bit layout cannot keep
// 8-byte aligned.
package stats

import "sync/atomic"

// Stats puts the 64-bit word after a bool: under 32-bit layout hits
// lands at offset 4.
type Stats struct {
	flag bool
	hits int64
}

func (s *Stats) Bump() {
	atomic.AddInt64(&s.hits, 1) // want `field hits sits at offset 4 in stats\.Stats under 32-bit layout`
}

// Wide shows the unsigned variant and the matching suggestion.
type Wide struct {
	mode uint32
	seen uint64
}

func (w *Wide) Mark() {
	atomic.StoreUint64(&w.seen, 7) // want `use atomic\.Uint64`
}

// Inner/Outer route the field through an embedded struct: the offset
// accumulates along the selection path (4 for Inner in Outer, 0 for n
// in Inner).
type Inner struct {
	n   int64
	pad bool
}

type Outer struct {
	flag bool
	Inner
}

func (o *Outer) Add() {
	atomic.AddInt64(&o.n, 1) // want `field n sits at offset 4 in stats\.Outer under 32-bit layout`
}

// Good keeps the 64-bit word first: offset 0 is always aligned.
type Good struct {
	hits int64
	flag bool
}

func (g *Good) Bump() {
	atomic.AddInt64(&g.hits, 1)
}

// Typed uses atomic.Int64, whose alignment the runtime guarantees at
// any offset; typed atomics are exempt.
type Typed struct {
	flag bool
	hits atomic.Int64
}

func (t *Typed) Bump() {
	t.hits.Add(1)
}
