// Package notscoped carries a misaligned 64-bit atomic outside any
// internal/ path: the atomicalign analyzer must stay silent here.
package notscoped

import "sync/atomic"

type stats struct {
	flag bool
	hits int64
}

func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
}
