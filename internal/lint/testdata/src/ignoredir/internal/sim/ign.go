// Package sim exercises the //rtlint:ignore directive machinery: a
// well-formed directive (trailing or on the line above) suppresses a
// finding; malformed directives are findings themselves.
package sim

// SuppressedTrailing has a real maporder violation silenced by a
// trailing justified directive: no diagnostic.
func SuppressedTrailing(m map[string]int) int {
	total := 0
	for _, v := range m { //rtlint:ignore maporder summation is commutative, order cannot reach output
		total += v
	}
	return total
}

// SuppressedAbove is silenced by a directive on the preceding line.
func SuppressedAbove(m map[string]int) int {
	total := 0
	//rtlint:ignore maporder summation is commutative, order cannot reach output
	for _, v := range m {
		total += v
	}
	return total
}

// WrongName names an analyzer that does not exist: the directive itself
// is a finding, and the violation it failed to cover still fires.
func WrongName(m map[string]int) int {
	total := 0
	for _, v := range m { //rtlint:ignore nosuchanalyzer typo'd name // want `range over map m` `rtlint:ignore names unknown analyzer "nosuchanalyzer"`
		total += v
	}
	return total
}

// NoReason omits the justification: the directive is a finding and
// suppresses nothing.
func NoReason(m map[string]int) int {
	total := 0
	for _, v := range m { //rtlint:ignore maporder // want `range over map m` `rtlint:ignore requires a reason`
		total += v
	}
	return total
}

// Unsuppressed has no directive at all: plain finding.
func Unsuppressed(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map m`
		total += v
	}
	return total
}
