// Package notscoped is outside atomicmix's scope: mixed access is not
// this analyzer's business here (the race detector still is).
package notscoped

import "sync/atomic"

// Mixed would be flagged inside internal/lockfree; here it is not.
type Mixed struct{ n int64 }

// Bump increments atomically.
func (m *Mixed) Bump() { atomic.AddInt64(&m.n, 1) }

// Read reads plainly.
func (m *Mixed) Read() int64 { return m.n }
