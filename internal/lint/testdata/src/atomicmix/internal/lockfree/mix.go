// Package lockfree is an atomicmix fixture inside the analyzer's scope.
package lockfree

import "sync/atomic"

// Counter mixes disciplines on hits: the increment goes through
// sync/atomic but Read bypasses it.
type Counter struct {
	hits int64
	safe int64
}

// Bump accesses hits atomically: this use alone is fine.
func (c *Counter) Bump() {
	atomic.AddInt64(&c.hits, 1)
}

// Read reads hits plainly while Bump uses sync/atomic: flagged.
func (c *Counter) Read() int64 {
	return c.hits // want `field hits is accessed via sync/atomic`
}

// SafeRead keeps a single discipline for safe: not flagged.
func (c *Counter) SafeRead() int64 {
	atomic.AddInt64(&c.safe, 0)
	return atomic.LoadInt64(&c.safe)
}

// Typed holds typed atomics.
type Typed struct {
	n     atomic.Int64
	cells []atomic.Pointer[int]
}

// Methods uses the typed atomics through their methods: not flagged.
func (t *Typed) Methods(p *int) int64 {
	t.n.Add(1)
	t.cells[0].Store(p)
	return t.n.Load()
}

// ByAddress passes a typed atomic by pointer: not flagged.
func (t *Typed) ByAddress() *atomic.Int64 {
	return &t.n
}

// Copy copies a typed atomic as a value: flagged.
func (t *Typed) Copy() atomic.Int64 {
	return t.n // want `atomic value t\.n used as a plain value`
}

// CopyElem copies a typed atomic out of a slice field: flagged.
func (t *Typed) CopyElem() atomic.Pointer[int] {
	return t.cells[0] // want `atomic value t\.cells\[0\] used as a plain value`
}
