// Package stoch is a floatcmp fixture: hashed uniforms are compared
// against pick probabilities, newly inside the analyzer's
// internal/stoch scope.
package stoch

// BadPick compares the hashed uniform exactly against the pick
// probability: flagged.
func BadPick(u, pickp float64) bool {
	return u == pickp // want `float comparison u == pickp`
}

// GoodPick uses an ordering comparison, the real decision rule.
func GoodPick(u, pickp float64) bool {
	return u < pickp
}
