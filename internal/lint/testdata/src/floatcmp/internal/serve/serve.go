// Package serve is a floatcmp fixture: the serving daemon
// canonicalizes client specs carrying fault and scheduler
// probabilities, newly inside the analyzer's internal/serve scope.
// Exact float equality there would split or merge cache lines on
// rounding drift.
package serve

// BadProbEqual collapses two plan probabilities into one cache line by
// exact equality: flagged.
func BadProbEqual(a, b float64) bool {
	return a == b // want `float comparison a == b`
}

// GoodProbRender renders the probability exactly instead of comparing
// it: canonical strings are compared as bytes, never as floats.
func GoodProbRender(p float64, format func(float64) string) string {
	return format(p)
}

// GoodNaN is the accepted NaN self-test idiom.
func GoodNaN(p float64) bool {
	return p != p
}
