// Package rua is a floatcmp fixture: the scheduler joined the
// analyzer's scope in PR 6 — PUD values drive dispatch order, so an
// exact float equality there is a scheduling decision that shifts with
// rounding unless it is a deliberate, annotated tie-break gate.
package rua

// Bad compares two computed utility densities exactly: flagged.
func Bad(pudA, pudB float64) bool {
	return pudA == pudB // want `float comparison pudA == pudB`
}

// BadSlack flags != on derived slack ratios too.
func BadSlack(slack, limit float64) bool {
	return slack != limit // want `float comparison slack != limit`
}

// GoodTieBreak is the annotated deliberate gate the real pudSorter
// uses: equality falls through to a deterministic secondary order.
func GoodTieBreak(pudA, pudB float64, tie func() bool) bool {
	//rtlint:ignore floatcmp tie-break gate: both values come from one pass, bit-equal on equal inputs
	if pudA != pudB {
		return pudA > pudB
	}
	return tie()
}

// GoodEpsilon compares with a tolerance: no equality operator.
func GoodEpsilon(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// GoodIntSlack compares integer slack (the feasibility tree's minSlack
// is int64 exactly so these stay exact): not this analyzer's business.
func GoodIntSlack(minSlack, now int64) bool {
	return minSlack == now
}
