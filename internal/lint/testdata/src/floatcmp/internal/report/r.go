// Package report is a floatcmp fixture: chart scales are derived
// floats, so exact comparisons here are the classic way a tick loop
// runs one short on some inputs.
package report

// BadTickLoopGuard compares an accumulated tick position exactly
// against the axis maximum: flagged.
func BadTickLoopGuard(step, max float64) int {
	n := 0
	for v := 0.0; v == max; v += step { // want `float comparison v == max`
		n++
	}
	return n
}

// BadScaleCheck compares two computed scale factors: flagged.
func BadScaleCheck(plotW, span float64) bool {
	return plotW/span == span/plotW // want `float comparison plotW / span == span / plotW`
}

// GoodOrdering uses an ordering comparison, which is fine.
func GoodOrdering(y, yMax float64) float64 {
	if y > yMax {
		return yMax
	}
	return y
}

// GoodIntCoords compares integer pixel offsets: not floats.
func GoodIntCoords(a, b int) bool {
	return a == b
}
