// Package waitfree is a floatcmp fixture: progress ratios compared for
// exact equality flip help decisions when rounding drifts, newly inside
// the analyzer's internal/waitfree scope.
package waitfree

// BadRatio compares two computed ratios exactly: flagged.
func BadRatio(mine, theirs float64) bool {
	return mine != theirs // want `float comparison mine != theirs`
}

// GoodCount compares integers: not this analyzer's business.
func GoodCount(done, total int) bool {
	return done == total
}
