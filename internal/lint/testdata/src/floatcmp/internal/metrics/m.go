// Package metrics is a floatcmp fixture inside the analyzer's scope.
package metrics

// Ratio is a named float type: still a float underneath.
type Ratio float64

// Bad compares computed floats exactly: flagged.
func Bad(a, b float64) bool {
	return a == b // want `float comparison a == b`
}

// BadNeq flags != as well.
func BadNeq(u Ratio, limit Ratio) bool {
	return u != limit // want `float comparison u != limit`
}

// BadZero compares a computed sum against zero: flagged (annotate when
// exactness genuinely holds).
func BadZero(xs []float64) bool {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum == 0 // want `float comparison sum == 0`
}

// GoodNaN is the self-comparison NaN idiom: accepted.
func GoodNaN(x float64) bool {
	return x != x
}

// GoodConst folds at compile time: accepted.
func GoodConst() bool {
	return 0.1+0.2 == 0.3
}

// GoodInts compares integers: not this analyzer's business.
func GoodInts(a, b int64) bool {
	return a == b
}

// GoodEpsilon is the recommended shape: no equality operator at all.
func GoodEpsilon(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
