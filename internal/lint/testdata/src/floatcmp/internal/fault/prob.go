// Package fault is a floatcmp fixture: injection probabilities are
// compared against thresholds, newly inside the analyzer's
// internal/fault scope.
package fault

// BadThreshold compares a drawn probability exactly: flagged.
func BadThreshold(p, threshold float64) bool {
	return p == threshold // want `float comparison p == threshold`
}

// GoodBelow uses an ordering comparison: accepted.
func GoodBelow(p, threshold float64) bool {
	return p < threshold
}
