// Package obs is a floatcmp fixture: the streaming pipeline surfaces
// commit rates and attempt quantiles in progress lines and snapshots,
// newly inside the analyzer's internal/obs scope. Exact float equality
// there flips output on rounding drift.
package obs

// BadRate reports whether the live commit rate has reached the target
// by exact equality: flagged.
func BadRate(rate, target float64) bool {
	return rate == target // want `float comparison rate == target`
}

// GoodRate compares against the target with an epsilon.
func GoodRate(rate, target float64) bool {
	const eps = 1e-9
	return rate > target-eps
}

// GoodNaN is the accepted NaN self-test idiom.
func GoodNaN(rate float64) bool {
	return rate != rate
}
