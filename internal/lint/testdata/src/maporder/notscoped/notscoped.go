// Package notscoped is outside maporder's internal/{sim,...} scope:
// nothing here is flagged even though it ranges over maps.
package notscoped

// Free may iterate maps however it likes.
func Free(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
