// Package serve is a maporder fixture: the serving daemon's contract
// is byte-identity with the batch CLI, newly inside the analyzer's
// internal/serve scope. A map walk feeding an artifact listing or a
// cache eviction order would change served output (or which entry is
// evicted) per run.
package serve

import "sort"

// BadListing renders the artifact listing straight from the map: the
// served order changes per run, flagged.
func BadListing(artifacts map[string][]byte, emit func(string, int)) {
	for name, data := range artifacts { // want `range over map artifacts`
		emit(name, len(data))
	}
}

// GoodListing collects names and sorts them before emitting: the
// blessed collect-then-sort idiom.
func GoodListing(artifacts map[string][]byte, emit func(string, int)) {
	names := make([]string, 0, len(artifacts))
	for name := range artifacts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		emit(name, len(artifacts[name]))
	}
}
