// Package stoch is a maporder fixture: the stochastic-scheduler
// planner derives preemption decisions from hashed (seed, cpu, tick)
// coordinates, newly inside the analyzer's internal/stoch scope. A map
// walk feeding those decisions reintroduces per-run nondeterminism.
package stoch

import "sort"

// BadQuanta derives per-CPU quanta straight from the config map: the
// assignment order changes per run, flagged.
func BadQuanta(quanta map[int]int64, arm func(int, int64)) {
	for cpu, q := range quanta { // want `range over map quanta`
		arm(cpu, q)
	}
}

// GoodQuanta collects CPU ids and sorts them before arming: the
// blessed collect-then-sort idiom.
func GoodQuanta(quanta map[int]int64, arm func(int, int64)) {
	cpus := make([]int, 0, len(quanta))
	for cpu := range quanta {
		cpus = append(cpus, cpu)
	}
	sort.Ints(cpus)
	for _, cpu := range cpus {
		arm(cpu, quanta[cpu])
	}
}
