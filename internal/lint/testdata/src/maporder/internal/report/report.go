// Package report is a maporder fixture: the report renderer promises
// byte-identical artifacts, so its import path is inside the analyzer's
// internal/report scope.
package report

import (
	"fmt"
	"sort"
)

// BadArtifactListing writes file names straight out of the map: the
// listing order would change run to run, flagged.
func BadArtifactListing(files map[string][]byte, emit func(string)) {
	for name := range files { // want `range over map files`
		emit(name)
	}
}

// GoodArtifactListing collects and sorts before rendering: the blessed
// idiom, accepted without annotation.
func GoodArtifactListing(files map[string][]byte, emit func(string)) {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, n := range names {
		emit(n)
	}
}

// BadLegendRender walks the series color map while emitting SVG: flagged.
func BadLegendRender(colors map[string]string, emit func(string)) {
	for series, color := range colors { // want `range over map colors`
		emit(fmt.Sprintf("%s=%s", series, color))
	}
}
