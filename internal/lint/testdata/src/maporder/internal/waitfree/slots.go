// Package waitfree is a maporder fixture: per-slot helper state walked
// in map order leaks randomness into the help schedule, newly inside
// the analyzer's internal/waitfree scope.
package waitfree

// BadHelpAll visits announced operations in map order: flagged.
func BadHelpAll(announced map[int]func(), help func(int)) {
	for slot := range announced { // want `range over map announced`
		help(slot)
	}
}
