// Package sim is a maporder fixture: its import path puts it inside the
// analyzer's internal/sim scope.
package sim

import "sort"

// Bad iterates a map directly: flagged.
func Bad(counts map[string]int) int {
	total := 0
	for _, v := range counts { // want `range over map counts`
		total += v
	}
	return total
}

// BadKeys iterates keys without sorting: flagged.
func BadKeys(counts map[string]int, emit func(string)) {
	for k := range counts { // want `range over map counts`
		emit(k)
	}
}

// GoodCollectThenSort appends keys and sorts them afterwards: the
// blessed idiom, accepted without annotation.
func GoodCollectThenSort(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodCollectValuesThenSortLater also sorts further down the function.
func GoodCollectValuesThenSortLater(counts map[string]int) []int {
	var vals []int
	for _, v := range counts {
		vals = append(vals, v)
	}
	if len(vals) > 1 {
		sort.Ints(vals)
	}
	return vals
}

// GoodSliceRange ranges over a slice: never flagged.
func GoodSliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// BadCollectNoSort collects but never sorts: flagged.
func BadCollectNoSort(counts map[string]int) []string {
	var keys []string
	for k := range counts { // want `range over map counts`
		keys = append(keys, k)
	}
	return keys
}
