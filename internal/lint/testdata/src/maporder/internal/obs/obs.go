// Package obs is a maporder fixture: the streaming pipeline folds live
// runs into the same rendered artifacts the batch path produces, newly
// inside the analyzer's internal/obs scope. A map walk feeding a fold
// or a progress line makes the streamed digest diverge between runs.
package obs

import "sort"

// BadFold flushes per-task live counts straight from the map: the
// emission order changes per run, flagged.
func BadFold(live map[int]int64, emit func(int, int64)) {
	for task, n := range live { // want `range over map live`
		emit(task, n)
	}
}

// GoodFold collects task ids and sorts them before emitting: the
// blessed collect-then-sort idiom.
func GoodFold(live map[int]int64, emit func(int, int64)) {
	tasks := make([]int, 0, len(live))
	for task := range live {
		tasks = append(tasks, task)
	}
	sort.Ints(tasks)
	for _, task := range tasks {
		emit(task, live[task])
	}
}
