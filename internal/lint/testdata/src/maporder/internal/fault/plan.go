// Package fault is a maporder fixture: the fault planner expands
// scenario maps into injection schedules, newly inside the analyzer's
// internal/fault scope.
package fault

import "sort"

// BadExpand emits injection events straight from the scenario map: the
// schedule order changes per run, flagged.
func BadExpand(scenarios map[string]int, inject func(string, int)) {
	for name, at := range scenarios { // want `range over map scenarios`
		inject(name, at)
	}
}

// GoodExpand collects scenario names and sorts them before emitting:
// the blessed collect-then-sort idiom.
func GoodExpand(scenarios map[string]int, inject func(string, int)) {
	names := make([]string, 0, len(scenarios))
	for name := range scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		inject(name, scenarios[name])
	}
}
