// Package hist is a maporder fixture one directory below the declared
// internal/metrics scope: pathHasSegments matches segment runs, so the
// nested histogram package inherits the parent scope with no extra
// configuration.
package hist

// BadBucketDump renders per-bucket counts in map order: flagged even
// though the package path is internal/metrics/hist, not internal/metrics.
func BadBucketDump(counts map[int64]int64, emit func(int64, int64)) {
	for hi, n := range counts { // want `range over map counts`
		emit(hi, n)
	}
}
