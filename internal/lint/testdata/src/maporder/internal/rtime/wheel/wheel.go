// Package wheel is a maporder fixture: the timing-wheel package joined
// the analyzer's scope in PR 6 because a map walk over pending timers
// would emit expiries in randomized order and break the engines'
// byte-identical event sequences.
package wheel

import "sort"

// Bad drains a bucket map directly: flagged.
func Bad(buckets map[int64][]int, fire func(int)) {
	for _, ids := range buckets { // want `range over map buckets`
		for _, id := range ids {
			fire(id)
		}
	}
}

// GoodSortedTicks collects the due ticks and sorts before firing: the
// blessed idiom, accepted without annotation.
func GoodSortedTicks(buckets map[int64][]int, fire func(int)) {
	ticks := make([]int64, 0, len(buckets))
	for t := range buckets {
		ticks = append(ticks, t)
	}
	sort.Slice(ticks, func(a, b int) bool { return ticks[a] < ticks[b] })
	for _, t := range ticks {
		for _, id := range buckets[t] {
			fire(id)
		}
	}
}

// GoodLevelScan ranges over the wheel's level array, not a map: never
// flagged — the real wheel keeps per-level slot slices exactly so no
// map order can leak into pop order.
func GoodLevelScan(levels [][]int, fire func(int)) {
	for _, slot := range levels {
		for _, id := range slot {
			fire(id)
		}
	}
}
