// Package trace is a maporder fixture: the observability layer renders
// event tallies and track inventories, so its import path is inside the
// analyzer's internal/trace scope.
package trace

import (
	"fmt"
	"sort"
)

// BadSummary renders a per-kind tally straight from the map: flagged.
func BadSummary(counts map[string]int, emit func(string)) {
	for k, n := range counts { // want `range over map counts`
		emit(fmt.Sprintf("%s=%d", k, n))
	}
}

// GoodTrackInventory collects track ids and sorts them before any
// rendering: the blessed idiom, accepted without annotation.
func GoodTrackInventory(tracks map[int]bool) []int {
	out := make([]int, 0, len(tracks))
	for id := range tracks {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// BadOpenSlices walks open slices in map order to close them: flagged.
func BadOpenSlices(open map[int]string, close func(int)) {
	for cpu := range open { // want `range over map open`
		close(cpu)
	}
}
