package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Atomicalign flags legacy 64-bit sync/atomic calls on struct fields
// that a 32-bit target cannot guarantee 8-byte aligned. On 386/arm, the
// compiler only promises 64-bit alignment for the first word of an
// allocated struct, so atomic.AddInt64(&s.counter, 1) faults or tears
// when counter sits at a non-multiple-of-8 offset. The paper's platform
// is exactly this class of embedded target, so the check runs over all
// of internal/. The fix is structural: move the 64-bit word to the
// front of the struct, or use atomic.Int64/atomic.Uint64, whose
// alignment the runtime guarantees regardless of position (which is why
// typed atomics are exempt here).
var Atomicalign = &analysis.Analyzer{
	Name: "atomicalign",
	Doc: "flags legacy 64-bit sync/atomic calls on struct fields not 8-byte aligned under " +
		"32-bit layout; move the field first or use the atomic.Int64 family",
	Run: runAtomicalign,
}

func runAtomicalign(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path(), []string{"internal"}) {
		return nil, nil
	}
	sizes := types.SizesFor("gc", "386")
	if sizes == nil {
		sizes = &types.StdSizes{WordSize: 4, MaxAlign: 4}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := calleePkgFunc(pass.TypesInfo, call)
			if !ok || path != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			if !strings.HasSuffix(name, "Int64") && !strings.HasSuffix(name, "Uint64") {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pass.TypesInfo.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			off, owner, ok := fieldOffset32(sizes, s)
			if !ok || off%8 == 0 {
				return true
			}
			suggest := "Int64"
			if strings.HasSuffix(name, "Uint64") {
				suggest = "Uint64"
			}
			pass.Reportf(un.Pos(), "atomic.%s on %s: field %s sits at offset %d in %s under 32-bit layout, "+
				"so 64-bit atomic access is misaligned; move it to the front of the struct or use atomic.%s",
				name, types.ExprString(un.X), s.Obj().Name(), off, owner, suggest)
			return true
		})
	}
	return nil, nil
}

// fieldOffset32 computes the selected field's byte offset within its
// receiver struct under the given (32-bit) size model, following the
// selection's embedded-field path. owner names the receiver struct type
// for the diagnostic.
func fieldOffset32(sizes types.Sizes, s *types.Selection) (offset int64, owner string, ok bool) {
	t := s.Recv()
	if p, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
		t = p.Elem()
	}
	owner = types.TypeString(t, func(p *types.Package) string { return p.Name() })
	for _, idx := range s.Index() {
		st, isStruct := t.Underlying().(*types.Struct)
		if !isStruct {
			return 0, "", false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offs := sizes.Offsetsof(fields)
		offset += offs[idx]
		t = st.Field(idx).Type()
	}
	return offset, owner, true
}
