package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathHasSegments reports whether the slash-separated import path
// contains want as a run of consecutive segments, so "internal/sim"
// matches both "repro/internal/sim" and a fixture's
// "maporder/internal/sim" but not "repro/internal/simulator".
func pathHasSegments(path, want string) bool {
	segs := strings.Split(path, "/")
	wantSegs := strings.Split(want, "/")
	for i := 0; i+len(wantSegs) <= len(segs); i++ {
		match := true
		for j, w := range wantSegs {
			if segs[i+j] != w {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// inScope reports whether the package path matches any of the scoped
// segment runs.
func inScope(path string, scopes []string) bool {
	for _, s := range scopes {
		if pathHasSegments(path, s) {
			return true
		}
	}
	return false
}

// calleePkgFunc resolves a call of the form pkgname.Func(...) to the
// imported package's path and the function name. It returns ok=false
// for method calls, locally defined functions, and anything else.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	// Generic instantiations appear as IndexExpr/IndexListExpr around
	// the selector; the repo's analyzers only need the plain form plus
	// runner.Map[T], so unwrap one level of index.
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// selectedField resolves sel to the struct field it denotes, or nil.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// namedIn reports whether t (after unwrapping aliases) is a named type
// called name whose package import path contains the pkgSegs segments.
func namedIn(t types.Type, name, pkgSegs string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && pathHasSegments(obj.Pkg().Path(), pkgSegs)
}

// rootIdent unwraps selectors, index expressions, parens, stars, and
// slice expressions down to the leftmost identifier, e.g. the "cfg" in
// cfg.Tasks[i].Segments. Returns nil when the root is not an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// enclosingFunc walks up the parent map from n to the nearest function
// body (FuncDecl or FuncLit) and returns that body, or nil at file scope.
func enclosingFunc(parents map[ast.Node]ast.Node, n ast.Node) *ast.BlockStmt {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		switch f := cur.(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}
