package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Sharedtask flags closures handed to the parallel engine
// (runner.Map / runner.ForEach) that capture a *task.Task or
// []*task.Task without a Clone/CloneAll anywhere in the data flow.
// Parallel sweep workers may only share task values read-only; a
// captured live task that one run mutates (arrival state, segments)
// while another reads is exactly the cross-run coupling that breaks the
// byte-identical -jobs N guarantee, and the race detector only sees it
// when a test gets lucky.
//
// The analyzer accepts a capture when either the captured variable was
// built from a Clone()/CloneAll() call in the enclosing function, or
// the closure body clones the value before using it.
var Sharedtask = &analysis.Analyzer{
	Name: "sharedtask",
	Doc: "flags *task.Task / []*task.Task captured by closures passed to runner.Map/ForEach " +
		"without Clone/CloneAll in the data flow",
	Run: runSharedtask,
}

func runSharedtask(pass *analysis.Pass) (any, error) {
	parents := parentMap(pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := calleePkgFunc(pass.TypesInfo, call)
			if !ok || !pathHasSegments(path, "internal/runner") || (name != "Map" && name != "ForEach") {
				return true
			}
			var lit *ast.FuncLit
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					lit = fl
				}
			}
			if lit == nil {
				return true
			}
			for _, cap := range taskCaptures(pass.TypesInfo, lit) {
				if clonedBeforeCapture(pass.TypesInfo, parents, call, cap.obj) || clonedInside(pass.TypesInfo, lit, cap.obj) {
					continue
				}
				pass.Reportf(cap.use.Pos(), "%s %q captured by closure passed to runner.%s without Clone/CloneAll; "+
					"parallel runs must not share mutable tasks",
					types.TypeString(cap.obj.Type(), types.RelativeTo(pass.Pkg)), cap.obj.Name(), name)
			}
			return true
		})
	}
	return nil, nil
}

// capture is one free variable of task type used inside a closure.
type capture struct {
	obj *types.Var
	use *ast.Ident // first use inside the closure
}

// taskCaptures returns the closure's free variables whose type contains
// *task.Task, in order of first use.
func taskCaptures(info *types.Info, lit *ast.FuncLit) []capture {
	seen := map[*types.Var]bool{}
	var out []capture
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Free variable: declared entirely outside the literal.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		if !containsTaskPtr(v.Type(), 0) {
			return true
		}
		seen[v] = true
		out = append(out, capture{obj: v, use: id})
		return true
	})
	return out
}

// containsTaskPtr reports whether t is *task.Task or a slice/array/map
// (of slices/...) of it, unwrapping a few levels.
func containsTaskPtr(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Pointer:
		if namedIn(u.Elem(), "Task", "internal/task") {
			return true
		}
		return containsTaskPtr(u.Elem(), depth+1)
	case *types.Slice:
		return containsTaskPtr(u.Elem(), depth+1)
	case *types.Array:
		return containsTaskPtr(u.Elem(), depth+1)
	case *types.Map:
		return containsTaskPtr(u.Elem(), depth+1)
	}
	return false
}

// isCloneCall reports whether call invokes something named Clone or
// CloneAll (method or function).
func isCloneCall(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name == "Clone" || fn.Sel.Name == "CloneAll"
	case *ast.Ident:
		return fn.Name == "Clone" || fn.Name == "CloneAll"
	}
	return false
}

// clonedBeforeCapture reports whether, in the function enclosing the
// runner call, the captured variable is assigned from an expression
// containing a Clone/CloneAll call before the call.
func clonedBeforeCapture(info *types.Info, parents map[ast.Node]ast.Node, at ast.Node, obj *types.Var) bool {
	body := enclosingFunc(parents, at)
	if body == nil {
		return false
	}
	cloned := false
	ast.Inspect(body, func(n ast.Node) bool {
		if cloned || (n != nil && n.Pos() > at.Pos()) {
			return false
		}
		var lhs []ast.Expr
		var rhs []ast.Expr
		switch s := n.(type) {
		case *ast.AssignStmt:
			lhs, rhs = s.Lhs, s.Rhs
		case *ast.ValueSpec:
			for _, name := range s.Names {
				lhs = append(lhs, name)
			}
			rhs = s.Values
		default:
			return true
		}
		for _, l := range lhs {
			id := rootIdent(l)
			if id == nil || (info.Uses[id] != obj && info.Defs[id] != obj) {
				continue
			}
			for _, r := range rhs {
				ast.Inspect(r, func(rn ast.Node) bool {
					if c, ok := rn.(*ast.CallExpr); ok && isCloneCall(c) {
						cloned = true
					}
					return !cloned
				})
			}
		}
		return !cloned
	})
	return cloned
}

// clonedInside reports whether the closure body itself clones the
// captured variable, either as a receiver (t.Clone()) or as an
// argument (task.CloneAll(templates[i])).
func clonedInside(info *types.Info, lit *ast.FuncLit, obj *types.Var) bool {
	mentions := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == types.Object(obj) {
				found = true
			}
			return !found
		})
		return found
	}
	cloned := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isCloneCall(call) {
			return !cloned
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && mentions(sel.X) {
			cloned = true
		}
		for _, arg := range call.Args {
			if mentions(arg) {
				cloned = true
			}
		}
		return !cloned
	})
	return cloned
}
