package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// Callgraph is the shared call-structure pass: it resolves every call
// expression in the package to its static target where one exists and
// records the rest as dynamic sites. It reports nothing itself; fact
// computing analyzers (noalloc today) list it in Requires and walk its
// result for transitive reachability. Method callees are normalized to
// their generic origin, so edges into instantiated generics land on the
// object the defining package exported facts for.
var Callgraph = &analysis.Analyzer{
	Name: "callgraph",
	Doc: "internal: resolves static call edges and dynamic call sites per function " +
		"for whole-program analyzers to walk",
	Run: runCallgraph,
}

// Call is one statically resolved call site.
type Call struct {
	Pos    token.Pos
	Callee *types.Func // generic origin for instantiated functions/methods
}

// FuncInfo is the call structure of one declared function or method.
type FuncInfo struct {
	Decl    *ast.FuncDecl
	Calls   []Call      // statically resolved targets, in source order
	Dynamic []token.Pos // calls through func values or interface methods
}

// CallGraph maps every function declared in the package (including
// methods) to its call structure. Calls inside closure literals are
// attributed to the enclosing declaration: creating the closure is the
// enclosing function's act, and its body runs with the same obligations.
type CallGraph struct {
	Funcs map[*types.Func]*FuncInfo
}

// SortedFuncs returns the graph's functions in source-position order,
// for deterministic iteration.
func (g *CallGraph) SortedFuncs() []*types.Func {
	out := make([]*types.Func, 0, len(g.Funcs))
	for fn := range g.Funcs {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

func runCallgraph(pass *analysis.Pass) (any, error) {
	g := &CallGraph{Funcs: map[*types.Func]*FuncInfo{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &FuncInfo{Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee, kind := staticCallee(pass.TypesInfo, call)
				switch kind {
				case calleeStatic:
					info.Calls = append(info.Calls, Call{Pos: call.Lparen, Callee: callee.Origin()})
				case calleeDynamic:
					info.Dynamic = append(info.Dynamic, call.Lparen)
				}
				return true
			})
			g.Funcs[fn] = info
		}
	}
	return g, nil
}

type calleeKind int

const (
	calleeStatic  calleeKind = iota // a known function or concrete method
	calleeDynamic                   // func value or interface method
	calleeNone                      // builtin or type conversion: not a call edge
)

// staticCallee resolves the target of a call expression.
func staticCallee(info *types.Info, call *ast.CallExpr) (*types.Func, calleeKind) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation wraps the callee in an index expression.
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(x.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(x.X)
	}
	switch x := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[x].(type) {
		case *types.Func:
			return obj, calleeStatic
		case *types.Builtin, *types.TypeName:
			return nil, calleeNone
		default:
			return nil, calleeDynamic // func-typed variable
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				fn := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					return nil, calleeDynamic
				}
				return fn, calleeStatic
			default: // field of func type, method expression
				return nil, calleeDynamic
			}
		}
		// Qualified identifier: pkg.F or a type conversion pkg.T(x).
		switch obj := info.Uses[x.Sel].(type) {
		case *types.Func:
			return obj, calleeStatic
		case *types.TypeName:
			return nil, calleeNone
		default:
			return nil, calleeDynamic
		}
	default:
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return nil, calleeNone // conversion like ([]byte)(s)
		}
		return nil, calleeDynamic // immediately-invoked literal, etc.
	}
}
