package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// maporderScope is where map iteration order can leak into rendered
// tables, metrics, or scheduling decisions.
var maporderScope = []string{
	"internal/sim", "internal/gsim", "internal/rua", "internal/sched",
	"internal/experiment", "internal/metrics", "internal/analysis", "internal/multi",
	"internal/trace", "internal/report", "internal/rtime",
	// The fault planner expands scenario maps into injection schedules,
	// and the wait-free helpers publish per-slot state: map-order leaks
	// in either change the event sequence between runs.
	"internal/fault", "internal/waitfree",
	// The stochastic-scheduler planner hashes (seed, cpu, tick) into
	// preemption decisions; a map walk feeding those decisions would
	// reintroduce the nondeterminism the hash exists to exclude.
	"internal/stoch",
	// The streaming pipeline folds live runs into the same rendered
	// artifacts the batch path produces; a map walk there would make the
	// streamed digest diverge from the batch one between runs.
	"internal/obs",
	// The serving daemon's conformance contract is byte-identity with
	// the batch CLI: a map walk feeding an artifact listing, an event
	// feed, or a canonical spec rendering would break it per run.
	"internal/serve",
}

// Maporder flags `range` over a map in the simulator and experiment
// packages. Go randomizes map iteration order per run, so any map walk
// whose side effects reach output, charged-operation counts, or
// scheduling decisions silently breaks the byte-identical-runs
// guarantee. The one blessed idiom is collect-then-sort: a loop that
// only appends keys/values to a slice which is sorted (sort.* or
// slices.*) later in the same function is accepted without annotation.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags range over a map in deterministic simulator/experiment code; " +
		"iterate a sorted key slice instead, or collect-then-sort (accepted automatically)",
	Run: runMaporder,
}

func runMaporder(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path(), maporderScope) {
		return nil, nil
	}
	parents := parentMap(pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectThenSort(pass.TypesInfo, parents, rs) {
				return true
			}
			pass.Reportf(rs.For, "range over map %s: iteration order is randomized per run; "+
				"iterate sorted keys, or sort the collected result in this function",
				types.ExprString(rs.X))
			return true
		})
	}
	return nil, nil
}

// collectThenSort recognizes the blessed deterministic idiom: every
// statement of the loop body either appends to one slice variable or is
// a sort.*/slices.* call, and a later statement in the enclosing
// function sorts that slice.
func collectThenSort(info *types.Info, parents map[ast.Node]ast.Node, rs *ast.RangeStmt) bool {
	var target types.Object
	for _, stmt := range rs.Body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			// Exactly `x = append(x, ...)` (or x := append(x, ...)).
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			lhs, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				return false
			}
			obj := info.Uses[lhs]
			if obj == nil {
				obj = info.Defs[lhs]
			}
			if obj == nil || (target != nil && target != obj) {
				return false
			}
			target = obj
		case *ast.ExprStmt:
			// Normalization inside the body (e.g. sort.Ints(g)) is fine.
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			if !isSortCall(info, call) {
				return false
			}
		default:
			return false
		}
	}
	if target == nil {
		return false
	}

	// Find the loop's statement position in its enclosing block and look
	// for a sort of the target after it, anywhere down the function.
	body := enclosingFunc(parents, rs)
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if !isSortCall(info, call) || len(call.Args) == 0 {
			return true
		}
		if id := rootIdent(call.Args[0]); id != nil && (info.Uses[id] == target || info.Defs[id] == target) {
			sorted = true
		}
		return true
	})
	return sorted
}

// isSortCall reports whether call invokes anything in sort or slices.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	path, _, ok := calleePkgFunc(info, call)
	return ok && (path == "sort" || path == "slices")
}
