package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// casloopScope is the code built on compare-and-swap retry: the
// lock-free containers, the wait-free constructions layered on them,
// and the lock-object protocol.
var casloopScope = []string{
	"internal/lockfree", "internal/waitfree", "internal/lockobj",
}

// Casloop checks that CAS retry loops can actually make progress. A
// CompareAndSwap whose expected value is loaded once outside the loop
// spins forever after the first lost race: the retry re-runs the CAS
// with the same stale expectation. The analyzer requires every CAS
// inside a for loop to derive its expected value from an atomic read of
// the same location inside some enclosing loop (constants and nil are
// exempt — re-expecting them is deliberate). For the legacy
// sync/atomic.CompareAndSwapX form it additionally flags plain,
// non-atomic reads of the CAS'd word inside the loop: branching on a
// racy read defeats the published/observed protocol the CAS encodes.
var Casloop = &analysis.Analyzer{
	Name: "casloop",
	Doc: "flags CAS retry loops that never re-load their expected value inside the loop, " +
		"and non-atomic reads of the CAS'd word in legacy sync/atomic retry loops",
	Run: runCasloop,
}

func runCasloop(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path(), casloopScope) {
		return nil, nil
	}
	parents := parentMap(pass.Files)
	info := pass.TypesInfo

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			cas, ok := casTarget(info, call)
			if !ok {
				return true
			}
			loops := enclosingLoops(parents, call)
			if len(loops) == 0 {
				return true // single-shot CAS: failing once and giving up is a valid protocol
			}
			if !expectedIsFresh(info, cas) && !anyLoopReloads(info, loops, cas.loc, call) {
				pass.Reportf(call.Pos(), "CAS retry loop never re-loads %s: the expected value %s is stale "+
					"after the first lost race, so the loop cannot make progress; "+
					"re-read the location atomically inside the loop",
					cas.loc, types.ExprString(cas.expected))
			}
			if cas.legacyField != nil {
				reportPlainReads(pass, parents, loops[0], cas, call)
			}
			return true
		})
	}
	return nil, nil
}

// casCall is one recognized compare-and-swap site.
type casCall struct {
	loc      string   // canonical spelling of the swapped location
	expected ast.Expr // the value the CAS compares against
	// legacyField is the struct field behind a sync/atomic.CompareAndSwapX
	// call, nil for the typed-atomic method form (plain access to a typed
	// atomic cannot typecheck, so only the legacy form needs rule 2).
	legacyField *types.Var
}

// casTarget recognizes both CAS spellings: the typed
// x.CompareAndSwap(old, new) method and the legacy
// atomic.CompareAndSwapX(&x, old, new) function.
func casTarget(info *types.Info, call *ast.CallExpr) (casCall, bool) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "CompareAndSwap" && len(call.Args) == 2 {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal && isAtomicType(s.Recv()) {
			return casCall{loc: types.ExprString(sel.X), expected: call.Args[0]}, true
		}
	}
	if path, name, ok := calleePkgFunc(info, call); ok && path == "sync/atomic" &&
		strings.HasPrefix(name, "CompareAndSwap") && len(call.Args) == 3 {
		if un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && un.Op == token.AND {
			c := casCall{loc: types.ExprString(un.X), expected: call.Args[1]}
			if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
				c.legacyField = selectedField(info, sel)
			}
			return c, true
		}
	}
	return casCall{}, false
}

// expectedIsFresh reports whether the CAS's expected value needs no
// in-loop re-load: a constant, nil, or an atomic load of the swapped
// location performed right in the argument.
func expectedIsFresh(info *types.Info, cas casCall) bool {
	e := ast.Unparen(cas.expected)
	if tv, ok := info.Types[e]; ok && (tv.Value != nil || tv.IsNil()) {
		return true
	}
	if call, ok := e.(*ast.CallExpr); ok {
		return isAtomicReadOf(info, call, cas.loc)
	}
	return false
}

// enclosingLoops returns the for/range statements around n, innermost
// first, up to the enclosing function declaration. Loops outside a
// closure still count: a retry loop may hoist its re-load one level up
// (the labeled continue-retry shape), and the load need only be
// somewhere on the repeated path.
func enclosingLoops(parents map[ast.Node]ast.Node, n ast.Node) []ast.Node {
	var out []ast.Node
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		switch cur.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			out = append(out, cur)
		case *ast.FuncDecl:
			return out
		}
	}
	return out
}

// anyLoopReloads reports whether some enclosing loop body contains an
// atomic read of loc besides the CAS itself.
func anyLoopReloads(info *types.Info, loops []ast.Node, loc string, cas *ast.CallExpr) bool {
	for _, loop := range loops {
		found := false
		ast.Inspect(loop, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call == cas {
				return true
			}
			if isAtomicReadOf(info, call, loc) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isAtomicReadOf reports whether call is an atomic operation that
// returns the current value of loc: a Load/Swap/Add/And/Or method on
// the typed atomic, or the corresponding legacy function on &loc.
func isAtomicReadOf(info *types.Info, call *ast.CallExpr, loc string) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Load", "Swap", "Add", "And", "Or":
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal &&
				isAtomicType(s.Recv()) && types.ExprString(sel.X) == loc {
				return true
			}
		}
	}
	path, name, ok := calleePkgFunc(info, call)
	if !ok || path != "sync/atomic" || len(call.Args) == 0 {
		return false
	}
	switch {
	case strings.HasPrefix(name, "Load"), strings.HasPrefix(name, "Swap"),
		strings.HasPrefix(name, "Add"), strings.HasPrefix(name, "And"), strings.HasPrefix(name, "Or"):
		if un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && un.Op == token.AND {
			return types.ExprString(un.X) == loc
		}
	}
	return false
}

// reportPlainReads flags selector accesses to the legacy CAS'd field
// inside the innermost retry loop that do not go through sync/atomic.
func reportPlainReads(pass *analysis.Pass, parents map[ast.Node]ast.Node, loop ast.Node, cas casCall, casNode *ast.CallExpr) {
	info := pass.TypesInfo
	ast.Inspect(loop, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || selectedField(info, sel) != cas.legacyField {
			return true
		}
		if isLegacyAtomicArg(info, parents, sel) {
			return true
		}
		pass.Reportf(sel.Pos(), "non-atomic read of %s inside its CAS retry loop: the CAS'd word "+
			"must only be observed through sync/atomic, or the loop branches on a racy value",
			types.ExprString(sel))
		return true
	})
}

// isLegacyAtomicArg reports whether sel occurs as &sel passed directly
// to a sync/atomic function.
func isLegacyAtomicArg(info *types.Info, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	un, ok := parents[sel].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	call, ok := parents[un].(*ast.CallExpr)
	if !ok {
		return false
	}
	path, _, ok := calleePkgFunc(info, call)
	return ok && path == "sync/atomic"
}
