// Package analysistest runs one rtlint analyzer over fixture packages
// and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest:
//
//	for k := range m { // want `range over map`
//
// Each `// want` comment carries one or more quoted or backquoted
// regular expressions; every diagnostic reported on that line must
// match one of them, and every expectation must be consumed by a
// diagnostic. Fixtures live in a GOPATH-style tree (testdata/src) so
// package paths can place them inside or outside an analyzer's scope
// (e.g. maporder/internal/sim vs maporder/notscoped).
//
// Diagnostics pass through the real rtlint driver, so //rtlint:ignore
// directives suppress findings in fixtures exactly as they do in the
// repo, and malformed directives surface as "rtlint" diagnostics that
// fixtures can want-match.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// expectation is one regexp from a // want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture packages beneath srcRoot and checks the
// analyzer's diagnostics (after //rtlint:ignore processing) against
// their // want comments.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	pkgs, err := loader.Load(loader.Config{Dir: srcRoot, Mode: loader.Tree}, pkgPaths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("%s: running %s: %v", pkg.Path, a.Name, err)
		}
		wants, err := parseWants(pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !consume(wants, pos, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s: %s", pkg.Path, pos, d.Message)
			}
		}
		for _, w := range wants {
			if !w.hit {
				t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none",
					pkg.Path, w.re, w.file, w.line)
			}
		}
	}
}

// consume marks the first unhit expectation on the diagnostic's line
// that matches its message.
func consume(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// parseWants extracts the // want expectations from every comment in
// the package.
func parseWants(pkg *loader.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parsePatterns(c.Text[idx+len("// want "):])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, re := range res {
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// parsePatterns reads a sequence of "double-quoted" or `backquoted`
// regular expressions.
func parsePatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		var lit string
		switch s[0] {
		case '"':
			end := strings.Index(s[1:], `"`)
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", s)
			}
			var err error
			lit, err = strconv.Unquote(s[:end+2])
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %q: %v", s[:end+2], err)
			}
			s = s[end+2:]
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", s)
			}
			lit = s[1 : end+1]
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted, got %q", s)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", lit, err)
		}
		out = append(out, re)
	}
}
