package lint

import "testing"

func TestPathHasSegments(t *testing.T) {
	cases := []struct {
		path, want string
		ok         bool
	}{
		{"repro/internal/sim", "internal/sim", true},
		{"maporder/internal/sim", "internal/sim", true},
		{"repro/internal/simulator", "internal/sim", false},
		{"repro/internal/lint/analysis", "internal/analysis", false},
		{"repro/internal/analysis", "internal/analysis", true},
		{"internal/sim", "internal/sim", true},
		{"sim", "internal/sim", false},
		{"repro/internal/runner", "internal/runner", true},
	}
	for _, c := range cases {
		if got := pathHasSegments(c.path, c.want); got != c.ok {
			t.Errorf("pathHasSegments(%q, %q) = %v, want %v", c.path, c.want, got, c.ok)
		}
	}
}

func TestAllAnalyzersNamedAndDocumented(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 5 {
		t.Errorf("expected at least 5 analyzers, got %d", len(seen))
	}
}
