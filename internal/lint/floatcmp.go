package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// floatcmpScope is where accrued-utility sums, ratios, and normalized
// metrics live; exact float equality there either encodes a hidden
// assumption ("this sum is exactly 0.0") or silently stops firing after
// an unrelated reordering changes rounding.
var floatcmpScope = []string{
	"internal/metrics", "internal/analysis", "internal/experiment", "internal/report",
	// The scheduler's PUD ordering and the timing wheel's tick maths are
	// scheduling decisions: exact float equality there changes event
	// sequences when rounding shifts.
	"internal/rua", "internal/rtime",
	// Fault-injection probabilities and wait-free progress ratios are
	// compared against thresholds; exact equality there flips plans when
	// rounding drifts.
	"internal/fault", "internal/waitfree",
	// The stochastic scheduler compares hashed uniforms against pick
	// probabilities, and the throughput predictor fits float models:
	// exact equality in either flips decisions on rounding drift.
	"internal/stoch", "internal/metrics/predict",
	// The streaming pipeline surfaces quantiles and rates in progress
	// lines and snapshots; exact float equality there would flip output
	// on rounding drift.
	"internal/obs",
	// The serving daemon canonicalizes client specs carrying fault and
	// scheduler probabilities; exact float equality there would split or
	// merge cache lines on rounding drift.
	"internal/serve",
}

// Floatcmp flags == and != between floating-point operands in the
// metrics/analysis/experiment packages. The NaN self-test idiom
// (x != x) is accepted. Deliberate exact comparisons — e.g. against a
// sentinel the code itself assigned — should be annotated with
// //rtlint:ignore floatcmp <why exactness holds>.
var Floatcmp = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "flags ==/!= on float operands in utility/ratio code; compare with an epsilon " +
		"or annotate why exactness holds",
	Run: runFloatcmp,
}

func runFloatcmp(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path(), floatcmpScope) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo, be.X) && !isFloat(pass.TypesInfo, be.Y) {
				return true
			}
			// Both sides constant: evaluated exactly at compile time.
			if isConst(pass.TypesInfo, be.X) && isConst(pass.TypesInfo, be.Y) {
				return true
			}
			// NaN test: x != x (or x == x) on the same expression.
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "float comparison %s %s %s: exact equality on computed floats "+
				"is order-of-operations dependent; use an epsilon or annotate why exactness holds",
				types.ExprString(be.X), be.Op, types.ExprString(be.Y))
			return true
		})
	}
	return nil, nil
}

// isFloat reports whether e's type is (an alias/named wrapper of) a
// float32/float64.
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConst reports whether e is a compile-time constant expression.
func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
