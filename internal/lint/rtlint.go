// Package lint is rtlint: a suite of repo-specific static analyzers
// that mechanically enforce the invariants the reproduction's
// event-sequence claims rest on — byte-identical output for any -jobs N,
// no wall clock or stray randomness in the virtual-time world, a single
// access discipline per atomic field, no shared mutable *task.Task
// across parallel runs, and no raw float equality in utility/ratio code.
//
// Each analyzer is a plain function over one type-checked package (see
// the sibling analysis package, a minimal offline mirror of
// golang.org/x/tools/go/analysis). Findings can be suppressed, one
// statement at a time, with a justified directive either on the
// flagged line or the line above:
//
//	//rtlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive naming an unknown analyzer, or carrying no reason, is
// itself a finding — suppressions must stay auditable.
package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// All returns the rtlint analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Atomicmix,
		Floatcmp,
		Maporder,
		Sharedtask,
		Simclock,
	}
}

// byName resolves an analyzer name against the full registry (not just
// the analyzers being run), so //rtlint:ignore directives are validated
// the same way under the multichecker and under single-analyzer tests.
func byName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ignoreDirective is one parsed //rtlint:ignore comment.
type ignoreDirective struct {
	pos       token.Pos
	line      int
	file      string
	analyzers []string
	reason    string
}

// Run executes the analyzers over one loaded package and returns the
// surviving diagnostics in position order: analyzer findings minus
// those suppressed by a well-formed //rtlint:ignore on the same or the
// preceding line, plus one diagnostic per malformed directive.
func Run(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}

	directives, bad := parseDirectives(pkg)
	diags = append(diags, bad...)

	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer == directiveAnalyzer || !suppressed(pkg.Fset, d, directives) {
			kept = append(kept, d)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// directiveAnalyzer attributes malformed-directive findings; it is not
// a runnable analyzer and cannot be suppressed.
const directiveAnalyzer = "rtlint"

// parseDirectives extracts //rtlint:ignore comments from every file of
// the package, returning the well-formed ones and a diagnostic for each
// malformed one.
func parseDirectives(pkg *loader.Package) ([]ignoreDirective, []analysis.Diagnostic) {
	var out []ignoreDirective
	var bad []analysis.Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//rtlint:ignore")
				if !ok {
					continue
				}
				// Reasons stop at an embedded "// want" so analysistest
				// fixtures can state expectations on directive lines.
				if i := strings.Index(text, "// want"); i >= 0 {
					text = text[:i]
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					bad = append(bad, analysis.Diagnostic{Pos: c.Pos(), Analyzer: directiveAnalyzer,
						Message: "rtlint:ignore directive needs an analyzer name and a reason"})
					continue
				}
				names := strings.Split(fields[0], ",")
				reason := strings.Join(fields[1:], " ")
				valid := true
				for _, n := range names {
					if byName(n) == nil {
						bad = append(bad, analysis.Diagnostic{Pos: c.Pos(), Analyzer: directiveAnalyzer,
							Message: "rtlint:ignore names unknown analyzer " + strconv.Quote(n)})
						valid = false
					}
				}
				if reason == "" {
					bad = append(bad, analysis.Diagnostic{Pos: c.Pos(), Analyzer: directiveAnalyzer,
						Message: "rtlint:ignore requires a reason after the analyzer name"})
					valid = false
				}
				if !valid {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				out = append(out, ignoreDirective{
					pos: c.Pos(), line: position.Line, file: position.Filename,
					analyzers: names, reason: reason,
				})
			}
		}
	}
	return out, bad
}

// suppressed reports whether a directive covers the diagnostic: same
// file, naming the diagnostic's analyzer, on the same line (trailing
// comment) or the line immediately above (standalone comment).
func suppressed(fset *token.FileSet, d analysis.Diagnostic, directives []ignoreDirective) bool {
	pos := fset.Position(d.Pos)
	for _, dir := range directives {
		if dir.file != pos.Filename || (dir.line != pos.Line && dir.line+1 != pos.Line) {
			continue
		}
		for _, name := range dir.analyzers {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// parentMap records the parent of every node reachable from the files'
// roots; analyzers use it to inspect the context an expression occurs in.
func parentMap(files []*ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return parents
}
