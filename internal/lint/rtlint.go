// Package lint is rtlint: a suite of repo-specific static analyzers
// that mechanically enforce the invariants the reproduction's
// event-sequence claims rest on — byte-identical output for any -jobs N,
// no wall clock or stray randomness in the virtual-time world, a single
// access discipline per atomic field, no shared mutable *task.Task
// across parallel runs, no raw float equality in utility/ratio code,
// CAS retry loops that actually re-read, 64-bit atomics that stay
// aligned on 32-bit targets, and statically allocation-free hot paths
// (//rtlint:noalloc).
//
// Each analyzer is a plain function over one type-checked package (see
// the sibling analysis package, a minimal offline mirror of
// golang.org/x/tools/go/analysis). The driver is whole-program: it runs
// analyzers over a package's in-root dependencies before the package
// itself, so analyzers can export facts on objects (functions, fields)
// in the defining package and read them back in importers — that is how
// noalloc proves transitive allocation-freedom across package
// boundaries. A shared callgraph pass (see callgraph.go) provides the
// static call edges fact-computing analyzers walk.
//
// Findings can be suppressed, one statement at a time, with a justified
// directive either on the flagged line or the line above:
//
//	//rtlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive naming an unknown analyzer, or carrying no reason, is
// itself a finding — suppressions must stay auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// All returns the rtlint analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Atomicalign,
		Atomicmix,
		Casloop,
		Floatcmp,
		Maporder,
		Noalloc,
		Sharedtask,
		Simclock,
	}
}

// byName resolves an analyzer name against the full registry (not just
// the analyzers being run), so //rtlint:ignore directives are validated
// the same way under the multichecker and under single-analyzer tests.
func byName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ignoreDirective is one parsed //rtlint:ignore comment.
type ignoreDirective struct {
	pos       token.Pos
	line      int
	file      string
	analyzers []string
	reason    string
}

// PkgDiagnostics pairs one requested package with its surviving
// diagnostics, in position order.
type PkgDiagnostics struct {
	Pkg   *loader.Package
	Diags []analysis.Diagnostic
}

// actionKey identifies one (package, analyzer) unit of work.
type actionKey struct {
	path string
	an   *analysis.Analyzer
}

// driver executes analyzers over a package graph: for every analyzer,
// dependencies run before importers (facts flow forward), and an
// analyzer's Requires run on the same package first (results flow
// through Pass.ResultOf). Work is memoized per (package, analyzer), so
// a shared dependency is analyzed once no matter how many importers
// request it.
type driver struct {
	facts   map[types.Object][]analysis.Fact
	results map[actionKey]any
	ran     map[actionKey]bool
	running map[actionKey]bool
	diags   map[string][]analysis.Diagnostic
}

func newDriver() *driver {
	return &driver{
		facts:   map[types.Object][]analysis.Fact{},
		results: map[actionKey]any{},
		ran:     map[actionKey]bool{},
		running: map[actionKey]bool{},
		diags:   map[string][]analysis.Diagnostic{},
	}
}

func (d *driver) run(pkg *loader.Package, a *analysis.Analyzer) (any, error) {
	key := actionKey{pkg.Path, a}
	if d.ran[key] {
		return d.results[key], nil
	}
	if d.running[key] {
		return nil, fmt.Errorf("lint: analyzer requirement cycle through %q on %s", a.Name, pkg.Path)
	}
	d.running[key] = true
	defer delete(d.running, key)

	// Dependencies first, so facts this analyzer exported there are
	// importable here.
	for _, dep := range pkg.Imports {
		if _, err := d.run(dep, a); err != nil {
			return nil, err
		}
	}
	resultOf := map[*analysis.Analyzer]any{}
	for _, req := range a.Requires {
		r, err := d.run(pkg, req)
		if err != nil {
			return nil, err
		}
		resultOf[req] = r
	}

	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		ResultOf:  resultOf,
	}
	pass.SetFactStore(d.facts)
	pass.Report = func(diag analysis.Diagnostic) {
		d.diags[pkg.Path] = append(d.diags[pkg.Path], diag)
	}
	res, err := a.Run(pass)
	if err != nil {
		return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
	}
	d.results[key] = res
	d.ran[key] = true
	return res, nil
}

// RunAll executes the analyzers over the requested packages and every
// transitive in-root dependency (dependencies first, facts threaded
// through), then returns each requested package's surviving diagnostics
// in position order: analyzer findings minus those suppressed by a
// well-formed //rtlint:ignore on the same or the preceding line, plus
// one diagnostic per malformed directive. Diagnostics reported while
// analyzing a dependency surface only if that dependency was itself
// requested.
func RunAll(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]PkgDiagnostics, error) {
	d := newDriver()
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if _, err := d.run(pkg, a); err != nil {
				return nil, err
			}
		}
	}

	var out []PkgDiagnostics
	for _, pkg := range pkgs {
		diags := append([]analysis.Diagnostic(nil), d.diags[pkg.Path]...)
		directives, bad := parseDirectives(pkg.Fset, pkg.Files)
		diags = append(diags, bad...)

		kept := diags[:0]
		for _, diag := range diags {
			if diag.Analyzer == directiveAnalyzer || !suppressed(pkg.Fset, diag, directives) {
				kept = append(kept, diag)
			}
		}
		sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
		out = append(out, PkgDiagnostics{Pkg: pkg, Diags: kept})
	}
	return out, nil
}

// Run executes the analyzers over one loaded package (and, for fact
// computation, its dependency closure) and returns the surviving
// diagnostics. It is RunAll for a single package.
func Run(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	res, err := RunAll([]*loader.Package{pkg}, analyzers)
	if err != nil {
		return nil, err
	}
	return res[0].Diags, nil
}

// directiveAnalyzer attributes malformed-directive findings; it is not
// a runnable analyzer and cannot be suppressed.
const directiveAnalyzer = "rtlint"

// ignorePrefix introduces a suppression directive.
const ignorePrefix = "//rtlint:ignore"

// parseIgnoreText parses the remainder of an //rtlint:ignore comment
// (everything after the prefix): a comma-separated analyzer-name list
// followed by a free-text reason. Reasons stop at an embedded "// want"
// so analysistest fixtures can state expectations on directive lines.
// The returned problems are diagnostic messages; a directive with any
// problem suppresses nothing. Analyzer names are NOT validated against
// the registry here — this function is the pure, fuzzable core (see
// FuzzIgnoreDirective) and the caller layers registry validation on top.
func parseIgnoreText(text string) (names []string, reason string, problems []string) {
	if i := strings.Index(text, "// want"); i >= 0 {
		text = text[:i]
	}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return nil, "", []string{"rtlint:ignore directive needs an analyzer name and a reason"}
	}
	names = strings.Split(fields[0], ",")
	for _, n := range names {
		if n == "" {
			problems = append(problems, "rtlint:ignore has an empty analyzer name")
		}
	}
	reason = strings.Join(fields[1:], " ")
	if reason == "" {
		problems = append(problems, "rtlint:ignore requires a reason after the analyzer name")
	}
	if len(problems) > 0 {
		return nil, "", problems
	}
	return names, reason, nil
}

// parseDirectives extracts //rtlint:ignore comments from the files,
// returning the well-formed ones and a diagnostic for each malformed
// one (bad syntax via parseIgnoreText, or an unknown analyzer name).
func parseDirectives(fset *token.FileSet, files []*ast.File) ([]ignoreDirective, []analysis.Diagnostic) {
	var out []ignoreDirective
	var bad []analysis.Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				names, reason, problems := parseIgnoreText(text)
				valid := len(problems) == 0
				for _, msg := range problems {
					bad = append(bad, analysis.Diagnostic{Pos: c.Pos(), Analyzer: directiveAnalyzer, Message: msg})
				}
				for _, n := range names {
					if byName(n) == nil {
						bad = append(bad, analysis.Diagnostic{Pos: c.Pos(), Analyzer: directiveAnalyzer,
							Message: "rtlint:ignore names unknown analyzer " + strconv.Quote(n)})
						valid = false
					}
				}
				if !valid {
					continue
				}
				position := fset.Position(c.Pos())
				out = append(out, ignoreDirective{
					pos: c.Pos(), line: position.Line, file: position.Filename,
					analyzers: names, reason: reason,
				})
			}
		}
	}
	return out, bad
}

// suppressed reports whether a directive covers the diagnostic: same
// file, naming the diagnostic's analyzer, on the same line (trailing
// comment) or the line immediately above (standalone comment).
func suppressed(fset *token.FileSet, d analysis.Diagnostic, directives []ignoreDirective) bool {
	pos := fset.Position(d.Pos)
	for _, dir := range directives {
		if dir.file != pos.Filename || (dir.line != pos.Line && dir.line+1 != pos.Line) {
			continue
		}
		for _, name := range dir.analyzers {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// ignoredLines returns, per file name, the set of lines carrying a
// well-formed //rtlint:ignore that names the given analyzer. Fact
// computation uses this to exclude justified sites from exported facts:
// a suppression must silence the finding both where it is reported and
// where it would otherwise propagate from.
func ignoredLines(fset *token.FileSet, files []*ast.File, analyzer string) map[string]map[int]bool {
	directives, _ := parseDirectives(fset, files)
	out := map[string]map[int]bool{}
	for _, dir := range directives {
		named := false
		for _, n := range dir.analyzers {
			if n == analyzer {
				named = true
				break
			}
		}
		if !named {
			continue
		}
		m := out[dir.file]
		if m == nil {
			m = map[int]bool{}
			out[dir.file] = m
		}
		m[dir.line] = true
		m[dir.line+1] = true
	}
	return out
}

// parentMap records the parent of every node reachable from the files'
// roots; analyzers use it to inspect the context an expression occurs in.
func parentMap(files []*ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return parents
}
