// Package loader parses and type-checks Go packages for rtlint without
// any dependency outside the standard library. It understands two
// layouts:
//
//   - Module: cfg.Dir holds a go.mod; import paths under the module path
//     resolve to subdirectories (this is how cmd/rtlint loads the repo).
//   - Tree: import paths are directory paths relative to cfg.Dir (this
//     is how analysistest loads testdata/src fixtures, GOPATH-style).
//
// Anything that is neither is resolved through the standard library's
// source importer, which type-checks GOROOT packages from source and
// therefore works in a fully offline build environment.
//
// Only non-test files are loaded: rtlint's invariants are about the
// simulator and its experiment pipeline, and tests are free to use wall
// clocks, unsorted maps, and ad-hoc randomness.
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Mode selects how import paths map to directories under Config.Dir.
type Mode int

const (
	// Module resolves import paths against the module path declared in
	// Config.Dir's go.mod.
	Module Mode = iota
	// Tree resolves import paths as directories relative to Config.Dir.
	Tree
)

// Config describes the root of the code to load.
type Config struct {
	Dir  string
	Mode Mode
}

// Package is one parsed, type-checked package.
type Package struct {
	Path      string // import path
	Dir       string // directory holding the sources
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// Imports are the package's direct in-root dependencies, sorted by
	// path. Standard-library imports are not listed: whole-program
	// drivers use this to run analyzers over dependencies before
	// importers so exported facts flow forward.
	Imports []*Package
}

type ldr struct {
	cfg     Config
	fset    *token.FileSet
	modpath string // module path ("" in Tree mode)
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
	errs    []string
}

// Load parses and type-checks the packages matching patterns. Patterns
// follow the go tool's shape: "./..." (everything under Dir), "./x/..."
// (everything under x), or "./x" (exactly x). Type errors in any
// matched package (or its intra-root dependencies) fail the whole load.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	abs, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	cfg.Dir = abs
	ld := &ldr{
		cfg:     cfg,
		fset:    token.NewFileSet(),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil).(types.ImporterFrom)
	if cfg.Mode == Module {
		ld.modpath, err = modulePath(filepath.Join(cfg.Dir, "go.mod"))
		if err != nil {
			return nil, err
		}
	}

	rels, err := ld.match(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, rel := range rels {
		p, err := ld.load(ld.pathFor(rel))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(ld.errs) > 0 {
		return nil, fmt.Errorf("loader: type errors:\n  %s", strings.Join(ld.errs, "\n  "))
	}
	return out, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("loader: no module directive in %s", gomod)
}

// pathFor converts a root-relative directory to an import path.
func (ld *ldr) pathFor(rel string) string {
	rel = filepath.ToSlash(rel)
	if ld.cfg.Mode == Tree {
		return rel
	}
	if rel == "." {
		return ld.modpath
	}
	return ld.modpath + "/" + rel
}

// dirFor is pathFor's inverse: nil if path is outside the root.
func (ld *ldr) dirFor(path string) (string, bool) {
	switch ld.cfg.Mode {
	case Module:
		if path == ld.modpath {
			return ld.cfg.Dir, true
		}
		if rest, ok := strings.CutPrefix(path, ld.modpath+"/"); ok {
			return filepath.Join(ld.cfg.Dir, filepath.FromSlash(rest)), true
		}
		return "", false
	default:
		dir := filepath.Join(ld.cfg.Dir, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
}

// match expands patterns into root-relative package directories, in
// sorted order.
func (ld *ldr) match(patterns []string) ([]string, error) {
	all, err := ld.walk()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	for _, pat := range patterns {
		pat = filepath.ToSlash(strings.TrimPrefix(pat, "./"))
		if pat == "" {
			pat = "."
		}
		matched := false
		for _, rel := range all {
			ok := false
			switch {
			case pat == "...":
				ok = true
			case strings.HasSuffix(pat, "/..."):
				base := strings.TrimSuffix(pat, "/...")
				ok = rel == base || strings.HasPrefix(rel, base+"/")
			default:
				ok = rel == pat
			}
			if ok && !seen[rel] {
				seen[rel] = true
				out = append(out, rel)
			}
			matched = matched || ok
		}
		if !matched {
			return nil, fmt.Errorf("loader: pattern %q matched no packages", pat)
		}
	}
	sort.Strings(out)
	return out, nil
}

// walk lists every root-relative directory containing at least one
// non-test Go file, skipping testdata, hidden, and underscore dirs.
func (ld *ldr) walk() ([]string, error) {
	var out []string
	err := filepath.WalkDir(ld.cfg.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != ld.cfg.Dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(ld.cfg.Dir, filepath.Dir(path))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if len(out) == 0 || out[len(out)-1] != rel {
			out = append(out, rel)
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// Import implements types.Importer for the package being checked.
func (ld *ldr) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, ld.cfg.Dir, 0)
}

// ImportFrom implements types.ImporterFrom. In-root paths are loaded
// (and type-checked) recursively; everything else goes to the standard
// library source importer.
func (ld *ldr) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if _, ok := ld.dirFor(path); ok {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return ld.std.ImportFrom(path, dir, mode)
}

// load parses and type-checks one in-root package, memoized by path.
func (ld *ldr) load(path string) (*Package, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir, ok := ld.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("loader: %q is outside the load root", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: ld,
		Error: func(err error) {
			ld.errs = append(ld.errs, err.Error())
		},
	}
	tpkg, _ := conf.Check(path, ld.fset, files, info) // errors collected in ld.errs
	p := &Package{Path: path, Dir: dir, Fset: ld.fset, Files: files, Types: tpkg, TypesInfo: info}
	// Checking the package pulled its dependencies through ImportFrom,
	// so every in-root import is already memoized; link them up.
	seen := map[string]bool{}
	for _, f := range files {
		for _, spec := range f.Imports {
			ip := strings.Trim(spec.Path.Value, `"`)
			if dep, ok := ld.pkgs[ip]; ok && !seen[ip] {
				seen[ip] = true
				p.Imports = append(p.Imports, dep)
			}
		}
	}
	sort.Slice(p.Imports, func(i, j int) bool { return p.Imports[i].Path < p.Imports[j].Path })
	ld.pkgs[path] = p
	return p, nil
}
