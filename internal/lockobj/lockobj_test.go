package lockobj

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int]()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty queue dequeued")
	}
	for i := 0; i < 5; i++ {
		q.Enqueue(i)
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 5; i++ {
		if v, ok := q.Dequeue(); !ok || v != i {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
}

func TestQueueConcurrent(t *testing.T) {
	q := NewQueue[int]()
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(g*per + i)
			}
		}(g)
	}
	wg.Wait()
	seen := map[int]bool{}
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("dup %d", v)
		}
		seen[v] = true
	}
	if len(seen) != goroutines*per {
		t.Fatalf("got %d values", len(seen))
	}
	if q.Blockings() < 0 {
		t.Fatal("negative blockings")
	}
}

func TestStackLIFO(t *testing.T) {
	var s Stack[int]
	if _, ok := s.Pop(); ok {
		t.Fatal("empty stack popped")
	}
	s.Push(1)
	s.Push(2)
	if v, ok := s.Peek(); !ok || v != 2 {
		t.Fatalf("Peek = (%d,%v)", v, ok)
	}
	if v, _ := s.Pop(); v != 2 {
		t.Fatalf("Pop = %d, want 2", v)
	}
	if v, _ := s.Pop(); v != 1 {
		t.Fatalf("Pop = %d, want 1", v)
	}
	if s.Len() != 0 {
		t.Fatal("not empty")
	}
}

func TestRegister(t *testing.T) {
	r := NewRegister(5)
	if v, ver := r.Read(); v != 5 || ver != 0 {
		t.Fatalf("Read = (%d,%d)", v, ver)
	}
	r.Write(7)
	r.Update(func(v int) int { return v * 3 })
	if v, ver := r.Read(); v != 21 || ver != 2 {
		t.Fatalf("Read = (%d,%d), want (21,2)", v, ver)
	}
}

func TestRegisterConcurrentIncrements(t *testing.T) {
	r := NewRegister(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Update(func(v int) int { return v + 1 })
			}
		}()
	}
	wg.Wait()
	if v, _ := r.Read(); v != 16000 {
		t.Fatalf("value = %d, want 16000", v)
	}
}

func TestListSetSemantics(t *testing.T) {
	l := NewList()
	if !l.Insert(4) || l.Insert(4) {
		t.Fatal("insert semantics wrong")
	}
	l.Insert(2)
	l.Insert(9)
	keys := l.Keys()
	want := []int64{2, 4, 9}
	for i, k := range want {
		if keys[i] != k {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
	if !l.Delete(4) || l.Delete(4) || l.Contains(4) {
		t.Fatal("delete semantics wrong")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestRing(t *testing.T) {
	if _, err := NewRing[int](0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	r, err := NewRing[int](3) // non-power-of-two is fine for the mutex ring
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !r.Offer(i) {
			t.Fatalf("Offer %d failed", i)
		}
	}
	if r.Offer(9) {
		t.Fatal("full ring accepted")
	}
	for i := 0; i < 3; i++ {
		if v, ok := r.Poll(); !ok || v != i {
			t.Fatalf("Poll = (%d,%v)", v, ok)
		}
	}
	if _, ok := r.Poll(); ok {
		t.Fatal("empty ring polled")
	}
	if r.Cap() != 3 {
		t.Fatalf("Cap = %d", r.Cap())
	}
}

// Property: the mutex list matches a model set (same test as the
// lock-free one — the two implementations must be observationally
// equivalent single-threaded).
func TestQuickListMatchesModelSet(t *testing.T) {
	f := func(ops []int8) bool {
		l := NewList()
		model := map[int64]bool{}
		for _, op := range ops {
			k := int64(op % 16)
			if op >= 0 {
				want := !model[k]
				if l.Insert(k) != want {
					return false
				}
				model[k] = true
			} else {
				want := model[k]
				if l.Delete(k) != want {
					return false
				}
				delete(model, k)
			}
		}
		return l.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: mutex ring behaves like a bounded model FIFO.
func TestQuickRingMatchesModel(t *testing.T) {
	f := func(capRaw uint8, ops []int16) bool {
		capacity := int(capRaw%7) + 1
		r, err := NewRing[int16](capacity)
		if err != nil {
			return false
		}
		var model []int16
		for _, op := range ops {
			if op >= 0 {
				want := len(model) < capacity
				if r.Offer(op) != want {
					return false
				}
				if want {
					model = append(model, op)
				}
			} else {
				v, ok := r.Poll()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		return r.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
