// Package lockobj provides mutex-based counterparts to the lock-free
// objects in internal/lockfree, with identical method sets. They exist
// for the apples-to-apples access-time comparison of the paper's Fig 8:
// the same workload driven through a lock-based object measures r, and
// through the lock-free twin measures s. Blocking episodes (lock
// acquisitions that had to wait) are counted, mirroring the retry
// counters on the lock-free side.
package lockobj

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Queue is a mutex-protected FIFO queue.
type Queue[T any] struct {
	mu     sync.Mutex
	items  []T
	blocks atomic.Int64
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

func (q *Queue[T]) lock() {
	if !q.mu.TryLock() {
		q.blocks.Add(1)
		q.mu.Lock()
	}
}

// Enqueue appends v to the tail.
func (q *Queue[T]) Enqueue(v T) {
	q.lock()
	defer q.mu.Unlock()
	q.items = append(q.items, v)
}

// Dequeue removes and returns the head element; ok is false when empty.
func (q *Queue[T]) Dequeue() (v T, ok bool) {
	q.lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of elements.
func (q *Queue[T]) Len() int {
	q.lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Blockings returns how many operations had to wait for the lock.
func (q *Queue[T]) Blockings() int64 { return q.blocks.Load() }

// Stack is a mutex-protected LIFO stack.
type Stack[T any] struct {
	mu     sync.Mutex
	items  []T
	blocks atomic.Int64
}

func (s *Stack[T]) lock() {
	if !s.mu.TryLock() {
		s.blocks.Add(1)
		s.mu.Lock()
	}
}

// Push adds v on top.
func (s *Stack[T]) Push(v T) {
	s.lock()
	defer s.mu.Unlock()
	s.items = append(s.items, v)
}

// Pop removes and returns the top element; ok is false when empty.
func (s *Stack[T]) Pop() (v T, ok bool) {
	s.lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		var zero T
		return zero, false
	}
	v = s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return v, true
}

// Peek returns the top element without removing it.
func (s *Stack[T]) Peek() (v T, ok bool) {
	s.lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		var zero T
		return zero, false
	}
	return s.items[len(s.items)-1], true
}

// Len returns the number of elements.
func (s *Stack[T]) Len() int {
	s.lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Blockings returns how many operations had to wait for the lock.
func (s *Stack[T]) Blockings() int64 { return s.blocks.Load() }

// Register is a mutex-protected value cell with versioning.
type Register[T any] struct {
	mu     sync.Mutex
	val    T
	ver    uint64
	blocks atomic.Int64
}

// NewRegister returns a register holding initial.
func NewRegister[T any](initial T) *Register[T] {
	return &Register[T]{val: initial}
}

func (r *Register[T]) lock() {
	if !r.mu.TryLock() {
		r.blocks.Add(1)
		r.mu.Lock()
	}
}

// Read returns the current value and version.
func (r *Register[T]) Read() (T, uint64) {
	r.lock()
	defer r.mu.Unlock()
	return r.val, r.ver
}

// Write installs v and returns the new version.
func (r *Register[T]) Write(v T) uint64 {
	r.lock()
	defer r.mu.Unlock()
	r.val = v
	r.ver++
	return r.ver
}

// Update applies f to the current value under the lock.
func (r *Register[T]) Update(f func(T) T) uint64 {
	r.lock()
	defer r.mu.Unlock()
	r.val = f(r.val)
	r.ver++
	return r.ver
}

// Blockings returns how many operations had to wait for the lock.
func (r *Register[T]) Blockings() int64 { return r.blocks.Load() }

// List is a mutex-protected sorted set of int64 keys.
type List struct {
	mu     sync.Mutex
	keys   []int64
	blocks atomic.Int64
}

// NewList returns an empty set.
func NewList() *List { return &List{} }

func (l *List) lock() {
	if !l.mu.TryLock() {
		l.blocks.Add(1)
		l.mu.Lock()
	}
}

func (l *List) find(key int64) int {
	lo, hi := 0, len(l.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds key; it reports false if already present.
func (l *List) Insert(key int64) bool {
	l.lock()
	defer l.mu.Unlock()
	i := l.find(key)
	if i < len(l.keys) && l.keys[i] == key {
		return false
	}
	l.keys = append(l.keys, 0)
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = key
	return true
}

// Delete removes key; it reports false if absent.
func (l *List) Delete(key int64) bool {
	l.lock()
	defer l.mu.Unlock()
	i := l.find(key)
	if i >= len(l.keys) || l.keys[i] != key {
		return false
	}
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	return true
}

// Contains reports whether key is present.
func (l *List) Contains(key int64) bool {
	l.lock()
	defer l.mu.Unlock()
	i := l.find(key)
	return i < len(l.keys) && l.keys[i] == key
}

// Keys returns a copy of the keys in ascending order.
func (l *List) Keys() []int64 {
	l.lock()
	defer l.mu.Unlock()
	out := make([]int64, len(l.keys))
	copy(out, l.keys)
	return out
}

// Len returns the number of keys.
func (l *List) Len() int {
	l.lock()
	defer l.mu.Unlock()
	return len(l.keys)
}

// Blockings returns how many operations had to wait for the lock.
func (l *List) Blockings() int64 { return l.blocks.Load() }

// Ring is a mutex-protected bounded FIFO, counterpart to lockfree.Ring.
type Ring[T any] struct {
	mu     sync.Mutex
	buf    []T
	head   int
	n      int
	blocks atomic.Int64
}

// NewRing returns a ring with the given capacity (any positive size).
func NewRing[T any](capacity int) (*Ring[T], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("lockobj: ring capacity %d must be positive", capacity)
	}
	return &Ring[T]{buf: make([]T, capacity)}, nil
}

func (r *Ring[T]) lock() {
	if !r.mu.TryLock() {
		r.blocks.Add(1)
		r.mu.Lock()
	}
}

// Offer appends v; it reports false when full.
func (r *Ring[T]) Offer(v T) bool {
	r.lock()
	defer r.mu.Unlock()
	if r.n == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
	return true
}

// Poll removes the oldest element; ok is false when empty.
func (r *Ring[T]) Poll() (v T, ok bool) {
	r.lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		var zero T
		return zero, false
	}
	v = r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v, true
}

// Len returns the number of buffered elements.
func (r *Ring[T]) Len() int {
	r.lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Blockings returns how many operations had to wait for the lock.
func (r *Ring[T]) Blockings() int64 { return r.blocks.Load() }
