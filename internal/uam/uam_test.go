package uam

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rtime"
)

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{L: 1, A: 1, W: 100}, {L: 0, A: 1, W: 100}, {L: 2, A: 5, W: 1000},
		{L: 5, A: 5, W: 1}, {L: 1, A: 1, W: 100, Phase: 99},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%v should be valid: %v", s, err)
		}
	}
	bad := []Spec{
		{L: 1, A: 1, W: 0}, {L: 1, A: 1, W: -5}, {L: 1, A: 0, W: 100},
		{L: -1, A: 1, W: 100}, {L: 3, A: 2, W: 100},
		{L: 1, A: 1, W: 100, Phase: 100}, {L: 1, A: 1, W: 100, Phase: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%v should be invalid, got %v", s, err)
		}
	}
}

func TestSpecialCases(t *testing.T) {
	p := Periodic(250)
	if p.L != 1 || p.A != 1 || p.W != 250 {
		t.Fatalf("Periodic = %v", p)
	}
	sp := Sporadic(250)
	if sp.L != 0 || sp.A != 1 || sp.W != 250 {
		t.Fatalf("Sporadic = %v", sp)
	}
	if p.String() != "<1,1,250us>" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestMaxMinArrivalsIn(t *testing.T) {
	s := Spec{L: 1, A: 3, W: 100}
	cases := []struct {
		d        rtime.Duration
		max, min int64
	}{
		{-1, 0, 0},
		{0, 3, 0},   // ceil(0)=0 → a·1
		{1, 6, 0},   // ceil = 1 → a·2
		{100, 6, 1}, // ceil = 1 → a·2; floor = 1
		{101, 9, 1}, // ceil = 2 → a·3
		{250, 9, 2}, // ceil = 3 → a·4 = 12? ceil(250/100)=3 → 3·4=12
	}
	// fix the last row: ceil(250/100)=3 → a(3+1)=12, floor=2
	cases[5].max = 12
	for _, c := range cases {
		if got := s.MaxArrivalsIn(c.d); got != c.max {
			t.Errorf("MaxArrivalsIn(%d) = %d, want %d", c.d, got, c.max)
		}
		if got := s.MinArrivalsIn(c.d); got != c.min {
			t.Errorf("MinArrivalsIn(%d) = %d, want %d", c.d, got, c.min)
		}
	}
}

func TestPeriodicMatchesClassicBound(t *testing.T) {
	// For the periodic special case ⟨1,1,W⟩, MaxArrivalsIn(d) must match
	// the classic ⌈d/W⌉+1 release-count bound used by Anderson et al.
	s := Periodic(100)
	for _, d := range []rtime.Duration{1, 50, 100, 150, 1000} {
		want := rtime.CeilDiv(d, 100) + 1
		if got := s.MaxArrivalsIn(d); got != want {
			t.Errorf("periodic MaxArrivalsIn(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestCheckTraceAcceptsValid(t *testing.T) {
	s := Spec{L: 0, A: 2, W: 100}
	tr := Trace{0, 10, 150, 160, 300}
	if err := CheckTrace(s, tr, 1000); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestCheckTraceRejectsBurstOverflow(t *testing.T) {
	s := Spec{L: 0, A: 2, W: 100}
	tr := Trace{0, 10, 20}
	if err := CheckTrace(s, tr, 1000); !errors.Is(err, ErrInvalid) {
		t.Fatalf("overflowing trace accepted: %v", err)
	}
}

func TestCheckTraceRejectsSlidingViolation(t *testing.T) {
	// Windows [0,100) and [100,200) each hold ≤ 2, but [90,190) holds 3.
	s := Spec{L: 0, A: 2, W: 100}
	tr := Trace{0, 90, 110, 189}
	if err := CheckTrace(s, tr, 1000); !errors.Is(err, ErrInvalid) {
		t.Fatalf("sliding violation accepted: %v", err)
	}
}

func TestCheckTraceRejectsStarvation(t *testing.T) {
	s := Spec{L: 1, A: 2, W: 100}
	tr := Trace{0, 250} // window [1,101) is empty
	if err := CheckTrace(s, tr, 400); !errors.Is(err, ErrInvalid) {
		t.Fatalf("starving trace accepted: %v", err)
	}
}

func TestCheckTraceRejectsUnsorted(t *testing.T) {
	s := Spec{L: 0, A: 5, W: 100}
	if err := CheckTrace(s, Trace{50, 10}, 1000); !errors.Is(err, ErrInvalid) {
		t.Fatal("unsorted trace accepted")
	}
}

func TestCheckTraceRejectsOutOfHorizon(t *testing.T) {
	s := Spec{L: 0, A: 5, W: 100}
	if err := CheckTrace(s, Trace{2000}, 1000); !errors.Is(err, ErrInvalid) {
		t.Fatal("out-of-horizon arrival accepted")
	}
}

func TestSimultaneousArrivalsAllowed(t *testing.T) {
	s := Spec{L: 0, A: 3, W: 100}
	tr := Trace{50, 50, 50}
	if err := CheckTrace(s, tr, 1000); err != nil {
		t.Fatalf("simultaneous arrivals within a rejected: %v", err)
	}
}

func TestGeneratorsSatisfySpec(t *testing.T) {
	specs := []Spec{
		Periodic(200),
		{L: 0, A: 3, W: 300},
		{L: 1, A: 1, W: 150},
		{L: 2, A: 4, W: 500},
		{L: 4, A: 4, W: 400},
	}
	kinds := []Kind{KindJittered, KindBursty, KindPeriodic}
	const horizon = rtime.Time(50_000)
	for _, s := range specs {
		for _, k := range kinds {
			g, err := NewGenerator(s, 42)
			if err != nil {
				t.Fatal(err)
			}
			tr := g.Generate(k, horizon)
			if len(tr) == 0 {
				t.Errorf("spec %v kind %d: empty trace", s, k)
				continue
			}
			if err := CheckTrace(s, tr, horizon); err != nil {
				t.Errorf("spec %v kind %d: generated trace invalid: %v", s, k, err)
			}
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	s := Spec{L: 1, A: 3, W: 250}
	g1, _ := NewGenerator(s, 7)
	g2, _ := NewGenerator(s, 7)
	tr1 := g1.Generate(KindJittered, 20_000)
	tr2 := g2.Generate(KindJittered, 20_000)
	if len(tr1) != len(tr2) {
		t.Fatalf("lengths differ: %d vs %d", len(tr1), len(tr2))
	}
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, tr1[i], tr2[i])
		}
	}
}

func TestPhaseOffsetsTrace(t *testing.T) {
	// A phased spec must still generate valid traces, and under ⟨1,1,W⟩
	// (where admission forces strict periodicity) the first arrival lands
	// exactly on the phase — this is what desynchronizes the scale
	// workload's clusters.
	const horizon = rtime.Time(50_000)
	for _, phase := range []rtime.Duration{1, 37, 149} {
		s := Spec{L: 1, A: 1, W: 150, Phase: phase}
		for _, k := range []Kind{KindJittered, KindBursty, KindPeriodic} {
			g, err := NewGenerator(s, 42)
			if err != nil {
				t.Fatal(err)
			}
			tr := g.Generate(k, horizon)
			if err := CheckTrace(s, tr, horizon); err != nil {
				t.Fatalf("phase %v kind %d: invalid trace: %v", phase, k, err)
			}
			if len(tr) == 0 || tr[0] != rtime.Time(0).Add(phase) {
				t.Fatalf("phase %v kind %d: first arrival %v, want %v", phase, k, tr[0], phase)
			}
		}
	}
	// Zero phase reproduces the unphased trace tick-for-tick.
	for _, k := range []Kind{KindJittered, KindBursty, KindPeriodic} {
		g0, _ := NewGenerator(Spec{L: 1, A: 2, W: 200}, 7)
		gz, _ := NewGenerator(Spec{L: 1, A: 2, W: 200, Phase: 0}, 7)
		tr0, trz := g0.Generate(k, horizon), gz.Generate(k, horizon)
		if len(tr0) != len(trz) {
			t.Fatalf("kind %d: zero phase changed trace length: %d vs %d", k, len(tr0), len(trz))
		}
		for i := range tr0 {
			if tr0[i] != trz[i] {
				t.Fatalf("kind %d: zero phase diverged at %d: %v vs %v", k, i, tr0[i], trz[i])
			}
		}
	}
}

func TestBurstyHitsMaxBound(t *testing.T) {
	// The bursty adversary should actually achieve bursts of size a.
	s := Spec{L: 0, A: 4, W: 1000}
	g, _ := NewGenerator(s, 1)
	tr := g.Generate(KindBursty, 100_000)
	found := false
	for i := 0; i+3 < len(tr); i++ {
		if tr[i+3].Sub(tr[i]) <= 10 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("bursty generator never produced a tight burst of size a")
	}
}

func TestNewGeneratorRejectsBadSpec(t *testing.T) {
	if _, err := NewGenerator(Spec{L: 2, A: 1, W: 10}, 0); !errors.Is(err, ErrInvalid) {
		t.Fatal("bad spec accepted")
	}
}

func TestMerge(t *testing.T) {
	a := Trace{10, 30}
	b := Trace{10, 20}
	m := Merge([]Trace{a, b})
	want := []Arrival{{10, 0}, {10, 1}, {20, 1}, {30, 0}}
	if len(m) != len(want) {
		t.Fatalf("Merge len = %d, want %d", len(m), len(want))
	}
	for i := range want {
		if m[i] != want[i] {
			t.Errorf("Merge[%d] = %v, want %v", i, m[i], want[i])
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	if got := Merge(nil); len(got) != 0 {
		t.Fatalf("Merge(nil) = %v", got)
	}
	if got := Merge([]Trace{{}, {}}); len(got) != 0 {
		t.Fatalf("Merge(empty) = %v", got)
	}
}

// Property: every generated trace passes CheckTrace and its count over
// the horizon respects the analytic window bounds.
func TestQuickGeneratedTracesValid(t *testing.T) {
	f := func(seed int64, aRaw, lRaw uint8, wRaw uint16, kindRaw uint8) bool {
		a := int(aRaw%5) + 1
		l := int(lRaw) % (a + 1)
		w := rtime.Duration(wRaw%900) + 100
		phase := rtime.Duration(seed%int64(w)+int64(w)) % w // deterministic in [0, w)
		s := Spec{L: l, A: a, W: w, Phase: phase}
		g, err := NewGenerator(s, seed)
		if err != nil {
			return false
		}
		horizon := rtime.Time(20 * w)
		tr := g.Generate(Kind(kindRaw%3), horizon)
		if err := CheckTrace(s, tr, horizon); err != nil {
			t.Logf("spec %v kind %d seed %d: %v", s, kindRaw%3, seed, err)
			return false
		}
		if n := int64(len(tr)); n > s.MaxArrivalsIn(rtime.Duration(horizon)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxArrivalsIn is monotone in d and superadditive-ish:
// bound(d1+d2) ≤ bound(d1)+bound(d2) (window splitting can only help the
// adversary being counted twice).
func TestQuickMaxArrivalsMonotone(t *testing.T) {
	f := func(aRaw uint8, wRaw uint16, d1Raw, d2Raw uint16) bool {
		s := Spec{L: 0, A: int(aRaw%7) + 1, W: rtime.Duration(wRaw%500) + 1}
		d1 := rtime.Duration(d1Raw)
		d2 := rtime.Duration(d2Raw)
		if s.MaxArrivalsIn(d1) > s.MaxArrivalsIn(d1+d2) {
			return false
		}
		return s.MaxArrivalsIn(d1+d2) <= s.MaxArrivalsIn(d1)+s.MaxArrivalsIn(d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanRate(t *testing.T) {
	s := Spec{L: 1, A: 3, W: 100}
	if got := s.MeanRate(); got != 0.02 {
		t.Fatalf("MeanRate = %v, want 0.02", got)
	}
}

func TestStatsBasics(t *testing.T) {
	s := Spec{L: 0, A: 3, W: 100}
	st := Stats(s, Trace{0, 0, 50, 200})
	if st.Count != 4 {
		t.Fatalf("Count = %d", st.Count)
	}
	if st.MinGap != 0 || st.MaxGap != 150 {
		t.Fatalf("gaps = %v..%v", st.MinGap, st.MaxGap)
	}
	if st.SimultaneousPairs != 1 {
		t.Fatalf("simultaneous = %d", st.SimultaneousPairs)
	}
	if st.MaxInWindow != 3 { // {0,0,50} within [0,100)
		t.Fatalf("MaxInWindow = %d", st.MaxInWindow)
	}
	if st.Budget != 3 {
		t.Fatalf("Budget = %d", st.Budget)
	}
	if st.String() == "" || Stats(s, nil).String() != "empty trace" {
		t.Fatal("render")
	}
}

func TestStatsBurstyExercisesBudget(t *testing.T) {
	s := Spec{L: 0, A: 4, W: 500}
	g, _ := NewGenerator(s, 3)
	tr := g.Generate(KindBursty, 50_000)
	st := Stats(s, tr)
	if st.MaxInWindow != s.A {
		t.Fatalf("bursty trace used %d/%d of the window budget", st.MaxInWindow, s.A)
	}
}

// Property: MaxInWindow never exceeds the spec budget on generated
// traces (it is exactly the quantity CheckTrace bounds).
func TestQuickStatsWithinBudget(t *testing.T) {
	f := func(seed int64, aRaw uint8, wRaw uint16, kindRaw uint8) bool {
		s := Spec{L: 0, A: int(aRaw%5) + 1, W: rtime.Duration(wRaw%900) + 50}
		g, err := NewGenerator(s, seed)
		if err != nil {
			return false
		}
		tr := g.Generate(Kind(kindRaw%3), rtime.Time(20*s.W))
		st := Stats(s, tr)
		return st.MaxInWindow <= s.A
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
