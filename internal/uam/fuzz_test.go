package uam

import (
	"testing"

	"repro/internal/rtime"
)

// FuzzGenerateSatisfiesSpec drives the trace generators with fuzzed UAM
// parameters and checks every output against the exact sliding-window
// validator. Run the seeds with `go test`; explore with
// `go test -fuzz=FuzzGenerateSatisfiesSpec ./internal/uam`.
func FuzzGenerateSatisfiesSpec(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(0), uint16(100), uint8(0))
	f.Add(int64(7), uint8(3), uint8(2), uint16(500), uint8(1))
	f.Add(int64(-5), uint8(5), uint8(5), uint16(50), uint8(2))
	f.Add(int64(42), uint8(2), uint8(1), uint16(1000), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, aRaw, lRaw uint8, wRaw uint16, kindRaw uint8) {
		a := int(aRaw%6) + 1
		l := int(lRaw) % (a + 1)
		w := rtime.Duration(wRaw%2000) + 10
		spec := Spec{L: l, A: a, W: w}
		g, err := NewGenerator(spec, seed)
		if err != nil {
			t.Fatalf("valid spec rejected: %v", err)
		}
		horizon := rtime.Time(15 * w)
		tr := g.Generate(Kind(kindRaw%3), horizon)
		if err := CheckTrace(spec, tr, horizon); err != nil {
			t.Fatalf("spec %v kind %d: %v", spec, kindRaw%3, err)
		}
		if got := int64(len(tr)); got > spec.MaxArrivalsIn(rtime.Duration(horizon)) {
			t.Fatalf("trace length %d exceeds analytic max %d", got, spec.MaxArrivalsIn(rtime.Duration(horizon)))
		}
	})
}

// FuzzCheckTraceNoPanic feeds arbitrary (possibly invalid) traces to the
// validator: it must reject or accept, never panic.
func FuzzCheckTraceNoPanic(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, uint8(2), uint16(100))
	f.Add([]byte{255, 0, 9}, uint8(1), uint16(10))
	f.Fuzz(func(t *testing.T, raw []byte, aRaw uint8, wRaw uint16) {
		spec := Spec{L: 0, A: int(aRaw%5) + 1, W: rtime.Duration(wRaw%1000) + 1}
		tr := make(Trace, len(raw))
		for i, b := range raw {
			tr[i] = rtime.Time(int64(b) * 13)
		}
		_ = CheckTrace(spec, tr, 4000) // error or nil, both fine
	})
}
