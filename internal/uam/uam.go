// Package uam implements the unimodal arbitrary arrival model (UAM) of
// Hermant and Le Lann, the arrival "adversary" the paper analyzes.
//
// A task's arrival behaviour is a tuple ⟨l, a, W⟩: during ANY sliding time
// window of length W, the number of job arrivals is at least l and at most
// a. Jobs may arrive simultaneously. The periodic model is the special
// case ⟨1, 1, W⟩; sporadic arrivals with minimum inter-arrival time W are
// ⟨0, 1, W⟩. Because the window slides, UAM is a strictly stronger
// adversary than the common "at most a per period" models: a arrivals may
// cluster at the end of one window and a more at the start of the next,
// giving bursts of up to 2a in ~W time.
//
// The package provides the spec type with the window-counting bounds used
// by Theorem 2 and Lemmas 4–5, admission-checked trace generators (bursty,
// jittered, and periodic), and an exact sliding-window validator.
package uam

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/rtime"
)

// Spec is a UAM arrival specification ⟨l, a, W⟩, optionally with a
// release phase.
type Spec struct {
	L int            // minimal arrivals in any window of length W
	A int            // maximal arrivals in any window of length W
	W rtime.Duration // sliding window length

	// Phase is the task's release offset: generators start the trace at
	// Phase instead of 0, the standard phasing of real-time task models.
	// It must stay within [0, W) so the window at time 0 can still
	// receive its l mandatory arrivals. Without phases every ⟨l,·,·⟩ task
	// is forced to release at time 0 (latestRequired's startup rule),
	// which synchronizes arbitrarily large task sets into one thundering
	// herd; spreading phases keeps the instantaneous backlog proportional
	// to load instead of population. A zero Phase reproduces the
	// unphased traces tick-for-tick.
	Phase rtime.Duration
}

// ErrInvalid reports a malformed UAM specification or trace.
var ErrInvalid = errors.New("uam: invalid")

// Periodic returns the UAM special case ⟨1, 1, W⟩ of a periodic task with
// period W.
func Periodic(w rtime.Duration) Spec { return Spec{L: 1, A: 1, W: w} }

// Sporadic returns ⟨0, 1, W⟩: a minimum inter-arrival separation of W
// with no guaranteed minimum rate.
func Sporadic(w rtime.Duration) Spec { return Spec{L: 0, A: 1, W: w} }

// Validate checks the structural constraints on a spec.
func (s Spec) Validate() error {
	if s.W <= 0 {
		return fmt.Errorf("%w: window %v must be positive", ErrInvalid, s.W)
	}
	if s.A < 1 {
		return fmt.Errorf("%w: a=%d must be ≥ 1", ErrInvalid, s.A)
	}
	if s.L < 0 || s.L > s.A {
		return fmt.Errorf("%w: need 0 ≤ l ≤ a, got l=%d a=%d", ErrInvalid, s.L, s.A)
	}
	if s.Phase < 0 || s.Phase >= s.W {
		return fmt.Errorf("%w: phase %v must lie in [0, W=%v)", ErrInvalid, s.Phase, s.W)
	}
	return nil
}

// String renders the spec as the paper's tuple notation, with the phase
// appended only when one is set.
func (s Spec) String() string {
	if s.Phase != 0 {
		return fmt.Sprintf("<%d,%d,%v>@%v", s.L, s.A, s.W, s.Phase)
	}
	return fmt.Sprintf("<%d,%d,%v>", s.L, s.A, s.W)
}

// MaxArrivalsIn returns the maximum number of arrivals possible in any
// interval of length d: a·(⌈d/W⌉ + 1). This is the window-counting bound
// used throughout Theorem 2's proof — the "+1" accounts for a full burst
// of a arrivals clustered at the very start of the interval, carried over
// from the window that straddles the interval's left edge.
func (s Spec) MaxArrivalsIn(d rtime.Duration) int64 {
	if d < 0 {
		return 0
	}
	return int64(s.A) * (rtime.CeilDiv(d, s.W) + 1)
}

// MinArrivalsIn returns the guaranteed minimum number of arrivals in any
// interval of length d: l·⌊d/W⌋ (Lemma 4's lower bound).
func (s Spec) MinArrivalsIn(d rtime.Duration) int64 {
	if d < 0 {
		return 0
	}
	return int64(s.L) * rtime.FloorDiv(d, s.W)
}

// MeanRate returns the long-run arrival rate in jobs per tick, taking the
// midpoint of [l/W, a/W]. Used by workload generators to size loads.
func (s Spec) MeanRate() float64 {
	return (float64(s.L) + float64(s.A)) / (2 * float64(s.W))
}

// Inflated returns the loosest spec that a conforming trace still obeys
// after adversarial perturbation: each arrival may be delayed by up to
// jitter ticks, and up to extra additional arrivals may be injected at
// each natural arrival instant. The window stays W; the burst bound
// becomes MaxArrivalsIn(W+jitter)·(1+extra), because every arrival
// landing in a window [x, x+W) after delays of ≤ jitter originated in
// [x−jitter, x+W), and each original arrival brings at most extra
// copies. Delays can empty a window, so the minimum bound drops to 0.
// Fault injection uses this to compute the effective ⟨l,a,W⟩ vector
// Theorem 2 is re-checked against when the declared one is violated.
func (s Spec) Inflated(jitter rtime.Duration, extra int) Spec {
	if jitter < 0 {
		jitter = 0
	}
	if extra < 0 {
		extra = 0
	}
	if jitter == 0 && extra == 0 {
		return s
	}
	a := s.MaxArrivalsIn(s.W+jitter) * int64(1+extra)
	return Spec{L: 0, A: int(a), W: s.W, Phase: s.Phase}
}

// Trace is a non-decreasing sequence of arrival instants.
type Trace []rtime.Time

// CheckTrace verifies that a trace obeys the spec over the horizon
// [0, horizon): every sliding window of length W fully inside the horizon
// contains at most A arrivals, and (if l > 0) at least L arrivals. The
// check is exact at tick granularity: the sliding-window count changes
// only at arrival instants, so it suffices to evaluate windows starting
// at 0, at each arrival, and one tick after each arrival.
func CheckTrace(s Spec, tr Trace, horizon rtime.Time) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if !sort.SliceIsSorted(tr, func(i, j int) bool { return tr[i] < tr[j] }) {
		return fmt.Errorf("%w: trace is not sorted", ErrInvalid)
	}
	for _, t := range tr {
		if t < 0 || t >= horizon {
			return fmt.Errorf("%w: arrival %v outside [0, %v)", ErrInvalid, t, horizon)
		}
	}
	// countIn returns |{t ∈ tr : x ≤ t < x+W}|.
	countIn := func(x rtime.Time) int {
		lo := sort.Search(len(tr), func(i int) bool { return tr[i] >= x })
		hi := sort.Search(len(tr), func(i int) bool { return tr[i] >= x.Add(rtime.Duration(s.W)) })
		return hi - lo
	}
	// Max check: the count is maximized by windows starting at arrivals.
	for _, t := range tr {
		if n := countIn(t); n > s.A {
			return fmt.Errorf("%w: window [%v,%v) has %d arrivals > a=%d", ErrInvalid, t, t.Add(s.W), n, s.A)
		}
	}
	// Min check: the count is minimized just after a window start passes an
	// arrival. Only windows fully inside the horizon are constrained.
	if s.L > 0 {
		starts := make([]rtime.Time, 0, len(tr)+1)
		starts = append(starts, 0)
		for _, t := range tr {
			starts = append(starts, t+1)
		}
		for _, x := range starts {
			if x.Add(s.W) > horizon {
				continue
			}
			if n := countIn(x); n < s.L {
				return fmt.Errorf("%w: window [%v,%v) has %d arrivals < l=%d", ErrInvalid, x, x.Add(s.W), n, s.L)
			}
		}
	}
	return nil
}

// Generator produces admission-checked arrival traces for a spec. All
// generators share the admission logic: a candidate arrival is shifted
// later until accepting it keeps every window of the trace within the A
// bound, and a forced arrival is emitted whenever delaying further would
// violate the L bound. The result always satisfies CheckTrace.
type Generator struct {
	Spec Spec
	rng  *rand.Rand

	recent []rtime.Time // arrivals within the last W, oldest first
}

// NewGenerator returns a deterministic generator seeded with seed.
func NewGenerator(s Spec, seed int64) (*Generator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Generator{Spec: s, rng: rand.New(rand.NewSource(seed))}, nil
}

// prune drops recent arrivals older than t-W+1 (outside any window that
// could still contain them together with an arrival at t).
func (g *Generator) prune(t rtime.Time) {
	cut := t.Add(-g.Spec.W) // arrivals ≤ cut are out of the window (cut, t]
	i := 0
	for i < len(g.recent) && g.recent[i] <= cut {
		i++
	}
	g.recent = g.recent[i:]
}

// earliestAdmissible returns the earliest time ≥ t at which one more
// arrival keeps the sliding-window count ≤ A. Two arrivals at u < v
// conflict (share a window of length W) exactly when v − u < W, so the
// blocking A-th most recent arrival stops blocking at blocker + W.
func (g *Generator) earliestAdmissible(t rtime.Time) rtime.Time {
	g.prune(t)
	if len(g.recent) < g.Spec.A {
		return t
	}
	blocker := g.recent[len(g.recent)-g.Spec.A]
	return blocker.Add(g.Spec.W)
}

// latestRequired returns the deadline by which the next arrival must occur
// to preserve the L lower bound, or Infinity if l = 0. If the l-th most
// recent arrival is at time t_k, the window starting at t_k+1 contains
// only l−1 arrivals so far, so a new one must land by t_k + W. During the
// startup phase (< l arrivals so far) the next arrival is due immediately,
// which builds the initial burst of l simultaneous-ish arrivals that any
// ⟨l,·,·⟩ trace needs to cover the window at time 0.
func (g *Generator) latestRequired() rtime.Time {
	if g.Spec.L == 0 {
		return rtime.Infinity
	}
	if len(g.recent) < g.Spec.L {
		if len(g.recent) == 0 {
			return rtime.Time(0).Add(g.Spec.Phase)
		}
		return g.recent[len(g.recent)-1]
	}
	kth := g.recent[len(g.recent)-g.Spec.L]
	return kth.Add(g.Spec.W)
}

// place clamps a candidate arrival to the L-bound deadline, keeps the
// trace non-decreasing, and shifts it to the earliest A-admissible
// instant. All generation strategies funnel through it, so every emitted
// trace satisfies CheckTrace by construction.
func (g *Generator) place(cand rtime.Time) rtime.Time {
	if dl := g.latestRequired(); cand > dl {
		cand = dl
	}
	if n := len(g.recent); n > 0 && cand < g.recent[n-1] {
		cand = g.recent[n-1]
	}
	if cand < 0 {
		cand = 0
	}
	return g.earliestAdmissible(cand)
}

// emit records an arrival.
func (g *Generator) emit(t rtime.Time) rtime.Time {
	g.recent = append(g.recent, t)
	return t
}

// Kind selects a generation strategy.
type Kind int

// Generation strategies.
const (
	// KindJittered spreads arrivals with exponential gaps around the mean
	// rate, clipped by the admission rules. A mid-spectrum adversary.
	KindJittered Kind = iota
	// KindBursty releases a arrivals back-to-back, then idles as long as
	// the L bound allows — the clustering adversary of Theorem 2's proof.
	KindBursty
	// KindPeriodic spaces arrivals evenly at W/a.
	KindPeriodic
)

// Generate produces a trace over [0, horizon) using the given strategy.
func (g *Generator) Generate(kind Kind, horizon rtime.Time) Trace {
	switch kind {
	case KindBursty:
		return g.generateBursty(horizon)
	case KindPeriodic:
		return g.generatePeriodic(horizon)
	default:
		return g.generateJittered(horizon)
	}
}

func (g *Generator) generatePeriodic(horizon rtime.Time) Trace {
	gap := g.Spec.W / rtime.Duration(g.Spec.A)
	if gap <= 0 {
		gap = 1
	}
	var tr Trace
	next := rtime.Time(0).Add(g.Spec.Phase)
	for {
		at := g.place(next)
		if at >= horizon {
			return tr
		}
		tr = append(tr, g.emit(at))
		next = at.Add(gap)
	}
}

func (g *Generator) generateBursty(horizon rtime.Time) Trace {
	var tr Trace
	t := rtime.Time(0).Add(g.Spec.Phase)
	for t < horizon {
		// Burst of up to a arrivals as early as admissible.
		for k := 0; k < g.Spec.A; k++ {
			at := g.place(t)
			if at >= horizon {
				return tr
			}
			tr = append(tr, g.emit(at))
			t = at
		}
		// Idle until the L bound forces the next arrival (or one window).
		next := g.latestRequired()
		if next == rtime.Infinity {
			next = t.Add(g.Spec.W)
		}
		if next <= t {
			next = t + 1
		}
		t = next
	}
	return tr
}

func (g *Generator) generateJittered(horizon rtime.Time) Trace {
	var tr Trace
	mean := 1.0 / g.Spec.MeanRate()
	t := rtime.Time(0).Add(g.Spec.Phase)
	for {
		gap := rtime.Duration(g.rng.ExpFloat64() * mean)
		if gap < 1 {
			gap = 1
		}
		at := g.place(t.Add(gap))
		if at >= horizon {
			return tr
		}
		tr = append(tr, g.emit(at))
		t = at
	}
}

// Merge combines per-task traces into a single time-ordered stream of
// (time, task index) arrival records.
type Arrival struct {
	At   rtime.Time
	Task int
}

// Merge interleaves the given traces by time, breaking ties by task index
// (jobs may arrive simultaneously under UAM).
func Merge(traces []Trace) []Arrival {
	total := 0
	for _, tr := range traces {
		total += len(tr)
	}
	out := make([]Arrival, 0, total)
	for i, tr := range traces {
		for _, t := range tr {
			out = append(out, Arrival{At: t, Task: i})
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].At != out[b].At {
			return out[a].At < out[b].At
		}
		return out[a].Task < out[b].Task
	})
	return out
}
