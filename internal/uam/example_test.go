package uam_test

import (
	"fmt"

	"repro/internal/uam"
)

// ExampleSpec shows the window-counting bounds that drive Theorem 2: the
// maximum number of arrivals the UAM adversary can squeeze into an
// interval, and the guaranteed minimum.
func ExampleSpec() {
	s := uam.Spec{L: 1, A: 3, W: 100}
	fmt.Println(s)
	fmt.Println("max in 250:", s.MaxArrivalsIn(250))
	fmt.Println("min in 250:", s.MinArrivalsIn(250))
	// Output:
	// <1,3,100us>
	// max in 250: 12
	// min in 250: 2
}

// ExampleGenerator produces a deterministic periodic trace for the UAM
// special case ⟨1,1,W⟩ and validates it against the sliding-window
// bounds.
func ExampleGenerator() {
	g, _ := uam.NewGenerator(uam.Periodic(100), 1)
	tr := g.Generate(uam.KindPeriodic, 500)
	err := uam.CheckTrace(uam.Periodic(100), tr, 500)
	fmt.Println(tr, err)
	// Output: [0us 100us 200us 300us 400us] <nil>
}
