package uam

import (
	"fmt"
	"sort"

	"repro/internal/rtime"
)

// TraceStats summarizes an arrival trace's temporal structure: the
// inter-arrival distribution and the burstiness actually achieved
// relative to the spec's sliding-window budget. It is the quantitative
// answer to "how adversarial was this trace?".
type TraceStats struct {
	Count int

	MinGap    rtime.Duration
	MeanGap   float64
	MedianGap rtime.Duration
	MaxGap    rtime.Duration

	// MaxInWindow is the largest arrival count observed in any sliding
	// window of length W; Budget is the spec's a. A ratio near 1 means
	// the trace actually exercises the adversary the spec permits.
	MaxInWindow int
	Budget      int

	// SimultaneousPairs counts adjacent arrivals at the same tick (UAM
	// explicitly permits simultaneous arrivals).
	SimultaneousPairs int
}

// Stats computes TraceStats for a sorted trace under spec.
func Stats(s Spec, tr Trace) TraceStats {
	st := TraceStats{Count: len(tr), Budget: s.A}
	if len(tr) == 0 {
		return st
	}
	if len(tr) >= 2 {
		gaps := make([]rtime.Duration, 0, len(tr)-1)
		var sum float64
		for i := 1; i < len(tr); i++ {
			g := tr[i].Sub(tr[i-1])
			gaps = append(gaps, g)
			sum += float64(g)
			if g == 0 {
				st.SimultaneousPairs++
			}
		}
		sort.Slice(gaps, func(a, b int) bool { return gaps[a] < gaps[b] })
		st.MinGap = gaps[0]
		st.MaxGap = gaps[len(gaps)-1]
		st.MedianGap = gaps[len(gaps)/2]
		st.MeanGap = sum / float64(len(gaps))
	}
	// Max sliding-window occupancy: windows starting at each arrival.
	for i := range tr {
		hi := sort.Search(len(tr), func(k int) bool {
			return tr[k] >= tr[i].Add(s.W)
		})
		if n := hi - i; n > st.MaxInWindow {
			st.MaxInWindow = n
		}
	}
	return st
}

// String renders a one-line digest.
func (st TraceStats) String() string {
	if st.Count == 0 {
		return "empty trace"
	}
	return fmt.Sprintf("n=%d gaps[min=%v med=%v mean=%.1fus max=%v] window=%d/%d simultaneous=%d",
		st.Count, st.MinGap, st.MedianGap, st.MeanGap, st.MaxGap,
		st.MaxInWindow, st.Budget, st.SimultaneousPairs)
}
