package rua

// White-box tests for the tentative-schedule machinery of §3.4/§3.4.1:
// ECF positions, dependency-forced moves, critical-time inheritance, and
// feasibility arithmetic — exercised directly on the schedule type.

import (
	"testing"

	"repro/internal/rtime"
	"repro/internal/task"
)

func newSched() (*schedule, *int64) {
	var ops int64
	return &schedule{ops: &ops}, &ops
}

func TestECFPositionsAndInsert(t *testing.T) {
	s, _ := newSched()
	j1 := mkJob(1, 1, 1000, 10, 0)
	j2 := mkJob(2, 1, 500, 10, 0)
	j3 := mkJob(3, 1, 1500, 10, 0)
	s.insertAt(s.ecfPos(j1.AbsoluteCriticalTime()), entry{job: j1, effC: j1.AbsoluteCriticalTime()})
	s.insertAt(s.ecfPos(j2.AbsoluteCriticalTime()), entry{job: j2, effC: j2.AbsoluteCriticalTime()})
	s.insertAt(s.ecfPos(j3.AbsoluteCriticalTime()), entry{job: j3, effC: j3.AbsoluteCriticalTime()})
	want := []*task.Job{j2, j1, j3}
	for i, w := range want {
		if s.entries[i].job != w {
			t.Fatalf("pos %d = %s, want %s", i, s.entries[i].job.Name(), w.Name())
		}
	}
	if s.indexOf(j1) != 1 || s.indexOf(j2) != 0 || s.indexOf(j3) != 2 {
		t.Fatal("indexOf wrong")
	}
	missing := mkJob(9, 1, 100, 10, 0)
	if s.indexOf(missing) != -1 {
		t.Fatal("indexOf found a missing job")
	}
}

func TestEqualCriticalTimesStable(t *testing.T) {
	s, _ := newSched()
	j1 := mkJob(1, 1, 1000, 10, 0)
	j2 := mkJob(2, 1, 1000, 10, 0)
	s.insertAt(s.ecfPos(j1.AbsoluteCriticalTime()), entry{job: j1, effC: j1.AbsoluteCriticalTime()})
	// Equal effC inserts AFTER existing equals (stable).
	s.insertAt(s.ecfPos(j2.AbsoluteCriticalTime()), entry{job: j2, effC: j2.AbsoluteCriticalTime()})
	if s.entries[0].job != j1 || s.entries[1].job != j2 {
		t.Fatal("equal-effC insertion not stable")
	}
}

func TestRemoveAt(t *testing.T) {
	s, _ := newSched()
	j1 := mkJob(1, 1, 1000, 10, 0)
	j2 := mkJob(2, 1, 2000, 10, 0)
	s.insertAt(0, entry{job: j1, effC: 1000})
	s.insertAt(1, entry{job: j2, effC: 2000})
	e := s.removeAt(0)
	if e.job != j1 || len(s.entries) != 1 || s.entries[0].job != j2 {
		t.Fatal("removeAt wrong")
	}
}

func TestInsertChainCase2Inheritance(t *testing.T) {
	// Chain ⟨T2, T1⟩ with C2 > C1 (§3.4.1 Case 2): T2 must be inserted
	// before T1 with effC tightened to C1's.
	s, _ := newSched()
	t1 := mkJob(1, 1, 500, 10, 0)  // tail (the blocked job), early C
	t2 := mkJob(2, 1, 5000, 10, 0) // head (the holder), late C
	s.insertChain([]*task.Job{t2, t1})
	if len(s.entries) != 2 {
		t.Fatalf("entries = %d", len(s.entries))
	}
	if s.entries[0].job != t2 || s.entries[1].job != t1 {
		t.Fatalf("order = %s, %s; want T2 before T1", s.entries[0].job.Name(), s.entries[1].job.Name())
	}
	if s.entries[0].effC != t1.AbsoluteCriticalTime() {
		t.Fatalf("T2 effC = %v, want inherited %v", s.entries[0].effC, t1.AbsoluteCriticalTime())
	}
}

func TestInsertChainCase1NoInheritance(t *testing.T) {
	// C2 < C1: ECF order already consistent with dependency order.
	s, _ := newSched()
	t1 := mkJob(1, 1, 5000, 10, 0) // tail, late C
	t2 := mkJob(2, 1, 500, 10, 0)  // head, early C
	s.insertChain([]*task.Job{t2, t1})
	if s.entries[0].job != t2 || s.entries[1].job != t1 {
		t.Fatal("order wrong")
	}
	if s.entries[0].effC != t2.AbsoluteCriticalTime() {
		t.Fatalf("T2 effC modified needlessly: %v", s.entries[0].effC)
	}
}

func TestInsertChainReordersExistingDependent(t *testing.T) {
	// Fig 5's removal-and-reinsertion: T1 already sits late in the
	// schedule; inserting ⟨T1, T3⟩ with C1 > C3 must move T1 before T3
	// and tighten its effC.
	s, _ := newSched()
	t1 := mkJob(1, 1, 5000, 10, 0)
	t2 := mkJob(2, 1, 1000, 10, 0)
	// Existing schedule: ⟨T2, T1⟩ (by critical time).
	s.insertChain([]*task.Job{t1})
	s.insertChain([]*task.Job{t2})
	if s.entries[0].job != t2 || s.entries[1].job != t1 {
		t.Fatal("setup order wrong")
	}
	// Now T3 with dependency chain ⟨T1, T3⟩ and C3 < C1.
	t3 := mkJob(3, 1, 300, 10, 0)
	s.insertChain([]*task.Job{t1, t3})
	// T1 must now precede T3; T3 has the earliest effC so it sits first
	// only if T1 was moved before it... dependency wins: find positions.
	p1, p3 := s.indexOf(t1), s.indexOf(t3)
	if p1 > p3 {
		t.Fatalf("T1 (pos %d) not before its dependent T3 (pos %d)", p1, p3)
	}
	e1 := s.entryOf(t1)
	if e1.effC > t3.AbsoluteCriticalTime() {
		t.Fatalf("T1 effC %v not tightened to T3's %v", e1.effC, t3.AbsoluteCriticalTime())
	}
}

func TestInsertChainSkipsFinishedDependents(t *testing.T) {
	s, _ := newSched()
	done := mkJob(1, 1, 1000, 10, 0)
	done.State = task.Completed
	alive := mkJob(2, 1, 2000, 10, 0)
	s.insertChain([]*task.Job{done, alive})
	if len(s.entries) != 1 || s.entries[0].job != alive {
		t.Fatal("finished dependent not skipped")
	}
}

func TestFeasibility(t *testing.T) {
	s, _ := newSched()
	// Two jobs of 100 each; critical times 150 and 250 → feasible
	// back-to-back (100 ≤ 150, 200 ≤ 250).
	j1 := mkJob(1, 1, 150, 100, 0)
	j2 := mkJob(2, 1, 250, 100, 0)
	s.insertChain([]*task.Job{j1})
	s.insertChain([]*task.Job{j2})
	if !s.feasible(0, 10) {
		t.Fatal("feasible schedule judged infeasible")
	}
	// From now=60 the first completes at 160 > 150 → infeasible.
	if s.feasible(60, 10) {
		t.Fatal("infeasible schedule judged feasible")
	}
}

func TestCloneIsolation(t *testing.T) {
	s, _ := newSched()
	j1 := mkJob(1, 1, 1000, 10, 0)
	s.insertChain([]*task.Job{j1})
	cp := s.clone()
	j2 := mkJob(2, 1, 500, 10, 0)
	cp.insertChain([]*task.Job{j2})
	if len(s.entries) != 1 {
		t.Fatal("clone mutation leaked into original")
	}
	if len(cp.entries) != 2 {
		t.Fatal("clone missing insert")
	}
}

func TestChargeLogGrows(t *testing.T) {
	s, ops := newSched()
	for i := 0; i < 64; i++ {
		j := mkJob(i, 1, rtime.Duration(1000+i), 10, 0)
		s.insertAt(s.ecfPos(j.AbsoluteCriticalTime()), entry{job: j, effC: j.AbsoluteCriticalTime()})
	}
	small := *ops
	*ops = 0
	for i := 64; i < 128; i++ {
		j := mkJob(i, 1, rtime.Duration(1000+i), 10, 0)
		s.insertAt(s.ecfPos(j.AbsoluteCriticalTime()), entry{job: j, effC: j.AbsoluteCriticalTime()})
	}
	big := *ops
	if big <= small {
		t.Fatalf("charged ops did not grow with schedule size: %d then %d", small, big)
	}
}
