package rua

import (
	"testing"

	"repro/internal/resource"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/task"
	"repro/internal/tuf"
	"repro/internal/uam"
)

func mkJob(id int, u float64, c rtime.Duration, comp rtime.Duration, ar rtime.Time) *task.Job {
	t := &task.Task{
		ID:       id,
		TUF:      tuf.MustStep(u, c),
		Arrival:  uam.Spec{L: 0, A: 2, W: 10 * c},
		Segments: task.InterleavedSegments(comp, 0, nil),
	}
	return task.NewJob(t, 0, ar)
}

func mkSharingJob(id int, u float64, c rtime.Duration, comp rtime.Duration, obj int) *task.Job {
	t := &task.Task{
		ID:       id,
		TUF:      tuf.MustStep(u, c),
		Arrival:  uam.Spec{L: 0, A: 2, W: 10 * c},
		Segments: task.InterleavedSegments(comp, 1, []int{obj}),
	}
	return task.NewJob(t, 0, 0)
}

func world(now rtime.Time, res *resource.Map, lockBased bool, jobs ...*task.Job) sched.World {
	if res == nil {
		res = resource.NewMap()
	}
	return sched.World{Now: now, Jobs: jobs, Res: res, Acc: 10, LockBased: lockBased}
}

func TestNames(t *testing.T) {
	if NewLockBased().Name() != "rua-lockbased" || NewLockFree().Name() != "rua-lockfree" {
		t.Fatal("names wrong")
	}
}

func TestEmptySelect(t *testing.T) {
	d := NewLockFree().Select(world(0, nil, false))
	if d.Run != nil || len(d.Abort) != 0 {
		t.Fatalf("empty select = %+v", d)
	}
}

func TestSingleJob(t *testing.T) {
	j := mkJob(0, 5, 1000, 100, 0)
	d := NewLockFree().Select(world(0, nil, false, j))
	if d.Run != j {
		t.Fatal("single job not selected")
	}
	if d.Ops <= 0 {
		t.Fatal("no ops charged")
	}
}

func TestECFOrderUnderload(t *testing.T) {
	// All feasible → ECF head (earliest critical time runs first),
	// regardless of PUD order.
	early := mkJob(0, 1, 300, 50, 0)   // C=300, PUD=1/50
	late := mkJob(1, 100, 1000, 50, 0) // C=1000, PUD=100/50 (examined first)
	d := NewLockFree().Select(world(0, nil, false, early, late))
	if d.Run != early {
		t.Fatalf("head = %v, want the earliest-critical-time job", d.Run.Name())
	}
}

func TestOverloadRejectsLowPUD(t *testing.T) {
	// Both need 80; only one fits. High-utility job wins even though the
	// other has an earlier critical time.
	low := mkJob(0, 1, 100, 80, 0)
	high := mkJob(1, 100, 120, 80, 0)
	d := NewLockFree().Select(world(0, nil, false, low, high))
	if d.Run != high {
		t.Fatalf("head = %s, want high-PUD job", d.Run.Name())
	}
}

func TestNonStepTUFPUD(t *testing.T) {
	// Linear TUF: utility at estimated completion shrinks as the job
	// waits; a fresher parabolic job with the same parameters must win
	// when the linear one's estimated completion utility is lower.
	lin := &task.Task{
		ID: 0, TUF: tuf.MustLinear(10, 1000),
		Arrival:  uam.Spec{L: 0, A: 1, W: 10000},
		Segments: task.InterleavedSegments(100, 0, nil),
	}
	par := &task.Task{
		ID: 1, TUF: tuf.MustParabolic(10, 1000),
		Arrival:  uam.Spec{L: 0, A: 1, W: 10000},
		Segments: task.InterleavedSegments(100, 0, nil),
	}
	jl := task.NewJob(lin, 0, 0)
	jp := task.NewJob(par, 0, 0)
	// Estimated completions: whichever runs "first" in PUD terms —
	// parabolic keeps more utility at t=100 (10·(1−0.01)=9.9) than linear
	// (10·0.9=9.0), so parabolic has higher PUD. Both feasible → ECF tie
	// on critical time (both 1000) breaks by insertion; just assert a
	// deterministic, non-nil decision and utility sanity via op counts.
	d := NewLockFree().Select(world(0, nil, false, jl, jp))
	if d.Run == nil {
		t.Fatal("no job selected")
	}
	d2 := NewLockFree().Select(world(0, nil, false, jl, jp))
	if d.Run != d2.Run {
		t.Fatal("selection not deterministic")
	}
}

func TestLockBasedChainHeadRunsFirst(t *testing.T) {
	// B waits on obj held by H. Even if B has enormous PUD, H must run
	// first (dependency order).
	res := resource.NewMap()
	h := mkSharingJob(0, 1, 2000, 100, 0)
	b := mkSharingJob(1, 1000, 500, 100, 0)
	// Put H inside its access segment holding obj 0.
	h.Step(1<<40, 10) // run to access start
	if _, _, err := res.TryAcquire(h, 0); err != nil {
		t.Fatal(err)
	}
	h.Step(3, 10) // 3 ticks into the access
	// B is at its access boundary and blocked.
	b.Step(1<<40, 10)
	if granted, _, _ := res.TryAcquire(b, 0); granted {
		t.Fatal("b should be blocked")
	}
	b.State = task.Blocked

	d := NewLockBased().Select(world(200, res, true, h, b))
	if d.Run != h {
		t.Fatalf("head = %s, want the lock holder", d.Run.Name())
	}
}

func TestLockBasedCriticalTimeInheritance(t *testing.T) {
	// §3.4.1 Case 2: holder H has a LATER critical time than blocked B.
	// H must still be placed before B, with its effective critical time
	// tightened — the tentative schedule is feasible only because of the
	// inheritance, and H runs first.
	res := resource.NewMap()
	h := mkSharingJob(0, 1, 5000, 60, 0) // C_H = 5000 (late)
	b := mkSharingJob(1, 50, 400, 60, 0) // C_B = 400 (early), high utility
	h.Step(1<<40, 10)
	res.TryAcquire(h, 0)
	h.Step(2, 10)
	b.Step(1<<40, 10)
	res.TryAcquire(b, 0)
	b.State = task.Blocked

	d := NewLockBased().Select(world(100, res, true, h, b))
	if d.Run != h {
		t.Fatalf("head = %s, want holder despite later critical time", d.Run.Name())
	}
}

func TestDeadlockDetectionAndVictim(t *testing.T) {
	// Cycle (only possible with nesting): J1 holds o1 waits o2; J2 holds
	// o2 waits o1. The lower-PUD job is aborted.
	res := resource.NewMap()
	j1 := mkJob(0, 100, 1000, 50, 0)
	j2 := mkJob(1, 1, 1000, 50, 0)
	res.TryAcquire(j1, 1)
	res.TryAcquire(j2, 2)
	res.TryAcquire(j1, 2) // waits
	res.TryAcquire(j2, 1) // waits → cycle
	d := NewLockBased().Select(world(0, res, true, j1, j2))
	if len(d.Abort) != 1 {
		t.Fatalf("aborts = %d, want 1", len(d.Abort))
	}
	if d.Abort[0] != j2 {
		t.Fatalf("victim = %s, want the low-PUD job", d.Abort[0].Name())
	}
}

func TestLockFreeNeverDetectsDeadlock(t *testing.T) {
	res := resource.NewMap()
	j1 := mkJob(0, 1, 1000, 50, 0)
	j2 := mkJob(1, 1, 1000, 50, 0)
	// Even with a poisoned resource map, lock-free RUA ignores chains.
	res.TryAcquire(j1, 1)
	res.TryAcquire(j2, 2)
	res.TryAcquire(j1, 2)
	res.TryAcquire(j2, 1)
	d := NewLockFree().Select(world(0, res, false, j1, j2))
	if len(d.Abort) != 0 {
		t.Fatal("lock-free RUA attempted deadlock resolution")
	}
	if d.Run == nil {
		t.Fatal("no decision")
	}
}

func TestInfeasibleJobExcludedButOthersKept(t *testing.T) {
	// j1 can never make its critical time; j2 fits after j3. The schedule
	// keeps the feasible pair.
	j1 := mkJob(0, 1, 50, 200, 0) // needs 200, C=50: hopeless
	j2 := mkJob(1, 5, 500, 100, 0)
	j3 := mkJob(2, 5, 300, 100, 0)
	d := NewLockFree().Select(world(0, nil, false, j1, j2, j3))
	if d.Run != j3 {
		t.Fatalf("head = %s, want j3 (earliest feasible)", d.Run.Name())
	}
}

func TestZeroRemainingScheduledFirst(t *testing.T) {
	// A job with no remaining demand (about to be marked complete) gets
	// infinite PUD and must not crash the scheduler.
	j1 := mkJob(0, 1, 1000, 50, 0)
	j1.Step(1<<40, 10) // consume everything
	j2 := mkJob(1, 1, 1000, 50, 0)
	d := NewLockFree().Select(world(0, nil, false, j1, j2))
	if d.Run != j1 {
		t.Fatalf("zero-remaining job not scheduled first: %s", d.Run.Name())
	}
}

func TestOpCountGrowth(t *testing.T) {
	// Lock-based ops must exceed lock-free ops on identical worlds with
	// dependencies present, and both must grow superlinearly with n.
	mkWorld := func(n int) (sched.World, sched.World) {
		res := resource.NewMap()
		jobs := make([]*task.Job, n)
		for i := range jobs {
			jobs[i] = mkSharingJob(i, float64(i+1), 5000, 100, i%3)
		}
		// Create a few real dependencies.
		jobs[0].Step(1<<40, 10)
		res.TryAcquire(jobs[0], 0)
		jobs[0].Step(1, 10)
		for i := 3; i < n; i += 3 {
			jobs[i].Step(1<<40, 10)
			res.TryAcquire(jobs[i], 0)
		}
		wLB := sched.World{Now: 0, Jobs: jobs, Res: res, Acc: 10, LockBased: true}
		wLF := sched.World{Now: 0, Jobs: jobs, Res: res, Acc: 10, LockBased: false}
		return wLB, wLF
	}
	var prevLF int64
	for _, n := range []int{8, 16, 32, 64} {
		wLB, wLF := mkWorld(n)
		lb := NewLockBased().Select(wLB)
		lf := NewLockFree().Select(wLF)
		if lb.Ops <= lf.Ops {
			t.Fatalf("n=%d: lock-based ops %d not above lock-free %d", n, lb.Ops, lf.Ops)
		}
		if lf.Ops <= prevLF*2 && prevLF > 0 {
			t.Fatalf("n=%d: lock-free ops %d did not grow superlinearly from %d", n, lf.Ops, prevLF)
		}
		prevLF = lf.Ops
	}
}

func TestDoneJobsIgnored(t *testing.T) {
	j1 := mkJob(0, 1, 1000, 50, 0)
	j1.State = task.Completed
	j2 := mkJob(1, 1, 1000, 50, 0)
	j2.State = task.Aborting
	j3 := mkJob(2, 1, 1000, 50, 0)
	d := NewLockFree().Select(world(0, nil, false, j1, j2, j3))
	if d.Run != j3 {
		t.Fatal("done/aborting jobs not filtered")
	}
}

func TestFig5RemovalAndReinsertion(t *testing.T) {
	// Paper Fig 5: chains(T1)=⟨T1⟩, chains(T2)=⟨T1,T2⟩, chains(T3)=⟨T1,T3⟩,
	// PUD order T2, T1, T3. T2's insertion brings T1 in; when T3 is later
	// examined, T1 (already inserted) must also end up before T3, moving
	// it if the critical-time order disagrees. The final schedule is
	// ⟨T1, T3, T2⟩ when C1 > C3 forces the move — T1's effective critical
	// time is tightened to C3.
	res := resource.NewMap()
	// T1 holds the object both T2 and T3 want.
	t1 := mkSharingJob(1, 30, 3000, 100, 0)  // moderate utility, LATE C
	t2 := mkSharingJob(2, 100, 3500, 100, 0) // highest utility → examined first
	t3 := mkSharingJob(3, 60, 1500, 100, 0)  // C3 < C1: forces reinsertion
	t1.Step(1<<40, 10)
	if granted, _, _ := res.TryAcquire(t1, 0); !granted {
		t.Fatal("setup: t1 acquire failed")
	}
	t1.Step(1, 10)
	for _, b := range []*task.Job{t2, t3} {
		b.Step(1<<40, 10)
		if granted, _, _ := res.TryAcquire(b, 0); granted {
			t.Fatal("setup: waiter acquired")
		}
		b.State = task.Blocked
	}
	d := NewLockBased().Select(world(0, res, true, t1, t2, t3))
	// The holder must run first regardless of the shuffling.
	if d.Run != t1 {
		t.Fatalf("head = %s, want T1 (the holder)", d.Run.Name())
	}
	// Determinism of the whole construction.
	d2 := NewLockBased().Select(world(0, res, true, t1, t2, t3))
	if d2.Run != d.Run || d2.Ops != d.Ops {
		t.Fatal("schedule construction not deterministic")
	}
}

func TestCase1ConsistentOrderNoInheritance(t *testing.T) {
	// §3.4.1 Case 1: holder's critical time already earlier than the
	// blocked job's — no move needed, holder first.
	res := resource.NewMap()
	h := mkSharingJob(0, 10, 500, 60, 0)  // C earlier
	b := mkSharingJob(1, 10, 2000, 60, 0) // C later
	h.Step(1<<40, 10)
	res.TryAcquire(h, 0)
	h.Step(2, 10)
	b.Step(1<<40, 10)
	res.TryAcquire(b, 0)
	b.State = task.Blocked
	d := NewLockBased().Select(world(0, res, true, h, b))
	if d.Run != h {
		t.Fatalf("head = %s, want holder", d.Run.Name())
	}
}
