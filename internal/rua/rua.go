// Package rua implements the Resource-constrained Utility Accrual
// scheduling algorithm of Wu et al. [27] in its two forms compared by the
// paper: lock-based RUA (dependency chains, deadlock detection and
// resolution, PUDs over aggregate computations, ECF tentative-schedule
// construction — §3) and lock-free RUA (the same algorithm with
// dependency chains compiled out, §5), which is the paper's core
// contribution.
//
// Operation accounting follows the paper's §3.6 cost model: every chain
// hop, PUD term, and sort comparison is one operation, and every
// ordered-schedule lookup/insert/remove is charged ⌈log₂ n⌉ operations
// (the paper assumes an ordered list with logarithmic primitives). The
// simulator turns these counts into virtual scheduling overhead, so a
// lock-based decision really does cost Θ(log n) more virtual time than a
// lock-free one at the same job count — the mechanism behind Fig 9.
package rua

import (
	"math"
	"sort"

	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/task"
	"repro/internal/trace"
)

// RUA is a configured RUA scheduler. Use NewLockBased or NewLockFree.
//
// An instance reuses internal scratch buffers across Select calls to keep
// the per-decision hot path allocation-free, so it must not be shared by
// concurrently running simulations — give each engine its own instance
// (cf. multi.Config.NewScheduler). The charged-operation accounting is
// pure: reuse changes allocation behaviour only, never op counts.
type RUA struct {
	lockFree bool
	degrade  bool
	observer func(trace.Event)

	// Per-Select scratch, reset (not reallocated) on every pass.
	live      []*task.Job
	chainBuf  []*task.Job // chain arena: lock-free singletons / lock-based walks
	order     []*task.Job
	chains    map[*task.Job][]*task.Job
	pud       map[*task.Job]float64
	excluded  map[*task.Job]bool
	feas      feasTree
	sorter    pudSorter
	cyclesBuf [][]*task.Job
	abortBuf  []*task.Job
	topkBuf   []*task.Job
	ops       int64 // charged operations of the pass in flight
}

// NewLockBased returns RUA with lock-based object sharing: dependency
// chains are computed from the resource map, PUDs aggregate over chains,
// and deadlocks (possible only with nested critical sections) are
// resolved by aborting the least-PUD cycle member.
func NewLockBased() *RUA { return &RUA{lockFree: false} }

// NewLockFree returns lock-free RUA: dependencies do not exist, so every
// chain is the job itself, deadlock detection vanishes, and the schedule
// construction drops from O(n² log n) to O(n²).
func NewLockFree() *RUA { return &RUA{lockFree: true} }

// WithDegradation enables graceful degradation (admission control under
// overload): a job that fails its feasibility test AND can no longer
// meet its critical time even running alone from now on is shed —
// aborted immediately — instead of lingering to thrash the scheduler
// and burn its abort handler at critical-time expiry. The laxity test
// guarantees a job is never shed while it could still complete: in
// particular, a job feasible at its release cannot be shed at release.
// Each shed is reported to the observer as a trace.Shed event and rides
// on Decision.Abort. Returns the receiver for chaining.
func (r *RUA) WithDegradation() *RUA {
	r.degrade = true
	return r
}

// SetObserver attaches a trace observer that receives one FeasOK or
// FeasFail event per job examined in step 5 of each scheduling pass
// (Task/Seq name the examined job, Ops the operations charged while
// inserting and feasibility-testing it). Observation never changes
// charged op counts. The engine running this scheduler emits the
// enclosing SchedPass event; give both the same recorder.
func (r *RUA) SetObserver(obs func(trace.Event)) { r.observer = obs }

func (r *RUA) emitFeas(at rtime.Time, kind trace.Kind, j *task.Job, ops int64) {
	if r.observer == nil {
		return
	}
	r.observer(trace.Event{At: at, Kind: kind, Task: j.Task.ID, Seq: j.Seq, Object: -1, Ops: ops})
}

// Name implements sched.Scheduler.
func (r *RUA) Name() string {
	name := "rua-lockbased"
	if r.lockFree {
		name = "rua-lockfree"
	}
	if r.degrade {
		name += "+shed"
	}
	return name
}

// entry is one slot of the (tentative) schedule: a job and its effective
// critical time, possibly tightened by dependency insertion (§3.4.1).
type entry struct {
	job  *task.Job
	effC rtime.Time
}

// schedule is an ECF-ordered list with the paper's charged-cost
// primitives. ops accumulates charged operations.
//
// Since the incremental feasibility tree (feas.go) took over the hot
// path, this slice formulation is retained as the semantic reference:
// the white-box tests in schedule_test.go pin its behaviour, and the
// differential test in feas_test.go holds the tree to it — same entry
// order, same feasibility verdicts, same charged operations.
//
// Mutations are journaled so a tentative insertion that turns out
// infeasible can be rolled back in place instead of cloning the whole
// schedule per examined job (the old clone-per-decision path dominated
// the scheduler's allocation profile). The journal is bookkeeping, not
// algorithm: recording and rolling back are uncharged, exactly as the
// discarded clone was.
type schedule struct {
	entries []entry
	ops     *int64
	journal []mutation
}

// mutation is one journaled schedule edit. insert=true records an
// insertAt at pos (undone by removing pos); insert=false records a
// removeAt whose removed entry was old (undone by re-inserting it).
type mutation struct {
	insert bool
	pos    int
	old    entry
}

// mark returns a rollback checkpoint.
func (s *schedule) mark() int { return len(s.journal) }

// rollback undoes every mutation after checkpoint m, newest first,
// restoring entries exactly. Uncharged: the §3.6 model prices schedule
// construction, and the clone-based formulation never charged for
// discarding a tentative either.
func (s *schedule) rollback(m int) {
	for i := len(s.journal) - 1; i >= m; i-- {
		mu := s.journal[i]
		if mu.insert {
			copy(s.entries[mu.pos:], s.entries[mu.pos+1:])
			s.entries = s.entries[:len(s.entries)-1]
		} else {
			s.entries = append(s.entries, entry{})
			copy(s.entries[mu.pos+1:], s.entries[mu.pos:])
			s.entries[mu.pos] = mu.old
		}
	}
	s.journal = s.journal[:m]
}

// chargeLog charges ⌈log₂(len+1)⌉ operations — the ordered-list primitive
// cost of §3.6 step 5.
func (s *schedule) chargeLog() {
	n := len(s.entries) + 1
	c := int64(1)
	for n > 1 {
		c++
		n >>= 1
	}
	*s.ops += c
}

func (s *schedule) clone() *schedule {
	cp := &schedule{entries: make([]entry, len(s.entries)), ops: s.ops}
	copy(cp.entries, s.entries)
	return cp
}

// indexOf returns the position of j, or -1. Charged as one ordered-list
// lookup.
func (s *schedule) indexOf(j *task.Job) int {
	s.chargeLog()
	for i, e := range s.entries {
		if e.job == j {
			return i
		}
	}
	return -1
}

// ecfPos returns the insertion position for effective critical time c:
// after all entries with effC ≤ c (stable for equal critical times).
func (s *schedule) ecfPos(c rtime.Time) int {
	s.chargeLog()
	return sort.Search(len(s.entries), func(i int) bool {
		return s.entries[i].effC > c
	})
}

func (s *schedule) insertAt(pos int, e entry) {
	s.chargeLog()
	s.entries = append(s.entries, entry{})
	copy(s.entries[pos+1:], s.entries[pos:])
	s.entries[pos] = e
	s.journal = append(s.journal, mutation{insert: true, pos: pos})
}

func (s *schedule) removeAt(pos int) entry {
	s.chargeLog()
	e := s.entries[pos]
	s.entries = append(s.entries[:pos], s.entries[pos+1:]...)
	s.journal = append(s.journal, mutation{pos: pos, old: e})
	return e
}

// insertChain inserts job j and its dependents (chain is head→tail with
// the tail being j itself) into the tentative schedule per §3.4.1:
// proceed from tail to head, insert each at its critical-time position,
// force dependency order by moving/tightening when the ECF order
// disagrees (Case 2: insert the dependent before its successor and update
// its critical time to the successor's).
func (s *schedule) insertChain(chain []*task.Job) {
	var prev *task.Job   // successor in dependency order (inserted last iteration)
	var prevC rtime.Time // prev's effective critical time
	for i := len(chain) - 1; i >= 0; i-- {
		d := chain[i]
		if d.Done() || d.State == task.Aborting {
			continue
		}
		if di := s.indexOf(d); di >= 0 {
			// Already present (inserted as a dependent of an earlier,
			// higher-PUD job). Re-establish dependency order: d must also
			// precede prev (§3.4.1's removal-and-reinsertion case).
			if prev != nil {
				pi := s.indexOf(prev)
				if di > pi {
					e := s.removeAt(di)
					e.effC = prevC
					s.insertAt(pi, e)
				}
			}
			e := s.entryOf(d)
			prev, prevC = d, e.effC
			continue
		}
		effC := d.AbsoluteCriticalTime()
		pos := s.ecfPos(effC)
		if prev != nil {
			pi := s.indexOf(prev)
			if pos > pi {
				// ECF order inconsistent with dependency order (Case 2):
				// force d before prev and inherit prev's critical time.
				pos = pi
				effC = prevC
			}
		}
		s.insertAt(pos, entry{job: d, effC: effC})
		prev, prevC = d, effC
	}
}

func (s *schedule) entryOf(j *task.Job) entry {
	for _, e := range s.entries {
		if e.job == j {
			return e
		}
	}
	return entry{}
}

// feasible checks that executing the schedule in order meets every
// effective critical time, charging one operation per entry.
func (s *schedule) feasible(now rtime.Time, acc rtime.Duration) bool {
	t := now
	for _, e := range s.entries {
		*s.ops++
		t = t.Add(e.job.Remaining(acc))
		if t.After(e.effC) {
			return false
		}
	}
	return true
}

// pudSorter is step 4's non-increasing-PUD order as a persistent
// sort.Interface, so sorting allocates nothing (sort.Slice would box a
// fresh closure and lessSwap per pass). sort.Sort and sort.Slice run the
// same pdqsort over the same Less/Swap sequence, so charged comparison
// counts are unchanged.
type pudSorter struct {
	order []*task.Job
	pud   map[*task.Job]float64
	ops   *int64
}

func (s *pudSorter) Len() int      { return len(s.order) }
func (s *pudSorter) Swap(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] }
func (s *pudSorter) Less(a, b int) bool {
	*s.ops++
	pa, pb := s.pud[s.order[a]], s.pud[s.order[b]]
	//rtlint:ignore floatcmp tie-break gate: both PUDs come from the same pudOf pass, so equal inputs yield bit-equal floats and ties fall through to the deterministic jobLess order
	if pa != pb {
		return pa > pb
	}
	return jobLess(s.order[a], s.order[b])
}

// SelectTopK implements sched.TopK: the first k entries of the final
// RUA schedule, in order. Global multiprocessor dispatch uses this to
// run the schedule's prefix in parallel — the natural global-scheduling
// generalization of "dispatch the head". The returned slice aliases
// reused scratch, valid until the next Select* call on this instance.
//
//rtlint:noalloc steady state runs on reused scratch (PR-6 contract)
func (r *RUA) SelectTopK(w sched.World, k int) ([]*task.Job, int64) {
	d := r.selectFull(w)
	r.topkBuf = r.feas.appendFirstK(r.topkBuf[:0], k)
	return r.topkBuf, d.Ops
}

// SelectTopKAbort implements sched.TopKAborter: SelectTopK plus the
// pass's abort decisions (deadlock victims, degradation sheds), so
// global engines can honor them. Both returned slices alias reused
// scratch, valid until the next Select* call on this instance.
//
//rtlint:noalloc steady state runs on reused scratch (PR-6 contract)
func (r *RUA) SelectTopKAbort(w sched.World, k int) (ranked, abort []*task.Job, ops int64) {
	d := r.selectFull(w)
	r.topkBuf = r.feas.appendFirstK(r.topkBuf[:0], k)
	return r.topkBuf, d.Abort, d.Ops
}

// Select implements sched.Scheduler — the full RUA pass of §3:
// dependency chains, deadlock handling, PUDs, PUD-ordered examination,
// ECF insertion with feasibility testing, and head dispatch.
//
//rtlint:noalloc steady state runs on reused scratch (PR-6 contract)
func (r *RUA) Select(w sched.World) sched.Decision {
	return r.selectFull(w)
}

// selectFull runs the RUA pass. Decision.Abort aliases reused scratch
// and is only valid until the next Select* call on this instance.
func (r *RUA) selectFull(w sched.World) sched.Decision {
	r.ops = 0

	live := r.live[:0]
	for _, j := range w.Jobs {
		if !j.Done() && j.State != task.Aborting {
			//rtlint:ignore noalloc reused r.live scratch; growth amortized
			live = append(live, j)
		}
	}
	r.live = live
	if len(live) == 0 {
		return sched.Decision{}
	}
	if r.chains == nil {
		//rtlint:ignore noalloc one-time lazy init; the maps are cleared and reused every pass
		r.chains = make(map[*task.Job][]*task.Job, len(live))
		//rtlint:ignore noalloc one-time lazy init; the maps are cleared and reused every pass
		r.pud = make(map[*task.Job]float64, len(live))
		//rtlint:ignore noalloc one-time lazy init; the maps are cleared and reused every pass
		r.excluded = make(map[*task.Job]bool)
	}

	// Step 1: dependency chains (§3.1). Lock-free RUA has none — each
	// chain is the job itself (§5); the singleton chains are carved out of
	// one reused backing array instead of allocated per job.
	chains := r.chains
	clear(chains)
	cycles := r.cyclesBuf[:0]
	if r.lockFree {
		if cap(r.chainBuf) < len(live) {
			//rtlint:ignore noalloc cap-guarded growth of reused scratch; amortized
			r.chainBuf = make([]*task.Job, len(live))
		}
		buf := r.chainBuf[:len(live)]
		for i, j := range live {
			buf[i] = j
			//rtlint:ignore noalloc cleared map reuses its buckets; growth amortized
			chains[j] = buf[i : i+1 : i+1]
			r.ops++
		}
	} else {
		// Chains are carved out of one reused arena. A growth
		// reallocation leaves earlier chains pointing at the old backing
		// array, which is fine: chains are immutable once built, and the
		// arena reaches steady-state capacity after the first passes.
		arena := r.chainBuf[:0]
		for _, j := range live {
			start := len(arena)
			var cycle bool
			arena, cycle = w.Res.AppendDependencyChain(arena, j)
			chain := arena[start:len(arena):len(arena)]
			r.ops += int64(len(chain))
			//rtlint:ignore noalloc cleared map reuses its buckets; growth amortized
			chains[j] = chain
			if cycle {
				//rtlint:ignore noalloc reused r.cyclesBuf scratch; growth amortized
				cycles = append(cycles, chain)
			}
		}
		r.chainBuf = arena
	}
	r.cyclesBuf = cycles

	// Step 2: PUDs (§3.2) — utility per unit time of the aggregate
	// computation (the job plus everything it depends on).
	pud := r.pud
	clear(pud)
	for _, j := range live {
		//rtlint:ignore noalloc cleared map reuses its buckets; growth amortized
		pud[j] = r.pudOf(w, chains[j], &r.ops)
	}

	// Step 3: deadlock resolution (§3.3) — only reachable with nested
	// critical sections. Abort the cycle member with the least PUD; jobs
	// whose chains pass through a victim cannot run before the rollback,
	// so they sit this round out.
	aborts := r.abortBuf[:0]
	excluded := r.excluded
	clear(excluded)
	for _, cyc := range cycles {
		victim := cyc[0]
		for _, j := range cyc {
			r.ops++
			//rtlint:ignore floatcmp tie-break gate: PUDs of one pass are bit-comparable, equality falls through to the deterministic jobLess victim choice
			if pud[j] < pud[victim] || (pud[j] == pud[victim] && jobLess(victim, j)) {
				victim = j
			}
		}
		if !excluded[victim] {
			//rtlint:ignore noalloc reused r.abortBuf scratch; growth amortized
			aborts = append(aborts, victim)
			//rtlint:ignore noalloc cleared map reuses its buckets; growth amortized
			excluded[victim] = true
		}
	}
	// A job whose chain passes through an aborting member (its holder's
	// rollback handler has not finished, so the lock is still held) or a
	// deadlock victim cannot run before the corresponding departure
	// event; it sits this round out and is reconsidered then.
	for _, j := range live {
		for _, d := range chains[j] {
			if excluded[d] || d.State == task.Aborting {
				//rtlint:ignore noalloc cleared map reuses its buckets; growth amortized
				excluded[j] = true
				break
			}
		}
	}

	// Step 4: sort by non-increasing PUD (§3.4), ties by job identity for
	// determinism.
	order := r.order[:0]
	for _, j := range live {
		if !excluded[j] {
			//rtlint:ignore noalloc reused r.order scratch; growth amortized
			order = append(order, j)
		}
	}
	r.order = order
	r.sorter = pudSorter{order: order, pud: pud, ops: &r.ops}
	sort.Sort(&r.sorter)

	// Step 5: examine in PUD order, insert job+dependents in ECF order,
	// keep the tentative schedule only if feasible (§3.4, §3.4.1). An
	// infeasible tentative is rolled back through the journal instead of
	// being thrown away with a pre-insertion clone; the charged operations
	// are identical because construction costs the same either way and
	// neither discard path was ever charged.
	cur := &r.feas
	cur.ops = &r.ops
	cur.reset(len(live))
	for _, j := range order {
		if cur.indexOf(j) >= 0 {
			// Already inserted as someone's dependent.
			continue
		}
		m := cur.mark()
		before := r.ops
		cur.insertChain(chains[j], w.Acc)
		if cur.feasible(w.Now) {
			// Accepted: history up to here can never be rolled back.
			cur.journal = cur.journal[:0]
			r.emitFeas(w.Now, trace.FeasOK, j, r.ops-before)
		} else {
			cur.rollback(m)
			r.emitFeas(w.Now, trace.FeasFail, j, r.ops-before)
			if r.degrade {
				// Admission control: a job that cannot meet its critical
				// time even running alone from now on is doomed — shed it
				// now rather than letting it thrash subsequent passes. The
				// laxity comparison is one charged operation.
				r.ops++
				if w.Now.Add(j.Remaining(w.Acc)).After(j.AbsoluteCriticalTime()) {
					//rtlint:ignore noalloc reused r.abortBuf scratch; growth amortized
					aborts = append(aborts, j)
					if r.observer != nil {
						r.observer(trace.Event{At: w.Now, Kind: trace.Shed, Task: j.Task.ID, Seq: j.Seq, Object: -1})
					}
				}
			}
		}
	}
	r.abortBuf = aborts

	return sched.Decision{Run: cur.first(), Abort: aborts, Ops: r.ops}
}

// pudOf computes the potential utility density of a chain: walk from the
// head (executes first) to the tail, accumulate estimated completion
// times and the utility each member would accrue at its estimated
// completion, and divide by the aggregate's total remaining time (§3.2).
func (r *RUA) pudOf(w sched.World, chain []*task.Job, ops *int64) float64 {
	t := w.Now
	total := 0.0
	for _, k := range chain {
		*ops++
		if k.Done() || k.State == task.Aborting {
			continue
		}
		t = t.Add(k.Remaining(w.Acc))
		total += k.Task.TUF.Utility(t.Sub(k.Arrival))
	}
	denom := t.Sub(w.Now)
	if denom <= 0 {
		// Zero remaining work: infinitely dense — schedule first.
		return math.Inf(1)
	}
	return total / float64(denom)
}

func jobLess(a, b *task.Job) bool {
	if a.Task.ID != b.Task.ID {
		return a.Task.ID < b.Task.ID
	}
	return a.Seq < b.Seq
}
