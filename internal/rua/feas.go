package rua

// Incremental feasibility: a positional treap replacing the O(n) slice
// behind the tentative schedule of §3.4. The slice `schedule` type stays
// in the package as the semantic reference (and the differential test's
// oracle); the scheduler itself runs on this tree.
//
// The tree stores the same (job, effC) entries in the same order and
// additionally captures each job's Remaining at insertion time — constant
// within one scheduling pass, since jobs only execute between passes.
// Per-node aggregates over subtrees:
//
//	cnt      — subtree size (order statistics: indexOf, positional ops)
//	sum      — Σ rem (prefix sums of execution demand)
//	minSlack — min over subtree members i of effC_i − localPrefix_i,
//	           where localPrefix_i counts every rem up to and including
//	           i *within the subtree*
//
// A schedule is feasible from time `now` iff every prefix completes by
// its effective critical time: now + prefix_i ≤ effC_i for all i, i.e.
// root.minSlack ≥ now. That turns the O(n) feasibility walk into O(1),
// and the first-violation lookup (for charge parity, below) into one
// root-to-violator descent.
//
// CHARGED-OPERATION PARITY is a hard contract: the §3.6 cost model is
// part of the paper's results (scheduling overhead becomes virtual time,
// Fig 9), so the tree must charge *exactly* what the slice charged while
// doing less real work:
//
//   - indexOf / ecfPos / insertAt / removeAt charge ⌈log₂(len+1)⌉ — same
//     chargeLog, len taken at the same instant.
//   - feasible charges one op per entry the slice walk would have
//     visited: all n on success, first-violation-index+1 on failure.
//   - journaling and rollback are uncharged, as on the slice.
//
// ecfPos descends by effC key, which is valid because the schedule is
// always globally sorted by effC: plain inserts go to their ECF
// position, and a Case-2 insert (§3.4.1) places the dependent directly
// before its successor while inheriting the successor's effC, preserving
// sortedness; removal never breaks it. The descent counts entries with
// effC ≤ c, which equals sort.Search's first-index-with-effC>c on a
// sorted sequence — insertion stays stable for equal critical times.
//
// Treap shape is deterministic: node priorities come from splitmix64 of
// a counter reset at every pass, so identical insertion sequences build
// identical trees on every run and every platform.

import (
	"math"

	"repro/internal/rtime"
	"repro/internal/task"
)

const nilNode = int32(-1)

type feasNode struct {
	job  *task.Job
	effC rtime.Time
	rem  rtime.Duration // job.Remaining(acc) captured at insert
	prio uint64

	parent, left, right int32

	// Subtree aggregates (see package comment on the file).
	cnt      int32
	sum      rtime.Duration
	minSlack int64
}

// feasMut journals one tree edit for rollback, mirroring `mutation` on
// the slice. Removals record enough to re-insert the exact entry.
type feasMut struct {
	insert bool
	pos    int
	job    *task.Job
	effC   rtime.Time
	rem    rtime.Duration
}

// feasTree is the incremental tentative schedule. Zero value is unusable;
// call reset before a pass.
type feasTree struct {
	nodes   []feasNode
	root    int32
	free    []int32             // recycled node slots
	pos     map[*task.Job]int32 // job → node index
	ops     *int64
	journal []feasMut
	prioCtr uint64
}

// reset clears the tree for a fresh scheduling pass, keeping capacity.
func (t *feasTree) reset(hint int) {
	t.nodes = t.nodes[:0]
	t.root = nilNode
	t.free = t.free[:0]
	if t.pos == nil {
		//rtlint:ignore noalloc one-time lazy init; the map is cleared and reused every pass
		t.pos = make(map[*task.Job]int32, hint)
	}
	clear(t.pos)
	t.journal = t.journal[:0]
	t.prioCtr = 0
}

func (t *feasTree) count() int {
	if t.root == nilNode {
		return 0
	}
	return int(t.nodes[t.root].cnt)
}

// chargeLog charges ⌈log₂(len+1)⌉ operations — identical to
// schedule.chargeLog at the same schedule length.
func (t *feasTree) chargeLog() {
	n := t.count() + 1
	c := int64(1)
	for n > 1 {
		c++
		n >>= 1
	}
	*t.ops += c
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pull recomputes v's aggregates from its children.
func (t *feasTree) pull(v int32) {
	n := &t.nodes[v]
	var lcnt, rcnt int32
	var lsum, rsum rtime.Duration
	lmin, rmin := int64(math.MaxInt64), int64(math.MaxInt64)
	if n.left != nilNode {
		l := &t.nodes[n.left]
		lcnt, lsum, lmin = l.cnt, l.sum, l.minSlack
	}
	if n.right != nilNode {
		r := &t.nodes[n.right]
		rcnt, rsum, rmin = r.cnt, r.sum, r.minSlack
	}
	n.cnt = lcnt + rcnt + 1
	n.sum = lsum + rsum + n.rem
	before := int64(lsum) + int64(n.rem) // local prefix through v itself
	m := lmin
	if own := int64(n.effC) - before; own < m {
		m = own
	}
	if rmin != math.MaxInt64 {
		if shifted := rmin - before; shifted < m {
			m = shifted
		}
	}
	n.minSlack = m
}

func (t *feasTree) alloc(j *task.Job, effC rtime.Time, rem rtime.Duration) int32 {
	var i int32
	if n := len(t.free); n > 0 {
		i = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		//rtlint:ignore noalloc arena growth is amortized; removals feed the free list
		t.nodes = append(t.nodes, feasNode{})
		i = int32(len(t.nodes) - 1)
	}
	t.prioCtr++
	t.nodes[i] = feasNode{
		job: j, effC: effC, rem: rem,
		prio:   splitmix64(t.prioCtr),
		parent: nilNode, left: nilNode, right: nilNode,
		cnt: 1, sum: rem, minSlack: int64(effC) - int64(rem),
	}
	//rtlint:ignore noalloc cleared map reuses its buckets; growth amortized
	t.pos[j] = i
	return i
}

func (t *feasTree) freeNode(i int32) {
	delete(t.pos, t.nodes[i].job)
	t.nodes[i] = feasNode{} // drop the job pointer
	//rtlint:ignore noalloc reused free-list scratch; growth amortized
	t.free = append(t.free, i)
}

// rotateUp rotates x above its parent, fixing links and aggregates of
// the two nodes involved (ancestors keep valid aggregates because the
// rotation does not change the subtree's member set).
func (t *feasTree) rotateUp(x int32) {
	p := t.nodes[x].parent
	g := t.nodes[p].parent
	if t.nodes[p].left == x {
		r := t.nodes[x].right
		t.nodes[p].left = r
		if r != nilNode {
			t.nodes[r].parent = p
		}
		t.nodes[x].right = p
	} else {
		l := t.nodes[x].left
		t.nodes[p].right = l
		if l != nilNode {
			t.nodes[l].parent = p
		}
		t.nodes[x].left = p
	}
	t.nodes[p].parent = x
	t.nodes[x].parent = g
	if g == nilNode {
		t.root = x
	} else if t.nodes[g].left == p {
		t.nodes[g].left = x
	} else {
		t.nodes[g].right = x
	}
	t.pull(p)
	t.pull(x)
}

func (t *feasTree) leftCnt(v int32) int {
	if l := t.nodes[v].left; l != nilNode {
		return int(t.nodes[l].cnt)
	}
	return 0
}

// insertRaw places a new entry at position pos. Uncharged, unjournaled —
// the primitive shared by insertAt and rollback.
func (t *feasTree) insertRaw(pos int, j *task.Job, effC rtime.Time, rem rtime.Duration) {
	idx := t.alloc(j, effC, rem)
	if t.root == nilNode {
		t.root = idx
		return
	}
	v := t.root
	for {
		if pos <= t.leftCnt(v) {
			if t.nodes[v].left == nilNode {
				t.nodes[v].left = idx
				break
			}
			v = t.nodes[v].left
		} else {
			pos -= t.leftCnt(v) + 1
			if t.nodes[v].right == nilNode {
				t.nodes[v].right = idx
				break
			}
			v = t.nodes[v].right
		}
	}
	t.nodes[idx].parent = v
	// Restore the priority min-heap, then refresh aggregates above the
	// landing spot.
	for p := t.nodes[idx].parent; p != nilNode && t.nodes[idx].prio < t.nodes[p].prio; p = t.nodes[idx].parent {
		t.rotateUp(idx)
	}
	for u := t.nodes[idx].parent; u != nilNode; u = t.nodes[u].parent {
		t.pull(u)
	}
}

// removeRaw deletes the entry at position pos and returns it. Uncharged,
// unjournaled.
func (t *feasTree) removeRaw(pos int) (j *task.Job, effC rtime.Time, rem rtime.Duration) {
	v := t.root
	for {
		lc := t.leftCnt(v)
		switch {
		case pos < lc:
			v = t.nodes[v].left
		case pos == lc:
			goto found
		default:
			pos -= lc + 1
			v = t.nodes[v].right
		}
	}
found:
	n := &t.nodes[v]
	j, effC, rem = n.job, n.effC, n.rem
	// Rotate v down to a leaf; aggregates stay valid throughout because
	// v is still a member until detached.
	for t.nodes[v].left != nilNode || t.nodes[v].right != nilNode {
		l, r := t.nodes[v].left, t.nodes[v].right
		var c int32
		switch {
		case l == nilNode:
			c = r
		case r == nilNode:
			c = l
		case t.nodes[l].prio < t.nodes[r].prio:
			c = l
		default:
			c = r
		}
		t.rotateUp(c)
	}
	p := t.nodes[v].parent
	if p == nilNode {
		t.root = nilNode
	} else if t.nodes[p].left == v {
		t.nodes[p].left = nilNode
	} else {
		t.nodes[p].right = nilNode
	}
	for u := p; u != nilNode; u = t.nodes[u].parent {
		t.pull(u)
	}
	t.freeNode(v)
	return j, effC, rem
}

// mark returns a rollback checkpoint.
func (t *feasTree) mark() int { return len(t.journal) }

// rollback undoes every mutation after checkpoint m, newest first.
// Uncharged, exactly as on the slice.
func (t *feasTree) rollback(m int) {
	for i := len(t.journal) - 1; i >= m; i-- {
		mu := t.journal[i]
		if mu.insert {
			t.removeRaw(mu.pos)
		} else {
			t.insertRaw(mu.pos, mu.job, mu.effC, mu.rem)
		}
	}
	t.journal = t.journal[:m]
}

// indexOf returns j's position, or -1. Charged as one ordered-list
// lookup; the rank is reconstructed from the parent chain.
func (t *feasTree) indexOf(j *task.Job) int {
	t.chargeLog()
	i, ok := t.pos[j]
	if !ok {
		return -1
	}
	rank := t.leftCnt(i)
	for v := i; ; {
		p := t.nodes[v].parent
		if p == nilNode {
			return rank
		}
		if t.nodes[p].right == v {
			rank += t.leftCnt(p) + 1
		}
		v = p
	}
}

// ecfPos returns the insertion position for effective critical time c:
// after all entries with effC ≤ c. Key descent over the effC-sorted
// schedule, equal to sort.Search's answer on the slice.
func (t *feasTree) ecfPos(c rtime.Time) int {
	t.chargeLog()
	pos := 0
	for v := t.root; v != nilNode; {
		if t.nodes[v].effC <= c {
			pos += t.leftCnt(v) + 1
			v = t.nodes[v].right
		} else {
			v = t.nodes[v].left
		}
	}
	return pos
}

func (t *feasTree) insertAt(pos int, j *task.Job, effC rtime.Time, rem rtime.Duration) {
	t.chargeLog()
	t.insertRaw(pos, j, effC, rem)
	//rtlint:ignore noalloc reused journal scratch; growth amortized
	t.journal = append(t.journal, feasMut{insert: true, pos: pos})
}

func (t *feasTree) removeAt(pos int) (j *task.Job, effC rtime.Time, rem rtime.Duration) {
	t.chargeLog()
	j, effC, rem = t.removeRaw(pos)
	//rtlint:ignore noalloc reused journal scratch; growth amortized
	t.journal = append(t.journal, feasMut{pos: pos, job: j, effC: effC, rem: rem})
	return j, effC, rem
}

// effCOf returns the effective critical time of a present job.
// Uncharged, like schedule.entryOf.
func (t *feasTree) effCOf(j *task.Job) rtime.Time {
	i, ok := t.pos[j]
	if !ok {
		return 0
	}
	return t.nodes[i].effC
}

// feasible reports whether the schedule meets every effective critical
// time starting from now, charging one operation per entry the slice
// walk would have visited: all n when feasible, the first violator's
// index + 1 when not.
func (t *feasTree) feasible(now rtime.Time) bool {
	if t.root == nilNode {
		return true
	}
	now64 := int64(now)
	if t.nodes[t.root].minSlack >= now64 {
		*t.ops += int64(t.nodes[t.root].cnt)
		return true
	}
	// Descend to the first (lowest-index) violating entry. acc is the
	// global demand prefix before the subtree under examination; a member
	// with local slack s violates iff s − acc < now.
	idx := 0
	acc := int64(0)
	v := t.root
	for {
		n := &t.nodes[v]
		if l := n.left; l != nilNode {
			if t.nodes[l].minSlack-acc < now64 {
				v = l
				continue
			}
			idx += int(t.nodes[l].cnt)
			acc += int64(t.nodes[l].sum)
		}
		self := acc + int64(n.rem)
		if int64(n.effC)-self < now64 {
			break // v itself is the first violation
		}
		idx++
		acc = self
		v = n.right // the violation must sit in the right subtree
	}
	*t.ops += int64(idx) + 1
	return false
}

// insertChain is §3.4.1 on the tree — the same algorithm as
// schedule.insertChain, with rem captured at insertion (acc is the
// world's per-access overhead, needed for Remaining).
func (t *feasTree) insertChain(chain []*task.Job, acc rtime.Duration) {
	var prev *task.Job   // successor in dependency order (inserted last iteration)
	var prevC rtime.Time // prev's effective critical time
	for i := len(chain) - 1; i >= 0; i-- {
		d := chain[i]
		if d.Done() || d.State == task.Aborting {
			continue
		}
		if di := t.indexOf(d); di >= 0 {
			// Already present (inserted as a dependent of an earlier,
			// higher-PUD job). Re-establish dependency order: d must also
			// precede prev (§3.4.1's removal-and-reinsertion case).
			if prev != nil {
				pi := t.indexOf(prev)
				if di > pi {
					job, _, rem := t.removeAt(di)
					t.insertAt(pi, job, prevC, rem)
				}
			}
			prev, prevC = d, t.effCOf(d)
			continue
		}
		effC := d.AbsoluteCriticalTime()
		pos := t.ecfPos(effC)
		if prev != nil {
			pi := t.indexOf(prev)
			if pos > pi {
				// ECF order inconsistent with dependency order (Case 2):
				// force d before prev and inherit prev's critical time.
				pos = pi
				effC = prevC
			}
		}
		t.insertAt(pos, d, effC, d.Remaining(acc))
		prev, prevC = d, effC
	}
}

// first returns the schedule head (leftmost entry), or nil.
func (t *feasTree) first() *task.Job {
	v := t.root
	if v == nilNode {
		return nil
	}
	for t.nodes[v].left != nilNode {
		v = t.nodes[v].left
	}
	return t.nodes[v].job
}

// succ returns the in-order successor of v, or nilNode.
func (t *feasTree) succ(v int32) int32 {
	if r := t.nodes[v].right; r != nilNode {
		for t.nodes[r].left != nilNode {
			r = t.nodes[r].left
		}
		return r
	}
	for {
		p := t.nodes[v].parent
		if p == nilNode {
			return nilNode
		}
		if t.nodes[p].left == v {
			return p
		}
		v = p
	}
}

// appendFirstK appends the first k schedule entries (in order) to dst
// without allocating beyond dst's growth.
func (t *feasTree) appendFirstK(dst []*task.Job, k int) []*task.Job {
	if k <= 0 || t.root == nilNode {
		return dst
	}
	v := t.root
	for t.nodes[v].left != nilNode {
		v = t.nodes[v].left
	}
	for v != nilNode && len(dst) < k {
		//rtlint:ignore noalloc appends into the caller's reused buffer; growth amortized
		dst = append(dst, t.nodes[v].job)
		v = t.succ(v)
	}
	return dst
}
