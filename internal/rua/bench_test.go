package rua

// Benchmarks holding the incremental feasibility tree against the
// retained slice reference at scale: one selectFull-shaped pass (insert
// every live job's chain, feasibility check after each insertion) over
// n ∈ 10²–10⁴ live jobs. The slice reference pays O(n) per insert
// (memmove) and O(n) per feasibility walk — Θ(n²) per pass — while the
// tree pays O(log n) for both; the ratio at n=10⁴ is the PR's headline
// speedup for the scheduler side. Run:
//
//	go test -run NONE -bench BenchmarkFeas -benchmem ./internal/rua/
import (
	"fmt"
	"testing"

	"repro/internal/rtime"
	"repro/internal/task"
)

// benchJobs builds n single-job chains with clustered critical times
// (forcing effC ties like the scale workload's clusters do).
func benchJobs(n int) [][]*task.Job {
	chains := make([][]*task.Job, n)
	for i := range chains {
		// Critical times scale with n so the full pass stays feasible
		// (Σ comp < every C), clustered into 37 groups to force effC ties.
		c := rtime.Duration(100*n + 1000*(i%37))
		comp := rtime.Duration(5 + i%16)
		chains[i] = []*task.Job{mkJob(i, 1+float64(i%5), c, comp, 0)}
	}
	return chains
}

func BenchmarkFeasTreePass(b *testing.B) {
	const acc = rtime.Duration(10)
	for _, n := range []int{100, 1000, 10_000} {
		chains := benchJobs(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var ops int64
			ft := &feasTree{ops: &ops}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ft.reset(n)
				for _, ch := range chains {
					ft.insertChain(ch, acc)
					if !ft.feasible(0) {
						b.Fatal("bench world must stay feasible")
					}
					ft.journal = ft.journal[:0]
				}
			}
		})
	}
}

func BenchmarkFeasSliceRefPass(b *testing.B) {
	const acc = rtime.Duration(10)
	for _, n := range []int{100, 1000, 10_000} {
		chains := benchJobs(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var ops int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := &schedule{ops: &ops}
				for _, ch := range chains {
					s.insertChain(ch)
					if !s.feasible(0, acc) {
						b.Fatal("bench world must stay feasible")
					}
					s.journal = s.journal[:0]
				}
			}
		})
	}
}
