package rua

// Differential tests holding the incremental feasibility tree to the
// retained slice reference: identical entry order, identical effective
// critical times, identical feasibility verdicts, and — load-bearing
// for Fig 9 — identical charged operation counts, across randomized
// chain insertions, Case-2 reorders, rollbacks, and positional edits.

import (
	"math/rand"
	"testing"

	"repro/internal/rtime"
	"repro/internal/task"
)

// treeEntries returns the tree's in-order (job, effC) sequence.
func treeEntries(t *feasTree) []entry {
	var out []entry
	v := t.root
	if v == nilNode {
		return out
	}
	for t.nodes[v].left != nilNode {
		v = t.nodes[v].left
	}
	for v != nilNode {
		out = append(out, entry{job: t.nodes[v].job, effC: t.nodes[v].effC})
		v = t.succ(v)
	}
	return out
}

func compareStates(t *testing.T, ctx string, s *schedule, ft *feasTree, opsS, opsT int64) {
	t.Helper()
	if opsS != opsT {
		t.Fatalf("%s: charged ops diverged: slice %d, tree %d", ctx, opsS, opsT)
	}
	te := treeEntries(ft)
	if len(te) != len(s.entries) {
		t.Fatalf("%s: length %d (tree) != %d (slice)", ctx, len(te), len(s.entries))
	}
	for i := range te {
		if te[i].job != s.entries[i].job || te[i].effC != s.entries[i].effC {
			t.Fatalf("%s: entry %d: tree (%s, %v) != slice (%s, %v)",
				ctx, i, te[i].job.Name(), te[i].effC, s.entries[i].job.Name(), s.entries[i].effC)
		}
	}
	if ft.count() != len(s.entries) {
		t.Fatalf("%s: count %d != %d", ctx, ft.count(), len(s.entries))
	}
}

// TestFeasTreeDifferential drives both structures through randomized
// RUA-shaped workloads: chains of random length over a shared job pool
// (so removal-and-reinsertion triggers), feasibility tests at randomized
// times with rollback on failure, exactly like step 5 of selectFull.
func TestFeasTreeDifferential(t *testing.T) {
	const acc = rtime.Duration(10)
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nJobs := 5 + rng.Intn(40)
		jobs := make([]*task.Job, nJobs)
		for i := range jobs {
			// Clustered critical times force effC ties; varied computation
			// times vary the prefix sums.
			c := rtime.Duration(100 * (1 + rng.Intn(12)))
			comp := rtime.Duration(5 + rng.Intn(120))
			jobs[i] = mkJob(i, 1+float64(rng.Intn(5)), c, comp, 0)
		}

		var opsS, opsT int64
		s := &schedule{ops: &opsS}
		ft := &feasTree{}
		ft.reset(nJobs)
		ft.ops = &opsT

		for round := 0; round < 60; round++ {
			// Random chain over the pool, tail job distinct members.
			clen := 1 + rng.Intn(3)
			chain := make([]*task.Job, 0, clen)
			used := map[int]bool{}
			for len(chain) < clen {
				i := rng.Intn(nJobs)
				if used[i] {
					continue
				}
				used[i] = true
				chain = append(chain, jobs[i])
			}
			tail := chain[len(chain)-1]

			si := s.indexOf(tail)
			ti := ft.indexOf(tail)
			if si != ti {
				t.Fatalf("seed %d round %d: indexOf %d != %d", seed, round, si, ti)
			}
			if si >= 0 {
				compareStates(t, "indexOf-skip", s, ft, opsS, opsT)
				continue
			}

			ms, mt := s.mark(), ft.mark()
			s.insertChain(chain)
			ft.insertChain(chain, acc)
			compareStates(t, "post-insertChain", s, ft, opsS, opsT)

			// Feasibility from a random instant; compare verdicts and the
			// per-entry charge (all-n on success, violator+1 on failure).
			now := rtime.Time(rng.Intn(1500))
			fs := s.feasible(now, acc)
			ftr := ft.feasible(now)
			if fs != ftr {
				t.Fatalf("seed %d round %d: feasible(%v) %v != %v", seed, round, now, fs, ftr)
			}
			compareStates(t, "post-feasible", s, ft, opsS, opsT)
			if !fs {
				s.rollback(ms)
				ft.rollback(mt)
				compareStates(t, "post-rollback", s, ft, opsS, opsT)
			} else {
				s.journal = s.journal[:0]
				ft.journal = ft.journal[:0]
			}

			// Spot-check ecfPos agreement on a random key.
			c := rtime.Time(rng.Intn(1500))
			if ps, pt := s.ecfPos(c), ft.ecfPos(c); ps != pt {
				t.Fatalf("seed %d round %d: ecfPos(%v) %d != %d", seed, round, c, ps, pt)
			}
		}
	}
}

// TestFeasTreePositionalDifferential hammers raw positional inserts and
// removals — the journal/rollback primitives — independent of chain
// semantics, keeping the effC-sorted invariant the way insertChain does.
func TestFeasTreePositionalDifferential(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var opsS, opsT int64
		s := &schedule{ops: &opsS}
		ft := &feasTree{}
		ft.reset(0)
		ft.ops = &opsT
		nextID := 0
		for op := 0; op < 400; op++ {
			if len(s.entries) == 0 || rng.Intn(3) > 0 {
				j := mkJob(nextID, 1, rtime.Duration(50+rng.Intn(500)), rtime.Duration(1+rng.Intn(50)), 0)
				nextID++
				effC := j.AbsoluteCriticalTime()
				ps, pt := s.ecfPos(effC), ft.ecfPos(effC)
				if ps != pt {
					t.Fatalf("seed %d op %d: ecfPos %d != %d", seed, op, ps, pt)
				}
				s.insertAt(ps, entry{job: j, effC: effC})
				ft.insertAt(pt, j, effC, j.Remaining(10))
			} else {
				p := rng.Intn(len(s.entries))
				es := s.removeAt(p)
				jt, effCT, _ := ft.removeAt(p)
				if es.job != jt || es.effC != effCT {
					t.Fatalf("seed %d op %d: removeAt(%d) (%s,%v) != (%s,%v)",
						seed, op, p, es.job.Name(), es.effC, jt.Name(), effCT)
				}
			}
			compareStates(t, "positional", s, ft, opsS, opsT)
			// Occasionally roll the whole journal back and replay forward.
			if rng.Intn(25) == 0 {
				s.rollback(0)
				ft.rollback(0)
				compareStates(t, "full-rollback", s, ft, opsS, opsT)
				s.journal = s.journal[:0]
				ft.journal = ft.journal[:0]
			}
		}
	}
}

// TestSelectSteadyStateNoAlloc pins the zero-alloc contract on the full
// scheduling pass: after warm-up, Select allocates nothing, in both
// sharing modes.
func TestSelectSteadyStateNoAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		rua  *RUA
	}{
		{"lockfree", NewLockFree()},
		{"lockbased", NewLockBased()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			jobs := make([]*task.Job, 32)
			for i := range jobs {
				jobs[i] = mkJob(i, float64(1+i%5), rtime.Duration(500+10*i), rtime.Duration(20+i%7), 0)
			}
			w := world(0, nil, !tc.rua.lockFree, jobs...)
			for i := 0; i < 3; i++ {
				tc.rua.Select(w)
			}
			allocs := testing.AllocsPerRun(100, func() {
				tc.rua.Select(w)
			})
			if allocs != 0 {
				t.Fatalf("Select steady-state allocs/run = %v, want 0", allocs)
			}
		})
	}
}

// TestSelectTopKMatchesSchedulePrefix checks the tree-backed TopK path
// against Select's head and the slice-visible order.
func TestSelectTopKMatchesSchedulePrefix(t *testing.T) {
	r := NewLockFree()
	jobs := make([]*task.Job, 12)
	for i := range jobs {
		jobs[i] = mkJob(i, float64(1+i), rtime.Duration(300+40*i), 25, 0)
	}
	w := world(0, nil, false, jobs...)
	d := r.Select(w)
	ranked, ops := r.SelectTopK(w, 4)
	if len(ranked) != 4 {
		t.Fatalf("TopK len = %d", len(ranked))
	}
	if ranked[0] != d.Run {
		t.Fatalf("TopK head %s != Select run %s", ranked[0].Name(), d.Run.Name())
	}
	if d.Ops != ops {
		t.Fatalf("ops %d != %d across identical passes", d.Ops, ops)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i] == ranked[i-1] {
			t.Fatal("duplicate in TopK")
		}
	}
}
