package predict

import (
	"math"
	"testing"

	"repro/internal/metrics/series"
	"repro/internal/rtime"
)

// synthetic builds a series whose windows obey the exact affine model
// busy = commits·(alpha + beta·retries/commits), so the fit must
// recover (alpha, beta) and predict with ~zero error.
func synthetic(alpha, beta float64, commits, retries []int64) *series.Series {
	s := &series.Series{Window: 100, CPUs: 1}
	for i := range commits {
		c, r := commits[i], retries[i]
		var busy int64
		if c > 0 {
			busy = int64(math.Round(float64(c)*alpha + float64(r)*beta))
		}
		s.Points = append(s.Points, series.Point{
			Start:     rtime.Time(int64(i) * 100),
			Commits:   c,
			Retries:   r,
			BusyTicks: busy,
		})
	}
	s.End = rtime.Time(int64(len(commits)) * 100)
	return s
}

func TestFitRecoversKnownModel(t *testing.T) {
	o := FromSeries(synthetic(20, 5,
		[]int64{10, 20, 30, 40, 10, 25},
		[]int64{0, 10, 45, 120, 5, 50}))
	if math.Abs(o.Fit.Alpha-20) > 0.5 || math.Abs(o.Fit.Beta-5) > 0.5 {
		t.Fatalf("fit (α=%.2f, β=%.2f), want (20, 5)", o.Fit.Alpha, o.Fit.Beta)
	}
	if o.Fit.Windows != 6 {
		t.Fatalf("fit support %d windows, want 6", o.Fit.Windows)
	}
	if o.RelErr > 0.01 {
		t.Fatalf("relative error %.4f on exact synthetic data", o.RelErr)
	}
	for _, p := range o.Points {
		if p.Observed > 0 && math.Abs(p.Predicted-float64(p.Observed)) > 1 {
			t.Fatalf("window at %v: predicted %.2f vs observed %d", p.Start, p.Predicted, p.Observed)
		}
	}
}

// TestZeroConflictVariance: a lock-based-style series (no retries
// anywhere) must fall back to the intercept-only model, not divide by
// a zero variance.
func TestZeroConflictVariance(t *testing.T) {
	o := FromSeries(synthetic(30, 0,
		[]int64{10, 20, 15},
		[]int64{0, 0, 0}))
	if o.Fit.Beta != 0 {
		t.Fatalf("β=%v on zero-variance input", o.Fit.Beta)
	}
	if math.Abs(o.Fit.Alpha-30) > 0.5 {
		t.Fatalf("α=%v, want 30", o.Fit.Alpha)
	}
	if o.RelErr > 0.01 {
		t.Fatalf("relative error %.4f", o.RelErr)
	}
}

// TestEmptyAndIdleWindows: no commits anywhere yields the zero
// overlay; idle windows inside a busy run predict zero and are
// excluded from the fit.
func TestEmptyAndIdleWindows(t *testing.T) {
	o := FromSeries(synthetic(0, 0, []int64{0, 0}, []int64{0, 0}))
	if o.Fit.Windows != 0 || o.RelErr != 0 {
		t.Fatalf("empty overlay: %+v", o)
	}
	if FromSeries(nil).Fit.Windows != 0 {
		t.Fatal("nil series must yield the zero overlay")
	}
	o = FromSeries(synthetic(10, 2,
		[]int64{10, 0, 20},
		[]int64{5, 0, 10}))
	if o.Fit.Windows != 2 {
		t.Fatalf("idle window counted in fit: %d", o.Fit.Windows)
	}
	if o.Points[1].Predicted != 0 || o.Points[1].Observed != 0 {
		t.Fatalf("idle window predicted %+v", o.Points[1])
	}
}

// TestNegativeBetaClamped: when noise tilts the slope negative the fit
// collapses to intercept-only rather than predicting contention
// speedups.
func TestNegativeBetaClamped(t *testing.T) {
	// Higher conflict level ↔ cheaper commits: unphysical.
	s := synthetic(0, 0, []int64{10, 10}, []int64{0, 20})
	s.Points[0].BusyTicks = 400 // y=40 at x=0
	s.Points[1].BusyTicks = 200 // y=20 at x=2
	o := FromSeries(s)
	if o.Fit.Beta != 0 {
		t.Fatalf("negative slope survived: β=%v", o.Fit.Beta)
	}
	if math.Abs(o.Fit.Alpha-30) > 0.5 {
		t.Fatalf("clamped α=%v, want mean 30", o.Fit.Alpha)
	}
}

// TestDeterministic: equal series produce identical overlays.
func TestDeterministic(t *testing.T) {
	mk := func() *Overlay {
		return FromSeries(synthetic(17, 3,
			[]int64{5, 9, 13, 2}, []int64{1, 8, 20, 0}))
	}
	a, b := mk(), mk()
	if a.Fit != b.Fit || a.RelErr != b.RelErr || len(a.Points) != len(b.Points) {
		t.Fatal("overlay not deterministic")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs", i)
		}
	}
}
