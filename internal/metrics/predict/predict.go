// Package predict implements an analytic throughput predictor for the
// lock-free simulation in the style of Atalar et al., "Analyzing the
// Performance of Lock-Free Data Structures: A Conflict-Based Model"
// (arXiv:1611.05793): in a retry loop, the expected cost of one
// successful operation is an affine function of the conflict level —
// a base cost for the winning attempt plus a marginal cost per failed
// attempt. Folded onto this repository's virtual-time model,
//
//	busy-ticks per commit  ≈  α + β · (retries per commit)
//
// where α absorbs the operation's conflict-free path (execution slice,
// access cost s, scheduler overhead amortized per commit) and β the
// marginal price of one failed attempt (the wasted access window plus
// its overhead — in the paper's §3.6 cost model roughly s plus the
// charged retry handling).
//
// The predictor fits (α, β) by least squares over the windows of a
// metrics/series fold — measured retry rates and contention windows,
// exactly the quantities the stochastic-scheduler sweeps perturb — and
// then inverts the model per window to predict throughput:
//
//	commits_w ≈ BusyTicks_w / (α + β · x_w)
//
// The report overlays predicted against observed commits per window
// and states the aggregate relative error, so a reader can judge at a
// glance how far the practically-wait-free regime (low x, throughput
// tracking busy time) extends before contention bends the curve.
//
// All arithmetic is pure float64 over exact integer inputs in a fixed
// order, so equal series produce byte-identical overlays — required
// for the cross-`-jobs` report identity the repo guarantees.
package predict

import (
	"math"

	"repro/internal/metrics/series"
	"repro/internal/rtime"
)

// Fit is the least-squares estimate of the per-commit cost model.
type Fit struct {
	Alpha   float64 // base busy-ticks per commit at zero conflicts
	Beta    float64 // marginal busy-ticks per retry
	Windows int     // windows with at least one commit (fit support)
}

// Sample is one window of the predicted-vs-observed overlay.
type Sample struct {
	Start     rtime.Time
	X         float64 // retries per commit (conflict level)
	Observed  int64   // committed operations in the window
	Predicted float64 // model's commit count for the window
}

// Overlay is the rendered prediction for one run.
type Overlay struct {
	Fit    Fit
	Points []Sample
	// RelErr is |Σ predicted − Σ observed| / Σ observed over windows
	// with commits; 0 when nothing committed.
	RelErr float64
}

// FromSeries fits the cost model to a folded run and evaluates it per
// window. Windows without commits contribute nothing to the fit and
// predict zero (no committed work to model). Returns a zero-valued
// overlay when no window commits.
func FromSeries(s *series.Series) *Overlay {
	o := &Overlay{}
	if s == nil {
		return o
	}
	// Pass 1: accumulate the regression moments over supported windows.
	var n float64
	var sx, sy, sxx, sxy float64
	for _, p := range s.Points {
		if p.Commits <= 0 {
			continue
		}
		x := float64(p.Retries) / float64(p.Commits)
		y := float64(p.BusyTicks) / float64(p.Commits)
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	o.Fit.Windows = int(n)
	if n > 0 {
		den := n*sxx - sx*sx
		if den > 0 {
			o.Fit.Beta = (n*sxy - sx*sy) / den
			o.Fit.Alpha = (sy - o.Fit.Beta*sx) / n
		} else {
			// Zero conflict variance (e.g. a lock-based run: x ≡ 0) —
			// the model collapses to its intercept.
			o.Fit.Beta = 0
			o.Fit.Alpha = sy / n
		}
		// A negative marginal retry cost is noise, not physics: clamp to
		// the intercept-only model rather than predict speedups from
		// contention.
		if o.Fit.Beta < 0 || math.IsNaN(o.Fit.Beta) {
			o.Fit.Beta = 0
			o.Fit.Alpha = sy / n
		}
	}
	// Pass 2: invert the model per window.
	var sumObs, sumPred float64
	o.Points = make([]Sample, 0, len(s.Points))
	for _, p := range s.Points {
		sm := Sample{Start: p.Start}
		if p.Commits > 0 {
			sm.X = float64(p.Retries) / float64(p.Commits)
			sm.Observed = p.Commits
			if cost := o.Fit.Alpha + o.Fit.Beta*sm.X; cost > 0 {
				sm.Predicted = float64(p.BusyTicks) / cost
			}
			sumObs += float64(sm.Observed)
			sumPred += sm.Predicted
		}
		o.Points = append(o.Points, sm)
	}
	if sumObs > 0 {
		o.RelErr = math.Abs(sumPred-sumObs) / sumObs
	}
	return o
}
