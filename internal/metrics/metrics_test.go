package metrics

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/tuf"
	"repro/internal/uam"
)

func mkResult() sim.Result {
	tk := &task.Task{
		ID: 0, TUF: tuf.MustStep(10, 1000),
		Arrival:  uam.Spec{L: 0, A: 1, W: 2000},
		Segments: task.InterleavedSegments(100, 0, nil),
	}
	// j1 completes in time; j2 aborted; j3 released too late to count.
	j1 := task.NewJob(tk, 0, 0)
	j1.State = task.Completed
	j1.Completion = 400
	j2 := task.NewJob(tk, 1, 100)
	j2.State = task.Aborted
	j2.AbortedAt = 1100
	j3 := task.NewJob(tk, 2, 9800) // critical time 10800 > horizon
	return sim.Result{Jobs: []*task.Job{j1, j2, j3}, Horizon: 10_000}
}

func TestAnalyze(t *testing.T) {
	st := Analyze(mkResult())
	if st.Released != 2 {
		t.Fatalf("Released = %d, want 2 (late job excluded)", st.Released)
	}
	if st.Completed != 1 || st.Aborted != 1 || st.Met != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AUR != 0.5 { // 10 accrued / 20 possible
		t.Fatalf("AUR = %v, want 0.5", st.AUR)
	}
	if st.CMR != 0.5 {
		t.Fatalf("CMR = %v, want 0.5", st.CMR)
	}
	if st.MeanSojourn != 400 || st.MaxSojourn != 400 {
		t.Fatalf("sojourns = %v/%v", st.MeanSojourn, st.MaxSojourn)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	st := Analyze(sim.Result{Horizon: 100})
	if st.AUR != 0 || st.CMR != 0 || st.Released != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestApproximateLoad(t *testing.T) {
	tasks := []*task.Task{
		{TUF: tuf.MustStep(1, 1000), Arrival: uam.Periodic(2000),
			Segments: task.InterleavedSegments(100, 2, []int{0})},
		{TUF: tuf.MustStep(1, 500), Arrival: uam.Periodic(2000),
			Segments: task.InterleavedSegments(50, 0, nil)},
	}
	// AL = 100/1000 + 50/500 = 0.2 — object accesses excluded.
	if got := ApproximateLoad(tasks); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("AL = %v, want 0.2", got)
	}
}

func TestUAMLoad(t *testing.T) {
	tasks := []*task.Task{
		{TUF: tuf.MustStep(1, 1000), Arrival: uam.Spec{L: 1, A: 1, W: 1000},
			Segments: task.InterleavedSegments(100, 0, nil)},
	}
	// rate = (1+1)/(2·1000) = 0.001; load = 0.1.
	if got := UAMLoad(tasks); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("UAMLoad = %v, want 0.1", got)
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summarize = %+v", s)
	}
	if s := Summarize([]float64{7}); s.N != 1 || s.Mean != 7 || s.CI95 != 0 {
		t.Fatalf("single summarize = %+v", s)
	}
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 {
		t.Fatalf("mean = %v", s.Mean)
	}
	// sd = sqrt(2.5), ci = 1.96·sd/√5
	want := 1.96 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(s.CI95-want) > 1e-9 {
		t.Fatalf("ci = %v, want %v", s.CI95, want)
	}
	if s.String() == "" {
		t.Fatal("empty render")
	}
}

func buildAt(al float64) (sim.Config, error) {
	// n identical tasks, each u=100, C=1000 → per-task AL contribution
	// 0.1. Periodic W=C so the CPU sees sustained load ≈ al... we scale u
	// instead for a smooth sweep.
	u := rtime.Duration(al * 1000)
	if u < 1 {
		u = 1
	}
	tk := &task.Task{
		ID: 0, TUF: tuf.MustStep(1, 1000),
		Arrival:  uam.Spec{L: 1, A: 1, W: 1000},
		Segments: task.InterleavedSegments(u, 0, nil),
	}
	return sim.Config{
		Tasks:     []*task.Task{tk},
		Scheduler: sched.EDF{},
		Mode:      sim.LockFree,
		R:         10, S: 3,
		Horizon:     50_000,
		ArrivalKind: uam.KindPeriodic,
		Seed:        1,
	}, nil
}

func TestFindCML(t *testing.T) {
	loads := []float64{0.2, 0.5, 0.9, 1.2, 1.5}
	cml, cmrs, err := FindCML(CMLConfig{Build: buildAt, Loads: loads})
	if err != nil {
		t.Fatal(err)
	}
	// A single periodic task with u ≤ C completes everything; u > C
	// (load > 1) must miss. Ideal scheduler ⇒ CML = 0.9 grid point.
	if cml != 0.9 {
		t.Fatalf("CML = %v, want 0.9 (cmrs=%v)", cml, cmrs)
	}
	if cmrs[0] != 1 || cmrs[4] == 1 {
		t.Fatalf("cmrs = %v", cmrs)
	}
}

func TestFindCMLValidation(t *testing.T) {
	if _, _, err := FindCML(CMLConfig{}); !errors.Is(err, ErrInput) {
		t.Fatal("empty config accepted")
	}
	if _, _, err := FindCML(CMLConfig{Build: buildAt, Loads: []float64{0.5, 0.2}}); !errors.Is(err, ErrInput) {
		t.Fatal("descending loads accepted")
	}
}

// TestFindCMLAllPass: when even the heaviest load misses nothing the
// CML is the last grid point, not stuck at an earlier one.
func TestFindCMLAllPass(t *testing.T) {
	loads := []float64{0.2, 0.5, 0.9}
	cml, cmrs, err := FindCML(CMLConfig{Build: buildAt, Loads: loads})
	if err != nil {
		t.Fatal(err)
	}
	if cml != 0.9 {
		t.Fatalf("CML = %v, want last load 0.9 (cmrs=%v)", cml, cmrs)
	}
	for i, c := range cmrs {
		if c != 1 {
			t.Fatalf("load %v missed: cmrs=%v", loads[i], cmrs)
		}
	}
}

// buildTiny builds a run whose horizon ends before any job's critical
// time, so Analyze releases nothing.
func buildTiny(al float64) (sim.Config, error) {
	sc, err := buildAt(al)
	sc.Horizon = 10 // first critical time is ≥ 1000
	return sc, err
}

// TestFindCMLZeroReleased exercises the vacuous-load sentinel: a load
// that releases no jobs is skipped rather than counted as a pass, even
// when the tolerance would accept CMR = 0.
func TestFindCMLZeroReleased(t *testing.T) {
	cml, cmrs, err := FindCML(CMLConfig{
		Build: buildTiny, Loads: []float64{0.5, 1.0},
		MissTolerance: 1, // accepts any CMR — only the sentinel keeps cml at 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if cml != 0 {
		t.Fatalf("CML = %v, want 0 for vacuous loads", cml)
	}
	for _, c := range cmrs {
		if c != 0 {
			t.Fatalf("vacuous cmrs = %v", cmrs)
		}
	}
}

// TestSummarizeIdentical: zero variance yields a zero confidence
// interval, not NaN.
func TestSummarizeIdentical(t *testing.T) {
	s := Summarize([]float64{4, 4, 4, 4})
	if s.N != 4 || s.Mean != 4 || s.CI95 != 0 {
		t.Fatalf("identical summarize = %+v", s)
	}
	if math.IsNaN(s.CI95) || math.IsNaN(s.Mean) {
		t.Fatalf("NaN crept in: %+v", s)
	}
}

func TestPerTask(t *testing.T) {
	mk := func(id int) *task.Task {
		return &task.Task{
			ID: id, Name: "T", TUF: tuf.MustStep(10, 1000),
			Arrival:  uam.Spec{L: 0, A: 1, W: 2000},
			Segments: task.InterleavedSegments(100, 0, nil),
		}
	}
	t0, t1 := mk(0), mk(1)
	j1 := task.NewJob(t0, 0, 0)
	j1.State = task.Completed
	j1.Completion = 400
	j1.Retries = 2
	j2 := task.NewJob(t0, 1, 100)
	j2.State = task.Aborted
	j3 := task.NewJob(t1, 0, 0)
	j3.State = task.Completed
	j3.Completion = 999
	r := sim.Result{Jobs: []*task.Job{j1, j2, j3}, Horizon: 10_000}
	per := PerTask(r)
	if len(per) != 2 {
		t.Fatalf("tasks = %d", len(per))
	}
	if per[0].TaskID != 0 || per[0].Released != 2 || per[0].Completed != 1 || per[0].Aborted != 1 {
		t.Fatalf("task0 = %+v", per[0])
	}
	if per[0].AUR != 0.5 || per[0].CMR != 0.5 || per[0].Retries != 2 {
		t.Fatalf("task0 rates = %+v", per[0])
	}
	if per[1].AUR != 1.0 || per[1].CMR != 1.0 {
		t.Fatalf("task1 = %+v", per[1])
	}
}

// TestPerTaskAbortedOnly: a task whose every job aborts gets zero
// rates (not NaN) and correct counts.
func TestPerTaskAbortedOnly(t *testing.T) {
	tk := &task.Task{
		ID: 3, Name: "doomed", TUF: tuf.MustStep(10, 1000),
		Arrival:  uam.Spec{L: 0, A: 1, W: 2000},
		Segments: task.InterleavedSegments(100, 0, nil),
	}
	j1 := task.NewJob(tk, 0, 0)
	j1.State = task.Aborted
	j1.Retries = 5
	j2 := task.NewJob(tk, 1, 100)
	j2.State = task.Aborting
	r := sim.Result{Jobs: []*task.Job{j1, j2}, Horizon: 10_000}
	per := PerTask(r)
	if len(per) != 1 {
		t.Fatalf("tasks = %d", len(per))
	}
	st := per[0]
	if st.Released != 2 || st.Completed != 0 || st.Aborted != 2 || st.Met != 0 {
		t.Fatalf("counts = %+v", st)
	}
	if st.AUR != 0 || st.CMR != 0 {
		t.Fatalf("rates = %+v", st)
	}
	if math.IsNaN(st.AUR) || math.IsNaN(st.CMR) {
		t.Fatalf("NaN rates: %+v", st)
	}
	if st.Retries != 5 {
		t.Fatalf("retries = %d", st.Retries)
	}
}
