// Package ops folds a raw trace event stream into per-operation retry
// telemetry: for every shared object, the distribution of ATTEMPTS a
// committed access needed (1 + CAS failures) and of the CAS FAILURES
// themselves. This is the measured analogue of the paper's §4 retry
// analysis — Theorem 2 bounds worst-case retries per access; these
// histograms show where the observed tail actually sits — and the raw
// material for the Atalar-style throughput predictor
// (internal/metrics/predict), whose fit consumes the mean failure rate.
//
// No new engine events exist for this: the fold reuses the existing
// vocabulary. A trace.Retry or trace.FaultRetry names the object whose
// access restarts; the job's eventual trace.Commit on that object
// closes the operation and records attempts = failures + 1. Lock-based
// runs therefore produce all-ones attempt distributions (a blocked
// access waits, it never retries), which is exactly the calibration
// baseline the predictor wants.
//
// Like internal/metrics/series, folding sorts by virtual time first, so
// the partitioned engine's per-partition streams fold identically to a
// globally ordered one, and Merge is associative over shards — both are
// required for cross-`-jobs` byte-identity.
package ops

import (
	"sort"

	"repro/internal/metrics/hist"
	"repro/internal/trace"
)

// histCap bounds the Exp2 histograms: per-access attempt counts are
// small (Theorem 2 bounds them by the conflict count), so 2^12 leaves
// generous headroom while keeping bucket-degraded quantiles tight.
const histCap = 1 << 12

// Dist is the telemetry of one operation kind (one shared object).
type Dist struct {
	Object   int        // object id, or -1 for the cross-object total
	Ops      int64      // committed operations
	Attempts *hist.Hist // attempts per committed operation (≥ 1)
	Failures *hist.Hist // CAS failures per committed operation (≥ 0)
}

// newDist allocates an empty distribution for obj.
func newDist(obj int) *Dist {
	return &Dist{Object: obj, Attempts: hist.Exp2(histCap), Failures: hist.Exp2(histCap)}
}

// record closes one committed operation that needed fails CAS failures.
func (d *Dist) record(fails int64) {
	d.Ops++
	d.Attempts.Add(fails + 1)
	d.Failures.Add(fails)
}

// Set holds the per-object distributions of one run, ascending by
// object id.
type Set struct {
	Dists []*Dist
}

// jobObj identifies one job's in-flight access to one object. Keying
// by (job, object) rather than job alone tolerates streams where an
// abort leaves a dangling retry counter: the counter can only ever be
// consumed by a commit on the same object by the same job.
type jobObj struct {
	task, seq, obj int
}

// Stream folds a trace event stream into per-object operation
// telemetry online, one event at a time. The fold is per-(job, object)
// and order-insensitive within a job's access — fed the events
// FromEvents sorts, in any time order, it produces an identical Set —
// and its memory is O(objects + in-flight accesses) regardless of trace
// length.
type Stream struct {
	byObj   map[int]*Dist
	pending map[jobObj]int64 // open operation → CAS failures so far
	total   *Dist            // cross-object running total (Object = -1)
}

// NewStream builds an online operation-telemetry folder.
func NewStream() *Stream {
	return &Stream{byObj: map[int]*Dist{}, pending: map[jobObj]int64{}, total: newDist(-1)}
}

// Total returns the live cross-object distribution (Object = -1). It is
// maintained incrementally — reading it costs nothing — and agrees with
// Set().Total() on counts, sums, extremes, and quantiles (samples are
// multiset-equal; both render sorted).
func (s *Stream) Total() *Dist { return s.total }

// dist returns (allocating on first use) the distribution for obj.
func (s *Stream) dist(obj int) *Dist {
	d := s.byObj[obj]
	if d == nil {
		d = newDist(obj)
		s.byObj[obj] = d
	}
	return d
}

// Observe folds one event. Events that name no object or no job are
// ignored.
func (s *Stream) Observe(e trace.Event) {
	if e.Object < 0 || e.Task < 0 {
		return
	}
	k := jobObj{e.Task, e.Seq, e.Object}
	switch e.Kind {
	case trace.Retry, trace.FaultRetry:
		s.pending[k]++
	case trace.Commit:
		s.dist(e.Object).record(s.pending[k])
		s.total.record(s.pending[k])
		delete(s.pending, k)
	case trace.LockRelease:
		// A lock-based access commits by releasing its lock: count it
		// as a one-attempt operation so both modes share an axis.
		s.dist(e.Object).record(0)
		s.total.record(0)
	}
}

// Set returns the folded distributions, ascending by object id. Open
// (uncommitted) accesses contribute nothing, exactly as in FromEvents.
func (s *Stream) Set() *Set {
	out := &Set{}
	objs := make([]int, 0, len(s.byObj))
	for obj := range s.byObj {
		objs = append(objs, obj)
	}
	sort.Ints(objs)
	for _, obj := range objs {
		out.Dists = append(out.Dists, s.byObj[obj])
	}
	return out
}

// FromEvents folds events into per-object operation telemetry. Events
// are sorted by virtual time first (stable), so any interleaving of
// per-partition streams folds identically.
func FromEvents(events []trace.Event) *Set {
	evs := make([]trace.Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	s := NewStream()
	for _, e := range evs {
		s.Observe(e)
	}
	return s.Set()
}

// Merge folds o into s: distributions of the same object merge
// (exact-count associative, see hist.Merge); new objects are inserted
// keeping ascending order. Shard-order independence makes the
// cross-`-jobs` report byte-identical.
func (s *Set) Merge(o *Set) error {
	for _, od := range o.Dists {
		i := sort.Search(len(s.Dists), func(i int) bool { return s.Dists[i].Object >= od.Object })
		if i < len(s.Dists) && s.Dists[i].Object == od.Object {
			d := s.Dists[i]
			d.Ops += od.Ops
			if err := d.Attempts.Merge(od.Attempts); err != nil {
				return err
			}
			if err := d.Failures.Merge(od.Failures); err != nil {
				return err
			}
			continue
		}
		nd := newDist(od.Object)
		nd.Ops = od.Ops
		if err := nd.Attempts.Merge(od.Attempts); err != nil {
			return err
		}
		if err := nd.Failures.Merge(od.Failures); err != nil {
			return err
		}
		s.Dists = append(s.Dists, nil)
		copy(s.Dists[i+1:], s.Dists[i:])
		s.Dists[i] = nd
	}
	return nil
}

// Total merges all objects into one cross-object distribution
// (Object = -1). An empty set totals to an empty distribution.
func (s *Set) Total() *Dist {
	t := newDist(-1)
	for _, d := range s.Dists {
		t.Ops += d.Ops
		// Same fixed bounds by construction; Merge cannot fail.
		_ = t.Attempts.Merge(d.Attempts)
		_ = t.Failures.Merge(d.Failures)
	}
	return t
}

// FailureRate returns mean CAS failures per committed operation — the
// predictor's x-axis. Zero when no operations committed.
func (d *Dist) FailureRate() float64 {
	if d.Ops == 0 {
		return 0
	}
	return float64(d.Failures.Sum()) / float64(d.Ops)
}
