package ops

import (
	"reflect"
	"testing"

	"repro/internal/rtime"
	"repro/internal/trace"
)

func ev(at rtime.Time, k trace.Kind, task, seq, obj int) trace.Event {
	return trace.Event{At: at, Kind: k, Task: task, Seq: seq, Object: obj}
}

// TestFoldBasic: two retries then a commit is one operation with three
// attempts; a clean commit is one attempt; a lock release counts as a
// one-attempt operation on the shared axis.
func TestFoldBasic(t *testing.T) {
	s := FromEvents([]trace.Event{
		ev(10, trace.Retry, 0, 0, 1),
		ev(20, trace.FaultRetry, 0, 0, 1),
		ev(30, trace.Commit, 0, 0, 1),
		ev(40, trace.Commit, 1, 0, 1),
		ev(50, trace.LockRelease, 2, 0, 3),
	})
	if len(s.Dists) != 2 || s.Dists[0].Object != 1 || s.Dists[1].Object != 3 {
		t.Fatalf("objects = %+v", s.Dists)
	}
	d := s.Dists[0]
	if d.Ops != 2 || d.Attempts.Sum() != 4 || d.Failures.Sum() != 2 {
		t.Fatalf("obj 1: ops=%d attempts=%d failures=%d", d.Ops, d.Attempts.Sum(), d.Failures.Sum())
	}
	if d.Attempts.Max() != 3 || d.Attempts.Min() != 1 {
		t.Fatalf("obj 1 attempts range [%d,%d]", d.Attempts.Min(), d.Attempts.Max())
	}
	if got := d.FailureRate(); got != 1.0 {
		t.Fatalf("obj 1 failure rate = %v, want 1.0", got)
	}
	if l := s.Dists[1]; l.Ops != 1 || l.Failures.Sum() != 0 || l.Attempts.Sum() != 1 {
		t.Fatalf("lock-based op not all-ones: %+v", l)
	}
}

// TestFoldOrderInsensitive: shuffled (but time-stamped) events fold
// identically — the partitioned engine's per-CPU stream grouping must
// not change the telemetry.
func TestFoldOrderInsensitive(t *testing.T) {
	evs := []trace.Event{
		ev(10, trace.Retry, 0, 0, 1),
		ev(30, trace.Commit, 0, 0, 1),
		ev(15, trace.Retry, 1, 0, 2),
		ev(35, trace.Commit, 1, 0, 2),
	}
	a := FromEvents(evs)
	rev := []trace.Event{evs[2], evs[3], evs[0], evs[1]}
	b := FromEvents(rev)
	if !reflect.DeepEqual(summaries(a), summaries(b)) {
		t.Fatal("fold depends on stream grouping")
	}
}

// TestAbortedOperationNotCounted: retries of an operation that never
// commits leave no distribution entry (and do not leak into another
// job's commit on the same object).
func TestAbortedOperationNotCounted(t *testing.T) {
	s := FromEvents([]trace.Event{
		ev(10, trace.Retry, 0, 0, 1), // job 0 retries then aborts — no commit
		ev(30, trace.Commit, 1, 0, 1),
	})
	d := s.Dists[0]
	if d.Ops != 1 || d.Failures.Sum() != 0 {
		t.Fatalf("dangling retry leaked: ops=%d failures=%d", d.Ops, d.Failures.Sum())
	}
}

// TestMergeAssociativeAndOrdered: merging shards in either order gives
// identical sets, with objects kept ascending.
func TestMergeAssociativeAndOrdered(t *testing.T) {
	shard := func(obj int, fails ...int64) *Set {
		var evs []trace.Event
		at := rtime.Time(1)
		for seq, f := range fails {
			for i := int64(0); i < f; i++ {
				evs = append(evs, ev(at, trace.Retry, 0, seq, obj))
				at++
			}
			evs = append(evs, ev(at, trace.Commit, 0, seq, obj))
			at++
		}
		return FromEvents(evs)
	}
	ab := shard(2, 1, 0)
	if err := ab.Merge(shard(1, 3)); err != nil {
		t.Fatal(err)
	}
	ba := shard(1, 3)
	if err := ba.Merge(shard(2, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(summaries(ab), summaries(ba)) {
		t.Fatal("merge not order-independent")
	}
	if ab.Dists[0].Object != 1 || ab.Dists[1].Object != 2 {
		t.Fatalf("merge broke object order: %d, %d", ab.Dists[0].Object, ab.Dists[1].Object)
	}
	// Same-object merge accumulates.
	same := shard(1, 2)
	if err := same.Merge(shard(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	d := same.Dists[0]
	if d.Ops != 3 || d.Failures.Sum() != 2 || d.Attempts.N() != 3 {
		t.Fatalf("same-object merge wrong: %+v", d)
	}
}

// TestTotal folds all objects into the -1 aggregate.
func TestTotal(t *testing.T) {
	s := FromEvents([]trace.Event{
		ev(10, trace.Retry, 0, 0, 1),
		ev(20, trace.Commit, 0, 0, 1),
		ev(30, trace.Commit, 1, 0, 2),
	})
	tot := s.Total()
	if tot.Object != -1 || tot.Ops != 2 || tot.Failures.Sum() != 1 || tot.Attempts.Sum() != 3 {
		t.Fatalf("total wrong: %+v", tot)
	}
	empty := (&Set{}).Total()
	if empty.Ops != 0 || empty.FailureRate() != 0 {
		t.Fatalf("empty total wrong: %+v", empty)
	}
}

type distSummary struct {
	obj            int
	ops            int64
	attempts, fail int64
	p99            int64
}

func summaries(s *Set) []distSummary {
	out := make([]distSummary, 0, len(s.Dists))
	for _, d := range s.Dists {
		out = append(out, distSummary{d.Object, d.Ops, d.Attempts.Sum(), d.Failures.Sum(), d.Attempts.Quantile(0.99)})
	}
	return out
}
