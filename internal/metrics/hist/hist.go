// Package hist provides deterministic fixed-boundary histograms over
// the simulator's integer tick domain (retry counts, µs durations,
// queue depths). The paper's headline analytical results — Theorem 2's
// retry bound, Theorem 3's sojourn tradeoff — are statements about
// worst-case tails, which the mean ± CI statistics of
// internal/metrics hide; a histogram keeps the whole distribution so
// reports can put p50/p95/p99/max next to every mean and draw the
// analytic bound over the observed tail.
//
// Determinism rules (rtlint-clean by construction):
//   - bucket boundaries are fixed at construction; no maps anywhere,
//     so no iteration-order hazards;
//   - counters and sums are int64 — no float accumulation, so Merge is
//     exactly associative and the fold order of a parallel sweep can
//     never change a rendered digit;
//   - quantiles are exact (nearest-rank over retained samples) up to a
//     configurable cap, and degrade to conservative bucket upper
//     bounds beyond it — they never under-report a tail.
package hist

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBounds reports invalid bucket boundaries.
var ErrBounds = errors.New("hist: invalid bucket bounds")

// ErrMerge reports a merge between histograms with different shapes.
var ErrMerge = errors.New("hist: incompatible histograms")

// DefaultExactCap is how many raw samples a histogram retains for
// exact quantiles before degrading to bucket-resolution quantiles.
// Trace-suite runs observe at most a few thousand jobs, so the exact
// path is the norm; the cap only guards pathological volumes.
const DefaultExactCap = 1 << 16

// Hist is a fixed-boundary histogram over int64 values. The zero value
// is not usable; construct with New, Linear, or Exp2.
type Hist struct {
	bounds []int64 // ascending inclusive upper bounds
	counts []int64 // len(bounds)+1; the last cell is the overflow bucket

	n   int64
	sum int64
	min int64
	max int64

	samples  []int64 // raw values while n ≤ exactCap; nil once degraded
	sorted   bool
	exactCap int
}

// New builds a histogram with the given ascending, strictly increasing
// inclusive upper bounds. Bucket i counts values v with
// bounds[i-1] < v ≤ bounds[i]; values above the last bound land in the
// overflow bucket.
func New(bounds []int64) (*Hist, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("%w: need at least one bound", ErrBounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("%w: bounds must be strictly ascending (bounds[%d]=%d, bounds[%d]=%d)",
				ErrBounds, i-1, bounds[i-1], i, bounds[i])
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Hist{
		bounds:   b,
		counts:   make([]int64, len(b)+1),
		min:      math.MaxInt64,
		max:      math.MinInt64,
		exactCap: DefaultExactCap,
	}, nil
}

// MustNew is New, panicking on invalid bounds; for fixed literal
// boundary sets.
func MustNew(bounds []int64) *Hist {
	h, err := New(bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// Linear builds n equal-width buckets spanning [lo, hi] (plus the
// implicit underflow into bucket 0 and the overflow bucket).
func Linear(lo, hi int64, n int) (*Hist, error) {
	if n <= 0 || hi <= lo {
		return nil, fmt.Errorf("%w: Linear(%d, %d, %d)", ErrBounds, lo, hi, n)
	}
	bounds := make([]int64, n)
	span := hi - lo
	for i := range bounds {
		bounds[i] = lo + span*int64(i+1)/int64(n)
	}
	// Integer rounding can collapse adjacent bounds when n > span.
	out := bounds[:0]
	for _, b := range bounds {
		if len(out) == 0 || b > out[len(out)-1] {
			out = append(out, b)
		}
	}
	return New(out)
}

// Exp2 builds power-of-two buckets 0, 1, 2, 4, … up to at least hi —
// the natural shape for long-tailed counts like per-job retries.
func Exp2(hi int64) *Hist {
	bounds := []int64{0}
	for b := int64(1); ; b *= 2 {
		bounds = append(bounds, b)
		if b >= hi || b > math.MaxInt64/2 {
			break
		}
	}
	return MustNew(bounds)
}

// SetExactCap overrides the exact-quantile sample cap. Must be called
// before the first Add; a cap of 0 disables sample retention entirely.
func (h *Hist) SetExactCap(n int) {
	if h.n != 0 {
		panic("hist: SetExactCap after Add")
	}
	h.exactCap = n
	if n == 0 {
		h.samples = nil
	}
}

// Add records one value.
func (h *Hist) Add(v int64) {
	h.counts[h.bucketOf(v)]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if h.n <= int64(h.exactCap) {
		h.samples = append(h.samples, v)
		h.sorted = false
	} else {
		h.samples = nil // degrade: quantiles now come from buckets
	}
}

// bucketOf returns the index of the bucket receiving v (binary search
// over the fixed bounds; the last index is the overflow bucket).
func (h *Hist) bucketOf(v int64) int {
	return sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
}

// N returns the number of recorded values.
func (h *Hist) N() int64 { return h.n }

// Min returns the smallest recorded value (0 when empty).
func (h *Hist) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 when empty).
func (h *Hist) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Sum returns the exact integer sum of recorded values.
func (h *Hist) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean (0 when empty). The only floating
// point in the package happens here and in Quantile's rank — at read
// time, never during accumulation.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Exact reports whether quantiles are exact (raw samples retained)
// rather than bucket-resolution.
func (h *Hist) Exact() bool { return h.n == 0 || h.samples != nil }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by the nearest-rank
// method: the smallest recorded value with at least ⌈q·n⌉ values ≤ it.
// While the sample cap holds this is exact; past it, the bucket upper
// bound containing the rank is returned, which can only over-report.
// Empty histograms return 0.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	if h.samples != nil {
		if !h.sorted {
			sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
			h.sorted = true
		}
		return h.samples[rank-1]
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				b := h.bounds[i]
				if b > h.max {
					return h.max
				}
				return b
			}
			return h.max // overflow bucket
		}
	}
	return h.max
}

// Merge folds o into h. Both histograms must share identical bounds.
// Merging is exact for counts, sums, and extremes; exact quantiles
// survive while the combined sample count fits the cap.
func (h *Hist) Merge(o *Hist) error {
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("%w: %d vs %d buckets", ErrMerge, len(h.bounds)+1, len(o.bounds)+1)
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("%w: bound %d differs (%d vs %d)", ErrMerge, i, h.bounds[i], o.bounds[i])
		}
	}
	exactBefore := h.Exact()
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	if o.n > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.n += o.n
	h.sum += o.sum
	if exactBefore && o.Exact() && h.n <= int64(h.exactCap) {
		h.samples = append(h.samples, o.samples...)
		h.sorted = false
	} else if h.n > 0 {
		h.samples = nil
	}
	return nil
}

// Bucket is one rendered histogram cell. Lo is exclusive except for
// the first bucket (math.MinInt64 means "everything up to Hi"); Hi is
// inclusive. The overflow bucket reports Hi = the observed maximum.
type Bucket struct {
	Lo, Hi int64
	Count  int64
}

// Buckets returns the non-empty cells in ascending value order,
// suitable for deterministic rendering.
func (h *Hist) Buckets() []Bucket {
	out := make([]Bucket, 0, len(h.counts))
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		b := Bucket{Count: c}
		if i == 0 {
			b.Lo = math.MinInt64
			b.Hi = h.bounds[0]
		} else if i < len(h.bounds) {
			b.Lo = h.bounds[i-1]
			b.Hi = h.bounds[i]
		} else {
			b.Lo = h.bounds[len(h.bounds)-1]
			b.Hi = h.max
		}
		out = append(out, b)
	}
	return out
}

// Summary is the distribution digest reports place next to each mean.
type Summary struct {
	N             int64
	Min, Max, Sum int64
	Mean          float64
	P50, P90, P95, P99, P999 int64
}

// Summarize computes the digest in one pass over the retained samples.
// P999 extends the tail view for retry-attempt distributions, where the
// paper's interesting behaviour (and Theorem 2's bound) lives in the
// extreme quantiles rather than the mean.
func (h *Hist) Summarize() Summary {
	return Summary{
		N: h.n, Min: h.Min(), Max: h.Max(), Sum: h.sum, Mean: h.Mean(),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90),
		P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		P999: h.Quantile(0.999),
	}
}
