package hist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := New([]int64{3, 3}); err == nil {
		t.Fatal("non-ascending bounds accepted")
	}
	if _, err := New([]int64{5, 2}); err == nil {
		t.Fatal("descending bounds accepted")
	}
	if _, err := Linear(10, 10, 4); err == nil {
		t.Fatal("zero-width Linear accepted")
	}
}

func TestBucketing(t *testing.T) {
	h := MustNew([]int64{0, 10, 100})
	for _, v := range []int64{-5, 0, 1, 10, 11, 100, 101, 5000} {
		h.Add(v)
	}
	// counts: (-inf,0]=2  (0,10]=2  (10,100]=2  overflow=2
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if h.counts[i] != w {
			t.Fatalf("counts = %v, want %v", h.counts, want)
		}
	}
	if h.N() != 8 || h.Min() != -5 || h.Max() != 5000 {
		t.Fatalf("n=%d min=%d max=%d", h.N(), h.Min(), h.Max())
	}
	bs := h.Buckets()
	if len(bs) != 4 {
		t.Fatalf("buckets = %+v", bs)
	}
	if bs[0].Lo != math.MinInt64 || bs[0].Hi != 0 {
		t.Fatalf("first bucket = %+v", bs[0])
	}
	if last := bs[len(bs)-1]; last.Lo != 100 || last.Hi != 5000 {
		t.Fatalf("overflow bucket = %+v", last)
	}
}

func TestEmpty(t *testing.T) {
	h := Exp2(64)
	if h.N() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty digest: %+v", h.Summarize())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
	if bs := h.Buckets(); len(bs) != 0 {
		t.Fatalf("empty buckets = %+v", bs)
	}
	if !h.Exact() {
		t.Fatal("empty histogram should report exact")
	}
}

func TestSingleValue(t *testing.T) {
	h := Exp2(1024)
	h.Add(7)
	s := h.Summarize()
	if s.N != 1 || s.Min != 7 || s.Max != 7 || s.Mean != 7 {
		t.Fatalf("digest = %+v", s)
	}
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Fatalf("Quantile(%v) = %d, want 7", q, got)
		}
	}
}

// exactQuantile is the reference: nearest-rank over a sorted copy.
func exactQuantile(xs []int64, q float64) int64 {
	s := make([]int64, len(xs))
	copy(s, xs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// TestQuantilesMatchExactRandomized is the acceptance cross-check:
// histogram quantiles must equal exact sorted-slice quantiles on
// randomized workloads while the sample cap holds.
func TestQuantilesMatchExactRandomized(t *testing.T) {
	qs := []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1}
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3000)
		xs := make([]int64, n)
		h := Exp2(1 << 20)
		for i := range xs {
			switch rng.Intn(3) {
			case 0:
				xs[i] = int64(rng.Intn(10)) // heavy head
			case 1:
				xs[i] = int64(rng.Intn(1000))
			default:
				xs[i] = int64(rng.Intn(1 << 21)) // beyond the last bound
			}
			h.Add(xs[i])
		}
		if !h.Exact() {
			t.Fatalf("seed %d: degraded below cap (n=%d)", seed, n)
		}
		for _, q := range qs {
			want := exactQuantile(xs, q)
			if got := h.Quantile(q); got != want {
				t.Fatalf("seed %d n=%d: Quantile(%v) = %d, want %d", seed, n, q, got, want)
			}
		}
	}
}

// TestQuantileDegraded checks the over-cap path: bucket-resolution
// quantiles never under-report the exact value.
func TestQuantileDegraded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := Exp2(1 << 16)
	h.SetExactCap(100)
	var xs []int64
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 17))
		xs = append(xs, v)
		h.Add(v)
	}
	if h.Exact() {
		t.Fatal("histogram should have degraded past the cap")
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		exact := exactQuantile(xs, q)
		got := h.Quantile(q)
		if got < exact {
			t.Fatalf("degraded Quantile(%v) = %d under-reports exact %d", q, got, exact)
		}
		if got > h.Max() {
			t.Fatalf("degraded Quantile(%v) = %d exceeds max %d", q, got, h.Max())
		}
	}
	if h.Quantile(1) != h.Max() || h.Quantile(0) != h.Min() {
		t.Fatal("extreme quantiles must be exact even degraded")
	}
}

// TestMergeEquivalence: merging shards must equal adding every value
// to one histogram — the property the parallel sweep merge relies on.
func TestMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func() *Hist { return Exp2(4096) }
	whole := mk()
	shards := []*Hist{mk(), mk(), mk()}
	for i := 0; i < 900; i++ {
		v := int64(rng.Intn(10000))
		whole.Add(v)
		shards[i%3].Add(v)
	}
	merged := mk()
	for _, s := range shards {
		if err := merged.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	if merged.N() != whole.N() || merged.Sum() != whole.Sum() ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged digest %+v != whole %+v", merged.Summarize(), whole.Summarize())
	}
	for _, q := range []float64{0.25, 0.5, 0.95, 0.99} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merged Quantile(%v) = %d, whole = %d", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
	bad := MustNew([]int64{1, 2})
	if err := merged.Merge(bad); err == nil {
		t.Fatal("merge across different bounds accepted")
	}
}

func TestLinearBounds(t *testing.T) {
	h, err := Linear(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h.bounds); got != 10 {
		t.Fatalf("bounds = %v", h.bounds)
	}
	if h.bounds[9] != 100 || h.bounds[0] != 10 {
		t.Fatalf("bounds = %v", h.bounds)
	}
	// n > span collapses duplicate bounds rather than erroring.
	h2, err := Linear(0, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(h2.bounds) != 4 { // 0, 1, 2, 3
		t.Fatalf("collapsed bounds = %v", h2.bounds)
	}
}

func TestSetExactCapGuards(t *testing.T) {
	h := Exp2(8)
	h.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("SetExactCap after Add did not panic")
		}
	}()
	h.SetExactCap(10)
}
