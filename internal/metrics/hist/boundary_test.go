package hist

import "testing"

// TestQuantileAtDegradationBoundary pins the exact→bucket handoff: at
// exactly the cap quantiles are exact; one Add past it they come from
// bucket upper bounds, which may only over-report (conservative for a
// retry-tail panel) and never exceed the observed maximum.
func TestQuantileAtDegradationBoundary(t *testing.T) {
	const cap = 64
	h := Exp2(1 << 10)
	h.SetExactCap(cap)
	for i := int64(1); i <= cap; i++ {
		h.Add(i)
	}
	if !h.Exact() {
		t.Fatalf("histogram degraded at n == cap (%d)", cap)
	}
	exactP50, exactP99 := h.Quantile(0.50), h.Quantile(0.99)
	if exactP50 != 32 || exactP99 != 64 {
		t.Fatalf("exact quantiles wrong at cap: p50=%d p99=%d", exactP50, exactP99)
	}

	h.Add(65) // cross the boundary
	if h.Exact() {
		t.Fatal("histogram still exact past the cap")
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		got := h.Quantile(q)
		if got > h.Max() {
			t.Fatalf("degraded Quantile(%v) = %d exceeds max %d", q, got, h.Max())
		}
		if got < h.Min() {
			t.Fatalf("degraded Quantile(%v) = %d below min %d", q, got, h.Min())
		}
	}
	// Bucket-resolution p50 of 1..65 must cover the exact value 33:
	// nearest power-of-two upper bound is 64 ≥ 33, never below.
	if got := h.Quantile(0.50); got < 33 {
		t.Fatalf("degraded p50 = %d under-reports exact 33", got)
	}
	// Quantile(1) and Quantile(0) stay exact even when degraded: they
	// come from the tracked extremes, not the buckets.
	if h.Quantile(1) != 65 || h.Quantile(0) != 1 {
		t.Fatalf("extremes wrong after degradation: q0=%d q1=%d", h.Quantile(0), h.Quantile(1))
	}
}

// TestMergeExactWithDegraded checks both merge orders around the cap:
// folding a degraded histogram into an exact one (and vice versa)
// must drop sample retention — never resurrect phantom exactness —
// while counts, sums, and extremes stay exact.
func TestMergeExactWithDegraded(t *testing.T) {
	mk := func(cap int, vals ...int64) *Hist {
		h := Exp2(1 << 10)
		h.SetExactCap(cap)
		for _, v := range vals {
			h.Add(v)
		}
		return h
	}
	exact := mk(100, 1, 2, 3, 4)
	degraded := mk(2, 10, 20, 30) // n=3 > cap=2 → bucket-resolution
	if degraded.Exact() {
		t.Fatal("setup: histogram should be degraded")
	}

	// exact ← degraded
	a := mk(100, 1, 2, 3, 4)
	if err := a.Merge(degraded); err != nil {
		t.Fatal(err)
	}
	if a.Exact() {
		t.Fatal("merging a degraded histogram must degrade the target")
	}
	if a.N() != 7 || a.Sum() != 70 || a.Min() != 1 || a.Max() != 30 {
		t.Fatalf("merged stats wrong: n=%d sum=%d min=%d max=%d", a.N(), a.Sum(), a.Min(), a.Max())
	}
	if q := a.Quantile(0.99); q < 30 || q > a.Max() {
		t.Fatalf("merged p99 = %d outside [30, max]", q)
	}

	// degraded ← exact
	b := mk(2, 10, 20, 30)
	if err := b.Merge(exact); err != nil {
		t.Fatal(err)
	}
	if b.Exact() {
		t.Fatal("a degraded target must stay degraded after merging an exact source")
	}
	if b.N() != 7 || b.Sum() != 70 || b.Min() != 1 || b.Max() != 30 {
		t.Fatalf("merged stats wrong: n=%d sum=%d min=%d max=%d", b.N(), b.Sum(), b.Min(), b.Max())
	}

	// exact ← exact overflowing the cap degrades too.
	c := mk(10, 1, 2, 3)
	if err := c.Merge(mk(10, 4, 5, 6)); err != nil {
		t.Fatal(err)
	}
	if c.N() != 6 || c.Quantile(0.5) != 3 {
		t.Fatalf("within-cap merge lost exactness: n=%d p50=%d", c.N(), c.Quantile(0.5))
	}
	d := mk(4, 1, 2, 3)
	if err := d.Merge(mk(4, 4, 5, 6)); err != nil {
		t.Fatal(err)
	}
	if d.Exact() {
		t.Fatal("cap-overflowing merge must degrade")
	}
}

// TestSetExactCapZero: a zero cap disables sample retention from the
// first Add; quantiles are bucket-resolution throughout.
func TestSetExactCapZero(t *testing.T) {
	h := Exp2(1 << 8)
	h.SetExactCap(0)
	for i := int64(1); i <= 10; i++ {
		h.Add(i)
	}
	if h.Exact() {
		t.Fatal("cap 0 must disable exact quantiles")
	}
	if q := h.Quantile(0.5); q < 5 || q > h.Max() {
		t.Fatalf("bucket p50 = %d outside [5, %d]", q, h.Max())
	}
	if h.Summarize().P999 > h.Max() {
		t.Fatal("P999 exceeds max")
	}
}
