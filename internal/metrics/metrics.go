// Package metrics computes the evaluation quantities of the paper's §6:
// accrued utility ratio (AUR), critical-time-meet ratio (CMR), the
// approximate load AL = Σ u_i/C_i, and the critical-time-miss load (CML)
// — the load after which a scheduler configuration begins to miss
// critical times — plus mean/95 % confidence-interval statistics for the
// error bars on every figure.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/rtime"
	"repro/internal/sim"
	"repro/internal/task"
)

// ErrInput reports unusable inputs.
var ErrInput = errors.New("metrics: invalid input")

// RunStats summarizes one simulation result.
type RunStats struct {
	Released  int64 // jobs whose critical time fell inside the horizon
	Completed int64
	Met       int64 // completed before their critical times
	Aborted   int64

	AUR float64 // accrued utility / max possible utility of released jobs
	CMR float64 // met / released

	MeanSojourn rtime.Duration // over completed jobs
	MaxSojourn  rtime.Duration
	Retries     int64
	Blockings   int64
}

// Analyze digests a simulation result. Only jobs whose critical time lies
// within the horizon are counted — jobs released near the end whose
// outcome the simulation could not observe would otherwise bias AUR and
// CMR downward.
func Analyze(r sim.Result) RunStats {
	var st RunStats
	var sumSojourn rtime.Duration
	var totalU, maxU float64
	for _, j := range r.Jobs {
		st.Retries += j.Retries
		st.Blockings += j.Blockings
		if j.AbsoluteCriticalTime() > r.Horizon {
			continue
		}
		st.Released++
		maxU += j.Task.TUF.MaxUtility()
		switch j.State {
		case task.Completed:
			st.Completed++
			totalU += j.AccruedUtility()
			s := j.Sojourn()
			sumSojourn += s
			if s > st.MaxSojourn {
				st.MaxSojourn = s
			}
			if j.MetCriticalTime() {
				st.Met++
			}
		case task.Aborted, task.Aborting:
			st.Aborted++
		}
	}
	if maxU > 0 {
		st.AUR = totalU / maxU
	}
	if st.Released > 0 {
		st.CMR = float64(st.Met) / float64(st.Released)
	}
	if st.Completed > 0 {
		st.MeanSojourn = sumSojourn / rtime.Duration(st.Completed)
	}
	return st
}

// TaskStats is the per-task slice of a run's outcome.
type TaskStats struct {
	TaskID    int
	Name      string
	Released  int64
	Completed int64
	Met       int64
	Aborted   int64
	AUR       float64
	CMR       float64
	Retries   int64
	Blockings int64
}

// PerTask digests a simulation result task by task, using the same
// horizon-censoring rule as Analyze. Results are ordered by task id.
func PerTask(r sim.Result) []TaskStats {
	acc := map[int]*TaskStats{}
	maxU := map[int]float64{}
	gotU := map[int]float64{}
	var ids []int
	for _, j := range r.Jobs {
		st := acc[j.Task.ID]
		if st == nil {
			st = &TaskStats{TaskID: j.Task.ID, Name: j.Task.Name}
			acc[j.Task.ID] = st
			ids = append(ids, j.Task.ID)
		}
		st.Retries += j.Retries
		st.Blockings += j.Blockings
		if j.AbsoluteCriticalTime() > r.Horizon {
			continue
		}
		st.Released++
		maxU[j.Task.ID] += j.Task.TUF.MaxUtility()
		switch j.State {
		case task.Completed:
			st.Completed++
			gotU[j.Task.ID] += j.AccruedUtility()
			if j.MetCriticalTime() {
				st.Met++
			}
		case task.Aborted, task.Aborting:
			st.Aborted++
		}
	}
	sort.Ints(ids)
	out := make([]TaskStats, 0, len(ids))
	for _, id := range ids {
		st := acc[id]
		if maxU[id] > 0 {
			st.AUR = gotU[id] / maxU[id]
		}
		if st.Released > 0 {
			st.CMR = float64(st.Met) / float64(st.Released)
		}
		out = append(out, *st)
	}
	return out
}

// ApproximateLoad returns AL = Σ u_i/C_i (§6.1): task compute time
// excluding object access time over the critical time. This matches the
// paper's definition, which deliberately excludes access costs so that an
// ideal (zero-cost) object implementation has CML 1.0.
func ApproximateLoad(tasks []*task.Task) float64 {
	al := 0.0
	for _, t := range tasks {
		al += float64(t.ComputeTime()) / float64(t.CriticalTime())
	}
	return al
}

// UAMLoad returns the long-run expected processor demand of the task set
// including arrival rates: Σ rate_i · u_i, where rate is the midpoint of
// the UAM band. Useful when sizing workloads to a target utilization.
func UAMLoad(tasks []*task.Task) float64 {
	l := 0.0
	for _, t := range tasks {
		l += t.Arrival.MeanRate() * float64(t.ComputeTime())
	}
	return l
}

// Sample is a mean ± 95 % confidence interval over repeated measurements,
// the error bars of the paper's figures.
type Sample struct {
	N    int
	Mean float64
	CI95 float64
}

// Summarize computes mean and 95 % CI (normal approximation, as is
// conventional for ≥ 30 samples; for smaller n it is mildly optimistic,
// matching typical systems-paper practice).
func Summarize(xs []float64) Sample {
	n := len(xs)
	if n == 0 {
		return Sample{}
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	if n == 1 {
		return Sample{N: 1, Mean: mean}
	}
	varsum := 0.0
	for _, x := range xs {
		d := x - mean
		varsum += d * d
	}
	sd := math.Sqrt(varsum / float64(n-1))
	return Sample{N: n, Mean: mean, CI95: 1.96 * sd / math.Sqrt(float64(n))}
}

// String renders "mean ± ci".
func (s Sample) String() string {
	return fmt.Sprintf("%.4f ± %.4f", s.Mean, s.CI95)
}

// CMLConfig drives a critical-time-miss-load search (§6.1): run the given
// builder at increasing loads and report the highest load at which the
// scheduler still misses nothing.
type CMLConfig struct {
	// Build constructs a runnable simulation at approximate load al.
	Build func(al float64) (sim.Config, error)
	// Loads is the ascending sweep grid (e.g. 0.05 … 1.20).
	Loads []float64
	// MissTolerance is the CMR slack: a load "misses" when CMR drops
	// below 1 − tolerance. Zero means any miss counts.
	MissTolerance float64
}

// FindCML runs the sweep and returns the critical-time-miss load: the
// largest load in the grid with no misses (0 if even the first load
// misses). The per-load CMRs are returned for reporting.
func FindCML(cfg CMLConfig) (cml float64, cmrs []float64, err error) {
	if cfg.Build == nil || len(cfg.Loads) == 0 {
		return 0, nil, fmt.Errorf("%w: CML search needs Build and Loads", ErrInput)
	}
	if !sort.Float64sAreSorted(cfg.Loads) {
		return 0, nil, fmt.Errorf("%w: loads must be ascending", ErrInput)
	}
	cmrs = make([]float64, len(cfg.Loads))
	cml = 0
	for i, al := range cfg.Loads {
		sc, err := cfg.Build(al)
		if err != nil {
			return 0, nil, err
		}
		res, err := sim.Run(sc)
		if err != nil {
			return 0, nil, err
		}
		st := Analyze(res)
		cmrs[i] = st.CMR
		if st.Released == 0 {
			continue
		}
		if st.CMR >= 1-cfg.MissTolerance {
			cml = al
		}
	}
	return cml, cmrs, nil
}
