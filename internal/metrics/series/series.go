// Package series folds a raw trace event stream into virtual-time
// series: per-window event rates (arrivals, completions, aborts,
// retries, blockings, commits, scheduler passes and their charged
// operations) and time-weighted level tracks (ready-queue depth, busy
// processors). Where internal/trace/span reconstructs each job's
// timeline, this package answers the orthogonal question — what did
// the *system* look like over time — which is what the report's
// load/backlog charts plot.
//
// A Recorder is fed through the engines' existing Observer plumbing
// (sim.Config.Observer, multi.Config.Observer, gsim.Config.Observer);
// it buffers events and folds them on Series(), stable-sorting by
// virtual time first so the partitioned engine's interleaved
// per-partition streams fold identically to a globally ordered one.
// Equal traces yield byte-identical CSV renderings.
package series

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/rtime"
	"repro/internal/trace"
)

// ErrTrace reports a malformed or truncated event stream.
var ErrTrace = errors.New("series: malformed trace")

// ErrConfig reports an unusable configuration.
var ErrConfig = errors.New("series: invalid config")

// DefaultWindows is the window count WindowFor targets: enough columns
// for a figure-grade chart, few enough that every window holds events.
const DefaultWindows = 120

// WindowFor picks a window width that tiles horizon into about target
// windows (DefaultWindows when target ≤ 0), never below one tick.
func WindowFor(horizon rtime.Time, target int) rtime.Duration {
	if target <= 0 {
		target = DefaultWindows
	}
	w := rtime.Duration((int64(horizon) + int64(target) - 1) / int64(target))
	if w < 1 {
		w = 1
	}
	return w
}

// Config parameterizes the fold.
type Config struct {
	// Window is the bucket width in virtual time; required.
	Window rtime.Duration
	// CPUs is the processor count of the traced engine, used to report
	// utilization; clamped to ≥ 1.
	CPUs int
}

// Point is one window [Start, Start+Window) of the folded run.
type Point struct {
	Start rtime.Time

	// Event deltas inside the window.
	Arrivals    int64
	Completions int64
	Aborts      int64
	Retries     int64
	Blocks      int64
	Commits     int64
	Preempts    int64
	SchedPasses int64
	SchedOps    int64 // charged operations of the window's passes

	// Level integrals: Σ level·dt over the window, in tick·jobs and
	// tick·CPUs. Divide by the window's covered ticks for the mean.
	ReadyTicks int64
	BusyTicks  int64
	// Window maxima of the level tracks.
	ReadyMax int64
	BusyMax  int64

	// MaxAttempt is the largest attempt count (1 + CAS failures) of any
	// operation COMMITTED inside the window — the windowed view of the
	// per-object tails internal/metrics/ops digests. Zero in windows
	// where nothing committed.
	MaxAttempt int64
}

// Series is the folded run.
type Series struct {
	Window rtime.Duration
	End    rtime.Time // horizon, extended to the last event if later
	CPUs   int
	Points []Point
}

// Covered returns how many ticks of window i the run actually spans
// (the last window may be partial).
func (s *Series) Covered(i int) rtime.Duration {
	start := s.Points[i].Start
	end := start.Add(s.Window)
	if end > s.End {
		end = s.End
	}
	return end.Sub(start)
}

// Totals sums the event deltas and integrals across all windows; the
// Start, ReadyMax, and BusyMax fields hold 0/series-wide maxima.
func (s *Series) Totals() Point {
	var t Point
	for _, p := range s.Points {
		t.Arrivals += p.Arrivals
		t.Completions += p.Completions
		t.Aborts += p.Aborts
		t.Retries += p.Retries
		t.Blocks += p.Blocks
		t.Commits += p.Commits
		t.Preempts += p.Preempts
		t.SchedPasses += p.SchedPasses
		t.SchedOps += p.SchedOps
		t.ReadyTicks += p.ReadyTicks
		t.BusyTicks += p.BusyTicks
		if p.ReadyMax > t.ReadyMax {
			t.ReadyMax = p.ReadyMax
		}
		if p.BusyMax > t.BusyMax {
			t.BusyMax = p.BusyMax
		}
		if p.MaxAttempt > t.MaxAttempt {
			t.MaxAttempt = p.MaxAttempt
		}
	}
	return t
}

// Recorder buffers trace events for folding. Like trace.Recorder it is
// single-goroutine by design; attach it via Observer().
type Recorder struct {
	cfg Config
	evs []trace.Event
}

// NewRecorder returns a Recorder folding with cfg.
func NewRecorder(cfg Config) *Recorder { return &Recorder{cfg: cfg} }

// Observe buffers one event.
func (r *Recorder) Observe(e trace.Event) { r.evs = append(r.evs, e) }

// Observer returns Observe bound as an engine callback.
func (r *Recorder) Observer() func(trace.Event) { return r.Observe }

// Events returns the buffered events.
func (r *Recorder) Events() []trace.Event { return r.evs }

// Series folds the buffered events; see FromEvents.
func (r *Recorder) Series(horizon rtime.Time) (*Series, error) {
	return FromEvents(r.evs, horizon, r.cfg)
}

// jobKey identifies a job across the stream.
type jobKey struct{ task, seq int }

// jobPhase is the per-job state the level tracks derive from.
type jobPhase int

const (
	phaseReady jobPhase = iota
	phaseRun
	phaseBlocked
	phaseAborting
	phaseDone
)

// folder walks the sorted stream maintaining level counters and the
// per-window accumulators.
type folder struct {
	window rtime.Duration
	points []Point

	lastT rtime.Time
	idx   int // current window index

	ready int64 // jobs in phaseReady
	busy  int64 // jobs in phaseRun
}

// advance integrates the level tracks from lastT to t, splitting at
// window boundaries, and moves the window cursor so that an event at t
// lands in the window containing t.
func (f *folder) advance(t rtime.Time) {
	for f.lastT < t {
		p := &f.points[f.idx]
		wEnd := p.Start.Add(f.window)
		seg := t
		if wEnd < seg {
			seg = wEnd
		}
		dt := int64(seg.Sub(f.lastT))
		p.ReadyTicks += f.ready * dt
		p.BusyTicks += f.busy * dt
		f.lastT = seg
		if f.lastT == wEnd && f.idx+1 < len(f.points) {
			f.idx++
			// Entering a window: the carried-over levels seed its maxima.
			np := &f.points[f.idx]
			np.ReadyMax = f.ready
			np.BusyMax = f.busy
		}
	}
}

// level applies a ready/busy delta and refreshes the current window's
// maxima.
func (f *folder) level(dReady, dBusy int64) {
	f.ready += dReady
	f.busy += dBusy
	p := &f.points[f.idx]
	if f.ready > p.ReadyMax {
		p.ReadyMax = f.ready
	}
	if f.busy > p.BusyMax {
		p.BusyMax = f.busy
	}
}

// Stream folds a time-ordered trace event stream into a Series online,
// one event at a time, without buffering. It runs the exact fold
// FromEvents runs — fed the same events in the same order it produces a
// byte-identical Series — but its memory is O(windows + live jobs)
// regardless of trace length.
//
// The stream requires events nondecreasing in Event.At (the contract
// every engine's Observer documents) and within the horizon fixed at
// construction; a violation is recorded as an error and the stream goes
// inert — surfaced by Err and Finish, never silently absorbed.
type Stream struct {
	cfg Config
	end rtime.Time
	f   folder

	phase   map[jobKey]jobPhase
	attempt map[jobKey]int64 // CAS failures of the job's open access

	lastAt rtime.Time
	seen   bool
	err    error
}

// NewStream builds an online series folder covering [0, horizon). The
// horizon must be known up front (every engine's is) so window count —
// and the assignment of boundary-instant events to windows — matches
// the batch fold exactly.
func NewStream(cfg Config, horizon rtime.Time) (*Stream, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("%w: Window must be positive, got %v", ErrConfig, cfg.Window)
	}
	if cfg.CPUs < 1 {
		cfg.CPUs = 1
	}
	end := horizon
	if end < 1 {
		end = 1
	}
	nWin := int((int64(end) + int64(cfg.Window) - 1) / int64(cfg.Window))
	if nWin < 1 {
		nWin = 1
	}
	s := &Stream{
		cfg:     cfg,
		end:     end,
		f:       folder{window: cfg.Window, points: make([]Point, nWin)},
		phase:   map[jobKey]jobPhase{},
		attempt: map[jobKey]int64{},
	}
	for i := range s.f.points {
		s.f.points[i].Start = rtime.Time(int64(cfg.Window) * int64(i))
	}
	return s, nil
}

// Err returns the first stream error (malformed trace, out-of-order or
// beyond-horizon input), if any.
func (s *Stream) Err() error { return s.err }

func (s *Stream) failf(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf(format, args...)
	}
}

// Observe folds one event. After an error the stream is inert.
func (s *Stream) Observe(e trace.Event) {
	if s.err != nil {
		return
	}
	if s.seen && e.At < s.lastAt {
		s.failf("%w: event %v at %v after %v (stream not time-ordered)", ErrTrace, e.Kind, e.At, s.lastAt)
		return
	}
	if e.At > s.end {
		s.failf("%w: event %v at %v beyond horizon %v", ErrTrace, e.Kind, e.At, s.end)
		return
	}
	s.lastAt, s.seen = e.At, true
	f := &s.f
	f.advance(e.At)
	p := &f.points[f.idx]
	if e.Kind == trace.SchedPass {
		p.SchedPasses++
		p.SchedOps += e.Ops
		return
	}
	if e.Task < 0 || e.Kind == trace.FeasOK || e.Kind == trace.FeasFail {
		// Feasibility probes name a job but do not move it; their cost
		// is already inside the enclosing pass's Ops.
		return
	}
	k := jobKey{e.Task, e.Seq}
	ph, seen := s.phase[k]
	if e.Kind == trace.Arrival {
		if seen {
			s.failf("%w: duplicate arrival for J[%d,%d]", ErrTrace, e.Task, e.Seq)
			return
		}
		s.phase[k] = phaseReady
		p.Arrivals++
		f.level(+1, 0)
		return
	}
	if !seen {
		s.failf("%w: %v for J[%d,%d] before its arrival (recorder limit?)", ErrTrace, e.Kind, e.Task, e.Seq)
		return
	}
	if ph == phaseDone {
		s.failf("%w: %v for J[%d,%d] after its departure", ErrTrace, e.Kind, e.Task, e.Seq)
		return
	}
	leave := func() {
		switch ph {
		case phaseReady:
			f.level(-1, 0)
		case phaseRun:
			f.level(0, -1)
		}
	}
	switch e.Kind {
	case trace.Dispatch:
		leave()
		s.phase[k] = phaseRun
		f.level(0, +1)
	case trace.Preempt:
		// Only descheduled runners move; elsewhere it is a marker (the
		// uniprocessor engine also tags blocked jobs whose CPU moved on).
		p.Preempts++
		if ph == phaseRun {
			f.level(0, -1)
			s.phase[k] = phaseReady
			f.level(+1, 0)
		}
	case trace.Block:
		leave()
		s.phase[k] = phaseBlocked
		p.Blocks++
	case trace.Retry:
		p.Retries++
		s.attempt[k]++
	case trace.FaultRetry:
		// A phantom-writer retry is still a retry of the job.
		p.Retries++
		s.attempt[k]++
	case trace.Commit:
		p.Commits++
		if a := s.attempt[k] + 1; a > p.MaxAttempt {
			p.MaxAttempt = a
		}
		delete(s.attempt, k)
	case trace.LockAcquire, trace.LockRelease, trace.FaultArrival, trace.FaultOverrun, trace.Shed:
		// Markers only. (FaultStall carries Task=-1 and is skipped with
		// the other scheduler-level events above.)
	case trace.Complete:
		leave()
		s.phase[k] = phaseDone
		p.Completions++
		delete(s.phase, k) // retired; phaseDone is only ever observed transiently
	case trace.AbortBegin:
		leave()
		s.phase[k] = phaseAborting
	case trace.AbortDone:
		leave()
		s.phase[k] = phaseDone
		p.Aborts++
		delete(s.attempt, k) // the open access died with the job
		delete(s.phase, k)
	default:
		s.failf("%w: unknown event kind %v", ErrTrace, e.Kind)
	}
}

// Finish integrates the level tracks out to the horizon and returns the
// folded Series, or the first stream error.
func (s *Stream) Finish() (*Series, error) {
	if s.err != nil {
		return nil, s.err
	}
	s.f.advance(s.end)
	return &Series{Window: s.cfg.Window, End: s.end, CPUs: s.cfg.CPUs, Points: s.f.points}, nil
}

// FromEvents folds events into a Series. horizon seals the run's end;
// when events extend past it, the end is clamped up to the last event.
// The stream must contain every job's Arrival (use an unbounded
// recorder); scheduler-level events contribute to the pass/ops tracks
// without moving any job.
func FromEvents(events []trace.Event, horizon rtime.Time, cfg Config) (*Series, error) {
	evs := make([]trace.Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })

	end := horizon
	if n := len(evs); n > 0 && evs[n-1].At > end {
		end = evs[n-1].At
	}
	s, err := NewStream(cfg, end)
	if err != nil {
		return nil, err
	}
	for _, e := range evs {
		s.Observe(e)
	}
	return s.Finish()
}

// csvHeader is the fixed column set of WriteCSV.
var csvHeader = []string{
	"start_us", "arrivals", "completions", "aborts", "retries", "blocks",
	"commits", "preempts", "sched_passes", "sched_ops",
	"ready_mean", "ready_max", "busy_mean", "busy_max", "max_attempt",
}

// WriteCSV renders the series deterministically, one row per window.
// Mean levels are formatted with four decimals — the only floating
// point in the package, computed at render time from exact integer
// integrals.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for i, p := range s.Points {
		dt := int64(s.Covered(i))
		meanOf := func(ticks int64) string {
			if dt <= 0 {
				return "0.0000"
			}
			return strconv.FormatFloat(float64(ticks)/float64(dt), 'f', 4, 64)
		}
		row := []string{
			strconv.FormatInt(int64(p.Start), 10),
			strconv.FormatInt(p.Arrivals, 10),
			strconv.FormatInt(p.Completions, 10),
			strconv.FormatInt(p.Aborts, 10),
			strconv.FormatInt(p.Retries, 10),
			strconv.FormatInt(p.Blocks, 10),
			strconv.FormatInt(p.Commits, 10),
			strconv.FormatInt(p.Preempts, 10),
			strconv.FormatInt(p.SchedPasses, 10),
			strconv.FormatInt(p.SchedOps, 10),
			meanOf(p.ReadyTicks),
			strconv.FormatInt(p.ReadyMax, 10),
			meanOf(p.BusyTicks),
			strconv.FormatInt(p.BusyMax, 10),
			strconv.FormatInt(p.MaxAttempt, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
