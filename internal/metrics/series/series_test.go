package series_test

import (
	"bytes"
	"encoding/csv"
	"errors"
	"strings"
	"testing"

	"repro/internal/metrics/series"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/tuf"
	"repro/internal/uam"
)

// ev is shorthand for a job event.
func ev(at rtime.Time, k trace.Kind) trace.Event {
	return trace.Event{At: at, Kind: k, Task: 0, Seq: 0, Object: -1, CPU: 0}
}

func TestFoldHandBuilt(t *testing.T) {
	events := []trace.Event{
		ev(0, trace.Arrival),
		ev(2, trace.Dispatch),
		ev(5, trace.Retry),
		ev(7, trace.Commit),
		ev(12, trace.Preempt),
		ev(15, trace.Dispatch),
		ev(20, trace.Complete),
		{At: 4, Kind: trace.SchedPass, Task: -1, Seq: -1, Object: -1, Ops: 9},
	}
	s, err := series.FromEvents(events, 30, series.Config{Window: 10, CPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 || s.End != 30 || s.Window != 10 {
		t.Fatalf("series shape: %+v", s)
	}
	p0, p1, p2 := s.Points[0], s.Points[1], s.Points[2]
	if p0.Arrivals != 1 || p0.Retries != 1 || p0.Commits != 1 || p0.SchedPasses != 1 || p0.SchedOps != 9 {
		t.Fatalf("window 0 deltas: %+v", p0)
	}
	// ready over [0,2), busy over [2,10).
	if p0.ReadyTicks != 2 || p0.BusyTicks != 8 || p0.ReadyMax != 1 || p0.BusyMax != 1 {
		t.Fatalf("window 0 levels: %+v", p0)
	}
	// busy [10,12), ready [12,15), busy [15,20); preempt counted here.
	if p1.Preempts != 1 || p1.ReadyTicks != 3 || p1.BusyTicks != 7 {
		t.Fatalf("window 1: %+v", p1)
	}
	// Completion at the exact t=20 boundary lands in window 2.
	if p2.Completions != 1 || p2.ReadyTicks != 0 || p2.BusyTicks != 0 {
		t.Fatalf("window 2: %+v", p2)
	}
	tot := s.Totals()
	if tot.Arrivals != 1 || tot.Completions != 1 || tot.Retries != 1 || tot.Preempts != 1 {
		t.Fatalf("totals: %+v", tot)
	}
	if s.Covered(2) != 10 {
		t.Fatalf("covered(2) = %v", s.Covered(2))
	}
}

func TestFoldErrors(t *testing.T) {
	if _, err := series.FromEvents(nil, 10, series.Config{}); !errors.Is(err, series.ErrConfig) {
		t.Fatal("zero window accepted")
	}
	bad := []trace.Event{ev(1, trace.Dispatch)}
	if _, err := series.FromEvents(bad, 10, series.Config{Window: 5}); !errors.Is(err, series.ErrTrace) {
		t.Fatal("dispatch before arrival accepted")
	}
	dup := []trace.Event{ev(0, trace.Arrival), ev(1, trace.Arrival)}
	if _, err := series.FromEvents(dup, 10, series.Config{Window: 5}); !errors.Is(err, series.ErrTrace) {
		t.Fatal("duplicate arrival accepted")
	}
	late := []trace.Event{ev(0, trace.Arrival), ev(1, trace.Complete), ev(2, trace.Dispatch)}
	if _, err := series.FromEvents(late, 10, series.Config{Window: 5}); !errors.Is(err, series.ErrTrace) {
		t.Fatal("event after departure accepted")
	}
}

func TestWindowFor(t *testing.T) {
	if w := series.WindowFor(1200, 0); w != 10 {
		t.Fatalf("WindowFor(1200, default) = %v", w)
	}
	if w := series.WindowFor(5, 100); w != 1 {
		t.Fatalf("tiny horizon window = %v", w)
	}
}

// TestAgainstEngine cross-checks the fold against the uniprocessor
// engine's own counters: an observer-fed Recorder's totals must match
// sim.Result exactly, and the busy level can never exceed one CPU.
func TestAgainstEngine(t *testing.T) {
	tasks := make([]*task.Task, 4)
	for i := range tasks {
		tasks[i] = &task.Task{
			ID: i, Name: "T", TUF: tuf.MustStep(float64(10 * (i + 1)), 4000),
			Arrival:  uam.Spec{L: 1, A: 2, W: 8000},
			Segments: task.InterleavedSegments(600, 2, []int{i % 2, (i + 1) % 2}),
		}
		if err := tasks[i].Validate(); err != nil {
			t.Fatal(err)
		}
	}
	rec := series.NewRecorder(series.Config{Window: 1000, CPUs: 1})
	res, err := sim.Run(sim.Config{
		Tasks: tasks, Scheduler: rua.NewLockFree(), Mode: sim.LockFree,
		R: 150, S: 5, OpCost: 0.02, Horizon: 60_000,
		ArrivalKind: uam.KindJittered, Seed: 3, ConservativeRetry: true,
		Observer: rec.Observer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := rec.Series(res.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	tot := s.Totals()
	if tot.Arrivals != res.Arrivals {
		t.Fatalf("arrivals %d != result %d", tot.Arrivals, res.Arrivals)
	}
	if tot.Completions != res.Completions {
		t.Fatalf("completions %d != result %d", tot.Completions, res.Completions)
	}
	if tot.Aborts != res.Aborts {
		t.Fatalf("aborts %d != result %d", tot.Aborts, res.Aborts)
	}
	if tot.Retries != res.Retries {
		t.Fatalf("retries %d != result %d", tot.Retries, res.Retries)
	}
	if tot.Arrivals == 0 {
		t.Fatal("workload produced no arrivals; test is vacuous")
	}
	if tot.BusyMax > 1 {
		t.Fatalf("uniprocessor busy level reached %d", tot.BusyMax)
	}
	for i := range s.Points {
		if dt := int64(s.Covered(i)); s.Points[i].BusyTicks > dt {
			t.Fatalf("window %d busy integral %d exceeds its width %d", i, s.Points[i].BusyTicks, dt)
		}
	}
}

func TestWriteCSVDeterministic(t *testing.T) {
	events := []trace.Event{
		ev(0, trace.Arrival), ev(1, trace.Dispatch), ev(9, trace.Complete),
	}
	render := func() string {
		s, err := series.FromEvents(events, 20, series.Config{Window: 8, CPUs: 1})
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := s.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("CSV render not deterministic:\n%s\n---\n%s", a, b)
	}
	rows, err := csv.NewReader(strings.NewReader(a)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + ceil(20/8) windows
		t.Fatalf("rows = %d:\n%s", len(rows), a)
	}
	// Window 1 holds the completion; its mean busy over [8,16) is 1/8.
	if rows[2][2] != "1" || rows[2][12] != "0.1250" {
		t.Fatalf("window 1 row = %v", rows[2])
	}
}

// TestMaxAttemptTrack: the window where an operation commits reports
// the operation's full attempt count (1 + its retries), even when the
// retries happened in earlier windows; aborts drop the open counter.
func TestMaxAttemptTrack(t *testing.T) {
	events := []trace.Event{
		ev(0, trace.Arrival),
		ev(2, trace.Dispatch),
		ev(5, trace.Retry),
		ev(8, trace.Retry),
		ev(13, trace.Commit), // 3 attempts, committed in window 1
		ev(15, trace.Commit), // clean second access: 1 attempt
		ev(20, trace.Complete),
		{At: 0, Kind: trace.Arrival, Task: 1, Seq: 0, Object: -1},
		{At: 3, Kind: trace.Retry, Task: 1, Seq: 0, Object: 2},
		{At: 6, Kind: trace.AbortBegin, Task: 1, Seq: 0, Object: -1},
		{At: 7, Kind: trace.AbortDone, Task: 1, Seq: 0, Object: -1},
	}
	s, err := series.FromEvents(events, 30, series.Config{Window: 10, CPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Points[0].MaxAttempt; got != 0 {
		t.Fatalf("window 0 MaxAttempt = %d, want 0 (nothing committed; abort dropped its counter)", got)
	}
	if got := s.Points[1].MaxAttempt; got != 3 {
		t.Fatalf("window 1 MaxAttempt = %d, want 3", got)
	}
	if got := s.Totals().MaxAttempt; got != 3 {
		t.Fatalf("total MaxAttempt = %d, want 3", got)
	}
	var b bytes.Buffer
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "max_attempt") {
		t.Fatal("CSV header lacks max_attempt")
	}
}
