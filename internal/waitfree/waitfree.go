// Package waitfree implements the wait-free synchronization schemes the
// paper positions lock-free sharing against (§1.1): the NBW protocol of
// Kopetz and Reisinger [16] (wait-free writer, retrying readers) and a
// Chen/Burns-lineage multi-buffer register ([6], improved by Huang et
// al. [14] and Cho et al. [7]) whose readers are also wait-free at the
// cost of a priori buffer space — precisely the space/knowledge tradeoff
// (maximum number of concurrent readers must be known) that makes
// wait-free schemes awkward for the paper's dynamic systems and
// motivates its lock-free focus.
package waitfree

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// NBW is the non-blocking write protocol: a single writer bumps a
// version counter to odd, writes, and bumps it to even; readers snapshot
// the counter, copy, and re-check, retrying while a write was in flight
// or intervened. The WRITER is wait-free (never retries, never waits);
// READERS may retry, and the number of retries is bounded by the number
// of writes that overlap the read — the mirror image of lock-free
// objects, where writers retry and readers of a consistent snapshot don't
// exist as a separate class.
// The payload lives behind per-slot atomic pointers rather than raw
// memory: on the paper's hardware NBW reads raw buffers and discards
// torn copies, but a torn read is undefined behaviour under the Go
// memory model, so this port keeps NBW's version/retry control flow
// intact while making the data transfer itself well-defined.
type NBW[T any] struct {
	version atomic.Uint64 // even = stable, odd = write in progress
	data    [2]atomic.Pointer[T]
	retries atomic.Int64
}

// Write publishes v. Single-writer only: concurrent writers would
// corrupt the protocol (that is the protocol's stated precondition).
func (n *NBW[T]) Write(v T) {
	ver := n.version.Load()
	n.version.Store(ver + 1) // odd: in progress
	val := v
	n.data[((ver+2)/2)%2].Store(&val)
	n.version.Store(ver + 2) // even: stable
}

// Read returns a consistent snapshot, retrying while writes interfere.
func (n *NBW[T]) Read() T {
	for {
		v1 := n.version.Load()
		if v1%2 != 0 {
			n.retries.Add(1)
			continue
		}
		p := n.data[(v1/2)%2].Load()
		v2 := n.version.Load()
		if v1 == v2 {
			if p == nil {
				var zero T // never written yet
				return zero
			}
			return *p
		}
		n.retries.Add(1)
	}
}

// Retries returns the cumulative reader retry count.
func (n *NBW[T]) Retries() int64 { return n.retries.Load() }

// ReadRetryBound returns the maximum retries a read can suffer given at
// most w writes overlapping it — each overlapping write can invalidate
// at most one read attempt, plus one attempt may land mid-write
// (Kopetz/Reisinger's analysis shape).
func ReadRetryBound(overlappingWrites int) int {
	if overlappingWrites < 0 {
		return 0
	}
	return 2 * overlappingWrites
}

// ErrReaders reports an invalid reader bound.
var ErrReaders = errors.New("waitfree: invalid reader bound")

// MultiBuffer is a single-writer/multi-reader register whose READS are
// wait-free too: the writer publishes into a slot no reader is using,
// found by scanning per-reader announcements. It needs maxReaders
// declared up front and maxReaders+2 buffers — the a priori knowledge and
// space cost the paper contrasts with lock-free sharing (§1.1: "wait-free
// synchronization sometimes requires a priori knowledge of the maximum
// number of jobs").
type MultiBuffer[T any] struct {
	slots   []atomic.Pointer[T]
	latest  atomic.Int64 // slot index of the newest value
	reading []atomic.Int64
	// readers hands out reader ids.
	readers atomic.Int64
}

// NewMultiBuffer returns a register supporting up to maxReaders
// concurrent readers, holding initial.
func NewMultiBuffer[T any](maxReaders int, initial T) (*MultiBuffer[T], error) {
	if maxReaders < 1 {
		return nil, fmt.Errorf("%w: %d", ErrReaders, maxReaders)
	}
	m := &MultiBuffer[T]{
		slots:   make([]atomic.Pointer[T], maxReaders+2),
		reading: make([]atomic.Int64, maxReaders),
	}
	v := initial
	m.slots[0].Store(&v)
	m.latest.Store(0)
	for i := range m.reading {
		m.reading[i].Store(-1)
	}
	return m, nil
}

// Reader is a registered reader handle.
type Reader[T any] struct {
	m  *MultiBuffer[T]
	id int
}

// NewReader registers a reader; it fails once maxReaders handles exist.
func (m *MultiBuffer[T]) NewReader() (*Reader[T], error) {
	id := m.readers.Add(1) - 1
	if int(id) >= len(m.reading) {
		return nil, fmt.Errorf("%w: more than %d readers", ErrReaders, len(m.reading))
	}
	return &Reader[T]{m: m, id: int(id)}, nil
}

// Read returns the newest published value. Wait-free: announce, load,
// done — no retry loop. The announced slot cannot be reclaimed by the
// writer while the announcement stands.
func (r *Reader[T]) Read() T {
	slot := r.m.latest.Load()
	r.m.reading[r.id].Store(slot)
	// Re-load after announcing: if the writer published between our load
	// and announcement, the announced slot may be stale but it is still
	// protected and holds a complete value — single re-load keeps the
	// freshness window tight while remaining wait-free.
	slot = r.m.latest.Load()
	r.m.reading[r.id].Store(slot)
	v := *r.m.slots[slot].Load()
	r.m.reading[r.id].Store(-1)
	return v
}

// Write publishes v. Single-writer only; wait-free: scanning the
// announcements takes maxReaders steps, and with maxReaders+2 slots a
// free slot always exists (one may be the current latest, each reader
// pins at most one).
func (m *MultiBuffer[T]) Write(v T) {
	cur := m.latest.Load()
	inUse := map[int64]bool{cur: true}
	for i := range m.reading {
		if s := m.reading[i].Load(); s >= 0 {
			inUse[s] = true
		}
	}
	for i := range m.slots {
		if !inUse[int64(i)] {
			val := v
			m.slots[i].Store(&val)
			m.latest.Store(int64(i))
			return
		}
	}
	// Unreachable by the counting argument; guard anyway.
	panic("waitfree: no free slot — reader bound violated")
}
