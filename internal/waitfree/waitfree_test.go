package waitfree

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNBWSequential(t *testing.T) {
	var n NBW[int]
	n.Write(42)
	if got := n.Read(); got != 42 {
		t.Fatalf("Read = %d, want 42", got)
	}
	n.Write(7)
	if got := n.Read(); got != 7 {
		t.Fatalf("Read = %d, want 7", got)
	}
	if n.Retries() != 0 {
		t.Fatalf("sequential retries = %d", n.Retries())
	}
}

func TestNBWReadersSeeConsistentPairs(t *testing.T) {
	// Write pairs (i, i); readers must never observe a torn pair.
	type pair struct{ a, b int }
	var n NBW[pair]
	n.Write(pair{0, 0})
	stop := make(chan struct{})
	var torn atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := n.Read()
				if p.a != p.b {
					torn.Add(1)
					return
				}
			}
		}()
	}
	for i := 1; i <= 50000; i++ {
		n.Write(pair{i, i})
	}
	close(stop)
	wg.Wait()
	if torn.Load() != 0 {
		t.Fatalf("torn reads: %d", torn.Load())
	}
}

func TestNBWReadRetryBound(t *testing.T) {
	if ReadRetryBound(-1) != 0 || ReadRetryBound(0) != 0 || ReadRetryBound(3) != 6 {
		t.Fatal("ReadRetryBound wrong")
	}
}

func TestMultiBufferBasics(t *testing.T) {
	m, err := NewMultiBuffer(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	if got := r1.Read(); got != 10 {
		t.Fatalf("initial Read = %d", got)
	}
	m.Write(20)
	if got := r1.Read(); got != 20 {
		t.Fatalf("Read after write = %d", got)
	}
	// Second reader fine, third rejected.
	if _, err := m.NewReader(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewReader(); !errors.Is(err, ErrReaders) {
		t.Fatal("third reader accepted with maxReaders=2")
	}
}

func TestMultiBufferRejectsBadBound(t *testing.T) {
	if _, err := NewMultiBuffer(0, 1); !errors.Is(err, ErrReaders) {
		t.Fatal("maxReaders=0 accepted")
	}
}

func TestMultiBufferManyWritesFewSlots(t *testing.T) {
	// The writer must always find a free slot (maxReaders+2 suffice).
	m, err := NewMultiBuffer(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := m.NewReader()
	for i := 1; i <= 10000; i++ {
		m.Write(i)
		if got := r.Read(); got != i {
			t.Fatalf("Read = %d, want %d", got, i)
		}
	}
}

func TestMultiBufferConcurrentFreshAndUntorn(t *testing.T) {
	type pair struct{ a, b int }
	m, err := NewMultiBuffer(4, pair{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var torn, regress atomic.Int64
	for g := 0; g < 4; g++ {
		r, err := m.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := r.Read()
				if p.a != p.b {
					torn.Add(1)
					return
				}
				if p.a < last {
					regress.Add(1)
					return
				}
				last = p.a
			}
		}()
	}
	for i := 1; i <= 50000; i++ {
		m.Write(pair{i, i})
	}
	close(stop)
	wg.Wait()
	if torn.Load() != 0 {
		t.Fatalf("torn reads: %d", torn.Load())
	}
	if regress.Load() != 0 {
		t.Fatalf("freshness regressions: %d", regress.Load())
	}
}

func TestNBWZeroValueBeforeFirstWrite(t *testing.T) {
	var n NBW[int]
	if got := n.Read(); got != 0 {
		t.Fatalf("fresh NBW read = %d, want zero value", got)
	}
}

func TestNBWRetriesCounterVisible(t *testing.T) {
	var n NBW[int]
	n.Write(1)
	if n.Retries() != 0 {
		t.Fatal("quiescent retries nonzero")
	}
}

func TestMultiBufferFreshnessSingleThread(t *testing.T) {
	// A read after each write must see exactly that write.
	m, err := NewMultiBuffer(3, -1)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := m.NewReader()
	r2, _ := m.NewReader()
	for i := 0; i < 100; i++ {
		m.Write(i)
		if got := r1.Read(); got != i {
			t.Fatalf("r1 read %d, want %d", got, i)
		}
		if got := r2.Read(); got != i {
			t.Fatalf("r2 read %d, want %d", got, i)
		}
	}
}
