package experiment

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/uam"
)

// AblationRetry compares the two retry-accounting semantics of DESIGN.md
// §5.2 under overload: the conservative adversary (any intervening
// dispatch invalidates a preempted access — the model Theorem 2 bounds)
// versus conflict-precise accounting (retry only when a conflicting
// commit landed on the same object). The bound must hold for both, and
// precise accounting must never retry more than conservative.
func AblationRetry(p Profile) ([]*Table, error) {
	t := &Table{
		ID:      "ablation-retry",
		Title:   "retry semantics: conservative adversary vs conflict-precise",
		Note:    "lock-free RUA, overload AL≈1.1, 10 tasks / 4 accesses over 3 objects",
		Columns: []string{"semantics", "retries/1k jobs", "AUR", "CMR"},
	}
	type row struct {
		name    string
		conserv bool
	}
	rows := []row{{"conservative", true}, {"precise", false}}
	w := WorkloadSpec{
		NumTasks: PaperTasks, NumObjects: 3, AccessesPerJob: 4,
		MeanExec: 500 * rtime.Microsecond, TargetAL: 1.1,
		Class: StepTUFs, MaxArrivals: 2,
	}
	template, err := w.Build()
	if err != nil {
		return nil, err
	}
	horizon := horizonFor(template, p)
	type cell struct {
		retries, jobs int64
		aur, cmr      float64
	}
	nSeeds := len(p.Seeds)
	cells, err := runner.Map(p.Jobs, len(rows)*nSeeds, func(i int) (cell, error) {
		rw := rows[i/nSeeds]
		seed := p.Seeds[i%nSeeds]
		res, err := sim.Run(sim.Config{
			Tasks: task.CloneAll(template), Scheduler: rua.NewLockFree(), Mode: sim.LockFree,
			R: DefaultR, S: DefaultS, OpCost: DefaultOpCost,
			Horizon:     horizon,
			ArrivalKind: uam.KindBursty, Seed: seed,
			ConservativeRetry: rw.conserv,
		})
		if err != nil {
			return cell{}, err
		}
		st := metrics.Analyze(res)
		return cell{retries: res.Retries, jobs: res.Arrivals, aur: st.AUR, cmr: st.CMR}, nil
	})
	if err != nil {
		return nil, err
	}
	var retriesByMode [2]float64
	for ri, rw := range rows {
		var retries, jobs int64
		var aurs, cmrs []float64
		for si := 0; si < nSeeds; si++ {
			c := cells[ri*nSeeds+si]
			retries += c.retries
			jobs += c.jobs
			aurs = append(aurs, c.aur)
			cmrs = append(cmrs, c.cmr)
		}
		perK := 0.0
		if jobs > 0 {
			perK = 1000 * float64(retries) / float64(jobs)
		}
		retriesByMode[ri] = perK
		t.AddRow(rw.name, perK,
			metrics.Summarize(aurs).String(), metrics.Summarize(cmrs).String())
	}
	if retriesByMode[1] > retriesByMode[0] {
		return []*Table{t}, fmt.Errorf("experiment: precise retries (%v/1k) exceed conservative (%v/1k)",
			retriesByMode[1], retriesByMode[0])
	}
	return []*Table{t}, nil
}

// AblationOpCost isolates the scheduling-overhead charge of DESIGN.md
// §5.1: the same lock-free RUA workload with the per-operation cost
// zeroed ("ideal"), at the calibrated default, and at 10× the default.
// AUR/CMR must degrade monotonically as the scheduler gets slower.
func AblationOpCost(p Profile) ([]*Table, error) {
	t := &Table{
		ID:      "ablation-opcost",
		Title:   "scheduler op-cost charge: ideal vs calibrated vs 10×",
		Note:    "lock-free RUA, AL≈0.9, 10 tasks / 4 accesses",
		Columns: []string{"op_cost_us", "overhead_ms", "AUR", "CMR"},
	}
	opCosts := []float64{0, DefaultOpCost, 10 * DefaultOpCost}
	w := WorkloadSpec{
		NumTasks: PaperTasks, NumObjects: 4, AccessesPerJob: 4,
		MeanExec: 300 * rtime.Microsecond, TargetAL: 0.9,
		Class: StepTUFs, MaxArrivals: 2,
	}
	template, err := w.Build()
	if err != nil {
		return nil, err
	}
	horizon := horizonFor(template, p)
	type cell struct {
		aur, cmr float64
		overhead rtime.Duration
	}
	nSeeds := len(p.Seeds)
	cells, err := runner.Map(p.Jobs, len(opCosts)*nSeeds, func(i int) (cell, error) {
		res, err := sim.Run(sim.Config{
			Tasks: task.CloneAll(template), Scheduler: rua.NewLockFree(), Mode: sim.LockFree,
			R: DefaultR, S: DefaultS, OpCost: opCosts[i/nSeeds],
			Horizon:     horizon,
			ArrivalKind: uam.KindJittered, Seed: p.Seeds[i%nSeeds], ConservativeRetry: true,
		})
		if err != nil {
			return cell{}, err
		}
		st := metrics.Analyze(res)
		return cell{aur: st.AUR, cmr: st.CMR, overhead: res.Overhead}, nil
	})
	if err != nil {
		return nil, err
	}
	for oi, opCost := range opCosts {
		var aurs, cmrs []float64
		var overhead rtime.Duration
		for si := 0; si < nSeeds; si++ {
			c := cells[oi*nSeeds+si]
			aurs = append(aurs, c.aur)
			cmrs = append(cmrs, c.cmr)
			overhead += c.overhead
		}
		t.AddRow(opCost, float64(overhead)/float64(len(p.Seeds))/1000,
			metrics.Summarize(aurs).String(), metrics.Summarize(cmrs).String())
	}
	return []*Table{t}, nil
}
