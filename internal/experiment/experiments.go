package experiment

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/analysis"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/uam"
)

// Default access-cost and overhead calibration, chosen to match the
// magnitudes of the paper's Fig 8 on its 500 MHz Pentium-III (s ≈ 5–15
// µs, r ≈ 100–400 µs including RUA's lock-based machinery) and the
// meta-scheduler overhead implied by Fig 9.
const (
	// DefaultS is the lock-free per-access cost s.
	DefaultS = 5 * rtime.Microsecond
	// DefaultR is the lock-based per-access cost r (object operation plus
	// RUA's resource-sharing mechanism).
	DefaultR = 150 * rtime.Microsecond
	// DefaultOpCost is virtual µs charged per scheduler operation.
	DefaultOpCost = 0.02
)

// runOnce builds and runs one simulation of the canonical workload.
func runOnce(tasks []*task.Task, s sched.Scheduler, mode sim.Mode, r, sAcc rtime.Duration,
	opCost float64, horizon rtime.Time, seed int64) (sim.Result, error) {
	return sim.Run(sim.Config{
		Tasks:             tasks,
		Scheduler:         s,
		Mode:              mode,
		R:                 r,
		S:                 sAcc,
		OpCost:            opCost,
		Horizon:           horizon,
		ArrivalKind:       uam.KindJittered,
		Seed:              seed,
		ConservativeRetry: true,
	})
}

// pairPoint is one sweep cell to be run under both synchronization
// modes, with its own workload and cost calibration.
type pairPoint struct {
	w      WorkloadSpec
	r, s   rtime.Duration
	opCost float64
}

// runPairs executes every (sweep-point × seed × mode) simulation of a
// sweep on the profile's worker pool and returns per-point, per-seed
// stats for the lock-based and lock-free runs (seed order preserved).
//
// Determinism: each workload is built once, sequentially, as a template;
// every run clones the template (tasks are read-only during a run, but
// clones make sharing bugs structurally impossible) and derives its seed
// from its own grid slot, never from shared RNG state. Results land in
// index-addressed slots, so the merge — and therefore every rendered
// table — is byte-identical for any worker count.
func runPairs(p Profile, points []pairPoint) (lb, lf [][]metrics.RunStats, err error) {
	templates := make([][]*task.Task, len(points))
	horizons := make([]rtime.Time, len(points))
	for i, pt := range points {
		t, err := pt.w.Build()
		if err != nil {
			return nil, nil, err
		}
		templates[i] = t
		horizons[i] = horizonFor(t, p)
	}
	nSeeds := len(p.Seeds)
	stats, err := runner.Map(p.Jobs, len(points)*nSeeds*2, func(i int) (metrics.RunStats, error) {
		pi := i / (2 * nSeeds)
		pt := points[pi]
		seed := p.Seeds[(i/2)%nSeeds]
		tasks := task.CloneAll(templates[pi])
		var (
			s    sched.Scheduler
			mode sim.Mode
		)
		if i%2 == 0 {
			s, mode = rua.NewLockBased(), sim.LockBased
		} else {
			s, mode = rua.NewLockFree(), sim.LockFree
		}
		res, err := runOnce(tasks, s, mode, pt.r, pt.s, pt.opCost, horizons[pi], seed)
		if err != nil {
			return metrics.RunStats{}, err
		}
		return metrics.Analyze(res), nil
	})
	if err != nil {
		return nil, nil, err
	}
	lb = make([][]metrics.RunStats, len(points))
	lf = make([][]metrics.RunStats, len(points))
	for pi := range points {
		lb[pi] = make([]metrics.RunStats, 0, nSeeds)
		lf[pi] = make([]metrics.RunStats, 0, nSeeds)
		for si := 0; si < nSeeds; si++ {
			base := (pi*nSeeds + si) * 2
			lb[pi] = append(lb[pi], stats[base])
			lf[pi] = append(lf[pi], stats[base+1])
		}
	}
	return lb, lf, nil
}

// bothModes runs one workload under lock-based and lock-free RUA for
// every seed in the profile, in parallel, returning per-mode stats. The
// task set is built once and cloned per run rather than rebuilt for
// every (seed × mode) cell.
func bothModes(w WorkloadSpec, p Profile, r, s rtime.Duration, opCost float64) (lb, lf []metrics.RunStats, err error) {
	lbs, lfs, err := runPairs(p, []pairPoint{{w: w, r: r, s: s, opCost: opCost}})
	if err != nil {
		return nil, nil, err
	}
	return lbs[0], lfs[0], nil
}

func means(stats []metrics.RunStats, f func(metrics.RunStats) float64) metrics.Sample {
	xs := make([]float64, len(stats))
	for i, st := range stats {
		xs[i] = f(st)
	}
	return metrics.Summarize(xs)
}

// Fig8 regenerates Figure 8: lock-based r and lock-free s effective
// object access times under an increasing number of shared objects
// accessed per job (10 tasks, no nested sections). The measured access
// time spans a job's first arrival at the access boundary through the
// commit, so lock-based numbers absorb blocking and RUA's resource
// machinery while lock-free numbers absorb retries — exactly the two
// quantities the paper's figure contrasts.
func Fig8(p Profile) ([]*Table, error) {
	t := &Table{
		ID:    "fig8",
		Title: "lock-based (r) vs lock-free (s) shared object access time",
		Note: fmt.Sprintf("10 tasks; base costs r=%v s=%v; effective time includes blocking/retries; mean ± 95%% CI over %d seeds",
			DefaultR, DefaultS, len(p.Seeds)),
		Columns: []string{"objects", "r_eff_us", "s_eff_us", "r/s"},
	}
	points := sweepInts(p, 1, 10)
	templates := make([][]*task.Task, len(points))
	horizons := make([]rtime.Time, len(points))
	for pi, objs := range points {
		w := WorkloadSpec{
			NumTasks: PaperTasks, NumObjects: objs, AccessesPerJob: objs,
			MeanExec: 500 * rtime.Microsecond, TargetAL: 0.4,
			Class: StepTUFs, MaxArrivals: 1,
		}
		tasks, err := w.Build()
		if err != nil {
			return nil, err
		}
		templates[pi] = tasks
		horizons[pi] = horizonFor(tasks, p)
	}
	// One grid cell per (objects × seed × mode): eff is the measured
	// effective access time, ok whether the run observed any accesses.
	type cell struct {
		eff float64
		ok  bool
	}
	nSeeds := len(p.Seeds)
	cells, err := runner.Map(p.Jobs, len(points)*nSeeds*2, func(i int) (cell, error) {
		pi := i / (2 * nSeeds)
		seed := p.Seeds[(i/2)%nSeeds]
		tasks := task.CloneAll(templates[pi])
		var (
			s    sched.Scheduler
			mode sim.Mode
		)
		if i%2 == 0 {
			s, mode = rua.NewLockBased(), sim.LockBased
		} else {
			s, mode = rua.NewLockFree(), sim.LockFree
		}
		res, err := runOnce(tasks, s, mode, DefaultR, DefaultS, DefaultOpCost, horizons[pi], seed)
		if err != nil {
			return cell{}, err
		}
		if res.Accesses == 0 {
			return cell{}, nil
		}
		return cell{eff: float64(res.AccessTime) / float64(res.Accesses), ok: true}, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, objs := range points {
		var rEff, sEff []float64
		for si := 0; si < nSeeds; si++ {
			base := (pi*nSeeds + si) * 2
			if c := cells[base]; c.ok {
				rEff = append(rEff, c.eff)
			}
			if c := cells[base+1]; c.ok {
				sEff = append(sEff, c.eff)
			}
		}
		rS, sS := metrics.Summarize(rEff), metrics.Summarize(sEff)
		ratio := math.Inf(1)
		if sS.Mean > 0 {
			ratio = rS.Mean / sS.Mean
		}
		t.AddRow(objs, rS.String(), sS.String(), ratio)
	}
	return []*Table{t}, nil
}

// Fig9 regenerates Figure 9: critical-time-miss load (CML) versus average
// job execution time for ideal, lock-free, and lock-based RUA. Ideal RUA
// is the ablation of DESIGN.md §5.1: near-zero object access cost with
// the same scheduling overhead.
func Fig9(p Profile) ([]*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "critical-time-miss load vs average job execution time",
		Note:    "10 tasks, 4 accesses/job over 10 objects; CML = highest load in grid with CMR=1",
		Columns: []string{"exec_us", "cml_ideal", "cml_lockfree", "cml_lockbased"},
	}
	execs := []rtime.Duration{10, 30, 100, 300, 1000, 3000}
	if p.Name == Quick.Name {
		execs = []rtime.Duration{30, 300, 3000}
	}
	loads := loadGrid(p)
	type variant struct {
		name  string
		sched func() sched.Scheduler
		mode  sim.Mode
		r, s  rtime.Duration
	}
	variants := []variant{
		{"ideal", func() sched.Scheduler { return rua.NewLockFree() }, sim.LockFree, DefaultR, 1},
		{"lockfree", func() sched.Scheduler { return rua.NewLockFree() }, sim.LockFree, DefaultR, DefaultS},
		{"lockbased", func() sched.Scheduler { return rua.NewLockBased() }, sim.LockBased, DefaultR, DefaultS},
	}
	// Each (execution-time × variant) cell is an independent CML grid
	// search; fan the searches out and merge by index.
	cmls, err := runner.Map(p.Jobs, len(execs)*len(variants), func(i int) (float64, error) {
		ex := execs[i/len(variants)]
		v := variants[i%len(variants)]
		cml, _, err := metrics.FindCML(metrics.CMLConfig{
			Loads:         loads,
			MissTolerance: 0.001,
			Build: func(al float64) (sim.Config, error) {
				w := WorkloadSpec{
					NumTasks: PaperTasks, NumObjects: 10, AccessesPerJob: 4,
					MeanExec: ex, TargetAL: al, Class: StepTUFs, MaxArrivals: 1,
				}
				tasks, err := w.Build()
				if err != nil {
					return sim.Config{}, err
				}
				return sim.Config{
					Tasks: tasks, Scheduler: v.sched(), Mode: v.mode,
					R: v.r, S: v.s, OpCost: DefaultOpCost,
					Horizon:     horizonFor(tasks, p),
					ArrivalKind: uam.KindJittered, Seed: p.Seeds[0],
					ConservativeRetry: true,
				}, nil
			},
		})
		return cml, err
	})
	if err != nil {
		return nil, err
	}
	for ei, ex := range execs {
		base := ei * len(variants)
		t.AddRow(int64(ex), cmls[base], cmls[base+1], cmls[base+2])
	}
	return []*Table{t}, nil
}

// AURCMR regenerates Figures 10–13: AUR and CMR of lock-based vs
// lock-free RUA under an increasing number of shared objects, at the
// given approximate load and TUF class.
func AURCMR(p Profile, id string, class TUFClass, al float64) ([]*Table, error) {
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("AUR/CMR, %s TUFs, AL≈%.1f, increasing shared objects", class, al),
		Note:    fmt.Sprintf("10 tasks; r=%v s=%v; mean ± 95%% CI over %d seeds", DefaultR, DefaultS, len(p.Seeds)),
		Columns: []string{"objects", "AUR_lockbased", "AUR_lockfree", "CMR_lockbased", "CMR_lockfree"},
	}
	objSweep := sweepInts(p, 1, 10)
	points := make([]pairPoint, len(objSweep))
	for pi, objs := range objSweep {
		points[pi] = pairPoint{
			w: WorkloadSpec{
				NumTasks: PaperTasks, NumObjects: objs, AccessesPerJob: objs,
				MeanExec: 500 * rtime.Microsecond, TargetAL: al,
				Class: class, MaxArrivals: 2,
			},
			r: DefaultR, s: DefaultS, opCost: DefaultOpCost,
		}
	}
	lbs, lfs, err := runPairs(p, points)
	if err != nil {
		return nil, err
	}
	for pi, objs := range objSweep {
		lb, lf := lbs[pi], lfs[pi]
		t.AddRow(objs,
			means(lb, func(s metrics.RunStats) float64 { return s.AUR }).String(),
			means(lf, func(s metrics.RunStats) float64 { return s.AUR }).String(),
			means(lb, func(s metrics.RunStats) float64 { return s.CMR }).String(),
			means(lf, func(s metrics.RunStats) float64 { return s.CMR }).String(),
		)
	}
	return []*Table{t}, nil
}

// Fig10 — underload, step TUFs.
func Fig10(p Profile) ([]*Table, error) { return AURCMR(p, "fig10", StepTUFs, 0.4) }

// Fig11 — underload, heterogeneous TUFs.
func Fig11(p Profile) ([]*Table, error) { return AURCMR(p, "fig11", HeterogeneousTUFs, 0.4) }

// Fig12 — overload, step TUFs.
func Fig12(p Profile) ([]*Table, error) { return AURCMR(p, "fig12", StepTUFs, 1.1) }

// Fig13 — overload, heterogeneous TUFs.
func Fig13(p Profile) ([]*Table, error) { return AURCMR(p, "fig13", HeterogeneousTUFs, 1.1) }

// Fig14 regenerates Figure 14: AUR/CMR across an increasing load sweep
// (0.1–1.1) with heterogeneous TUFs and reader tasks sharing queues.
func Fig14(p Profile) ([]*Table, error) {
	t := &Table{
		ID:      "fig14",
		Title:   "AUR/CMR across load 0.1–1.1, heterogeneous TUFs (reader sweep)",
		Note:    fmt.Sprintf("10 reader tasks over 5 queues; r=%v s=%v", DefaultR, DefaultS),
		Columns: []string{"AL", "AUR_lockbased", "AUR_lockfree", "CMR_lockbased", "CMR_lockfree"},
	}
	loads := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.1}
	if p.Name == Quick.Name {
		loads = []float64{0.3, 0.9}
	}
	points := make([]pairPoint, len(loads))
	for pi, al := range loads {
		points[pi] = pairPoint{
			w: WorkloadSpec{
				NumTasks: PaperTasks, NumObjects: 5, AccessesPerJob: 4,
				MeanExec: 500 * rtime.Microsecond, TargetAL: al,
				Class: HeterogeneousTUFs, MaxArrivals: 2,
			},
			r: DefaultR, s: DefaultS, opCost: DefaultOpCost,
		}
	}
	lbs, lfs, err := runPairs(p, points)
	if err != nil {
		return nil, err
	}
	for pi, al := range loads {
		lb, lf := lbs[pi], lfs[pi]
		t.AddRow(al,
			means(lb, func(s metrics.RunStats) float64 { return s.AUR }).String(),
			means(lf, func(s metrics.RunStats) float64 { return s.AUR }).String(),
			means(lb, func(s metrics.RunStats) float64 { return s.CMR }).String(),
			means(lf, func(s metrics.RunStats) float64 { return s.CMR }).String(),
		)
	}
	return []*Table{t}, nil
}

// Thm2 validates Theorem 2 empirically: per-task measured maximum
// lock-free retries per job never exceed the analytic bound, under the
// bursty UAM adversary with conservative retry accounting.
func Thm2(p Profile) ([]*Table, error) {
	t := &Table{
		ID:      "thm2",
		Title:   "Theorem 2 retry bound vs measured per-job retries",
		Note:    "lock-free RUA, bursty UAM arrivals, conservative retry accounting",
		Columns: []string{"task", "uam", "C_us", "bound_f_i", "max_measured", "ok"},
	}
	w := WorkloadSpec{
		NumTasks: ValidationTasks, NumObjects: 3, AccessesPerJob: 4,
		MeanExec: 300 * rtime.Microsecond, TargetAL: 1.0,
		Class: StepTUFs, MaxArrivals: 2,
	}
	tasks, err := w.Build()
	if err != nil {
		return nil, err
	}
	horizon := horizonFor(tasks, p)
	// Per-seed runs are independent; fan out and fold the per-task retry
	// maxima afterwards (max is commutative, so the merge is order-free).
	perSeed, err := runner.Map(p.Jobs, len(p.Seeds), func(si int) ([]int64, error) {
		ts := task.CloneAll(tasks)
		res, err := sim.Run(sim.Config{
			Tasks: ts, Scheduler: rua.NewLockFree(), Mode: sim.LockFree,
			R: DefaultR, S: DefaultS, OpCost: DefaultOpCost,
			Horizon:     horizon,
			ArrivalKind: uam.KindBursty, Seed: p.Seeds[si], ConservativeRetry: true,
		})
		if err != nil {
			return nil, err
		}
		maxr := make([]int64, len(ts))
		for _, j := range res.Jobs {
			if j.Retries > maxr[j.Task.ID] {
				maxr[j.Task.ID] = j.Retries
			}
		}
		return maxr, nil
	})
	if err != nil {
		return nil, err
	}
	maxRetries := map[int]int64{}
	for _, maxr := range perSeed {
		for id, r := range maxr {
			if r > maxRetries[id] {
				maxRetries[id] = r
			}
		}
	}
	allOK := true
	for i, tk := range tasks {
		bound, err := analysis.RetryBound(i, tasks)
		if err != nil {
			return nil, err
		}
		ok := maxRetries[tk.ID] <= bound
		if !ok {
			allOK = false
		}
		t.AddRow(tk.Name, tk.Arrival.String(), int64(tk.CriticalTime()), bound, maxRetries[tk.ID], ok)
	}
	if !allOK {
		return []*Table{t}, fmt.Errorf("experiment: Theorem 2 bound violated (see table)")
	}
	return []*Table{t}, nil
}

// Thm3 maps the lock-free vs lock-based sojourn-time tradeoff across the
// s/r ratio: analytic worst-case sojourns from Theorem 3's inputs, the
// per-task exact thresholds, and measured mean sojourns from simulation.
// The crossover should straddle the paper's 2/3 figure.
func Thm3(p Profile) ([]*Table, error) {
	t := &Table{
		ID:      "thm3",
		Title:   "sojourn-time crossover vs s/r ratio",
		Note:    "analytic = Theorem 3 worst cases; sim = measured mean sojourn (µs); winner by analytic worst case",
		Columns: []string{"s/r", "analytic_LF_wins", "exact_thresh_min", "sim_sojourn_lb", "sim_sojourn_lf"},
	}
	ratios := []float64{0.1, 0.3, 0.5, 0.67, 0.8, 1.0, 1.3}
	if p.Name == Quick.Name {
		ratios = []float64{0.3, 0.67, 1.3}
	}
	r := 100 * rtime.Microsecond
	w := WorkloadSpec{
		NumTasks: ValidationTasks, NumObjects: 3, AccessesPerJob: 6,
		MeanExec: 400 * rtime.Microsecond, TargetAL: 0.5,
		Class: StepTUFs, MaxArrivals: 1,
	}
	points := make([]pairPoint, len(ratios))
	svals := make([]rtime.Duration, len(ratios))
	for pi, ratio := range ratios {
		svals[pi] = rtime.Duration(math.Max(1, math.Round(float64(r)*ratio)))
		points[pi] = pairPoint{w: w, r: r, s: svals[pi], opCost: DefaultOpCost}
	}
	lbs, lfs, err := runPairs(p, points)
	if err != nil {
		return nil, err
	}
	tasks, err := w.Build()
	if err != nil {
		return nil, err
	}
	for pi, ratio := range ratios {
		s := svals[pi]
		wins := 0
		minThresh := math.Inf(1)
		for i := range tasks {
			in, err := analysis.InputsFor(i, tasks, r, s)
			if err != nil {
				return nil, err
			}
			if in.ExactConditionHolds() {
				wins++
			}
			if th := in.ExactThreshold(); th < minThresh {
				minThresh = th
			}
		}
		lb, lf := lbs[pi], lfs[pi]
		t.AddRow(ratio, fmt.Sprintf("%d/%d", wins, len(tasks)), minThresh,
			means(lb, func(st metrics.RunStats) float64 { return float64(st.MeanSojourn) }).String(),
			means(lf, func(st metrics.RunStats) float64 { return float64(st.MeanSojourn) }).String(),
		)
	}
	return []*Table{t}, nil
}

// Costs regenerates the §3.6/§5 asymptotic comparison: charged operation
// counts of one lock-based vs one lock-free RUA scheduling pass as the
// ready queue grows, against the Θ(n² log n) / Θ(n²) predictions.
func Costs(p Profile) ([]*Table, error) {
	t := &Table{
		ID:      "costs",
		Title:   "RUA scheduling-pass cost: lock-based O(n² log n) vs lock-free O(n²)",
		Note:    "charged ops per Select over n jobs with lock dependencies present",
		Columns: []string{"n", "ops_lockbased", "ops_lockfree", "ratio", "log2(n)"},
	}
	ns := []int{4, 8, 16, 32, 64, 128, 256}
	if p.Name == Quick.Name {
		ns = []int{8, 32, 128}
	}
	type cell struct{ lb, lf int64 }
	cells, err := runner.Map(p.Jobs, len(ns), func(i int) (cell, error) {
		wLB, wLF := CostWorld(ns[i])
		return cell{
			lb: rua.NewLockBased().Select(wLB).Ops,
			lf: rua.NewLockFree().Select(wLF).Ops,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		c := cells[i]
		ratio := float64(c.lb) / float64(c.lf)
		t.AddRow(n, c.lb, c.lf, ratio, math.Log2(float64(n)))
	}
	return []*Table{t}, nil
}

// CostWorld builds a synthetic n-job world exhibiting the paper's §3.6
// worst case: an O(n)-long dependency chain (J_i holds object i while
// waiting for object i−1, the nested-section shape that makes chains
// deep), so lock-based RUA's per-job aggregate work is Θ(n) while
// lock-free RUA's stays Θ(1) plus schedule insertion. Exported for reuse
// by the root benchmarks. The chain state is installed directly on the
// resource map — the cost experiment measures one scheduling pass, not an
// execution.
func CostWorld(n int) (lockBased, lockFree sched.World) {
	res := resource.NewMap()
	w := WorkloadSpec{
		NumTasks: n, NumObjects: maxInt(n, 1), AccessesPerJob: 1,
		MeanExec: 300 * rtime.Microsecond, TargetAL: 0.8,
		Class: HeterogeneousTUFs, MaxArrivals: 1,
	}
	tasks, err := w.Build()
	if err != nil {
		panic(err)
	}
	jobs := make([]*task.Job, n)
	for i, tk := range tasks {
		jobs[i] = task.NewJob(tk, 0, rtime.Time(i))
	}
	// J_0 holds o_0. For i ≥ 1: J_i holds o_i and waits on o_{i-1}.
	for i := 0; i < n; i++ {
		if granted, _, err := res.TryAcquire(jobs[i], i); err != nil || !granted {
			panic(fmt.Sprintf("experiment: CostWorld acquire %d: granted=%v err=%v", i, granted, err))
		}
	}
	for i := 1; i < n; i++ {
		if granted, _, err := res.TryAcquire(jobs[i], i-1); err != nil || granted {
			panic(fmt.Sprintf("experiment: CostWorld wait %d: granted=%v err=%v", i, granted, err))
		}
		jobs[i].State = task.Blocked
	}
	lockBased = sched.World{Now: 0, Jobs: jobs, Res: res, Acc: 10, LockBased: true}
	lockFree = sched.World{Now: 0, Jobs: jobs, Res: res, Acc: 10, LockBased: false}
	return lockBased, lockFree
}

// AURBoundsExp checks Lemmas 4 and 5: simulated AUR must not exceed the
// analytic upper bound (and the lower bound must not exceed the upper).
func AURBoundsExp(p Profile) ([]*Table, error) {
	t := &Table{
		ID:      "aurbounds",
		Title:   "Lemma 4/5 AUR bounds vs simulated AUR (underload, non-increasing TUFs)",
		Note:    "upper bound uses shortest sojourns at max rate; lower uses worst sojourns at min rate",
		Columns: []string{"mode", "lower", "measured", "upper", "ok"},
	}
	w := WorkloadSpec{
		NumTasks: BoundsTasks, NumObjects: 4, AccessesPerJob: 2,
		MeanExec: 300 * rtime.Microsecond, TargetAL: 0.3,
		Class: HeterogeneousTUFs, MaxArrivals: 1,
	}
	tasks, err := w.Build()
	if err != nil {
		return nil, err
	}
	interfLF, err := analysis.InterferenceVector(tasks, DefaultS)
	if err != nil {
		return nil, err
	}
	interfLB, err := analysis.InterferenceVector(tasks, DefaultR)
	if err != nil {
		return nil, err
	}
	lfB, err := analysis.LockFreeAUR(tasks, DefaultS, interfLF)
	if err != nil {
		return nil, err
	}
	lbB, err := analysis.LockBasedAUR(tasks, DefaultR, interfLB)
	if err != nil {
		return nil, err
	}
	lb, lf, err := bothModes(w, p, DefaultR, DefaultS, 0)
	if err != nil {
		return nil, err
	}
	const eps = 1e-9
	mlb := means(lb, func(s metrics.RunStats) float64 { return s.AUR })
	mlf := means(lf, func(s metrics.RunStats) float64 { return s.AUR })
	okLB := mlb.Mean <= lbB.Upper+eps && lbB.Lower <= lbB.Upper+eps
	okLF := mlf.Mean <= lfB.Upper+eps && lfB.Lower <= lfB.Upper+eps
	t.AddRow("lock-based", lbB.Lower, mlb.String(), lbB.Upper, okLB)
	t.AddRow("lock-free", lfB.Lower, mlf.String(), lfB.Upper, okLF)
	if !okLB || !okLF {
		return []*Table{t}, fmt.Errorf("experiment: AUR bounds violated (see table)")
	}
	return []*Table{t}, nil
}

// Runner is one registered experiment.
type Runner func(Profile) ([]*Table, error)

// Registry maps experiment ids to runners, in the order DESIGN.md lists
// them.
var Registry = map[string]Runner{
	"fig8":            Fig8,
	"fig9":            Fig9,
	"fig10":           Fig10,
	"fig11":           Fig11,
	"fig12":           Fig12,
	"fig13":           Fig13,
	"fig14":           Fig14,
	"thm2":            Thm2,
	"thm3":            Thm3,
	"costs":           Costs,
	"aurbounds":       AURBoundsExp,
	"ablation-retry":  AblationRetry,
	"ablation-opcost": AblationOpCost,
	"baselines":       Baselines,
	"multicpu":        MultiCPU,
	"globalcpu":       GlobalCPU,
	"lockdisc":        LockDisciplines,
	"faults":          FaultSweep,
	"scale":           Scale,
	"stoch":           StochSweep,
}

// Names returns the registered experiment ids in sorted order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sweepInts returns the object-count sweep for the profile.
func sweepInts(p Profile, lo, hi int) []int {
	if p.Name == Quick.Name {
		return []int{lo, (lo + hi) / 2, hi}
	}
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

func loadGrid(p Profile) []float64 {
	if p.Name == Quick.Name {
		return []float64{0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.2}
	}
	out := make([]float64, 0, 12)
	for al := 0.1; al <= 1.21; al += 0.1 {
		out = append(out, al)
	}
	return out
}
