package experiment

import (
	"fmt"
	"strings"

	"repro/internal/gsim"
	"repro/internal/multi"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/trace/check"
	"repro/internal/trace/span"
	"repro/internal/uam"
)

// Trace-run simulator selectors (cmd/rtsim -trace-sim).
const (
	TraceSimUni    = "uni"    // single-processor engine (internal/sim)
	TraceSimMulti  = "multi"  // partitioned multiprocessor (internal/multi)
	TraceSimGlobal = "global" // global multiprocessor (internal/gsim)
)

// TraceCPUs is the processor count traced multi/global runs use.
const TraceCPUs = 2

// TraceWorkloadSpec is the canonical workload traced runs and the
// bound-check suite execute: the Theorem 2 validation shape (six tasks,
// three shared objects, four accesses per job, bursty UAM) at full
// load, where retries and preemptions are plentiful enough for the
// timeline to be interesting.
func TraceWorkloadSpec() WorkloadSpec {
	return WorkloadSpec{
		NumTasks:       ValidationTasks,
		NumObjects:     3,
		AccessesPerJob: 4,
		MeanExec:       300 * rtime.Microsecond,
		TargetAL:       1.0,
		Class:          StepTUFs,
		MaxArrivals:    2,
	}
}

// TraceRun is one traced simulation: the full event stream plus
// everything needed to fold and bound-check it.
type TraceRun struct {
	Sim       string
	LockBased bool
	Seed      int64

	Tasks   []*task.Task
	Horizon rtime.Time
	Events  []trace.Event
}

// buildTraceTasks materializes the trace workload and splits it into
// two disjoint shared-object groups: the second half of the task set
// has its object ids shifted past the first half's. One fully-connected
// component would be placed whole on a single processor by the
// object-aware partitioner, collapsing the "multi" trace runs into the
// uniprocessor ones; two components give the partitioned simulator a
// real two-CPU timeline to trace.
func buildTraceTasks() ([]*task.Task, error) {
	spec := TraceWorkloadSpec()
	tasks, err := spec.Build()
	if err != nil {
		return nil, err
	}
	for i := spec.NumTasks / 2; i < len(tasks); i++ {
		for k := range tasks[i].Segments {
			if tasks[i].Segments[k].Kind != task.Compute {
				tasks[i].Segments[k].Object += spec.NumObjects
			}
		}
	}
	return tasks, nil
}

// TraceSetup materializes the canonical trace workload and its horizon
// under p — everything an online consumer (internal/obs) needs to
// configure itself before the engine runs.
func TraceSetup(p Profile) ([]*task.Task, rtime.Time, error) {
	tasks, err := buildTraceTasks()
	if err != nil {
		return nil, 0, err
	}
	return tasks, horizonFor(tasks, p), nil
}

// RunTrace executes one fully-observed simulation of the canonical
// trace workload on the selected simulator, recording the full event
// stream. The run is a pure function of (profile, simName, lockBased,
// seed): equal inputs yield byte-identical event streams.
func RunTrace(p Profile, simName string, lockBased bool, seed int64) (*TraceRun, error) {
	tasks, horizon, err := TraceSetup(p)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder(0)
	if err := StreamTrace(p, simName, lockBased, seed, tasks, horizon, rec.Record); err != nil {
		return nil, err
	}
	return &TraceRun{
		Sim: simName, LockBased: lockBased, Seed: seed,
		Tasks: tasks, Horizon: horizon, Events: rec.Events(),
	}, nil
}

// StreamTrace executes one simulation of the canonical trace workload
// (tasks and horizon from TraceSetup) feeding every event to observer
// as it happens — nothing is buffered. The event stream is
// nondecreasing in Event.At on every simulator, so online sinks
// (internal/obs) fold it directly.
func StreamTrace(p Profile, simName string, lockBased bool, seed int64, tasks []*task.Task, horizon rtime.Time, observer func(trace.Event)) error {
	var err error
	mode := sim.LockFree
	if lockBased {
		mode = sim.LockBased
	}
	// Under an active fault plan, lock-free runs use the
	// admission-control RUA variant so overload shedding shows up in the
	// traced timeline. With a nil/zero plan every configuration below is
	// identical to the fault-free path, event for event.
	degrade := p.Fault.Active() && !lockBased
	newRUA := func() *rua.RUA {
		if lockBased {
			return rua.NewLockBased()
		}
		r := rua.NewLockFree()
		if degrade {
			r = r.WithDegradation()
		}
		return r
	}
	switch simName {
	case TraceSimUni:
		_, err = sim.Run(sim.Config{
			Tasks: tasks, Scheduler: newRUA(), Mode: mode,
			R: DefaultR, S: DefaultS, OpCost: DefaultOpCost,
			Horizon: horizon, ArrivalKind: uam.KindJittered, Seed: seed,
			ConservativeRetry: true, Fault: p.Fault, Stoch: p.Stoch, Observer: observer,
		})
	case TraceSimMulti:
		_, err = multi.Run(multi.Config{
			CPUs: TraceCPUs, Tasks: tasks, Mode: mode,
			NewScheduler: func() sched.Scheduler { return newRUA() },
			R:            DefaultR, S: DefaultS, OpCost: DefaultOpCost,
			Horizon: horizon, ArrivalKind: uam.KindJittered, Seed: seed,
			ConservativeRetry: true, Fault: p.Fault, Stoch: p.Stoch, Observer: observer,
		})
	case TraceSimGlobal:
		_, err = gsim.Run(gsim.Config{
			CPUs: TraceCPUs, Tasks: tasks, Scheduler: newRUA(), Mode: mode,
			R: DefaultR, S: DefaultS, OpCost: DefaultOpCost,
			Horizon: horizon, ArrivalKind: uam.KindJittered, Seed: seed,
			Fault: p.Fault, Stoch: p.Stoch, Observer: observer,
		})
	default:
		return fmt.Errorf("experiment: unknown trace simulator %q (want %s|%s|%s)",
			simName, TraceSimUni, TraceSimMulti, TraceSimGlobal)
	}
	return err
}

// Spans folds the run's events into per-job spans.
func (tr *TraceRun) Spans() ([]span.JobSpan, error) {
	return span.Build(tr.Events, tr.Horizon)
}

// boundCheckConfig is the Theorem 2/3 check configuration of the
// canonical trace workload. With an active fault plan, bounds are
// re-checked against the plan's inflated arrival curves and faults
// outside the arrival model mark their theorem's violations expected.
func boundCheckConfig(p Profile, lockBased bool, tasks []*task.Task) check.Config {
	cfg := check.Config{
		Theorem2: true, Theorem3: true,
		LockBased: lockBased, R: DefaultR, S: DefaultS,
	}
	if p.Fault.Active() {
		specs := make([]uam.Spec, len(tasks))
		for i, tk := range tasks {
			specs[i] = p.Fault.EffectiveSpec(tk.Arrival)
		}
		cfg.EffectiveSpecs = specs
		cfg.ExpectedT2 = p.Fault.ExceedsRetryModel()
		cfg.ExpectedT3 = p.Fault.ExceedsSojournModel()
	}
	return cfg
}

// CheckBounds runs the bound-check suite: every profile seed ×
// {uniprocessor, partitioned} × {lock-free, lock-based}, traced, folded
// into spans, and overlaid with the Theorem 2 retry bound and the
// Theorem 3 worst-case sojourn composition. The global engine is
// deliberately absent: its commit-time validation retries fall outside
// Theorem 2's uniprocessor model (see internal/gsim), so it has no
// bound to check against.
//
// It returns the rendered report (byte-identical for any jobs value —
// cells fan out on runner.Map and merge by index) and whether every
// bound held.
func CheckBounds(p Profile) (string, bool, error) {
	type cell struct {
		sim       string
		lockBased bool
		seed      int64
	}
	var cells []cell
	for _, simName := range []string{TraceSimUni, TraceSimMulti} {
		for _, lockBased := range []bool{false, true} {
			for _, seed := range p.Seeds {
				cells = append(cells, cell{sim: simName, lockBased: lockBased, seed: seed})
			}
		}
	}
	type outcome struct {
		jobs, completed int
		retries         int64
		report          *check.Report
	}
	outs, err := runner.Map(p.Jobs, len(cells), func(i int) (outcome, error) {
		c := cells[i]
		tr, err := RunTrace(p, c.sim, c.lockBased, c.seed)
		if err != nil {
			return outcome{}, err
		}
		spans, err := tr.Spans()
		if err != nil {
			return outcome{}, err
		}
		rep, err := check.Check(spans, tr.Tasks, boundCheckConfig(p, c.lockBased, tr.Tasks))
		if err != nil {
			return outcome{}, err
		}
		o := outcome{jobs: len(spans), report: rep}
		for i := range spans {
			o.retries += spans[i].Retries
			if spans[i].Outcome == span.Completed {
				o.completed++
			}
		}
		return o, nil
	})
	if err != nil {
		return "", false, err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "bound-check suite: workload=thm2-trace profile=%s sims=uni,multi modes=lock-free,lock-based\n", p.Name)
	fmt.Fprintf(&b, "%-7s %-11s %6s %6s %6s %8s %6s\n", "sim", "mode", "seed", "jobs", "done", "retries", "viol")
	ok := true
	expected := 0
	for i, c := range cells {
		o := outs[i]
		mode := "lock-free"
		if c.lockBased {
			mode = "lock-based"
		}
		fmt.Fprintf(&b, "%-7s %-11s %6d %6d %6d %8d %6d\n",
			c.sim, mode, c.seed, o.jobs, o.completed, o.retries, len(o.report.Violations))
		expected += len(o.report.Violations) - o.report.Unexpected()
		if !o.report.OK() {
			ok = false
		}
		for _, v := range o.report.Violations {
			if !v.Expected {
				fmt.Fprintf(&b, "  VIOLATION %s\n", v)
			}
		}
	}
	switch {
	case ok && expected == 0:
		b.WriteString("all Theorem 2/3 bounds hold\n")
	case ok:
		fmt.Fprintf(&b, "all Theorem 2/3 bounds hold (%d expected violation(s) from fault injection)\n", expected)
	default:
		b.WriteString("BOUND VIOLATIONS FOUND\n")
	}
	return b.String(), ok, nil
}
