package experiment

import (
	"repro/internal/metrics"
	"repro/internal/multi"
	"repro/internal/rtime"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/uam"
)

// MultiCPU extends the evaluation toward the paper's §7 future work:
// partitioned multiprocessor RUA. A task set with total load ≈ 2.2 —
// hopeless on one processor — is spread over 1, 2, 4, and 8 CPUs by the
// object-aware partitioner; aggregate AUR/CMR must climb toward 1 as
// per-CPU load falls below the uniprocessor capacity, and every
// partition individually still satisfies Theorem 2 (checked by the
// engine property suite; here we report the aggregate shape).
func MultiCPU(p Profile) ([]*Table, error) {
	t := &Table{
		ID:      "multicpu",
		Title:   "partitioned multiprocessor RUA: AUR/CMR vs CPU count (total load ≈ 2.2)",
		Note:    "16 tasks over 8 objects, lock-free RUA per CPU, object-aware partitioning",
		Columns: []string{"cpus", "AUR", "CMR", "retries"},
	}
	cpuCounts := []int{1, 2, 4, 8}
	if p.Name == Quick.Name {
		cpuCounts = []int{1, 4}
	}
	for _, cpus := range cpuCounts {
		var aurs, cmrs []float64
		var retries int64
		for _, seed := range p.Seeds {
			w := WorkloadSpec{
				NumTasks: 16, NumObjects: 8, AccessesPerJob: 2,
				MeanExec: 500 * rtime.Microsecond, TargetAL: 2.2,
				Class: StepTUFs, MaxArrivals: 2,
			}
			tasks, err := w.Build()
			if err != nil {
				return nil, err
			}
			// Re-cluster sharing into pairs (task 2k and 2k+1 share private
			// object k): the default workload's object ring would fuse all
			// tasks into ONE component, which the object-aware partitioner
			// must keep whole — partitioning can only help when the sharing
			// graph actually decomposes.
			for i, tk := range tasks {
				obj := i / 2
				for si, seg := range tk.Segments {
					if seg.Kind == task.Access {
						tk.Segments[si].Object = obj
					}
				}
			}
			res, err := multi.Run(multi.Config{
				CPUs: cpus, Tasks: tasks, Mode: sim.LockFree,
				R: DefaultR, S: DefaultS, OpCost: DefaultOpCost,
				Horizon:     horizonFor(tasks, p),
				ArrivalKind: uam.KindJittered, Seed: seed, ConservativeRetry: true,
			})
			if err != nil {
				return nil, err
			}
			aurs = append(aurs, res.Stats.AUR)
			cmrs = append(cmrs, res.Stats.CMR)
			retries += res.Stats.Retries
		}
		t.AddRow(cpus,
			metrics.Summarize(aurs).String(),
			metrics.Summarize(cmrs).String(),
			retries)
	}
	return []*Table{t}, nil
}
