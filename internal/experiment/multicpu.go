package experiment

import (
	"repro/internal/metrics"
	"repro/internal/multi"
	"repro/internal/rtime"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/uam"
)

// MultiCPU extends the evaluation toward the paper's §7 future work:
// partitioned multiprocessor RUA. A task set with total load ≈ 2.2 —
// hopeless on one processor — is spread over 1, 2, 4, and 8 CPUs by the
// object-aware partitioner; aggregate AUR/CMR must climb toward 1 as
// per-CPU load falls below the uniprocessor capacity, and every
// partition individually still satisfies Theorem 2 (checked by the
// engine property suite; here we report the aggregate shape).
func MultiCPU(p Profile) ([]*Table, error) {
	t := &Table{
		ID:      "multicpu",
		Title:   "partitioned multiprocessor RUA: AUR/CMR vs CPU count (total load ≈ 2.2)",
		Note:    "16 tasks over 8 objects, lock-free RUA per CPU, object-aware partitioning",
		Columns: []string{"cpus", "AUR", "CMR", "retries"},
	}
	cpuCounts := []int{1, 2, 4, 8}
	if p.Name == Quick.Name {
		cpuCounts = []int{1, 4}
	}
	w := WorkloadSpec{
		NumTasks: MultiTasks, NumObjects: 8, AccessesPerJob: 2,
		MeanExec: 500 * rtime.Microsecond, TargetAL: 2.2,
		Class: StepTUFs, MaxArrivals: 2,
	}
	template, err := w.Build()
	if err != nil {
		return nil, err
	}
	// Re-cluster sharing into pairs (task 2k and 2k+1 share private
	// object k): the default workload's object ring would fuse all
	// tasks into ONE component, which the object-aware partitioner
	// must keep whole — partitioning can only help when the sharing
	// graph actually decomposes.
	for i, tk := range template {
		obj := i / 2
		for si, seg := range tk.Segments {
			if seg.Kind == task.Access {
				tk.Segments[si].Object = obj
			}
		}
	}
	horizon := horizonFor(template, p)
	type cell struct {
		aur, cmr float64
		retries  int64
	}
	nSeeds := len(p.Seeds)
	cells, err := runner.Map(p.Jobs, len(cpuCounts)*nSeeds, func(i int) (cell, error) {
		res, err := multi.Run(multi.Config{
			CPUs: cpuCounts[i/nSeeds], Tasks: task.CloneAll(template), Mode: sim.LockFree,
			R: DefaultR, S: DefaultS, OpCost: DefaultOpCost,
			Horizon:     horizon,
			ArrivalKind: uam.KindJittered, Seed: p.Seeds[i%nSeeds], ConservativeRetry: true,
		})
		if err != nil {
			return cell{}, err
		}
		return cell{aur: res.Stats.AUR, cmr: res.Stats.CMR, retries: res.Stats.Retries}, nil
	})
	if err != nil {
		return nil, err
	}
	for ci, cpus := range cpuCounts {
		var aurs, cmrs []float64
		var retries int64
		for si := 0; si < nSeeds; si++ {
			c := cells[ci*nSeeds+si]
			aurs = append(aurs, c.aur)
			cmrs = append(cmrs, c.cmr)
			retries += c.retries
		}
		t.AddRow(cpus,
			metrics.Summarize(aurs).String(),
			metrics.Summarize(cmrs).String(),
			retries)
	}
	return []*Table{t}, nil
}
