package experiment

import (
	"repro/internal/gsim"
	"repro/internal/metrics"
	"repro/internal/multi"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/uam"
)

// GlobalCPU contrasts the two §7 multiprocessor disciplines on the same
// overloaded, object-sharing workload: GLOBAL scheduling (one ready
// queue, migration, true parallel conflicts with commit-time validation
// — internal/gsim) versus PARTITIONED (object-aware static assignment,
// each partition a paper-model uniprocessor — internal/multi). Two
// shapes matter: aggregate AUR climbs with CPUs either way, and global
// scheduling's retries GROW with CPUs because parallel commits conflict
// without any preemption — the regime where the paper's uniprocessor
// Theorem 2 no longer applies, which is exactly why it is future work.
func GlobalCPU(p Profile) ([]*Table, error) {
	t := &Table{
		ID:      "globalcpu",
		Title:   "global vs partitioned multiprocessor RUA (total load ≈ 2.2)",
		Note:    "16 tasks, pairs sharing an object; lock-free RUA; retries are totals over the run",
		Columns: []string{"cpus", "AUR_global", "AUR_partitioned", "retries_global", "retries_partitioned"},
	}
	cpuCounts := []int{1, 2, 4, 8}
	if p.Name == Quick.Name {
		cpuCounts = []int{1, 4}
	}
	mkTasks := func() ([]*task.Task, error) {
		w := WorkloadSpec{
			NumTasks: 16, NumObjects: 8, AccessesPerJob: 2,
			MeanExec: 500 * rtime.Microsecond, TargetAL: 2.2,
			Class: StepTUFs, MaxArrivals: 2,
		}
		tasks, err := w.Build()
		if err != nil {
			return nil, err
		}
		for i, tk := range tasks {
			obj := i / 2
			for si, seg := range tk.Segments {
				if seg.Kind == task.Access {
					tk.Segments[si].Object = obj
				}
			}
		}
		return tasks, nil
	}
	for _, cpus := range cpuCounts {
		var gAUR, pAUR []float64
		var gRetries, pRetries int64
		for _, seed := range p.Seeds {
			tasks, err := mkTasks()
			if err != nil {
				return nil, err
			}
			horizon := horizonFor(tasks, p)
			gRes, err := gsim.Run(gsim.Config{
				CPUs: cpus, Tasks: tasks, Scheduler: rua.NewLockFree(),
				Mode: sim.LockFree, R: DefaultR, S: DefaultS, OpCost: 0,
				Horizon: horizon, ArrivalKind: uam.KindJittered, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			gStats := metrics.Analyze(gRes)
			gAUR = append(gAUR, gStats.AUR)
			gRetries += gRes.Retries

			tasks2, err := mkTasks()
			if err != nil {
				return nil, err
			}
			pRes, err := multi.Run(multi.Config{
				CPUs: cpus, Tasks: tasks2, Mode: sim.LockFree,
				R: DefaultR, S: DefaultS, OpCost: 0,
				Horizon: horizon, ArrivalKind: uam.KindJittered, Seed: seed,
				ConservativeRetry: false,
			})
			if err != nil {
				return nil, err
			}
			pAUR = append(pAUR, pRes.Stats.AUR)
			pRetries += pRes.Stats.Retries
		}
		t.AddRow(cpus,
			metrics.Summarize(gAUR).String(),
			metrics.Summarize(pAUR).String(),
			gRetries, pRetries)
	}
	return []*Table{t}, nil
}
