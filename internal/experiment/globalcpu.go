package experiment

import (
	"repro/internal/gsim"
	"repro/internal/metrics"
	"repro/internal/multi"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/uam"
)

// GlobalCPU contrasts the two §7 multiprocessor disciplines on the same
// overloaded, object-sharing workload: GLOBAL scheduling (one ready
// queue, migration, true parallel conflicts with commit-time validation
// — internal/gsim) versus PARTITIONED (object-aware static assignment,
// each partition a paper-model uniprocessor — internal/multi). Two
// shapes matter: aggregate AUR climbs with CPUs either way, and global
// scheduling's retries GROW with CPUs because parallel commits conflict
// without any preemption — the regime where the paper's uniprocessor
// Theorem 2 no longer applies, which is exactly why it is future work.
func GlobalCPU(p Profile) ([]*Table, error) {
	t := &Table{
		ID:      "globalcpu",
		Title:   "global vs partitioned multiprocessor RUA (total load ≈ 2.2)",
		Note:    "16 tasks, pairs sharing an object; lock-free RUA; retries are totals over the run",
		Columns: []string{"cpus", "AUR_global", "AUR_partitioned", "retries_global", "retries_partitioned"},
	}
	cpuCounts := []int{1, 2, 4, 8}
	if p.Name == Quick.Name {
		cpuCounts = []int{1, 4}
	}
	w := WorkloadSpec{
		NumTasks: MultiTasks, NumObjects: 8, AccessesPerJob: 2,
		MeanExec: 500 * rtime.Microsecond, TargetAL: 2.2,
		Class: StepTUFs, MaxArrivals: 2,
	}
	template, err := w.Build()
	if err != nil {
		return nil, err
	}
	for i, tk := range template {
		obj := i / 2
		for si, seg := range tk.Segments {
			if seg.Kind == task.Access {
				tk.Segments[si].Object = obj
			}
		}
	}
	horizon := horizonFor(template, p)
	type cell struct {
		gAUR, pAUR         float64
		gRetries, pRetries int64
	}
	nSeeds := len(p.Seeds)
	cells, err := runner.Map(p.Jobs, len(cpuCounts)*nSeeds, func(i int) (cell, error) {
		cpus := cpuCounts[i/nSeeds]
		seed := p.Seeds[i%nSeeds]
		gRes, err := gsim.Run(gsim.Config{
			CPUs: cpus, Tasks: task.CloneAll(template), Scheduler: rua.NewLockFree(),
			Mode: sim.LockFree, R: DefaultR, S: DefaultS, OpCost: 0,
			Horizon: horizon, ArrivalKind: uam.KindJittered, Seed: seed,
		})
		if err != nil {
			return cell{}, err
		}
		gStats := metrics.Analyze(gRes)
		pRes, err := multi.Run(multi.Config{
			CPUs: cpus, Tasks: task.CloneAll(template), Mode: sim.LockFree,
			R: DefaultR, S: DefaultS, OpCost: 0,
			Horizon: horizon, ArrivalKind: uam.KindJittered, Seed: seed,
			ConservativeRetry: false,
		})
		if err != nil {
			return cell{}, err
		}
		return cell{
			gAUR: gStats.AUR, pAUR: pRes.Stats.AUR,
			gRetries: gRes.Retries, pRetries: pRes.Stats.Retries,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for ci, cpus := range cpuCounts {
		var gAUR, pAUR []float64
		var gRetries, pRetries int64
		for si := 0; si < nSeeds; si++ {
			c := cells[ci*nSeeds+si]
			gAUR = append(gAUR, c.gAUR)
			pAUR = append(pAUR, c.pAUR)
			gRetries += c.gRetries
			pRetries += c.pRetries
		}
		t.AddRow(cpus,
			metrics.Summarize(gAUR).String(),
			metrics.Summarize(pAUR).String(),
			gRetries, pRetries)
	}
	return []*Table{t}, nil
}
