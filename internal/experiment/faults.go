package experiment

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/uam"
)

// FaultSweep sweeps the heavy fault plan's intensity from 0 (fault-free)
// to 1 and contrasts lock-free RUA with and without admission-control
// shedding. It is the overload/robustness experiment the paper's §6 does
// not run but its §3.5 abort-handler model invites: as injected arrival
// bursts, execution overruns, phantom CAS failures, and scheduler stalls
// intensify, accrued utility should degrade gracefully — and the
// shedding variant should convert doomed-job thrash into early aborts
// without ever dropping a feasible job.
//
// Determinism: the plan seed is fixed and injection decisions are pure
// hashes of (seed, task, indices), so every cell is a pure function of
// its grid slot; cells fan out on runner.Map and merge by index, making
// the rendered table byte-identical for any Jobs value.
func FaultSweep(p Profile) ([]*Table, error) {
	t := &Table{
		ID:    "faults",
		Title: "fault-injection sweep: lock-free RUA, plain vs admission-control shedding",
		Note: fmt.Sprintf("heavy plan scaled by intensity; r=%v s=%v; mean ± 95%% CI over %d seeds",
			DefaultR, DefaultS, len(p.Seeds)),
		Columns: []string{"intensity", "AUR_plain", "AUR_shed", "CMR_plain", "CMR_shed",
			"inj_retries", "overruns", "stalls", "sheds"},
	}
	intensities := []float64{0, 0.25, 0.5, 0.75, 1.0}
	if p.Name == Quick.Name {
		intensities = []float64{0, 0.5, 1.0}
	}
	w := WorkloadSpec{
		NumTasks: PaperTasks, NumObjects: 5, AccessesPerJob: 4,
		MeanExec: 500 * rtime.Microsecond, TargetAL: 1.0,
		Class: StepTUFs, MaxArrivals: 2,
	}
	template, err := w.Build()
	if err != nil {
		return nil, err
	}
	horizon := horizonFor(template, p)

	base := fault.Heavy()
	base.Seed = 1

	// Grid: intensity × seed × {plain, shed}; index-addressed results.
	type cell struct {
		stats      metrics.RunStats
		injRetries int64
		overruns   int64
		stalls     int64
		sheds      int64
	}
	nSeeds := len(p.Seeds)
	cells, err := runner.Map(p.Jobs, len(intensities)*nSeeds*2, func(i int) (cell, error) {
		ii := i / (2 * nSeeds)
		seed := p.Seeds[(i/2)%nSeeds]
		shed := i%2 == 1
		plan := base.Scale(intensities[ii])
		s := rua.NewLockFree()
		if shed {
			s = s.WithDegradation()
		}
		res, err := sim.Run(sim.Config{
			Tasks: task.CloneAll(template), Scheduler: s, Mode: sim.LockFree,
			R: DefaultR, S: DefaultS, OpCost: DefaultOpCost,
			Horizon: horizon, ArrivalKind: uam.KindJittered, Seed: seed,
			ConservativeRetry: true, Fault: plan,
		})
		if err != nil {
			return cell{}, err
		}
		return cell{
			stats:      metrics.Analyze(res),
			injRetries: res.FaultRetries,
			overruns:   res.FaultOverruns,
			stalls:     res.FaultStalls,
			sheds:      res.SchedAborts,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for ii, intensity := range intensities {
		var plain, shed []metrics.RunStats
		var injRetries, overruns, stalls, sheds int64
		for si := 0; si < nSeeds; si++ {
			idx := (ii*nSeeds + si) * 2
			plain = append(plain, cells[idx].stats)
			shed = append(shed, cells[idx+1].stats)
			for _, c := range []cell{cells[idx], cells[idx+1]} {
				injRetries += c.injRetries
				overruns += c.overruns
				stalls += c.stalls
			}
			sheds += cells[idx+1].sheds
		}
		t.AddRow(intensity,
			means(plain, func(s metrics.RunStats) float64 { return s.AUR }).String(),
			means(shed, func(s metrics.RunStats) float64 { return s.AUR }).String(),
			means(plain, func(s metrics.RunStats) float64 { return s.CMR }).String(),
			means(shed, func(s metrics.RunStats) float64 { return s.CMR }).String(),
			injRetries, overruns, stalls, sheds,
		)
	}
	return []*Table{t}, nil
}
