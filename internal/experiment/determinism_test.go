package experiment

import (
	"strings"
	"testing"
)

// TestParallelDeterminism is the tentpole guarantee of the parallel
// experiment engine: for every registered experiment the rendered tables
// are byte-identical whether the sweep runs on one worker or many. Runs
// are pure functions of their sim.Config and results merge by index, so
// worker count and goroutine interleaving must be unobservable.
func TestParallelDeterminism(t *testing.T) {
	render := func(jobs int, id string) (string, string) {
		p := Quick
		p.Jobs = jobs
		tables, err := Registry[id](p)
		var sb strings.Builder
		for _, tb := range tables {
			sb.WriteString(tb.Render())
			sb.WriteByte('\n')
		}
		errText := ""
		if err != nil {
			errText = err.Error()
		}
		return sb.String(), errText
	}
	for _, id := range Names() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			seq, seqErr := render(1, id)
			par, parErr := render(8, id)
			if seqErr != parErr {
				t.Fatalf("error mismatch: jobs=1 %q, jobs=8 %q", seqErr, parErr)
			}
			if seq != par {
				t.Fatalf("rendered tables differ between jobs=1 and jobs=8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", seq, par)
			}
		})
	}
}
