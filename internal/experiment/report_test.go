package experiment

import (
	"bytes"
	"testing"
)

// testReportProfile is Quick with two seeds so cross-seed merging is
// actually exercised.
func testReportProfile(jobs int) Profile {
	p := Quick
	p.Seeds = []int64{1, 2}
	p.Jobs = jobs
	return p
}

// TestBuildReport is the acceptance check: the observed retry histogram
// of every lock-free uni/multi run stays under its Theorem 2 bound, the
// bound is attached to the retry distribution, and sections for every
// simulator × mode exist.
func TestBuildReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full trace grid")
	}
	rep, err := BuildReport(testReportProfile(0), []string{"costs"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != len(reportCombos) {
		t.Fatalf("runs = %d, want %d", len(rep.Runs), len(reportCombos))
	}
	for i := range rep.Runs {
		run := &rep.Runs[i]
		if run.Jobs == 0 || run.Completed == 0 {
			t.Fatalf("%s: no jobs traced (jobs=%d completed=%d)", run.Name, run.Jobs, run.Completed)
		}
		if len(run.Seeds) != 2 {
			t.Fatalf("%s: seeds = %v", run.Name, run.Seeds)
		}
		if run.Series == nil || len(run.Series.Points) == 0 {
			t.Fatalf("%s: no series", run.Name)
		}
		retries := run.Dists[0]
		if retries.Name != "retries" {
			t.Fatalf("%s: first dist = %q", run.Name, retries.Name)
		}
		switch {
		case run.Sim == TraceSimGlobal:
			if run.Check != nil || retries.Bound != -1 {
				t.Fatalf("%s: global runs must carry no Theorem 2 bound", run.Name)
			}
		case run.Mode == "lock-based":
			if retries.Bound != -1 {
				t.Fatalf("%s: lock-based retry bound = %d, want none", run.Name, retries.Bound)
			}
			if run.Check == nil {
				t.Fatalf("%s: missing bound check", run.Name)
			}
		default: // uni/multi lock-free: the paper's Theorem 2 claim
			if retries.Bound < 0 {
				t.Fatalf("%s: missing Theorem 2 bound", run.Name)
			}
			if max := retries.Hist.Max(); max > retries.Bound {
				t.Fatalf("%s: observed max retries %d exceeds Theorem 2 bound %d", run.Name, max, retries.Bound)
			}
			if len(run.Violations()) != 0 {
				t.Fatalf("%s: violations %v", run.Name, run.Violations())
			}
		}
	}
	if len(rep.Figs) != 1 || rep.Figs[0].ID != "costs" {
		t.Fatalf("figs = %+v", rep.Figs)
	}
}

// TestBuildReportJobsInvariant: the rendered artifacts are byte-equal
// for serial and parallel execution.
func TestBuildReportJobsInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the trace grid twice")
	}
	render := func(jobs int) (string, string) {
		rep, err := BuildReport(testReportProfile(jobs), nil)
		if err != nil {
			t.Fatal(err)
		}
		var txt, html bytes.Buffer
		if err := rep.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteHTML(&html); err != nil {
			t.Fatal(err)
		}
		return txt.String(), html.String()
	}
	txt1, html1 := render(1)
	txt4, html4 := render(4)
	if txt1 != txt4 {
		t.Fatalf("-metrics digest differs between -jobs 1 and 4:\n%s\n---\n%s", txt1, txt4)
	}
	if html1 != html4 {
		t.Fatal("HTML report differs between -jobs 1 and 4")
	}
}
