package experiment

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/stoch"
)

func TestStochSweepShape(t *testing.T) {
	tables, err := StochSweep(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	tb := tables[0]
	if len(tb.Rows) != 9 { // 3 dists × 3 modes
		t.Fatalf("rows = %d, want 9", len(tb.Rows))
	}
	col := func(name string) int {
		for i, c := range tb.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %q missing", name)
		return -1
	}
	relCol, failCol, distCol, modeCol := col("pred_rel_err"), col("fail_rate"), col("dist"), col("mode")
	p999Col := col("att_p999")
	for _, row := range tb.Rows {
		// Relative error is reported per scenario as "mean ± ci".
		rel := row[relCol]
		if !strings.Contains(rel, "±") && rel == "" {
			t.Fatalf("row %v: empty rel_err", row)
		}
		if row[modeCol] == "waitfree" {
			// Cross-task conflicts are impossible; only the rare
			// same-task successor conflict survives (see stochModes).
			if rate, _ := strconv.ParseFloat(row[failCol], 64); rate > 0.01 {
				t.Fatalf("wait-free stub fail_rate=%s, want ≈ 0", row[failCol])
			}
			if p999, _ := strconv.ParseInt(row[p999Col], 10, 64); p999 > 2 {
				t.Fatalf("wait-free attempt p999 = %d, want ≤ 2", p999)
			}
		}
		if row[modeCol] == "lockbased" && row[failCol] != "0.0000" {
			t.Fatalf("lock-based rows cannot CAS-fail: fail_rate=%s", row[failCol])
		}
	}
	// The stochastic rows must actually preempt more than the
	// deterministic baseline within each mode.
	pre := map[string]int64{}
	preCol := col("preempts")
	for _, row := range tb.Rows {
		v, err := strconv.ParseInt(row[preCol], 10, 64)
		if err != nil {
			t.Fatalf("preempts cell %q: %v", row[preCol], err)
		}
		pre[row[distCol]+"/"+row[modeCol]] = v
	}
	for _, mode := range stochModes {
		if pre["uni/"+mode] <= pre["off/"+mode] && pre["geo/"+mode] <= pre["off/"+mode] {
			t.Fatalf("stochastic plans added no preemptions for %s: off=%d uni=%d geo=%d",
				mode, pre["off/"+mode], pre["uni/"+mode], pre["geo/"+mode])
		}
	}
}

// TestStochTraceDeterminism is the satellite-3 property at the
// experiment layer: a seeded stochastic profile yields byte-identical
// event streams on repeated runs for every engine, and a nil plan is
// bit-identical to a zero plan (the stochastic field is free until
// armed).
func TestStochTraceDeterminism(t *testing.T) {
	plan := stoch.Geo()
	plan.Seed = 7
	withPlan := Quick
	withPlan.Stoch = plan
	zero := Quick
	zero.Stoch = &stoch.Plan{}
	for _, simName := range []string{TraceSimUni, TraceSimMulti, TraceSimGlobal} {
		a, err := RunTrace(withPlan, simName, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunTrace(withPlan, simName, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Fatalf("%s: stochastic trace not reproducible", simName)
		}
		base, err := RunTrace(Quick, simName, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		z, err := RunTrace(zero, simName, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Events, z.Events) {
			t.Fatalf("%s: zero plan diverged from plan-free trace", simName)
		}
		if reflect.DeepEqual(base.Events, a.Events) {
			t.Fatalf("%s: active plan left the trace unchanged", simName)
		}
	}
}
