package experiment

import (
	"fmt"

	"repro/internal/metrics/hist"
	"repro/internal/metrics/ops"
	"repro/internal/metrics/series"
	"repro/internal/report"
	"repro/internal/rtime"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/trace/check"
	"repro/internal/trace/span"
)

// reportCombos is the fixed run grid of BuildReport: every simulator in
// both synchronization modes, in the order the report's sections appear.
var reportCombos = []struct {
	sim       string
	lockBased bool
}{
	{TraceSimUni, false},
	{TraceSimUni, true},
	{TraceSimMulti, false},
	{TraceSimMulti, true},
	{TraceSimGlobal, false},
	{TraceSimGlobal, true},
}

// Histogram shapes shared by every run so cross-seed merges line up.
func newRetryHist() *hist.Hist { return hist.Exp2(1 << 12) }

func newSojournHist() *hist.Hist { return hist.Exp2(1 << 26) }

// BuildReport runs the canonical trace workload across every simulator
// × mode × profile seed, folds each combo's traces into distribution
// histograms, a virtual-time series (first seed), and the Theorem 2/3
// bound check, then attaches the requested figure tables. Cells fan out
// on runner.Map and merge by index, so the result — and everything
// rendered from it — is identical for any p.Jobs value.
func BuildReport(p Profile, figIDs []string) (*report.Report, error) {
	type cell struct {
		combo int
		seed  int64
		first bool // first seed of its combo: keeps events for the series
	}
	var cells []cell
	for ci := range reportCombos {
		for si, seed := range p.Seeds {
			cells = append(cells, cell{combo: ci, seed: seed, first: si == 0})
		}
	}
	type outcome struct {
		spans   []span.JobSpan
		horizon rtime.Time
		events  []trace.Event // first seed only
		check   *check.Report
		ops     *ops.Set // per-operation retry telemetry, every seed
	}
	outs, err := runner.Map(p.Jobs, len(cells), func(i int) (outcome, error) {
		c := cells[i]
		combo := reportCombos[c.combo]
		tr, err := RunTrace(p, combo.sim, combo.lockBased, c.seed)
		if err != nil {
			return outcome{}, err
		}
		spans, err := tr.Spans()
		if err != nil {
			return outcome{}, err
		}
		o := outcome{spans: spans, horizon: tr.Horizon, ops: ops.FromEvents(tr.Events)}
		if c.first {
			o.events = tr.Events
		}
		// The global engine's commit-time validation retries fall outside
		// Theorem 2's model (see internal/gsim), so its runs carry no
		// bound check; uni and multi check every seed's spans.
		if combo.sim != TraceSimGlobal {
			rep, err := check.Check(spans, tr.Tasks, boundCheckConfig(p, combo.lockBased, tr.Tasks))
			if err != nil {
				return outcome{}, err
			}
			o.check = rep
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}

	rep := &report.Report{
		Title:    "rtsim canonical-workload report",
		Profile:  p.Name,
		Workload: "thm2-trace",
	}
	for ci, combo := range reportCombos {
		mode := "lockfree"
		modeLabel := "lock-free"
		if combo.lockBased {
			mode = "lockbased"
			modeLabel = "lock-based"
		}
		run := report.Run{
			Name: combo.sim + "-" + mode,
			Sim:  combo.sim,
			Mode: modeLabel,
		}
		retries, sojourn := newRetryHist(), newSojournHist()
		var merged *check.Report
		opSet := &ops.Set{}
		for i, c := range cells {
			if c.combo != ci {
				continue
			}
			o := outs[i]
			run.Seeds = append(run.Seeds, c.seed)
			for k := range o.spans {
				s := &o.spans[k]
				retries.Add(s.Retries)
				switch s.Outcome {
				case span.Completed:
					run.Completed++
					sojourn.Add(s.Sojourn().Micros())
				case span.Aborted:
					run.Aborted++
				}
				if s.Shed {
					run.Shed++
				}
				run.Jobs++
			}
			merged = mergeChecks(merged, o.check)
			if o.ops != nil {
				if err := opSet.Merge(o.ops); err != nil {
					return nil, fmt.Errorf("experiment: merge %s op telemetry: %w", run.Name, err)
				}
			}
			if c.first {
				cpus := 1
				if combo.sim != TraceSimUni {
					cpus = TraceCPUs
				}
				sr, err := series.FromEvents(o.events, o.horizon, series.Config{
					Window: series.WindowFor(o.horizon, 0), CPUs: cpus,
				})
				if err != nil {
					return nil, fmt.Errorf("experiment: fold %s series: %w", run.Name, err)
				}
				run.Series = sr
			}
		}
		finishRun(&run, combo.lockBased, merged, opSet, retries, sojourn)
		rep.Runs = append(rep.Runs, run)
	}
	if err := attachFigs(rep, p, figIDs); err != nil {
		return nil, err
	}
	return rep, nil
}

// opDists renders a merged ops.Set as the report's retry-tail panel:
// the cross-object total first, then per object ascending. Empty sets
// (a run that never committed) render no panel.
func opDists(s *ops.Set) []report.OpDist {
	if s == nil || len(s.Dists) == 0 {
		return nil
	}
	out := make([]report.OpDist, 0, len(s.Dists)+1)
	tot := s.Total()
	out = append(out, report.OpDist{
		Name: "all", Title: "all objects",
		Ops: tot.Ops, Attempts: tot.Attempts, Failures: tot.Failures,
	})
	for _, d := range s.Dists {
		out = append(out, report.OpDist{
			Name:  fmt.Sprintf("obj%d", d.Object),
			Title: fmt.Sprintf("object %d", d.Object),
			Ops:   d.Ops, Attempts: d.Attempts, Failures: d.Failures,
		})
	}
	return out
}

// mergeChecks folds per-seed bound checks of one combo into a single
// report: per-task maxima of observed extremes (bounds are seed-
// independent), violations concatenated in seed order.
func mergeChecks(into, from *check.Report) *check.Report {
	if from == nil {
		return into
	}
	if into == nil {
		cp := *from
		cp.Tasks = append([]check.TaskReport(nil), from.Tasks...)
		cp.Violations = append([]check.Violation(nil), from.Violations...)
		return &cp
	}
	for i := range from.Tasks {
		ft := from.Tasks[i]
		if i >= len(into.Tasks) || into.Tasks[i].Task != ft.Task {
			into.Tasks = append(into.Tasks, ft)
			continue
		}
		it := &into.Tasks[i]
		it.Jobs += ft.Jobs
		it.Completed += ft.Completed
		if ft.MaxRetries > it.MaxRetries {
			it.MaxRetries = ft.MaxRetries
		}
		if ft.MaxSojourn > it.MaxSojourn {
			it.MaxSojourn = ft.MaxSojourn
		}
	}
	into.Violations = append(into.Violations, from.Violations...)
	return into
}
