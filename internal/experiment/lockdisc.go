package experiment

import (
	"repro/internal/metrics"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/uam"
)

// LockDisciplines lines up the synchronization disciplines of §1.1 on
// one sharing-heavy workload: naive lock-based EDF (unbounded priority
// inversion), EDF with priority inheritance (inversion bounded, but
// urgency-only), lock-based RUA (dependency-chain UA scheduling), and
// lock-free RUA (the paper's answer). Under load the UA schedulers
// dominate decisively; between the two deadline schedulers the access
// costs saturate the processor so thoroughly that bounding inversion
// (PIP) cannot rescue either — neither sheds load, which is the paper's
// §1 point about deadline scheduling during overloads.
func LockDisciplines(p Profile) ([]*Table, error) {
	t := &Table{
		ID:      "lockdisc",
		Title:   "synchronization disciplines under sharing-heavy load",
		Note:    "10 tasks, 6 accesses over 2 objects; AUR mean ± 95% CI",
		Columns: []string{"AL", "AUR_edf_locks", "AUR_pip_locks", "AUR_rua_locks", "AUR_rua_lockfree"},
	}
	type variant struct {
		sched func() sched.Scheduler
		mode  sim.Mode
	}
	variants := []variant{
		{func() sched.Scheduler { return sched.EDF{} }, sim.LockBased},
		{func() sched.Scheduler { return sched.PIP{} }, sim.LockBased},
		{func() sched.Scheduler { return rua.NewLockBased() }, sim.LockBased},
		{func() sched.Scheduler { return rua.NewLockFree() }, sim.LockFree},
	}
	loads := []float64{0.3, 0.6, 0.9}
	if p.Name == Quick.Name {
		loads = []float64{0.6}
	}
	templates := make([][]*task.Task, len(loads))
	horizons := make([]rtime.Time, len(loads))
	for li, al := range loads {
		w := WorkloadSpec{
			NumTasks: PaperTasks, NumObjects: 2, AccessesPerJob: 6,
			MeanExec: 500 * rtime.Microsecond, TargetAL: al,
			Class: StepTUFs, MaxArrivals: 2,
		}
		tasks, err := w.Build()
		if err != nil {
			return nil, err
		}
		templates[li] = tasks
		horizons[li] = horizonFor(tasks, p)
	}
	nSeeds, nV := len(p.Seeds), len(variants)
	cells, err := runner.Map(p.Jobs, len(loads)*nSeeds*nV, func(i int) (float64, error) {
		li := i / (nSeeds * nV)
		seed := p.Seeds[(i/nV)%nSeeds]
		v := variants[i%nV]
		res, err := sim.Run(sim.Config{
			Tasks: task.CloneAll(templates[li]), Scheduler: v.sched(), Mode: v.mode,
			R: DefaultR, S: DefaultS, OpCost: DefaultOpCost,
			Horizon:     horizons[li],
			ArrivalKind: uam.KindJittered, Seed: seed, ConservativeRetry: true,
		})
		if err != nil {
			return 0, err
		}
		return metrics.Analyze(res).AUR, nil
	})
	if err != nil {
		return nil, err
	}
	for li, al := range loads {
		aurs := make([][]float64, nV)
		for si := 0; si < nSeeds; si++ {
			for vi := 0; vi < nV; vi++ {
				aurs[vi] = append(aurs[vi], cells[(li*nSeeds+si)*nV+vi])
			}
		}
		t.AddRow(al,
			metrics.Summarize(aurs[0]).String(),
			metrics.Summarize(aurs[1]).String(),
			metrics.Summarize(aurs[2]).String(),
			metrics.Summarize(aurs[3]).String(),
		)
	}
	return []*Table{t}, nil
}
