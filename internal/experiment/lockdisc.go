package experiment

import (
	"repro/internal/metrics"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/uam"
)

// LockDisciplines lines up the synchronization disciplines of §1.1 on
// one sharing-heavy workload: naive lock-based EDF (unbounded priority
// inversion), EDF with priority inheritance (inversion bounded, but
// urgency-only), lock-based RUA (dependency-chain UA scheduling), and
// lock-free RUA (the paper's answer). Under load the UA schedulers
// dominate decisively; between the two deadline schedulers the access
// costs saturate the processor so thoroughly that bounding inversion
// (PIP) cannot rescue either — neither sheds load, which is the paper's
// §1 point about deadline scheduling during overloads.
func LockDisciplines(p Profile) ([]*Table, error) {
	t := &Table{
		ID:      "lockdisc",
		Title:   "synchronization disciplines under sharing-heavy load",
		Note:    "10 tasks, 6 accesses over 2 objects; AUR mean ± 95% CI",
		Columns: []string{"AL", "AUR_edf_locks", "AUR_pip_locks", "AUR_rua_locks", "AUR_rua_lockfree"},
	}
	type variant struct {
		sched func() sched.Scheduler
		mode  sim.Mode
	}
	variants := []variant{
		{func() sched.Scheduler { return sched.EDF{} }, sim.LockBased},
		{func() sched.Scheduler { return sched.PIP{} }, sim.LockBased},
		{func() sched.Scheduler { return rua.NewLockBased() }, sim.LockBased},
		{func() sched.Scheduler { return rua.NewLockFree() }, sim.LockFree},
	}
	loads := []float64{0.3, 0.6, 0.9}
	if p.Name == Quick.Name {
		loads = []float64{0.6}
	}
	for _, al := range loads {
		aurs := make([][]float64, len(variants))
		for _, seed := range p.Seeds {
			for vi, v := range variants {
				w := WorkloadSpec{
					NumTasks: 10, NumObjects: 2, AccessesPerJob: 6,
					MeanExec: 500 * rtime.Microsecond, TargetAL: al,
					Class: StepTUFs, MaxArrivals: 2,
				}
				tasks, err := w.Build()
				if err != nil {
					return nil, err
				}
				res, err := sim.Run(sim.Config{
					Tasks: tasks, Scheduler: v.sched(), Mode: v.mode,
					R: DefaultR, S: DefaultS, OpCost: DefaultOpCost,
					Horizon:     horizonFor(tasks, p),
					ArrivalKind: uam.KindJittered, Seed: seed, ConservativeRetry: true,
				})
				if err != nil {
					return nil, err
				}
				aurs[vi] = append(aurs[vi], metrics.Analyze(res).AUR)
			}
		}
		t.AddRow(al,
			metrics.Summarize(aurs[0]).String(),
			metrics.Summarize(aurs[1]).String(),
			metrics.Summarize(aurs[2]).String(),
			metrics.Summarize(aurs[3]).String(),
		)
	}
	return []*Table{t}, nil
}
