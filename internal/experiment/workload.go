// Package experiment builds the paper's evaluation workloads and
// regenerates every table and figure of §6 (plus validation experiments
// for Theorems 2–3 and Lemmas 4–5). Each experiment returns text Tables
// whose rows mirror the series the paper plots; cmd/rtsim prints them,
// and EXPERIMENTS.md records paper-vs-measured shapes.
package experiment

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/rtime"
	"repro/internal/task"
	"repro/internal/tuf"
	"repro/internal/uam"
)

// TUFClass selects the paper's two TUF populations (§6.2).
type TUFClass int

// TUF classes.
const (
	// StepTUFs is the homogeneous class: downward steps only.
	StepTUFs TUFClass = iota
	// HeterogeneousTUFs cycles step, parabolic, and linearly-decreasing
	// shapes across the task set.
	HeterogeneousTUFs
)

func (c TUFClass) String() string {
	if c == HeterogeneousTUFs {
		return "heterogeneous"
	}
	return "step"
}

// WorkloadSpec parameterizes the canonical evaluation workload: N tasks
// sharing NumObjects queues "arbitrarily", sized to an approximate load
// AL (§6.1's Σ u_i/C_i), with per-task UAM arrival bands.
type WorkloadSpec struct {
	NumTasks   int
	NumObjects int
	// AccessesPerJob is m_i for every task (the x-axis of Figs 10–13 is
	// driven by raising this together with NumObjects).
	AccessesPerJob int
	// MeanExec is the average per-job compute time u_i (excluding object
	// accesses), the x-axis of Fig 9.
	MeanExec rtime.Duration
	// TargetAL is the approximate load Σ u_i/C_i the set is sized to.
	TargetAL float64
	// Class picks the TUF population.
	Class TUFClass
	// MaxArrivals is the per-window UAM burst bound a_i (≥ 1).
	MaxArrivals int
	// AbortCost is the exception-handler execution time (§3.5).
	AbortCost rtime.Duration
}

// Build materializes the workload. Task i gets compute time spread around
// MeanExec (0.5×…1.5×), critical time C_i = N·u_i/AL so that the set's AL
// matches TargetAL exactly, utility 10·(i+1) (so importance and urgency
// are uncorrelated, as the TUF model intends), and accesses cycling over
// the shared objects starting at an offset — the paper's "accessing 10
// shared queues, arbitrarily".
//
// The UAM window is derived so the band's MEAN arrival rate makes the
// long-run processor utilization equal TargetAL: the jittered generator
// paces at (l+a)/(2W) jobs per tick, so W_i = (l_i+a_i)·C_i/2 with
// l_i = max(0, 2−a_i) keeps rate·u summing to AL while honouring the §2
// constraint C_i ≤ W_i. AL therefore reads as real load, as in Fig 9's
// CML axis.
func (w WorkloadSpec) Build() ([]*task.Task, error) {
	if w.NumTasks <= 0 {
		return nil, fmt.Errorf("experiment: NumTasks %d must be positive", w.NumTasks)
	}
	if w.TargetAL <= 0 {
		return nil, fmt.Errorf("experiment: TargetAL %v must be positive", w.TargetAL)
	}
	if w.MeanExec <= 0 {
		return nil, fmt.Errorf("experiment: MeanExec %v must be positive", w.MeanExec)
	}
	if w.AccessesPerJob > 0 && w.NumObjects <= 0 {
		return nil, fmt.Errorf("experiment: accesses requested with no objects")
	}
	a := w.MaxArrivals
	if a < 1 {
		a = 1
	}
	tasks := make([]*task.Task, w.NumTasks)
	for i := range tasks {
		// Spread compute times deterministically in [0.5, 1.5]·MeanExec.
		frac := 0.5 + float64(i)/float64(maxInt(w.NumTasks-1, 1))
		u := rtime.Duration(float64(w.MeanExec) * frac)
		if u < 1 {
			u = 1
		}
		// Per-task load share AL/N ⇒ C_i = u_i·N/AL.
		c := rtime.Duration(float64(u) * float64(w.NumTasks) / w.TargetAL)
		if c <= u {
			c = u + 1
		}
		util := 10 * float64(i+1)
		var f tuf.TUF
		if w.Class == HeterogeneousTUFs {
			switch i % 3 {
			case 0:
				f = tuf.MustStep(util, c)
			case 1:
				f = tuf.MustParabolic(util, c)
			default:
				f = tuf.MustLinear(util, c)
			}
		} else {
			f = tuf.MustStep(util, c)
		}
		objs := make([]int, maxInt(w.AccessesPerJob, 1))
		for k := range objs {
			objs[k] = (i + k) % maxInt(w.NumObjects, 1)
		}
		l := maxInt(0, 2-a)
		win := rtime.Duration(int64(l+a) * int64(c) / 2)
		if win < c {
			win = c
		}
		tasks[i] = &task.Task{
			ID:        i,
			Name:      fmt.Sprintf("T%d", i),
			TUF:       f,
			Arrival:   uam.Spec{L: l, A: a, W: win},
			Segments:  task.InterleavedSegments(u, w.AccessesPerJob, objs),
			AbortCost: w.AbortCost,
		}
		if err := tasks[i].Validate(); err != nil {
			return nil, err
		}
	}
	return tasks, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Profile scales experiment sizes: Quick for tests, Full for the CLI and
// EXPERIMENTS.md numbers.
type Profile struct {
	Name        string
	HorizonMult int // horizon = mult · max critical time
	Seeds       []int64

	// Jobs bounds the worker pool the experiment sweeps fan out on
	// (runner.Map); zero or negative means one worker per CPU. Every
	// simulation run is a pure function of its sim.Config, and results
	// are merged by index, so rendered tables are byte-identical for any
	// Jobs value — see DESIGN.md "Parallel experiment engine".
	Jobs int

	// Fault, when non-nil and active, is injected into every traced run
	// (RunTrace) and the bound-check suite (CheckBounds): lock-free trace
	// runs get the admission-control RUA variant so sheds appear in the
	// timeline, and bounds are re-checked against the plan's effective
	// (inflated) arrival curves with model-exceeding violations flagged
	// expected. Nil (or a zero plan) leaves every run byte-identical to
	// the fault-free path. See DESIGN.md §5e.
	Fault *fault.Plan
}

// Quick is a small profile for unit tests (one seed, short horizon).
var Quick = Profile{Name: "quick", HorizonMult: 30, Seeds: []int64{1}}

// Full matches the paper's ≥ 5000-arrival scale (long horizon, five
// seeds for the 95 % CI error bars).
var Full = Profile{Name: "full", HorizonMult: 400, Seeds: []int64{1, 2, 3, 4, 5}}

// horizonFor sizes the horizon from the workload's largest critical time.
func horizonFor(tasks []*task.Task, p Profile) rtime.Time {
	var maxC rtime.Duration
	for _, t := range tasks {
		if c := t.CriticalTime(); c > maxC {
			maxC = c
		}
	}
	return rtime.Time(int64(maxC) * int64(p.HorizonMult))
}
