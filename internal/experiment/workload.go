// Package experiment builds the paper's evaluation workloads and
// regenerates every table and figure of §6 (plus validation experiments
// for Theorems 2–3 and Lemmas 4–5). Each experiment returns text Tables
// whose rows mirror the series the paper plots; cmd/rtsim prints them,
// and EXPERIMENTS.md records paper-vs-measured shapes.
package experiment

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/rtime"
	"repro/internal/stoch"
	"repro/internal/task"
	"repro/internal/tuf"
	"repro/internal/uam"
)

// TUFClass selects the paper's two TUF populations (§6.2).
type TUFClass int

// TUF classes.
const (
	// StepTUFs is the homogeneous class: downward steps only.
	StepTUFs TUFClass = iota
	// HeterogeneousTUFs cycles step, parabolic, and linearly-decreasing
	// shapes across the task set.
	HeterogeneousTUFs
)

func (c TUFClass) String() string {
	if c == HeterogeneousTUFs {
		return "heterogeneous"
	}
	return "step"
}

// Canonical task-set sizes shared by the experiments, replacing the
// hard-coded literals that used to be sprinkled per figure. The scale
// sweep composes its task sets out of PaperTasks-sized clusters through
// the same Build path the figures use.
const (
	// PaperTasks is the paper's canonical evaluation set: "10 tasks
	// accessing 10 shared queues, arbitrarily" (§6.1, Figs 8–14).
	PaperTasks = 10
	// ValidationTasks sizes the theorem-validation worlds (Thm 2/3 and
	// the trace-run example), small enough to eyeball per-task rows.
	ValidationTasks = 6
	// BoundsTasks sizes the Lemma 4/5 AUR-bounds world.
	BoundsTasks = 8
	// MultiTasks sizes the multiprocessor sweeps (multicpu/globalcpu):
	// total load ≈ 2.2 spread over pairs sharing private objects.
	MultiTasks = 16
)

// WorkloadSpec parameterizes the canonical evaluation workload: N tasks
// sharing NumObjects queues "arbitrarily", sized to an approximate load
// AL (§6.1's Σ u_i/C_i), with per-task UAM arrival bands.
type WorkloadSpec struct {
	NumTasks   int
	NumObjects int
	// AccessesPerJob is m_i for every task (the x-axis of Figs 10–13 is
	// driven by raising this together with NumObjects).
	AccessesPerJob int
	// MeanExec is the average per-job compute time u_i (excluding object
	// accesses), the x-axis of Fig 9.
	MeanExec rtime.Duration
	// TargetAL is the approximate load Σ u_i/C_i the set is sized to.
	TargetAL float64
	// Class picks the TUF population.
	Class TUFClass
	// MaxArrivals is the per-window UAM burst bound a_i (≥ 1).
	MaxArrivals int
	// AbortCost is the exception-handler execution time (§3.5).
	AbortCost rtime.Duration

	// TaskIDOffset and ObjectIDOffset shift task IDs/names and object
	// IDs, so several Build calls can compose one large task set from
	// disjoint clusters (see ScaleWorkload). Zero offsets reproduce the
	// historical workloads byte-for-byte.
	TaskIDOffset   int
	ObjectIDOffset int

	// SpreadPhases staggers each task's UAM release phase across its own
	// arrival window with a low-discrepancy (Fibonacci-hash) fraction of
	// the global task ID. Without it every ⟨l≥1,·,·⟩ task releases its
	// first job at time 0, so a 10⁵-task set starts as one synchronized
	// burst whose backlog the scheduler pays O(n) per event to drain —
	// and with a=1 the traces stay phase-locked forever. False (the
	// default) reproduces the historical workloads byte-for-byte.
	SpreadPhases bool
}

// phaseFor spreads release phases over [0, win) by the golden-ratio
// multiplicative hash of the task ID: consecutive IDs land maximally far
// apart, so any subset of tasks — even ones sharing the same window — has
// near-uniform phase coverage. 16-bit fraction precision keeps the
// product inside int64 for any representable window.
func phaseFor(id int, win rtime.Duration) rtime.Duration {
	frac := (uint32(id) * 2654435769) >> 16 // Knuth's ⌊2³²/φ⌋, top 16 bits
	return rtime.Duration(int64(win) * int64(frac) >> 16)
}

// Build materializes the workload. Task i gets compute time spread around
// MeanExec (0.5×…1.5×), critical time C_i = N·u_i/AL so that the set's AL
// matches TargetAL exactly, utility 10·(i+1) (so importance and urgency
// are uncorrelated, as the TUF model intends), and accesses cycling over
// the shared objects starting at an offset — the paper's "accessing 10
// shared queues, arbitrarily".
//
// The UAM window is derived so the band's MEAN arrival rate makes the
// long-run processor utilization equal TargetAL: the jittered generator
// paces at (l+a)/(2W) jobs per tick, so W_i = (l_i+a_i)·C_i/2 with
// l_i = max(0, 2−a_i) keeps rate·u summing to AL while honouring the §2
// constraint C_i ≤ W_i. AL therefore reads as real load, as in Fig 9's
// CML axis.
func (w WorkloadSpec) Build() ([]*task.Task, error) {
	if w.NumTasks <= 0 {
		return nil, fmt.Errorf("experiment: NumTasks %d must be positive", w.NumTasks)
	}
	if w.TargetAL <= 0 {
		return nil, fmt.Errorf("experiment: TargetAL %v must be positive", w.TargetAL)
	}
	if w.MeanExec <= 0 {
		return nil, fmt.Errorf("experiment: MeanExec %v must be positive", w.MeanExec)
	}
	if w.AccessesPerJob > 0 && w.NumObjects <= 0 {
		return nil, fmt.Errorf("experiment: accesses requested with no objects")
	}
	a := w.MaxArrivals
	if a < 1 {
		a = 1
	}
	tasks := make([]*task.Task, w.NumTasks)
	for i := range tasks {
		// Spread compute times deterministically in [0.5, 1.5]·MeanExec.
		frac := 0.5 + float64(i)/float64(maxInt(w.NumTasks-1, 1))
		u := rtime.Duration(float64(w.MeanExec) * frac)
		if u < 1 {
			u = 1
		}
		// Per-task load share AL/N ⇒ C_i = u_i·N/AL.
		c := rtime.Duration(float64(u) * float64(w.NumTasks) / w.TargetAL)
		if c <= u {
			c = u + 1
		}
		util := 10 * float64(i+1)
		var f tuf.TUF
		if w.Class == HeterogeneousTUFs {
			switch i % 3 {
			case 0:
				f = tuf.MustStep(util, c)
			case 1:
				f = tuf.MustParabolic(util, c)
			default:
				f = tuf.MustLinear(util, c)
			}
		} else {
			f = tuf.MustStep(util, c)
		}
		objs := make([]int, maxInt(w.AccessesPerJob, 1))
		for k := range objs {
			objs[k] = w.ObjectIDOffset + (i+k)%maxInt(w.NumObjects, 1)
		}
		l := maxInt(0, 2-a)
		win := rtime.Duration(int64(l+a) * int64(c) / 2)
		if win < c {
			win = c
		}
		id := w.TaskIDOffset + i
		var phase rtime.Duration
		if w.SpreadPhases {
			phase = phaseFor(id, win)
		}
		tasks[i] = &task.Task{
			ID:        id,
			Name:      fmt.Sprintf("T%d", id),
			TUF:       f,
			Arrival:   uam.Spec{L: l, A: a, W: win, Phase: phase},
			Segments:  task.InterleavedSegments(u, w.AccessesPerJob, objs),
			AbortCost: w.AbortCost,
		}
		if err := tasks[i].Validate(); err != nil {
			return nil, err
		}
	}
	return tasks, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ScaleObjectsPerCluster is the private object pool each PaperTasks-sized
// cluster of the scale workload shares.
const ScaleObjectsPerCluster = 5

// ScaleWorkload builds an n-task set for the scaling sweep as disjoint
// PaperTasks-sized clusters, each sharing its own ScaleObjectsPerCluster
// objects — the structure of a large dynamic system: total task count
// grows without bound while any individual conflict neighbourhood stays
// paper-sized. Per-cluster load is al·clusterSize/n, so inside Build
// C_i = u_i·clusterSize/(al·clusterSize/n) = u_i·n/al: critical times
// stretch with n, total system load stays al, and the instantaneous live
// set stays O(1) in underload — scheduling passes keep paper-scale cost
// while the event population (every queued arrival) scales with n, which
// is exactly what the timing wheel is for.
func ScaleWorkload(n int, al float64, class TUFClass) ([]*task.Task, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiment: scale workload size %d must be positive", n)
	}
	tasks := make([]*task.Task, 0, n)
	for off := 0; off < n; off += PaperTasks {
		sz := minInt(PaperTasks, n-off)
		w := WorkloadSpec{
			NumTasks:       sz,
			NumObjects:     ScaleObjectsPerCluster,
			AccessesPerJob: 2,
			MeanExec:       500 * rtime.Microsecond,
			TargetAL:       al * float64(sz) / float64(n),
			Class:          class,
			MaxArrivals:    1,
			TaskIDOffset:   off,
			ObjectIDOffset: (off / PaperTasks) * ScaleObjectsPerCluster,
			SpreadPhases:   true,
		}
		cluster, err := w.Build()
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, cluster...)
	}
	return tasks, nil
}

// Profile scales experiment sizes: Quick for tests, Full for the CLI and
// EXPERIMENTS.md numbers.
type Profile struct {
	Name        string
	HorizonMult int // horizon = mult · max critical time
	Seeds       []int64

	// Jobs bounds the worker pool the experiment sweeps fan out on
	// (runner.Map); zero or negative means one worker per CPU. Every
	// simulation run is a pure function of its sim.Config, and results
	// are merged by index, so rendered tables are byte-identical for any
	// Jobs value — see DESIGN.md "Parallel experiment engine".
	Jobs int

	// Fault, when non-nil and active, is injected into every traced run
	// (RunTrace) and the bound-check suite (CheckBounds): lock-free trace
	// runs get the admission-control RUA variant so sheds appear in the
	// timeline, and bounds are re-checked against the plan's effective
	// (inflated) arrival curves with model-exceeding violations flagged
	// expected. Nil (or a zero plan) leaves every run byte-identical to
	// the fault-free path. See DESIGN.md §5e.
	Fault *fault.Plan

	// Stoch, when non-nil and active, overlays the seeded stochastic
	// scheduler (internal/stoch) on every traced run: drawn quanta force
	// preemptions and random picks (uniprocessor) or ranked-list shuffles
	// (global) perturb dispatch. Like Fault, every decision is a pure
	// hash, so runs stay byte-identical for any worker count; a nil or
	// zero plan is bit-identical to the deterministic scheduler. See
	// DESIGN.md §5h.
	Stoch *stoch.Plan
}

// Quick is a small profile for unit tests (one seed, short horizon).
var Quick = Profile{Name: "quick", HorizonMult: 30, Seeds: []int64{1}}

// Full matches the paper's ≥ 5000-arrival scale (long horizon, five
// seeds for the 95 % CI error bars).
var Full = Profile{Name: "full", HorizonMult: 400, Seeds: []int64{1, 2, 3, 4, 5}}

// horizonFor sizes the horizon from the workload's largest critical time.
func horizonFor(tasks []*task.Task, p Profile) rtime.Time {
	var maxC rtime.Duration
	for _, t := range tasks {
		if c := t.CriticalTime(); c > maxC {
			maxC = c
		}
	}
	return rtime.Time(int64(maxC) * int64(p.HorizonMult))
}
