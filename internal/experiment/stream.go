package experiment

import (
	"fmt"

	"repro/internal/metrics/hist"
	"repro/internal/metrics/ops"
	"repro/internal/metrics/predict"
	"repro/internal/metrics/series"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/trace/check"
	"repro/internal/trace/span"
)

// BuildReportStream is BuildReport's streaming twin: the same run grid,
// the same folds, the same report — but each cell attaches an
// obs.Pipeline to the engine and folds its trace ONLINE instead of
// recording the full event slice and folding post-hoc. Memory per cell
// drops from O(events) to O(series windows + live jobs); the rendered
// artifacts (CSV files, -metrics digest, HTML) are byte-identical to
// BuildReport's, which the report tests pin.
func BuildReportStream(p Profile, figIDs []string) (*report.Report, error) {
	type cell struct {
		combo int
		seed  int64
		first bool // first seed of its combo: folds the series
	}
	var cells []cell
	for ci := range reportCombos {
		for si, seed := range p.Seeds {
			cells = append(cells, cell{combo: ci, seed: seed, first: si == 0})
		}
	}
	type outcome struct {
		jobs, completed, aborted, shed int64
		dropped                        int64
		retries, sojourn               *hist.Hist
		check                          *check.Report
		ops                            *ops.Set
		series                         *series.Series // first seed only
	}
	outs, err := runner.Map(p.Jobs, len(cells), func(i int) (outcome, error) {
		c := cells[i]
		combo := reportCombos[c.combo]
		tasks, horizon, err := TraceSetup(p)
		if err != nil {
			return outcome{}, err
		}
		cpus := 1
		if combo.sim != TraceSimUni {
			cpus = TraceCPUs
		}
		o := outcome{retries: newRetryHist(), sojourn: newSojournHist()}
		cfg := obs.Config{
			Horizon: horizon,
			CPUs:    cpus,
			// The span fold replaces the batch path's post-hoc span.Build:
			// jobs stream through as they depart and only the histograms
			// and counters stay behind.
			OnSpan: func(s *span.JobSpan) {
				o.jobs++
				o.retries.Add(s.Retries)
				switch s.Outcome {
				case span.Completed:
					o.completed++
					o.sojourn.Add(s.Sojourn().Micros())
				case span.Aborted:
					o.aborted++
				}
				if s.Shed {
					o.shed++
				}
			},
		}
		// The global engine's commit-time validation retries fall outside
		// Theorem 2's model (see internal/gsim), so its runs carry no
		// bound check; uni and multi check every seed online.
		if combo.sim != TraceSimGlobal {
			ck := boundCheckConfig(p, combo.lockBased, tasks)
			cfg.CheckTasks = tasks
			cfg.Check = &ck
		}
		if c.first {
			cfg.SeriesWindow = series.WindowFor(horizon, 0)
		}
		pipe, err := obs.NewPipeline(cfg)
		if err != nil {
			return outcome{}, err
		}
		if err := StreamTrace(p, combo.sim, combo.lockBased, c.seed, tasks, horizon, pipe.Observer()); err != nil {
			return outcome{}, err
		}
		res, err := pipe.Finish()
		if err != nil {
			return outcome{}, err
		}
		o.check = res.Check
		o.ops = res.Ops
		o.series = res.Series
		o.dropped = res.FlightDropped
		return o, nil
	})
	if err != nil {
		return nil, err
	}

	rep := &report.Report{
		Title:    "rtsim canonical-workload report",
		Profile:  p.Name,
		Workload: "thm2-trace",
	}
	for ci, combo := range reportCombos {
		mode := "lockfree"
		modeLabel := "lock-free"
		if combo.lockBased {
			mode = "lockbased"
			modeLabel = "lock-based"
		}
		run := report.Run{
			Name: combo.sim + "-" + mode,
			Sim:  combo.sim,
			Mode: modeLabel,
		}
		retries, sojourn := newRetryHist(), newSojournHist()
		var merged *check.Report
		opSet := &ops.Set{}
		for i, c := range cells {
			if c.combo != ci {
				continue
			}
			o := outs[i]
			run.Seeds = append(run.Seeds, c.seed)
			run.Jobs += o.jobs
			run.Completed += o.completed
			run.Aborted += o.aborted
			run.Shed += o.shed
			run.Dropped += o.dropped
			if err := retries.Merge(o.retries); err != nil {
				return nil, fmt.Errorf("experiment: merge %s retry hist: %w", run.Name, err)
			}
			if err := sojourn.Merge(o.sojourn); err != nil {
				return nil, fmt.Errorf("experiment: merge %s sojourn hist: %w", run.Name, err)
			}
			merged = mergeChecks(merged, o.check)
			if o.ops != nil {
				if err := opSet.Merge(o.ops); err != nil {
					return nil, fmt.Errorf("experiment: merge %s op telemetry: %w", run.Name, err)
				}
			}
			if c.first {
				run.Series = o.series
			}
		}
		finishRun(&run, combo.lockBased, merged, opSet, retries, sojourn)
		rep.Runs = append(rep.Runs, run)
	}
	if err := attachFigs(rep, p, figIDs); err != nil {
		return nil, err
	}
	return rep, nil
}

// finishRun attaches a combo's merged fold products to its report run:
// the bound overlays extracted from the merged check, the two canonical
// distributions, the op-telemetry panel, and the throughput overlay.
// Shared by the batch and streaming build paths so their assembly can
// never drift apart.
func finishRun(run *report.Run, lockBased bool, merged *check.Report, opSet *ops.Set, retries, sojourn *hist.Hist) {
	retryBound, sojournBound := int64(-1), int64(-1)
	if merged != nil {
		for _, tr := range merged.Tasks {
			if !lockBased && tr.RetryBound > retryBound {
				retryBound = tr.RetryBound
			}
			if b := tr.SojournBound.Micros(); tr.SojournBound >= 0 && b > sojournBound {
				sojournBound = b
			}
		}
	}
	run.Dists = []report.Dist{
		{Name: "retries", Title: "retries per job", Unit: "retries",
			Hist: retries, Bound: retryBound, BoundLabel: "theorem 2 bound"},
		{Name: "sojourn_us", Title: "sojourn time of completed jobs", Unit: "µs",
			Hist: sojourn, Bound: sojournBound, BoundLabel: "theorem 3 bound"},
	}
	run.Check = merged
	run.OpDists = opDists(opSet)
	if run.Series != nil {
		run.Pred = predict.FromSeries(run.Series)
	}
}

// attachFigs appends the requested figure tables to the report.
func attachFigs(rep *report.Report, p Profile, figIDs []string) error {
	for _, id := range figIDs {
		r, ok := Registry[id]
		if !ok {
			return fmt.Errorf("experiment: unknown experiment %q for report", id)
		}
		tables, err := r(p)
		if err != nil {
			return fmt.Errorf("experiment: report fig %s: %w", id, err)
		}
		for _, t := range tables {
			rep.Figs = append(rep.Figs, report.Table{
				ID: t.ID, Title: t.Title, Note: t.Note,
				Columns: t.Columns, Rows: t.Rows,
			})
		}
	}
	return nil
}
