package experiment

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/metrics/ops"
	"repro/internal/metrics/predict"
	"repro/internal/metrics/series"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stoch"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/uam"
)

// stochDists is the sweep's scheduler axis: the deterministic baseline
// and both stochastic step distributions, fixed plan seed so every cell
// is a pure function of its grid slot.
func stochDists() []struct {
	name string
	plan *stoch.Plan
} {
	uni, geo := stoch.Uni(), stoch.Geo()
	uni.Seed, geo.Seed = 1, 1
	return []struct {
		name string
		plan *stoch.Plan
	}{
		{"off", nil},
		{"uni", uni},
		{"geo", geo},
	}
}

// stochModes is the synchronization axis: the paper's lock-free and
// lock-based disciplines plus a wait-free stub — the same workload with
// every access remapped to a private per-task object, so operations of
// DIFFERENT tasks never conflict. The stub is the predictor's
// calibration anchor: with x ≈ 0 the fitted model collapses to its
// intercept and throughput should track busy time ("practically
// wait-free" made nearly literal — a residual conflict remains when a
// preempted job's successor from the same task commits to their shared
// private object, which random preemption makes slightly more likely).
var stochModes = []string{"lockfree", "lockbased", "waitfree"}

// privatizeObjects clones the workload and gives task i exclusive
// objects, eliminating all sharing while preserving every cost (same
// segment shapes, same access lengths).
func privatizeObjects(template []*task.Task, numObjects int) []*task.Task {
	tasks := task.CloneAll(template)
	for i, t := range tasks {
		for k := range t.Segments {
			if t.Segments[k].Kind != task.Compute {
				t.Segments[k].Object = numObjects + i
			}
		}
	}
	return tasks
}

// StochSweep crosses the stochastic-scheduler distributions with the
// synchronization disciplines and reports, per scenario, accrued
// utility, observed vs predicted throughput (internal/metrics/predict
// fitted per run), the predictor's relative error, and the
// per-operation retry tail (p99/p999 attempts, merged exactly across
// seeds). It answers two questions the deterministic engine cannot:
// does the lock-free discipline's utility survive adversarial random
// preemption (the paper's practical-wait-freedom claim), and does the
// conflict-based throughput model keep tracking the observed commit
// rate as scheduling noise widens the contention window?
//
// Determinism: stochastic decisions are pure hashes of (plan seed,
// cpu, tick); cells fan out on runner.Map and merge by index, so the
// table is byte-identical for any Jobs value.
func StochSweep(p Profile) ([]*Table, error) {
	t := &Table{
		ID:    "stoch",
		Title: "stochastic-scheduler sweep: utility and predicted vs observed throughput",
		Note: fmt.Sprintf("uniprocessor engine; quantum=%v pickp=%.2f plan seed 1; r=%v s=%v; mean ± 95%% CI over %d seeds; tails merged exactly across seeds",
			stoch.DefaultQuantum, stoch.DefaultPickProb, DefaultR, DefaultS, len(p.Seeds)),
		Columns: []string{"dist", "mode", "AUR", "obs_tput_kcommits", "pred_tput_kcommits",
			"pred_rel_err", "fail_rate", "att_p99", "att_p999", "preempts"},
	}
	w := WorkloadSpec{
		NumTasks: PaperTasks, NumObjects: 5, AccessesPerJob: 4,
		MeanExec: 500 * rtime.Microsecond, TargetAL: 1.0,
		Class: StepTUFs, MaxArrivals: 2,
	}
	template, err := w.Build()
	if err != nil {
		return nil, err
	}
	horizon := horizonFor(template, p)
	dists := stochDists()

	type cell struct {
		stats    metrics.RunStats
		commits  int64
		predSum  float64
		relErr   float64
		ops      *ops.Set
		preempts int64
	}
	nSeeds := len(p.Seeds)
	nModes := len(stochModes)
	cells, err := runner.Map(p.Jobs, len(dists)*nModes*nSeeds, func(i int) (cell, error) {
		di := i / (nModes * nSeeds)
		mode := stochModes[(i/nSeeds)%nModes]
		seed := p.Seeds[i%nSeeds]

		tasks := task.CloneAll(template)
		simMode := sim.LockFree
		var sched *rua.RUA
		switch mode {
		case "lockfree":
			sched = rua.NewLockFree()
		case "lockbased":
			sched = rua.NewLockBased()
			simMode = sim.LockBased
		case "waitfree":
			sched = rua.NewLockFree()
			tasks = privatizeObjects(template, w.NumObjects)
		}
		rec := trace.NewRecorder(0)
		res, err := sim.Run(sim.Config{
			Tasks: tasks, Scheduler: sched, Mode: simMode,
			R: DefaultR, S: DefaultS, OpCost: DefaultOpCost,
			Horizon: horizon, ArrivalKind: uam.KindJittered, Seed: seed,
			// Conflict-driven retries (not the conservative any-preemption
			// rule): the wait-free stub must measure exactly zero failures,
			// and the predictor's x-axis should count real conflicts.
			ConservativeRetry: false, Stoch: dists[di].plan, Observer: rec.Record,
		})
		if err != nil {
			return cell{}, err
		}
		sr, err := series.FromEvents(rec.Events(), horizon, series.Config{
			Window: series.WindowFor(horizon, 0), CPUs: 1,
		})
		if err != nil {
			return cell{}, err
		}
		overlay := predict.FromSeries(sr)
		c := cell{
			stats:    metrics.Analyze(res),
			relErr:   overlay.RelErr,
			ops:      ops.FromEvents(rec.Events()),
			preempts: res.CtxSwitches,
		}
		for _, pt := range overlay.Points {
			c.commits += pt.Observed
			c.predSum += pt.Predicted
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}

	for di := range dists {
		for mi, mode := range stochModes {
			var stats []metrics.RunStats
			var relErrs []float64
			var commits int64
			var predSum float64
			var preempts int64
			merged := &ops.Set{}
			for si := 0; si < nSeeds; si++ {
				c := cells[(di*nModes+mi)*nSeeds+si]
				stats = append(stats, c.stats)
				relErrs = append(relErrs, c.relErr)
				commits += c.commits
				predSum += c.predSum
				preempts += c.preempts
				if err := merged.Merge(c.ops); err != nil {
					return nil, fmt.Errorf("experiment: stoch merge ops: %w", err)
				}
			}
			tot := merged.Total()
			att := tot.Attempts.Summarize()
			t.AddRow(dists[di].name, mode,
				means(stats, func(s metrics.RunStats) float64 { return s.AUR }).String(),
				fmt.Sprintf("%.3f", float64(commits)/1000),
				fmt.Sprintf("%.3f", predSum/1000),
				metrics.Summarize(relErrs).String(),
				fmt.Sprintf("%.4f", tot.FailureRate()),
				att.P99, att.P999, preempts,
			)
		}
	}
	return []*Table{t}, nil
}
