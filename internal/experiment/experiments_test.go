package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func TestWorkloadBuild(t *testing.T) {
	w := WorkloadSpec{
		NumTasks: PaperTasks, NumObjects: 10, AccessesPerJob: 4,
		MeanExec: 500, TargetAL: 0.4, Class: HeterogeneousTUFs, MaxArrivals: 2,
	}
	tasks, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 10 {
		t.Fatalf("built %d tasks", len(tasks))
	}
	// AL must hit the target closely (integer rounding aside).
	al := 0.0
	for _, tk := range tasks {
		al += float64(tk.ComputeTime()) / float64(tk.CriticalTime())
		if tk.NumAccesses() != 4 {
			t.Fatalf("task %d has %d accesses", tk.ID, tk.NumAccesses())
		}
	}
	if al < 0.35 || al > 0.45 {
		t.Fatalf("AL = %v, want ≈0.4", al)
	}
	// Heterogeneous class mixes shapes.
	shapes := map[string]bool{}
	for _, tk := range tasks {
		shapes[tk.TUF.Shape()] = true
	}
	if len(shapes) < 3 {
		t.Fatalf("shapes = %v, want 3 kinds", shapes)
	}
}

func TestWorkloadBuildRejects(t *testing.T) {
	bad := []WorkloadSpec{
		{NumTasks: 0, MeanExec: 1, TargetAL: 1},
		{NumTasks: 1, MeanExec: 0, TargetAL: 1},
		{NumTasks: 1, MeanExec: 1, TargetAL: 0},
		{NumTasks: 1, MeanExec: 1, TargetAL: 1, AccessesPerJob: 2, NumObjects: 0},
	}
	for i, w := range bad {
		if _, err := w.Build(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Note: "n", Columns: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("long-cell", true)
	out := tb.Render()
	for _, want := range []string{"== x: demo ==", "a", "bb", "long-cell", "2.5", "true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "thm2", "thm3", "costs", "aurbounds", "ablation-retry", "ablation-opcost", "baselines", "multicpu", "globalcpu", "lockdisc", "faults", "scale", "stoch"}
	for _, id := range want {
		if Registry[id] == nil {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(Names()) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Names()), len(want))
	}
}

func TestFig8Shape(t *testing.T) {
	ts, err := Fig8(Quick)
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Shape check: r_eff must exceed s_eff at every object count (the
	// figure's headline: r ≫ s).
	for _, row := range tb.Rows {
		if !(parseLead(row[1]) > parseLead(row[2])) {
			t.Fatalf("r_eff not above s_eff: %v", row)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	ts, err := Fig9(Quick)
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	last := tb.Rows[len(tb.Rows)-1]
	// At long executions every variant reaches a high CML; at short
	// executions lock-based lags ideal (Fig 9's shape).
	if parseLead(last[1]) < 0.5 || parseLead(last[2]) < 0.5 {
		t.Fatalf("long-exec CMLs too low: %v", last)
	}
	first := tb.Rows[0]
	if parseLead(first[3]) > parseLead(first[1]) {
		t.Fatalf("short-exec lock-based CML above ideal: %v", first)
	}
}

func TestFig12OverloadShape(t *testing.T) {
	ts, err := Fig12(Quick)
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	// At the maximum object count during overload, lock-free AUR must
	// beat lock-based (the paper's ≈65% gap).
	last := tb.Rows[len(tb.Rows)-1]
	lbAUR, lfAUR := parseLead(last[1]), parseLead(last[2])
	if lfAUR <= lbAUR {
		t.Fatalf("lock-free AUR %v not above lock-based %v at 10 objects overload", lfAUR, lbAUR)
	}
}

func TestThm2BoundHolds(t *testing.T) {
	if _, err := Thm2(Quick); err != nil {
		t.Fatal(err)
	}
}

func TestCostsShape(t *testing.T) {
	ts, err := Costs(Quick)
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	// Lock-based ops above lock-free at every n, and the gap grows.
	var prevRatio float64
	for _, row := range tb.Rows {
		ratio := parseLead(row[3])
		if ratio <= 1 {
			t.Fatalf("ratio ≤ 1: %v", row)
		}
		if prevRatio > 0 && ratio < prevRatio*0.8 {
			t.Fatalf("ratio shrank sharply: %v after %v", ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestAURBoundsHold(t *testing.T) {
	if _, err := AURBoundsExp(Quick); err != nil {
		t.Fatal(err)
	}
}

func TestThm3Runs(t *testing.T) {
	ts, err := Thm3(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts[0].Rows) != 3 {
		t.Fatalf("rows = %d", len(ts[0].Rows))
	}
}

func TestFig14Runs(t *testing.T) {
	ts, err := Fig14(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts[0].Rows) != 2 {
		t.Fatalf("rows = %d", len(ts[0].Rows))
	}
}

// parseLead extracts the leading float of a cell like "0.9123 ± 0.0021".
func parseLead(cell string) float64 {
	cell = strings.TrimSpace(cell)
	end := len(cell)
	for i, r := range cell {
		if !(r == '.' || r == '-' || r == '+' || r == 'e' || (r >= '0' && r <= '9')) {
			end = i
			break
		}
	}
	f, err := strconv.ParseFloat(cell[:end], 64)
	if err != nil {
		return -1
	}
	return f
}

func TestAblationRetryInvariant(t *testing.T) {
	if _, err := AblationRetry(Quick); err != nil {
		t.Fatal(err)
	}
}

func TestAblationOpCostMonotone(t *testing.T) {
	ts, err := AblationOpCost(Quick)
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Overhead strictly grows with op cost; AUR must not improve.
	o0, o1, o2 := parseLead(tb.Rows[0][1]), parseLead(tb.Rows[1][1]), parseLead(tb.Rows[2][1])
	if !(o0 == 0 && o1 > 0 && o2 > o1) {
		t.Fatalf("overheads not increasing: %v %v %v", o0, o1, o2)
	}
	a0, a2 := parseLead(tb.Rows[0][2]), parseLead(tb.Rows[2][2])
	if a2 > a0+1e-9 {
		t.Fatalf("AUR improved with slower scheduler: %v -> %v", a0, a2)
	}
}

func TestBaselinesOverloadShape(t *testing.T) {
	ts, err := Baselines(Quick)
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Overload row: RUA must beat EDF on accrued utility.
	over := tb.Rows[1]
	if parseLead(over[1]) <= parseLead(over[3]) {
		t.Fatalf("RUA AUR %v not above EDF %v under overload", over[1], over[3])
	}
}

func TestMultiCPUShape(t *testing.T) {
	ts, err := MultiCPU(Quick)
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// More CPUs must raise aggregate AUR on an overloaded set.
	if parseLead(tb.Rows[1][1]) <= parseLead(tb.Rows[0][1]) {
		t.Fatalf("AUR did not improve with CPUs: %v", tb.Rows)
	}
}

func TestGlobalCPUShape(t *testing.T) {
	ts, err := GlobalCPU(Quick)
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Both disciplines improve with CPUs.
	if parseLead(tb.Rows[1][1]) <= parseLead(tb.Rows[0][1]) {
		t.Fatalf("global AUR did not improve: %v", tb.Rows)
	}
	if parseLead(tb.Rows[1][2]) <= parseLead(tb.Rows[0][2]) {
		t.Fatalf("partitioned AUR did not improve: %v", tb.Rows)
	}
}

func TestLockDisciplinesOrdering(t *testing.T) {
	ts, err := LockDisciplines(Quick)
	if err != nil {
		t.Fatal(err)
	}
	row := ts[0].Rows[0]
	lockfree := parseLead(row[4])
	edf := parseLead(row[1])
	if lockfree <= edf {
		t.Fatalf("lock-free RUA %v not above naive lock-based EDF %v", lockfree, edf)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tb.AddRow(1, "two, with comma")
	out := tb.RenderCSV()
	if !strings.Contains(out, "# x,demo") {
		t.Fatalf("missing header record: %q", out)
	}
	if !strings.Contains(out, `"two, with comma"`) {
		t.Fatalf("comma cell not quoted: %q", out)
	}
}
