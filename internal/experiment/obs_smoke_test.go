package experiment

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics/series"
	"repro/internal/obs"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/sim"
	"repro/internal/trace/span"
	"repro/internal/uam"
)

// TestObsSmoke is the CI obs-smoke entry point (see Makefile obs-smoke):
// one n=10⁴ uniprocessor lock-free run on the clustered scale workload
// with the full streaming pipeline attached — flight recorder, progress
// reporting, online series and span folds — and no event buffering
// anywhere. It proves live introspection works at the scales the
// engines reach: the pipeline's counters agree with the engine's own
// result, the progress stream is emitted and deterministic, and the
// flight ring holds exactly its bounded window.
func TestObsSmoke(t *testing.T) {
	const n = 10_000
	run := func() (*obs.Results, sim.Result, string, int) {
		t.Helper()
		tasks, err := ScaleWorkload(n, 0.4, StepTUFs)
		if err != nil {
			t.Fatal(err)
		}
		horizon := horizonFor(tasks, Quick)
		var progress bytes.Buffer
		var spans int
		pipe, err := obs.NewPipeline(obs.Config{
			Horizon:       horizon,
			CPUs:          1,
			SeriesWindow:  series.WindowFor(horizon, 0),
			OnSpan:        func(*span.JobSpan) { spans++ },
			Flight:        4096,
			Progress:      &progress,
			ProgressEvery: rtime.Duration(horizon / 10),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Tasks: tasks, Scheduler: rua.NewLockFree(), Mode: sim.LockFree,
			R: DefaultR, S: DefaultS, OpCost: 0,
			Horizon: horizon, ArrivalKind: uam.KindJittered, Seed: Quick.Seeds[0],
			ConservativeRetry: true,
			Observer:          pipe.Observer(),
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := pipe.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if pipe.Flight().Len() != 4096 {
			t.Fatalf("flight ring holds %d events, want full 4096", pipe.Flight().Len())
		}
		return out, res, progress.String(), spans
	}

	out, res, progress, spans := run()
	if out.Retries != res.Retries {
		t.Fatalf("pipeline retries %d != engine %d", out.Retries, res.Retries)
	}
	if int64(spans) < int64(n) {
		t.Fatalf("folded %d spans, want ≥ %d (one per released job)", spans, n)
	}
	if out.Commits == 0 || out.Events < int64(n) {
		t.Fatalf("pipeline saw commits=%d events=%d; smoke is vacuous", out.Commits, out.Events)
	}
	if out.Series == nil || len(out.Series.Points) == 0 {
		t.Fatal("no online series folded")
	}
	lines := strings.Split(strings.TrimSuffix(progress, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("want ≥ 5 progress lines, got %d:\n%s", len(lines), progress)
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "progress t=") {
			t.Fatalf("malformed progress line %q", ln)
		}
	}

	// Determinism: the whole introspection surface is a pure function of
	// the run.
	_, _, progress2, spans2 := run()
	if progress != progress2 || spans != spans2 {
		t.Fatal("streaming introspection not deterministic across identical runs")
	}
}
