package experiment

import (
	"repro/internal/metrics"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/uam"
)

// Baselines compares the utility-accrual schedulers across the load
// spectrum on lock-free objects: lock-free RUA (the paper's algorithm),
// LBESA (the ancestral best-effort UA scheduler), EDF (urgency only),
// and LLF (fully-dynamic laxity). During underload all four should be
// near-equivalent (UA schedulers default to deadline order); during
// overload the UA schedulers must accrue more utility than EDF/LLF,
// which thrash on infeasible urgent work — the paper's core motivation
// (§1: "deadlines by themselves cannot express both urgency and
// importance").
func Baselines(p Profile) ([]*Table, error) {
	t := &Table{
		ID:      "baselines",
		Title:   "UA schedulers vs deadline schedulers across load (lock-free objects)",
		Note:    "AUR mean ± 95% CI; 10 tasks, heterogeneous TUFs, 4 accesses over 4 objects",
		Columns: []string{"AL", "AUR_rua", "AUR_lbesa", "AUR_edf", "AUR_llf"},
	}
	loads := []float64{0.3, 0.6, 0.9, 1.2, 1.5}
	if p.Name == Quick.Name {
		loads = []float64{0.3, 1.2}
	}
	mk := func() []sched.Scheduler {
		return []sched.Scheduler{rua.NewLockFree(), sched.LBESA{}, sched.EDF{}, sched.LLF{}}
	}
	templates := make([][]*task.Task, len(loads))
	horizons := make([]rtime.Time, len(loads))
	for li, al := range loads {
		w := WorkloadSpec{
			NumTasks: PaperTasks, NumObjects: 4, AccessesPerJob: 4,
			MeanExec: 500 * rtime.Microsecond, TargetAL: al,
			Class: HeterogeneousTUFs, MaxArrivals: 2,
		}
		tasks, err := w.Build()
		if err != nil {
			return nil, err
		}
		templates[li] = tasks
		horizons[li] = horizonFor(tasks, p)
	}
	nSeeds, nS := len(p.Seeds), 4
	cells, err := runner.Map(p.Jobs, len(loads)*nSeeds*nS, func(i int) (float64, error) {
		li := i / (nSeeds * nS)
		seed := p.Seeds[(i/nS)%nSeeds]
		s := mk()[i%nS]
		res, err := sim.Run(sim.Config{
			Tasks: task.CloneAll(templates[li]), Scheduler: s, Mode: sim.LockFree,
			R: DefaultR, S: DefaultS, OpCost: DefaultOpCost,
			Horizon:     horizons[li],
			ArrivalKind: uam.KindJittered, Seed: seed, ConservativeRetry: true,
		})
		if err != nil {
			return 0, err
		}
		return metrics.Analyze(res).AUR, nil
	})
	if err != nil {
		return nil, err
	}
	for li, al := range loads {
		aurs := make([][]float64, nS)
		for si := 0; si < nSeeds; si++ {
			for vi := 0; vi < nS; vi++ {
				aurs[vi] = append(aurs[vi], cells[(li*nSeeds+si)*nS+vi])
			}
		}
		t.AddRow(al,
			metrics.Summarize(aurs[0]).String(),
			metrics.Summarize(aurs[1]).String(),
			metrics.Summarize(aurs[2]).String(),
			metrics.Summarize(aurs[3]).String(),
		)
	}
	return []*Table{t}, nil
}
