package experiment

import (
	"fmt"

	"repro/internal/gsim"
	"repro/internal/metrics"
	"repro/internal/multi"
	"repro/internal/rua"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/uam"
)

// scaleCPUs is the processor count the multiprocessor engines use in the
// scaling sweep.
const scaleCPUs = 4

// scaleNs returns the task-count sweep: the quick profile stops at 10³
// (unit-test budget), the full profile covers the PR's 10²–10⁵ range.
func scaleNs(p Profile) []int {
	if p.Name == Quick.Name {
		return []int{100, 1000}
	}
	return []int{100, 1000, 10_000, 100_000}
}

// Scale sweeps the engines across task-set sizes n ∈ 10²–10⁵ on the
// clustered workload of ScaleWorkload: every (engine × sharing mode)
// combination runs the same n-task set for one seed, and the table
// reports deterministic outcome counters. Wall-clock belongs to the
// benchmark path (rtsim -bench-json, gated in CI against BENCH_PR6.json),
// not to the table: counters are byte-identical across machines, seconds
// are not.
//
// The sweep holds total load at AL ≈ 0.4 while n grows, so the live set
// stays paper-sized and the pressure lands where scaling hurts: the
// event queue (every queued arrival — the timing wheel's O(1) schedule
// per event vs the old heap's O(log n)) and the per-pass scratch
// (zero-alloc steady state). AUR/CMR must stay high at every n — a
// scheduler that only works at n=10 would show degradation here.
func Scale(p Profile) ([]*Table, error) {
	t := &Table{
		ID:    "scale",
		Title: "engine scaling over task-set size (uni/partitioned/global × lock-free/lock-based)",
		Note: fmt.Sprintf("clustered workload: %d-task clusters over %d private objects each, AL≈0.4, %d CPUs for multi/global, seed %d",
			PaperTasks, ScaleObjectsPerCluster, scaleCPUs, Quick.Seeds[0]),
		Columns: []string{"n", "engine", "mode", "released", "completed", "AUR", "CMR", "retries"},
	}
	ns := scaleNs(p)
	// The horizon multiplier is capped at the quick profile's: event count
	// already scales linearly with n, and the sweep's point is breadth in
	// n, not depth in virtual time.
	hp := p
	hp.HorizonMult = minInt(p.HorizonMult, Quick.HorizonMult)

	templates := make([][]*task.Task, len(ns))
	for i, n := range ns {
		tasks, err := ScaleWorkload(n, 0.4, StepTUFs)
		if err != nil {
			return nil, err
		}
		templates[i] = tasks
	}

	type combo struct {
		engine string
		mode   sim.Mode
	}
	combos := []combo{
		{"uni", sim.LockFree}, {"uni", sim.LockBased},
		{"multi", sim.LockFree}, {"multi", sim.LockBased},
		{"global", sim.LockFree}, {"global", sim.LockBased},
	}
	seed := Quick.Seeds[0]
	cells, err := runner.Map(p.Jobs, len(ns)*len(combos), func(i int) (metrics.RunStats, error) {
		tasks := task.CloneAll(templates[i/len(combos)])
		cb := combos[i%len(combos)]
		horizon := horizonFor(tasks, hp)
		newSched := func() *rua.RUA {
			if cb.mode == sim.LockFree {
				return rua.NewLockFree()
			}
			return rua.NewLockBased()
		}
		switch cb.engine {
		case "uni":
			res, err := sim.Run(sim.Config{
				Tasks: tasks, Scheduler: newSched(), Mode: cb.mode,
				R: DefaultR, S: DefaultS, OpCost: 0,
				Horizon: horizon, ArrivalKind: uam.KindJittered, Seed: seed,
				ConservativeRetry: true,
			})
			if err != nil {
				return metrics.RunStats{}, err
			}
			return metrics.Analyze(res), nil
		case "multi":
			res, err := multi.Run(multi.Config{
				CPUs: scaleCPUs, Tasks: tasks, Mode: cb.mode,
				R: DefaultR, S: DefaultS, OpCost: 0,
				Horizon: horizon, ArrivalKind: uam.KindJittered, Seed: seed,
				ConservativeRetry: true,
			})
			if err != nil {
				return metrics.RunStats{}, err
			}
			return res.Stats, nil
		default: // global
			res, err := gsim.Run(gsim.Config{
				CPUs: scaleCPUs, Tasks: tasks, Scheduler: newSched(), Mode: cb.mode,
				R: DefaultR, S: DefaultS, OpCost: 0,
				Horizon: horizon, ArrivalKind: uam.KindJittered, Seed: seed,
			})
			if err != nil {
				return metrics.RunStats{}, err
			}
			return metrics.Analyze(res), nil
		}
	})
	if err != nil {
		return nil, err
	}
	for ni, n := range ns {
		for ci, cb := range combos {
			st := cells[ni*len(combos)+ci]
			mode := "lockfree"
			if cb.mode == sim.LockBased {
				mode = "lockbased"
			}
			t.AddRow(n, cb.engine, mode, st.Released, st.Completed,
				fmt.Sprintf("%.3f", st.AUR), fmt.Sprintf("%.3f", st.CMR), st.Retries)
		}
	}
	return []*Table{t}, nil
}
