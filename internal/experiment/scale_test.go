package experiment

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/rua"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/uam"
)

func TestScaleWorkloadComposition(t *testing.T) {
	const n = 103 // deliberately not a multiple of the cluster size
	tasks, err := ScaleWorkload(n, 0.4, StepTUFs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != n {
		t.Fatalf("built %d tasks, want %d", len(tasks), n)
	}
	al := 0.0
	seenIDs := map[int]bool{}
	for i, tk := range tasks {
		if tk.ID != i {
			t.Fatalf("task %d has ID %d: offsets must produce dense global IDs", i, tk.ID)
		}
		if seenIDs[tk.ID] {
			t.Fatalf("duplicate task ID %d", tk.ID)
		}
		seenIDs[tk.ID] = true
		al += float64(tk.ComputeTime()) / float64(tk.CriticalTime())
		// Every access must stay inside the task's own cluster pool.
		lo := (i / PaperTasks) * ScaleObjectsPerCluster
		for _, seg := range tk.Segments {
			if seg.Kind != task.Access {
				continue
			}
			if seg.Object < lo || seg.Object >= lo+ScaleObjectsPerCluster {
				t.Fatalf("task %d accesses object %d outside cluster pool [%d,%d)",
					i, seg.Object, lo, lo+ScaleObjectsPerCluster)
			}
		}
	}
	if al < 0.3 || al > 0.5 {
		t.Fatalf("total AL = %v, want ≈0.4", al)
	}
}

func TestScaleQuickShape(t *testing.T) {
	ts, err := Scale(Quick)
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if len(tb.Rows) != 2*6 {
		t.Fatalf("rows = %d, want 12 (2 sizes × 6 engine/mode combos)", len(tb.Rows))
	}
	// Underload at every n: the engines must not degrade as the task
	// population grows — CMR stays high for every engine and mode.
	for _, row := range tb.Rows {
		if parseLead(row[3]) <= 0 {
			t.Fatalf("no released jobs: %v", row)
		}
		if cmr := parseLead(row[6]); cmr < 0.7 {
			t.Fatalf("CMR %v degraded at scale: %v", cmr, row)
		}
	}
}

// TestScaleSmoke is the CI scale-smoke entry point (see Makefile
// scale-smoke): one n=10⁴ uniprocessor lock-free run on the clustered
// workload, single seed. It proves the 10⁴-task configuration completes
// and stays healthy without paying for the full sweep.
func TestScaleSmoke(t *testing.T) {
	const n = 10_000
	tasks, err := ScaleWorkload(n, 0.4, StepTUFs)
	if err != nil {
		t.Fatal(err)
	}
	horizon := horizonFor(tasks, Quick)
	res, err := sim.Run(sim.Config{
		Tasks: tasks, Scheduler: rua.NewLockFree(), Mode: sim.LockFree,
		R: DefaultR, S: DefaultS, OpCost: 0,
		Horizon: horizon, ArrivalKind: uam.KindJittered, Seed: Quick.Seeds[0],
		ConservativeRetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := metrics.Analyze(res)
	if st.Released < int64(n) {
		t.Fatalf("released %d jobs, want ≥ %d", st.Released, n)
	}
	if st.CMR < 0.9 {
		t.Fatalf("CMR %v at n=%d, want ≥ 0.9 in underload", st.CMR, n)
	}
}
