package experiment

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/rtime"
	"repro/internal/stoch"
	"repro/internal/trace"
)

// streamProfiles returns the property-suite grid: the plain quick
// profile plus fault-injected and stochastic-scheduler variants, so the
// streaming folds face sheds, aborts, injected retries, and quantum
// preemptions — every event kind the engines emit.
func streamProfiles(t *testing.T) map[string]Profile {
	t.Helper()
	fp, err := fault.ParsePlan("heavy")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := stoch.ParsePlan("geo")
	if err != nil {
		t.Fatal(err)
	}
	plain := Quick
	plain.Seeds = []int64{1, 2}
	faulty := plain
	faulty.Fault = fp
	stochastic := plain
	stochastic.Stoch = sp
	return map[string]Profile{"plain": plain, "fault": faulty, "stoch": stochastic}
}

// TestStreamReportMatchesBatch is the streaming pipeline's acceptance
// property: BuildReportStream renders byte-identically to BuildReport —
// same -metrics digest, same HTML — across every simulator × mode the
// grid covers, under fault injection and stochastic scheduling alike.
// One comparison covers every online sink at once: the span fold feeds
// the histograms, the series fold the throughput panel, the ops fold
// the retry-tail panel, and the check fold the violation tables.
func TestStreamReportMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the trace grid twice per profile")
	}
	for _, name := range []string{"plain", "fault", "stoch"} {
		p := streamProfiles(t)[name]
		t.Run(name, func(t *testing.T) {
			batch, err := BuildReport(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := BuildReportStream(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			var bt, st, bh, sh bytes.Buffer
			if err := batch.WriteText(&bt); err != nil {
				t.Fatal(err)
			}
			if err := stream.WriteText(&st); err != nil {
				t.Fatal(err)
			}
			if bt.String() != st.String() {
				t.Fatalf("-metrics digest differs between batch and streaming builds:\n--- batch\n%s\n--- stream\n%s", bt.String(), st.String())
			}
			if err := batch.WriteHTML(&bh); err != nil {
				t.Fatal(err)
			}
			if err := stream.WriteHTML(&sh); err != nil {
				t.Fatal(err)
			}
			if bh.String() != sh.String() {
				t.Fatal("HTML report differs between batch and streaming builds")
			}
			var jobs int64
			for i := range stream.Runs {
				jobs += stream.Runs[i].Jobs
			}
			if jobs == 0 {
				t.Fatal("streaming build folded no jobs; identity check is vacuous")
			}
		})
	}
}

// TestStreamReportJobsInvariant: the streaming build fans out on
// runner.Map like the batch build; its rendered digest must be
// byte-equal for serial and parallel execution.
func TestStreamReportJobsInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the trace grid twice")
	}
	render := func(jobs int) string {
		p := streamProfiles(t)["plain"]
		p.Jobs = jobs
		rep, err := BuildReportStream(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		var txt bytes.Buffer
		if err := rep.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		return txt.String()
	}
	if a, b := render(1), render(4); a != b {
		t.Fatalf("streaming digest differs between -jobs 1 and 4:\n%s\n---\n%s", a, b)
	}
}

// TestObserverStreamsOrdered pins the contract the whole streaming
// pipeline rests on: every engine's observer stream is nondecreasing in
// Event.At — including the partitioned engine, whose per-CPU streams
// are merged in lockstep — under fault injection and stochastic
// scheduling alike.
func TestObserverStreamsOrdered(t *testing.T) {
	for _, simName := range []string{TraceSimUni, TraceSimMulti, TraceSimGlobal} {
		for _, lockBased := range []bool{false, true} {
			for _, prof := range []string{"plain", "fault", "stoch"} {
				p := streamProfiles(t)[prof]
				tasks, horizon, err := TraceSetup(p)
				if err != nil {
					t.Fatal(err)
				}
				var last rtime.Time
				var events int
				bad := 0
				obs := func(e trace.Event) {
					if e.At < last {
						bad++
					}
					last = e.At
					events++
				}
				if err := StreamTrace(p, simName, lockBased, p.Seeds[0], tasks, horizon, obs); err != nil {
					t.Fatalf("%s lb=%v %s: %v", simName, lockBased, prof, err)
				}
				if events == 0 {
					t.Fatalf("%s lb=%v %s: no events", simName, lockBased, prof)
				}
				if bad != 0 {
					t.Fatalf("%s lb=%v %s: %d of %d events out of order", simName, lockBased, prof, bad, events)
				}
			}
		}
	}
}
