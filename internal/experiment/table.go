package experiment

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// Table is a rendered experiment artifact: one per paper table or figure
// panel. Rows are pre-formatted strings so each experiment controls its
// own precision.
type Table struct {
	ID      string // experiment id, e.g. "fig9"
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render produces an aligned text table.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// RenderCSV produces the table as CSV with a leading header row. The
// experiment id and title travel in a comment-style first record so
// concatenated outputs stay self-describing.
func (t *Table) RenderCSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.Write(append([]string{"# " + t.ID}, t.Title))
	w.Write(t.Columns)
	for _, r := range t.Rows {
		w.Write(r)
	}
	w.Flush()
	return b.String()
}
