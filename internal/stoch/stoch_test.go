package stoch

import (
	"testing"

	"repro/internal/rtime"
)

func TestActive(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Fatal("nil plan must be inactive")
	}
	if (&Plan{}).Active() {
		t.Fatal("zero plan must be inactive")
	}
	if (&Plan{Dist: Uniform}).Active() {
		t.Fatal("a plan with no quantum and no pick probability is inert")
	}
	if (&Plan{Quantum: 100, PickProb: 0.5}).Active() {
		t.Fatal("Dist Off must deactivate the plan regardless of shape")
	}
	if !Uni().Active() || !Geo().Active() {
		t.Fatal("presets must be active")
	}
}

// TestNilPlanHooksAreNoOps pins the bit-identity guarantee at its
// root: every hook on a nil or Off plan returns the zero decision.
func TestNilPlanHooksAreNoOps(t *testing.T) {
	for _, p := range []*Plan{nil, {}, {Dist: Off, Quantum: 100, PickProb: 1}} {
		for tick := rtime.Time(0); tick < 50; tick++ {
			if q := p.Step(0, tick); q != 0 {
				t.Fatalf("inactive Step(0,%d) = %v, want 0", tick, q)
			}
			if idx, ok := p.Pick(0, tick, 4); ok || idx != 0 {
				t.Fatalf("inactive Pick(0,%d) = (%d,%v), want (0,false)", tick, idx, ok)
			}
			if s := p.Swap(0, tick, 3); s != 0 {
				t.Fatalf("inactive Swap(0,%d,3) = %d, want 0", tick, s)
			}
		}
	}
}

// TestStepDeterministicAndPure: equal coordinates yield equal draws;
// distinct cpus or ticks draw independently (a pure hash, no shared
// sequential state to advance).
func TestStepDeterministicAndPure(t *testing.T) {
	p := &Plan{Seed: 7, Dist: Uniform, Quantum: 100}
	for cpu := 0; cpu < 3; cpu++ {
		for tick := rtime.Time(0); tick < 200; tick++ {
			a, b := p.Step(cpu, tick), p.Step(cpu, tick)
			if a != b {
				t.Fatalf("Step(%d,%d) not pure: %v vs %v", cpu, tick, a, b)
			}
		}
	}
	// Interleaving order must not matter: drawing cpu 1 between two
	// cpu-0 draws leaves the cpu-0 value unchanged.
	before := p.Step(0, 42)
	p.Step(1, 42)
	if after := p.Step(0, 42); after != before {
		t.Fatalf("cross-cpu draw perturbed Step(0,42): %v vs %v", before, after)
	}
}

func TestStepUniformRange(t *testing.T) {
	p := &Plan{Seed: 3, Dist: Uniform, Quantum: 50}
	seen := map[rtime.Duration]bool{}
	for tick := rtime.Time(0); tick < 5000; tick++ {
		q := p.Step(0, tick)
		if q < 1 || q > 50 {
			t.Fatalf("uniform Step = %v outside [1, 50]", q)
		}
		seen[q] = true
	}
	if len(seen) < 40 {
		t.Fatalf("uniform draws cover only %d of 50 values", len(seen))
	}
}

func TestStepGeometricShape(t *testing.T) {
	p := &Plan{Seed: 11, Dist: Geometric, Quantum: 100}
	var sum int64
	n := int64(20000)
	for tick := rtime.Time(0); tick < rtime.Time(n); tick++ {
		q := p.Step(0, tick)
		if q < 1 || q > stepCapFactor*p.Quantum {
			t.Fatalf("geometric Step = %v outside [1, %v]", q, stepCapFactor*p.Quantum)
		}
		sum += int64(q)
	}
	mean := float64(sum) / float64(n)
	if mean < 85 || mean > 115 {
		t.Fatalf("geometric mean %.1f far from Quantum 100", mean)
	}
	// Quantum 1 must not divide by log(0): every draw collapses to 1.
	one := &Plan{Seed: 1, Dist: Geometric, Quantum: 1}
	for tick := rtime.Time(0); tick < 100; tick++ {
		if q := one.Step(0, tick); q != 1 {
			t.Fatalf("Quantum=1 geometric Step = %v, want 1", q)
		}
	}
}

func TestPickRateAndRange(t *testing.T) {
	p := &Plan{Seed: 5, Dist: Uniform, Quantum: 100, PickProb: 0.25}
	hits := 0
	n := 20000
	counts := make([]int, 4)
	for tick := 0; tick < n; tick++ {
		idx, ok := p.Pick(0, rtime.Time(tick), 4)
		if !ok {
			continue
		}
		hits++
		if idx < 0 || idx >= 4 {
			t.Fatalf("Pick index %d outside [0,4)", idx)
		}
		counts[idx]++
	}
	rate := float64(hits) / float64(n)
	if rate < 0.22 || rate > 0.28 {
		t.Fatalf("pick rate %.3f far from 0.25", rate)
	}
	for i, c := range counts {
		if c < hits/8 {
			t.Fatalf("pick index %d chosen only %d of %d times (not uniform)", i, c, hits)
		}
	}
	if _, ok := p.Pick(0, 1, 0); ok {
		t.Fatal("Pick with zero candidates must not fire")
	}
}

func TestSwapRange(t *testing.T) {
	p := Uni()
	p.Seed = 9
	for i := 1; i < 20; i++ {
		for tick := rtime.Time(0); tick < 500; tick++ {
			s := p.Swap(1, tick, i)
			if s < 0 || s > i {
				t.Fatalf("Swap(1,%d,%d) = %d outside [0,%d]", tick, i, s, i)
			}
		}
	}
	if s := p.Swap(0, 3, 0); s != 0 {
		t.Fatalf("Swap at position 0 = %d, want 0", s)
	}
}

func TestSeedIndependence(t *testing.T) {
	a := &Plan{Seed: 1, Dist: Uniform, Quantum: 1000}
	b := &Plan{Seed: 2, Dist: Uniform, Quantum: 1000}
	same := 0
	for tick := rtime.Time(0); tick < 1000; tick++ {
		if a.Step(0, tick) == b.Step(0, tick) {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("seeds 1 and 2 agree on %d of 1000 draws; hashes not independent", same)
	}
}

func TestParsePlan(t *testing.T) {
	cases := []struct {
		in   string
		want Plan
	}{
		{"off", Plan{}},
		{"", Plan{}},
		{"uni", *Uni()},
		{"geo", *Geo()},
		{"uni,seed=7", Plan{Seed: 7, Dist: Uniform, Quantum: DefaultQuantum, PickProb: DefaultPickProb}},
		{"geo,quantumus=100,pickp=0.5", Plan{Dist: Geometric, Quantum: 100, PickProb: 0.5}},
	}
	for _, c := range cases {
		got, err := ParsePlan(c.in)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", c.in, err)
		}
		if *got != c.want {
			t.Fatalf("ParsePlan(%q) = %+v, want %+v", c.in, *got, c.want)
		}
	}
	for _, bad := range []string{"heavy", "uni,pickp=2", "uni,quantumus=-1", "seed=1,uni", "uni,bogus=1"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan(%q) accepted", bad)
		}
	}
}
