// Package stoch is the simulator's seeded stochastic-scheduler mode.
// The 2006 paper proves its retry and sojourn bounds against a
// worst-case adversarial scheduler; Alistarh, Censor-Hillel & Shavit
// (arXiv:1311.3200) show the same lock-free algorithms behave
// wait-free in expectation once the scheduler is stochastic. A Plan
// overlays exactly that environment on the deterministic engines: it
// forces preemptions after a randomly drawn quantum (uniform or
// geometric step distribution) and occasionally replaces the
// scheduler's deterministic pick with a uniformly random runnable job.
//
// Determinism follows internal/fault's design center: every decision
// is a pure splitmix64 hash of (plan seed, decision stream, cpu,
// virtual tick) — never a draw from a shared sequential RNG. A run
// under a given plan is therefore byte-reproducible for any worker
// count, and the SAME decisions fire at the same (cpu, tick)
// coordinates in every engine.
//
// A nil *Plan (or one with Dist Off) is everywhere a no-op: every hook
// short-circuits without touching engine state, so plan-free runs
// reproduce the deterministic scheduler's output bit for bit.
package stoch

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/rtime"
)

// ErrPlan reports an unparsable or invalid plan specification.
var ErrPlan = errors.New("stoch: invalid plan")

// Dist selects the forced-preemption step distribution.
type Dist int

// Step distributions.
const (
	// Off disables the stochastic mode entirely (the zero value).
	Off Dist = iota
	// Uniform draws each quantum uniformly from [1, Quantum] ticks.
	Uniform
	// Geometric draws each quantum from a geometric distribution with
	// mean Quantum ticks (memoryless preemption — the scheduler model
	// of the stochastic wait-freedom results).
	Geometric
)

// String renders the distribution the way -stoch spells it.
func (d Dist) String() string {
	switch d {
	case Uniform:
		return "uni"
	case Geometric:
		return "geo"
	default:
		return "off"
	}
}

// Plan is a seeded stochastic-scheduler plan. The zero value is
// inactive.
type Plan struct {
	// Seed keys every hash; two plans with different seeds make
	// independent decisions even when their shapes match.
	Seed int64

	// Dist selects the step distribution; Off deactivates the plan.
	Dist Dist

	// Quantum parameterizes the forced-preemption step: the inclusive
	// upper bound of a Uniform draw, the mean of a Geometric one.
	// Zero disables forced preemptions (pick perturbation may remain).
	Quantum rtime.Duration

	// PickProb is the per-scheduling-pass probability that the
	// deterministic scheduler's choice is replaced by a uniformly
	// random runnable job (engines with ranked dispatch shuffle the
	// ranking instead). Zero disables pick perturbation.
	PickProb float64
}

// Active reports whether the plan can perturb anything. Nil-safe;
// every hook below short-circuits through it, which is what makes a
// nil or Off plan reproduce the deterministic schedule bit for bit.
func (p *Plan) Active() bool {
	if p == nil || p.Dist == Off {
		return false
	}
	return p.Quantum > 0 || p.PickProb > 0
}

// Decision hash streams. Each decision kind draws from its own stream
// so that e.g. enabling pick perturbation never changes the quanta.
const (
	streamStep uint64 = 1 + iota
	streamPick
	streamPickIdx
	streamSwap
)

// splitmix64 is the finalizer of Vigna's SplitMix64; a single pass is
// a strong enough mixer for decision hashing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash folds the seed, a stream tag, and the decision coordinates.
func (p *Plan) hash(stream uint64, ids ...int64) uint64 {
	h := splitmix64(uint64(p.Seed) ^ stream*0x9e3779b97f4a7c15)
	for _, id := range ids {
		h = splitmix64(h ^ uint64(id))
	}
	return h
}

// unit maps a hash to [0,1) with 53 bits of precision.
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// stepCapFactor bounds a Geometric draw at stepCapFactor·Quantum so a
// single tail draw cannot push a forced preemption past any practical
// horizon (the geometric tail is unbounded in principle).
const stepCapFactor = 64

// Step returns the forced-preemption quantum for a dispatch made on
// cpu at virtual tick, or 0 when the plan injects none. The draw is a
// pure function of (seed, cpu, tick): every engine schedules the same
// preemption point for a dispatch at the same coordinates.
func (p *Plan) Step(cpu int, tick rtime.Time) rtime.Duration {
	if !p.Active() || p.Quantum <= 0 {
		return 0
	}
	h := p.hash(streamStep, int64(cpu), int64(tick))
	if p.Dist == Uniform {
		return 1 + rtime.Duration(h%uint64(p.Quantum))
	}
	// Geometric via inverse CDF: ⌈ln(1-u)/ln(1-1/Q)⌉ has mean Q.
	q := float64(p.Quantum)
	d := math.Ceil(math.Log1p(-unit(h)) / math.Log1p(-1/q))
	step := rtime.Duration(d)
	if step < 1 {
		step = 1
	}
	if lim := stepCapFactor * p.Quantum; step > lim {
		step = lim
	}
	return step
}

// Pick reports whether the scheduling pass on cpu at tick replaces the
// deterministic choice, and if so with which uniform index among the n
// runnable candidates. Fires with probability PickProb per pass.
func (p *Plan) Pick(cpu int, tick rtime.Time, n int) (int, bool) {
	if !p.Active() || p.PickProb <= 0 || n <= 0 {
		return 0, false
	}
	if unit(p.hash(streamPick, int64(cpu), int64(tick))) >= p.PickProb {
		return 0, false
	}
	return int(p.hash(streamPickIdx, int64(cpu), int64(tick)) % uint64(n)), true
}

// Swap returns the uniform Fisher–Yates partner in [0, i] for position
// i of a ranked list being shuffled by a picked pass on cpu at tick
// (the global engine's ranked-dispatch analogue of Pick).
func (p *Plan) Swap(cpu int, tick rtime.Time, i int) int {
	if !p.Active() || i <= 0 {
		return 0
	}
	return int(p.hash(streamSwap, int64(cpu), int64(tick), int64(i)) % uint64(i+1))
}

// DefaultQuantum and DefaultPickProb shape the presets: quanta around
// the canonical workload's access cost scale (so forced preemptions
// land inside accesses often enough to cause retries) and a pick rate
// that perturbs without drowning the deterministic policy.
const (
	DefaultQuantum  = 200 * rtime.Microsecond
	DefaultPickProb = 0.25
)

// Presets. Both leave Seed 0 — callers reseed via ParsePlan's seed key
// or rtsim's -stoch-seed.
func Uni() *Plan {
	return &Plan{Dist: Uniform, Quantum: DefaultQuantum, PickProb: DefaultPickProb}
}

func Geo() *Plan {
	return &Plan{Dist: Geometric, Quantum: DefaultQuantum, PickProb: DefaultPickProb}
}

// ParsePlan builds a plan from a specification string: the presets
// "off", "uni", and "geo", optionally followed by comma-separated
// key=value overrides. Keys: seed, quantumus (ticks), pickp.
// Example: "geo,seed=7,quantumus=100,pickp=0.5".
func ParsePlan(s string) (*Plan, error) {
	p := &Plan{}
	parts := strings.Split(s, ",")
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "=") {
			if i != 0 {
				return nil, fmt.Errorf("%w: preset %q must come first in %q", ErrPlan, part, s)
			}
			switch part {
			case "off":
				p = &Plan{}
			case "uni":
				p = Uni()
			case "geo":
				p = Geo()
			default:
				return nil, fmt.Errorf("%w: unknown preset %q (want off, uni, or geo)", ErrPlan, part)
			}
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("%w: seed=%q is not an integer", ErrPlan, val)
			}
		case "quantumus":
			var n int64
			n, err = strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				err = fmt.Errorf("%w: quantumus=%q is not a non-negative integer", ErrPlan, val)
			}
			p.Quantum = rtime.Duration(n)
		case "pickp":
			var v float64
			v, err = strconv.ParseFloat(val, 64)
			if err != nil || v < 0 || v > 1 {
				err = fmt.Errorf("%w: pickp=%q is not a probability", ErrPlan, val)
			}
			p.PickProb = v
		default:
			return nil, fmt.Errorf("%w: unknown key %q in %q", ErrPlan, key, s)
		}
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}
