package report

import (
	"html/template"
	"io"
	"strconv"
	"strings"

	"repro/internal/rtime"
)

// The HTML report is a single self-contained file: stdlib templates,
// inline SVG, CSS custom properties for light/dark. Every value shown
// in a chart also appears in a table on the same page, so no reading
// depends on color or hover alone.

// tile is one headline stat.
type tile struct {
	Label string
	Value string
}

// distView is a distribution chart plus its digest row.
type distView struct {
	Title   string
	Chart   Chart
	Summary []string // digest aligned with distSummaryCols
	Bounded bool
	Held    bool // observed max ≤ bound
}

// runView is one run section.
type runView struct {
	Name       string
	Caption    string
	Tiles      []tile
	Dists      []distView
	Charts     []Chart // series charts
	Pred       *Chart  // predicted-vs-observed throughput overlay
	PredNote   string  // fitted model + relative error caption
	OpTable    *Table  // per-operation retry-tail panel
	Tasks      *Table
	Violations []string
}

// figView is one figure section: table always, chart when the rows are
// numeric over a shared x.
type figView struct {
	Table *Table
	Chart *Chart
	Note  string
}

// page is the template root.
type page struct {
	Title    string
	Subtitle string
	Summary  *Table
	Runs     []runView
	Figs     []figView
}

// parseCell reads a numeric table cell, accepting the sweep tables'
// "mean ± ci" form by taking the mean.
func parseCell(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if i := strings.IndexAny(s, "±"); i >= 0 {
		s = strings.TrimSpace(s[:i])
	}
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// figChart derives a line chart from a figure table when its first
// column and at least one further column are numeric in every row.
// At most four series are charted; the rest stay table-only (noted in
// the caption rather than silently dropped).
func figChart(t *Table) (*Chart, string) {
	if len(t.Rows) < 2 || len(t.Columns) < 2 {
		return nil, ""
	}
	xs := make([]float64, len(t.Rows))
	for i, row := range t.Rows {
		v, ok := parseCell(row[0])
		if !ok {
			return nil, ""
		}
		xs[i] = v
	}
	var ser []LineSeries
	var skipped []string
	for j := 1; j < len(t.Columns); j++ {
		vals := make([]float64, len(t.Rows))
		ok := true
		for i, row := range t.Rows {
			if j >= len(row) {
				ok = false
				break
			}
			v, numOK := parseCell(row[j])
			if !numOK {
				ok = false
				break
			}
			vals[i] = v
		}
		if !ok {
			continue
		}
		if len(ser) < len(seriesColors) {
			ser = append(ser, LineSeries{Name: t.Columns[j], Vals: vals})
		} else {
			skipped = append(skipped, t.Columns[j])
		}
	}
	if len(ser) == 0 {
		return nil, ""
	}
	c := LineChart(t.Title, xs, ser, t.Columns[0], "")
	note := ""
	if len(skipped) > 0 {
		note = "table-only columns (chart caps at 4 series): " + strings.Join(skipped, ", ")
	}
	return &c, note
}

// seriesCharts renders the run's virtual-time tracks: mean levels and
// per-window event counts.
func (r *Run) seriesCharts() []Chart {
	s := r.Series
	if s == nil || len(s.Points) == 0 {
		return nil
	}
	xs := make([]float64, len(s.Points))
	level := []LineSeries{
		{Name: "ready (mean jobs)", Vals: make([]float64, len(s.Points))},
		{Name: "busy (mean CPUs)", Vals: make([]float64, len(s.Points))},
	}
	events := []LineSeries{
		{Name: "retries", Vals: make([]float64, len(s.Points))},
		{Name: "blocks", Vals: make([]float64, len(s.Points))},
		{Name: "preempts", Vals: make([]float64, len(s.Points))},
		{Name: "completions", Vals: make([]float64, len(s.Points))},
	}
	for i, p := range s.Points {
		xs[i] = float64(p.Start) / 1000 // ms
		if dt := int64(s.Covered(i)); dt > 0 {
			level[0].Vals[i] = float64(p.ReadyTicks) / float64(dt)
			level[1].Vals[i] = float64(p.BusyTicks) / float64(dt)
		}
		events[0].Vals[i] = float64(p.Retries)
		events[1].Vals[i] = float64(p.Blocks)
		events[2].Vals[i] = float64(p.Preempts)
		events[3].Vals[i] = float64(p.Completions)
	}
	return []Chart{
		LineChart("queue depth and processor occupancy over virtual time", xs, level, "ms", "level"),
		LineChart("events per window over virtual time", xs, events, "ms", "events"),
	}
}

// predChart renders the predicted-vs-observed commits-per-window
// overlay; nil when the run has no prediction or nothing committed.
func predChart(run *Run) (*Chart, string) {
	o := run.Pred
	if o == nil || o.Fit.Windows == 0 {
		return nil, ""
	}
	xs := make([]float64, len(o.Points))
	ser := []LineSeries{
		{Name: "observed commits", Vals: make([]float64, len(o.Points))},
		{Name: "predicted commits", Vals: make([]float64, len(o.Points))},
	}
	for i, p := range o.Points {
		xs[i] = float64(p.Start) / 1000 // ms
		ser[0].Vals[i] = float64(p.Observed)
		ser[1].Vals[i] = p.Predicted
	}
	c := LineChart("throughput: observed vs analytic prediction", xs, ser, "ms", "commits")
	note := "fit busy/commit = " + fmtFloat(o.Fit.Alpha) + " + " + fmtFloat(o.Fit.Beta) +
		"·(retries/commit) over " + strconv.Itoa(o.Fit.Windows) +
		" windows · relative error " + fmtFloat(o.RelErr)
	return &c, note
}

// opTable renders the per-operation retry-tail panel.
func opTable(run *Run) *Table {
	if len(run.OpDists) == 0 {
		return nil
	}
	t := &Table{
		Title:   "per-operation retry tail (attempts per committed access)",
		Columns: []string{"op", "ops", "mean", "p95", "p99", "p999", "max", "fail rate"},
	}
	for i := range run.OpDists {
		d := &run.OpDists[i]
		s := d.Attempts.Summarize()
		t.Rows = append(t.Rows, []string{
			d.Name, strconv.FormatInt(d.Ops, 10), fmtFloat(s.Mean),
			strconv.FormatInt(s.P95, 10), strconv.FormatInt(s.P99, 10),
			strconv.FormatInt(s.P999, 10), strconv.FormatInt(s.Max, 10),
			fmtFloat(d.FailureRate()),
		})
	}
	return t
}

// buildPage assembles the template model.
func (r *Report) buildPage() *page {
	p := &page{
		Title:    r.Title,
		Subtitle: "workload " + r.Workload + " · profile " + r.Profile,
		Summary:  r.SummaryTable(),
	}
	for i := range r.Runs {
		run := &r.Runs[i]
		caption := "sim " + run.Sim + " · " + run.Mode + " · " + strconv.Itoa(len(run.Seeds)) + " seed(s)"
		if run.Dropped > 0 {
			caption += " · " + strconv.FormatInt(run.Dropped, 10) + " event(s) dropped by bounded recording"
		}
		rv := runView{
			Name:    run.Name,
			Caption: caption,
			Tiles: []tile{
				{"jobs", strconv.FormatInt(run.Jobs, 10)},
				{"completed", strconv.FormatInt(run.Completed, 10)},
				{"aborted", strconv.FormatInt(run.Aborted, 10)},
				{"violations", strconv.Itoa(len(run.Violations()))},
			},
			Charts:     run.seriesCharts(),
			OpTable:    opTable(run),
			Tasks:      taskTable(run),
			Violations: run.Violations(),
		}
		rv.Pred, rv.PredNote = predChart(run)
		for _, d := range run.Dists {
			s := d.Hist.Summarize()
			bound := "-"
			if d.Bound >= 0 {
				bound = strconv.FormatInt(d.Bound, 10)
			}
			rv.Dists = append(rv.Dists, distView{
				Title: d.Title,
				Chart: HistChart(d),
				Summary: []string{
					strconv.FormatInt(s.N, 10), fmtFloat(s.Mean),
					strconv.FormatInt(s.P50, 10), strconv.FormatInt(s.P90, 10),
					strconv.FormatInt(s.P95, 10), strconv.FormatInt(s.P99, 10),
					strconv.FormatInt(s.P999, 10),
					strconv.FormatInt(s.Max, 10), bound,
				},
				Bounded: d.Bound >= 0,
				Held:    d.Bound >= 0 && s.Max <= d.Bound,
			})
		}
		p.Runs = append(p.Runs, rv)
	}
	for i := range r.Figs {
		f := &r.Figs[i]
		chart, note := figChart(f)
		p.Figs = append(p.Figs, figView{Table: f, Chart: chart, Note: note})
	}
	return p
}

// taskTable renders the per-task bound comparison as a Table.
func taskTable(run *Run) *Table {
	if run.Check == nil || len(run.Check.Tasks) == 0 {
		return nil
	}
	t := &Table{
		Title:   "per-task observed extremes vs analytical bounds",
		Columns: []string{"task", "jobs", "completed", "max retries", "retry bound", "max sojourn", "sojourn bound"},
	}
	for _, tr := range run.Check.Tasks {
		rb, sb := "-", "-"
		if tr.RetryBound >= 0 {
			rb = strconv.FormatInt(tr.RetryBound, 10)
		}
		if tr.SojournBound >= 0 {
			sb = rtime.Duration(tr.SojournBound).String()
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(tr.Task), strconv.Itoa(tr.Jobs), strconv.Itoa(tr.Completed),
			strconv.FormatInt(tr.MaxRetries, 10), rb,
			rtime.Duration(tr.MaxSojourn).String(), sb,
		})
	}
	return t
}

// htmlTmpl is the whole page. Colors are the validated reference
// palette: categorical slots in fixed order, status-critical reserved
// for bound lines and violations, chrome inks recessive, dark mode a
// selected set of steps rather than an automatic flip.
var htmlTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{{.Title}}</title>
<style>
.viz-root {
  color-scheme: light;
  --surface:    #fcfcfb;
  --plane:      #f9f9f7;
  --ink:        #0b0b0b;
  --ink-2:      #52514e;
  --ink-muted:  #898781;
  --grid:       #e1e0d9;
  --axis:       #c3c2b7;
  --border:     rgba(11,11,11,0.10);
  --series-1:   #2a78d6;
  --series-2:   #eb6834;
  --series-3:   #1baf7a;
  --series-4:   #eda100;
  --status-critical: #d03b3b;
  --status-good-text: #006300;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface:    #1a1a19;
    --plane:      #0d0d0d;
    --ink:        #ffffff;
    --ink-2:      #c3c2b7;
    --ink-muted:  #898781;
    --grid:       #2c2c2a;
    --axis:       #383835;
    --border:     rgba(255,255,255,0.10);
    --series-1:   #3987e5;
    --series-2:   #d95926;
    --series-3:   #199e70;
    --series-4:   #c98500;
    --status-good-text: #0ca30c;
  }
}
.viz-root { margin: 0; background: var(--plane); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif; }
main { max-width: 820px; margin: 0 auto; padding: 24px 16px 64px; }
h1 { font-size: 22px; margin: 0 0 2px; }
h2 { font-size: 17px; margin: 36px 0 4px; }
h3 { font-size: 14px; margin: 20px 0 4px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.caption { color: var(--ink-muted); font-size: 12px; margin: 0 0 10px; }
.card { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px; margin: 10px 0; overflow-x: auto; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin: 10px 0; }
.tile { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px; min-width: 96px; }
.tile .v { font-size: 22px; font-weight: 600; }
.tile .l { color: var(--ink-muted); font-size: 12px; }
table { border-collapse: collapse; font-size: 12.5px; width: 100%; }
th { text-align: left; color: var(--ink-2); font-weight: 600;
  border-bottom: 1px solid var(--axis); padding: 4px 10px 4px 0; }
td { border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0;
  font-variant-numeric: tabular-nums; }
tr:last-child td { border-bottom: none; }
.legend { display: flex; flex-wrap: wrap; gap: 14px; margin: 6px 0 2px;
  font-size: 12px; color: var(--ink-2); }
.legend .chip { display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
.chip.c-series-1 { background: var(--series-1); }
.chip.c-series-2 { background: var(--series-2); }
.chip.c-series-3 { background: var(--series-3); }
.chip.c-series-4 { background: var(--series-4); }
.chip.c-status-critical { background: var(--status-critical); }
.ok { color: var(--status-good-text); font-weight: 600; }
.viol { color: var(--status-critical); font-weight: 600; }
ul.viol-list { margin: 6px 0; padding-left: 20px; color: var(--status-critical); }
svg { max-width: 100%; height: auto; display: block; }
</style>
</head>
<body class="viz-root">
<main>
<h1>{{.Title}}</h1>
<p class="sub">{{.Subtitle}}</p>

<h2>Summary</h2>
<p class="caption">{{.Summary.Title}} — the table view of every chart below</p>
<div class="card"><table>
<tr>{{range .Summary.Columns}}<th>{{.}}</th>{{end}}</tr>
{{range .Summary.Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>
{{end}}</table></div>

{{range .Runs}}
<h2 id="{{.Name}}">{{.Name}}</h2>
<p class="caption">{{.Caption}}</p>
<div class="tiles">{{range .Tiles}}<div class="tile"><div class="v">{{.Value}}</div><div class="l">{{.Label}}</div></div>{{end}}</div>
{{if .Violations}}<p class="viol">bound violations</p><ul class="viol-list">{{range .Violations}}<li>{{.}}</li>{{end}}</ul>{{end}}
{{range .Dists}}
<h3>{{.Title}}{{if .Bounded}}{{if .Held}} <span class="ok">· bound held</span>{{else}} <span class="viol">· bound exceeded</span>{{end}}{{end}}</h3>
<div class="card">
<div class="legend">{{range .Chart.Legend}}<span><span class="chip c-{{.Class}}"></span>{{.Label}}</span>{{end}}</div>
{{.Chart.SVG}}
<table><tr><th>n</th><th>mean</th><th>p50</th><th>p90</th><th>p95</th><th>p99</th><th>p999</th><th>max</th><th>bound</th></tr>
<tr>{{range .Summary}}<td>{{.}}</td>{{end}}</tr></table>
</div>
{{end}}
{{range .Charts}}
<div class="card">
<div class="legend">{{range .Legend}}<span><span class="chip c-{{.Class}}"></span>{{.Label}}</span>{{end}}</div>
{{.SVG}}
</div>
{{end}}
{{if .Pred}}
<h3>throughput: observed vs analytic prediction</h3>
<div class="card">
<div class="legend">{{range .Pred.Legend}}<span><span class="chip c-{{.Class}}"></span>{{.Label}}</span>{{end}}</div>
{{.Pred.SVG}}
<p class="caption">{{.PredNote}}</p>
</div>
{{end}}
{{if .OpTable}}
<h3>{{.OpTable.Title}}</h3>
<div class="card"><table>
<tr>{{range .OpTable.Columns}}<th>{{.}}</th>{{end}}</tr>
{{range .OpTable.Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>
{{end}}</table></div>
{{end}}
{{if .Tasks}}
<h3>{{.Tasks.Title}}</h3>
<div class="card"><table>
<tr>{{range .Tasks.Columns}}<th>{{.}}</th>{{end}}</tr>
{{range .Tasks.Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>
{{end}}</table></div>
{{end}}
{{end}}

{{range .Figs}}
<h2 id="{{.Table.ID}}">{{.Table.ID}} — {{.Table.Title}}</h2>
{{if .Table.Note}}<p class="caption">{{.Table.Note}}</p>{{end}}
{{if .Chart}}
<div class="card">
<div class="legend">{{range .Chart.Legend}}<span><span class="chip c-{{.Class}}"></span>{{.Label}}</span>{{end}}</div>
{{.Chart.SVG}}
{{if .Note}}<p class="caption">{{.Note}}</p>{{end}}
</div>
{{end}}
<div class="card"><table>
<tr>{{range .Table.Columns}}<th>{{.}}</th>{{end}}</tr>
{{range .Table.Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>
{{end}}</table></div>
{{end}}

</main>
</body>
</html>
`))

// WriteHTML renders the report as one self-contained page.
func (r *Report) WriteHTML(w io.Writer) error {
	return htmlTmpl.Execute(w, r.buildPage())
}
