// Package report renders a simulated run or sweep into figure-grade,
// byte-deterministic artifacts: per-distribution CSV files, virtual-time
// series CSV, per-task bound tables, and a self-contained HTML report
// with inline SVG charts (stdlib html/template only — no external
// assets, open the file anywhere). The report is the aggregation tier
// of the observability stack: internal/trace records events,
// internal/trace/span folds them per job, internal/metrics/series per
// window, internal/metrics/hist per distribution — this package lays
// those views side by side with the paper's analytical bounds
// (Theorem 2's retry bound drawn over the observed retry histogram,
// Theorem 3's sojourn composition next to the sojourn tail).
//
// Everything rendered here is a pure function of the Report value:
// fixed column orders, fixed float formatting, no map iteration, no
// timestamps — equal inputs yield byte-identical files for any worker
// count upstream.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics/hist"
	"repro/internal/metrics/predict"
	"repro/internal/metrics/series"
	"repro/internal/rtime"
	"repro/internal/trace/check"
)

// Dist is one observed distribution with an optional analytical bound
// overlay.
type Dist struct {
	Name  string // file/column-safe slug, e.g. "retries_per_job"
	Title string // chart heading
	Unit  string // axis unit, e.g. "retries", "µs"
	Hist  *hist.Hist

	// Bound is the analytic overlay (Theorem 2 retry bound, Theorem 3
	// sojourn bound), -1 when no bound applies to this run.
	Bound      int64
	BoundLabel string
}

// OpDist is one operation kind's retry telemetry (internal/metrics/ops
// rendered): the distribution of attempts a committed access needed and
// of the CAS failures behind them. Kept apart from Dists so the
// cross-run summary columns stay fixed while the per-object panel
// varies with the workload.
type OpDist struct {
	Name     string // slug: "all" or "obj<N>"
	Title    string
	Ops      int64 // committed operations
	Attempts *hist.Hist
	Failures *hist.Hist
}

// FailureRate is mean CAS failures per committed operation.
func (d *OpDist) FailureRate() float64 {
	if d.Ops == 0 {
		return 0
	}
	return float64(d.Failures.Sum()) / float64(d.Ops)
}

// Run is one simulated configuration's section of the report.
type Run struct {
	Name  string // slug, e.g. "uni-lockfree"
	Sim   string // uni | multi | global
	Mode  string // lock-free | lock-based
	Seeds []int64

	Jobs      int64
	Completed int64
	Aborted   int64
	Shed      int64 // admission-control drops (subset of Aborted), fault runs only

	// Dropped counts trace events lost to bounded recording while this
	// run was folded (a capped trace.Recorder or an obs flight ring).
	// Zero when every fold saw the complete stream — truncation is
	// surfaced, never silent.
	Dropped int64

	Dists  []Dist
	Series *series.Series
	Check  *check.Report // per-task observed extremes vs bounds

	// OpDists is the per-operation retry-tail panel ("all" first, then
	// per object ascending); empty when the run recorded no commits.
	OpDists []OpDist
	// Pred is the analytic throughput overlay fitted from the run's
	// series (nil when no series was folded).
	Pred *predict.Overlay
}

// Violations renders the run's bound violations (empty when all hold
// or no bounds were evaluated).
func (r *Run) Violations() []string {
	if r.Check == nil {
		return nil
	}
	out := make([]string, len(r.Check.Violations))
	for i, v := range r.Check.Violations {
		out[i] = v.String()
	}
	return out
}

// Table is a generic figure table (the renderer-side twin of
// experiment.Table, kept here so experiment can depend on report and
// not the other way around).
type Table struct {
	ID      string
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// Report is a full run-or-sweep report.
type Report struct {
	Title    string
	Profile  string
	Workload string

	Runs []Run
	Figs []Table
}

// fmtFloat renders v with four significant decimals, the fixed
// precision of every derived float in the report.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// distSummaryCols are the per-distribution summary columns.
var distSummaryCols = []string{"n", "mean", "p50", "p90", "p95", "p99", "p999", "max", "bound"}

// SummaryTable builds the cross-run digest: one row per run, the
// p50/p95/p99/max tail statistics next to each mean, and the analytic
// bound column ("-" when not applicable).
func (r *Report) SummaryTable() *Table {
	t := &Table{
		ID:      "summary",
		Title:   "per-run distribution digest",
		Columns: []string{"run", "sim", "mode", "seeds", "jobs", "completed", "aborted", "violations"},
	}
	if len(r.Runs) > 0 {
		for _, d := range r.Runs[0].Dists {
			for _, c := range distSummaryCols {
				t.Columns = append(t.Columns, d.Name+"_"+c)
			}
		}
	}
	for i := range r.Runs {
		run := &r.Runs[i]
		row := []string{
			run.Name, run.Sim, run.Mode,
			strconv.Itoa(len(run.Seeds)),
			strconv.FormatInt(run.Jobs, 10),
			strconv.FormatInt(run.Completed, 10),
			strconv.FormatInt(run.Aborted, 10),
			strconv.Itoa(len(run.Violations())),
		}
		for _, d := range run.Dists {
			s := d.Hist.Summarize()
			bound := "-"
			if d.Bound >= 0 {
				bound = strconv.FormatInt(d.Bound, 10)
			}
			row = append(row,
				strconv.FormatInt(s.N, 10), fmtFloat(s.Mean),
				strconv.FormatInt(s.P50, 10), strconv.FormatInt(s.P90, 10),
				strconv.FormatInt(s.P95, 10), strconv.FormatInt(s.P99, 10),
				strconv.FormatInt(s.P999, 10),
				strconv.FormatInt(s.Max, 10), bound,
			)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// WriteCSV renders a table in the repo's standard CSV shape: a
// comment-style id/title record, the header, then rows.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"# " + t.ID, t.Title}); err != nil {
		return err
	}
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// histCSV renders one distribution's buckets.
func histCSV(w io.Writer, d Dist) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"lo", "hi", "count", "cum_count", "cum_frac"}); err != nil {
		return err
	}
	n := d.Hist.N()
	var cum int64
	for _, b := range d.Hist.Buckets() {
		cum += b.Count
		lo := strconv.FormatInt(b.Lo, 10)
		if b.Lo == math.MinInt64 {
			lo = "-inf"
		}
		frac := "0.0000"
		if n > 0 {
			frac = fmtFloat(float64(cum) / float64(n))
		}
		if err := cw.Write([]string{
			lo, strconv.FormatInt(b.Hi, 10),
			strconv.FormatInt(b.Count, 10), strconv.FormatInt(cum, 10), frac,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// tasksCSV renders the per-task observed extremes against their
// analytical bounds.
func tasksCSV(w io.Writer, rep *check.Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"task", "jobs", "completed", "max_retries", "retry_bound",
		"max_sojourn_us", "sojourn_bound_us",
	}); err != nil {
		return err
	}
	for _, tr := range rep.Tasks {
		rb, sb := "-", "-"
		if tr.RetryBound >= 0 {
			rb = strconv.FormatInt(tr.RetryBound, 10)
		}
		if tr.SojournBound >= 0 {
			sb = strconv.FormatInt(tr.SojournBound.Micros(), 10)
		}
		if err := cw.Write([]string{
			strconv.Itoa(tr.Task), strconv.Itoa(tr.Jobs), strconv.Itoa(tr.Completed),
			strconv.FormatInt(tr.MaxRetries, 10), rb,
			strconv.FormatInt(tr.MaxSojourn.Micros(), 10), sb,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// opsCSV renders the per-operation retry-tail digest: one attempts row
// and one failures row per operation kind.
func opsCSV(w io.Writer, dists []OpDist) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"op", "kind", "ops", "n", "mean", "p50", "p90", "p95", "p99", "p999", "max", "fail_rate",
	}); err != nil {
		return err
	}
	row := func(op string, kind string, ops int64, h *hist.Hist, rate float64) []string {
		s := h.Summarize()
		return []string{
			op, kind, strconv.FormatInt(ops, 10),
			strconv.FormatInt(s.N, 10), fmtFloat(s.Mean),
			strconv.FormatInt(s.P50, 10), strconv.FormatInt(s.P90, 10),
			strconv.FormatInt(s.P95, 10), strconv.FormatInt(s.P99, 10),
			strconv.FormatInt(s.P999, 10), strconv.FormatInt(s.Max, 10),
			fmtFloat(rate),
		}
	}
	for i := range dists {
		d := &dists[i]
		if err := cw.Write(row(d.Name, "attempts", d.Ops, d.Attempts, d.FailureRate())); err != nil {
			return err
		}
		if err := cw.Write(row(d.Name, "failures", d.Ops, d.Failures, d.FailureRate())); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// predictedCSV renders the throughput overlay: the fitted model in a
// comment record, then one row per window.
func predictedCSV(w io.Writer, o *predict.Overlay) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"# predictor",
		"alpha=" + fmtFloat(o.Fit.Alpha) + " beta=" + fmtFloat(o.Fit.Beta) +
			" windows=" + strconv.Itoa(o.Fit.Windows) + " rel_err=" + fmtFloat(o.RelErr),
	}); err != nil {
		return err
	}
	if err := cw.Write([]string{"start_us", "retries_per_commit", "observed_commits", "predicted_commits"}); err != nil {
		return err
	}
	for _, p := range o.Points {
		if err := cw.Write([]string{
			strconv.FormatInt(int64(p.Start), 10), fmtFloat(p.X),
			strconv.FormatInt(p.Observed, 10), fmtFloat(p.Predicted),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// File is one rendered artifact: a name and its exact bytes. The
// in-memory form lets consumers that never touch the filesystem (the
// rtsimd serving daemon) hand out the same bytes WriteCSVDir writes.
type File struct {
	Name string
	Data []byte
}

// CSVFiles renders every CSV artifact in memory and returns them
// sorted by name. Contents and the name list are byte-deterministic;
// WriteCSVDir writes exactly these files.
func (r *Report) CSVFiles() ([]File, error) {
	var files []File
	writeFile := func(name string, fill func(io.Writer) error) error {
		var b strings.Builder
		if err := fill(&b); err != nil {
			return fmt.Errorf("report: %s: %w", name, err)
		}
		files = append(files, File{Name: name, Data: []byte(b.String())})
		return nil
	}
	summary := r.SummaryTable()
	if err := writeFile("summary.csv", summary.WriteCSV); err != nil {
		return nil, err
	}
	for i := range r.Runs {
		run := &r.Runs[i]
		for _, d := range run.Dists {
			d := d
			if err := writeFile(run.Name+"_hist_"+d.Name+".csv", func(w io.Writer) error {
				return histCSV(w, d)
			}); err != nil {
				return nil, err
			}
		}
		if run.Series != nil {
			if err := writeFile(run.Name+"_series.csv", run.Series.WriteCSV); err != nil {
				return nil, err
			}
		}
		if run.Check != nil {
			if err := writeFile(run.Name+"_tasks.csv", func(w io.Writer) error {
				return tasksCSV(w, run.Check)
			}); err != nil {
				return nil, err
			}
		}
		if len(run.OpDists) > 0 {
			if err := writeFile(run.Name+"_ops.csv", func(w io.Writer) error {
				return opsCSV(w, run.OpDists)
			}); err != nil {
				return nil, err
			}
		}
		if run.Pred != nil {
			if err := writeFile(run.Name+"_predicted.csv", func(w io.Writer) error {
				return predictedCSV(w, run.Pred)
			}); err != nil {
				return nil, err
			}
		}
	}
	for i := range r.Figs {
		f := &r.Figs[i]
		if err := writeFile(f.ID+".csv", f.WriteCSV); err != nil {
			return nil, err
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Name < files[j].Name })
	return files, nil
}

// WriteCSVDir writes every CSV artifact into dir (created if missing)
// and returns the sorted file names. File contents and the name list
// are byte-deterministic.
func (r *Report) WriteCSVDir(dir string) ([]string, error) {
	files, err := r.CSVFiles()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names := make([]string, len(files))
	for i, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.Name), f.Data, 0o644); err != nil {
			return nil, err
		}
		names[i] = f.Name
	}
	return names, nil
}

// WriteText renders the -metrics digest: the summary statistics of
// every run, its series totals, and any bound violations — one
// deterministic text block.
func (r *Report) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics: %s workload=%s profile=%s runs=%d\n", r.Title, r.Workload, r.Profile, len(r.Runs))
	for i := range r.Runs {
		run := &r.Runs[i]
		shed := ""
		if run.Shed > 0 {
			shed = fmt.Sprintf(" shed=%d", run.Shed)
		}
		dropped := ""
		if run.Dropped > 0 {
			dropped = fmt.Sprintf(" dropped=%d", run.Dropped)
		}
		fmt.Fprintf(&b, "run %s sim=%s mode=%s seeds=%d jobs=%d completed=%d aborted=%d%s%s violations=%d\n",
			run.Name, run.Sim, run.Mode, len(run.Seeds), run.Jobs, run.Completed, run.Aborted, shed, dropped, len(run.Violations()))
		for _, d := range run.Dists {
			s := d.Hist.Summarize()
			bound := "-"
			if d.Bound >= 0 {
				bound = strconv.FormatInt(d.Bound, 10)
			}
			fmt.Fprintf(&b, "  %-16s n=%d mean=%s p50=%d p90=%d p95=%d p99=%d p999=%d max=%d bound=%s\n",
				d.Name, s.N, fmtFloat(s.Mean), s.P50, s.P90, s.P95, s.P99, s.P999, s.Max, bound)
		}
		for i := range run.OpDists {
			d := &run.OpDists[i]
			s := d.Attempts.Summarize()
			fmt.Fprintf(&b, "  op %-13s ops=%d attempts mean=%s p95=%d p99=%d p999=%d max=%d fail_rate=%s\n",
				d.Name, d.Ops, fmtFloat(s.Mean), s.P95, s.P99, s.P999, s.Max, fmtFloat(d.FailureRate()))
		}
		if run.Pred != nil {
			fmt.Fprintf(&b, "  %-16s alpha=%s beta=%s windows=%d rel_err=%s\n",
				"predictor", fmtFloat(run.Pred.Fit.Alpha), fmtFloat(run.Pred.Fit.Beta),
				run.Pred.Fit.Windows, fmtFloat(run.Pred.RelErr))
		}
		if run.Series != nil {
			tot := run.Series.Totals()
			fmt.Fprintf(&b, "  %-16s window=%s windows=%d cpus=%d sched_passes=%d sched_ops=%d preempts=%d blocks=%d\n",
				"series", rtime.Duration(run.Series.Window).String(), len(run.Series.Points),
				run.Series.CPUs, tot.SchedPasses, tot.SchedOps, tot.Preempts, tot.Blocks)
		}
		for _, v := range run.Violations() {
			fmt.Fprintf(&b, "  VIOLATION %s\n", v)
		}
	}
	for i := range r.Figs {
		f := &r.Figs[i]
		fmt.Fprintf(&b, "fig %s rows=%d (%s)\n", f.ID, len(f.Rows), f.Title)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
