package report

import (
	"fmt"
	"html/template"
	"math"
	"strconv"
	"strings"

	"repro/internal/metrics/hist"
)

// Chart geometry shared by every figure: one y-axis, recessive
// hairline grid, thin marks. Colors are CSS custom properties declared
// in the HTML shell, so the same SVG adapts to light and dark mode.
const (
	chartW  = 720
	chartH  = 240
	marginL = 58
	marginR = 14
	marginT = 14
	marginB = 34
)

// LegendItem is one legend chip rendered by the HTML shell next to a
// chart (identity is never color-alone: the chip pairs swatch + label).
type LegendItem struct {
	Label string
	Color string // CSS custom property name, e.g. "--series-1"
}

// Class is the chip class suffix for the HTML shell (html/template's
// CSS filter rejects a raw custom-property name in a style attribute).
func (l LegendItem) Class() string { return strings.TrimPrefix(l.Color, "--") }

// Chart is a rendered SVG plus its legend.
type Chart struct {
	SVG    template.HTML
	Legend []LegendItem
}

// seriesColors is the fixed categorical assignment order (never
// cycled); charts in this report use at most four series.
var seriesColors = []string{"--series-1", "--series-2", "--series-3", "--series-4"}

// fmtCoord renders an SVG coordinate.
func fmtCoord(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// fmtTick renders an axis tick value compactly.
func fmtTick(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }

// niceStep returns a 1/2/5·10^k step that splits max into ≤ 5 ticks.
func niceStep(max float64) float64 {
	if max <= 0 {
		return 1
	}
	raw := max / 4
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch {
	case raw/mag <= 1:
		return mag
	case raw/mag <= 2:
		return 2 * mag
	case raw/mag <= 5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

// yTicks returns ascending tick values 0..max.
func yTicks(max float64) []float64 {
	step := niceStep(max)
	var ts []float64
	for v := 0.0; v <= max*(1+1e-9); v += step {
		ts = append(ts, v)
	}
	return ts
}

// esc escapes text destined for SVG content.
func esc(s string) string { return template.HTMLEscapeString(s) }

// svgOpen writes the SVG root with an accessible title.
func svgOpen(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img" aria-label="%s" font-family="system-ui, -apple-system, 'Segoe UI', sans-serif" font-size="11">`,
		chartW, chartH, chartW, chartH, esc(title))
	b.WriteByte('\n')
}

// axisFrame draws the grid, baseline, and y tick labels for a 0-based
// y scale, returning the y→pixel mapping.
func axisFrame(b *strings.Builder, yMax float64, yLabel string) func(float64) float64 {
	if yMax <= 0 {
		yMax = 1
	}
	plotH := float64(chartH - marginT - marginB)
	yPix := func(v float64) float64 { return float64(chartH-marginB) - v/yMax*plotH }
	for _, tv := range yTicks(yMax) {
		y := yPix(tv)
		fmt.Fprintf(b, `<line x1="%d" y1="%s" x2="%d" y2="%s" stroke="var(--grid)" stroke-width="1"/>`,
			marginL, fmtCoord(y), chartW-marginR, fmtCoord(y))
		fmt.Fprintf(b, `<text x="%d" y="%s" text-anchor="end" fill="var(--ink-muted)" style="font-variant-numeric: tabular-nums">%s</text>`,
			marginL-6, fmtCoord(y+3.5), fmtTick(tv))
		b.WriteByte('\n')
	}
	// Baseline above the grid hairlines.
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="var(--axis)" stroke-width="1"/>`,
		marginL, chartH-marginB, chartW-marginR, chartH-marginB)
	b.WriteByte('\n')
	if yLabel != "" {
		fmt.Fprintf(b, `<text x="%d" y="%d" fill="var(--ink-muted)">%s</text>`,
			marginL, marginT-2, esc(yLabel))
		b.WriteByte('\n')
	}
	return yPix
}

// bucketLabel renders one histogram bucket's range.
func bucketLabel(lo, hi int64, first bool) string {
	if first || lo == math.MinInt64 {
		return "≤" + strconv.FormatInt(hi, 10)
	}
	if lo+1 >= hi {
		return strconv.FormatInt(hi, 10)
	}
	return strconv.FormatInt(lo+1, 10) + "–" + strconv.FormatInt(hi, 10)
}

// HistChart renders a distribution as a bar chart, overlaying the
// analytic bound as a labeled reference line when one applies.
func HistChart(d Dist) Chart {
	var b strings.Builder
	svgOpen(&b, d.Title)
	buckets := d.Hist.Buckets()
	var maxCount int64
	for _, bk := range buckets {
		if bk.Count > maxCount {
			maxCount = bk.Count
		}
	}
	yPix := axisFrame(&b, float64(maxCount), "jobs")
	plotW := float64(chartW - marginL - marginR)
	n := len(buckets)
	if n > 0 {
		slot := plotW / float64(n)
		gap := 2.0 // surface gap between adjacent fills
		labelEvery := (n + 7) / 8
		for i, bk := range buckets {
			x := float64(marginL) + slot*float64(i)
			y := yPix(float64(bk.Count))
			h := float64(chartH-marginB) - y
			label := bucketLabel(bk.Lo, bk.Hi, i == 0)
			fmt.Fprintf(&b, `<g><title>%s %s: %d jobs</title><rect x="%s" y="%s" width="%s" height="%s" rx="2" fill="var(--series-1)"/></g>`,
				label, esc(d.Unit), bk.Count,
				fmtCoord(x+gap/2), fmtCoord(y), fmtCoord(slot-gap), fmtCoord(h))
			b.WriteByte('\n')
			if i%labelEvery == 0 {
				fmt.Fprintf(&b, `<text x="%s" y="%d" text-anchor="middle" fill="var(--ink-muted)" style="font-variant-numeric: tabular-nums">%s</text>`,
					fmtCoord(x+slot/2), chartH-marginB+14, esc(label))
				b.WriteByte('\n')
			}
		}
		if d.Bound >= 0 {
			bx := boundX(buckets, d.Bound, slot)
			label := fmt.Sprintf("%s = %d", d.BoundLabel, d.Bound)
			anchor, tx := "end", bx-5
			if bx < float64(marginL)+plotW/2 {
				anchor, tx = "start", bx+5
			}
			fmt.Fprintf(&b, `<line x1="%s" y1="%d" x2="%s" y2="%d" stroke="var(--status-critical)" stroke-width="1.5" stroke-dasharray="5 3"/>`,
				fmtCoord(bx), marginT, fmtCoord(bx), chartH-marginB)
			fmt.Fprintf(&b, `<text x="%s" y="%d" text-anchor="%s" fill="var(--status-critical)">%s</text>`,
				fmtCoord(tx), marginT+11, anchor, esc(label))
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end" fill="var(--ink-muted)">%s</text>`,
		chartW-marginR, chartH-marginB+28, esc(d.Unit))
	b.WriteString("</svg>")
	legend := []LegendItem{{Label: "observed jobs", Color: "--series-1"}}
	if d.Bound >= 0 {
		legend = append(legend, LegendItem{Label: d.BoundLabel, Color: "--status-critical"})
	}
	return Chart{SVG: template.HTML(b.String()), Legend: legend}
}

// boundX maps a bound value onto the categorical bucket axis:
// piecewise linear inside the bucket containing it, clamped to the
// right plot edge when the bound is beyond every observed bucket
// (over-plotting the bound off-scale would imply observed values near
// it; clamping with the printed value keeps the line honest).
func boundX(buckets []Bucket, bound int64, slot float64) float64 {
	for i, bk := range buckets {
		if bound <= bk.Hi {
			lo := bk.Lo
			frac := 1.0
			if lo != math.MinInt64 && bk.Hi > lo {
				frac = float64(bound-lo) / float64(bk.Hi-lo)
			}
			return float64(marginL) + slot*(float64(i)+frac)
		}
	}
	return float64(chartW - marginR - 1)
}

// Bucket aliases the histogram bucket type used by boundX.
type Bucket = hist.Bucket

// LineSeries is one line of a LineChart.
type LineSeries struct {
	Name string
	Vals []float64
}

// LineChart renders one or more series over a shared numeric x axis:
// 2px lines, ≥8px-target point markers with native tooltips, direct
// labels at line ends plus legend chips for identity.
func LineChart(title string, xs []float64, ser []LineSeries, xLabel, yLabel string) Chart {
	var b strings.Builder
	svgOpen(&b, title)
	var yMax float64
	for _, s := range ser {
		for _, v := range s.Vals {
			if v > yMax {
				yMax = v
			}
		}
	}
	yPix := axisFrame(&b, yMax, yLabel)
	xMin, xMax := xs[0], xs[0]
	for _, x := range xs {
		if x < xMin {
			xMin = x
		}
		if x > xMax {
			xMax = x
		}
	}
	if xMax <= xMin {
		xMax = xMin + 1
	}
	plotW := float64(chartW - marginL - marginR)
	xPix := func(v float64) float64 { return float64(marginL) + (v-xMin)/(xMax-xMin)*plotW }
	// x ticks: first, middle, last.
	for _, tv := range []float64{xMin, (xMin + xMax) / 2, xMax} {
		fmt.Fprintf(&b, `<text x="%s" y="%d" text-anchor="middle" fill="var(--ink-muted)" style="font-variant-numeric: tabular-nums">%s</text>`,
			fmtCoord(xPix(tv)), chartH-marginB+14, fmtTick(tv))
		b.WriteByte('\n')
	}
	if xLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end" fill="var(--ink-muted)">%s</text>`,
			chartW-marginR, chartH-marginB+28, esc(xLabel))
		b.WriteByte('\n')
	}
	legend := make([]LegendItem, 0, len(ser))
	for si, s := range ser {
		color := seriesColors[si%len(seriesColors)]
		legend = append(legend, LegendItem{Label: s.Name, Color: color})
		var pts []string
		for i, v := range s.Vals {
			if i >= len(xs) {
				break
			}
			pts = append(pts, fmtCoord(xPix(xs[i]))+","+fmtCoord(yPix(v)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="var(%s)" stroke-width="2" stroke-linejoin="round"/>`,
			strings.Join(pts, " "), color)
		b.WriteByte('\n')
		for i, v := range s.Vals {
			if i >= len(xs) {
				break
			}
			// 2.5px mark inside an invisible 9px hit target for the tooltip.
			fmt.Fprintf(&b, `<g><title>%s — %s %s: %s %s</title><circle cx="%s" cy="%s" r="4.5" fill="transparent"/><circle cx="%s" cy="%s" r="2.5" fill="var(%s)" stroke="var(--surface)" stroke-width="1"/></g>`,
				esc(s.Name), fmtTick(xs[i]), esc(xLabel), fmtTick(v), esc(yLabel),
				fmtCoord(xPix(xs[i])), fmtCoord(yPix(v)),
				fmtCoord(xPix(xs[i])), fmtCoord(yPix(v)), color)
			b.WriteByte('\n')
		}
		// Direct label at the line's end (≤ 4 series per chart by design).
		if len(s.Vals) > 0 && len(ser) > 1 {
			last := len(s.Vals) - 1
			if last >= len(xs) {
				last = len(xs) - 1
			}
			fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="end" fill="var(--ink)" font-size="10">%s</text>`,
				fmtCoord(xPix(xs[last])-6), fmtCoord(yPix(s.Vals[last])-5), esc(s.Name))
			b.WriteByte('\n')
		}
	}
	b.WriteString("</svg>")
	return Chart{SVG: template.HTML(b.String()), Legend: legend}
}
