package report_test

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics/hist"
	"repro/internal/metrics/series"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/trace/check"
)

// fabricate builds a small two-run report with every section populated.
func fabricate(t *testing.T) *report.Report {
	t.Helper()
	mkHist := func(vals ...int64) *hist.Hist {
		h := hist.Exp2(64)
		for _, v := range vals {
			h.Add(v)
		}
		return h
	}
	events := []trace.Event{
		{At: 0, Kind: trace.Arrival, Task: 0, Seq: 0, Object: -1},
		{At: 1, Kind: trace.Dispatch, Task: 0, Seq: 0, Object: -1},
		{At: 4, Kind: trace.Retry, Task: 0, Seq: 0, Object: 0},
		{At: 9, Kind: trace.Complete, Task: 0, Seq: 0, Object: -1},
	}
	s, err := series.FromEvents(events, 20, series.Config{Window: 5, CPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	run := func(name, sim, mode string, bound int64) report.Run {
		return report.Run{
			Name: name, Sim: sim, Mode: mode, Seeds: []int64{1, 2},
			Jobs: 10, Completed: 9, Aborted: 1,
			Dists: []report.Dist{
				{Name: "retries", Title: "retries per job", Unit: "retries",
					Hist: mkHist(0, 0, 1, 1, 2, 3), Bound: bound, BoundLabel: "theorem 2 bound"},
				{Name: "sojourn_us", Title: "sojourn time", Unit: "µs",
					Hist: mkHist(5, 9, 12, 30), Bound: -1},
			},
			Series: s,
			Check: &check.Report{Tasks: []check.TaskReport{
				{Task: 0, Jobs: 10, Completed: 9, MaxRetries: 3, RetryBound: bound,
					MaxSojourn: 30, SojournBound: 120},
			}},
		}
	}
	return &report.Report{
		Title: "canonical run", Profile: "quick", Workload: "two-component",
		Runs: []report.Run{
			run("uni-lockfree", "uni", "lock-free", 4),
			run("uni-lockbased", "uni", "lock-based", -1),
		},
		Figs: []report.Table{
			{ID: "fig9", Title: "retries vs load", Note: "synthetic",
				Columns: []string{"load", "lock-free", "lock-based"},
				Rows: [][]string{
					{"0.2", "1.1 ± 0.2", "0.0 ± 0.0"},
					{"0.5", "2.4 ± 0.3", "0.0 ± 0.0"},
					{"0.8", "4.9 ± 0.8", "0.0 ± 0.0"},
				}},
			{ID: "costs", Title: "non-numeric table stays table-only",
				Columns: []string{"name", "value"},
				Rows:    [][]string{{"S", "5µs"}, {"R", "150µs"}}},
		},
	}
}

func TestWriteCSVDirDeterministic(t *testing.T) {
	r := fabricate(t)
	render := func(dir string) map[string]string {
		names, err := r.WriteCSVDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]string{}
		for _, n := range names {
			b, err := os.ReadFile(filepath.Join(dir, n))
			if err != nil {
				t.Fatal(err)
			}
			out[n] = string(b)
		}
		return out
	}
	a := render(t.TempDir())
	b := render(t.TempDir())
	if len(a) != len(b) {
		t.Fatalf("file sets differ: %d vs %d", len(a), len(b))
	}
	for n, body := range a {
		if b[n] != body {
			t.Fatalf("%s differs between renders", n)
		}
	}
	for _, want := range []string{
		"summary.csv",
		"uni-lockfree_hist_retries.csv", "uni-lockfree_hist_sojourn_us.csv",
		"uni-lockfree_series.csv", "uni-lockfree_tasks.csv",
		"uni-lockbased_tasks.csv", "fig9.csv", "costs.csv",
	} {
		if _, ok := a[want]; !ok {
			t.Fatalf("missing artifact %s; have %v", want, keys(a))
		}
	}
	// Histogram CSV: first bucket lo renders as -inf, cum_frac ends at 1.
	rows, err := csv.NewReader(strings.NewReader(a["uni-lockfree_hist_retries.csv"])).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if rows[1][0] != "-inf" {
		t.Fatalf("first bucket lo = %q", rows[1][0])
	}
	if last := rows[len(rows)-1]; last[4] != "1.0000" {
		t.Fatalf("last cum_frac = %q", last[4])
	}
	// Summary carries the tail stats and the bound column.
	if !strings.Contains(a["summary.csv"], "retries_p99") || !strings.Contains(a["summary.csv"], "retries_bound") {
		t.Fatalf("summary header missing tail/bound columns:\n%s", a["summary.csv"])
	}
}

func keys(m map[string]string) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func TestWriteText(t *testing.T) {
	r := fabricate(t)
	var a, b bytes.Buffer
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("text digest not deterministic")
	}
	out := a.String()
	for _, want := range []string{
		"run uni-lockfree sim=uni mode=lock-free",
		"bound=4", "bound=-", "fig fig9 rows=3",
		"sched_passes=0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("digest missing %q:\n%s", want, out)
		}
	}
}

func TestWriteHTML(t *testing.T) {
	r := fabricate(t)
	var a, b bytes.Buffer
	if err := r.WriteHTML(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteHTML(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("HTML not deterministic")
	}
	out := a.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"--series-1:   #2a78d6",        // light palette
		"--series-1:   #3987e5",        // dark palette is selected, not flipped
		"theorem 2 bound = 4",          // bound overlay label in the SVG
		"var(--status-critical)",       // bound line color role
		"bound held",                   // verdict chip
		"per-task observed extremes",   // task table
		"fig9 — retries vs load",       // figure section
		"<polyline",                    // line chart marks
		"queue depth and processor",    // series chart
		"events per window",            // second series chart
		"uni-lockbased",                // second run section
		`class="chip c-series-1"`,      // legend chip
		`class="chip c-status-critical"`, // bound legend chip
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("HTML missing %q", want)
		}
	}
	if strings.Contains(out, "ZgotmplZ") {
		t.Fatal("template escaping rejected a CSS value")
	}
	// The non-numeric costs table stays table-only: its section heading
	// exists, but no legend precedes its table.
	costsAt := strings.Index(out, "costs — non-numeric table stays table-only")
	if costsAt < 0 {
		t.Fatal("costs figure section missing")
	}
	if sect := out[costsAt:]; strings.Contains(strings.SplitN(sect, "</table>", 2)[0], "<polyline") {
		t.Fatal("non-numeric table grew a chart")
	}
}

// TestFigChartCap: >4 numeric columns chart only the first four and
// note the rest.
func TestFigChartCap(t *testing.T) {
	r := &report.Report{
		Title: "cap", Profile: "quick", Workload: "w",
		Figs: []report.Table{{
			ID: "wide", Title: "wide table",
			Columns: []string{"x", "a", "b", "c", "d", "e"},
			Rows: [][]string{
				{"1", "1", "1", "1", "1", "1"},
				{"2", "2", "2", "2", "2", "2"},
			},
		}},
	}
	var buf bytes.Buffer
	if err := r.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "table-only columns (chart caps at 4 series): e") {
		t.Fatal("fifth series not noted as table-only")
	}
}
