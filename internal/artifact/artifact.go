// Package artifact renders the canonical-workload observability
// artifacts — trace files, flight dumps, CSV+HTML reports, and the
// metrics digest — entirely in memory. It is the single code path both
// the rtsim CLI (which writes the bytes to disk) and the rtsimd serving
// daemon (which serves them over HTTP) execute, so a spec served by the
// daemon is byte-identical to the same spec run in batch *by
// construction*: there is exactly one builder to diverge from, and the
// conformance suite (internal/serve, CI serve-smoke) pins that it never
// does.
//
// Every builder is a pure function of (Profile, options): equal inputs
// yield equal bytes for any worker count, the invariant the whole repo
// is built around.
package artifact

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/rtime"
	"repro/internal/trace"
	"repro/internal/trace/span"
)

// Trace mode and format selectors (the rtsim -trace-mode/-trace-format
// vocabulary).
const (
	ModeLockFree  = "lockfree"
	ModeLockBased = "lockbased"

	FormatJSON     = "json"
	FormatPerfetto = "perfetto"
	FormatSpans    = "spans"
)

// TraceOptions selects one fully-observed canonical-workload run.
type TraceOptions struct {
	Sim    string // experiment.TraceSimUni/Multi/Global
	Mode   string // ModeLockFree or ModeLockBased
	Format string // FormatJSON, FormatPerfetto, or FormatSpans

	// Limit bounds the recorder (0 = unbounded); drops are counted,
	// never silent.
	Limit int

	// Flight, when positive, attaches a flight recorder retaining the
	// last Flight events; the first anomaly snapshots it into
	// Trace.FlightDump.
	Flight int

	// Progress, when non-nil, receives the pipeline's deterministic
	// progress text lines. OnProgress, when non-nil, receives the raw
	// snapshots at the same marks (the serving daemon's live feed).
	// ProgressEvery paces both; zero means a tenth of the horizon.
	Progress      io.Writer
	ProgressEvery rtime.Duration
	OnProgress    func(mark rtime.Time, s obs.Snapshot)
}

// Trace is one rendered trace artifact set.
type Trace struct {
	Sim, Mode, Format string
	Profile           string
	Seed              int64
	Horizon           rtime.Time

	Data    []byte // the trace file in the requested format
	Events  int
	Dropped int64  // recorder drops under Limit
	Counts  string // trace.Summary of the recorded events

	// Flight-recorder outcome. FlightDump is the Perfetto-loadable ring
	// snapshot taken at the first anomaly, nil when none fired (or no
	// recorder was attached); Trigger/TriggerAt identify the anomaly.
	FlightDump    []byte
	Trigger       string
	TriggerAt     rtime.Time
	FlightLen     int
	FlightDropped int64

	flight int // requested recorder size, for Summary
}

// BuildTrace runs one fully-observed simulation of the canonical trace
// workload and renders its artifacts in memory. The returned bytes are
// a pure function of (p, o): byte-identical for any p.Jobs value and
// any caller (CLI or daemon).
func BuildTrace(p experiment.Profile, o TraceOptions) (*Trace, error) {
	var lockBased bool
	switch o.Mode {
	case ModeLockFree:
	case ModeLockBased:
		lockBased = true
	default:
		return nil, fmt.Errorf("artifact: unknown trace mode %q (want %s or %s)", o.Mode, ModeLockFree, ModeLockBased)
	}
	switch o.Format {
	case FormatJSON, FormatPerfetto, FormatSpans:
	default:
		return nil, fmt.Errorf("artifact: unknown trace format %q (want %s, %s, or %s)",
			o.Format, FormatJSON, FormatPerfetto, FormatSpans)
	}
	seed := p.Seeds[0]
	tasks, horizon, err := experiment.TraceSetup(p)
	if err != nil {
		return nil, err
	}

	t := &Trace{
		Sim: o.Sim, Mode: o.Mode, Format: o.Format,
		Profile: p.Name, Seed: seed, Horizon: horizon,
		flight: o.Flight,
	}
	rec := trace.NewRecorder(o.Limit)
	observer := rec.Record
	var pipe *obs.Pipeline
	var dumpErr error
	if o.Flight > 0 || o.Progress != nil || o.OnProgress != nil {
		cpus := 1
		if o.Sim != experiment.TraceSimUni {
			cpus = experiment.TraceCPUs
		}
		cfg := obs.Config{
			Horizon: horizon, CPUs: cpus, Flight: o.Flight,
			Progress: o.Progress, OnProgress: o.OnProgress,
		}
		if o.Progress != nil || o.OnProgress != nil {
			// Ten marks per run by default, paced by virtual time — a pure
			// function of the horizon, so progress output is deterministic.
			every := o.ProgressEvery
			if every <= 0 {
				every = rtime.Duration(horizon / 10)
			}
			if every < 1 {
				every = 1
			}
			cfg.ProgressEvery = every
		}
		if o.Flight > 0 {
			cfg.OnTrigger = func(reason string, at rtime.Time) {
				// Snapshot the ring the moment the anomaly happens: the
				// window ends at the event that tripped it.
				t.FlightLen, t.FlightDropped = pipe.Flight().Len(), pipe.Flight().Dropped()
				var b bytes.Buffer
				if dumpErr = pipe.Flight().WritePerfetto(&b); dumpErr == nil {
					t.FlightDump = b.Bytes()
				}
			}
		}
		if pipe, err = obs.NewPipeline(cfg); err != nil {
			return nil, err
		}
		observer = obs.Tee(obs.Func(rec.Record), pipe)
	}

	if err := experiment.StreamTrace(p, o.Sim, lockBased, seed, tasks, horizon, observer); err != nil {
		return nil, err
	}
	if pipe != nil {
		res, err := pipe.Finish()
		if err != nil {
			return nil, err
		}
		if dumpErr != nil {
			return nil, fmt.Errorf("flight dump: %w", dumpErr)
		}
		t.Trigger, t.TriggerAt = res.Trigger, res.TriggerAt
	}

	events := rec.Events()
	var buf bytes.Buffer
	switch o.Format {
	case FormatJSON:
		err = trace.WriteJSON(&buf, events)
	case FormatPerfetto:
		err = trace.WritePerfetto(&buf, events)
	case FormatSpans:
		var spans []span.JobSpan
		if spans, err = span.Build(events, horizon); err == nil {
			err = span.WriteText(&buf, spans)
		}
	}
	if err != nil {
		return nil, err
	}
	t.Data = buf.Bytes()
	t.Events = len(events)
	t.Dropped = rec.Dropped()
	t.Counts = trace.Summary(events)
	return t, nil
}

// Summary renders the deterministic stdout block rtsim prints for this
// trace, labeling the trace file `file` and the flight dump `dumpFile`.
func (t *Trace) Summary(file, dumpFile string) string {
	var b strings.Builder
	dropped := ""
	if t.Dropped > 0 {
		dropped = fmt.Sprintf(" dropped=%d", t.Dropped)
	}
	fmt.Fprintf(&b, "trace: sim=%s mode=%s seed=%d profile=%s events=%d%s horizon=%v format=%s\n",
		t.Sim, t.Mode, t.Seed, t.Profile, t.Events, dropped, t.Horizon, t.Format)
	fmt.Fprintf(&b, "counts: %s\n", t.Counts)
	if t.Trigger != "" && t.flight > 0 {
		fmt.Fprintf(&b, "flight: trigger=%s at=%dus events=%d dropped=%d file=%s\n",
			t.Trigger, t.TriggerAt.Micros(), t.FlightLen, t.FlightDropped, dumpFile)
	}
	return b.String()
}

// ReportSet is the rendered canonical-workload report: every CSV
// (sorted by name) followed by the self-contained report.html — the
// exact files, in the exact listing order, rtsim -report writes.
type ReportSet struct {
	Files []report.File
	Runs  int
	Figs  int
}

// Names returns the file names in listing order.
func (s *ReportSet) Names() []string {
	names := make([]string, len(s.Files))
	for i, f := range s.Files {
		names[i] = f.Name
	}
	return names
}

// BuildReportSet builds the canonical-workload report (batch or
// streaming builder — both render byte-identically) and renders every
// artifact in memory.
func BuildReportSet(p experiment.Profile, figIDs []string, stream bool) (*ReportSet, error) {
	build := experiment.BuildReport
	if stream {
		build = experiment.BuildReportStream
	}
	rep, err := build(p, figIDs)
	if err != nil {
		return nil, err
	}
	files, err := rep.CSVFiles()
	if err != nil {
		return nil, err
	}
	var html bytes.Buffer
	if err := rep.WriteHTML(&html); err != nil {
		return nil, err
	}
	files = append(files, report.File{Name: "report.html", Data: html.Bytes()})
	return &ReportSet{Files: files, Runs: len(rep.Runs), Figs: len(rep.Figs)}, nil
}

// BuildMetrics folds the canonical workload on every simulator × mode
// and renders the -metrics text digest.
func BuildMetrics(p experiment.Profile, stream bool) ([]byte, error) {
	build := experiment.BuildReport
	if stream {
		build = experiment.BuildReportStream
	}
	rep, err := build(p, nil)
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	if err := rep.WriteText(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}
