package task

import (
	"testing"

	"repro/internal/rtime"
	"repro/internal/tuf"
	"repro/internal/uam"
)

// FuzzStepConservation checks, for fuzzed segment layouts and chunk
// sizes, that stepping a job to completion consumes exactly its demand
// and that restart-on-retry only ever adds whole access lengths.
func FuzzStepConservation(f *testing.F) {
	f.Add(uint16(100), uint8(2), uint8(9), []byte{5, 17, 3})
	f.Add(uint16(50), uint8(0), uint8(1), []byte{1})
	f.Add(uint16(900), uint8(4), uint8(30), []byte{250, 250, 250})
	f.Fuzz(func(t *testing.T, uRaw uint16, mRaw, accRaw uint8, chunks []byte) {
		u := rtime.Duration(uRaw%2000) + 10
		m := int(mRaw % 6)
		acc := rtime.Duration(accRaw%40) + 1
		tk := &Task{
			ID:       0,
			TUF:      tuf.MustStep(1, 1<<40),
			Arrival:  uam.Spec{L: 0, A: 1, W: 1 << 41},
			Segments: InterleavedSegments(u, m, []int{0, 1, 2}),
		}
		j := NewJob(tk, 0, 0)
		demand := tk.Demand(acc)
		var consumed rtime.Duration
		retries := 0
		ci := 0
		for steps := 0; steps < 100000; steps++ {
			budget := rtime.Duration(1 << 40)
			if ci < len(chunks) {
				budget = rtime.Duration(chunks[ci]%60) + 1
				ci++
			}
			used, ev := j.Step(budget, acc)
			consumed += used
			// Occasionally retry mid-access (deterministic from input).
			if _, in := j.InAccess(); in && len(chunks) > 0 && steps%7 == 3 && retries < 5 {
				j.RestartAccess()
				retries++
			}
			if ev == StepCompleted {
				// Conservation with retries: consumed = demand + Σ wasted
				// partial access work, and each retry wastes < one acc.
				if consumed < demand || consumed > demand+rtime.Duration(retries)*acc {
					t.Fatalf("consumed %v outside [%v, %v] with %d retries",
						consumed, demand, demand+rtime.Duration(retries)*acc, retries)
				}
				return
			}
		}
		t.Fatal("job never completed")
	})
}

// FuzzValidateNoPanic: arbitrary segment soups must be accepted or
// rejected, never panic, and accepted ones must satisfy the documented
// invariants (balanced lock sections).
func FuzzValidateNoPanic(f *testing.F) {
	f.Add([]byte{0, 10, 1, 0, 2, 1, 3, 1})
	f.Add([]byte{2, 0, 0, 5, 3, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var segs []Segment
		for i := 0; i+1 < len(raw); i += 2 {
			kind := SegmentKind(raw[i] % 4)
			arg := int(raw[i+1])
			switch kind {
			case Compute:
				segs = append(segs, Segment{Kind: Compute, D: rtime.Duration(arg)})
			default:
				segs = append(segs, Segment{Kind: kind, Object: arg % 5})
			}
		}
		tk := &Task{
			ID:       0,
			TUF:      tuf.MustStep(1, 1000),
			Arrival:  uam.Spec{L: 0, A: 1, W: 2000},
			Segments: segs,
		}
		if err := tk.Validate(); err != nil {
			return // rejected is fine
		}
		// Accepted: lock sections must balance when simulated.
		held := map[int]bool{}
		for _, s := range tk.Segments {
			switch s.Kind {
			case Lock:
				if held[s.Object] {
					t.Fatal("accepted double lock")
				}
				held[s.Object] = true
			case Unlock:
				if !held[s.Object] {
					t.Fatal("accepted unmatched unlock")
				}
				delete(held, s.Object)
			}
		}
		if len(held) != 0 {
			t.Fatal("accepted dangling lock")
		}
	})
}
