package task

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rtime"
	"repro/internal/tuf"
	"repro/internal/uam"
)

func sampleTask(id int, u rtime.Duration, m int, objs []int) *Task {
	return &Task{
		ID:        id,
		Name:      "T",
		TUF:       tuf.MustStep(10, 1000),
		Arrival:   uam.Spec{L: 0, A: 2, W: 2000},
		Segments:  InterleavedSegments(u, m, objs),
		AbortCost: 5,
	}
}

func TestValidateGood(t *testing.T) {
	tk := sampleTask(1, 100, 3, []int{0, 1})
	if err := tk.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateBad(t *testing.T) {
	base := sampleTask(1, 100, 1, []int{0})

	noTUF := *base
	noTUF.TUF = nil
	if err := noTUF.Validate(); !errors.Is(err, ErrInvalid) {
		t.Error("nil TUF accepted")
	}

	badArr := *base
	badArr.Arrival = uam.Spec{L: 0, A: 0, W: 100}
	if err := badArr.Validate(); err == nil {
		t.Error("bad arrival accepted")
	}

	cGtW := *base
	cGtW.Arrival = uam.Spec{L: 0, A: 1, W: 500} // C=1000 > W=500
	if err := cGtW.Validate(); !errors.Is(err, ErrInvalid) {
		t.Error("C > W accepted")
	}

	empty := *base
	empty.Segments = nil
	if err := empty.Validate(); !errors.Is(err, ErrInvalid) {
		t.Error("empty segments accepted")
	}

	zeroSeg := *base
	zeroSeg.Segments = []Segment{{Kind: Compute, D: 0}}
	if err := zeroSeg.Validate(); !errors.Is(err, ErrInvalid) {
		t.Error("zero compute segment accepted")
	}

	negObj := *base
	negObj.Segments = []Segment{{Kind: Access, Object: -1}}
	if err := negObj.Validate(); !errors.Is(err, ErrInvalid) {
		t.Error("negative object accepted")
	}

	negAbort := *base
	negAbort.AbortCost = -1
	if err := negAbort.Validate(); !errors.Is(err, ErrInvalid) {
		t.Error("negative abort cost accepted")
	}
}

func TestDecomposition(t *testing.T) {
	tk := sampleTask(1, 100, 4, []int{3, 7})
	if got := tk.ComputeTime(); got != 100 {
		t.Errorf("ComputeTime = %v, want 100", got)
	}
	if got := tk.NumAccesses(); got != 4 {
		t.Errorf("NumAccesses = %d, want 4", got)
	}
	if got := tk.Demand(9); got != 100+4*9 {
		t.Errorf("Demand(9) = %v, want %v", got, 100+4*9)
	}
	objs := tk.Objects()
	if len(objs) != 2 || objs[0] != 3 || objs[1] != 7 {
		t.Errorf("Objects = %v, want [3 7]", objs)
	}
}

func TestInterleavedSegmentsNoAccess(t *testing.T) {
	segs := InterleavedSegments(50, 0, nil)
	if len(segs) != 1 || segs[0].Kind != Compute || segs[0].D != 50 {
		t.Fatalf("segments = %v", segs)
	}
}

func TestInterleavedSegmentsPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero-u":     func() { InterleavedSegments(0, 1, []int{0}) },
		"no-objects": func() { InterleavedSegments(10, 2, nil) },
		"neg-m":      func() { InterleavedSegments(10, -1, []int{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestJobStepComputeOnly(t *testing.T) {
	tk := sampleTask(1, 100, 0, nil)
	j := NewJob(tk, 0, 0)
	used, ev := j.Step(40, 9)
	if used != 40 || ev != StepBudget {
		t.Fatalf("Step(40) = (%v,%v)", used, ev)
	}
	used, ev = j.Step(100, 9)
	if used != 60 || ev != StepCompleted {
		t.Fatalf("Step(100) = (%v,%v), want (60, completed)", used, ev)
	}
}

func TestJobStepAccessBoundaries(t *testing.T) {
	tk := sampleTask(1, 100, 2, []int{5})
	// Segments: C(33) A C(33) A C(34), acc = 9 → total 100 + 18.
	j := NewJob(tk, 0, 0)

	used, ev := j.Step(1000, 9)
	if ev != StepAccessStart {
		t.Fatalf("first stop = %v, want StepAccessStart", ev)
	}
	if obj, ok := j.AtAccessStart(); !ok || obj != 5 {
		t.Fatalf("AtAccessStart = (%d,%v)", obj, ok)
	}
	firstCompute := used

	used, ev = j.Step(1000, 9)
	if used != 9 || ev != StepAccessEnd {
		t.Fatalf("access step = (%v,%v), want (9, StepAccessEnd)", used, ev)
	}

	used, ev = j.Step(1000, 9)
	if ev != StepAccessStart {
		t.Fatalf("second compute stop = %v", ev)
	}
	secondCompute := used

	used, ev = j.Step(1000, 9)
	if used != 9 || ev != StepAccessEnd {
		t.Fatalf("second access = (%v,%v)", used, ev)
	}

	used, ev = j.Step(1000, 9)
	if ev != StepCompleted {
		t.Fatalf("final = %v, want StepCompleted", ev)
	}
	total := firstCompute + secondCompute + used
	if total != 100 {
		t.Fatalf("total compute = %v, want 100", total)
	}
}

func TestJobStepMidAccessPreemption(t *testing.T) {
	tk := sampleTask(1, 100, 1, []int{2})
	j := NewJob(tk, 0, 0)
	j.Step(1000, 10) // run to access start
	used, ev := j.Step(4, 10)
	if used != 4 || ev != StepBudget {
		t.Fatalf("partial access = (%v,%v)", used, ev)
	}
	if obj, ok := j.InAccess(); !ok || obj != 2 {
		t.Fatalf("InAccess = (%d,%v), want (2,true)", obj, ok)
	}
	j.RestartAccess()
	if j.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", j.Retries)
	}
	if _, ok := j.InAccess(); ok {
		t.Fatal("still InAccess after restart with zero progress")
	}
	used, ev = j.Step(1000, 10)
	if used != 10 || ev != StepAccessEnd {
		t.Fatalf("full re-access = (%v,%v)", used, ev)
	}
}

func TestRestartAccessPanicsOutsideAccess(t *testing.T) {
	tk := sampleTask(1, 100, 0, nil)
	j := NewJob(tk, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("RestartAccess outside access did not panic")
		}
	}()
	j.RestartAccess()
}

func TestRemaining(t *testing.T) {
	tk := sampleTask(1, 100, 2, []int{0})
	j := NewJob(tk, 0, 0)
	if got := j.Remaining(9); got != 118 {
		t.Fatalf("initial Remaining = %v, want 118", got)
	}
	// Step stops at the first access boundary (after the 33-tick compute
	// chunk) even with budget left.
	used, ev := j.Step(50, 9)
	if used != 33 || ev != StepAccessStart {
		t.Fatalf("Step(50) = (%v,%v), want (33, StepAccessStart)", used, ev)
	}
	if got := j.Remaining(9); got != 85 {
		t.Fatalf("Remaining after 33 = %v, want 85", got)
	}
	for {
		_, ev := j.Step(1000, 9)
		if ev == StepCompleted {
			break
		}
	}
	j.State = Completed
	if got := j.Remaining(9); got != 0 {
		t.Fatalf("Remaining after completion = %v, want 0", got)
	}
}

func TestTimeToBoundaryDoesNotMutate(t *testing.T) {
	tk := sampleTask(1, 100, 2, []int{0})
	j := NewJob(tk, 0, 0)
	before := *j
	ttb := j.TimeToBoundary(9)
	if *j != before {
		t.Fatal("TimeToBoundary mutated the job")
	}
	if ttb <= 0 || ttb >= 100 {
		t.Fatalf("TimeToBoundary = %v, expected first compute chunk", ttb)
	}
}

func TestJobTimeline(t *testing.T) {
	tk := sampleTask(1, 100, 0, nil)
	j := NewJob(tk, 3, 500)
	if j.Name() != "J[1,3]" {
		t.Fatalf("Name = %q", j.Name())
	}
	if got := j.AbsoluteCriticalTime(); got != 1500 {
		t.Fatalf("AbsoluteCriticalTime = %v, want 1500", got)
	}
	j.State = Completed
	j.Completion = 800
	if got := j.Sojourn(); got != 300 {
		t.Fatalf("Sojourn = %v, want 300", got)
	}
	if !j.MetCriticalTime() {
		t.Fatal("job completing at 800 < 1500 should meet its critical time")
	}
	if got := j.AccruedUtility(); got != 10 {
		t.Fatalf("AccruedUtility = %v, want 10", got)
	}
}

func TestAbortedJobAccruesNothing(t *testing.T) {
	tk := sampleTask(1, 100, 0, nil)
	j := NewJob(tk, 0, 0)
	j.State = Aborted
	j.AbortedAt = 1000
	if j.AccruedUtility() != 0 {
		t.Fatal("aborted job accrued utility")
	}
	if j.MetCriticalTime() {
		t.Fatal("aborted job met critical time")
	}
	if !j.Done() {
		t.Fatal("aborted job should be done")
	}
}

func TestCompletionAtCriticalTimeMisses(t *testing.T) {
	// Utility at exactly C is zero (step TUF), so completion at C is a miss.
	tk := sampleTask(1, 100, 0, nil)
	j := NewJob(tk, 0, 0)
	j.State = Completed
	j.Completion = rtime.Time(1000) // == C
	if j.MetCriticalTime() {
		t.Fatal("completion at C should not count as a meet")
	}
	if j.AccruedUtility() != 0 {
		t.Fatal("utility at C should be 0 for a step TUF")
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{
		Ready: "ready", Running: "running", Blocked: "blocked",
		Aborting: "aborting", Completed: "completed", Aborted: "aborted",
		State(99): "state(99)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, w)
		}
	}
}

// Property: stepping a job in arbitrary chunk sizes always consumes
// exactly Demand(acc) in total, regardless of chunking, and the number of
// StepAccessEnd events equals m.
func TestQuickStepConservation(t *testing.T) {
	f := func(uRaw uint16, mRaw, accRaw uint8, chunks []uint8) bool {
		u := rtime.Duration(uRaw%500) + 10
		m := int(mRaw % 5)
		acc := rtime.Duration(accRaw%20) + 1
		objs := []int{0, 1, 2}
		tk := sampleTask(1, u, m, objs)
		j := NewJob(tk, 0, 0)

		var total rtime.Duration
		accessEnds := 0
		ci := 0
		for {
			budget := rtime.Duration(1)
			if ci < len(chunks) {
				budget = rtime.Duration(chunks[ci]%50) + 1
				ci++
			} else {
				budget = 1 << 40
			}
			used, ev := j.Step(budget, acc)
			total += used
			if ev == StepAccessEnd {
				accessEnds++
			}
			if ev == StepCompleted {
				break
			}
		}
		return total == tk.Demand(acc) && accessEnds == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Remaining + consumed == Demand at every point during
// execution.
func TestQuickRemainingInvariant(t *testing.T) {
	f := func(uRaw uint16, mRaw, accRaw, budRaw uint8) bool {
		u := rtime.Duration(uRaw%300) + 10
		m := int(mRaw % 4)
		acc := rtime.Duration(accRaw%15) + 1
		tk := sampleTask(1, u, m, []int{0})
		j := NewJob(tk, 0, 0)
		demand := tk.Demand(acc)
		var consumed rtime.Duration
		for {
			used, ev := j.Step(rtime.Duration(budRaw%30)+1, acc)
			consumed += used
			if consumed+j.Remaining(acc) != demand {
				return false
			}
			if ev == StepCompleted {
				return consumed == demand
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
