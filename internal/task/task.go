// Package task defines the activity model of the paper (§2): tasks with
// time/utility functions and UAM arrival specifications, whose invocations
// (jobs) interleave local computation with accesses to shared objects.
//
// A job's computation time decomposes as c_i = u_i + m_i·t_acc (paper §5),
// where u_i is the compute time not involving shared objects, m_i is the
// number of shared-object accesses, and t_acc is the per-access cost — r
// for lock-based objects, s for lock-free objects. Segments make this
// decomposition explicit: a job is a sequence of compute segments (fixed
// durations summing to u_i) and access segments (one per object access,
// whose duration the execution substrate supplies as r or s).
package task

import (
	"errors"
	"fmt"

	"repro/internal/rtime"
	"repro/internal/tuf"
	"repro/internal/uam"
)

// ErrInvalid reports a malformed task definition.
var ErrInvalid = errors.New("task: invalid")

// SegmentKind distinguishes compute from shared-object access segments
// and explicit lock boundaries.
type SegmentKind int

// Segment kinds.
const (
	Compute SegmentKind = iota
	Access
	// Lock and Unlock are zero-duration boundaries delimiting an explicit
	// critical section whose body is ordinary Compute segments. Unlike
	// the flat Access shorthand, Lock/Unlock sections may NEST (hold one
	// object while taking another), which is what makes deadlock — and
	// RUA's §3.3 detection/resolution machinery — reachable. They are
	// only meaningful in lock-based mode; lock-free configurations reject
	// them (the paper's model excludes nested sections for lock-free
	// sharing, §2).
	Lock
	Unlock
)

// Segment is one phase of a job's execution. For Compute segments D is
// the execution demand; for Access segments D is ignored and the duration
// is the synchronization substrate's per-access cost (r or s), while
// Object identifies the shared object touched. Lock/Unlock segments have
// zero duration and name the object in Object.
type Segment struct {
	Kind   SegmentKind
	D      rtime.Duration
	Object int
}

// Task is a recurring activity: a TUF time constraint, a UAM arrival
// specification, an execution body (segments), and an abort handler cost
// (the exception-handler execution time of §3.5).
type Task struct {
	ID        int
	Name      string
	TUF       tuf.TUF
	Arrival   uam.Spec
	Segments  []Segment
	AbortCost rtime.Duration
}

// Validate checks the §2 model constraints: a valid TUF, a valid UAM spec,
// C_i ≤ W_i, non-negative segment durations, at least some demand, and no
// nested critical sections (access segments are flat by construction, so
// this is implied — but zero-length compute segments are rejected to keep
// boundaries meaningful).
func (t *Task) Validate() error {
	if t.TUF == nil {
		return fmt.Errorf("%w: task %d has no TUF", ErrInvalid, t.ID)
	}
	if err := tuf.Validate(t.TUF); err != nil {
		return fmt.Errorf("task %d: %w", t.ID, err)
	}
	if err := t.Arrival.Validate(); err != nil {
		return fmt.Errorf("task %d: %w", t.ID, err)
	}
	if c, w := t.TUF.CriticalTime(), t.Arrival.W; c > w {
		return fmt.Errorf("%w: task %d has C=%v > W=%v (paper §2 assumes C ≤ W)", ErrInvalid, t.ID, c, w)
	}
	if len(t.Segments) == 0 {
		return fmt.Errorf("%w: task %d has no segments", ErrInvalid, t.ID)
	}
	held := map[int]bool{}
	for i, s := range t.Segments {
		switch s.Kind {
		case Compute:
			if s.D <= 0 {
				return fmt.Errorf("%w: task %d segment %d: compute duration %v must be positive", ErrInvalid, t.ID, i, s.D)
			}
		case Access:
			if s.Object < 0 {
				return fmt.Errorf("%w: task %d segment %d: negative object id", ErrInvalid, t.ID, i)
			}
			if len(held) > 0 {
				return fmt.Errorf("%w: task %d segment %d: Access shorthand inside an explicit Lock section", ErrInvalid, t.ID, i)
			}
		case Lock:
			if s.Object < 0 {
				return fmt.Errorf("%w: task %d segment %d: negative object id", ErrInvalid, t.ID, i)
			}
			if held[s.Object] {
				return fmt.Errorf("%w: task %d segment %d: Lock(%d) while already held", ErrInvalid, t.ID, i, s.Object)
			}
			held[s.Object] = true
		case Unlock:
			if !held[s.Object] {
				return fmt.Errorf("%w: task %d segment %d: Unlock(%d) without a matching Lock", ErrInvalid, t.ID, i, s.Object)
			}
			delete(held, s.Object)
		default:
			return fmt.Errorf("%w: task %d segment %d: unknown kind %d", ErrInvalid, t.ID, i, s.Kind)
		}
	}
	if len(held) > 0 {
		return fmt.Errorf("%w: task %d: %d objects still locked at job end", ErrInvalid, t.ID, len(held))
	}
	if t.AbortCost < 0 {
		return fmt.Errorf("%w: task %d: negative abort cost", ErrInvalid, t.ID)
	}
	return nil
}

// ComputeTime returns u_i, the execution demand outside object accesses.
func (t *Task) ComputeTime() rtime.Duration {
	var u rtime.Duration
	for _, s := range t.Segments {
		if s.Kind == Compute {
			u += s.D
		}
	}
	return u
}

// NumAccesses returns m_i, the number of shared-object accesses per job.
func (t *Task) NumAccesses() int {
	m := 0
	for _, s := range t.Segments {
		if s.Kind == Access {
			m++
		}
	}
	return m
}

// Objects returns the distinct object ids this task touches, in first-use
// order.
func (t *Task) Objects() []int {
	seen := map[int]bool{}
	var out []int
	for _, s := range t.Segments {
		if (s.Kind == Access || s.Kind == Lock) && !seen[s.Object] {
			seen[s.Object] = true
			out = append(out, s.Object)
		}
	}
	return out
}

// Clone returns a copy of the task with its own Segments slice, sharing
// the (immutable) TUF. Clones let a workload built once be handed to many
// simulation runs — possibly concurrent ones — with each run free to
// retarget segment objects without affecting the template; cloning is far
// cheaper than rebuilding the workload (no TUF construction, validation,
// or name formatting).
func (t *Task) Clone() *Task {
	cp := *t
	cp.Segments = append([]Segment(nil), t.Segments...)
	return &cp
}

// CloneAll clones every task in the slice.
func CloneAll(tasks []*Task) []*Task {
	out := make([]*Task, len(tasks))
	for i, t := range tasks {
		out[i] = t.Clone()
	}
	return out
}

// UsesExplicitSections reports whether the task has Lock/Unlock segments
// (possible nesting) — only legal under lock-based synchronization.
func (t *Task) UsesExplicitSections() bool {
	for _, s := range t.Segments {
		if s.Kind == Lock || s.Kind == Unlock {
			return true
		}
	}
	return false
}

// Demand returns c_i = u_i + m_i·acc, the total execution demand when each
// object access costs acc.
func (t *Task) Demand(acc rtime.Duration) rtime.Duration {
	return t.ComputeTime() + rtime.Duration(t.NumAccesses())*acc
}

// CriticalTime returns C_i.
func (t *Task) CriticalTime() rtime.Duration { return t.TUF.CriticalTime() }

// InterleavedSegments builds a segment list with total compute time u and
// m object accesses spread evenly through it, cycling over the given
// objects. This is the access pattern of the paper's evaluation ("10
// tasks, accessing 10 shared queues, arbitrarily"). It panics on u ≤ 0,
// m < 0, or m > 0 with no objects, since it is a table-building helper.
func InterleavedSegments(u rtime.Duration, m int, objects []int) []Segment {
	if u <= 0 {
		panic("task: InterleavedSegments needs u > 0")
	}
	if m < 0 || (m > 0 && len(objects) == 0) {
		panic("task: InterleavedSegments needs objects when m > 0")
	}
	if m == 0 {
		return []Segment{{Kind: Compute, D: u}}
	}
	segs := make([]Segment, 0, 2*m+1)
	chunk := u / rtime.Duration(m+1)
	if chunk <= 0 {
		chunk = 1
	}
	used := rtime.Duration(0)
	for k := 0; k < m; k++ {
		segs = append(segs, Segment{Kind: Compute, D: chunk})
		used += chunk
		segs = append(segs, Segment{Kind: Access, Object: objects[k%len(objects)]})
	}
	rest := u - used
	if rest > 0 {
		segs = append(segs, Segment{Kind: Compute, D: rest})
	}
	return segs
}

// State is a job's lifecycle state.
type State int

// Job lifecycle states.
const (
	Ready State = iota
	Running
	Blocked   // lock-based only: awaiting an object held by another job
	Aborting  // critical time expired; exception handler pending/running
	Completed // finished before its critical time
	Aborted   // handler finished; job accrued zero utility
)

// String renders a state tag.
func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Aborting:
		return "aborting"
	case Completed:
		return "completed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// StepEvent tells the execution substrate why Job.Step stopped.
type StepEvent int

// Step outcomes.
const (
	StepBudget      StepEvent = iota // consumed the whole budget mid-segment
	StepAccessStart                  // positioned at the start of an access segment
	StepAccessEnd                    // just finished an access segment
	StepCompleted                    // consumed the final segment
	StepLock                         // parked at an explicit Lock boundary
	StepUnlock                       // parked at an explicit Unlock boundary
)

// Job is one invocation J_{i,j} of a task — the basic scheduling entity
// (§2). All runtime fields are owned by the (single-goroutine) execution
// substrate; Job is not safe for concurrent mutation.
type Job struct {
	Task    *Task
	Seq     int        // j in J_{i,j}
	Arrival rtime.Time // release instant

	// Execution progress.
	SegIdx  int            // current segment index
	SegDone rtime.Duration // progress within the current segment

	State      State
	Completion rtime.Time // set when State becomes Completed
	AbortedAt  rtime.Time // set when the critical time expired

	// Accounting.
	Retries   int64 // lock-free access restarts (the f_i of Theorem 2)
	Blockings int64 // lock-based blocking episodes (the basis of B_i)
	Preempts  int64 // times preempted while running
	Disp      int64 // times dispatched

	// Fault injection (internal/fault). Overrun is extra execution
	// demand hidden in segment OverrunSeg: the execution substrate
	// (Step, TimeToBoundary) pays it, but Remaining — what schedulers
	// plan against — keeps reporting the declared demand, exactly like
	// a real job running past its declared c_i. Injected marks a job
	// whose release was perturbed (jittered or burst-injected).
	Overrun    rtime.Duration
	OverrunSeg int
	Injected   bool
}

// NewJob returns a fresh job for the j-th invocation of t released at ar.
func NewJob(t *Task, seq int, ar rtime.Time) *Job {
	return &Job{Task: t, Seq: seq, Arrival: ar, State: Ready}
}

// Name renders J_{i,j}.
func (j *Job) Name() string { return fmt.Sprintf("J[%d,%d]", j.Task.ID, j.Seq) }

// AbsoluteCriticalTime returns the wall-clock instant of the job's
// critical time, Arrival + C_i.
func (j *Job) AbsoluteCriticalTime() rtime.Time {
	return j.Arrival.Add(j.Task.CriticalTime())
}

// Done reports whether the job has left the system.
func (j *Job) Done() bool { return j.State == Completed || j.State == Aborted }

// segLen returns the current segment's duration given per-access cost acc.
func (j *Job) segLen(acc rtime.Duration) rtime.Duration {
	switch s := j.Task.Segments[j.SegIdx]; s.Kind {
	case Access:
		return acc
	case Lock, Unlock:
		return 0
	default:
		d := s.D
		if j.Overrun > 0 && j.SegIdx == j.OverrunSeg {
			d += j.Overrun
		}
		return d
	}
}

// SetOverrun injects extra execution demand d into the job's first
// compute segment. Only the execution substrate pays it — Remaining
// still reports the declared demand — so schedulers and feasibility
// tests keep planning against the task's advertised c_i while the job
// actually runs long. No-op when d ≤ 0 or the task has no compute
// segment.
func (j *Job) SetOverrun(d rtime.Duration) {
	if d <= 0 {
		return
	}
	for k, s := range j.Task.Segments {
		if s.Kind == Compute {
			j.Overrun, j.OverrunSeg = d, k
			return
		}
	}
}

// Remaining returns the execution demand left, with each remaining object
// access costing acc. Progress inside the current segment counts.
func (j *Job) Remaining(acc rtime.Duration) rtime.Duration {
	if j.Done() || j.SegIdx >= len(j.Task.Segments) {
		return 0
	}
	var rem rtime.Duration
	for k := j.SegIdx; k < len(j.Task.Segments); k++ {
		switch s := j.Task.Segments[k]; s.Kind {
		case Access:
			rem += acc
		case Compute:
			rem += s.D
		}
	}
	rem -= j.SegDone
	if rem < 0 {
		rem = 0
	}
	return rem
}

// InAccess reports whether the job is strictly inside an access segment
// (some progress made, not yet committed), returning the object id. A job
// waiting at an access boundary with zero progress has not begun the
// access, so it is not "in" it.
func (j *Job) InAccess() (obj int, ok bool) {
	if j.Done() || j.SegIdx >= len(j.Task.Segments) {
		return 0, false
	}
	s := j.Task.Segments[j.SegIdx]
	if s.Kind == Access && j.SegDone > 0 {
		return s.Object, true
	}
	return 0, false
}

// AtAccessStart reports whether the job's next work is to begin an access
// segment (zero progress), returning the object id. Lock-based execution
// must acquire the object's lock at this boundary.
func (j *Job) AtAccessStart() (obj int, ok bool) {
	if j.Done() || j.SegIdx >= len(j.Task.Segments) {
		return 0, false
	}
	s := j.Task.Segments[j.SegIdx]
	if s.Kind == Access && j.SegDone == 0 {
		return s.Object, true
	}
	return 0, false
}

// PendingLock reports whether the job is parked at an explicit Lock
// boundary, returning the object to acquire.
func (j *Job) PendingLock() (obj int, ok bool) {
	if j.Done() || j.SegIdx >= len(j.Task.Segments) {
		return 0, false
	}
	s := j.Task.Segments[j.SegIdx]
	if s.Kind == Lock {
		return s.Object, true
	}
	return 0, false
}

// PassBoundary consumes the current Lock/Unlock boundary after the
// execution substrate has performed the acquisition or release. It
// panics if the job is not parked at such a boundary.
func (j *Job) PassBoundary() {
	if j.SegIdx >= len(j.Task.Segments) {
		panic(fmt.Sprintf("task: PassBoundary on finished %s", j.Name()))
	}
	s := j.Task.Segments[j.SegIdx]
	if s.Kind != Lock && s.Kind != Unlock {
		panic(fmt.Sprintf("task: PassBoundary on %s not at a lock boundary", j.Name()))
	}
	j.SegIdx++
	j.SegDone = 0
}

// Step advances the job by at most budget ticks of execution, with access
// segments costing acc each. It stops at the first interesting boundary:
// the start of an access segment (before consuming any of it), the end of
// an access segment (the commit point), or job completion. The returned
// used is the execution time consumed (≤ budget).
func (j *Job) Step(budget, acc rtime.Duration) (used rtime.Duration, ev StepEvent) {
	if budget < 0 {
		panic("task: negative step budget")
	}
	for {
		if j.SegIdx >= len(j.Task.Segments) {
			return used, StepCompleted
		}
		s := j.Task.Segments[j.SegIdx]
		if s.Kind == Access && j.SegDone == 0 && used > 0 {
			// Reached an access boundary after doing compute work.
			return used, StepAccessStart
		}
		if s.Kind == Lock {
			// Never consumed by Step; the execution substrate acquires
			// the lock and calls PassBoundary.
			return used, StepLock
		}
		if s.Kind == Unlock {
			return used, StepUnlock
		}
		need := j.segLen(acc) - j.SegDone
		if need > budget-used {
			j.SegDone += budget - used
			return budget, StepBudget
		}
		used += need
		j.SegDone = 0
		j.SegIdx++
		if s.Kind == Access {
			// Always surface the commit point, even for a final access
			// segment; the next call reports StepCompleted. Execution
			// substrates must observe every commit to release locks or
			// record lock-free commits.
			return used, StepAccessEnd
		}
	}
}

// TimeToBoundary returns how long the job would run before Step would
// stop, given unlimited budget.
func (j *Job) TimeToBoundary(acc rtime.Duration) rtime.Duration {
	cp := *j
	used, _ := cp.Step(rtime.Duration(1)<<50, acc)
	return used
}

// RestartAccess resets progress within the current access segment — a
// lock-free retry. It panics if the job is not inside an access segment.
func (j *Job) RestartAccess() {
	if _, ok := j.InAccess(); !ok {
		panic(fmt.Sprintf("task: RestartAccess on %s not inside an access", j.Name()))
	}
	j.SegDone = 0
	j.Retries++
}

// AccruedUtility returns the utility this job contributed: U_i(sojourn)
// if it completed, zero otherwise.
func (j *Job) AccruedUtility() float64 {
	if j.State != Completed {
		return 0
	}
	return j.Task.TUF.Utility(j.Completion.Sub(j.Arrival))
}

// Sojourn returns completion − arrival for completed jobs and 0 otherwise.
func (j *Job) Sojourn() rtime.Duration {
	if j.State != Completed {
		return 0
	}
	return j.Completion.Sub(j.Arrival)
}

// MetCriticalTime reports whether the job completed at or before its
// critical time.
func (j *Job) MetCriticalTime() bool {
	return j.State == Completed && j.Completion.Sub(j.Arrival) < j.Task.CriticalTime()
}
