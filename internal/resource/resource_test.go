package resource

import (
	"errors"
	"testing"

	"repro/internal/rtime"
	"repro/internal/task"
	"repro/internal/tuf"
	"repro/internal/uam"
)

func mkJob(id int) *task.Job {
	t := &task.Task{
		ID:      id,
		TUF:     tuf.MustStep(1, 1000),
		Arrival: uam.Periodic(2000),
		Segments: []task.Segment{
			{Kind: task.Compute, D: 10},
		},
	}
	return task.NewJob(t, 0, 0)
}

func TestAcquireRelease(t *testing.T) {
	m := NewMap()
	j := mkJob(1)
	granted, holder, err := m.TryAcquire(j, 7)
	if err != nil || !granted || holder != nil {
		t.Fatalf("TryAcquire = (%v,%v,%v)", granted, holder, err)
	}
	if m.Owner(7) != j {
		t.Fatal("owner not recorded")
	}
	if hs := m.Held(j); len(hs) != 1 || hs[0] != 7 {
		t.Fatalf("Held = %v", hs)
	}
	if err := m.Release(j, 7); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if m.Owner(7) != nil {
		t.Fatal("owner not cleared")
	}
	if m.Acquisitions != 1 {
		t.Fatalf("Acquisitions = %d", m.Acquisitions)
	}
}

func TestContention(t *testing.T) {
	m := NewMap()
	j1, j2 := mkJob(1), mkJob(2)
	m.TryAcquire(j1, 7)
	granted, holder, err := m.TryAcquire(j2, 7)
	if err != nil || granted || holder != j1 {
		t.Fatalf("TryAcquire contended = (%v,%v,%v)", granted, holder, err)
	}
	if obj, ok := m.WaitingFor(j2); !ok || obj != 7 {
		t.Fatalf("WaitingFor = (%d,%v)", obj, ok)
	}
	if j2.Blockings != 1 {
		t.Fatalf("Blockings = %d", j2.Blockings)
	}
	if m.Contentions != 1 {
		t.Fatalf("Contentions = %d", m.Contentions)
	}
}

func TestNestedAcquireRejected(t *testing.T) {
	m := NewMap()
	j := mkJob(1)
	m.TryAcquire(j, 7)
	_, _, err := m.TryAcquire(j, 7)
	if !errors.Is(err, ErrState) {
		t.Fatalf("re-acquire err = %v", err)
	}
}

func TestReleaseNotHeld(t *testing.T) {
	m := NewMap()
	j1, j2 := mkJob(1), mkJob(2)
	m.TryAcquire(j1, 7)
	if err := m.Release(j2, 7); !errors.Is(err, ErrState) {
		t.Fatalf("foreign release err = %v", err)
	}
	if err := m.Release(j1, 99); !errors.Is(err, ErrState) {
		t.Fatalf("unheld release err = %v", err)
	}
}

func TestReleaseAll(t *testing.T) {
	m := NewMap()
	j := mkJob(1)
	m.TryAcquire(j, 1)
	m.TryAcquire(j, 2) // different objects: legal (sequential sections)
	w := mkJob(2)
	m.TryAcquire(w, 1)
	m.ReleaseAll(j)
	if m.Owner(1) != nil || m.Owner(2) != nil {
		t.Fatal("objects still owned after ReleaseAll")
	}
	if len(m.Held(j)) != 0 {
		t.Fatal("held list not cleared")
	}
}

func TestDependencyChainLinear(t *testing.T) {
	// Paper §3.1 example: T1 waits on R1 held by T2; T2 waits on R2 held
	// by T3; chain(T1) = ⟨T3, T2, T1⟩.
	m := NewMap()
	t1, t2, t3 := mkJob(1), mkJob(2), mkJob(3)
	m.TryAcquire(t3, 2) // T3 holds R2
	m.TryAcquire(t2, 1) // T2 holds R1
	m.TryAcquire(t2, 2) // T2 waits on R2
	m.TryAcquire(t1, 1) // T1 waits on R1
	chain, cycle := m.DependencyChain(t1)
	if cycle {
		t.Fatal("unexpected cycle")
	}
	want := []*task.Job{t3, t2, t1}
	if len(chain) != 3 {
		t.Fatalf("chain len = %d", len(chain))
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain[%d] = %s, want %s", i, chain[i].Name(), want[i].Name())
		}
	}
	// T2's chain is ⟨T3, T2⟩; T3's chain is ⟨T3⟩.
	c2, _ := m.DependencyChain(t2)
	if len(c2) != 2 || c2[0] != t3 || c2[1] != t2 {
		t.Fatalf("chain(T2) wrong")
	}
	c3, _ := m.DependencyChain(t3)
	if len(c3) != 1 || c3[0] != t3 {
		t.Fatalf("chain(T3) wrong")
	}
}

func TestDependencyChainCycle(t *testing.T) {
	m := NewMap()
	t1, t2 := mkJob(1), mkJob(2)
	m.TryAcquire(t1, 1)
	m.TryAcquire(t2, 2)
	m.TryAcquire(t1, 2) // T1 waits on R2 (held by T2)
	m.TryAcquire(t2, 1) // T2 waits on R1 (held by T1): deadlock
	_, cycle := m.DependencyChain(t1)
	if !cycle {
		t.Fatal("cycle not detected")
	}
}

func TestDependencyChainBrokenLink(t *testing.T) {
	m := NewMap()
	t1, t2 := mkJob(1), mkJob(2)
	m.TryAcquire(t2, 1)
	m.TryAcquire(t1, 1) // waits
	m.Release(t2, 1)    // released, but t1's wait record remains
	chain, cycle := m.DependencyChain(t1)
	if cycle || len(chain) != 1 || chain[0] != t1 {
		t.Fatalf("chain after release = %v (cycle=%v)", chain, cycle)
	}
}

func TestForget(t *testing.T) {
	m := NewMap()
	t1, t2 := mkJob(1), mkJob(2)
	m.TryAcquire(t2, 1)
	m.TryAcquire(t1, 1)
	m.Forget(t1)
	if _, ok := m.WaitingFor(t1); ok {
		t.Fatal("wait record survived Forget")
	}
}

func TestCommitTracking(t *testing.T) {
	m := NewMap()
	if m.CommittedSince(3, 0) {
		t.Fatal("commit reported on untouched object")
	}
	m.RecordCommit(3, rtime.Time(100))
	if !m.CommittedSince(3, 100) {
		t.Fatal("commit at t not visible for since=t")
	}
	if !m.CommittedSince(3, 50) {
		t.Fatal("commit after since not visible")
	}
	if m.CommittedSince(3, 101) {
		t.Fatal("stale commit visible")
	}
	if m.Commits != 1 {
		t.Fatalf("Commits = %d", m.Commits)
	}
}
