// Package resource models the shared-object state the schedulers and the
// simulator reason about: which job holds which lock (lock-based mode),
// who is waiting on what (the raw material of RUA's dependency chains,
// §3.1), and — in lock-free mode — which commits have landed on which
// object (the raw material of retry accounting, §4).
//
// The simulator runs on one goroutine, so this package is deliberately
// unsynchronized; the *real* concurrent objects live in internal/lockfree
// and internal/lockobj.
package resource

import (
	"errors"
	"fmt"

	"repro/internal/rtime"
	"repro/internal/task"
)

// ErrState reports an impossible lock-state transition — a simulator bug
// if it ever surfaces.
var ErrState = errors.New("resource: inconsistent state")

// Map tracks the lock and access state of all shared objects.
type Map struct {
	owners  map[int]*task.Job   // object id → holder (lock-based)
	waiting map[*task.Job]int   // job → object it is waiting for
	held    map[*task.Job][]int // holder → objects it holds (LIFO of acquisition)

	// lastCommit records, per object, the virtual time of the most recent
	// committed lock-free access. Conflict-precise retry accounting
	// compares a preempted job's access start against this.
	lastCommit map[int]rtime.Time

	// Counters for experiment reporting.
	Acquisitions int64
	Contentions  int64
	Commits      int64

	// seen is AppendDependencyChain's cycle-detection scratch, reused
	// across calls (the map is per-engine and single-goroutine, like
	// everything else here).
	seen map[*task.Job]bool
}

// NewMap returns an empty resource map.
func NewMap() *Map {
	return &Map{
		owners:     map[int]*task.Job{},
		waiting:    map[*task.Job]int{},
		held:       map[*task.Job][]int{},
		lastCommit: map[int]rtime.Time{},
	}
}

// Owner returns the job holding obj, or nil.
func (m *Map) Owner(obj int) *task.Job { return m.owners[obj] }

// WaitingFor returns the object j is waiting on, if any.
func (m *Map) WaitingFor(j *task.Job) (obj int, ok bool) {
	obj, ok = m.waiting[j]
	return obj, ok
}

// Held returns the objects j currently holds, in acquisition order.
func (m *Map) Held(j *task.Job) []int { return m.held[j] }

// TryAcquire attempts to take obj for j. If obj is free (or already held
// by j, which the no-nesting model forbids and therefore rejects), the
// lock is granted. Otherwise j is recorded as waiting and the holder is
// returned.
func (m *Map) TryAcquire(j *task.Job, obj int) (granted bool, holder *task.Job, err error) {
	if cur := m.owners[obj]; cur != nil {
		if cur == j {
			//rtlint:ignore noalloc failure path: impossible-state diagnostic kills the run
			return false, nil, fmt.Errorf("%w: %s re-acquiring object %d it already holds (nested sections are excluded)", ErrState, j.Name(), obj)
		}
		//rtlint:ignore noalloc bounded by live jobs; buckets reach steady capacity at warm-up
		m.waiting[j] = obj
		m.Contentions++
		j.Blockings++
		return false, cur, nil
	}
	//rtlint:ignore noalloc bounded by object count; buckets reach steady capacity at warm-up
	m.owners[obj] = j
	//rtlint:ignore noalloc bounded by objects a job holds; reaches steady capacity at warm-up
	m.held[j] = append(m.held[j], obj)
	delete(m.waiting, j)
	m.Acquisitions++
	return true, nil, nil
}

// Release frees obj, which must be held by j.
func (m *Map) Release(j *task.Job, obj int) error {
	if m.owners[obj] != j {
		//rtlint:ignore noalloc failure path: impossible-state diagnostic kills the run
		return fmt.Errorf("%w: %s releasing object %d it does not hold", ErrState, j.Name(), obj)
	}
	delete(m.owners, obj)
	hs := m.held[j]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i] == obj {
			//rtlint:ignore noalloc copy-down within the same backing array; never grows
			m.held[j] = append(hs[:i], hs[i+1:]...)
			break
		}
	}
	if len(m.held[j]) == 0 {
		delete(m.held, j)
	}
	return nil
}

// ReleaseAll frees everything j holds and clears its wait record — used
// when a job's abort handler finishes (the handler rolls held resources
// back to safe states, §3.5).
func (m *Map) ReleaseAll(j *task.Job) {
	// Ranging the held slice directly is safe: the owner deletions touch
	// only m.owners, and the held entry is dropped after the loop — the
	// old per-call defensive copy was the last per-event allocation on
	// the abort path.
	for _, obj := range m.held[j] {
		delete(m.owners, obj)
	}
	delete(m.held, j)
	delete(m.waiting, j)
}

// Forget drops any wait record for j (e.g. the job got the CPU back and
// will re-attempt the acquisition as a fresh scheduling decision).
func (m *Map) Forget(j *task.Job) { delete(m.waiting, j) }

// RecordCommit notes that a lock-free access to obj committed at t.
func (m *Map) RecordCommit(obj int, t rtime.Time) {
	//rtlint:ignore noalloc bounded by object count; buckets reach steady capacity at warm-up
	m.lastCommit[obj] = t
	m.Commits++
}

// CommittedSince reports whether any lock-free access to obj committed at
// or after t.
func (m *Map) CommittedSince(obj int, t rtime.Time) bool {
	c, ok := m.lastCommit[obj]
	return ok && c >= t
}

// CommittedAfter reports whether any lock-free access to obj committed
// STRICTLY after t. Commit-time validation in parallel execution must use
// the strict form: a commit at exactly the instant a fresh attempt began
// is ordered before it, and counting it would retry forever when two
// processors interleave at the same tick.
func (m *Map) CommittedAfter(obj int, t rtime.Time) bool {
	c, ok := m.lastCommit[obj]
	return ok && c > t
}

// DependencyChain computes j's dependency chain (§3.1): the sequence
// ⟨T_k, …, T_2, J⟩ obtained by following "waiting-for → holder" links,
// head first (the job that must execute first) and ending with j itself.
// If the links form a cycle — only possible with nested critical sections
// — the second return is true and the returned chain is the cycle
// participants up to the repeat, which the deadlock resolver inspects.
func (m *Map) DependencyChain(j *task.Job) (chain []*task.Job, cycle bool) {
	return m.AppendDependencyChain(nil, j)
}

// AppendDependencyChain is DependencyChain without the per-call
// allocations: the head-first chain is appended to dst (the returned
// slice is dst extended, exactly like append) and the cycle-detection
// scratch is reused across calls. RUA's per-pass chain arena feeds every
// live job through this so a lock-based scheduling pass in steady state
// allocates nothing.
func (m *Map) AppendDependencyChain(dst []*task.Job, j *task.Job) (chain []*task.Job, cycle bool) {
	if m.seen == nil {
		//rtlint:ignore noalloc one-time lazy init; the scratch map is cleared and reused
		m.seen = map[*task.Job]bool{}
	}
	clear(m.seen)
	start := len(dst)
	//rtlint:ignore noalloc appends into the caller's reused arena; growth amortized
	dst = append(dst, j)
	//rtlint:ignore noalloc cleared scratch map reuses its buckets; growth amortized
	m.seen[j] = true
	cur := j
	for {
		obj, waiting := m.waiting[cur]
		if !waiting {
			break
		}
		holder := m.owners[obj]
		if holder == nil {
			// The object was released since the wait was recorded; the
			// chain ends here and the waiter can re-request.
			break
		}
		if m.seen[holder] {
			cycle = true
			break
		}
		//rtlint:ignore noalloc cleared scratch map reuses its buckets; growth amortized
		m.seen[holder] = true
		//rtlint:ignore noalloc appends into the caller's reused arena; growth amortized
		dst = append(dst, holder)
		cur = holder
	}
	// The walk collected tail-first; reverse the appended region so the
	// chain reads head (must execute first) to tail (j itself).
	for lo, hi := start, len(dst)-1; lo < hi; lo, hi = lo+1, hi-1 {
		dst[lo], dst[hi] = dst[hi], dst[lo]
	}
	return dst, cycle
}
