// Package obs is the streaming observability pipeline: it sits behind
// the engines' existing Observer hook (sim.Config.Observer,
// multi.Config.Observer, gsim.Config.Observer) and folds trace events
// ONLINE — per-job spans, bound checks, windowed series, per-object
// retry telemetry — instead of recording the full event slice and
// folding post-hoc. At the 10⁴–10⁵-task scales the engines reach, the
// post-hoc path's O(total events) buffer dominates memory; the pipeline
// replaces it with O(windows + live jobs + flight ring).
//
// Every engine guarantees its observer stream is nondecreasing in
// Event.At (the partitioned engine steps its partitions in lockstep to
// keep this true for the merged stream), which is what lets the online
// folds match the batch folds byte-for-byte: the batch path stable-sorts
// by At before folding, and a stable sort of an already-ordered stream
// is the identity.
//
// Three pieces:
//
//   - Sink / Tee: the composition vocabulary. A Sink consumes events;
//     Tee fans one stream out to several sinks in fixed order, so a
//     trace recorder and a pipeline can watch the same run.
//   - Flight (flight.go): a bounded ring-buffer flight recorder keeping
//     the last N events with an exact drop counter, dumped as a
//     Perfetto post-mortem on the first anomaly.
//   - Pipeline (pipeline.go): the composed online fold with periodic
//     progress reporting and a pollable Snapshot.
package obs

import "repro/internal/trace"

// Sink consumes a time-ordered trace event stream. Implementations are
// single-goroutine, like the engines that feed them.
type Sink interface {
	Observe(trace.Event)
}

// Func adapts a plain observer callback to the Sink interface.
type Func func(trace.Event)

// Observe calls f.
func (f Func) Observe(e trace.Event) { f(e) }

// Tee fans an event stream out to sinks in argument order — the order
// is fixed, so composed observers stay deterministic. Nil sinks are
// skipped. The returned callback plugs directly into an engine's
// Observer field.
func Tee(sinks ...Sink) func(trace.Event) {
	// Compact away nils once, up front, keeping the hot path branch-free.
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	return func(e trace.Event) {
		for _, s := range live {
			s.Observe(e)
		}
	}
}
