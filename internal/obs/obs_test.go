package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics/ops"
	"repro/internal/metrics/series"
	"repro/internal/obs"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/sim"
	"repro/internal/stoch"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/trace/check"
	"repro/internal/trace/span"
	"repro/internal/tuf"
	"repro/internal/uam"
)

func ev(at rtime.Time, kind trace.Kind) trace.Event {
	return trace.Event{At: at, Kind: kind, Task: 0, Seq: int(at), Object: -1, CPU: -1}
}

func TestFlightRing(t *testing.T) {
	f := obs.NewFlight(4)
	for i := 0; i < 10; i++ {
		f.Observe(ev(rtime.Time(i), trace.Arrival))
	}
	if f.Len() != 4 || f.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d", f.Len(), f.Cap())
	}
	if f.Total() != 10 || f.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d", f.Total(), f.Dropped())
	}
	got := f.Events()
	for i, e := range got {
		if want := rtime.Time(6 + i); e.At != want {
			t.Fatalf("event %d at %v, want %v", i, e.At, want)
		}
	}
}

func TestFlightPartial(t *testing.T) {
	f := obs.NewFlight(8)
	f.Observe(ev(1, trace.Arrival))
	f.Observe(ev(2, trace.Commit))
	if f.Len() != 2 || f.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", f.Len(), f.Dropped())
	}
	got := f.Events()
	if len(got) != 2 || got[0].At != 1 || got[1].At != 2 {
		t.Fatalf("events = %+v", got)
	}
	var b bytes.Buffer
	if err := f.WritePerfetto(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "traceEvents") {
		t.Fatal("perfetto dump missing traceEvents")
	}
}

func TestTeeOrderAndNil(t *testing.T) {
	var log []string
	mk := func(name string) obs.Sink {
		return obs.Func(func(e trace.Event) { log = append(log, name) })
	}
	cb := obs.Tee(mk("a"), nil, mk("b"))
	cb(ev(1, trace.Arrival))
	cb(ev(2, trace.Commit))
	if strings.Join(log, ",") != "a,b,a,b" {
		t.Fatalf("tee order = %v", log)
	}
}

// testTasks builds a small lock-free workload that produces retries and
// commits under the uniprocessor engine (the stochastic overlay in
// runWith force-preempts mid-access, so preempted accesses re-run).
func testTasks(t testing.TB) []*task.Task {
	t.Helper()
	tasks := make([]*task.Task, 4)
	for i := range tasks {
		tasks[i] = &task.Task{
			ID: i, Name: "T", TUF: tuf.MustStep(float64(10*(i+1)), 4000),
			Arrival:  uam.Spec{L: 1, A: 2, W: 5000},
			Segments: task.InterleavedSegments(600, 2, []int{i % 2, (i + 1) % 2}),
		}
		if err := tasks[i].Validate(); err != nil {
			t.Fatal(err)
		}
	}
	return tasks
}

// runWith executes the reference workload with the given observer.
func runWith(t testing.TB, tasks []*task.Task, horizon rtime.Time, observer func(trace.Event)) sim.Result {
	t.Helper()
	plan, err := stoch.ParsePlan("geo")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Tasks: tasks, Scheduler: rua.NewLockFree(), Mode: sim.LockFree,
		R: 150, S: 120, OpCost: 0.02, Horizon: horizon,
		ArrivalKind: uam.KindJittered, Seed: 1, ConservativeRetry: true,
		Stoch:    plan,
		Observer: observer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPipelineMatchesBatch runs one engine with a full recorder and a
// pipeline side by side (Tee) and checks every online fold against its
// post-hoc batch counterpart.
func TestPipelineMatchesBatch(t *testing.T) {
	tasks := testTasks(t)
	const horizon = rtime.Time(60_000)

	rec := trace.NewRecorder(0)
	ckCfg := check.Config{Theorem2: true, Theorem3: true, R: 150, S: 5}
	var streamed []span.JobSpan
	p, err := obs.NewPipeline(obs.Config{
		Horizon:      horizon,
		CPUs:         1,
		SeriesWindow: 1000,
		CheckTasks:   tasks,
		Check:        &ckCfg,
		OnSpan: func(s *span.JobSpan) {
			cp := *s
			cp.Segments = append([]span.Segment(nil), s.Segments...)
			streamed = append(streamed, cp)
		},
		Flight: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runWith(t, tasks, horizon, obs.Tee(obs.Func(rec.Record), p))
	out, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// Counters against the engine's own result.
	if out.Retries != res.Retries {
		t.Fatalf("retries %d != result %d", out.Retries, res.Retries)
	}
	if out.Events != int64(rec.Len()) {
		t.Fatalf("events %d != recorded %d", out.Events, rec.Len())
	}

	// Spans: batch Build vs streamed retirement (re-keyed to batch order).
	batch, err := span.Build(rec.Events(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("%d streamed spans, %d batch", len(streamed), len(batch))
	}
	var sb, bb bytes.Buffer
	byKey := make(map[[2]int]span.JobSpan, len(streamed))
	for _, s := range streamed {
		byKey[[2]int{s.Task, s.Seq}] = s
	}
	ordered := make([]span.JobSpan, len(batch))
	for i, s := range batch {
		ordered[i] = byKey[[2]int{s.Task, s.Seq}]
	}
	if err := span.WriteText(&sb, ordered); err != nil {
		t.Fatal(err)
	}
	if err := span.WriteText(&bb, batch); err != nil {
		t.Fatal(err)
	}
	if sb.String() != bb.String() {
		t.Fatal("streamed spans differ from batch Build")
	}

	// Series: byte-identical CSV.
	bSer, err := series.FromEvents(rec.Events(), horizon, series.Config{Window: 1000, CPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var c1, c2 bytes.Buffer
	if err := out.Series.WriteCSV(&c1); err != nil {
		t.Fatal(err)
	}
	if err := bSer.WriteCSV(&c2); err != nil {
		t.Fatal(err)
	}
	if c1.String() != c2.String() {
		t.Fatal("streamed series CSV differs from batch fold")
	}

	// Ops: identical per-object summaries.
	bOps := ops.FromEvents(rec.Events())
	if len(out.Ops.Dists) != len(bOps.Dists) {
		t.Fatalf("%d ops dists, batch %d", len(out.Ops.Dists), len(bOps.Dists))
	}
	for i, d := range out.Ops.Dists {
		bd := bOps.Dists[i]
		if d.Object != bd.Object || d.Ops != bd.Ops ||
			d.Attempts.Sum() != bd.Attempts.Sum() || d.Attempts.Quantile(0.99) != bd.Attempts.Quantile(0.99) ||
			d.Failures.Sum() != bd.Failures.Sum() {
			t.Fatalf("ops dist %d differs: %+v vs %+v", i, d, bd)
		}
	}

	// Check: byte-identical report.
	bRep, err := check.Check(batch, tasks, ckCfg)
	if err != nil {
		t.Fatal(err)
	}
	var r1, r2 bytes.Buffer
	if err := out.Check.WriteText(&r1); err != nil {
		t.Fatal(err)
	}
	if err := bRep.WriteText(&r2); err != nil {
		t.Fatal(err)
	}
	if r1.String() != r2.String() {
		t.Fatal("streamed check report differs from batch Check")
	}

	if out.Commits == 0 || out.Retries == 0 {
		t.Fatal("workload produced no commits/retries; test is vacuous")
	}
}

// TestProgressDeterministic runs the same traced workload twice and
// asserts the progress stream is byte-identical, well-formed, and
// paced by virtual time.
func TestProgressDeterministic(t *testing.T) {
	tasks := testTasks(t)
	const horizon = rtime.Time(60_000)
	run := func() string {
		var buf bytes.Buffer
		p, err := obs.NewPipeline(obs.Config{
			Horizon: horizon, CPUs: 1,
			Flight:        32,
			Progress:      &buf,
			ProgressEvery: 10_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		runWith(t, tasks, horizon, p.Observer())
		if _, err := p.Finish(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("progress output not deterministic:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSuffix(a, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("want 6 progress lines over 60ms/10ms, got %d:\n%s", len(lines), a)
	}
	for i, ln := range lines {
		if !strings.HasPrefix(ln, "progress t=") || !strings.Contains(ln, "flight=") {
			t.Fatalf("malformed progress line %d: %q", i, ln)
		}
	}
}

// TestPipelineTriggersOnShed checks OnTrigger fires exactly once, on
// the first anomaly, with the flight recorder holding the window.
func TestPipelineTriggersOnShed(t *testing.T) {
	var fired []string
	p, err := obs.NewPipeline(obs.Config{
		Horizon: 1000, Flight: 8,
		OnTrigger: func(reason string, at rtime.Time) {
			fired = append(fired, reason)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(trace.Event{At: 1, Kind: trace.Arrival, Task: 0, Seq: 0, Object: -1})
	p.Observe(trace.Event{At: 5, Kind: trace.Shed, Task: 0, Seq: 0, Object: -1})
	p.Observe(trace.Event{At: 6, Kind: trace.Shed, Task: 0, Seq: 1, Object: -1})
	snap := p.Snapshot()
	if len(fired) != 1 || fired[0] != "shed" {
		t.Fatalf("fired = %v", fired)
	}
	if snap.Trigger != "shed" || snap.Sheds != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if p.Flight().Len() != 3 {
		t.Fatalf("flight len = %d", p.Flight().Len())
	}
}

// TestPipelineRejectsOutOfOrder asserts a time-regressing stream
// surfaces as an error from Finish, not silence.
func TestPipelineRejectsOutOfOrder(t *testing.T) {
	p, err := obs.NewPipeline(obs.Config{Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(trace.Event{At: 10, Kind: trace.Arrival, Task: 0, Seq: 0, Object: -1})
	p.Observe(trace.Event{At: 5, Kind: trace.Arrival, Task: 0, Seq: 1, Object: -1})
	if _, err := p.Finish(); err == nil {
		t.Fatal("out-of-order stream accepted")
	}
}

func TestSnapshotLiveJobs(t *testing.T) {
	p, err := obs.NewPipeline(obs.Config{Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(trace.Event{At: 1, Kind: trace.Arrival, Task: 0, Seq: 0, Object: -1})
	p.Observe(trace.Event{At: 2, Kind: trace.Arrival, Task: 1, Seq: 0, Object: -1})
	p.Observe(trace.Event{At: 9, Kind: trace.Complete, Task: 0, Seq: 0, Object: -1})
	snap := p.Snapshot()
	if snap.LiveJobs != 1 || snap.Now != 9 || snap.Events != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
}
