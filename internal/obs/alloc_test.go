package obs_test

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/rtime"
	"repro/internal/trace"
)

// recordReference runs the reference workload once and returns its full
// event stream and horizon: the raw material the allocation tests
// replay through fresh pipelines, time-shifted pass by pass so the
// stream stays nondecreasing and job keys never collide.
func recordReference(t testing.TB) ([]trace.Event, rtime.Time) {
	const horizon = rtime.Time(60_000)
	rec := trace.NewRecorder(0)
	runWith(t, testTasks(t), horizon, rec.Record)
	if rec.Len() < 1000 {
		t.Fatalf("reference run too small: %d events", rec.Len())
	}
	// Keep only jobs that depart within the recording: jobs cut off
	// mid-flight by the horizon have no departure event, so each replay
	// pass would leave their state live forever — a harness artifact,
	// not pipeline behavior (a real run seals them in Finish).
	departed := make(map[[2]int]bool)
	for _, e := range rec.Events() {
		if e.Kind == trace.Complete || e.Kind == trace.AbortDone {
			departed[[2]int{e.Task, e.Seq}] = true
		}
	}
	var events []trace.Event
	for _, e := range rec.Events() {
		if e.Task < 0 || e.Kind == trace.SchedPass || e.Kind == trace.FeasOK || e.Kind == trace.FeasFail ||
			departed[[2]int{e.Task, e.Seq}] {
			events = append(events, e)
		}
	}
	return events, horizon
}

// replay feeds one time-shifted pass of the reference stream into p.
// Seq is offset per pass so (task, seq) job keys are fresh each time —
// the span fold retires departed jobs, so repeated keys of still-live
// jobs would be duplicate arrivals.
func replay(p *obs.Pipeline, events []trace.Event, pass int, span rtime.Time) {
	atOff := rtime.Time(pass) * span
	seqOff := pass * 1_000_000
	for _, e := range events {
		e.At += atOff
		e.Seq += seqOff
		p.Observe(e)
	}
}

// TestPipelineSteadyStateAllocs pins the streaming pipeline's
// steady-state behavior: once the ring is full, the maps are sized, and
// the span pool is primed, replaying thousands of events allocates at
// most a small constant (jobs still in flight when a pass's horizon
// cuts off stay live and keep their state). A regression that buffers
// events or re-allocates per event trips this immediately.
func TestPipelineSteadyStateAllocs(t *testing.T) {
	events, span := recordReference(t)
	const warmup, measured = 2, 5
	p, err := obs.NewPipeline(obs.Config{
		Horizon:      span * rtime.Time(warmup+measured+4),
		CPUs:         1,
		SeriesWindow: rtime.Duration(span), // one window per pass: O(passes) points
		Flight:       256,
	})
	if err != nil {
		t.Fatal(err)
	}
	pass := 0
	for ; pass < warmup; pass++ {
		replay(p, events, pass, span)
	}
	avg := testing.AllocsPerRun(measured, func() {
		replay(p, events, pass, span)
		pass++
	})
	// Every job in the reference stream departs, so a warm pass must be
	// allocation-free: states come from the pool, map entries and segment
	// slices are reused, the ring overwrites in place. A tiny slack
	// absorbs incidental runtime rebalancing.
	if avg > 4 {
		t.Fatalf("steady-state pass of %d events allocated %.0f times, want ≈ 0", len(events), avg)
	}
	if p.Snapshot().Events == 0 || p.Snapshot().Commits == 0 {
		t.Fatal("replay folded nothing; allocation check is vacuous")
	}
}

// BenchmarkPipelineObserve measures the per-event cost of the full
// pipeline (span fold + series fold + ops fold + flight ring) in its
// steady state. The interesting number is B/op: the streaming
// observability claim is that it stays at zero once warm.
func BenchmarkPipelineObserve(b *testing.B) {
	b.StopTimer()
	events, span := recordReference(b)
	passes := b.N/len(events) + 2
	p, err := obs.NewPipeline(obs.Config{
		Horizon:      span * rtime.Time(passes+2),
		CPUs:         1,
		SeriesWindow: rtime.Duration(span),
		Flight:       1024,
	})
	if err != nil {
		b.Fatal(err)
	}
	replay(p, events, 0, span) // warm: fill the ring, size the maps
	b.ReportAllocs()
	b.StartTimer()
	pass, i := 1, 0
	atOff := span
	seqOff := 1_000_000
	for n := 0; n < b.N; n++ {
		e := events[i]
		e.At += atOff
		e.Seq += seqOff
		p.Observe(e)
		i++
		if i == len(events) {
			i = 0
			pass++
			atOff = span * rtime.Time(pass)
			seqOff = pass * 1_000_000
		}
	}
}
