package obs

import (
	"io"

	"repro/internal/trace"
)

// Flight is a bounded flight recorder: a fixed-capacity ring buffer
// retaining the last N observed events, overwriting the oldest, with an
// exact count of everything overwritten. It is the always-on, bounded
// complement to trace.Recorder — cheap enough to leave attached to a
// 10⁵-task run, yet holding exactly the post-mortem context wanted when
// something goes wrong (the Pipeline dumps it on the first bound
// violation, shed, or fault-induced abort).
type Flight struct {
	buf  []trace.Event
	next int   // ring cursor: index the next event lands in
	n    int64 // total events ever observed
}

// NewFlight returns a recorder retaining the last capacity events;
// capacity is clamped to ≥ 1.
func NewFlight(capacity int) *Flight {
	if capacity < 1 {
		capacity = 1
	}
	return &Flight{buf: make([]trace.Event, 0, capacity)}
}

// Observe records one event, overwriting the oldest once full.
func (f *Flight) Observe(e trace.Event) {
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, e)
	} else {
		f.buf[f.next] = e
	}
	f.next++
	if f.next == cap(f.buf) {
		f.next = 0
	}
	f.n++
}

// Len returns the number of retained events (≤ Cap).
func (f *Flight) Len() int { return len(f.buf) }

// Cap returns the ring capacity.
func (f *Flight) Cap() int { return cap(f.buf) }

// Total returns how many events were ever observed.
func (f *Flight) Total() int64 { return f.n }

// Dropped returns exactly how many events were overwritten.
func (f *Flight) Dropped() int64 { return f.n - int64(len(f.buf)) }

// Events returns the retained events oldest-first (a fresh slice; the
// ring keeps recording).
func (f *Flight) Events() []trace.Event {
	out := make([]trace.Event, 0, len(f.buf))
	if len(f.buf) == cap(f.buf) {
		out = append(out, f.buf[f.next:]...)
	}
	return append(out, f.buf[:f.next]...)
}

// WritePerfetto dumps the retained window as a Perfetto-format
// post-mortem. Spans whose arrivals were overwritten render as
// partial timelines — the point of a flight recorder is the final
// window, not the full history.
func (f *Flight) WritePerfetto(w io.Writer) error {
	return trace.WritePerfetto(w, f.Events())
}
