package obs

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/metrics/ops"
	"repro/internal/metrics/series"
	"repro/internal/rtime"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/trace/check"
	"repro/internal/trace/span"
)

// ErrConfig reports an unusable pipeline configuration.
var ErrConfig = errors.New("obs: invalid config")

// Config assembles a Pipeline. Horizon is required (every engine knows
// its own); everything else is opt-in.
type Config struct {
	// Horizon is the run's virtual-time end: it fixes the series window
	// count up front and seals unfinished spans at Finish.
	Horizon rtime.Time
	// CPUs is the traced engine's processor count (≥ 1; used by the
	// series fold's utilization reporting).
	CPUs int

	// SeriesWindow, when positive, enables the online series fold with
	// this bucket width (series.WindowFor picks a good one).
	SeriesWindow rtime.Duration

	// CheckTasks and Check, both set, enable online bound checking:
	// every retired span is checked against the paper's Theorem 2/3
	// bounds the moment the job departs.
	CheckTasks []*task.Task
	Check      *check.Config

	// OnSpan, when non-nil, receives every retired span (departure
	// order, then still-live jobs in arrival order at Finish). The
	// *JobSpan is valid only during the call — storage is recycled.
	OnSpan func(*span.JobSpan)

	// Flight, when positive, attaches a flight recorder retaining the
	// last Flight events (see Flight type).
	Flight int

	// OnTrigger, when non-nil, fires ONCE at the first anomaly — an
	// unexpected bound violation, a shed job, or a fault-induced abort —
	// with a short reason and the virtual time. The flight recorder (if
	// any) still holds the window ending at the anomaly: dump it here.
	OnTrigger func(reason string, at rtime.Time)

	// Progress and ProgressEvery, both set, emit one deterministic text
	// line to Progress every ProgressEvery ticks of virtual time. The
	// lines are a pure function of the event stream (no wall-clock), so
	// equal runs produce equal progress output.
	Progress      io.Writer
	ProgressEvery rtime.Duration

	// OnProgress, when non-nil (with ProgressEvery set), receives the
	// pipeline's Snapshot at every progress mark — the same pacing, and
	// the same state, as the Progress text lines. It is called from the
	// engine's goroutine; a consumer that republishes snapshots to other
	// goroutines (a serving daemon) must do its own synchronization.
	OnProgress func(mark rtime.Time, s Snapshot)
}

// Snapshot is a point-in-time view of a running pipeline — the pollable
// introspection surface a serving daemon (ROADMAP item 4) would expose.
type Snapshot struct {
	Now    rtime.Time // virtual time of the last observed event
	Events int64

	Commits int64
	Retries int64
	Sheds   int64

	// AttemptP99 is the 99th-percentile attempts-per-committed-operation
	// so far (1 + CAS failures; lock-based commits count one attempt).
	AttemptP99 int64

	LiveJobs int // arrived, not yet departed

	Violations int // bound violations so far (when checking)
	Unexpected int // ... not explained by declared fault injection

	FlightLen     int
	FlightCap     int
	FlightDropped int64

	Trigger string // first anomaly's reason, "" if none yet
}

// Results is the pipeline's final fold, Finish's return.
type Results struct {
	Events  int64
	Commits int64
	Retries int64
	Sheds   int64

	Series *series.Series // nil unless SeriesWindow was set
	Ops    *ops.Set
	Check  *check.Report // nil unless bound checking was configured

	Trigger       string // first anomaly, "" if none
	TriggerAt     rtime.Time
	FlightDropped int64
}

// Pipeline is the composed online fold. Attach it to an engine with
// Observer() (or Tee it with other sinks), run, then Finish.
type Pipeline struct {
	cfg Config

	spans  *span.Stream
	checks *check.Stream
	ser    *series.Stream
	ops    *ops.Stream
	flight *Flight

	events  int64
	commits int64
	retries int64
	sheds   int64

	violations int
	unexpected int

	lastAt rtime.Time

	nextMark rtime.Time

	trigger   string
	triggerAt rtime.Time

	werr error // first Progress write error
}

// NewPipeline validates cfg and assembles the pipeline.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon %v must be positive", ErrConfig, cfg.Horizon)
	}
	if cfg.CPUs < 1 {
		cfg.CPUs = 1
	}
	p := &Pipeline{cfg: cfg, ops: ops.NewStream()}
	p.spans = span.NewStream(p.retired)
	if cfg.CheckTasks != nil && cfg.Check != nil {
		cs, err := check.NewStream(cfg.CheckTasks, *cfg.Check)
		if err != nil {
			return nil, err
		}
		p.checks = cs
	}
	if cfg.SeriesWindow > 0 {
		ss, err := series.NewStream(series.Config{Window: cfg.SeriesWindow, CPUs: cfg.CPUs}, cfg.Horizon)
		if err != nil {
			return nil, err
		}
		p.ser = ss
	}
	if cfg.Flight > 0 {
		p.flight = NewFlight(cfg.Flight)
	}
	if (cfg.Progress != nil || cfg.OnProgress != nil) && cfg.ProgressEvery > 0 {
		p.nextMark = rtime.Time(0).Add(cfg.ProgressEvery)
	}
	return p, nil
}

// Flight returns the attached flight recorder, nil when none.
func (p *Pipeline) Flight() *Flight { return p.flight }

// retired folds one departed (or Finish-sealed) span into the
// downstream consumers and checks it for anomaly triggers.
func (p *Pipeline) retired(s *span.JobSpan) {
	if p.checks != nil {
		for _, v := range p.checks.Observe(s) {
			p.violations++
			if !v.Expected {
				p.unexpected++
				p.fire("bound-violation", p.lastAt)
			}
		}
	}
	if s.Outcome == span.Aborted && (s.Injected || s.InjectedRetries > 0) {
		p.fire("fault-abort", p.lastAt)
	}
	if p.cfg.OnSpan != nil {
		p.cfg.OnSpan(s)
	}
}

// fire records the first anomaly and invokes OnTrigger once.
func (p *Pipeline) fire(reason string, at rtime.Time) {
	if p.trigger != "" {
		return
	}
	p.trigger, p.triggerAt = reason, at
	if p.cfg.OnTrigger != nil {
		p.cfg.OnTrigger(reason, at)
	}
}

// Observe folds one event through every attached sink. Events must be
// nondecreasing in At (every engine's Observer contract); violations
// surface as errors from Finish.
func (p *Pipeline) Observe(e trace.Event) {
	// Progress marks the event crosses are emitted before folding it:
	// each line reports the fold state strictly before its mark.
	for p.nextMark > 0 && e.At >= p.nextMark && p.nextMark <= p.cfg.Horizon {
		p.progressLine(p.nextMark)
		p.nextMark = p.nextMark.Add(p.cfg.ProgressEvery)
	}
	// The flight ring records before the folds so that when an anomaly
	// fires mid-event, the dump already contains the event that tripped
	// it.
	if p.flight != nil {
		p.flight.Observe(e)
	}
	p.events++
	p.lastAt = e.At
	switch e.Kind {
	case trace.Commit:
		p.commits++
	case trace.Retry, trace.FaultRetry:
		p.retries++
	case trace.Shed:
		p.sheds++
		p.fire("shed", e.At)
	}
	p.ops.Observe(e)
	if p.ser != nil {
		p.ser.Observe(e)
	}
	p.spans.Observe(e)
}

// Observer returns Observe bound as an engine callback.
func (p *Pipeline) Observer() func(trace.Event) { return p.Observe }

// Snapshot returns the current fold state. Cheap enough to poll.
func (p *Pipeline) Snapshot() Snapshot {
	s := Snapshot{
		Now:        p.lastAt,
		Events:     p.events,
		Commits:    p.commits,
		Retries:    p.retries,
		Sheds:      p.sheds,
		AttemptP99: p.ops.Total().Attempts.Quantile(0.99),
		LiveJobs:   p.spans.Live(),
		Violations: p.violations,
		Unexpected: p.unexpected,
		Trigger:    p.trigger,
	}
	if p.flight != nil {
		s.FlightLen = p.flight.Len()
		s.FlightCap = p.flight.Cap()
		s.FlightDropped = p.flight.Dropped()
	}
	return s
}

// progressLine renders one deterministic status line at virtual time
// mark.
func (p *Pipeline) progressLine(mark rtime.Time) {
	if p.werr != nil {
		return
	}
	s := p.Snapshot()
	if p.cfg.OnProgress != nil {
		p.cfg.OnProgress(mark, s)
	}
	if p.cfg.Progress == nil {
		return
	}
	line := fmt.Sprintf("progress t=%dus events=%d commits=%d retries=%d sheds=%d p99attempt=%d live=%d",
		mark.Micros(), s.Events, s.Commits, s.Retries, s.Sheds, s.AttemptP99, s.LiveJobs)
	if p.checks != nil {
		line += fmt.Sprintf(" violations=%d", s.Violations)
	}
	if p.flight != nil {
		line += fmt.Sprintf(" flight=%d/%d dropped=%d", s.FlightLen, s.FlightCap, s.FlightDropped)
	}
	_, p.werr = io.WriteString(p.cfg.Progress, line+"\n")
}

// Finish emits any remaining progress marks, seals still-live spans at
// the horizon (delivering them to the bound checker and OnSpan), and
// returns the folded results. The first error from any sink — an
// out-of-order or malformed stream, a check evaluation problem, a
// progress write failure — is returned instead.
func (p *Pipeline) Finish() (*Results, error) {
	for p.nextMark > 0 && p.nextMark <= p.cfg.Horizon {
		p.progressLine(p.nextMark)
		p.nextMark = p.nextMark.Add(p.cfg.ProgressEvery)
	}
	if _, err := p.spans.Finish(p.cfg.Horizon); err != nil {
		return nil, err
	}
	r := &Results{
		Events:    p.events,
		Commits:   p.commits,
		Retries:   p.retries,
		Sheds:     p.sheds,
		Ops:       p.ops.Set(),
		Trigger:   p.trigger,
		TriggerAt: p.triggerAt,
	}
	if p.checks != nil {
		rep, err := p.checks.Report()
		if err != nil {
			return nil, err
		}
		r.Check = rep
	}
	if p.ser != nil {
		ser, err := p.ser.Finish()
		if err != nil {
			return nil, err
		}
		r.Series = ser
	}
	if p.flight != nil {
		r.FlightDropped = p.flight.Dropped()
	}
	if p.werr != nil {
		return nil, fmt.Errorf("obs: progress write: %w", p.werr)
	}
	return r, nil
}
