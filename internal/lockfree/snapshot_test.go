package lockfree

import (
	"sync"
	"testing"
)

func TestSnapshotBasics(t *testing.T) {
	s := NewSnapshot(3, 0)
	if s.Components() != 3 {
		t.Fatalf("Components = %d", s.Components())
	}
	got := s.Scan()
	if len(got) != 3 || got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("initial Scan = %v", got)
	}
	s.Update(1, 42)
	if s.Read(1) != 42 {
		t.Fatalf("Read(1) = %d", s.Read(1))
	}
	got = s.Scan()
	if got[0] != 0 || got[1] != 42 || got[2] != 0 {
		t.Fatalf("Scan = %v", got)
	}
}

func TestSnapshotPanicsOnZeroComponents(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSnapshot(0, 0)
}

func TestSnapshotVersionsMonotone(t *testing.T) {
	s := NewSnapshot(2, 0)
	v0 := s.Versions()
	s.Update(0, 1)
	s.Update(0, 2)
	s.Update(1, 1)
	v1 := s.Versions()
	if v1[0] != v0[0]+2 || v1[1] != v0[1]+1 {
		t.Fatalf("versions %v -> %v", v0, v1)
	}
}

// Concurrent scans must be atomic: with one writer keeping an invariant
// across components (all equal), a scan must never observe a mixed state
// ... except transiently between the two Update calls; so instead the
// writer updates components in lockstep pairs via even/odd protocol:
// invariant is slot1 == slot0 or slot1 == slot0 − 1 at any instant, and
// a scan must never see slot1 > slot0 or slot0 − slot1 > 1.
func TestSnapshotScanAtomicity(t *testing.T) {
	s := NewSnapshot(2, 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	bad := make(chan []int, 1)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.Scan()
				if v[1] > v[0] || v[0]-v[1] > 1 {
					select {
					case bad <- v:
					default:
					}
					return
				}
			}
		}()
	}
	for i := 1; i <= 20000; i++ {
		s.Update(0, i)
		s.Update(1, i)
	}
	close(stop)
	wg.Wait()
	select {
	case v := <-bad:
		t.Fatalf("non-atomic scan: %v", v)
	default:
	}
}

func TestSnapshotScanSeesFreshValues(t *testing.T) {
	// A scan started after an update completes must reflect it.
	s := NewSnapshot(4, 0)
	for i := 0; i < 4; i++ {
		s.Update(i, i*10)
	}
	got := s.Scan()
	for i := 0; i < 4; i++ {
		if got[i] != i*10 {
			t.Fatalf("Scan = %v", got)
		}
	}
	if s.Retries() != 0 {
		t.Fatalf("quiescent scan retried %d times", s.Retries())
	}
}
