package lockfree

import (
	"sync"
	"testing"
)

func TestRegisterReadWrite(t *testing.T) {
	r := NewRegister(10)
	v, ver := r.Read()
	if v != 10 || ver != 0 {
		t.Fatalf("Read = (%d,%d), want (10,0)", v, ver)
	}
	if got := r.Write(20); got != 1 {
		t.Fatalf("Write version = %d, want 1", got)
	}
	v, ver = r.Read()
	if v != 20 || ver != 1 {
		t.Fatalf("Read = (%d,%d), want (20,1)", v, ver)
	}
}

func TestRegisterUpdate(t *testing.T) {
	r := NewRegister(0)
	r.Update(func(v int) int { return v + 5 })
	r.Update(func(v int) int { return v * 2 })
	v, ver := r.Read()
	if v != 10 || ver != 2 {
		t.Fatalf("Read = (%d,%d), want (10,2)", v, ver)
	}
}

func TestRegisterConcurrentUpdatesAllApply(t *testing.T) {
	// Atomicity: N concurrent increments must all land.
	r := NewRegister(0)
	const goroutines, per = 4, 1500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Update(func(v int) int { return v + 1 })
			}
		}()
	}
	wg.Wait()
	v, ver := r.Read()
	if v != goroutines*per {
		t.Fatalf("value = %d, want %d", v, goroutines*per)
	}
	if ver != uint64(goroutines*per) {
		t.Fatalf("version = %d, want %d", ver, goroutines*per)
	}
}

func TestRegisterVersionMonotone(t *testing.T) {
	r := NewRegister("a")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	bad := make(chan uint64, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, ver := r.Read()
			if ver < last {
				select {
				case bad <- ver:
				default:
				}
				return
			}
			last = ver
		}
	}()
	for i := 0; i < 8000; i++ {
		r.Write("b")
	}
	close(stop)
	wg.Wait()
	select {
	case v := <-bad:
		t.Fatalf("version went backwards to %d", v)
	default:
	}
}

func TestRegisterRetriesResettable(t *testing.T) {
	r := NewRegister(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Update(func(v int) int { return v + 1 })
			}
		}()
	}
	wg.Wait()
	got := r.Retries()
	if got < 0 {
		t.Fatalf("negative retries %d", got)
	}
	r.ResetRetries()
	if r.Retries() != 0 {
		t.Fatal("retries not reset")
	}
}
