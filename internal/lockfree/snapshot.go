package lockfree

import "sync/atomic"

// Snapshot is a lock-free multi-component atomic snapshot — the
// "snapshot abstraction" the paper names as future work (§7). It holds n
// independently updatable components and provides Scan, which returns a
// view of all components that was simultaneously valid at some
// linearization point. Scan uses the classic double-collect: read all
// component versions, read all values, re-read versions; if nothing
// moved, the collect is an atomic snapshot, otherwise retry. Updates are
// a single CAS-free pointer swap per component (wait-free); scans are
// lock-free, retrying while updates interfere, and the retry counter
// exposes scan interference the way the object retry counters do.
type Snapshot[T any] struct {
	cells   []atomic.Pointer[snapCell[T]]
	retries atomic.Int64
}

type snapCell[T any] struct {
	val T
	ver uint64
}

// NewSnapshot returns an n-component snapshot object with every
// component holding initial.
func NewSnapshot[T any](n int, initial T) *Snapshot[T] {
	if n < 1 {
		panic("lockfree: snapshot needs at least one component")
	}
	s := &Snapshot[T]{cells: make([]atomic.Pointer[snapCell[T]], n)}
	for i := range s.cells {
		v := initial
		s.cells[i].Store(&snapCell[T]{val: v})
	}
	return s
}

// Components returns n.
func (s *Snapshot[T]) Components() int { return len(s.cells) }

// Update sets component i. Wait-free: one pointer swap.
func (s *Snapshot[T]) Update(i int, v T) {
	old := s.cells[i].Load()
	s.cells[i].Store(&snapCell[T]{val: v, ver: old.ver + 1})
}

// Read returns component i's current value (wait-free).
func (s *Snapshot[T]) Read(i int) T {
	return s.cells[i].Load().val
}

// Scan returns an atomic snapshot of all components.
func (s *Snapshot[T]) Scan() []T {
	n := len(s.cells)
	first := make([]*snapCell[T], n)
	for {
		for i := range s.cells {
			first[i] = s.cells[i].Load()
		}
		same := true
		out := make([]T, n)
		for i := range s.cells {
			cur := s.cells[i].Load()
			if cur != first[i] {
				same = false
				break
			}
			out[i] = cur.val
		}
		if same {
			return out
		}
		s.retries.Add(1)
	}
}

// Versions returns the per-component update counts at a consistent
// double-collect point, for tests asserting snapshot monotonicity.
func (s *Snapshot[T]) Versions() []uint64 {
	n := len(s.cells)
	first := make([]*snapCell[T], n)
	for {
		for i := range s.cells {
			first[i] = s.cells[i].Load()
		}
		same := true
		out := make([]uint64, n)
		for i := range s.cells {
			cur := s.cells[i].Load()
			if cur != first[i] {
				same = false
				break
			}
			out[i] = cur.ver
		}
		if same {
			return out
		}
		s.retries.Add(1)
	}
}

// Retries returns the cumulative scan-retry count.
func (s *Snapshot[T]) Retries() int64 { return s.retries.Load() }
