package lockfree

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestBoundedQueueRejectsBadCapacity(t *testing.T) {
	for _, c := range []int{0, -4, 3, 12} {
		if _, err := NewBoundedQueue[int](c); err == nil {
			t.Errorf("capacity %d accepted", c)
		}
	}
	if _, err := NewBoundedQueue[int](16); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedQueueFIFOAndBounds(t *testing.T) {
	q, _ := NewBoundedQueue[int](4)
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty queue dequeued")
	}
	for i := 0; i < 4; i++ {
		if !q.Enqueue(i) {
			t.Fatalf("Enqueue %d failed", i)
		}
	}
	if q.Enqueue(99) {
		t.Fatal("full queue accepted an element")
	}
	if q.Len() != 4 || q.Cap() != 4 {
		t.Fatalf("Len,Cap = %d,%d", q.Len(), q.Cap())
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained queue dequeued")
	}
}

func TestBoundedQueueWrapsManyTimes(t *testing.T) {
	q, _ := NewBoundedQueue[int](2)
	for round := 0; round < 1000; round++ {
		if !q.Enqueue(round) {
			t.Fatalf("round %d enqueue failed", round)
		}
		v, ok := q.Dequeue()
		if !ok || v != round {
			t.Fatalf("round %d: (%d,%v)", round, v, ok)
		}
	}
}

func TestBoundedQueueConcurrentMPMC(t *testing.T) {
	const producers, consumers, per = 4, 4, 600
	q, _ := NewBoundedQueue[int](64)
	var wg, cwg sync.WaitGroup
	results := make(chan int, producers*per)
	done := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; {
				if q.Enqueue(p*per + i) {
					i++
				}
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				if v, ok := q.Dequeue(); ok {
					results <- v
					continue
				}
				select {
				case <-done:
					for {
						v, ok := q.Dequeue()
						if !ok {
							return
						}
						results <- v
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	close(results)
	seen := make(map[int]bool, producers*per)
	for v := range results {
		if seen[v] {
			t.Fatalf("value %d delivered twice", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*per {
		t.Fatalf("delivered %d, want %d", len(seen), producers*per)
	}
}

// Property: bounded queue matches a bounded model FIFO single-threaded.
func TestQuickBoundedQueueMatchesModel(t *testing.T) {
	f := func(capPow uint8, ops []int16) bool {
		capacity := 1 << (capPow%4 + 1) // 2..16
		q, err := NewBoundedQueue[int16](capacity)
		if err != nil {
			return false
		}
		var model []int16
		for _, op := range ops {
			if op >= 0 {
				want := len(model) < capacity
				if q.Enqueue(op) != want {
					return false
				}
				if want {
					model = append(model, op)
				}
			} else {
				v, ok := q.Dequeue()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
