package lockfree

import "sync/atomic"

// Queue is the lock-free FIFO queue of Michael and Scott — the object the
// paper's QNX evaluation shares among its 10 tasks. Enqueue swings the
// tail forward with CAS; dequeue swings the head. Operations that lose a
// CAS race retry from a fresh read, and each such restart increments the
// retry counter.
//
// The zero value is not usable; call NewQueue.
type Queue[T any] struct {
	head    atomic.Pointer[qnode[T]]
	tail    atomic.Pointer[qnode[T]]
	retries atomic.Int64
	length  atomic.Int64
}

type qnode[T any] struct {
	val  T
	next atomic.Pointer[qnode[T]]
}

// NewQueue returns an empty queue with a sentinel node installed.
func NewQueue[T any]() *Queue[T] {
	q := &Queue[T]{}
	sentinel := &qnode[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Enqueue appends v to the tail.
func (q *Queue[T]) Enqueue(v T) {
	n := &qnode[T]{val: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			q.retries.Add(1)
			continue
		}
		if next != nil {
			// Tail is lagging; help swing it and retry.
			q.tail.CompareAndSwap(tail, next)
			q.retries.Add(1)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.length.Add(1)
			return
		}
		q.retries.Add(1)
	}
}

// Dequeue removes and returns the head element. ok is false if the queue
// was observed empty.
func (q *Queue[T]) Dequeue() (v T, ok bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			q.retries.Add(1)
			continue
		}
		if next == nil {
			var zero T
			return zero, false
		}
		if head == tail {
			// Tail is lagging behind a concurrent enqueue; help it.
			q.tail.CompareAndSwap(tail, next)
			q.retries.Add(1)
			continue
		}
		val := next.val
		if q.head.CompareAndSwap(head, next) {
			q.length.Add(-1)
			return val, true
		}
		q.retries.Add(1)
	}
}

// Len returns the approximate number of elements (exact when quiescent).
func (q *Queue[T]) Len() int { return int(q.length.Load()) }

// Retries returns the cumulative CAS-retry count across all operations.
func (q *Queue[T]) Retries() int64 { return q.retries.Load() }

// ResetRetries zeroes the retry counter and returns the previous value.
func (q *Queue[T]) ResetRetries() int64 { return q.retries.Swap(0) }
