package lockfree

import "sync/atomic"

// List is a lock-free sorted set of int64 keys in the lineage of Valois's
// CAS-based linked lists [26], implemented with Harris-style two-phase
// deletion: a delete first marks the victim's link (logical removal), then
// unlinks it (physical removal); traversals help finish physical removals
// they encounter. The (next, marked) pair is kept in a single immutable
// link cell swapped by CAS, which makes the mark and the successor update
// atomic without bit-stealing — safe under Go's garbage collector.
type List struct {
	head    *lnode
	retries atomic.Int64
	length  atomic.Int64
}

type lnode struct {
	key  int64
	link atomic.Pointer[llink]
}

type llink struct {
	next   *lnode
	marked bool
}

// NewList returns an empty sorted set.
func NewList() *List {
	l := &List{head: &lnode{key: -1 << 62}}
	l.head.link.Store(&llink{})
	return l
}

// search returns adjacent nodes (pred, curr) such that pred.key < key and
// curr is the first unmarked node with curr.key ≥ key (curr may be nil at
// the tail). It physically removes marked nodes it passes.
func (l *List) search(key int64) (pred, curr *lnode) {
retry:
	for {
		pred = l.head
		plink := pred.link.Load()
		curr = plink.next
		for curr != nil {
			clink := curr.link.Load()
			if clink.marked {
				// Help unlink the logically deleted node.
				if !pred.link.CompareAndSwap(plink, &llink{next: clink.next}) {
					l.retries.Add(1)
					continue retry
				}
				plink = pred.link.Load()
				curr = plink.next
				continue
			}
			if curr.key >= key {
				return pred, curr
			}
			pred = curr
			plink = clink
			curr = clink.next
		}
		return pred, nil
	}
}

// Insert adds key to the set; it reports false if the key was already
// present.
func (l *List) Insert(key int64) bool {
	for {
		pred, curr := l.search(key)
		if curr != nil && curr.key == key {
			return false
		}
		n := &lnode{key: key}
		n.link.Store(&llink{next: curr})
		plink := pred.link.Load()
		if plink.marked || plink.next != curr {
			l.retries.Add(1)
			continue
		}
		if pred.link.CompareAndSwap(plink, &llink{next: n}) {
			l.length.Add(1)
			return true
		}
		l.retries.Add(1)
	}
}

// Delete removes key from the set; it reports false if absent.
func (l *List) Delete(key int64) bool {
	for {
		_, curr := l.search(key)
		if curr == nil || curr.key != key {
			return false
		}
		clink := curr.link.Load()
		if clink.marked {
			l.retries.Add(1)
			continue
		}
		// Logical removal: mark the victim.
		if !curr.link.CompareAndSwap(clink, &llink{next: clink.next, marked: true}) {
			l.retries.Add(1)
			continue
		}
		l.length.Add(-1)
		// Physical removal is best-effort; search() will finish it.
		l.search(key)
		return true
	}
}

// Contains reports whether key is in the set. It does not modify the list
// and never retries — a wait-free read.
func (l *List) Contains(key int64) bool {
	curr := l.head.link.Load().next
	for curr != nil && curr.key < key {
		curr = curr.link.Load().next
	}
	if curr == nil || curr.key != key {
		return false
	}
	return !curr.link.Load().marked
}

// Keys returns a snapshot of the unmarked keys in ascending order. Like
// any lock-free snapshot it is only guaranteed exact when quiescent.
func (l *List) Keys() []int64 {
	var out []int64
	curr := l.head.link.Load().next
	for curr != nil {
		cl := curr.link.Load()
		if !cl.marked {
			out = append(out, curr.key)
		}
		curr = cl.next
	}
	return out
}

// Len returns the approximate number of keys (exact when quiescent).
func (l *List) Len() int { return int(l.length.Load()) }

// Retries returns the cumulative CAS-retry count.
func (l *List) Retries() int64 { return l.retries.Load() }

// ResetRetries zeroes the retry counter and returns the previous value.
func (l *List) ResetRetries() int64 { return l.retries.Swap(0) }
