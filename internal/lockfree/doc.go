// Package lockfree provides the lock-free shared objects the paper's
// evaluation uses (§6): the Michael–Scott queue [21], the Treiber stack
// [25], a Valois-style lock-free sorted linked list [26], a multi-writer
// multi-reader register, and a single-producer single-consumer ring.
//
// Lock-free objects guarantee that SOME operation completes in a finite
// number of steps; an individual operation may be forced to retry when a
// concurrent operation changes the object between its read and its
// compare-and-swap. Every structure here counts those retries with an
// atomic counter, exposing exactly the per-access retry quantity that
// Theorem 2 bounds (f_i). The counters add one uncontended atomic add per
// retry — negligible next to the CAS traffic being measured — and can be
// read and reset without stopping the object.
//
// All structures are allocation-per-node and rely on Go's garbage
// collector for safe memory reclamation, which sidesteps the ABA problem
// without hazard pointers or tags: a node address cannot be reused while
// any thread still holds a pointer to it.
package lockfree
