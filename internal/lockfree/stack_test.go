package lockfree

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestStackLIFO(t *testing.T) {
	var s Stack[int]
	if _, ok := s.Pop(); ok {
		t.Fatal("empty stack popped something")
	}
	if _, ok := s.Peek(); ok {
		t.Fatal("empty stack peeked something")
	}
	for i := 0; i < 5; i++ {
		s.Push(i)
	}
	if v, ok := s.Peek(); !ok || v != 4 {
		t.Fatalf("Peek = (%d,%v), want (4,true)", v, ok)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 4; i >= 0; i-- {
		v, ok := s.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len after drain = %d", s.Len())
	}
}

func TestStackConcurrentNoLossNoDup(t *testing.T) {
	const goroutines, per = 4, 1000
	var s Stack[int]
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Push(g*per + i)
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[int]bool, goroutines*per)
	for {
		v, ok := s.Pop()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	if len(seen) != goroutines*per {
		t.Fatalf("popped %d values, want %d", len(seen), goroutines*per)
	}
}

func TestStackConcurrentMixed(t *testing.T) {
	var s Stack[int]
	var wg sync.WaitGroup
	var popped sync.Map
	var pushCount, popCount int64
	var mu sync.Mutex
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			myPush, myPop := int64(0), int64(0)
			for i := 0; i < 1500; i++ {
				if i%2 == 0 {
					s.Push(g*10000 + i)
					myPush++
				} else if v, ok := s.Pop(); ok {
					if _, dup := popped.LoadOrStore(v, true); dup {
						t.Errorf("value %d popped twice", v)
					}
					myPop++
				}
			}
			mu.Lock()
			pushCount += myPush
			popCount += myPop
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	rest := 0
	for {
		if _, ok := s.Pop(); !ok {
			break
		}
		rest++
	}
	if popCount+int64(rest) != pushCount {
		t.Fatalf("pushed %d, popped %d + %d remaining", pushCount, popCount, rest)
	}
}

// Property: a stack mirrors a model slice under arbitrary op sequences.
func TestQuickStackMatchesModel(t *testing.T) {
	f := func(ops []int16) bool {
		var s Stack[int16]
		var model []int16
		for _, op := range ops {
			if op >= 0 {
				s.Push(op)
				model = append(model, op)
			} else {
				v, ok := s.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || v != want {
					return false
				}
			}
		}
		return s.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
