package lockfree_test

import (
	"fmt"

	"repro/internal/lockfree"
)

func ExampleQueue() {
	q := lockfree.NewQueue[string]()
	q.Enqueue("plot-1")
	q.Enqueue("plot-2")
	v, _ := q.Dequeue()
	fmt.Println(v, q.Len())
	// Output: plot-1 1
}

func ExampleStack() {
	var s lockfree.Stack[int]
	s.Push(1)
	s.Push(2)
	v, _ := s.Pop()
	fmt.Println(v)
	// Output: 2
}

func ExampleRegister() {
	r := lockfree.NewRegister(10)
	r.Update(func(v int) int { return v * 3 })
	v, version := r.Read()
	fmt.Println(v, version)
	// Output: 30 1
}

func ExampleList() {
	l := lockfree.NewList()
	l.Insert(5)
	l.Insert(2)
	l.Insert(9)
	l.Delete(5)
	fmt.Println(l.Keys())
	// Output: [2 9]
}

func ExampleSnapshot() {
	s := lockfree.NewSnapshot(3, 0)
	s.Update(0, 10)
	s.Update(2, 30)
	fmt.Println(s.Scan())
	// Output: [10 0 30]
}

func ExampleBoundedQueue() {
	q, _ := lockfree.NewBoundedQueue[int](4)
	for i := 1; i <= 5; i++ {
		if !q.Enqueue(i) {
			fmt.Println("full at", i)
		}
	}
	v, _ := q.Dequeue()
	fmt.Println("head", v)
	// Output:
	// full at 5
	// head 1
}
