package lockfree

import (
	"fmt"
	"sync/atomic"
)

// BoundedQueue is an array-based multi-producer/multi-consumer lock-free
// queue (the per-cell sequence-number design): each slot carries a
// sequence counter that tells producers and consumers whose turn it is,
// so an operation claims its slot with one CAS on the ticket counter and
// then publishes with a release store. Unlike the linked Michael–Scott
// queue it allocates nothing per operation and rejects when full —
// the bounded-memory profile embedded systems want, at the price of a
// fixed capacity. Retry accounting matches the other objects: every
// failed claim increments the counter.
type BoundedQueue[T any] struct {
	buf     []bqCell[T]
	mask    uint64
	enq     atomic.Uint64
	deq     atomic.Uint64
	retries atomic.Int64
}

type bqCell[T any] struct {
	seq atomic.Uint64
	val T
}

// NewBoundedQueue returns a queue with the given capacity, which must be
// a positive power of two.
func NewBoundedQueue[T any](capacity int) (*BoundedQueue[T], error) {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("lockfree: bounded queue capacity %d must be a positive power of two", capacity)
	}
	q := &BoundedQueue[T]{buf: make([]bqCell[T], capacity), mask: uint64(capacity - 1)}
	for i := range q.buf {
		q.buf[i].seq.Store(uint64(i))
	}
	return q, nil
}

// Enqueue appends v; it reports false when the queue is full.
//
//rtlint:noalloc ring cells are pre-allocated; the CAS loop touches no heap
func (q *BoundedQueue[T]) Enqueue(v T) bool {
	for {
		pos := q.enq.Load()
		c := &q.buf[pos&q.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos:
			if q.enq.CompareAndSwap(pos, pos+1) {
				c.val = v
				c.seq.Store(pos + 1)
				return true
			}
			q.retries.Add(1)
		case seq < pos:
			// The slot still holds an unconsumed element: full.
			return false
		default:
			// Another producer claimed this ticket; reload.
			q.retries.Add(1)
		}
	}
}

// Dequeue removes the oldest element; ok is false when the queue is
// observed empty.
//
//rtlint:noalloc ring cells are pre-allocated; the CAS loop touches no heap
func (q *BoundedQueue[T]) Dequeue() (v T, ok bool) {
	for {
		pos := q.deq.Load()
		c := &q.buf[pos&q.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos+1:
			if q.deq.CompareAndSwap(pos, pos+1) {
				v = c.val
				var zero T
				c.val = zero // release references for the GC
				c.seq.Store(pos + q.mask + 1)
				return v, true
			}
			q.retries.Add(1)
		case seq < pos+1:
			var zero T
			return zero, false
		default:
			q.retries.Add(1)
		}
	}
}

// Len returns the approximate number of elements (exact when quiescent).
func (q *BoundedQueue[T]) Len() int {
	n := int64(q.enq.Load()) - int64(q.deq.Load())
	if n < 0 {
		return 0
	}
	return int(n)
}

// Cap returns the queue capacity.
func (q *BoundedQueue[T]) Cap() int { return len(q.buf) }

// Retries returns the cumulative claim-retry count.
func (q *BoundedQueue[T]) Retries() int64 { return q.retries.Load() }
