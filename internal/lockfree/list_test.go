package lockfree

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestListBasic(t *testing.T) {
	l := NewList()
	if l.Contains(5) {
		t.Fatal("empty list contains 5")
	}
	if !l.Insert(5) || !l.Insert(3) || !l.Insert(9) {
		t.Fatal("insert of fresh keys failed")
	}
	if l.Insert(5) {
		t.Fatal("duplicate insert succeeded")
	}
	if got := l.Keys(); len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("Keys = %v, want [3 5 9]", got)
	}
	if !l.Contains(3) || !l.Contains(5) || !l.Contains(9) || l.Contains(4) {
		t.Fatal("Contains wrong")
	}
	if !l.Delete(5) {
		t.Fatal("delete of present key failed")
	}
	if l.Delete(5) {
		t.Fatal("double delete succeeded")
	}
	if l.Contains(5) {
		t.Fatal("deleted key still present")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestListSortedAfterRandomOps(t *testing.T) {
	l := NewList()
	keys := []int64{42, 7, 19, 3, 88, 54, 21, 0, -5, 100}
	for _, k := range keys {
		l.Insert(k)
	}
	got := l.Keys()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("Keys not sorted: %v", got)
	}
	if len(got) != len(keys) {
		t.Fatalf("len = %d, want %d", len(got), len(keys))
	}
}

func TestListConcurrentDisjointInserts(t *testing.T) {
	l := NewList()
	const goroutines, per = 4, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if !l.Insert(int64(g*per + i)) {
					t.Errorf("disjoint insert %d failed", g*per+i)
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != goroutines*per {
		t.Fatalf("Len = %d, want %d", l.Len(), goroutines*per)
	}
	keys := l.Keys()
	if len(keys) != goroutines*per {
		t.Fatalf("Keys len = %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order at %d: %d ≥ %d", i, keys[i-1], keys[i])
		}
	}
}

func TestListConcurrentInsertDeleteSameKeys(t *testing.T) {
	l := NewList()
	const keys = 64
	var inserted, deleted [keys]int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var ins, del [keys]int64
			for i := 0; i < 1500; i++ {
				k := int64((i*7 + g*13) % keys)
				if i%2 == 0 {
					if l.Insert(k) {
						ins[k]++
					}
				} else {
					if l.Delete(k) {
						del[k]++
					}
				}
			}
			mu.Lock()
			for k := 0; k < keys; k++ {
				inserted[k] += ins[k]
				deleted[k] += del[k]
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	// Invariant: for each key, inserts − deletes == 1 if present, 0 if not.
	final := map[int64]bool{}
	for _, k := range l.Keys() {
		final[k] = true
	}
	for k := int64(0); k < keys; k++ {
		diff := inserted[k] - deleted[k]
		want := int64(0)
		if final[k] {
			want = 1
		}
		if diff != want {
			t.Errorf("key %d: inserts-deletes = %d, present=%v", k, diff, final[k])
		}
	}
}

// Property: list mirrors a model set under arbitrary op sequences.
func TestQuickListMatchesModelSet(t *testing.T) {
	f := func(ops []int8) bool {
		l := NewList()
		model := map[int64]bool{}
		for _, op := range ops {
			k := int64(op % 16)
			if op >= 0 {
				want := !model[k]
				if l.Insert(k) != want {
					return false
				}
				model[k] = true
			} else {
				want := model[k]
				if l.Delete(k) != want {
					return false
				}
				delete(model, k)
			}
			if l.Contains(k) != model[k] {
				return false
			}
		}
		keys := l.Keys()
		if len(keys) != len(model) {
			return false
		}
		for _, k := range keys {
			if !model[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
