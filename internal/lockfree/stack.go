package lockfree

import "sync/atomic"

// Stack is Treiber's lock-free LIFO stack: a single CAS on the top
// pointer per operation, retried on contention.
//
// The zero value is an empty, ready-to-use stack.
type Stack[T any] struct {
	top     atomic.Pointer[snode[T]]
	retries atomic.Int64
	length  atomic.Int64
}

type snode[T any] struct {
	val  T
	next *snode[T]
}

// Push adds v on top.
func (s *Stack[T]) Push(v T) {
	n := &snode[T]{val: v}
	for {
		old := s.top.Load()
		n.next = old
		if s.top.CompareAndSwap(old, n) {
			s.length.Add(1)
			return
		}
		s.retries.Add(1)
	}
}

// Pop removes and returns the top element; ok is false if the stack was
// observed empty.
func (s *Stack[T]) Pop() (v T, ok bool) {
	for {
		old := s.top.Load()
		if old == nil {
			var zero T
			return zero, false
		}
		if s.top.CompareAndSwap(old, old.next) {
			s.length.Add(-1)
			return old.val, true
		}
		s.retries.Add(1)
	}
}

// Peek returns the top element without removing it.
func (s *Stack[T]) Peek() (v T, ok bool) {
	old := s.top.Load()
	if old == nil {
		var zero T
		return zero, false
	}
	return old.val, true
}

// Len returns the approximate number of elements (exact when quiescent).
func (s *Stack[T]) Len() int { return int(s.length.Load()) }

// Retries returns the cumulative CAS-retry count.
func (s *Stack[T]) Retries() int64 { return s.retries.Load() }

// ResetRetries zeroes the retry counter and returns the previous value.
func (s *Stack[T]) ResetRetries() int64 { return s.retries.Swap(0) }
