package lockfree

import (
	"sync"
	"testing"
)

func TestRingRejectsBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1, 3, 6, 100} {
		if _, err := NewRing[int](c); err == nil {
			t.Errorf("capacity %d accepted", c)
		}
	}
	if _, err := NewRing[int](8); err != nil {
		t.Fatalf("capacity 8 rejected: %v", err)
	}
}

func TestRingFIFOAndBounds(t *testing.T) {
	r, _ := NewRing[int](4)
	if _, ok := r.Poll(); ok {
		t.Fatal("empty ring polled something")
	}
	for i := 0; i < 4; i++ {
		if !r.Offer(i) {
			t.Fatalf("Offer %d failed", i)
		}
	}
	if r.Offer(99) {
		t.Fatal("full ring accepted an element")
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("Len,Cap = %d,%d", r.Len(), r.Cap())
	}
	for i := 0; i < 4; i++ {
		v, ok := r.Poll()
		if !ok || v != i {
			t.Fatalf("Poll = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := r.Poll(); ok {
		t.Fatal("drained ring polled something")
	}
}

func TestRingWrapAround(t *testing.T) {
	r, _ := NewRing[int](2)
	for round := 0; round < 100; round++ {
		if !r.Offer(round) {
			t.Fatalf("Offer failed at round %d", round)
		}
		v, ok := r.Poll()
		if !ok || v != round {
			t.Fatalf("round %d: Poll = (%d,%v)", round, v, ok)
		}
	}
}

func TestRingSPSCConcurrent(t *testing.T) {
	const n = 30000
	r, _ := NewRing[int](64)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; {
			if r.Offer(i) {
				i++
			}
		}
	}()
	var got []int
	go func() {
		defer wg.Done()
		for len(got) < n {
			if v, ok := r.Poll(); ok {
				got = append(got, v)
			}
		}
	}()
	wg.Wait()
	for i, v := range got {
		if v != i {
			t.Fatalf("element %d = %d (order violated)", i, v)
		}
	}
}
