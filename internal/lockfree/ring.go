package lockfree

import (
	"fmt"
	"sync/atomic"
)

// Ring is a bounded single-producer/single-consumer ring buffer in the
// style of Kopetz and Reisinger's NBW protocol lineage [16]: the producer
// and consumer each own one index, so operations are WAIT-free (no CAS,
// no retries) as long as the single-writer discipline is respected. It is
// included as the wait-free point of comparison the paper discusses in
// §1.1 — bounded steps, but bought with a priori buffer space.
type Ring[T any] struct {
	buf  []T
	mask uint64
	head atomic.Uint64 // next slot to read  (consumer-owned)
	tail atomic.Uint64 // next slot to write (producer-owned)
}

// NewRing returns a ring with the given capacity, which must be a power
// of two.
func NewRing[T any](capacity int) (*Ring[T], error) {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("lockfree: ring capacity %d must be a positive power of two", capacity)
	}
	return &Ring[T]{buf: make([]T, capacity), mask: uint64(capacity - 1)}, nil
}

// Offer appends v; it reports false when the ring is full. Producer-side
// only.
func (r *Ring[T]) Offer(v T) bool {
	t := r.tail.Load()
	if t-r.head.Load() > r.mask {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// Poll removes the oldest element; ok is false when the ring is empty.
// Consumer-side only.
func (r *Ring[T]) Poll() (v T, ok bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		var zero T
		return zero, false
	}
	v = r.buf[h&r.mask]
	r.head.Store(h + 1)
	return v, true
}

// Len returns the number of buffered elements.
func (r *Ring[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }
