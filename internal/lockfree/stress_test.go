package lockfree

import (
	"runtime"
	"sync"
	"testing"
)

// Stress tests: every structure under real concurrent load on real
// atomics, designed to run under -race. Each test encodes the
// structure's own invariant — element conservation and per-producer
// FIFO for the queues, conservation for the stack, linearizable set
// semantics for the list, strict SPSC ordering for the ring, lost-
// update freedom for the register, and cross-component consistency for
// the snapshot — rather than just "does not crash".

// stressN scales iteration counts down under -short and up when many
// cores are available to actually interleave.
func stressN(t *testing.T, full int) int {
	t.Helper()
	if testing.Short() {
		return full / 10
	}
	return full
}

// item tags a value with its producer and per-producer sequence so
// consumers can check conservation and order.
type item struct {
	producer int
	seq      int
}

// checkConservation asserts every (producer, seq) in [0,perProducer)
// × [0,producers) was consumed exactly once, and that each consumer saw
// each producer's items in FIFO order when fifo is set.
func checkConservation(t *testing.T, consumed [][]item, producers, perProducer int, fifo bool) {
	t.Helper()
	seen := make([][]bool, producers)
	for p := range seen {
		seen[p] = make([]bool, perProducer)
	}
	total := 0
	for ci, items := range consumed {
		last := make([]int, producers)
		for p := range last {
			last[p] = -1
		}
		for _, it := range items {
			if it.producer < 0 || it.producer >= producers || it.seq < 0 || it.seq >= perProducer {
				t.Fatalf("consumer %d saw out-of-range item %+v", ci, it)
			}
			if seen[it.producer][it.seq] {
				t.Fatalf("item %+v consumed twice", it)
			}
			seen[it.producer][it.seq] = true
			total++
			if fifo {
				if it.seq <= last[it.producer] {
					t.Fatalf("consumer %d saw producer %d seq %d after seq %d (FIFO violated)",
						ci, it.producer, it.seq, last[it.producer])
				}
				last[it.producer] = it.seq
			}
		}
	}
	if want := producers * perProducer; total != want {
		t.Fatalf("consumed %d items, want %d (lost elements)", total, want)
	}
}

func TestStressQueue(t *testing.T) {
	const producers, consumers = 4, 4
	perProducer := stressN(t, 5000)
	q := NewQueue[item]()
	consumed := make([][]item, consumers)
	var wg sync.WaitGroup
	var done sync.WaitGroup
	done.Add(producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer done.Done()
			for s := 0; s < perProducer; s++ {
				q.Enqueue(item{producer: p, seq: s})
			}
		}(p)
	}
	stop := make(chan struct{})
	go func() { done.Wait(); close(stop) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				it, ok := q.Dequeue()
				if ok {
					consumed[c] = append(consumed[c], it)
					continue
				}
				select {
				case <-stop:
					// Producers finished; drain what's left and exit.
					for {
						it, ok := q.Dequeue()
						if !ok {
							return
						}
						consumed[c] = append(consumed[c], it)
					}
				default:
					runtime.Gosched()
				}
			}
		}(c)
	}
	wg.Wait()
	checkConservation(t, consumed, producers, perProducer, true)
	if q.Len() != 0 {
		t.Fatalf("drained queue has Len %d", q.Len())
	}
}

func TestStressBoundedQueue(t *testing.T) {
	const producers, consumers, capacity = 4, 4, 8
	perProducer := stressN(t, 5000)
	q, err := NewBoundedQueue[item](capacity)
	if err != nil {
		t.Fatal(err)
	}
	consumed := make([][]item, consumers)
	var wg sync.WaitGroup
	var done sync.WaitGroup
	done.Add(producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer done.Done()
			for s := 0; s < perProducer; s++ {
				for !q.Enqueue(item{producer: p, seq: s}) {
					runtime.Gosched() // full: consumers must make room
				}
			}
		}(p)
	}
	stop := make(chan struct{})
	go func() { done.Wait(); close(stop) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				it, ok := q.Dequeue()
				if ok {
					if n := q.Len(); n < 0 || n > capacity {
						t.Errorf("Len %d outside [0,%d]", n, capacity)
						return
					}
					consumed[c] = append(consumed[c], it)
					continue
				}
				select {
				case <-stop:
					for {
						it, ok := q.Dequeue()
						if !ok {
							return
						}
						consumed[c] = append(consumed[c], it)
					}
				default:
					runtime.Gosched()
				}
			}
		}(c)
	}
	wg.Wait()
	checkConservation(t, consumed, producers, perProducer, true)
	if q.Len() != 0 {
		t.Fatalf("drained queue has Len %d", q.Len())
	}
}

func TestStressStack(t *testing.T) {
	const producers, consumers = 4, 4
	perProducer := stressN(t, 5000)
	var st Stack[item]
	consumed := make([][]item, consumers)
	var wg sync.WaitGroup
	var done sync.WaitGroup
	done.Add(producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer done.Done()
			for s := 0; s < perProducer; s++ {
				st.Push(item{producer: p, seq: s})
			}
		}(p)
	}
	stop := make(chan struct{})
	go func() { done.Wait(); close(stop) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				it, ok := st.Pop()
				if ok {
					consumed[c] = append(consumed[c], it)
					continue
				}
				select {
				case <-stop:
					for {
						it, ok := st.Pop()
						if !ok {
							return
						}
						consumed[c] = append(consumed[c], it)
					}
				default:
					runtime.Gosched()
				}
			}
		}(c)
	}
	wg.Wait()
	// LIFO gives no cross-goroutine order guarantee; conservation must
	// still hold exactly.
	checkConservation(t, consumed, producers, perProducer, false)
	if st.Len() != 0 {
		t.Fatalf("drained stack has Len %d", st.Len())
	}
}

func TestStressList(t *testing.T) {
	const workers = 4
	perWorker := stressN(t, 2000)
	l := NewList()
	var wg sync.WaitGroup
	// Writers own disjoint key ranges: insert every key, delete the odd
	// ones, leaving exactly the even keys.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * perWorker)
			for k := 0; k < perWorker; k++ {
				key := base + int64(k)
				if !l.Insert(key) {
					t.Errorf("insert %d failed (key owned by this worker)", key)
					return
				}
				if k%2 == 1 {
					if !l.Delete(key) {
						t.Errorf("delete %d failed right after insert", key)
						return
					}
				}
			}
		}(w)
	}
	// Readers: Keys() must always be sorted and duplicate-free, even
	// mid-churn.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				keys := l.Keys()
				for i := 1; i < len(keys); i++ {
					if keys[i] <= keys[i-1] {
						t.Errorf("Keys() not strictly sorted: %d then %d", keys[i-1], keys[i])
						return
					}
				}
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}
	want := workers * ((perWorker + 1) / 2)
	if l.Len() != want {
		t.Fatalf("final Len %d, want %d", l.Len(), want)
	}
	for w := 0; w < workers; w++ {
		base := int64(w * perWorker)
		for k := 0; k < perWorker; k++ {
			key := base + int64(k)
			if got, want := l.Contains(key), k%2 == 0; got != want {
				t.Fatalf("Contains(%d) = %v, want %v", key, got, want)
			}
		}
	}
}

// TestStressRing exercises the ring's single-producer single-consumer
// contract (its only supported concurrency): the consumer must observe
// exactly 0..n-1 in order.
func TestStressRing(t *testing.T) {
	n := stressN(t, 100000)
	r, err := NewRing[int](8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 0; v < n; v++ {
			for !r.Offer(v) {
				runtime.Gosched()
			}
		}
	}()
	next := 0
	for next < n {
		v, ok := r.Poll()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != next {
			t.Fatalf("ring delivered %d, want %d (SPSC order broken)", v, next)
		}
		next++
	}
	wg.Wait()
	if _, ok := r.Poll(); ok {
		t.Fatal("ring non-empty after consuming every offer")
	}
}

func TestStressRegister(t *testing.T) {
	const writers = 4
	perWriter := stressN(t, 5000)
	r := NewRegister(0)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Update(func(v int) int { return v + 1 })
			}
		}()
	}
	// Readers: the (value, version) pair they see must be monotonically
	// non-decreasing — versions never go backwards.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastVer uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, ver := r.Read()
				if ver < lastVer {
					t.Errorf("register version went backwards: %d after %d", ver, lastVer)
					return
				}
				lastVer = ver
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}
	want := writers * perWriter
	if v, ver := r.Read(); v != want || ver != uint64(want) {
		t.Fatalf("final (value, version) = (%d, %d), want (%d, %d) — lost updates", v, ver, want, want)
	}
}

func TestStressSnapshot(t *testing.T) {
	const components, scanners = 4, 4
	perComponent := stressN(t, 5000)
	s := NewSnapshot(components, 0)
	var wg sync.WaitGroup
	// One updater per component (Update is wait-free but single-writer
	// per cell), counting up by 1.
	for c := 0; c < components; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for v := 1; v <= perComponent; v++ {
				s.Update(c, v)
			}
		}(c)
	}
	stop := make(chan struct{})
	var scans sync.WaitGroup
	for sc := 0; sc < scanners; sc++ {
		scans.Add(1)
		go func() {
			defer scans.Done()
			prev := make([]int, components)
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Scan()
				for i, v := range snap {
					// Values count up, so a linearizable scan can never
					// observe a component going backwards across scans.
					if v < prev[i] {
						t.Errorf("scan component %d went backwards: %d after %d", i, v, prev[i])
						return
					}
					prev[i] = v
				}
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()
	close(stop)
	scans.Wait()
	if t.Failed() {
		return
	}
	final := s.Scan()
	vers := s.Versions()
	for i := 0; i < components; i++ {
		if final[i] != perComponent || vers[i] != uint64(perComponent) {
			t.Fatalf("component %d final (value, version) = (%d, %d), want (%d, %d)",
				i, final[i], vers[i], perComponent, perComponent)
		}
	}
}
