package lockfree

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int]()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty queue dequeued something")
	}
	for i := 0; i < 10; i++ {
		q.Enqueue(i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	for i := 0; i < 10; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue %d = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained queue dequeued something")
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

func TestQueueInterleaved(t *testing.T) {
	q := NewQueue[string]()
	q.Enqueue("a")
	q.Enqueue("b")
	if v, _ := q.Dequeue(); v != "a" {
		t.Fatalf("got %q, want a", v)
	}
	q.Enqueue("c")
	if v, _ := q.Dequeue(); v != "b" {
		t.Fatalf("got %q, want b", v)
	}
	if v, _ := q.Dequeue(); v != "c" {
		t.Fatalf("got %q, want c", v)
	}
}

func TestQueueConcurrentMPMC(t *testing.T) {
	const producers, consumers, perProducer = 4, 4, 500
	q := NewQueue[int]()
	var wg sync.WaitGroup
	results := make(chan int, producers*perProducer)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(p*perProducer + i)
			}
		}(p)
	}
	var cwg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				if v, ok := q.Dequeue(); ok {
					results <- v
					continue
				}
				select {
				case <-done:
					// Final drain after producers stop.
					for {
						v, ok := q.Dequeue()
						if !ok {
							return
						}
						results <- v
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	close(results)

	seen := make(map[int]bool, producers*perProducer)
	for v := range results {
		if seen[v] {
			t.Fatalf("value %d delivered twice", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("delivered %d values, want %d", len(seen), producers*perProducer)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty at the end: %d", q.Len())
	}
}

func TestQueuePerProducerOrderPreserved(t *testing.T) {
	// FIFO per producer: values from one producer must come out in order.
	const producers, perProducer = 4, 1000
	q := NewQueue[[2]int]()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue([2]int{p, i})
			}
		}(p)
	}
	wg.Wait()
	last := make([]int, producers)
	for i := range last {
		last[i] = -1
	}
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		if v[1] <= last[v[0]] {
			t.Fatalf("producer %d out of order: %d after %d", v[0], v[1], last[v[0]])
		}
		last[v[0]] = v[1]
	}
	for p, l := range last {
		if l != perProducer-1 {
			t.Fatalf("producer %d: last seen %d", p, l)
		}
	}
}

func TestQueueRetriesUnderContention(t *testing.T) {
	q := NewQueue[int]()
	q.ResetRetries()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				q.Enqueue(i)
				q.Dequeue()
			}
		}()
	}
	wg.Wait()
	// Retries are probabilistic, but with 8 goroutines hammering a single
	// queue on a multicore box, zero retries would indicate the counter is
	// disconnected. Only assert non-negativity plus reset semantics to stay
	// robust on single-core CI.
	r := q.Retries()
	if r < 0 {
		t.Fatalf("negative retries %d", r)
	}
	if got := q.ResetRetries(); got != r && got < r {
		t.Fatalf("ResetRetries returned %d, counter was %d", got, r)
	}
	if q.Retries() != 0 {
		t.Fatal("retries not reset")
	}
}

// Property: any sequence of enqueues/dequeues behaves like a model slice.
func TestQuickQueueMatchesModel(t *testing.T) {
	f := func(ops []int16) bool {
		q := NewQueue[int16]()
		var model []int16
		for _, op := range ops {
			if op >= 0 {
				q.Enqueue(op)
				model = append(model, op)
			} else {
				v, ok := q.Dequeue()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
