package lockfree

import "sync/atomic"

// Register is a multi-writer/multi-reader atomic register — the
// abstraction behind the paper's "multi-writer/multi-reader problem"
// (§7). Reads are wait-free (a single pointer load). Plain writes are
// wait-free too (a pointer swap); read-modify-write updates are
// lock-free, retrying when a concurrent update lands between the read
// and the CAS.
type Register[T any] struct {
	cell    atomic.Pointer[regCell[T]]
	retries atomic.Int64
}

type regCell[T any] struct {
	val T
	ver uint64
}

// NewRegister returns a register holding initial.
func NewRegister[T any](initial T) *Register[T] {
	r := &Register[T]{}
	r.cell.Store(&regCell[T]{val: initial, ver: 0})
	return r
}

// Read returns the current value and its version. Wait-free.
func (r *Register[T]) Read() (v T, version uint64) {
	c := r.cell.Load()
	return c.val, c.ver
}

// Write unconditionally installs v, bumping the version. Wait-free in the
// sense of a bounded number of steps per call: the CAS loop here can only
// retry as many times as other writers commit, and each retry increments
// the retry counter, which is the quantity under study.
func (r *Register[T]) Write(v T) uint64 {
	for {
		old := r.cell.Load()
		n := &regCell[T]{val: v, ver: old.ver + 1}
		if r.cell.CompareAndSwap(old, n) {
			return n.ver
		}
		r.retries.Add(1)
	}
}

// Update applies f to the current value atomically (lock-free RMW),
// returning the new version. f may be invoked multiple times and must be
// pure.
func (r *Register[T]) Update(f func(T) T) uint64 {
	for {
		old := r.cell.Load()
		n := &regCell[T]{val: f(old.val), ver: old.ver + 1}
		if r.cell.CompareAndSwap(old, n) {
			return n.ver
		}
		r.retries.Add(1)
	}
}

// Retries returns the cumulative CAS-retry count.
func (r *Register[T]) Retries() int64 { return r.retries.Load() }

// ResetRetries zeroes the retry counter and returns the previous value.
func (r *Register[T]) ResetRetries() int64 { return r.retries.Swap(0) }
