package multi

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rtime"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/tuf"
	"repro/internal/uam"
)

func mkTask(id int, u rtime.Duration, c rtime.Duration, m int, objs []int) *task.Task {
	return &task.Task{
		ID:       id,
		TUF:      tuf.MustStep(float64(id+1), c),
		Arrival:  uam.Spec{L: 0, A: 2, W: c},
		Segments: task.InterleavedSegments(u, m, objs),
	}
}

func TestPartitionKeepsSharersTogether(t *testing.T) {
	tasks := []*task.Task{
		mkTask(0, 100, 2000, 2, []int{0}),    // shares obj 0 with task 1
		mkTask(1, 100, 2000, 2, []int{0, 1}), // bridges obj 0 and 1
		mkTask(2, 100, 2000, 2, []int{1}),    // shares obj 1 with task 1
		mkTask(3, 100, 2000, 2, []int{7}),    // independent
		mkTask(4, 100, 2000, 0, nil),         // no objects
	}
	assign, err := Partition(tasks, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Fatalf("shared-object component split across CPUs: %v", assign)
	}
	for _, a := range assign {
		if a < 0 || a >= 3 {
			t.Fatalf("assignment out of range: %v", assign)
		}
	}
}

func TestPartitionBalances(t *testing.T) {
	var tasks []*task.Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, mkTask(i, 100, 2000, 0, nil)) // independent, equal util
	}
	assign, err := Partition(tasks, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, a := range assign {
		counts[a]++
	}
	for cpu := 0; cpu < 4; cpu++ {
		if counts[cpu] != 2 {
			t.Fatalf("unbalanced assignment: %v", counts)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	tasks := []*task.Task{mkTask(0, 100, 2000, 0, nil)}
	if _, err := Partition(tasks, 0, 5); !errors.Is(err, ErrConfig) {
		t.Fatal("0 CPUs accepted")
	}
	if _, err := Partition(nil, 2, 5); !errors.Is(err, ErrConfig) {
		t.Fatal("empty task set accepted")
	}
}

func TestPartitionDeterministic(t *testing.T) {
	mk := func() []*task.Task {
		var out []*task.Task
		for i := 0; i < 12; i++ {
			out = append(out, mkTask(i, rtime.Duration(50+i*20), 4000, i%3, []int{i % 4}))
		}
		return out
	}
	a1, _ := Partition(mk(), 3, 5)
	a2, _ := Partition(mk(), 3, 5)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("partitioning not deterministic")
		}
	}
}

func TestRunSpreadsOverload(t *testing.T) {
	// Total load ≈ 2.0: hopeless on one CPU, comfortable on four.
	mk := func() []*task.Task {
		var out []*task.Task
		for i := 0; i < 8; i++ {
			// Each task: u=500, C=W=2000, a=2, L=0 → util ≈ 0.25.
			out = append(out, mkTask(i, 500, 2000, 2, []int{i}))
		}
		return out
	}
	one, err := Run(Config{
		CPUs: 1, Tasks: mk(), Mode: sim.LockFree,
		R: 150, S: 5, Horizon: 100_000, ArrivalKind: uam.KindJittered,
		Seed: 3, ConservativeRetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(Config{
		CPUs: 4, Tasks: mk(), Mode: sim.LockFree,
		R: 150, S: 5, Horizon: 100_000, ArrivalKind: uam.KindJittered,
		Seed: 3, ConservativeRetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if one.Stats.AUR >= 0.9 {
		t.Fatalf("single CPU should be overloaded, AUR=%v", one.Stats.AUR)
	}
	if four.Stats.AUR <= one.Stats.AUR+0.1 {
		t.Fatalf("4 CPUs did not help: %v vs %v", four.Stats.AUR, one.Stats.AUR)
	}
	if len(four.PerCPU) != 4 {
		t.Fatalf("PerCPU len = %d", len(four.PerCPU))
	}
}

func TestRunLockBased(t *testing.T) {
	tasks := []*task.Task{
		mkTask(0, 300, 3000, 2, []int{0}),
		mkTask(1, 300, 3000, 2, []int{0}),
		mkTask(2, 300, 3000, 2, []int{1}),
	}
	res, err := Run(Config{
		CPUs: 2, Tasks: tasks, Mode: sim.LockBased,
		R: 50, S: 5, Horizon: 60_000, ArrivalKind: uam.KindPeriodic,
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment[0] != res.Assignment[1] {
		t.Fatal("tasks sharing object 0 split across CPUs")
	}
	if res.Stats.Released == 0 || res.Stats.Completed == 0 {
		t.Fatalf("nothing ran: %+v", res.Stats)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{CPUs: 0}); !errors.Is(err, ErrConfig) {
		t.Fatal("0 CPUs accepted")
	}
}

// Property: partitioning never splits a shared-object component, covers
// every task, and stays within CPU range.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(nRaw, cpusRaw, objsRaw uint8, seed int64) bool {
		n := int(nRaw%10) + 1
		cpus := int(cpusRaw%4) + 1
		objSpace := int(objsRaw%4) + 1
		tasks := make([]*task.Task, n)
		for i := range tasks {
			m := i % 3
			objs := []int{(i + int(seed)) % objSpace, (i * 3) % objSpace}
			tasks[i] = mkTask(i, rtime.Duration(50+i*10), 4000, m, objs)
		}
		assign, err := Partition(tasks, cpus, 5)
		if err != nil {
			return false
		}
		if len(assign) != n {
			return false
		}
		objCPU := map[int]int{}
		for ti, t := range tasks {
			if assign[ti] < 0 || assign[ti] >= cpus {
				return false
			}
			for _, obj := range t.Objects() {
				if prev, ok := objCPU[obj]; ok && prev != assign[ti] {
					return false // object shared across CPUs
				}
				objCPU[obj] = assign[ti]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationEstimate(t *testing.T) {
	tk := mkTask(0, 100, 2000, 2, []int{0}) // u=100, m=2, A=2 L=0 W=2000
	// rate = (0+2)/(2·2000) = 1/2000; demand(5) = 110; util = 0.055.
	got := utilization(tk, 5)
	if got < 0.0549 || got > 0.0551 {
		t.Fatalf("utilization = %v, want ≈0.055", got)
	}
}

func TestComponentsSingleton(t *testing.T) {
	tasks := []*task.Task{
		mkTask(0, 100, 2000, 0, nil),
		mkTask(1, 100, 2000, 0, nil),
	}
	comps := components(tasks)
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
}
