// Package multi extends the reproduction toward the paper's §7 future
// work: multiprocessor scheduling. It implements the PARTITIONED
// discipline — tasks are statically assigned to processors and each
// processor runs its own single-CPU RUA instance — which preserves every
// single-processor result (Theorem 2's retry bound, the sojourn and AUR
// analyses) per partition, because each partition IS the paper's model.
//
// The partitioner is object-aware: tasks that share objects are grouped
// into connected components (union-find over shared-object ids) and each
// component is placed whole, so no object is ever shared across
// processors — cross-CPU object sharing would reintroduce true parallel
// conflicts, which the paper's uniprocessor retry analysis does not
// cover, so the partitioned model deliberately avoids it. Components are
// placed by first-fit on decreasing utilization.
package multi

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stoch"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/uam"
)

// ErrConfig reports an invalid multiprocessor configuration.
var ErrConfig = errors.New("multi: invalid config")

// Config describes a partitioned multiprocessor run. The per-CPU engine
// knobs mirror sim.Config.
type Config struct {
	CPUs  int
	Tasks []*task.Task

	// NewScheduler builds one scheduler instance per CPU (schedulers are
	// stateful in principle, so they must not be shared). Nil means
	// lock-free RUA for LockFree mode and lock-based RUA otherwise.
	NewScheduler func() sched.Scheduler

	Mode              sim.Mode
	R, S              rtime.Duration
	OpCost            float64
	Horizon           rtime.Time
	ArrivalKind       uam.Kind
	Seed              int64
	ConservativeRetry bool

	// Fault, when non-nil and active, injects the same seeded fault plan
	// into every partition engine. The plan is shared unchanged: decisions
	// are pure hashes of (plan seed, task ID, indices), so a task is
	// perturbed identically regardless of which CPU it lands on.
	Fault *fault.Plan

	// Stoch, when non-nil and active, overlays the seeded stochastic
	// scheduler (internal/stoch) on every partition engine. The plan is
	// shared unchanged; each partition folds its CPU index into the
	// decision hashes, so partitions draw independent quanta and picks
	// from one seed.
	Stoch *stoch.Plan

	// Observer, when non-nil, receives every partition engine's trace
	// events with Event.CPU rewritten to the partition index. The
	// partition engines are stepped in lockstep — at each step the engine
	// with the earliest pending event (ties broken by ascending CPU)
	// advances one event — so the merged stream is nondecreasing in
	// Event.At and online sinks (internal/obs) can fold it without
	// buffering or sorting.
	Observer func(trace.Event)
}

// Result aggregates a partitioned run.
type Result struct {
	Assignment []int // task index → CPU
	PerCPU     []sim.Result
	Stats      metrics.RunStats // merged over all CPUs
}

// utilization estimates a task's long-run processor demand.
func utilization(t *task.Task, acc rtime.Duration) float64 {
	return t.Arrival.MeanRate() * float64(t.Demand(acc))
}

// components groups task indices into shared-object connected components
// using union-find.
func components(tasks []*task.Task) [][]int {
	parent := make([]int, len(tasks))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	byObject := map[int]int{} // object id → first task index seen
	for i, t := range tasks {
		for _, obj := range t.Objects() {
			if first, ok := byObject[obj]; ok {
				union(i, first)
			} else {
				byObject[obj] = i
			}
		}
	}
	groups := map[int][]int{}
	for i := range tasks {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	// Deterministic order: by first member.
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// Partition assigns tasks to cpus: shared-object components stay whole;
// components are placed largest-utilization-first onto the least-loaded
// CPU (a first-fit-decreasing/worst-fit hybrid that balances load while
// keeping the assignment deterministic). It returns the per-task CPU
// index.
func Partition(tasks []*task.Task, cpus int, acc rtime.Duration) ([]int, error) {
	if cpus < 1 {
		return nil, fmt.Errorf("%w: %d CPUs", ErrConfig, cpus)
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("%w: no tasks", ErrConfig)
	}
	comps := components(tasks)
	type comp struct {
		members []int
		util    float64
	}
	cs := make([]comp, len(comps))
	for i, members := range comps {
		u := 0.0
		for _, ti := range members {
			u += utilization(tasks[ti], acc)
		}
		cs[i] = comp{members: members, util: u}
	}
	sort.SliceStable(cs, func(a, b int) bool { return cs[a].util > cs[b].util })

	load := make([]float64, cpus)
	assign := make([]int, len(tasks))
	for _, c := range cs {
		best := 0
		for cpu := 1; cpu < cpus; cpu++ {
			if load[cpu] < load[best] {
				best = cpu
			}
		}
		for _, ti := range c.members {
			assign[ti] = best
		}
		load[best] += c.util
	}
	return assign, nil
}

// Run partitions the task set and executes one independent engine per
// CPU. Task IDs are preserved, so per-task analysis (retry bounds etc.)
// applies within each partition.
func Run(cfg Config) (Result, error) {
	if cfg.CPUs < 1 {
		return Result{}, fmt.Errorf("%w: %d CPUs", ErrConfig, cfg.CPUs)
	}
	acc := cfg.S
	if cfg.Mode == sim.LockBased {
		acc = cfg.R
	}
	assign, err := Partition(cfg.Tasks, cfg.CPUs, acc)
	if err != nil {
		return Result{}, err
	}
	newSched := cfg.NewScheduler
	if newSched == nil {
		if cfg.Mode == sim.LockFree {
			newSched = func() sched.Scheduler { return rua.NewLockFree() }
		} else {
			newSched = func() sched.Scheduler { return rua.NewLockBased() }
		}
	}
	res := Result{Assignment: assign, PerCPU: make([]sim.Result, cfg.CPUs)}
	merged := sim.Result{Horizon: cfg.Horizon}

	// Build one stepper engine per non-empty partition. Each engine only
	// emits observer events at the virtual time of the event it is
	// currently processing, so interleaving the engines by earliest
	// NextAt (ties broken by ascending CPU) yields a merged stream
	// nondecreasing in Event.At — equivalent to a stable sort by At of
	// the old sequential per-CPU streams.
	engines := make([]*sim.Engine, cfg.CPUs)
	for cpu := 0; cpu < cfg.CPUs; cpu++ {
		var part []*task.Task
		for ti, t := range cfg.Tasks {
			if assign[ti] == cpu {
				part = append(part, t)
			}
		}
		if len(part) == 0 {
			res.PerCPU[cpu] = sim.Result{Horizon: cfg.Horizon}
			continue
		}
		var obs func(trace.Event)
		if cfg.Observer != nil {
			cpu := cpu
			obs = func(ev trace.Event) {
				ev.CPU = cpu
				cfg.Observer(ev)
			}
		}
		eng, err := sim.New(sim.Config{
			Tasks:             part,
			Scheduler:         newSched(),
			Mode:              cfg.Mode,
			R:                 cfg.R,
			S:                 cfg.S,
			OpCost:            cfg.OpCost,
			Horizon:           cfg.Horizon,
			ArrivalKind:       cfg.ArrivalKind,
			Seed:              cfg.Seed + int64(cpu)*104729,
			ConservativeRetry: cfg.ConservativeRetry,
			Fault:             cfg.Fault,
			Stoch:             cfg.Stoch,
			StochCPU:          cpu,
			Observer:          obs,
		})
		if err != nil {
			return Result{}, fmt.Errorf("multi: cpu %d: %w", cpu, err)
		}
		engines[cpu] = eng
	}

	// Lockstep merge: repeatedly advance the live engine with the
	// earliest pending event.
	for {
		best := -1
		var bestAt rtime.Time
		for cpu, eng := range engines {
			if eng == nil {
				continue
			}
			at, ok := eng.NextAt()
			if !ok {
				if err := eng.Err(); err != nil {
					return Result{}, fmt.Errorf("multi: cpu %d: %w", cpu, err)
				}
				continue
			}
			if best < 0 || at < bestAt {
				best, bestAt = cpu, at
			}
		}
		if best < 0 {
			break
		}
		if !engines[best].StepNext() {
			if err := engines[best].Err(); err != nil {
				return Result{}, fmt.Errorf("multi: cpu %d: %w", best, err)
			}
		}
	}

	for cpu, eng := range engines {
		if eng == nil {
			continue
		}
		r := eng.Finish()
		if r.Err != nil {
			return Result{}, fmt.Errorf("multi: cpu %d: %w", cpu, r.Err)
		}
		res.PerCPU[cpu] = r
		merged.Jobs = append(merged.Jobs, r.Jobs...)
		merged.Arrivals += r.Arrivals
		merged.Completions += r.Completions
		merged.Aborts += r.Aborts
		merged.Retries += r.Retries
		merged.SchedInvocations += r.SchedInvocations
		merged.SchedOps += r.SchedOps
		merged.Overhead += r.Overhead
		merged.ExecTime += r.ExecTime
		merged.FaultArrivals += r.FaultArrivals
		merged.FaultOverruns += r.FaultOverruns
		merged.FaultRetries += r.FaultRetries
		merged.FaultStalls += r.FaultStalls
		merged.SchedAborts += r.SchedAborts
		merged.StallTime += r.StallTime
	}
	res.Stats = metrics.Analyze(merged)
	return res, nil
}
