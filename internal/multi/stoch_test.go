package multi

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/stoch"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/uam"
)

func stochMRun(t *testing.T, plan *stoch.Plan) (Result, []trace.Event) {
	t.Helper()
	tasks := []*task.Task{
		mkTask(0, 400, 2000, 2, []int{0}),
		mkTask(1, 400, 2000, 2, []int{0}),
		mkTask(2, 400, 2000, 1, []int{1}),
		mkTask(3, 400, 2000, 1, []int{2}),
	}
	rec := trace.NewRecorder(0)
	res, err := Run(Config{
		CPUs: 2, Tasks: tasks, Mode: sim.LockFree,
		R: 150, S: 5, OpCost: 0.02, Horizon: 100_000,
		ArrivalKind: uam.KindJittered, Seed: 9, ConservativeRetry: true,
		Stoch: plan, Observer: rec.Record,
	})
	if err != nil {
		t.Fatalf("multi stoch run: %v", err)
	}
	return res, rec.Events()
}

// TestStochNilPlanBitIdentical: inactive plans leave the partitioned
// run's merged event stream bit-identical.
func TestStochNilPlanBitIdentical(t *testing.T) {
	base, baseEvs := stochMRun(t, nil)
	for _, tc := range []struct {
		name string
		plan *stoch.Plan
	}{
		{"zero", &stoch.Plan{}},
		{"off-with-shape", &stoch.Plan{Quantum: 200, PickProb: 1}},
	} {
		res, evs := stochMRun(t, tc.plan)
		if res.Stats != base.Stats {
			t.Fatalf("%s plan diverged: %+v vs %+v", tc.name, res.Stats, base.Stats)
		}
		if !reflect.DeepEqual(evs, baseEvs) {
			t.Fatalf("%s plan produced a different event stream", tc.name)
		}
	}
}

// TestStochDeterministicAndPerCPUIndependent: repeated runs are
// byte-identical, and the shared plan draws differently per partition
// (the CPU index is folded into every hash), so partitions are not in
// lockstep.
func TestStochDeterministicAndPerCPUIndependent(t *testing.T) {
	plan := &stoch.Plan{Seed: 5, Dist: stoch.Geometric, Quantum: 150, PickProb: 0.25}
	resA, evsA := stochMRun(t, plan)
	resB, evsB := stochMRun(t, plan)
	if resA.Stats != resB.Stats || !reflect.DeepEqual(evsA, evsB) {
		t.Fatal("active plan not deterministic across runs")
	}
	// Partitions hash with their own CPU coordinate: the two busy
	// partitions must not share an identical preemption pattern.
	if len(resA.PerCPU) == 2 &&
		resA.PerCPU[0].SchedInvocations == resA.PerCPU[1].SchedInvocations &&
		resA.PerCPU[0].CtxSwitches == resA.PerCPU[1].CtxSwitches &&
		resA.PerCPU[0].Completions == resA.PerCPU[1].Completions {
		t.Logf("partitions suspiciously identical: %+v", resA.PerCPU[0])
	}
	base, _ := stochMRun(t, nil)
	if resA.Stats == base.Stats {
		t.Fatal("active plan left the partitioned run unchanged")
	}
}
