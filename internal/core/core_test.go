package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/rtime"
	"repro/internal/uam"
)

func addThree(b *System) *System {
	for i := 0; i < 3; i++ {
		b.AddTask(TaskSpec{
			Name:     "sensor",
			TUF:      TUFSpec{Shape: "step", Utility: float64(10 * (i + 1)), CriticalTime: 2 * rtime.Millisecond},
			Exec:     200 * rtime.Microsecond,
			Accesses: 2, Objects: []int{0, 1},
		})
	}
	return b
}

func TestBuilderRunLockFree(t *testing.T) {
	rep, err := addThree(NewSystem()).Run(200 * rtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Released == 0 || rep.Stats.Completed == 0 {
		t.Fatalf("nothing ran: %+v", rep.Stats)
	}
	if rep.Scheduler != "rua-lockfree" {
		t.Fatalf("scheduler = %s", rep.Scheduler)
	}
	if len(rep.RetryBounds) != 3 {
		t.Fatalf("bounds = %v", rep.RetryBounds)
	}
	for _, b := range rep.RetryBounds {
		if b <= 0 {
			t.Fatalf("non-positive bound %d", b)
		}
	}
	if !strings.Contains(rep.Summary(), "AUR=") {
		t.Fatalf("summary: %s", rep.Summary())
	}
}

func TestBuilderRunLockBasedAndEDF(t *testing.T) {
	rep, err := addThree(NewSystem().LockBased()).Run(200 * rtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scheduler != "rua-lockbased" {
		t.Fatalf("scheduler = %s", rep.Scheduler)
	}
	rep, err = addThree(NewSystem().EDF()).Run(200 * rtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scheduler != "edf" {
		t.Fatalf("scheduler = %s", rep.Scheduler)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewSystem().Run(rtime.Duration(1000)); !errors.Is(err, ErrSpec) {
		t.Fatal("empty system accepted")
	}
	b := NewSystem().AddTask(TaskSpec{
		TUF:  TUFSpec{Shape: "zigzag", Utility: 1, CriticalTime: 100},
		Exec: 10,
	})
	if _, err := b.Run(rtime.Duration(1000)); !errors.Is(err, ErrSpec) {
		t.Fatalf("bad shape accepted: %v", err)
	}
	b2 := NewSystem().AddTask(TaskSpec{
		TUF:  TUFSpec{Utility: 0, CriticalTime: 100}, // zero utility
		Exec: 10,
	})
	if _, err := b2.Run(rtime.Duration(1000)); err == nil {
		t.Fatal("zero-utility TUF accepted")
	}
}

func TestBuilderArrivalDefault(t *testing.T) {
	b := NewSystem().AddTask(TaskSpec{
		TUF:  TUFSpec{Utility: 1, CriticalTime: 1000},
		Exec: 100,
	})
	tk := b.Tasks()[0]
	if tk.Arrival != (uam.Spec{L: 0, A: 1, W: 2000}) {
		t.Fatalf("default arrival = %v", tk.Arrival)
	}
}

func TestBuilderKnobsCompose(t *testing.T) {
	b := NewSystem().
		LockFree().
		AccessCosts(90*rtime.Microsecond, 9*rtime.Microsecond).
		SchedulerOpCost(0).
		Seed(99).
		Arrivals(uam.KindBursty).
		PreciseRetries()
	b.AddTask(TaskSpec{
		TUF:     TUFSpec{Shape: "linear", Utility: 5, CriticalTime: 3 * rtime.Millisecond},
		Arrival: uam.Spec{L: 1, A: 2, W: 6 * rtime.Millisecond},
		Exec:    300 * rtime.Microsecond,
	})
	rep, err := b.Run(100 * rtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Overhead != 0 {
		t.Fatalf("ideal op cost still charged overhead %v", rep.Result.Overhead)
	}
	if rep.Stats.Released == 0 {
		t.Fatal("no arrivals under bursty UAM")
	}
}

func TestTraceWiring(t *testing.T) {
	rep, err := addThree(NewSystem().Trace(0)).Run(50 * rtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil || rep.Trace.Len() == 0 {
		t.Fatal("trace recorder empty despite Trace(0)")
	}
	rep2, err := addThree(NewSystem()).Run(50 * rtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Trace != nil {
		t.Fatal("recorder present without Trace()")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	rep, err := addThree(NewSystem()).Run(100 * rtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	u := rep.Result.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
	if rep.Result.Busy() != rep.Result.ExecTime+rep.Result.Overhead+rep.Result.HandlerTime {
		t.Fatal("Busy composition wrong")
	}
}
