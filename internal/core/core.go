// Package core is the high-level facade over the reproduction: it wires
// tasks, TUFs, UAM arrivals, the RUA schedulers, and the discrete-event
// substrate into a small builder API that the examples and command-line
// tools consume. The paper's primary algorithmic contribution (lock-free
// RUA and its retry/sojourn/AUR analysis) lives in internal/rua and
// internal/analysis; this package is the front door.
//
// Typical use:
//
//	b := core.NewSystem().
//		LockFree().
//		AccessCosts(150*rtime.Microsecond, 5*rtime.Microsecond)
//	b.AddTask(core.TaskSpec{ ... })
//	rep, err := b.Run(500 * rtime.Millisecond)
package core

import (
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/metrics"
	"repro/internal/rtime"
	"repro/internal/rua"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/tuf"
	"repro/internal/uam"
)

// ErrSpec reports an invalid system specification.
var ErrSpec = errors.New("core: invalid spec")

// TUFSpec describes a time/utility function declaratively.
type TUFSpec struct {
	// Shape is "step", "linear", or "parabolic"; empty means "step".
	Shape string
	// Utility is the maximum utility (at completion time zero).
	Utility float64
	// CriticalTime is the instant the function reaches zero.
	CriticalTime rtime.Duration
}

func (s TUFSpec) build() (tuf.TUF, error) {
	switch s.Shape {
	case "step", "":
		return tuf.NewStep(s.Utility, s.CriticalTime)
	case "linear":
		return tuf.NewLinear(s.Utility, s.CriticalTime)
	case "parabolic":
		return tuf.NewParabolic(s.Utility, s.CriticalTime)
	default:
		return nil, fmt.Errorf("%w: unknown TUF shape %q", ErrSpec, s.Shape)
	}
}

// TaskSpec describes one recurring activity.
type TaskSpec struct {
	Name string
	TUF  TUFSpec
	// Arrival is the UAM tuple ⟨l, a, W⟩; the zero value defaults to the
	// sporadic ⟨0, 1, 2·C⟩.
	Arrival uam.Spec
	// Exec is the per-job compute time u_i outside object accesses.
	Exec rtime.Duration
	// Accesses is m_i, the number of shared-object accesses per job,
	// spread evenly through the execution and cycling over Objects.
	Accesses int
	// Objects lists the shared-object ids the task touches.
	Objects []int
	// AbortCost is the exception-handler execution time.
	AbortCost rtime.Duration
}

// System accumulates tasks and run configuration.
type System struct {
	tasks    []*task.Task
	mode     sim.Mode
	useEDF   bool
	r, s     rtime.Duration
	opCost   float64
	seed     int64
	kind     uam.Kind
	conserv  bool
	recorder *trace.Recorder
	err      error
}

// NewSystem returns a builder with the paper's default calibration:
// lock-free mode, r=150 µs, s=5 µs, conservative retry accounting.
func NewSystem() *System {
	return &System{
		mode:    sim.LockFree,
		r:       150 * rtime.Microsecond,
		s:       5 * rtime.Microsecond,
		opCost:  0.02,
		seed:    1,
		kind:    uam.KindJittered,
		conserv: true,
	}
}

// LockFree selects lock-free RUA (the default).
func (b *System) LockFree() *System { b.mode = sim.LockFree; return b }

// LockBased selects lock-based RUA.
func (b *System) LockBased() *System { b.mode = sim.LockBased; return b }

// EDF swaps RUA for the EDF/ECF baseline scheduler.
func (b *System) EDF() *System { b.useEDF = true; return b }

// AccessCosts sets the lock-based (r) and lock-free (s) per-access costs.
func (b *System) AccessCosts(r, s rtime.Duration) *System { b.r, b.s = r, s; return b }

// SchedulerOpCost sets the virtual µs charged per scheduler operation
// (zero = ideal scheduler).
func (b *System) SchedulerOpCost(c float64) *System { b.opCost = c; return b }

// Seed sets the arrival-generation seed.
func (b *System) Seed(seed int64) *System { b.seed = seed; return b }

// Arrivals sets the UAM generation strategy (jittered, bursty, periodic).
func (b *System) Arrivals(k uam.Kind) *System { b.kind = k; return b }

// PreciseRetries switches retry accounting from the conservative
// adversary to conflict-precise (retry only on a real conflicting
// commit).
func (b *System) PreciseRetries() *System { b.conserv = false; return b }

// Trace attaches an event recorder keeping at most limit events (0 =
// unbounded); the recorder is available on the Report after Run.
func (b *System) Trace(limit int) *System {
	b.recorder = trace.NewRecorder(limit)
	return b
}

// AddTask appends a task; errors are deferred to Run.
func (b *System) AddTask(spec TaskSpec) *System {
	if b.err != nil {
		return b
	}
	f, err := spec.TUF.build()
	if err != nil {
		b.err = err
		return b
	}
	arr := spec.Arrival
	if arr == (uam.Spec{}) {
		arr = uam.Spec{L: 0, A: 1, W: 2 * spec.TUF.CriticalTime}
	}
	t := &task.Task{
		ID:        len(b.tasks),
		Name:      spec.Name,
		TUF:       f,
		Arrival:   arr,
		Segments:  task.InterleavedSegments(spec.Exec, spec.Accesses, spec.Objects),
		AbortCost: spec.AbortCost,
	}
	if err := t.Validate(); err != nil {
		b.err = err
		return b
	}
	b.tasks = append(b.tasks, t)
	return b
}

// Tasks returns the tasks built so far (for analysis calls).
func (b *System) Tasks() []*task.Task { return b.tasks }

// Report is the outcome of a run: raw simulation counters, digested
// statistics, and the analytic retry bounds for each task.
type Report struct {
	Result      sim.Result
	Stats       metrics.RunStats
	RetryBounds []int64
	Mode        sim.Mode
	Scheduler   string
	// Trace holds the event recorder when System.Trace was enabled.
	Trace *trace.Recorder
}

// Run executes the system for the given horizon.
func (b *System) Run(horizon rtime.Duration) (*Report, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.tasks) == 0 {
		return nil, fmt.Errorf("%w: no tasks", ErrSpec)
	}
	var s sched.Scheduler
	switch {
	case b.useEDF:
		s = sched.EDF{}
	case b.mode == sim.LockFree:
		s = rua.NewLockFree()
	default:
		s = rua.NewLockBased()
	}
	cfg := sim.Config{
		Tasks:             b.tasks,
		Scheduler:         s,
		Mode:              b.mode,
		R:                 b.r,
		S:                 b.s,
		OpCost:            b.opCost,
		Horizon:           rtime.Time(horizon),
		ArrivalKind:       b.kind,
		Seed:              b.seed,
		ConservativeRetry: b.conserv,
	}
	if b.recorder != nil {
		cfg.Observer = b.recorder.Observer()
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Result:    res,
		Stats:     metrics.Analyze(res),
		Mode:      b.mode,
		Scheduler: s.Name(),
		Trace:     b.recorder,
	}
	for i := range b.tasks {
		bound, err := analysis.RetryBound(i, b.tasks)
		if err != nil {
			return nil, err
		}
		rep.RetryBounds = append(rep.RetryBounds, bound)
	}
	return rep, nil
}

// Summary renders a human-readable digest.
func (r *Report) Summary() string {
	st := r.Stats
	return fmt.Sprintf(
		"%s (%s): released=%d completed=%d aborted=%d AUR=%.3f CMR=%.3f meanSojourn=%v retries=%d blockings=%d schedOverhead=%v",
		r.Scheduler, r.Mode, st.Released, st.Completed, st.Aborted,
		st.AUR, st.CMR, st.MeanSojourn, st.Retries, st.Blockings, r.Result.Overhead)
}
