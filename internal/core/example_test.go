package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rtime"
	"repro/internal/uam"
)

// Example runs a tiny two-task system under lock-free RUA on the virtual
// RTOS and prints the outcome counters. Virtual time makes the run fully
// deterministic.
func Example() {
	b := core.NewSystem().
		LockFree().
		AccessCosts(150*rtime.Microsecond, 5*rtime.Microsecond).
		Arrivals(uam.KindPeriodic).
		Seed(1)
	b.AddTask(core.TaskSpec{
		Name:     "sensor",
		TUF:      core.TUFSpec{Shape: "step", Utility: 10, CriticalTime: 2 * rtime.Millisecond},
		Arrival:  uam.Spec{L: 1, A: 1, W: 4 * rtime.Millisecond},
		Exec:     400 * rtime.Microsecond,
		Accesses: 2,
		Objects:  []int{0},
	})
	b.AddTask(core.TaskSpec{
		Name:     "control",
		TUF:      core.TUFSpec{Shape: "linear", Utility: 40, CriticalTime: 8 * rtime.Millisecond},
		Arrival:  uam.Spec{L: 1, A: 1, W: 8 * rtime.Millisecond},
		Exec:     1 * rtime.Millisecond,
		Accesses: 1,
		Objects:  []int{0},
	})
	rep, err := b.Run(40 * rtime.Millisecond)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("scheduler=%s completed=%d aborted=%d CMR=%.2f retries≤bounds=%v\n",
		rep.Scheduler, rep.Stats.Completed, rep.Stats.Aborted, rep.Stats.CMR,
		rep.Stats.Retries <= rep.RetryBounds[0]+rep.RetryBounds[1])
	// Output: scheduler=rua-lockfree completed=15 aborted=0 CMR=1.00 retries≤bounds=true
}
