package serve

import (
	"bytes"
	"testing"
)

// FuzzSpecDecode fuzzes the daemon's admission decoder, the one parser
// exposed to untrusted bytes. Invariants:
//
//   - DecodeSpec never panics; any failure is a structured *Error with
//     a known code and a non-empty reason (the body of a 400);
//   - a successfully decoded spec is canonical: Encode → DecodeSpec →
//     Encode is a byte fixed point, so equal scenarios always share one
//     cache key.
//
// The committed corpus under testdata/fuzz/FuzzSpecDecode seeds every
// run; `make fuzz-smoke` gives it coverage-guided time on each CI pass.
func FuzzSpecDecode(f *testing.F) {
	seeds := []string{
		`{"metrics":true}`,
		`{"trace":{}}`,
		`{"trace":{"sim":"multi","mode":"lockbased","format":"spans","limit":10,"flight":8}}`,
		`{"faults":"light","fault_seed":7,"trace":{"format":"perfetto","flight":256}}`,
		`{"stoch":"geo","stoch_seed":3,"metrics":true}`,
		`{"report":{"figs":["all"]}}`,
		`{"profile":"full","stream":true,"report":{}}`,
		`{"faults":"seed=1,burstp=0.5,burstn=3","metrics":true}`,
		`{}`,
		`{"bogus":1}`,
		`[1,2,3]`,
		`{"metrics":true}{"metrics":true}`,
		`{"trace":{"limit":-5}}`,
		"not json at all",
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, specErr := DecodeSpec(data)
		if specErr != nil {
			if specErr.Code != "invalid-json" && specErr.Code != "invalid-spec" {
				t.Fatalf("error code %q, want invalid-json or invalid-spec", specErr.Code)
			}
			if specErr.Reason == "" {
				t.Fatalf("structured error with empty reason: %+v", specErr)
			}
			return
		}
		enc1 := spec.Encode()
		again, err2 := DecodeSpec(enc1)
		if err2 != nil {
			t.Fatalf("canonical bytes %q failed to re-decode: %v", enc1, err2)
		}
		enc2 := again.Encode()
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonicalization not a fixed point:\n  in:     %q\n  first:  %q\n  second: %q",
				data, enc1, enc2)
		}
		if spec.CacheKey() != again.CacheKey() {
			t.Fatalf("cache key unstable across re-decode")
		}
	})
}
