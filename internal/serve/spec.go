// Package serve is the rtsimd serving layer: a long-running HTTP
// daemon that accepts scenario specs (JSON), validates and
// admission-controls them, executes each on the shared
// internal/artifact builders with per-request isolation, and streams
// progress incrementally as NDJSON while final artifacts are served
// per run.
//
// The conformance contract is the spine of the package: every engine
// run is byte-deterministic, and the daemon executes the exact builder
// functions the rtsim CLI executes, so a spec served over HTTP yields
// report/CSV/trace artifacts byte-identical to the batch invocation of
// the same spec — for any worker count, any submission interleaving,
// and whether the result came from the cache or a fresh run. The suite
// in conformance_test.go and the CI serve-smoke job pin that contract.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/stoch"
)

// Version tags the artifact-rendering code the daemon is running; it
// is part of every cache key, so cached bytes can never leak across
// releases that changed what a spec renders to.
const Version = "rtsimd-1"

// Error is the structured validation error every invalid spec decodes
// to — the body of a 400 response, never a panic and never a bare
// string.
type Error struct {
	Code   string `json:"code"`            // "invalid-json" or "invalid-spec"
	Field  string `json:"field,omitempty"` // spec field at fault, dotted path
	Reason string `json:"reason"`
}

// Error renders the structured error as text.
func (e *Error) Error() string {
	if e.Field == "" {
		return fmt.Sprintf("%s: %s", e.Code, e.Reason)
	}
	return fmt.Sprintf("%s: %s: %s", e.Code, e.Field, e.Reason)
}

// TraceSpec requests a fully-observed canonical-workload trace run.
type TraceSpec struct {
	// Sim is the traced engine: uni (default), multi, or global.
	Sim string `json:"sim,omitempty"`
	// Mode is the synchronization discipline: lockfree (default) or
	// lockbased.
	Mode string `json:"mode,omitempty"`
	// Format is the trace rendering: perfetto (default), json, or spans.
	Format string `json:"format,omitempty"`
	// Limit bounds the recorder (0 = unbounded); drops are counted.
	Limit int `json:"limit,omitempty"`
	// Flight attaches a bounded flight recorder of this many events;
	// the first anomaly snapshots it into a served flight dump.
	Flight int `json:"flight,omitempty"`
}

// ReportSpec requests the canonical-workload CSV+HTML report.
type ReportSpec struct {
	// Figs are the experiment ids rendered as figure sections, in
	// order; the single entry "all" expands to every registered one.
	Figs []string `json:"figs,omitempty"`
}

// Spec is one client-submitted scenario: which profile to run, which
// fault/stochastic plans to overlay, and which artifacts to render.
// The zero spec is invalid (it requests nothing).
//
// A decoded spec is always in canonical form: defaults are filled,
// plan strings are re-rendered fully explicit with their seed
// overrides folded in, and "all" figure lists are expanded — so equal
// scenarios encode to equal bytes and the cache key is exact.
// Execution width (the rtsim -jobs knob) is deliberately absent: it
// never changes output bytes, so it is an operational setting of the
// daemon, not part of the scenario.
type Spec struct {
	// Profile is the experiment scale: quick (default) or full.
	Profile string `json:"profile,omitempty"`

	// Faults is a fault-injection plan in internal/fault syntax (off,
	// light, heavy, or key=value pairs); FaultSeed, when nonzero,
	// overrides the plan's seed and is folded into the canonical string.
	Faults    string `json:"faults,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`

	// Stoch overlays the seeded stochastic scheduler (off, uni, geo, or
	// key=value pairs); StochSeed mirrors FaultSeed.
	Stoch     string `json:"stoch,omitempty"`
	StochSeed int64  `json:"stoch_seed,omitempty"`

	// Stream folds report/metrics online through the internal/obs
	// pipeline (bounded memory, byte-identical output).
	Stream bool `json:"stream,omitempty"`

	// Requested artifacts; at least one must be set.
	Metrics bool        `json:"metrics,omitempty"`
	Report  *ReportSpec `json:"report,omitempty"`
	Trace   *TraceSpec  `json:"trace,omitempty"`
}

// DecodeSpec parses and canonicalizes one JSON scenario spec. On any
// failure the returned error is a *Error — the structured body of a
// 400 — never a panic. A successfully decoded spec is canonical:
// Encode → DecodeSpec → Encode is the identity.
func DecodeSpec(data []byte) (*Spec, *Error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	s := &Spec{}
	if err := dec.Decode(s); err != nil {
		return nil, &Error{Code: "invalid-json", Reason: err.Error()}
	}
	// A spec is one JSON object; trailing values are a malformed request.
	if dec.More() {
		return nil, &Error{Code: "invalid-json", Reason: "trailing data after spec object"}
	}
	if err := s.canonicalize(); err != nil {
		return nil, err
	}
	return s, nil
}

// Encode renders the canonical spec as deterministic JSON (one line,
// fixed field order). Only valid on a spec produced by DecodeSpec or
// canonicalized by hand.
func (s *Spec) Encode() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec has no unmarshalable fields; this is unreachable.
		panic(fmt.Sprintf("serve: encode spec: %v", err))
	}
	return append(b, '\n')
}

// CacheKey is the exact result-cache key: canonical spec bytes plus
// the artifact-code version.
func (s *Spec) CacheKey() string {
	return string(s.Encode()) + "|" + Version
}

// canonicalize validates the spec in place and rewrites it to the
// canonical form equal scenarios share.
func (s *Spec) canonicalize() *Error {
	switch s.Profile {
	case "":
		s.Profile = "quick"
	case "quick", "full":
	default:
		return &Error{Code: "invalid-spec", Field: "profile",
			Reason: fmt.Sprintf("unknown profile %q (want quick or full)", s.Profile)}
	}
	if s.Faults != "" || s.FaultSeed != 0 {
		plan, err := fault.ParsePlan(s.Faults)
		if err != nil {
			return &Error{Code: "invalid-spec", Field: "faults", Reason: err.Error()}
		}
		if s.FaultSeed != 0 {
			plan.Seed = s.FaultSeed
			s.FaultSeed = 0
		}
		s.Faults = renderFaultPlan(plan)
	}
	if s.Stoch != "" || s.StochSeed != 0 {
		plan, err := stoch.ParsePlan(s.Stoch)
		if err != nil {
			return &Error{Code: "invalid-spec", Field: "stoch", Reason: err.Error()}
		}
		if s.StochSeed != 0 {
			plan.Seed = s.StochSeed
			s.StochSeed = 0
		}
		s.Stoch = renderStochPlan(plan)
	}
	if s.Trace != nil {
		t := s.Trace
		switch t.Sim {
		case "":
			t.Sim = experiment.TraceSimUni
		case experiment.TraceSimUni, experiment.TraceSimMulti, experiment.TraceSimGlobal:
		default:
			return &Error{Code: "invalid-spec", Field: "trace.sim",
				Reason: fmt.Sprintf("unknown simulator %q (want uni, multi, or global)", t.Sim)}
		}
		switch t.Mode {
		case "":
			t.Mode = "lockfree"
		case "lockfree", "lockbased":
		default:
			return &Error{Code: "invalid-spec", Field: "trace.mode",
				Reason: fmt.Sprintf("unknown mode %q (want lockfree or lockbased)", t.Mode)}
		}
		switch t.Format {
		case "":
			t.Format = "perfetto"
		case "json", "perfetto", "spans":
		default:
			return &Error{Code: "invalid-spec", Field: "trace.format",
				Reason: fmt.Sprintf("unknown format %q (want json, perfetto, or spans)", t.Format)}
		}
		if t.Limit < 0 {
			return &Error{Code: "invalid-spec", Field: "trace.limit", Reason: "must be non-negative"}
		}
		if t.Flight < 0 {
			return &Error{Code: "invalid-spec", Field: "trace.flight", Reason: "must be non-negative"}
		}
	}
	if s.Report != nil {
		figs := s.Report.Figs
		if len(figs) == 1 && figs[0] == "all" {
			figs = experiment.Names()
		}
		for _, id := range figs {
			if _, ok := experiment.Registry[id]; !ok {
				return &Error{Code: "invalid-spec", Field: "report.figs",
					Reason: fmt.Sprintf("unknown experiment %q", id)}
			}
		}
		s.Report.Figs = figs
	}
	if !s.Metrics && s.Report == nil && s.Trace == nil {
		return &Error{Code: "invalid-spec", Field: "spec",
			Reason: "spec requests no artifacts (set metrics, report, or trace)"}
	}
	return nil
}

// BuildProfile materializes the experiment profile the spec runs
// under; jobs is the daemon's per-run parallelism (never part of the
// scenario — output is identical for any value).
func (s *Spec) BuildProfile(jobs int) (experiment.Profile, error) {
	var p experiment.Profile
	switch s.Profile {
	case "quick":
		p = experiment.Quick
	case "full":
		p = experiment.Full
	default:
		return p, fmt.Errorf("serve: spec not canonical: profile %q", s.Profile)
	}
	p.Jobs = jobs
	if s.Faults != "" {
		plan, err := fault.ParsePlan(s.Faults)
		if err != nil {
			return p, fmt.Errorf("serve: spec not canonical: faults: %w", err)
		}
		p.Fault = plan
	}
	if s.Stoch != "" {
		plan, err := stoch.ParsePlan(s.Stoch)
		if err != nil {
			return p, fmt.Errorf("serve: spec not canonical: stoch: %w", err)
		}
		p.Stoch = plan
	}
	return p, nil
}

// fnum renders a float so that strconv.ParseFloat reads back the exact
// same value — the property canonical plan strings need to be a fixed
// point under parse→render.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// renderFaultPlan rewrites a parsed fault plan as a fully-explicit
// key=value string: parse(render(p)) == p, and behaviorally-inactive
// plans collapse to "" (they are bit-identical to fault-free runs, so
// they must share the fault-free cache line).
func renderFaultPlan(p *fault.Plan) string {
	if !p.Active() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	fmt.Fprintf(&b, ",burstp=%s,burstn=%d", fnum(p.BurstProb), p.BurstSize)
	fmt.Fprintf(&b, ",jitterp=%s,jitterus=%d", fnum(p.JitterProb), int64(p.JitterMax))
	fmt.Fprintf(&b, ",overrunp=%s,overrunfrac=%s", fnum(p.OverrunProb), fnum(p.OverrunFrac))
	fmt.Fprintf(&b, ",casp=%s,casmax=%d", fnum(p.CASProb), p.CASMax)
	fmt.Fprintf(&b, ",stallp=%s,stallus=%d", fnum(p.StallProb), int64(p.StallDur))
	return b.String()
}

// renderStochPlan mirrors renderFaultPlan for stochastic-scheduler
// plans. The distribution has no key=value form, so the canonical
// string leads with its preset.
func renderStochPlan(p *stoch.Plan) string {
	if !p.Active() {
		return ""
	}
	var preset string
	switch p.Dist {
	case stoch.Uniform:
		preset = "uni"
	case stoch.Geometric:
		preset = "geo"
	default:
		return ""
	}
	return fmt.Sprintf("%s,seed=%d,quantumus=%d,pickp=%s",
		preset, p.Seed, int64(p.Quantum), fnum(p.PickProb))
}

// traceArtifactName is the served artifact name of a trace in the
// given format — the filename the batch CLI conformance diff uses too.
func traceArtifactName(format string) string {
	switch format {
	case "json":
		return "trace.json"
	case "perfetto":
		return "trace.perfetto.json"
	default:
		return "trace.spans.txt"
	}
}
