package serve

// The e2e conformance suite: everything the daemon serves over HTTP
// must be byte-identical to what the batch rtsim path renders for the
// same spec — for any worker count, any submission interleaving, and
// whether the bytes came from the cache or a fresh run. The shared
// builders in internal/artifact make this true by construction; these
// tests pin that it stays true.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/artifact"
)

// contextWithTestDeadline bounds teardown drains.
func contextWithTestDeadline(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), time.Minute)
}

// newTestServer boots a serve.Server inside httptest and tears both
// down when the test ends.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		drainCtx, cancel := contextWithTestDeadline(t)
		defer cancel()
		_ = srv.Drain(drainCtx)
	})
	return srv, ts
}

// submit posts one spec body and decodes the response envelope.
func submit(t *testing.T, ts *httptest.Server, spec string) (status int, doc map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /api/v1/runs: %v", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, doc
}

// streamEvents reads a run's NDJSON feed to completion and returns the
// decoded events — the stream ends exactly when the run is terminal.
func streamEvents(t *testing.T, ts *httptest.Server, id string) []Event {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/runs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type = %q, want application/x-ndjson", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("events stream: %v", err)
	}
	return events
}

// fetchArtifacts downloads every served artifact of a run.
func fetchArtifacts(t *testing.T, ts *httptest.Server, id string) map[string][]byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/runs/" + id + "/artifacts")
	if err != nil {
		t.Fatalf("GET artifacts: %v", err)
	}
	var listing struct {
		Artifacts []struct {
			Name string `json:"name"`
			Size int    `json:"size"`
		} `json:"artifacts"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode artifact listing: %v", err)
	}
	out := map[string][]byte{}
	for _, a := range listing.Artifacts {
		r2, err := http.Get(ts.URL + "/api/v1/runs/" + id + "/artifacts/" + a.Name)
		if err != nil {
			t.Fatalf("GET artifact %s: %v", a.Name, err)
		}
		data, err := io.ReadAll(r2.Body)
		r2.Body.Close()
		if err != nil {
			t.Fatalf("read artifact %s: %v", a.Name, err)
		}
		if len(data) != a.Size {
			t.Errorf("artifact %s: served %d bytes, listing says %d", a.Name, len(data), a.Size)
		}
		out[a.Name] = data
	}
	return out
}

// runToCompletion submits a spec, streams its feed to the end, and
// returns the run id plus served artifacts. Fails the test unless the
// run lands in wantState.
func runToCompletion(t *testing.T, ts *httptest.Server, spec string, wantState runState) (string, map[string][]byte) {
	t.Helper()
	status, doc := submit(t, ts, spec)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit %s: status %d, body %v", spec, status, doc)
	}
	id, _ := doc["id"].(string)
	if id == "" {
		t.Fatalf("submit %s: no run id in %v", spec, doc)
	}
	events := streamEvents(t, ts, id)
	if len(events) == 0 || events[0].Kind != "queued" {
		t.Fatalf("run %s: feed does not start with queued: %+v", id, events)
	}
	final := events[len(events)-1]
	if final.Kind != string(wantState) {
		t.Fatalf("run %s: final event %q (error %q), want %q", id, final.Kind, final.Error, wantState)
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("run %s: event %d has seq %d — feed not gap-free", id, i, e.Seq)
		}
	}
	return id, fetchArtifacts(t, ts, id)
}

// batchTrace renders the exact bytes the rtsim CLI would write for this
// canonical spec — the conformance reference.
func batchTrace(t *testing.T, spec *Spec, jobs int) map[string][]byte {
	t.Helper()
	p, err := spec.BuildProfile(jobs)
	if err != nil {
		t.Fatalf("BuildProfile: %v", err)
	}
	tr, err := artifact.BuildTrace(p, artifact.TraceOptions{
		Sim: spec.Trace.Sim, Mode: spec.Trace.Mode, Format: spec.Trace.Format,
		Limit: spec.Trace.Limit, Flight: spec.Trace.Flight,
	})
	if err != nil {
		t.Fatalf("BuildTrace: %v", err)
	}
	name := traceArtifactName(spec.Trace.Format)
	dumpName := name + ".flight.json"
	out := map[string][]byte{name: tr.Data}
	if tr.FlightDump != nil {
		out[dumpName] = tr.FlightDump
	}
	out["trace.summary.txt"] = []byte(tr.Summary(name, dumpName))
	return out
}

// diffArtifacts asserts two artifact sets are byte-identical.
func diffArtifacts(t *testing.T, label string, got, want map[string][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: served %d artifacts, batch wrote %d", label, len(got), len(want))
	}
	for name, wantData := range want {
		gotData, ok := got[name]
		if !ok {
			t.Errorf("%s: artifact %s missing from served set", label, name)
			continue
		}
		if !bytes.Equal(gotData, wantData) {
			t.Errorf("%s: artifact %s differs from batch (%d vs %d bytes)",
				label, name, len(gotData), len(wantData))
		}
	}
}

// TestServedTraceMatchesBatch is the core conformance contract, across
// a plain, a fault-injected, and a stochastic-scheduler spec.
func TestServedTraceMatchesBatch(t *testing.T) {
	cases := []struct {
		label string
		spec  string
	}{
		{"plain", `{"trace":{"format":"json"}}`},
		{"faults", `{"faults":"light","fault_seed":7,"trace":{"format":"perfetto","flight":256}}`},
		{"stoch", `{"stoch":"uni","stoch_seed":3,"trace":{"format":"spans"}}`},
	}
	_, ts := newTestServer(t, Config{Workers: 2, Jobs: 2})
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			_, served := runToCompletion(t, ts, tc.spec, StateDone)
			spec := mustDecode(t, tc.spec)
			// The batch reference runs with a different jobs value on
			// purpose: output must not depend on it.
			want := batchTrace(t, spec, 1)
			diffArtifacts(t, tc.label, served, want)
		})
	}
}

// TestServedReportMatchesBatch: the CSV+HTML report set and the metrics
// digest served by the daemon are the batch bytes.
func TestServedReportMatchesBatch(t *testing.T) {
	specSrc := `{"stream":true,"metrics":true,"report":{}}`
	_, ts := newTestServer(t, Config{Workers: 1, Jobs: 3})
	_, served := runToCompletion(t, ts, specSrc, StateDone)

	spec := mustDecode(t, specSrc)
	p, err := spec.BuildProfile(1)
	if err != nil {
		t.Fatalf("BuildProfile: %v", err)
	}
	set, err := artifact.BuildReportSet(p, nil, true)
	if err != nil {
		t.Fatalf("BuildReportSet: %v", err)
	}
	digest, err := artifact.BuildMetrics(p, true)
	if err != nil {
		t.Fatalf("BuildMetrics: %v", err)
	}
	want := map[string][]byte{"metrics.txt": digest}
	for _, f := range set.Files {
		want[f.Name] = f.Data
	}
	diffArtifacts(t, "report", served, want)
	if _, ok := served["report.html"]; !ok {
		t.Errorf("served set has no report.html")
	}
}

// TestServedBytesInvariantAcrossJobs: two daemons configured with
// different per-run parallelism serve identical bytes for one spec.
func TestServedBytesInvariantAcrossJobs(t *testing.T) {
	specSrc := `{"faults":"light","trace":{"format":"json","flight":128}}`
	var sets []map[string][]byte
	for _, jobs := range []int{1, 4} {
		_, ts := newTestServer(t, Config{Workers: 1, Jobs: jobs})
		_, served := runToCompletion(t, ts, specSrc, StateDone)
		sets = append(sets, served)
	}
	diffArtifacts(t, "jobs=1 vs jobs=4", sets[0], sets[1])
}

// TestConcurrentIdenticalSubmissions: many clients race the same spec;
// every delivered byte set is identical, the cache counters stay exact
// (hits+misses == submissions), and a follow-up submission is a pure
// cache hit served as an already-done run.
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	const clients = 6
	specSrc := `{"trace":{"format":"json"}}`
	srv, ts := newTestServer(t, Config{Workers: 3, Queue: clients + 1})

	var wg sync.WaitGroup
	results := make([]map[string][]byte, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = runToCompletion(t, ts, specSrc, StateDone)
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		diffArtifacts(t, "client 0 vs client "+string(rune('0'+i)), results[0], results[i])
	}

	stats := srv.Stats()
	if got := stats.Cache.Hits + stats.Cache.Misses; got != clients {
		t.Errorf("cache hits+misses = %d, want exactly %d (one lookup per submission)", got, clients)
	}
	if stats.Cache.Misses < 1 {
		t.Errorf("cache misses = %d, want >= 1 (first run cannot hit)", stats.Cache.Misses)
	}

	// Now the artifacts are cached: one more submission must be a hit,
	// born done, serving the same bytes.
	status, doc := submit(t, ts, specSrc)
	if status != http.StatusOK {
		t.Fatalf("post-warm submit: status %d, want 200 (cache hit)", status)
	}
	if doc["cache"] != "hit" || doc["state"] != string(StateDone) {
		t.Fatalf("post-warm submit: cache=%v state=%v, want hit/done", doc["cache"], doc["state"])
	}
	cached := fetchArtifacts(t, ts, doc["id"].(string))
	diffArtifacts(t, "cached vs fresh", cached, results[0])
	after := srv.Stats()
	if after.Cache.Hits != stats.Cache.Hits+1 {
		t.Errorf("cache hits after warm submit = %d, want %d", after.Cache.Hits, stats.Cache.Hits+1)
	}
}

// TestProgressFeedIsLive: a flight-observed run publishes progress
// events carrying pipeline snapshots paced on virtual time, and the
// snapshot endpoint reflects the latest one after completion.
func TestProgressFeedIsLive(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id, _ := runToCompletion(t, ts, `{"trace":{"format":"json","flight":64}}`, StateDone)

	events := streamEvents(t, ts, id) // replay of the full feed
	var progress []Event
	for _, e := range events {
		if e.Kind == "progress" {
			progress = append(progress, e)
		}
	}
	if len(progress) < 2 {
		t.Fatalf("run published %d progress events, want >= 2", len(progress))
	}
	for i := 1; i < len(progress); i++ {
		if progress[i].TUS <= progress[i-1].TUS {
			t.Errorf("progress marks not strictly increasing in virtual time: %d then %d",
				progress[i-1].TUS, progress[i].TUS)
		}
	}
	last := progress[len(progress)-1]
	if last.Events <= 0 || last.Commits <= 0 {
		t.Errorf("final progress snapshot empty: %+v", last)
	}

	resp, err := http.Get(ts.URL + "/api/v1/runs/" + id + "/snapshot")
	if err != nil {
		t.Fatalf("GET snapshot: %v", err)
	}
	defer resp.Body.Close()
	var doc struct {
		State    string `json:"state"`
		Progress *Event `json:"progress"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	if doc.State != string(StateDone) || doc.Progress == nil || doc.Progress.TUS != last.TUS {
		t.Errorf("snapshot = %+v, want done with latest progress mark %d", doc, last.TUS)
	}
}
