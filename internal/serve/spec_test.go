package serve

import (
	"bytes"
	"strings"
	"testing"
)

// mustDecode decodes a spec that the test requires to be valid.
func mustDecode(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := DecodeSpec([]byte(src))
	if err != nil {
		t.Fatalf("DecodeSpec(%s): %v", src, err)
	}
	return s
}

// TestDecodeSpecFixedPoint pins the canonicalization contract: for any
// valid spec, Encode(DecodeSpec(x)) is a fixed point — decoding the
// canonical bytes and re-encoding yields the same bytes.
func TestDecodeSpecFixedPoint(t *testing.T) {
	cases := []string{
		`{"metrics":true}`,
		`{"trace":{}}`,
		`{"trace":{"sim":"multi","mode":"lockbased","format":"spans","limit":100,"flight":64}}`,
		`{"faults":"light","fault_seed":7,"metrics":true}`,
		`{"faults":"heavy","trace":{"flight":256}}`,
		`{"stoch":"geo","stoch_seed":3,"metrics":true}`,
		`{"stoch":"uni","faults":"light","report":{"figs":["all"]}}`,
		`{"profile":"full","stream":true,"metrics":true}`,
		`{"report":{}}`,
	}
	for _, src := range cases {
		first := mustDecode(t, src)
		enc1 := first.Encode()
		second, err := DecodeSpec(enc1)
		if err != nil {
			t.Fatalf("re-decode canonical %q: %v", enc1, err)
		}
		enc2 := second.Encode()
		if !bytes.Equal(enc1, enc2) {
			t.Errorf("spec %s not a fixed point:\n  first:  %s  second: %s", src, enc1, enc2)
		}
	}
}

// TestDecodeSpecDefaults pins the canonical defaults.
func TestDecodeSpecDefaults(t *testing.T) {
	s := mustDecode(t, `{"trace":{}}`)
	if s.Profile != "quick" {
		t.Errorf("default profile = %q, want quick", s.Profile)
	}
	if s.Trace.Sim != "uni" || s.Trace.Mode != "lockfree" || s.Trace.Format != "perfetto" {
		t.Errorf("trace defaults = %s/%s/%s, want uni/lockfree/perfetto",
			s.Trace.Sim, s.Trace.Mode, s.Trace.Format)
	}
}

// TestDecodeSpecSeedFolding: seed overrides are folded into the
// canonical plan string and the override fields zeroed, so the same
// scenario expressed either way shares one cache line.
func TestDecodeSpecSeedFolding(t *testing.T) {
	a := mustDecode(t, `{"faults":"light","fault_seed":7,"metrics":true}`)
	b := mustDecode(t, `{"faults":"`+a.Faults+`","metrics":true}`)
	if a.FaultSeed != 0 {
		t.Errorf("FaultSeed not zeroed after folding: %d", a.FaultSeed)
	}
	if !strings.Contains(a.Faults, "seed=7") {
		t.Errorf("faults plan %q does not fold seed=7", a.Faults)
	}
	if a.CacheKey() != b.CacheKey() {
		t.Errorf("folded and explicit specs have different cache keys:\n  %s\n  %s", a.CacheKey(), b.CacheKey())
	}

	st := mustDecode(t, `{"stoch":"geo","stoch_seed":3,"metrics":true}`)
	if st.StochSeed != 0 || !strings.Contains(st.Stoch, "seed=3") {
		t.Errorf("stoch seed not folded: seed field %d, plan %q", st.StochSeed, st.Stoch)
	}
}

// TestDecodeSpecInactivePlans: behaviorally-inactive plans collapse to
// the empty string — bit-identical to plan-free runs, one cache line.
func TestDecodeSpecInactivePlans(t *testing.T) {
	off := mustDecode(t, `{"faults":"off","stoch":"off","metrics":true}`)
	bare := mustDecode(t, `{"metrics":true}`)
	if off.Faults != "" || off.Stoch != "" {
		t.Errorf("off plans did not collapse: faults=%q stoch=%q", off.Faults, off.Stoch)
	}
	if off.CacheKey() != bare.CacheKey() {
		t.Errorf("off-plan spec and bare spec have different cache keys")
	}
}

// TestDecodeSpecInvalid: every malformed spec decodes to a structured
// *Error naming the field at fault — never a panic, never a bare string.
func TestDecodeSpecInvalid(t *testing.T) {
	cases := []struct {
		src   string
		code  string
		field string
	}{
		{`{`, "invalid-json", ""},
		{`[1,2]`, "invalid-json", ""},
		{`{"metrics":true}{"metrics":true}`, "invalid-json", ""},
		{`{"bogus":1}`, "invalid-json", ""},
		{`{"jobs":4,"metrics":true}`, "invalid-json", ""}, // jobs is operational, not part of a scenario
		{`{"profile":"huge","metrics":true}`, "invalid-spec", "profile"},
		{`{"faults":"bogus=1","metrics":true}`, "invalid-spec", "faults"},
		{`{"stoch":"bogus=1","metrics":true}`, "invalid-spec", "stoch"},
		{`{"trace":{"sim":"hexa"}}`, "invalid-spec", "trace.sim"},
		{`{"trace":{"mode":"optimistic"}}`, "invalid-spec", "trace.mode"},
		{`{"trace":{"format":"xml"}}`, "invalid-spec", "trace.format"},
		{`{"trace":{"limit":-1}}`, "invalid-spec", "trace.limit"},
		{`{"trace":{"flight":-1}}`, "invalid-spec", "trace.flight"},
		{`{"report":{"figs":["nope"]}}`, "invalid-spec", "report.figs"},
		{`{}`, "invalid-spec", "spec"},
		{`{"faults":"light"}`, "invalid-spec", "spec"}, // plan but no artifact requested
	}
	for _, tc := range cases {
		s, err := DecodeSpec([]byte(tc.src))
		if err == nil {
			t.Errorf("DecodeSpec(%s) = %+v, want error", tc.src, s)
			continue
		}
		if err.Code != tc.code || err.Field != tc.field {
			t.Errorf("DecodeSpec(%s) error = code %q field %q, want %q/%q (reason: %s)",
				tc.src, err.Code, err.Field, tc.code, tc.field, err.Reason)
		}
		if err.Error() == "" {
			t.Errorf("DecodeSpec(%s): empty Error() text", tc.src)
		}
	}
}

// TestCacheKeyDiscriminates: distinct scenarios get distinct keys, and
// the key embeds the artifact-code version.
func TestCacheKeyDiscriminates(t *testing.T) {
	a := mustDecode(t, `{"metrics":true}`)
	b := mustDecode(t, `{"metrics":true,"stream":true}`)
	c := mustDecode(t, `{"metrics":true,"faults":"light"}`)
	if a.CacheKey() == b.CacheKey() || a.CacheKey() == c.CacheKey() || b.CacheKey() == c.CacheKey() {
		t.Errorf("distinct scenarios share a cache key:\n  %s\n  %s\n  %s",
			a.CacheKey(), b.CacheKey(), c.CacheKey())
	}
	if !strings.HasSuffix(a.CacheKey(), "|"+Version) {
		t.Errorf("cache key %q does not embed version %q", a.CacheKey(), Version)
	}
}

// TestBuildProfileJobsInvariance: the jobs knob lands in the profile but
// never in the canonical bytes — the spec is the scenario, jobs is the
// daemon's business.
func TestBuildProfileJobsInvariance(t *testing.T) {
	s := mustDecode(t, `{"faults":"light","metrics":true}`)
	p1, err := s.BuildProfile(1)
	if err != nil {
		t.Fatalf("BuildProfile(1): %v", err)
	}
	p4, err := s.BuildProfile(4)
	if err != nil {
		t.Fatalf("BuildProfile(4): %v", err)
	}
	if p1.Jobs != 1 || p4.Jobs != 4 {
		t.Errorf("jobs not applied: %d, %d", p1.Jobs, p4.Jobs)
	}
	if p1.Fault == nil || !p1.Fault.Active() {
		t.Errorf("fault plan not materialized")
	}
}
