package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/artifact"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/rtime"
)

// Config sizes the daemon. Zero values select the defaults below.
type Config struct {
	// Queue bounds the admission queue: submissions past this many
	// pending runs are rejected with 429 + Retry-After instead of
	// buffering without limit — the same shedding philosophy the RUA
	// admission controller applies to provably-doomed jobs.
	Queue int // default 16

	// Workers is the number of runs executing concurrently; each run is
	// isolated (its own Profile, recorder, and pipeline — engines share
	// nothing mutable across runs).
	Workers int // default 2

	// Jobs is the per-run worker-pool width handed to the experiment
	// sweeps (rtsim -jobs). Output bytes are identical for any value.
	Jobs int // default 0 = one per CPU

	// Cache bounds the result cache (entries); negative disables
	// caching. Keys are (canonical spec, Version), so hits are exact.
	Cache int // default 64
}

// runState is a run's lifecycle phase.
type runState string

// Run lifecycle states. Every accepted run terminates in StateDone,
// StateFailed, or StateShed — the admission property the stress suite
// asserts.
const (
	StateQueued  runState = "queued"
	StateRunning runState = "running"
	StateDone    runState = "done"
	StateFailed  runState = "failed"
	StateShed    runState = "shed" // drained before execution began
)

// terminal reports whether st is a final state.
func terminal(st runState) bool {
	return st == StateDone || st == StateFailed || st == StateShed
}

// Event is one NDJSON progress record of a run's event feed. Progress
// events carry the obs.Pipeline snapshot fields; the feed is
// deterministic for a given spec (virtual-time paced, no wall clock).
type Event struct {
	Seq  int    `json:"seq"`
	Kind string `json:"kind"` // queued|cached|started|progress|artifact|done|failed|shed

	// Snapshot fields (kind=progress), straight from obs.Snapshot.
	TUS        int64 `json:"t_us,omitempty"`
	Events     int64 `json:"events,omitempty"`
	Commits    int64 `json:"commits,omitempty"`
	Retries    int64 `json:"retries,omitempty"`
	Sheds      int64 `json:"sheds,omitempty"`
	P99Attempt int64 `json:"p99_attempt,omitempty"`
	Live       int   `json:"live,omitempty"`

	Name  string `json:"name,omitempty"`  // artifact name (kind=artifact)
	Error string `json:"error,omitempty"` // failure reason (kind=failed)
}

// Run is one accepted scenario execution.
type Run struct {
	ID   string
	Spec *Spec
	key  string

	mu   sync.Mutex
	cond *sync.Cond

	state    runState
	cacheHit bool
	errMsg   string
	files    []report.File
	events   []Event
}

// newRun builds a run in the queued state.
func newRun(id string, spec *Spec, key string) *Run {
	r := &Run{ID: id, Spec: spec, key: key, state: StateQueued}
	r.cond = sync.NewCond(&r.mu)
	r.events = append(r.events, Event{Seq: 0, Kind: string(StateQueued)})
	return r
}

// addEvent appends one event (assigning its sequence number) and wakes
// streamers.
func (r *Run) addEvent(e Event) {
	r.mu.Lock()
	e.Seq = len(r.events)
	r.events = append(r.events, e)
	r.cond.Broadcast()
	r.mu.Unlock()
}

// setState transitions the run and emits the matching event.
func (r *Run) setState(st runState, errMsg string) {
	r.mu.Lock()
	r.state = st
	r.errMsg = errMsg
	e := Event{Seq: len(r.events), Kind: string(st), Error: errMsg}
	r.events = append(r.events, e)
	r.cond.Broadcast()
	r.mu.Unlock()
}

// snapshot returns the run's state under its lock: state, error,
// artifact names, event count, and the latest progress event (ok=false
// when none yet).
func (r *Run) snapshot() (st runState, errMsg string, names []string, events int, last Event, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, errMsg, events = r.state, r.errMsg, len(r.events)
	for _, f := range r.files {
		names = append(names, f.Name)
	}
	for i := len(r.events) - 1; i >= 0; i-- {
		if r.events[i].Kind == "progress" {
			return st, errMsg, names, events, r.events[i], true
		}
	}
	return st, errMsg, names, events, Event{}, false
}

// artifactData returns a served artifact's bytes by name.
func (r *Run) artifactData(name string) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.files {
		if f.Name == name {
			return f.Data, true
		}
	}
	return nil, false
}

// CacheStats are the exact result-cache counters.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Size   int   `json:"size"`
	Cap    int   `json:"cap"`
}

// Stats is the daemon's introspection surface (/api/v1/statz).
type Stats struct {
	Version  string `json:"version"`
	Accepted int64  `json:"accepted"` // queued or served from cache
	Rejected int64  `json:"rejected"` // 429s
	Done     int64  `json:"done"`
	Failed   int64  `json:"failed"`
	Shed     int64  `json:"shed"`

	QueueDepth    int  `json:"queue_depth"`
	QueueCap      int  `json:"queue_cap"`
	MaxQueueDepth int  `json:"max_queue_depth"` // high-water mark; never exceeds QueueCap
	Running       int  `json:"running"`
	Draining      bool `json:"draining"`

	Cache CacheStats `json:"cache"`
}

// cache is the bounded result cache: FIFO eviction over exact keys.
// Guarded by the server mutex.
type cache struct {
	max     int
	entries map[string][]report.File
	order   []string // insertion order for eviction
	hits    int64
	misses  int64
}

func (c *cache) get(key string) ([]report.File, bool) {
	if c.max <= 0 {
		c.misses++
		return nil, false
	}
	files, ok := c.entries[key]
	if ok {
		c.hits++
		return files, true
	}
	c.misses++
	return nil, false
}

func (c *cache) put(key string, files []report.File) {
	if c.max <= 0 {
		return
	}
	if _, ok := c.entries[key]; ok {
		return
	}
	for len(c.order) >= c.max {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[key] = files
	c.order = append(c.order, key)
}

// Server is the rtsimd daemon core: admission, execution, caching, and
// the HTTP surface (it implements http.Handler; see http.go).
type Server struct {
	cfg Config
	mux *http.ServeMux

	queue chan *Run
	wg    sync.WaitGroup

	mu       sync.Mutex
	runs     map[string]*Run
	order    []string // run ids in admission order
	seq      int
	draining bool
	shedAll  bool // drain deadline passed: shed instead of execute
	cache    cache

	rejected int64
	done     int64
	failed   int64
	shed     int64
	running  int
	maxDepth int
}

// New builds and starts a server: its workers are live and it is ready
// to ServeHTTP. Stop it with Drain.
func New(cfg Config) *Server {
	if cfg.Queue <= 0 {
		cfg.Queue = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Cache == 0 {
		cfg.Cache = 64
	}
	s := &Server{
		cfg:   cfg,
		queue: make(chan *Run, cfg.Queue),
		runs:  map[string]*Run{},
		cache: cache{max: cfg.Cache, entries: map[string][]report.File{}},
	}
	s.routes()
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit admission-controls one canonical spec. Outcomes:
//
//   - cache hit: a run born StateDone with the cached artifacts, 200;
//   - accepted: a queued run, 202;
//   - queue full: nil run, 429 (the caller adds Retry-After);
//   - draining: nil run, 503.
func (s *Server) Submit(spec *Spec) (*Run, int) {
	key := spec.CacheKey()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, http.StatusServiceUnavailable
	}
	if files, ok := s.cache.get(key); ok {
		run := newRun(s.nextIDLocked(), spec, key)
		run.cacheHit = true
		run.files = files
		run.state = StateDone
		run.events = append(run.events, Event{Seq: 1, Kind: "cached"})
		for _, f := range files {
			run.events = append(run.events, Event{Seq: len(run.events), Kind: "artifact", Name: f.Name})
		}
		run.events = append(run.events, Event{Seq: len(run.events), Kind: string(StateDone)})
		s.registerLocked(run)
		s.done++
		return run, http.StatusOK
	}
	run := newRun(s.nextIDLocked(), spec, key)
	select {
	case s.queue <- run:
		if d := len(s.queue); d > s.maxDepth {
			s.maxDepth = d
		}
		s.registerLocked(run)
		return run, http.StatusAccepted
	default:
		s.rejected++
		return nil, http.StatusTooManyRequests
	}
}

// nextIDLocked mints the next admission-ordered run id.
func (s *Server) nextIDLocked() string {
	s.seq++
	return fmt.Sprintf("r%08d", s.seq)
}

func (s *Server) registerLocked(run *Run) {
	s.runs[run.ID] = run
	s.order = append(s.order, run.ID)
}

// Get returns a run by id.
func (s *Server) Get(id string) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	run, ok := s.runs[id]
	return run, ok
}

// RunIDs returns every run id in admission order.
func (s *Server) RunIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Stats snapshots the daemon counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Version:       Version,
		Accepted:      int64(s.seq),
		Rejected:      s.rejected,
		Done:          s.done,
		Failed:        s.failed,
		Shed:          s.shed,
		QueueDepth:    len(s.queue),
		QueueCap:      s.cfg.Queue,
		MaxQueueDepth: s.maxDepth,
		Running:       s.running,
		Draining:      s.draining,
		Cache: CacheStats{
			Hits: s.cache.hits, Misses: s.cache.misses,
			Size: len(s.cache.entries), Cap: s.cache.max,
		},
	}
}

// Drain stops admission (new submissions see 503), lets in-flight runs
// finish, and executes the queued backlog — unless ctx expires first,
// at which point the remaining backlog is explicitly shed (each shed
// run reaches StateShed; nothing is silently dropped). Always waits
// for the workers to exit; safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		// Submissions hold s.mu and check draining before sending, so
		// closing under the same lock cannot race a send.
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		s.shedAll = true
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// worker executes queued runs until the queue closes at drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for run := range s.queue {
		s.mu.Lock()
		shed := s.shedAll
		if !shed {
			s.running++
		}
		s.mu.Unlock()
		if shed {
			run.setState(StateShed, "")
			s.mu.Lock()
			s.shed++
			s.mu.Unlock()
			continue
		}
		s.execute(run)
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}
}

// execute runs one scenario through the shared artifact builders and
// finishes the run. Artifacts land in the cache only on full success.
func (s *Server) execute(run *Run) {
	run.mu.Lock()
	run.state = StateRunning
	run.mu.Unlock()
	run.addEvent(Event{Kind: "started"})

	files, err := s.buildArtifacts(run)
	if err != nil {
		run.mu.Lock()
		run.files = nil
		run.mu.Unlock()
		run.setState(StateFailed, err.Error())
		s.mu.Lock()
		s.failed++
		s.mu.Unlock()
		return
	}
	run.mu.Lock()
	run.files = files
	run.mu.Unlock()
	for _, f := range files {
		run.addEvent(Event{Kind: "artifact", Name: f.Name})
	}
	run.setState(StateDone, "")
	s.mu.Lock()
	s.cache.put(run.key, files)
	s.done++
	s.mu.Unlock()
}

// buildArtifacts renders every artifact the spec requests, in the
// fixed order trace → report → metrics, via the exact builders the
// rtsim CLI runs — the conformance contract.
func (s *Server) buildArtifacts(run *Run) ([]report.File, error) {
	spec := run.Spec
	p, err := spec.BuildProfile(s.cfg.Jobs)
	if err != nil {
		return nil, err
	}
	var files []report.File
	if spec.Trace != nil {
		t := spec.Trace
		o := artifact.TraceOptions{
			Sim: t.Sim, Mode: t.Mode, Format: t.Format,
			Limit: t.Limit, Flight: t.Flight,
			OnProgress: func(mark rtime.Time, snap obs.Snapshot) {
				run.addEvent(Event{
					Kind: "progress", TUS: mark.Micros(),
					Events: snap.Events, Commits: snap.Commits,
					Retries: snap.Retries, Sheds: snap.Sheds,
					P99Attempt: snap.AttemptP99, Live: snap.LiveJobs,
				})
			},
		}
		tr, err := artifact.BuildTrace(p, o)
		if err != nil {
			return nil, err
		}
		name := traceArtifactName(t.Format)
		dumpName := name + ".flight.json"
		files = append(files, report.File{Name: name, Data: tr.Data})
		if tr.FlightDump != nil {
			files = append(files, report.File{Name: dumpName, Data: tr.FlightDump})
		}
		files = append(files, report.File{Name: "trace.summary.txt", Data: []byte(tr.Summary(name, dumpName))})
	}
	if spec.Report != nil {
		set, err := artifact.BuildReportSet(p, spec.Report.Figs, spec.Stream)
		if err != nil {
			return nil, err
		}
		files = append(files, set.Files...)
	}
	if spec.Metrics {
		digest, err := artifact.BuildMetrics(p, spec.Stream)
		if err != nil {
			return nil, err
		}
		files = append(files, report.File{Name: "metrics.txt", Data: digest})
	}
	return files, nil
}
