package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
)

// maxSpecBytes bounds a submission body; a scenario spec is small by
// construction.
const maxSpecBytes = 1 << 20

// retryAfterSeconds is the fixed backoff hint on 429 responses.
const retryAfterSeconds = "1"

// routes wires the HTTP surface onto the server's mux.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /api/v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/runs", s.handleList)
	s.mux.HandleFunc("GET /api/v1/runs/{id}", s.handleRun)
	s.mux.HandleFunc("GET /api/v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/v1/runs/{id}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /api/v1/runs/{id}/artifacts", s.handleArtifacts)
	s.mux.HandleFunc("GET /api/v1/runs/{id}/artifacts/{name}", s.handleArtifact)
	s.mux.HandleFunc("GET /api/v1/statz", s.handleStatz)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errorBody is the envelope every error response uses.
type errorBody struct {
	Error *Error `json:"error"`
}

// writeError renders a structured error response.
func writeError(w http.ResponseWriter, status int, e *Error) {
	writeJSON(w, status, errorBody{Error: e})
}

// runJSON is the status document of one run.
type runJSON struct {
	ID        string          `json:"id"`
	State     string          `json:"state"`
	Cache     string          `json:"cache"` // "hit" or "miss"
	Error     string          `json:"error,omitempty"`
	Artifacts []string        `json:"artifacts,omitempty"`
	Events    int             `json:"events"`
	Spec      json.RawMessage `json:"spec"`
}

func runDoc(run *Run) runJSON {
	st, errMsg, names, events, _, _ := run.snapshot()
	cacheTag := "miss"
	if run.cacheHit {
		cacheTag = "hit"
	}
	return runJSON{
		ID: run.ID, State: string(st), Cache: cacheTag, Error: errMsg,
		Artifacts: names, Events: events,
		Spec: json.RawMessage(strings.TrimSuffix(string(run.Spec.Encode()), "\n")),
	}
}

// handleSubmit admits one scenario spec: 400 on an invalid spec
// (structured body), 429 + Retry-After past the queue bound, 503 while
// draining, 200 on a cache hit, 202 on a fresh admission.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, &Error{Code: "invalid-json", Reason: "read body: " + err.Error()})
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			&Error{Code: "invalid-spec", Reason: "spec exceeds 1 MiB"})
		return
	}
	spec, specErr := DecodeSpec(body)
	if specErr != nil {
		writeError(w, http.StatusBadRequest, specErr)
		return
	}
	run, status := s.Submit(spec)
	switch status {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, status, &Error{Code: "overloaded",
			Reason: "admission queue is full; retry after the indicated backoff"})
	case http.StatusServiceUnavailable:
		writeError(w, status, &Error{Code: "draining", Reason: "server is draining"})
	default:
		writeJSON(w, status, runDoc(run))
	}
}

// handleList returns every run id in admission order with its state.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	var out []entry
	for _, id := range s.RunIDs() {
		if run, ok := s.Get(id); ok {
			st, _, _, _, _, _ := run.snapshot()
			out = append(out, entry{ID: id, State: string(st)})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": out})
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Run, bool) {
	run, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, &Error{Code: "not-found",
			Reason: "unknown run " + r.PathValue("id")})
		return nil, false
	}
	return run, true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, runDoc(run))
}

// handleSnapshot serves the latest metric snapshot — the most recent
// obs.Pipeline.Snapshot() the run published — plus the run state.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookup(w, r)
	if !ok {
		return
	}
	st, _, _, _, last, hasProgress := run.snapshot()
	doc := map[string]any{"id": run.ID, "state": string(st)}
	if hasProgress {
		doc["progress"] = last
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleEvents streams the run's event feed as NDJSON: everything so
// far immediately, then each new event as it happens, ending when the
// run reaches a terminal state (or the client goes away).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookup(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	// The waiter below sleeps on the run's cond; wake it when the
	// client disconnects so the handler can exit.
	stopWake := context.AfterFunc(ctx, run.cond.Broadcast)
	defer stopWake()

	enc := json.NewEncoder(w)
	idx := 0
	for {
		run.mu.Lock()
		for idx >= len(run.events) && !terminal(run.state) && ctx.Err() == nil {
			run.cond.Wait()
		}
		batch := append([]Event(nil), run.events[idx:]...)
		idx += len(batch)
		st := run.state
		run.mu.Unlock()
		for _, e := range batch {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if ctx.Err() != nil {
			return
		}
		if terminal(st) && len(batch) == 0 {
			return
		}
	}
}

// handleArtifacts lists a run's artifacts.
func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookup(w, r)
	if !ok {
		return
	}
	type entry struct {
		Name string `json:"name"`
		Size int    `json:"size"`
	}
	run.mu.Lock()
	out := make([]entry, 0, len(run.files))
	for _, f := range run.files {
		out = append(out, entry{Name: f.Name, Size: len(f.Data)})
	}
	run.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"artifacts": out})
}

// handleArtifact serves one artifact's exact bytes.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookup(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	data, ok := run.artifactData(name)
	if !ok {
		writeError(w, http.StatusNotFound, &Error{Code: "not-found",
			Reason: "unknown artifact " + name})
		return
	}
	w.Header().Set("Content-Type", contentType(name))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// contentType maps artifact names onto media types.
func contentType(name string) string {
	switch {
	case strings.HasSuffix(name, ".html"):
		return "text/html; charset=utf-8"
	case strings.HasSuffix(name, ".csv"):
		return "text/csv; charset=utf-8"
	case strings.HasSuffix(name, ".json"):
		return "application/json"
	default:
		return "text/plain; charset=utf-8"
	}
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "draining\n")
		return
	}
	_, _ = io.WriteString(w, "ok\n")
}
