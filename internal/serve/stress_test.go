package serve

// Admission-control property tests, designed to run under -race (make
// race-all): the queue never exceeds its bound, every accepted run
// terminates in done/failed/shed (nothing is silently dropped), and the
// counters stay exact under concurrent submit/poll/stream/drain load.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// traceSpecN mints the n-th member of a family of distinct cheap specs
// (distinct fault seeds → distinct cache keys).
func traceSpecN(n int) string {
	return fmt.Sprintf(`{"faults":"light","fault_seed":%d,"trace":{"format":"json"}}`, n+1)
}

// TestQueueBoundProperty floods a tiny server with distinct specs much
// faster than one worker can run them and asserts the admission
// properties: accepted+rejected accounts for every submission, the
// queue high-water mark never exceeds the bound, and after drain every
// accepted run reached a terminal state.
func TestQueueBoundProperty(t *testing.T) {
	const submissions = 40
	srv := New(Config{Workers: 1, Queue: 2, Jobs: 1, Cache: -1})

	accepted, rejected := 0, 0
	for i := 0; i < submissions; i++ {
		spec := mustDecode(t, traceSpecN(i))
		run, status := srv.Submit(spec)
		switch status {
		case http.StatusAccepted:
			if run == nil {
				t.Fatalf("202 with nil run")
			}
			accepted++
		case http.StatusTooManyRequests:
			if run != nil {
				t.Fatalf("429 returned a run")
			}
			rejected++
		default:
			t.Fatalf("submission %d: unexpected status %d", i, status)
		}
	}
	if accepted+rejected != submissions {
		t.Fatalf("accepted %d + rejected %d != %d submissions", accepted, rejected, submissions)
	}
	if accepted == 0 {
		t.Fatalf("no submission accepted")
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	stats := srv.Stats()
	if stats.MaxQueueDepth > stats.QueueCap {
		t.Errorf("queue high-water %d exceeds bound %d", stats.MaxQueueDepth, stats.QueueCap)
	}
	if got := int(stats.Rejected); got != rejected {
		t.Errorf("stats.Rejected = %d, want %d", got, rejected)
	}
	// Delivery property: every accepted run is terminal, and the
	// terminal counters account for all of them.
	for _, id := range srv.RunIDs() {
		run, ok := srv.Get(id)
		if !ok {
			t.Fatalf("registered run %s vanished", id)
		}
		st, _, _, _, _, _ := run.snapshot()
		if !terminal(st) {
			t.Errorf("run %s left in state %s after drain", id, st)
		}
	}
	if total := stats.Done + stats.Failed + stats.Shed; total != int64(accepted) {
		t.Errorf("done %d + failed %d + shed %d != accepted %d",
			stats.Done, stats.Failed, stats.Shed, accepted)
	}
}

// TestDrainShedsBacklog: a drain whose deadline has already passed
// sheds the queued backlog explicitly — each shed run reaches
// StateShed and the shed counter — and later submissions see 503.
func TestDrainShedsBacklog(t *testing.T) {
	srv := New(Config{Workers: 1, Queue: 4, Jobs: 1, Cache: -1})
	// First run occupies the single worker for ~100ms; the rest queue
	// behind it.
	first, status := srv.Submit(mustDecode(t, `{"report":{}}`))
	if status != http.StatusAccepted {
		t.Fatalf("first submit: status %d", status)
	}
	var queued []*Run
	for i := 0; i < 3; i++ {
		run, status := srv.Submit(mustDecode(t, traceSpecN(i)))
		if status != http.StatusAccepted {
			t.Fatalf("backlog submit %d: status %d", i, status)
		}
		queued = append(queued, run)
	}

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Drain(expired); err != context.Canceled {
		t.Fatalf("drain with expired ctx: err %v, want context.Canceled", err)
	}

	// The in-flight run may finish or shed depending on timing; the
	// backlog behind it must be shed.
	st, _, _, _, _, _ := first.snapshot()
	if !terminal(st) {
		t.Errorf("in-flight run left in state %s", st)
	}
	shed := 0
	for _, run := range queued {
		st, _, _, _, _, _ := run.snapshot()
		if !terminal(st) {
			t.Errorf("queued run %s left in state %s after drain", run.ID, st)
		}
		if st == StateShed {
			shed++
		}
	}
	if shed == 0 {
		t.Errorf("expired drain shed no queued runs")
	}
	stats := srv.Stats()
	if int(stats.Shed) < shed {
		t.Errorf("stats.Shed = %d, want >= %d", stats.Shed, shed)
	}
	if !stats.Draining {
		t.Errorf("stats.Draining = false after drain")
	}

	if _, status := srv.Submit(mustDecode(t, `{"metrics":true}`)); status != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", status)
	}
	// Idempotent: a second drain returns immediately.
	if err := srv.Drain(context.Background()); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// TestConcurrentStress hammers one daemon over HTTP from many
// goroutines — submitters (mixing identical and distinct specs),
// event streamers, and statz pollers — then drains. Run under -race
// this is the data-race canary for the whole serving layer.
func TestConcurrentStress(t *testing.T) {
	srv := New(Config{Workers: 3, Queue: 64, Jobs: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	ids := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				// Half the load shares one spec (cache contention), half is
				// distinct (queue contention).
				spec := `{"trace":{"format":"json"}}`
				if i%2 == 0 {
					spec = traceSpecN(g*10 + i)
				}
				resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json", strings.NewReader(spec))
				if err != nil {
					t.Errorf("POST: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusAccepted:
					var doc struct {
						ID string `json:"id"`
					}
					if err := json.Unmarshal(body, &doc); err != nil || doc.ID == "" {
						t.Errorf("bad submit body %s", body)
						return
					}
					ids <- doc.ID
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					// Legitimate under load.
				default:
					t.Errorf("submit status %d: %s", resp.StatusCode, body)
				}
			}
		}(g)
	}
	// Streamers follow every accepted run's feed to the end; pollers
	// hit statz and the run listing concurrently.
	var followers sync.WaitGroup
	followers.Add(1)
	go func() {
		defer followers.Done()
		var inner sync.WaitGroup
		for id := range ids {
			inner.Add(1)
			go func(id string) {
				defer inner.Done()
				resp, err := http.Get(ts.URL + "/api/v1/runs/" + id + "/events")
				if err != nil {
					t.Errorf("GET events: %v", err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}(id)
		}
		inner.Wait()
	}()
	stopPoll := make(chan struct{})
	var pollers sync.WaitGroup
	for p := 0; p < 2; p++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stopPoll:
					return
				default:
				}
				for _, path := range []string{"/api/v1/statz", "/api/v1/runs", "/healthz"} {
					if resp, err := http.Get(ts.URL + path); err == nil {
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}

	wg.Wait()
	close(ids)
	followers.Wait()
	close(stopPoll)
	pollers.Wait()

	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	stats := srv.Stats()
	if stats.MaxQueueDepth > stats.QueueCap {
		t.Errorf("queue high-water %d exceeds bound %d", stats.MaxQueueDepth, stats.QueueCap)
	}
	if total := stats.Done + stats.Failed + stats.Shed; total != stats.Accepted {
		t.Errorf("terminal counters %d != accepted %d", total, stats.Accepted)
	}
	for _, id := range srv.RunIDs() {
		run, _ := srv.Get(id)
		st, _, _, _, _, _ := run.snapshot()
		if !terminal(st) {
			t.Errorf("run %s left in state %s", id, st)
		}
	}
}
