package analysis

import (
	"fmt"

	"repro/internal/rtime"
	"repro/internal/task"
)

// DemandBound returns the maximum processor demand that jobs of the task
// set can place in ANY interval of length L while having both release and
// critical time inside it — the demand-bound function generalized to the
// UAM. A job of T_i contributes iff it is released in the first L − C_i
// of the interval (its critical time must also fit), so at most
// a_i·(⌈(L−C_i)/W_i⌉ + 1) jobs contribute, each demanding u_i + m_i·acc.
//
// This is the EDF-style processor-demand argument instantiated with the
// UAM window-counting bound; it is conservative (the "+1" burst carries
// over interval edges, exactly as in Theorem 2's proof).
func DemandBound(tasks []*task.Task, L rtime.Duration, acc rtime.Duration) rtime.Duration {
	var total rtime.Duration
	for _, t := range tasks {
		ci := t.CriticalTime()
		if L < ci {
			continue
		}
		n := int64(t.Arrival.A) * (rtime.CeilDiv(L-ci, t.Arrival.W) + 1)
		total += rtime.Duration(n) * t.Demand(acc)
	}
	return total
}

// Schedulable runs a bounded processor-demand test for EDF/ECF under the
// UAM: the set is schedulable if DemandBound(L) ≤ L for every interval
// length L up to the testing horizon. Testing points are the instants
// where the bound's value changes: L = C_i + k·W_i. The horizon is the
// first busy-period-style fixed point, capped at cap to keep the test
// bounded under overload (where the answer is "no" anyway).
//
// Being built from conservative window counts, a "true" verdict is a
// sound sufficient condition; "false" may be pessimistic.
func Schedulable(tasks []*task.Task, acc rtime.Duration, cap rtime.Duration) (bool, rtime.Duration, error) {
	if len(tasks) == 0 {
		return false, 0, fmt.Errorf("%w: no tasks", ErrInput)
	}
	if acc <= 0 || cap <= 0 {
		return false, 0, fmt.Errorf("%w: acc=%v cap=%v must be positive", ErrInput, acc, cap)
	}
	// Quick necessary check: long-run rate must not exceed 1. The mean
	// UAM rate uses a_i/W_i (the sustainable worst case).
	rate := 0.0
	for _, t := range tasks {
		rate += float64(t.Arrival.A) / float64(t.Arrival.W) * float64(t.Demand(acc))
	}
	if rate > 1 {
		return false, 0, nil
	}
	// Test every change point L = C_i + k·W_i up to the cap.
	for _, t := range tasks {
		ci := t.CriticalTime()
		for L := ci; L <= cap; L += t.Arrival.W {
			if d := DemandBound(tasks, L, acc); d > L {
				return false, L, nil
			}
		}
	}
	return true, 0, nil
}
